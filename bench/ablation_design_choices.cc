/**
 * @file
 * The design-choice matrix: placement policies × workloads × machine
 * shapes, swept from one invocation.
 *
 * Every registered policy (vanilla, contiguitas, contiguitas-nobias,
 * zone-movable, plus anything tests or forks add) runs against every
 * selected workload profile — the paper's six production services
 * and the Mansi-&-Swift aging profiles — on every machine shape, as
 * a small fleet per cell. Each cell prints one table row and emits
 * one JSON line, so CI artifacts carry the whole matrix in
 * machine-readable form. Cell rows contain only simulation results
 * (no wall clocks), making the output bit-identical at any
 * CTG_THREADS; the wall clock is dumped separately.
 *
 * Flags:
 *   --policies  csv of registry names, or "all" (default)
 *   --workloads csv of workloadKey names, "paper" (the six
 *               production profiles) or "all" (default)
 *   --shapes    csv of machine sizes in MiB (default "512,1024")
 *   --servers   servers per cell (default 12)
 */

#include <algorithm>

#include "bench/bench_util.hh"
#include "mem/mem_stats.hh"

using namespace ctg;

namespace
{

std::vector<std::string>
splitCsv(const std::string &text)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        std::size_t comma = text.find(',', pos);
        if (comma == std::string::npos)
            comma = text.size();
        const std::string item = text.substr(pos, comma - pos);
        if (!item.empty())
            out.push_back(item);
        pos = comma + 1;
    }
    return out;
}

std::vector<std::string>
selectPolicies(const std::string &flag)
{
    std::vector<std::string> names;
    if (flag == "all" || flag.empty()) {
        for (const PolicyRegistry::Entry &entry :
             PolicyRegistry::instance().entries())
            names.push_back(entry.name);
        return names;
    }
    for (const std::string &spec : splitCsv(flag)) {
        const std::string name = spec.substr(0, spec.find(':'));
        if (!PolicyRegistry::instance().has(name)) {
            std::fprintf(stderr, "unknown policy '%s' (try --list)\n",
                         name.c_str());
            std::exit(2);
        }
        names.push_back(spec);
    }
    return names;
}

std::vector<WorkloadKind>
selectWorkloads(const std::string &flag)
{
    std::vector<WorkloadKind> kinds;
    if (flag == "all" || flag.empty()) {
        for (unsigned k = 0; k < numWorkloadKinds; ++k)
            kinds.push_back(static_cast<WorkloadKind>(k));
        return kinds;
    }
    if (flag == "paper") {
        for (unsigned k = 0; k <= unsigned(WorkloadKind::Memcached);
             ++k)
            kinds.push_back(static_cast<WorkloadKind>(k));
        return kinds;
    }
    for (const std::string &name : splitCsv(flag)) {
        WorkloadKind kind = WorkloadKind::Web;
        if (!parseWorkloadKind(name, &kind)) {
            std::fprintf(stderr,
                         "unknown workload '%s' (try --list)\n",
                         name.c_str());
            std::exit(2);
        }
        kinds.push_back(kind);
    }
    return kinds;
}

struct CellResult
{
    double unmovableBlocks2m = 0.0;
    double freeContiguity2m = 0.0;
    double unmovablePageRatio = 0.0;
};

/** Run one matrix cell: a small single-workload fleet under the
 * given policy on the given machine shape; report population means. */
CellResult
runCell(const std::string &policySpec, WorkloadKind kind,
        std::uint64_t mem_mib, unsigned servers)
{
    Fleet::Config config;
    config.servers = servers;
    config.memBytes = mem_mib << 20;
    if (!parsePolicySpec(policySpec, &config.policy)) {
        std::fprintf(stderr, "unknown policy '%s' (try --list)\n",
                     policySpec.c_str());
        std::exit(2);
    }
    config.workloadOverride = workloadKey(kind);
    config.minUptimeSec = 6.0;
    config.maxUptimeSec = 14.0;
    config.minIntensity = 0.7;
    config.maxIntensity = 1.3;
    config.prefragmentFrac = 0.25;
    config.seed = 0xab1a710;
    config.applyEnvOverlay();

    Fleet fleet(config);
    const std::vector<ServerScan> scans = fleet.run();

    CellResult cell;
    for (const ServerScan &scan : scans) {
        cell.unmovableBlocks2m += scan.unmovableBlocks[0];
        cell.freeContiguity2m += scan.freeContiguity[0];
        cell.unmovablePageRatio += scan.unmovablePageRatio;
    }
    const double n = std::max<std::size_t>(scans.size(), 1);
    cell.unmovableBlocks2m /= n;
    cell.freeContiguity2m /= n;
    cell.unmovablePageRatio /= n;
    return cell;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string policiesFlag = "all";
    std::string workloadsFlag = "all";
    std::string shapesFlag = "512,1024";
    std::string serversFlag = "12";
    bench::parseArgs(
        argc, argv,
        {{"policies", &policiesFlag,
          "csv of policy names, or 'all' (default)"},
         {"workloads", &workloadsFlag,
          "csv of workload names, 'paper' or 'all' (default)"},
         {"shapes", &shapesFlag,
          "csv of machine sizes in MiB (default 512,1024)"},
         {"servers", &serversFlag,
          "servers per matrix cell (default 12)"}});

    const std::vector<std::string> policies =
        selectPolicies(policiesFlag);
    const std::vector<WorkloadKind> workloads =
        selectWorkloads(workloadsFlag);
    std::vector<std::uint64_t> shapes;
    for (const std::string &item : splitCsv(shapesFlag))
        shapes.push_back(bench::flagU64(item, "shapes"));
    const unsigned servers = static_cast<unsigned>(
        bench::flagU64(serversFlag, "servers"));
    if (shapes.empty() || servers == 0) {
        std::fprintf(stderr, "need at least one shape and server\n");
        return 2;
    }

    bench::banner("Ablation matrix",
                  "policies x workloads x machine shapes");
    std::printf("%zu policies x %zu workloads x %zu shapes, "
                "%u servers per cell\n",
                policies.size(), workloads.size(), shapes.size(),
                servers);

    bench::WallTimer wall;
    std::string json;
    Table table("matrix cells (population means)");
    table.header({"Policy", "Workload", "MiB", "Unmov 2M blocks",
                  "Free contig 2M", "Unmov page ratio"});
    for (const std::string &policy : policies) {
        for (const WorkloadKind kind : workloads) {
            for (const std::uint64_t mib : shapes) {
                const CellResult res =
                    runCell(policy, kind, mib, servers);
                table.row({policy, workloadKey(kind), cell(mib),
                           formatPercent(res.unmovableBlocks2m),
                           formatPercent(res.freeContiguity2m),
                           formatPercent(res.unmovablePageRatio)});
                char line[256];
                std::snprintf(
                    line, sizeof(line),
                    "{\"name\":\"ablation.cell\",\"policy\":\"%s\","
                    "\"workload\":\"%s\",\"mem_mib\":%llu,"
                    "\"servers\":%u,\"unmovable_blocks_2m\":%.6f,"
                    "\"free_contiguity_2m\":%.6f,"
                    "\"unmovable_page_ratio\":%.6f}\n",
                    policy.c_str(), workloadKey(kind),
                    static_cast<unsigned long long>(mib), servers,
                    res.unmovableBlocks2m, res.freeContiguity2m,
                    res.unmovablePageRatio);
                json += line;
            }
        }
    }
    table.print();
    bench::dumpText("matrix cells (JSON lines)", json);
    bench::dumpWallMs(wall.ms());
    std::printf("\n[matrix] %zu cells, wall %.0f ms\n",
                policies.size() * workloads.size() * shapes.size(),
                wall.ms());
    return 0;
}
