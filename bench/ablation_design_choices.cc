/**
 * @file
 * Ablations of the design choices DESIGN.md calls out:
 *
 *  A. fallback remainder policy — leaving small-steal remainders
 *     with the victim (modern Linux) vs claiming them: how much of
 *     the paper's unmovable scattering each produces;
 *  B. placement bias inside the unmovable region (Section 3.2's
 *     away-from-border rule) — its effect on shrink success;
 *  C. Contiguitas-HW migration on/off — whether the unmovable region
 *     can shrink and defragment under pinned IO load;
 *  D. kcompactd budget — background compaction's role in huge-page
 *     coverage under churn.
 */

#include "bench/bench_util.hh"
#include "contiguitas/policy.hh"
#include "mem/mem_stats.hh"
#include "mem/scanner.hh"
#include "workloads/workload.hh"

using namespace ctg;

namespace
{

constexpr std::uint64_t memBytes = std::uint64_t{2} << 30;

WorkloadProfile
profileFor(double pin_rate = 0.0)
{
    WorkloadProfile profile =
        makeProfile(WorkloadKind::CacheB, memBytes);
    profile.pinRatePerSec = pin_rate;
    return profile;
}

void
ablationFallback()
{
    Table table("A. fallback remainder policy (vanilla kernel, "
                "Cache B, 45s)");
    table.header({"Policy", "Unmovable pages", "2MB blocks "
                  "contaminated", "Amplification"});
    for (const bool claim : {false, true}) {
        KernelConfig kc;
        kc.memBytes = memBytes;
        kc.kernelTextBytes = std::uint64_t{4} << 20;
        kc.seed = 0xab1;
        Kernel kernel(kc);
        kernel.policy().movableAllocator()
            .setClaimRemainderOnSmallSteal(claim);
        Workload workload(kernel, profileFor(), 0xab1);
        workload.start();
        workload.runFor(45.0);
        const PhysMem &mem = kernel.mem();
        const MemStats stats = mem.stats();
        const double pages =
            stats.unmovablePageRatio(0, mem.numFrames());
        const double blocks = stats.unmovableBlockFraction(
            0, mem.numFrames(), scan::order2M);
        table.row({claim ? "claim remainder (pre-4.x)"
                         : "leave with victim (Linux 5.x)",
                   formatPercent(pages), formatPercent(blocks),
                   cell(blocks / pages, 2) + "x"});
    }
    table.print();
    std::printf("\n");
}

struct CtgOutcome
{
    Pfn boundary = 0;
    std::uint64_t shrinks = 0;
    std::uint64_t shrinkFailures = 0;
    std::uint64_t hwMigrations = 0;
};

/**
 * Controlled region scenario: a layer of linear-map residue (truly
 * unmovable) plus a burst of IO buffers (movable only by
 * Contiguitas-HW) that later mostly drains. Whether the region can
 * shrink back depends on (i) the residue having been biased away
 * from the border and (ii) hardware migration for the leftover IO
 * pages near it.
 */
CtgOutcome
runRegionScenario(bool bias, bool hw)
{
    KernelConfig kc;
    kc.memBytes = memBytes;
    kc.kernelTextBytes = std::uint64_t{4} << 20;
    kc.seed = 0xab2;
    ContiguitasConfig cc;
    cc.placementBias = bias;
    cc.hwMigration = hw;
    Kernel kernel(kc, ContiguitasPolicy::factory(cc));
    auto &policy = static_cast<ContiguitasPolicy &>(kernel.policy());
    const std::uint64_t region_pages =
        policy.regions().unmovable().totalPages();

    // Linear-map residue: ~15% of the region, interleaved with IO
    // traffic so placement decisions happen under churn.
    ChurnPool::Config io_config;
    io_config.ratePerSec = 4000.0;
    io_config.meanLifeSec = 0.02;
    io_config.longLivedFrac = 0.3;
    io_config.longMeanLifeSec = 6.0;
    io_config.mt = MigrateType::Unmovable;
    io_config.source = AllocSource::Networking;
    io_config.relocatable = true;
    ChurnPool io(kernel, io_config, 0x10);

    std::vector<Pfn> residue;
    const std::uint64_t residue_target = region_pages * 15 / 100;
    double now = 0.0;
    while (residue.size() < residue_target) {
        now += 0.05;
        io.advanceTo(now);
        kernel.advanceSeconds(0.05);
        for (int i = 0; i < 40 && residue.size() < residue_target;
             ++i) {
            AllocRequest req;
            req.order = 0;
            req.mt = MigrateType::Unmovable;
            req.source = AllocSource::Slab;
            req.lifetime = Lifetime::Long;
            const Pfn p = kernel.allocPages(req);
            if (p != invalidPfn)
                residue.push_back(p);
        }
    }

    // Traffic winds down: no new IO, but the long-lived buffers
    // (sockets with buffered data) stick around near the border.
    io.pause();
    now += 2.0;
    io.advanceTo(now);

    // Movable pressure builds; the controller tries to shrink.
    CtgOutcome out;
    for (int second = 0; second < 20; ++second) {
        now += 1.0;
        io.advanceTo(now);
        kernel.psiMovable().recordStall(3e5);
        kernel.advanceSeconds(1.0);
    }
    out.boundary = policy.regions().boundary();
    out.shrinks = policy.regions().stats().shrinks;
    out.shrinkFailures = policy.regions().stats().shrinkFailures;
    out.hwMigrations = policy.regions().stats().hwMigrations;
    for (const Pfn p : residue)
        kernel.freePages(p);
    return out;
}

void
ablationPlacementAndHw()
{
    Table table("B/C. placement bias and Contiguitas-HW (region "
                "shrink after an IO burst drains)");
    table.header({"Configuration", "Final boundary", "Shrinks",
                  "Shrink failures", "HW moves"});
    struct Case
    {
        const char *name;
        bool bias;
        bool hw;
    };
    const Case cases[] = {
        {"no bias, no HW", false, false},
        {"bias, no HW", true, false},
        {"no bias, HW", false, true},
        {"bias + HW", true, true},
    };
    for (const Case &c : cases) {
        const CtgOutcome out = runRegionScenario(c.bias, c.hw);
        table.row({c.name, formatBytes(out.boundary * pageBytes),
                   cell(out.shrinks), cell(out.shrinkFailures),
                   cell(out.hwMigrations)});
    }
    table.print();
    std::printf("\n");
}

void
ablationKcompactd()
{
    Table table("D. kcompactd budget vs huge-page coverage "
                "(vanilla, Cache B, 40s of churn)");
    table.header({"Budget (migrations/s)", "2MB-backed fraction"});
    for (const std::uint64_t budget : {std::uint64_t{0},
                                       std::uint64_t{512},
                                       std::uint64_t{4096},
                                       std::uint64_t{16384}}) {
        KernelConfig kc;
        kc.memBytes = memBytes;
        kc.kernelTextBytes = std::uint64_t{4} << 20;
        kc.kcompactdBudgetPerSec = budget;
        kc.seed = 0xab3;
        Kernel kernel(kc);
        Workload workload(kernel, profileFor(), 0xab3);
        workload.start();
        workload.runFor(40.0);
        table.row({cell(budget),
                   formatPercent(workload.hugeBackedFraction())});
    }
    table.print();
}

} // namespace

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv);
    bench::banner("Ablations",
                  "Design-choice studies (not a paper figure)");
    ablationFallback();
    ablationPlacementAndHw();
    ablationKcompactd();
    return 0;
}
