/**
 * @file
 * Shared helpers for the per-figure benchmark binaries: standard
 * fleet configurations, CDF rendering, and banner output. Every
 * binary prints the rows/series of one of the paper's tables or
 * figures (shape reproduction — see EXPERIMENTS.md for the
 * paper-vs-measured record).
 */

#ifndef CTG_BENCH_BENCH_UTIL_HH
#define CTG_BENCH_BENCH_UTIL_HH

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "base/env_config.hh"
#include "base/stat_registry.hh"
#include "base/stats.hh"
#include "base/table.hh"
#include "base/units.hh"
#include "contiguitas/policy_registry.hh"
#include "fleet/fleet.hh"
#include "sim/executor.hh"
#include "sim/fault_injector.hh"
#include "workloads/profile.hh"

namespace ctg
{
namespace bench
{

/** Path set by --json: overrides CTG_STATS_JSON for dump output. */
inline std::string &
jsonOutPath()
{
    static std::string path;
    return path;
}

/** One bench command-line flag: `--name VALUE` or `--name=VALUE`. */
struct FlagSpec
{
    const char *name;   //!< long name, without the leading "--"
    std::string *value; //!< where the parsed value lands
    const char *help;   //!< one-line description for the usage text
};

/** Print the supported-flag list to stderr. */
inline void
printUsage(const char *prog, const std::vector<FlagSpec> &flags)
{
    std::fprintf(stderr,
                 "usage: %s [--flag VALUE | --flag=VALUE]... [--list]\n"
                 "supported flags:\n",
                 prog);
    for (const FlagSpec &spec : flags)
        std::fprintf(stderr, "  --%-12s %s\n", spec.name, spec.help);
    std::fprintf(stderr,
                 "  --%-12s %s\n", "list",
                 "print registered policies and workloads, then exit");
}

/** Enumerate the policy registry and the workload vocabulary — the
 * names --policies/--workloads, CTG_POLICY and CTG_WORKLOAD accept. */
inline void
printRegistry()
{
    std::printf("policies (CTG_POLICY=<name>[:key=val,...]):\n");
    for (const PolicyRegistry::Entry &entry :
         PolicyRegistry::instance().entries()) {
        std::printf("  %-20s %s\n", entry.name.c_str(),
                    entry.description.c_str());
    }
    std::printf("workloads (CTG_WORKLOAD=<name>):\n");
    for (unsigned k = 0; k < numWorkloadKinds; ++k) {
        const auto kind = static_cast<WorkloadKind>(k);
        std::printf("  %-20s %s\n", workloadKey(kind),
                    workloadName(kind));
    }
}

/**
 * Parse the shared bench command line. Every binary gets `--json
 * out.json` (redirects every dumpText/dumpStats call into that file,
 * append, so CI can collect machine-readable artifacts like
 * BENCH_scan.json without environment plumbing); callers add their
 * own flags via `extra`. Both `--flag VALUE` and `--flag=VALUE`
 * spellings work. Anything that is not a declared flag — an unknown
 * name, a missing value, a stray positional — prints the usage list
 * and exits with status 2 rather than being silently ignored.
 */
inline void
parseArgs(int argc, char **argv, std::vector<FlagSpec> extra = {})
{
    std::vector<FlagSpec> flags;
    flags.push_back({"json", &jsonOutPath(),
                     "append JSON-lines stats to this file"});
    flags.insert(flags.end(), extra.begin(), extra.end());

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--list") {
            // Registry discoverability from every bench binary.
            printRegistry();
            std::exit(0);
        }
        const FlagSpec *matched = nullptr;
        for (const FlagSpec &spec : flags) {
            const std::string prefix = std::string("--") + spec.name;
            if (arg == prefix) {
                if (i + 1 >= argc) {
                    std::fprintf(stderr,
                                 "missing value for '%s'\n",
                                 arg.c_str());
                    printUsage(argv[0], flags);
                    std::exit(2);
                }
                *spec.value = argv[++i];
                matched = &spec;
                break;
            }
            if (arg.rfind(prefix + "=", 0) == 0) {
                *spec.value = arg.substr(prefix.size() + 1);
                matched = &spec;
                break;
            }
        }
        if (matched == nullptr) {
            std::fprintf(stderr, "unknown bench argument '%s'\n",
                         arg.c_str());
            printUsage(argv[0], flags);
            std::exit(2);
        }
    }
}

/** Parse a flag value as a non-negative integer; usage-error exit on
 * garbage (trailing characters included). */
inline std::uint64_t
flagU64(const std::string &value, const char *name)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
    if (value.empty() || end == nullptr || *end != '\0') {
        std::fprintf(stderr, "flag --%s wants an integer, got '%s'\n",
                     name, value.c_str());
        std::exit(2);
    }
    return v;
}

/** Print the figure banner. */
inline void
banner(const char *figure, const char *caption)
{
    std::printf("\n================================================"
                "====\n");
    std::printf("%s — %s\n", figure, caption);
    std::printf("================================================"
                "====\n");
}

/**
 * Register the process-wide fault injector's per-site counters under
 * `faults.` when CTG_FAULTS armed any site, so chaos runs carry a
 * record of the injections they executed in their dumped stats. A
 * no-op in clean runs, keeping their output byte-identical.
 */
inline void
regFaultStats(StatRegistry &registry)
{
    if (faultInjector().anyArmed())
        faultInjector().regStats(StatGroup(registry, "faults"));
}

/**
 * Print the wall-clock / worker summary of the last fleet run. The
 * same numbers land in the JSON dump as `<prefix>.run_wall_ms` /
 * `<prefix>.threads` when the fleet's telemetry is attached, so
 * BENCH_*.json records track the speedup trajectory.
 */
inline void
printFleetWall(const Fleet &fleet)
{
    std::printf("\n[fleet] %u worker thread(s), run wall %.0f ms "
                "(set CTG_THREADS to change)\n",
                fleet.lastRunThreads(), fleet.lastRunWallMs());
}

/** Wall clock for benches that do not drive a Fleet (hardware and
 * microbenchmark binaries): start at construction, read in ms. */
class WallTimer
{
  public:
    WallTimer() : start_(std::chrono::steady_clock::now()) {}

    double
    ms() const
    {
        return std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

/** Standard fleet configuration used by the Section 2 studies. The
 * policy is a registry spec ("vanilla", "contiguitas",
 * "contiguitas-nobias:defrag=4", ...). */
inline Fleet::Config
standardFleet(const std::string &policy, unsigned servers = 48)
{
    Fleet::Config config;
    config.servers = servers;
    config.memBytes = std::uint64_t{2} << 30;
    if (!parsePolicySpec(policy, &config.policy)) {
        std::fprintf(stderr, "unknown policy '%s' (try --list)\n",
                     policy.c_str());
        std::exit(2);
    }
    config.minUptimeSec = 25.0;
    config.maxUptimeSec = 90.0;
    config.prefragmentFrac = 0.25;
    config.seed = 0x15ca2023;
    config.applyEnvOverlay();
    return config;
}

/**
 * Emit exporter output (JSON lines or CSV from StatRegistry /
 * StatSampler) under a labelled section. A --json path (parseArgs)
 * or the environment variable named by env_var redirects the text
 * into that file (append), so scripted runs can harvest
 * machine-readable stats without parsing the figure tables.
 */
inline void
dumpText(const char *label, const std::string &text,
         const char *env_var = "CTG_STATS_JSON")
{
    std::string path = jsonOutPath();
    if (path.empty()) {
        if (std::strcmp(env_var, "CTG_STATS_JSON") == 0)
            path = sim::EnvConfig::fromEnv().statsJsonPath;
        else if (const char *env = std::getenv(env_var))
            path = env;
    }
    if (!path.empty()) {
        if (FILE *f = std::fopen(path.c_str(), "a")) {
            std::fputs(text.c_str(), f);
            std::fclose(f);
            return;
        }
    }
    std::printf("\n--- %s ---\n%s", label, text.c_str());
}

/** Dump a registry as JSON lines (see dumpText). */
inline void
dumpStats(const StatRegistry &registry, const char *label)
{
    dumpText(label, registry.jsonLines());
}

/**
 * Dump one `fleet.run_wall_ms` gauge line in the same JSON-lines
 * shape StatRegistry::jsonLines emits. Fleet-driven benches get this
 * line from the attached telemetry; benches without a fleet call
 * this so every BENCH_*.json artifact carries its wall clock under
 * the one uniform key CI trend tracking keys on.
 */
inline void
dumpWallMs(double wall_ms)
{
    char line[96];
    std::snprintf(line, sizeof(line),
                  "{\"name\":\"fleet.run_wall_ms\",\"kind\":\"gauge\""
                  ",\"value\":%.3f}\n",
                  wall_ms);
    dumpText("wall clock (JSON lines)", line);
}

/** Render "CDF of servers" rows for a per-server metric. */
inline void
printCdfRows(Table &table, const std::string &label,
             const std::vector<double> &thresholds,
             const EmpiricalCdf &cdf)
{
    std::vector<std::string> row;
    row.push_back(label);
    for (const double x : thresholds)
        row.push_back(cell(cdf.fractionAtOrBelow(x), 2));
    table.row(std::move(row));
}

} // namespace bench
} // namespace ctg

#endif // CTG_BENCH_BENCH_UTIL_HH
