/**
 * @file
 * Figure 2: relative memory capacity and TLB coverage across five
 * hardware generations. Memory grows ~8x; TLB entries stagnate; the
 * coverage of 4 KB and even 2 MB pages collapses while 1 GB pages
 * keep covering more than the whole machine.
 */

#include "bench/bench_util.hh"
#include "perfmodel/hwgen.hh"

using namespace ctg;

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv);
    bench::banner("Figure 2",
                  "Memory and TLB coverage across hardware "
                  "generations");
    bench::WallTimer wall;

    Table table;
    table.header({"Generation", "Rel. capacity", "TLB entries",
                  "Coverage 4KB", "Coverage 2MB", "Coverage 1GB"});
    for (const HwGeneration &gen : hwGenerations()) {
        table.row({
            gen.name,
            cell(gen.relativeCapacity, 1) + "x",
            cell(static_cast<std::uint64_t>(gen.tlbEntries)),
            formatPercent(tlbCoverage(gen, pageBytes), 4),
            formatPercent(tlbCoverage(gen, hugeBytes), 2),
            formatPercent(tlbCoverage(gen, gigaBytes), 0),
        });
    }
    table.print();

    const auto gens = hwGenerations();
    const double cap_growth = gens.back().relativeCapacity;
    const double cov_first = tlbCoverage(gens.front(), hugeBytes);
    const double cov_last = tlbCoverage(gens.back(), hugeBytes);
    std::printf("\nCapacity grows %.1fx while 2MB TLB coverage falls "
                "%.0f%% -> %.0f%% of memory;\nonly 1GB pages (%.0f%% "
                "coverage on Gen 5) keep up with capacity.\n",
                cap_growth, cov_first * 100.0, cov_last * 100.0,
                tlbCoverage(gens.back(), gigaBytes) * 100.0);
    bench::dumpWallMs(wall.ms());
    return 0;
}
