/**
 * @file
 * Figure 3: percentage of cycles lost to page walks (data and
 * instructions) for Web, Cache A, Cache B and Ads under 4 KB pages,
 * 2 MB pages, and (Web only, as in the paper) 1 GB pages. The walk
 * cycles come out of the simulated two-level TLB + page-walk-cache
 * hierarchy of Table 1 driving real radix walks through the cache
 * hierarchy.
 */

#include "bench/bench_util.hh"
#include "perfmodel/walkmodel.hh"

using namespace ctg;

int
main(int argc, char **argv)
{
    std::string ops_s = "400000";
    bench::parseArgs(argc, argv,
                     {{"ops", &ops_s,
                       "simulated memory accesses per measurement"}});
    bench::banner("Figure 3",
                  "Percentage of cycles lost to page walks");
    bench::WallTimer wall;

    struct Row
    {
        const char *name;
        AccessProfile profile;
        bool try1g;
    };
    const Row rows[] = {
        {"Web", makeAccessProfile(WorkloadKind::Web), true},
        {"Cache A", makeAccessProfile(WorkloadKind::CacheA), false},
        {"Cache B", makeAccessProfile(WorkloadKind::CacheB), false},
        {"Ads", makeAdsAccessProfile(), false},
    };

    const std::uint64_t ops = bench::flagU64(ops_s, "ops");

    // The paper's bars are as-deployed measurements: THP backs only
    // part of the footprint on production machines (fragmentation),
    // and the 1 GB configuration adds a few HugeTLB gigantic pages
    // on top. We measure the same partial-coverage mixes.
    const double thpDataCoverage = 0.55;
    const double thpCodeCoverage = 0.85;

    Table table;
    table.header({"Workload", "Pages", "Data walk %", "Instr walk %",
                  "Total %"});
    for (const Row &row : rows) {
        // 4 KB everywhere.
        const WalkMeasurement m4k = measureWalkCycles(
            row.profile, BackingMix{}, BackingMix{}, ops, 0x403);
        // 2 MB via THP: partial coverage, as on production hosts.
        BackingMix data_thp;
        data_thp.hugeFraction = thpDataCoverage;
        BackingMix code_thp;
        code_thp.hugeFraction = thpCodeCoverage;
        const WalkMeasurement m2m = measureWalkCycles(
            row.profile, data_thp, code_thp, ops, 0x403);
        table.row({row.name, "4KB",
                   formatPercent(m4k.dataWalkFrac),
                   formatPercent(m4k.instrWalkFrac),
                   formatPercent(m4k.totalWalkFrac())});
        table.row({"", "2MB", formatPercent(m2m.dataWalkFrac),
                   formatPercent(m2m.instrWalkFrac),
                   formatPercent(m2m.totalWalkFrac())});
        if (row.try1g) {
            // A few 1 GB HugeTLB pages for the hottest data on top
            // of the THP mix (the paper's Web configuration).
            BackingMix data_1g = data_thp;
            data_1g.gigaPages = 4;
            const WalkMeasurement m1g = measureWalkCycles(
                row.profile, data_1g, code_thp, ops, 0x403);
            table.row({"", "1GB", formatPercent(m1g.dataWalkFrac),
                       formatPercent(m1g.instrWalkFrac),
                       formatPercent(m1g.totalWalkFrac())});
        }
    }
    table.print();

    std::printf("\nShape check (paper): up to ~20%% of cycles in "
                "walks at 4KB; 2MB halves Web's instruction walks "
                "but barely moves its data walks;\n1GB pages are "
                "what cuts Web's data walk cycles (14%% -> 8%% in "
                "the paper).\n");
    bench::dumpWallMs(wall.ms());
    return 0;
}
