/**
 * @file
 * Figure 4: CDF across the fleet of free-memory contiguity at the
 * 2 MB / 4 MB / 32 MB / 1 GB allocation levels, on vanilla Linux.
 * Headline numbers: the share of servers without a single free 2 MB
 * block (paper: 23%) and without a 32 MB block (paper: 59%).
 */

#include "bench/bench_util.hh"

using namespace ctg;

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv);
    bench::banner("Figure 4",
                  "Contiguity availability as a percentage of free "
                  "memory (fleet CDF, vanilla Linux)");

    Fleet fleet(bench::standardFleet("vanilla"));
    StatRegistry registry;
    fleet.attachTelemetry(registry);
    bench::regFaultStats(registry);
    const auto scans = fleet.run();

    EmpiricalCdf cdfs[4];
    unsigned no_2m = 0;
    unsigned no_32m = 0;
    unsigned no_1g = 0;
    for (const ServerScan &scan : scans) {
        for (int i = 0; i < 4; ++i)
            cdfs[i].add(scan.freeContiguity[i] * 100.0);
        no_2m += scan.freeContiguity[0] == 0.0;
        no_32m += scan.freeContiguity[2] == 0.0;
        no_1g += scan.freeContiguity[3] == 0.0;
    }

    Table table("CDF of servers vs contiguity (% of free memory)");
    std::vector<double> thresholds = {0, 2, 5, 10, 15, 20, 25, 30,
                                      50, 80};
    std::vector<std::string> header = {"Block size"};
    for (const double x : thresholds)
        header.push_back("<=" + cell(x, 0) + "%");
    table.header(header);
    const char *labels[4] = {"2MB", "4MB", "32MB", "1GB"};
    for (int i = 0; i < 4; ++i)
        bench::printCdfRows(table, labels[i], thresholds, cdfs[i]);
    table.print();

    const double n = static_cast<double>(scans.size());
    std::printf("\nServers lacking even one free block:  2MB: %.0f%%"
                "   32MB: %.0f%%   1GB: %.0f%%\n",
                100.0 * no_2m / n, 100.0 * no_32m / n,
                100.0 * no_1g / n);
    std::printf("(paper: 23%% of servers lack a free 2MB block, 59%% "
                "lack 32MB; dynamic 1GB allocation is practically "
                "impossible)\n");
    bench::printFleetWall(fleet);
    bench::dumpStats(registry, "fleet stats (JSON lines)");
    return 0;
}
