/**
 * @file
 * Figure 5: fleet CDF of the share of 2 MB / 4 MB / 32 MB / 1 GB
 * blocks containing unmovable pages, plus the Section 2.5 scattering
 * headline: a median ~7.6% of 4 KB pages are unmovable yet they
 * contaminate ~34% of 2 MB blocks.
 */

#include <algorithm>

#include "bench/bench_util.hh"

using namespace ctg;

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv);
    bench::banner("Figure 5",
                  "Distribution of unmovable pages in contiguous "
                  "regions (fleet CDF, vanilla Linux)");

    Fleet fleet(bench::standardFleet("vanilla"));
    StatRegistry registry;
    fleet.attachTelemetry(registry);
    bench::regFaultStats(registry);
    const auto scans = fleet.run();

    EmpiricalCdf cdfs[4];
    std::vector<double> page_ratios;
    std::vector<double> block_ratios;
    for (const ServerScan &scan : scans) {
        for (int i = 0; i < 4; ++i)
            cdfs[i].add(scan.unmovableBlocks[i] * 100.0);
        page_ratios.push_back(scan.unmovablePageRatio * 100.0);
        block_ratios.push_back(scan.unmovableBlocks[0] * 100.0);
    }

    Table table("CDF of servers vs % of blocks containing unmovable "
                "pages");
    std::vector<double> thresholds = {5, 10, 20, 30, 40, 60, 80, 100};
    std::vector<std::string> header = {"Block size"};
    for (const double x : thresholds)
        header.push_back("<=" + cell(x, 0) + "%");
    table.header(header);
    const char *labels[4] = {"2MB", "4MB", "32MB", "1GB"};
    for (int i = 0; i < 4; ++i)
        bench::printCdfRows(table, labels[i], thresholds, cdfs[i]);
    table.print();

    std::sort(page_ratios.begin(), page_ratios.end());
    std::sort(block_ratios.begin(), block_ratios.end());
    const double median_pages = page_ratios[page_ratios.size() / 2];
    const double median_blocks =
        block_ratios[block_ratios.size() / 2];
    std::printf("\nMedian unmovable 4KB pages: %.1f%% of all pages\n",
                median_pages);
    std::printf("Median 2MB blocks contaminated: %.1f%% "
                "(scattering amplification %.1fx)\n",
                median_blocks, median_blocks / median_pages);
    std::printf("(paper: 7.6%% of pages make 34%% of 2MB blocks "
                "unmovable, ~4.5x)\n");
    bench::printFleetWall(fleet);
    bench::dumpStats(registry, "fleet stats (JSON lines)");
    return 0;
}
