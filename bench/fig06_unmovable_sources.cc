/**
 * @file
 * Figure 6: breakdown of unmovable allocations by source across the
 * fleet. Paper: networking >73%, slab 12%, filesystems, page tables,
 * others ~4%.
 */

#include "bench/bench_util.hh"

using namespace ctg;

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv);
    bench::banner("Figure 6", "Sources of unmovable allocations");

    Fleet fleet(bench::standardFleet("vanilla", 32));
    StatRegistry registry;
    fleet.attachTelemetry(registry);
    bench::regFaultStats(registry);
    const auto scans = fleet.run();

    std::array<std::uint64_t, numAllocSources> totals{};
    for (const ServerScan &scan : scans) {
        for (unsigned s = 0; s < numAllocSources; ++s)
            totals[s] += scan.bySource[s];
    }
    std::uint64_t all = 0;
    for (const std::uint64_t c : totals)
        all += c;

    // The paper reports five categories; kernel text and user pins
    // fold into "Others".
    const double networking =
        totals[static_cast<unsigned>(AllocSource::Networking)];
    const double slab =
        totals[static_cast<unsigned>(AllocSource::Slab)];
    const double fs =
        totals[static_cast<unsigned>(AllocSource::Filesystem)];
    const double pt =
        totals[static_cast<unsigned>(AllocSource::PageTables)];
    const double others = static_cast<double>(all) - networking -
                          slab - fs - pt;

    Table table;
    table.header({"Source", "Share", "(paper)"});
    const double total = static_cast<double>(all);
    table.row({"Networking", formatPercent(networking / total),
               "73%"});
    table.row({"Slab", formatPercent(slab / total), "12%"});
    table.row({"File systems", formatPercent(fs / total), "~6%"});
    table.row({"Page tables", formatPercent(pt / total), "~5%"});
    table.row({"Others", formatPercent(others / total), "~4%"});
    table.print();
    bench::printFleetWall(fleet);
    bench::dumpStats(registry, "fleet stats (JSON lines)");
    return 0;
}
