/**
 * @file
 * Figure 10: end-to-end performance of Web, Cache A and Cache B on
 * (i) a fully fragmented vanilla server, (ii) a partially fragmented
 * vanilla server (workload restarted after a previous tenant), and
 * (iii) Contiguitas.
 *
 * Method: the memory-layout simulation determines how much of each
 * footprint each kernel actually backs with 2 MB / 1 GB pages after
 * the respective pretreatment; those coverages drive the TLB
 * simulation, and performance is the inverse of cycles-per-operation
 * normalized to Linux-Full. Web additionally attempts dynamic 1 GB
 * HugeTLB allocations, whose contribution is reported separately
 * (the paper's stacked red bar: +7.5%).
 */

#include "bench/bench_util.hh"
#include "fleet/server.hh"
#include "perfmodel/walkmodel.hh"

using namespace ctg;

namespace
{

struct Coverage
{
    double hugeFraction = 0.0; //!< 2 MB-backed share of resident set
    double gigaFraction = 0.0; //!< 1 GB-backed share
};

/** Run the layout simulation and report achieved page-size mix. */
Coverage
layoutCoverage(WorkloadKind kind, bool contiguitas, bool prefragment,
               bool restart, bool try_giga)
{
    Server::Config config;
    // Web attempts 1 GB pages; give it a machine where a gigantic
    // page is a reasonable fraction of memory (as 4 GB is of the
    // paper's 64 GB hosts).
    config.memBytes = kind == WorkloadKind::Web
                          ? std::uint64_t{8} << 30
                          : std::uint64_t{2} << 30;
    config.policy.name = contiguitas ? "contiguitas" : "vanilla";
    config.kind = kind;
    config.prefragment = prefragment;
    config.uptimeSec = 45.0;
    config.seed = 0xf16a10;
    Server server(config);
    server.run();
    if (restart) {
        // Code deploy: the service restarts on the fragmented
        // machine and faults its footprint back in.
        server.workload().restart();
        server.workload().runFor(5.0);
    }

    Coverage cov;
    unsigned giga = 0;
    if (try_giga)
        giga = server.workload().tryBackGigantic(2);
    const double resident = static_cast<double>(
        server.workload().residentPages());
    cov.hugeFraction = server.workload().hugeBackedFraction();
    if (resident > 0) {
        cov.gigaFraction =
            static_cast<double>(giga) *
            static_cast<double>(pagesPerGiga) /
            (resident +
             static_cast<double>(giga) *
                 static_cast<double>(pagesPerGiga));
    }
    return cov;
}

/** Cycles per operation under a measured coverage. */
double
cyclesPerOp(const AccessProfile &profile, const Coverage &cov,
            std::uint64_t ops)
{
    BackingMix data;
    data.hugeFraction = cov.hugeFraction;
    // gigaFraction of the data region, in whole gigabytes.
    data.gigaPages = static_cast<unsigned>(
        cov.gigaFraction *
        static_cast<double>(profile.dataBytes) /
        static_cast<double>(gigaBytes));
    BackingMix code;
    code.hugeFraction = cov.hugeFraction;
    return measureWalkCycles(profile, data, code, ops, 0xe2e).cpo();
}

} // namespace

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv);
    const bench::WallTimer timer;
    bench::banner("Figure 10",
                  "End-to-end performance (relative to Linux on a "
                  "fully fragmented server)");

    const WorkloadKind kinds[] = {WorkloadKind::Web,
                                  WorkloadKind::CacheA,
                                  WorkloadKind::CacheB};
    const std::uint64_t ops = 250000;

    Table table;
    table.header({"Workload", "System", "2MB coverage",
                  "1GB coverage", "Relative perf"});
    for (const WorkloadKind kind : kinds) {
        const bool is_web = kind == WorkloadKind::Web;
        const AccessProfile profile = makeAccessProfile(kind);

        const Coverage full = layoutCoverage(kind, false, true,
                                             false, is_web);
        const Coverage partial = layoutCoverage(kind, false, false,
                                                true, is_web);
        const Coverage ctg = layoutCoverage(kind, true, true, false,
                                            is_web);
        Coverage ctg_2m_only = ctg;
        ctg_2m_only.gigaFraction = 0.0;

        const double cpo_full = cyclesPerOp(profile, full, ops);
        const double cpo_partial = cyclesPerOp(profile, partial, ops);
        const double cpo_ctg2m =
            cyclesPerOp(profile, ctg_2m_only, ops);
        const double cpo_ctg =
            is_web && ctg.gigaFraction > 0
                ? cyclesPerOp(profile, ctg, ops)
                : cpo_ctg2m;

        table.row({workloadName(kind), "Linux Full",
                   formatPercent(full.hugeFraction),
                   formatPercent(full.gigaFraction), cell(1.0, 3)});
        table.row({"", "Linux Partial",
                   formatPercent(partial.hugeFraction),
                   formatPercent(partial.gigaFraction),
                   cell(cpo_full / cpo_partial, 3)});
        table.row({"", "Contiguitas (2MB)",
                   formatPercent(ctg_2m_only.hugeFraction),
                   formatPercent(0.0),
                   cell(cpo_full / cpo_ctg2m, 3)});
        if (is_web) {
            table.row({"", "Contiguitas (+1GB)",
                       formatPercent(ctg.hugeFraction),
                       formatPercent(ctg.gigaFraction),
                       cell(cpo_full / cpo_ctg, 3)});
            std::printf("Web 1GB increment: +%.1f%% on top of the "
                        "2MB win (paper: +7.5%%)\n",
                        100.0 * (cpo_ctg2m / cpo_ctg - 1.0));
        }
    }
    table.print();

    std::printf("\nShape check (paper): Contiguitas beats Linux-Full "
                "by 7-18%% and Linux-Partial by 2-9%%;\nonly "
                "Contiguitas can allocate dynamic 1GB pages.\n");
    bench::dumpWallMs(timer.ms());
    return 0;
}
