/**
 * @file
 * Figure 11: unmovable 2 MB blocks per workload, stock Linux vs
 * Contiguitas. Paper: Linux 19-42% (average 31%); Contiguitas at
 * most 9% (average 7%), confined in the unmovable region. Also
 * reports the Section 5.2 internal fragmentation of the unmovable
 * region (paper: ~22% of pages in its 2 MB blocks are free).
 *
 * Each (workload, system) cell is a *population* of servers — the
 * fleet's seed spreads intensities and uptimes, and the reported
 * share is the population mean — run in parallel by the fleet
 * executor. CTG_FIG11_POP sets servers per cell (default 8, i.e. a
 * 64-server study); CTG_THREADS sets the worker count. Output is
 * bit-identical at any thread count.
 */

#include "bench/bench_util.hh"
#include "kernel/migrate.hh"

using namespace ctg;

namespace
{

struct CellResult
{
    double unmovableShare = 0.0;     //!< mean of unmovableBlocks[2M]
    double unmovablePageRatio = 0.0; //!< mean unmovable page share
    double regionFreeShare = 0.0;    //!< mean Section 5.2 free share
    double wallMs = 0.0;
    unsigned threads = 1;
};

CellResult
runCell(WorkloadKind kind, bool contiguitas, unsigned pop,
        std::string *stats_json)
{
    Fleet::Config config;
    config.servers = pop;
    config.memBytes = std::uint64_t{2} << 30;
    config.policy.name = contiguitas ? "contiguitas" : "vanilla";
    config.workloadOverride = workloadKey(kind);
    config.minUptimeSec = 45.0;
    config.maxUptimeSec = 75.0;
    config.minIntensity = 0.7;
    config.maxIntensity = 1.3;
    config.prefragmentFrac = 0.25;
    config.seed = 0x11f1f1 ^
                  (static_cast<std::uint64_t>(kind) * 2 +
                   (contiguitas ? 1 : 0));
    config.applyEnvOverlay();
    Fleet fleet(config);

    std::string prefix = std::string(workloadName(kind)) +
                         (contiguitas ? ".ctg" : ".linux");
    for (char &c : prefix) {
        if (c == ' ')
            c = '_'; // "Cache A" -> "Cache_A"; spaces are not
                     // legal in stat names
    }
    // Per-cell registry: the wall/thread gauges read live fleet
    // state, so dump before the fleet dies.
    StatRegistry registry;
    fleet.attachTelemetry(registry, nullptr, prefix);
    bench::regFaultStats(registry);

    const auto scans = fleet.run();
    CellResult cell;
    for (const ServerScan &scan : scans) {
        cell.unmovableShare += scan.unmovableBlocks[0];
        cell.unmovablePageRatio += scan.unmovablePageRatio;
        cell.regionFreeShare += scan.unmovableRegionFreeShare;
    }
    const double n = static_cast<double>(scans.size());
    cell.unmovableShare /= n;
    cell.unmovablePageRatio /= n;
    cell.regionFreeShare /= n;
    cell.wallMs = fleet.lastRunWallMs();
    cell.threads = fleet.lastRunThreads();
    *stats_json += registry.jsonLines();
    return cell;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv);
    bench::banner("Figure 11",
                  "Unmovable 2MB blocks: Linux vs Contiguitas");

    const WorkloadKind kinds[] = {WorkloadKind::CI, WorkloadKind::Web,
                                  WorkloadKind::CacheA,
                                  WorkloadKind::CacheB};
    const unsigned pop = sim::EnvConfig::fromEnv().fig11Population;
    std::printf("(population: %u servers per cell, %zu cells)\n",
                pop, 2 * std::size(kinds));

    Table table;
    table.header({"Workload", "Linux", "Contiguitas",
                  "Linux unmov pages", "Ctg region free share"});
    double linux_sum = 0.0;
    double ctg_sum = 0.0;
    double ctg_max = 0.0;
    double free_share_sum = 0.0;
    double wall_sum = 0.0;
    unsigned threads = 1;
    std::string stats_json;
    for (const WorkloadKind kind : kinds) {
        const CellResult linux_cell =
            runCell(kind, false, pop, &stats_json);
        const CellResult ctg_cell =
            runCell(kind, true, pop, &stats_json);
        linux_sum += linux_cell.unmovableShare;
        ctg_sum += ctg_cell.unmovableShare;
        ctg_max = std::max(ctg_max, ctg_cell.unmovableShare);
        free_share_sum += ctg_cell.regionFreeShare;
        wall_sum += linux_cell.wallMs + ctg_cell.wallMs;
        threads = linux_cell.threads;
        table.row({
            workloadName(kind),
            formatPercent(linux_cell.unmovableShare),
            formatPercent(ctg_cell.unmovableShare),
            formatPercent(linux_cell.unmovablePageRatio),
            formatPercent(ctg_cell.regionFreeShare),
        });
    }
    table.print();

    const double n = static_cast<double>(std::size(kinds));
    std::printf("\nAverages: Linux %.1f%% vs Contiguitas %.1f%% "
                "(max %.1f%%)   [paper: 31%% vs 7%% (max 9%%)]\n",
                100.0 * linux_sum / n, 100.0 * ctg_sum / n,
                100.0 * ctg_max);
    std::printf("Unmovable-region internal fragmentation: %.0f%% of "
                "pages free inside its 2MB blocks [paper: 22%%]\n",
                100.0 * free_share_sum / n);
    std::printf("\n[fleet] %u worker thread(s), total fleet wall "
                "%.0f ms across %u servers (set CTG_THREADS to "
                "change)\n",
                threads, wall_sum,
                pop * 2 * unsigned(std::size(kinds)));

    // Process-wide software-migration totals across every cell.
    StatRegistry totals;
    regMigrateStats(StatGroup(totals, "kernel.migrate"));
    stats_json += totals.jsonLines();
    bench::dumpText("per-cell fleet stats (JSON lines)", stats_json);
    return 0;
}
