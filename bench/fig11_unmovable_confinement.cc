/**
 * @file
 * Figure 11: unmovable 2 MB blocks per workload, stock Linux vs
 * Contiguitas. Paper: Linux 19-42% (average 31%); Contiguitas at
 * most 9% (average 7%), confined in the unmovable region. Also
 * reports the Section 5.2 internal fragmentation of the unmovable
 * region (paper: ~22% of pages in its 2 MB blocks are free).
 */

#include "bench/bench_util.hh"
#include "fleet/server.hh"
#include "kernel/migrate.hh"

using namespace ctg;

namespace
{

ServerScan
runOne(WorkloadKind kind, bool contiguitas, std::string *stats_json)
{
    Server::Config config;
    config.memBytes = std::uint64_t{2} << 30;
    config.contiguitas = contiguitas;
    config.kind = kind;
    config.uptimeSec = 60.0;
    config.seed = 0x11f1f1;
    Server server(config);

    // Per-run registry: the gauges read live server state, so dump
    // before the server dies.
    StatRegistry registry;
    std::string prefix = std::string(workloadName(kind)) +
                         (contiguitas ? ".ctg" : ".linux");
    for (char &c : prefix) {
        if (c == ' ')
            c = '_'; // "Cache A" -> "Cache_A"; spaces are not
                     // legal in stat names
    }
    server.attachTelemetry(registry, nullptr, prefix);
    regMigrateStats(
        StatGroup(registry, prefix + ".kernel.migrate"));
    bench::regFaultStats(registry);
    const ServerScan scan = server.run();
    *stats_json += registry.jsonLines();
    return scan;
}

} // namespace

int
main()
{
    bench::banner("Figure 11",
                  "Unmovable 2MB blocks: Linux vs Contiguitas");

    const WorkloadKind kinds[] = {WorkloadKind::CI, WorkloadKind::Web,
                                  WorkloadKind::CacheA,
                                  WorkloadKind::CacheB};

    Table table;
    table.header({"Workload", "Linux", "Contiguitas",
                  "Linux unmov pages", "Ctg region free share"});
    double linux_sum = 0.0;
    double ctg_sum = 0.0;
    double ctg_max = 0.0;
    double free_share_sum = 0.0;
    std::string stats_json;
    for (const WorkloadKind kind : kinds) {
        const ServerScan linux_scan =
            runOne(kind, false, &stats_json);
        const ServerScan ctg_scan = runOne(kind, true, &stats_json);
        linux_sum += linux_scan.unmovableBlocks[0];
        ctg_sum += ctg_scan.unmovableBlocks[0];
        ctg_max = std::max(ctg_max, ctg_scan.unmovableBlocks[0]);
        free_share_sum += ctg_scan.unmovableRegionFreeShare;
        table.row({
            workloadName(kind),
            formatPercent(linux_scan.unmovableBlocks[0]),
            formatPercent(ctg_scan.unmovableBlocks[0]),
            formatPercent(linux_scan.unmovablePageRatio),
            formatPercent(ctg_scan.unmovableRegionFreeShare),
        });
    }
    table.print();

    const double n = static_cast<double>(std::size(kinds));
    std::printf("\nAverages: Linux %.1f%% vs Contiguitas %.1f%% "
                "(max %.1f%%)   [paper: 31%% vs 7%% (max 9%%)]\n",
                100.0 * linux_sum / n, 100.0 * ctg_sum / n,
                100.0 * ctg_max);
    std::printf("Unmovable-region internal fragmentation: %.0f%% of "
                "pages free inside its 2MB blocks [paper: 22%%]\n",
                100.0 * free_share_sum / n);
    bench::dumpText("per-server stats (JSON lines)", stats_json);
    return 0;
}
