/**
 * @file
 * Figure 12: potential memory contiguity — the fraction of memory a
 * hypothetically perfect software compaction could consolidate into
 * 2 MB / 32 MB / 1 GB regions. On vanilla Linux scattered unmovable
 * pages cap this well below 100% and make 1 GB unreachable; under
 * Contiguitas the whole movable region is recoverable by design.
 */

#include <chrono>
#include <string>
#include <vector>

#include "base/trace.hh"
#include "bench/bench_util.hh"
#include "fleet/server.hh"

using namespace ctg;

namespace
{

ServerScan
runOne(WorkloadKind kind, bool contiguitas)
{
    Server::Config config;
    // 8 GiB machines so the 1 GB granularity has enough blocks.
    config.memBytes = std::uint64_t{8} << 30;
    config.policy.name = contiguitas ? "contiguitas" : "vanilla";
    config.kind = kind;
    config.uptimeSec = 50.0;
    config.seed = 0x12f1;
    Server server(config);
    return server.run();
}

} // namespace

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv);
    bench::banner("Figure 12",
                  "Potential contiguity after perfect compaction "
                  "(% of total memory)");

    const WorkloadKind kinds[] = {WorkloadKind::CI, WorkloadKind::Web,
                                  WorkloadKind::CacheA,
                                  WorkloadKind::CacheB};

    // The eight (workload, system) cells are independent servers:
    // run them through the work-stealing executor, collect into
    // per-cell slots, and print in cell order — output is identical
    // at any CTG_THREADS.
    const auto wallStart = std::chrono::steady_clock::now();
    Executor executor;
    std::vector<ServerScan> cells(2 * std::size(kinds));
    FaultInjector &ambient = faultInjector();
    std::vector<FaultInjector> cellFaults(cells.size(),
                                          FaultInjector(0));
    std::vector<std::string> cellTraces(cells.size());
    executor.run(cells.size(), [&](std::size_t i) {
        trace::ThreadCapture capture;
        cellFaults[i] = ambient.forkForTask(i);
        const FaultInjectorScope scope(cellFaults[i]);
        cells[i] = runOne(kinds[i / 2], /*contiguitas=*/i % 2 == 1);
        cellTraces[i] = capture.take();
    });
    for (std::size_t i = 0; i < cells.size(); ++i) {
        trace::emitRaw(cellTraces[i]);
        ambient.absorbStats(cellFaults[i]);
    }
    const double wallMs =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - wallStart)
            .count();

    Table table;
    table.header({"Workload", "System", "2M", "32M", "1G"});
    for (std::size_t k = 0; k < std::size(kinds); ++k) {
        const ServerScan &linux_scan = cells[2 * k];
        const ServerScan &ctg_scan = cells[2 * k + 1];
        table.row({workloadName(kinds[k]), "Linux",
                   formatPercent(linux_scan.potentialContiguity[0]),
                   formatPercent(linux_scan.potentialContiguity[1]),
                   formatPercent(linux_scan.potentialContiguity[2])});
        table.row({"", "Contiguitas",
                   formatPercent(ctg_scan.potentialContiguity[0]),
                   formatPercent(ctg_scan.potentialContiguity[1]),
                   formatPercent(ctg_scan.potentialContiguity[2])});
    }
    table.print();
    std::printf("\n[executor] %u worker thread(s), wall %.0f ms for "
                "%zu cells (set CTG_THREADS to change)\n",
                executor.threads(), wallMs, cells.size());

    std::printf("\nShape check: Linux degrades sharply toward 1G "
                "(paper: no 1G region at all);\nContiguitas keeps "
                "the whole movable region recoverable at every "
                "granularity.\n");
    return 0;
}
