/**
 * @file
 * Figure 12: potential memory contiguity — the fraction of memory a
 * hypothetically perfect software compaction could consolidate into
 * 2 MB / 32 MB / 1 GB regions. On vanilla Linux scattered unmovable
 * pages cap this well below 100% and make 1 GB unreachable; under
 * Contiguitas the whole movable region is recoverable by design.
 */

#include "bench/bench_util.hh"
#include "fleet/server.hh"

using namespace ctg;

namespace
{

ServerScan
runOne(WorkloadKind kind, bool contiguitas)
{
    Server::Config config;
    // 8 GiB machines so the 1 GB granularity has enough blocks.
    config.memBytes = std::uint64_t{8} << 30;
    config.contiguitas = contiguitas;
    config.kind = kind;
    config.uptimeSec = 50.0;
    config.seed = 0x12f1;
    Server server(config);
    return server.run();
}

} // namespace

int
main()
{
    bench::banner("Figure 12",
                  "Potential contiguity after perfect compaction "
                  "(% of total memory)");

    const WorkloadKind kinds[] = {WorkloadKind::CI, WorkloadKind::Web,
                                  WorkloadKind::CacheA,
                                  WorkloadKind::CacheB};

    Table table;
    table.header({"Workload", "System", "2M", "32M", "1G"});
    for (const WorkloadKind kind : kinds) {
        const ServerScan linux_scan = runOne(kind, false);
        const ServerScan ctg_scan = runOne(kind, true);
        table.row({workloadName(kind), "Linux",
                   formatPercent(linux_scan.potentialContiguity[0]),
                   formatPercent(linux_scan.potentialContiguity[1]),
                   formatPercent(linux_scan.potentialContiguity[2])});
        table.row({"", "Contiguitas",
                   formatPercent(ctg_scan.potentialContiguity[0]),
                   formatPercent(ctg_scan.potentialContiguity[1]),
                   formatPercent(ctg_scan.potentialContiguity[2])});
    }
    table.print();

    std::printf("\nShape check: Linux degrades sharply toward 1G "
                "(paper: no 1G region at all);\nContiguitas keeps "
                "the whole movable region recoverable at every "
                "granularity.\n");
    return 0;
}
