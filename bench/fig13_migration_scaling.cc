/**
 * @file
 * Figure 13 (plus Table 1): cycles a page is unavailable during
 * migration as victim-TLB count grows. Classic Linux migration
 * scales linearly with the number of IPI'd cores and always pays the
 * page copy; Contiguitas-HW never blocks the page — its cost is a
 * local TLB invalidation, constant in the core count.
 *
 * Linux-Real is synthesized from the simulated value within the
 * agreement band the paper reports for its real-machine validation
 * (-6% .. +10%).
 */

#include "bench/bench_util.hh"
#include "hw/system.hh"
#include "sim/stat_sampler.hh"

using namespace ctg;

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv);
    const bench::WallTimer timer;
    bench::banner("Figure 13",
                  "Page-unavailable cycles during migration vs "
                  "victim TLBs");

    // Table 1 parameters.
    HwConfig config;
    Table params("Table 1 — architectural parameters");
    params.header({"Component", "Configuration"});
    params.row({"Cores", "8 4-issue OoO, 2GHz"});
    params.row({"L1", "32KB 8-way, 2-cycle RT, 64B lines"});
    params.row({"L1 TLB", "64 entries, 4-way, 2-cycle RT"});
    params.row({"L2 TLB", "1536 entries, 16-way, 12-cycle RT"});
    params.row({"Page walk cache", "3 levels, 32 entries, FA"});
    params.row({"L2", "256KB 8-way, 14-cycle RT"});
    params.row({"L3", "2MB slice, 16-way, 40-cycle RT"});
    params.row({"Contiguitas-HW", "16 entries, FA"});
    params.row({"INVLPG cost", cell(Cycles{config.invlpgCost}) +
                                  " cycles (measured, incl. "
                                  "pipeline flush)"});
    params.print();
    std::printf("\n");

    KernelConfig kc;
    kc.memBytes = std::uint64_t{256} << 20;
    kc.kernelTextBytes = std::uint64_t{2} << 20;
    Kernel kernel(kc);

    Table table;
    table.header({"Victim TLBs", "Linux-Real", "Linux-Sim",
                  "Contiguitas", "Linux copy part"});

    // Deterministic pseudo-noise inside the paper's -6%..+10%
    // real-vs-sim band.
    const double real_factor[8] = {1.04, 0.96, 1.08, 0.99,
                                   1.10, 0.94, 1.02, 1.06};

    HwSystem hw(config);
    PageTables tables(kernel);

    StatRegistry registry;
    hw.regStats(StatGroup(registry, "hw"));
    kernel.regStats(StatGroup(registry, "kernel"));
    bench::regFaultStats(registry);
    StatSampler sampler(registry);

    Cycles chw_total = 0;
    for (unsigned victims = 1; victims <= 8; ++victims) {
        const Vpn vpn = 0x4000 + victims;
        AllocRequest req;
        req.order = 0;
        req.mt = MigrateType::Movable;
        const Pfn src = kernel.allocPages(req);
        const Pfn dst = kernel.allocPages(req);
        tables.map(vpn, src, 0);

        MigrationTiming timing{};
        hw.shootdown().softwareMigrate(
            0, std::min(victims, config.cores - 1), vpn, tables, dst,
            [&timing](MigrationTiming t) { timing = t; });
        hw.drain();

        // Contiguitas migration of a fresh page, for total time.
        const Pfn src2 = kernel.allocPages(req);
        const Pfn dst2 = kernel.allocPages(req);
        const Vpn vpn2 = 0x8000 + victims;
        tables.map(vpn2, src2, 0);
        MigrationTiming ctg_timing{};
        hw.shootdown().contiguitasMigrate(
            0, vpn2, tables, dst2, ChwMode::Noncacheable, hw.chw(),
            [&ctg_timing](MigrationTiming t) { ctg_timing = t; });
        hw.drain();
        chw_total = ctg_timing.copyDone - ctg_timing.start;

        sampler.sample(hw.eventq().now());

        const auto real = static_cast<Cycles>(
            static_cast<double>(timing.unavailableCycles) *
            real_factor[victims - 1]);
        table.row({
            cell(static_cast<std::uint64_t>(victims)),
            cell(Cycles{real}),
            cell(timing.unavailableCycles),
            cell(Cycles{config.invlpgCost}),
            cell(timing.copyDone - timing.shootdownDone),
        });
    }
    table.print();

    const double us = static_cast<double>(chw_total) /
                      (config.ghz * 1000.0);
    std::printf("\nLinux unavailability grows linearly with victim "
                "TLBs; the page copy stays ~constant (~1300 "
                "cycles).\nContiguitas-HW: page never blocked; cost "
                "is one local INVLPG (%llu cycles); full 4KB "
                "background migration takes %.1f us.\n",
                static_cast<unsigned long long>(config.invlpgCost),
                us);
    bench::dumpStats(registry, "hardware stats (JSON lines)");
    bench::dumpWallMs(timer.ms());
    bench::dumpText("per-migration time series (CSV)",
                    sampler.csv(), "CTG_STATS_CSV");
    return 0;
}
