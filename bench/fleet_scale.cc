/**
 * @file
 * Fleet-scale capacity study: how many simulated servers one box can
 * hold. Runs a fig11-shaped population (mixed workload kinds,
 * intensity 0.7-1.3, 25% pre-fragmented, half stock Linux and half
 * Contiguitas) at the scale tier — small machines, short uptimes,
 * streaming scan sinks, coarse stepping, pooled per-worker server
 * arenas — and reports the numbers that bound population size:
 * frame-table bytes/frame, peak RSS (per shard when sharded),
 * servers/second and host heap allocations per server.
 *
 * Defaults to 100,000 servers; `--servers` and `--mem-mb` rescale.
 * `--threads` sets worker threads per process (0 = auto), `--shards`
 * forks that many worker processes over contiguous server ranges
 * (the 10^6-tier path), and `--coarse` / `--pool` toggle the scale
 * stepping mode and the server-arena pool (both on by default here;
 * both default off/on respectively elsewhere — see CTG_COARSE_STEP /
 * CTG_SLOT_POOL). The `--json BENCH_fleet.json` output carries, per
 * system, the measured `bytes_per_frame` next to
 * `bytes_per_frame_aos`, plus `allocs_per_server` next to the
 * churn-baseline `allocs_per_server_churn` a small pool-off probe
 * measures, so CI trend-tracks both the >= 2x footprint reduction
 * and the >= 10x allocation reduction directly.
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "base/arena.hh"
#include "base/host_mem.hh"
#include "bench/bench_util.hh"
#include "fleet/server_slot.hh"
#include "fleet/sharding.hh"

using namespace ctg;

namespace
{

struct PopulationResult
{
    double wallMs = 0.0;
    unsigned threads = 0;
    double meanFreeContiguity2m = 0.0;
    double meanUnmovableBlocks2m = 0.0;
    /** Frame-table footprint of a representative end-of-run server
     * (meta + link columns + owner side table), per frame. */
    double bytesPerFrame = 0.0;
    /** Owner side-table entries per 1000 frames on that server. */
    double sideEntriesPerKiloFrame = 0.0;
    /** Population size this result covers. */
    std::uint64_t servers = 0;
    /** Host heap allocations across the run (summed over shards). */
    std::uint64_t heapAllocs = 0;
    /** Per-shard accounting (one entry when unsharded). */
    std::vector<ShardStats> shards;
};

/** The fig11 population shape at the scale tier: the same intensity
 * and pre-fragmentation spread, uptimes shortened so 10^5-10^6
 * servers finish on one box (steady-state fragmentation shape, not
 * magnitude, is the point of this bench). */
Fleet::Config
scaleConfig(bool contiguitas, unsigned servers,
            std::uint64_t mem_bytes, unsigned threads, bool coarse,
            bool pool)
{
    Fleet::Config config;
    config.servers = servers;
    config.memBytes = mem_bytes;
    config.policy.name = contiguitas ? "contiguitas" : "vanilla";
    config.minUptimeSec = 2.0;
    config.maxUptimeSec = 5.0;
    config.minIntensity = 0.7;
    config.maxIntensity = 1.3;
    config.prefragmentFrac = 0.25;
    config.streamScans = true;
    config.threads = threads;
    config.coarseStep = coarse;
    config.slotPool = pool;
    config.seed = 0x5ca1e ^ (contiguitas ? 1 : 0);
    config.applyEnvOverlay();
    return config;
}

/** Frame-table footprint probe: run one representative server of
 * this population to its scan and measure the table it ends with.
 * The fleet's servers are transient (created and destroyed per
 * task), so the probe runs one through a pooled ServerSlot — the
 * same storage discipline fleet workers use — starting from the
 * fleet's own stamped base config. */
void
probeFootprint(const Fleet &fleet, PopulationResult *out)
{
    Server::Config sc = fleet.baseServerConfig();
    sc.kind = WorkloadKind::Web;
    sc.intensity = 1.0;
    sc.prefragment = true;
    sc.uptimeSec = fleet.config().minUptimeSec;
    sc.seed = 0xf00d;
    sc.applyEnvOverlay();
    ServerSlot slot;
    slot.begin();
    const ArenaScope scope(slot.arena());
    Server &server = slot.construct(sc);
    server.run();
    const FrameArray &frames = server.kernel().mem().frames();
    const double n =
        static_cast<double>(server.kernel().mem().numFrames());
    out->bytesPerFrame = static_cast<double>(frames.bytesUsed()) / n;
    out->sideEntriesPerKiloFrame =
        1000.0 * static_cast<double>(frames.sideTableEntries()) / n;
}

PopulationResult
runPopulation(bool contiguitas, unsigned servers,
              std::uint64_t mem_bytes, unsigned threads,
              unsigned shards, bool coarse, bool pool,
              std::string *stats_json)
{
    const Fleet::Config config = scaleConfig(
        contiguitas, servers, mem_bytes, threads, coarse, pool);
    const char *prefix = contiguitas ? "fleet.ctg" : "fleet.linux";

    PopulationResult result;
    result.servers = servers;

    if (shards > 1) {
        // Sharded: the scans stay in the worker processes (streamed
        // sinks carry the distribution); the parent only merges.
        const ShardRunResult run =
            runShardedFleet(config, shards, /*includeScans=*/false);
        result.wallMs = run.wallMs;
        result.threads = config.threads;
        result.meanFreeContiguity2m =
            run.sinks.freeContiguity2m.mean();
        result.meanUnmovableBlocks2m =
            run.sinks.unmovableBlocks2m.mean();
        result.shards = run.shards;
        for (const ShardStats &s : run.shards)
            result.heapAllocs += s.heapAllocs;
        // The probe needs the shared tables, not a run.
        const Fleet fleet(config);
        probeFootprint(fleet, &result);
        char line[160];
        std::snprintf(line, sizeof(line),
                      "{\"name\":\"%s.run_wall_ms\",\"kind\":"
                      "\"gauge\",\"value\":%.3f}\n",
                      prefix, result.wallMs);
        *stats_json += line;
    } else {
        Fleet fleet(config);
        StatRegistry registry;
        fleet.attachTelemetry(registry, nullptr, prefix);
        bench::regFaultStats(registry);
        const std::uint64_t allocsBefore = heapAllocCount();
        fleet.run();
        result.heapAllocs = heapAllocCount() - allocsBefore;
        result.wallMs = fleet.lastRunWallMs();
        result.threads = fleet.lastRunThreads();
        result.meanFreeContiguity2m =
            fleet.scanSinks().freeContiguity2m.mean();
        result.meanUnmovableBlocks2m =
            fleet.scanSinks().unmovableBlocks2m.mean();
        ShardStats stats;
        stats.begin = 0;
        stats.end = servers;
        stats.wallMs = result.wallMs;
        stats.peakRssBytes = peakRssBytes();
        stats.heapAllocs = result.heapAllocs;
        result.shards.push_back(stats);
        probeFootprint(fleet, &result);
        *stats_json += registry.jsonLines();
    }

    char line[160];
    std::snprintf(line, sizeof(line),
                  "{\"name\":\"%s.bytes_per_frame\",\"kind\":"
                  "\"gauge\",\"value\":%.3f}\n",
                  prefix, result.bytesPerFrame);
    *stats_json += line;
    std::snprintf(line, sizeof(line),
                  "{\"name\":\"%s.side_entries_per_1k_frames\","
                  "\"kind\":\"gauge\",\"value\":%.3f}\n",
                  prefix, result.sideEntriesPerKiloFrame);
    *stats_json += line;
    for (std::size_t s = 0; s < result.shards.size(); ++s) {
        const ShardStats &shard = result.shards[s];
        std::snprintf(
            line, sizeof(line),
            "{\"name\":\"%s.shard%zu.peak_rss_mb\",\"kind\":"
            "\"gauge\",\"value\":%.1f}\n",
            prefix, s,
            static_cast<double>(shard.peakRssBytes) /
                (1024.0 * 1024.0));
        *stats_json += line;
        if (result.shards.size() > 1) {
            std::printf("  %s shard %zu: servers [%u, %u) wall "
                        "%.0f ms rss %.0f MiB allocs/server %.0f\n",
                        contiguitas ? "ctg  " : "linux", s,
                        shard.begin, shard.end, shard.wallMs,
                        static_cast<double>(shard.peakRssBytes) /
                            (1024.0 * 1024.0),
                        static_cast<double>(shard.heapAllocs) /
                            std::max(1.0,
                                     static_cast<double>(
                                         shard.end - shard.begin)));
        }
    }
    return result;
}

/** Heap allocations per server with the slot pool off — the churn
 * baseline the pooled gauge is compared against. Probed on a small
 * population; per-server allocation cost is size-independent. */
std::uint64_t
churnProbeAllocs(bool contiguitas, unsigned servers,
                 std::uint64_t mem_bytes, unsigned threads,
                 bool coarse)
{
    const Fleet::Config config =
        scaleConfig(contiguitas, servers, mem_bytes, threads,
                    coarse, /*pool=*/false);
    Fleet fleet(config);
    const std::uint64_t before = heapAllocCount();
    fleet.run();
    return heapAllocCount() - before;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string servers_s = "100000";
    std::string mem_mb_s = "64";
    std::string threads_s = "0";
    std::string shards_s = "1";
    std::string coarse_s = "1";
    std::string pool_s = "1";
    bench::parseArgs(
        argc, argv,
        {{"servers", &servers_s,
          "total population size (split linux/contiguitas)"},
         {"mem-mb", &mem_mb_s, "per-server memory in MiB"},
         {"threads", &threads_s,
          "worker threads per process (0 = auto)"},
         {"shards", &shards_s,
          "worker processes over contiguous server ranges"},
         {"coarse", &coarse_s,
          "scale stepping: batch idle workload segments (0/1)"},
         {"pool", &pool_s,
          "pooled per-worker server arenas (0/1)"}});
    const unsigned servers = static_cast<unsigned>(
        bench::flagU64(servers_s, "servers"));
    const std::uint64_t memBytes =
        bench::flagU64(mem_mb_s, "mem-mb") << 20;
    const unsigned threads = static_cast<unsigned>(
        bench::flagU64(threads_s, "threads"));
    const unsigned shards = std::max<unsigned>(
        1, static_cast<unsigned>(bench::flagU64(shards_s, "shards")));
    const bool coarse = bench::flagU64(coarse_s, "coarse") != 0;
    const bool pool = bench::flagU64(pool_s, "pool") != 0;

    bench::banner("Fleet scale",
                  "10^5-10^6-server population capacity study");
    std::printf("(population: %u servers at %llu MiB each, scale "
                "tier, %u shard%s, coarse=%d pool=%d)\n",
                servers,
                static_cast<unsigned long long>(memBytes >> 20),
                shards, shards == 1 ? "" : "s", int(coarse),
                int(pool));

    std::string stats_json;
    bench::WallTimer wall;
    const PopulationResult linux_pop =
        runPopulation(false, servers / 2, memBytes, threads, shards,
                      coarse, pool, &stats_json);
    const PopulationResult ctg_pop =
        runPopulation(true, servers - servers / 2, memBytes, threads,
                      shards, coarse, pool, &stats_json);
    const double totalWallMs = wall.ms();

    // Churn baseline: a small pool-off population per system, sized
    // to keep the probe a rounding error of the main run.
    const unsigned churnLinuxServers =
        std::min(1000u, std::max(1u, servers / 2));
    const unsigned churnCtgServers =
        std::min(1000u, std::max(1u, servers - servers / 2));
    const std::uint64_t churnAllocs =
        churnProbeAllocs(false, churnLinuxServers, memBytes, threads,
                         coarse) +
        churnProbeAllocs(true, churnCtgServers, memBytes, threads,
                         coarse);
    const double churnPerServer =
        static_cast<double>(churnAllocs) /
        static_cast<double>(churnLinuxServers + churnCtgServers);
    const double pooledPerServer =
        static_cast<double>(linux_pop.heapAllocs +
                            ctg_pop.heapAllocs) /
        static_cast<double>(servers);
    const double allocReduction =
        pooledPerServer > 0.0 ? churnPerServer / pooledPerServer
                              : 0.0;

    const double serversPerSec =
        1000.0 * static_cast<double>(servers) / totalWallMs;
    std::uint64_t maxShardRss = peakRssBytes();
    for (const ShardStats &s : linux_pop.shards)
        maxShardRss = std::max(maxShardRss, s.peakRssBytes);
    for (const ShardStats &s : ctg_pop.shards)
        maxShardRss = std::max(maxShardRss, s.peakRssBytes);
    const double peakRssMb =
        static_cast<double>(maxShardRss) / (1024.0 * 1024.0);
    // Two reference points: what sizeof says the seed's
    // array-of-structs columns cost (PageFrame value type + two
    // 32-bit links), and the 40 bytes/frame the roadmap charged the
    // pre-diet table with (24 B metadata + 16 B link indices).
    const double aosBytesPerFrame =
        static_cast<double>(sizeof(PageFrame) +
                            2 * sizeof(std::uint32_t));
    const double roadmapBytesPerFrame = 40.0;
    const double maxBytesPerFrame =
        std::max(linux_pop.bytesPerFrame, ctg_pop.bytesPerFrame);

    Table table;
    table.header({"System", "free contig 2M", "unmov blocks 2M",
                  "bytes/frame", "side entries/1k frames"});
    table.row({"Linux", formatPercent(linux_pop.meanFreeContiguity2m),
               formatPercent(linux_pop.meanUnmovableBlocks2m),
               cell(linux_pop.bytesPerFrame, 2),
               cell(linux_pop.sideEntriesPerKiloFrame, 1)});
    table.row({"Contiguitas",
               formatPercent(ctg_pop.meanFreeContiguity2m),
               formatPercent(ctg_pop.meanUnmovableBlocks2m),
               cell(ctg_pop.bytesPerFrame, 2),
               cell(ctg_pop.sideEntriesPerKiloFrame, 1)});
    table.print();

    std::printf("\nFrame table: %.2f bytes/frame worst case — "
                "%.1fx under the pre-diet 40 (roadmap), %.1fx under "
                "the packed array-of-structs %.0f (sizeof)\n",
                maxBytesPerFrame,
                roadmapBytesPerFrame / maxBytesPerFrame,
                aosBytesPerFrame / maxBytesPerFrame,
                aosBytesPerFrame);
    std::printf("Throughput: %.0f servers/sec over %u servers "
                "(%u shard%s x %u worker threads, wall %.0f ms)\n",
                serversPerSec, servers, shards,
                shards == 1 ? "" : "s", linux_pop.threads,
                totalWallMs);
    std::printf("Heap allocations: %.0f/server pooled vs %.0f/server "
                "churn baseline (%.1fx reduction)\n",
                pooledPerServer, churnPerServer, allocReduction);
    std::printf("Peak RSS: %.0f MiB (max over %s)\n", peakRssMb,
                shards == 1 ? "the process" : "parent and shards");

    char line[160];
    std::snprintf(line, sizeof(line),
                  "{\"name\":\"fleet.servers\",\"kind\":\"gauge\","
                  "\"value\":%u}\n",
                  servers);
    stats_json += line;
    std::snprintf(line, sizeof(line),
                  "{\"name\":\"fleet.servers_per_sec\",\"kind\":"
                  "\"gauge\",\"value\":%.1f}\n",
                  serversPerSec);
    stats_json += line;
    std::snprintf(line, sizeof(line),
                  "{\"name\":\"fleet.threads\",\"kind\":\"gauge\","
                  "\"value\":%u}\n",
                  linux_pop.threads);
    stats_json += line;
    std::snprintf(line, sizeof(line),
                  "{\"name\":\"fleet.shards\",\"kind\":\"gauge\","
                  "\"value\":%u}\n",
                  shards);
    stats_json += line;
    std::snprintf(line, sizeof(line),
                  "{\"name\":\"fleet.coarse_step\",\"kind\":"
                  "\"gauge\",\"value\":%d}\n",
                  int(coarse));
    stats_json += line;
    std::snprintf(line, sizeof(line),
                  "{\"name\":\"fleet.slot_pool\",\"kind\":\"gauge\","
                  "\"value\":%d}\n",
                  int(pool));
    stats_json += line;
    std::snprintf(line, sizeof(line),
                  "{\"name\":\"fleet.allocs_per_server\",\"kind\":"
                  "\"gauge\",\"value\":%.1f}\n",
                  pooledPerServer);
    stats_json += line;
    std::snprintf(line, sizeof(line),
                  "{\"name\":\"fleet.allocs_per_server_churn\","
                  "\"kind\":\"gauge\",\"value\":%.1f}\n",
                  churnPerServer);
    stats_json += line;
    std::snprintf(line, sizeof(line),
                  "{\"name\":\"fleet.alloc_reduction_x\",\"kind\":"
                  "\"gauge\",\"value\":%.2f}\n",
                  allocReduction);
    stats_json += line;
    std::snprintf(line, sizeof(line),
                  "{\"name\":\"fleet.bytes_per_frame\",\"kind\":"
                  "\"gauge\",\"value\":%.3f}\n",
                  maxBytesPerFrame);
    stats_json += line;
    std::snprintf(line, sizeof(line),
                  "{\"name\":\"fleet.bytes_per_frame_aos\",\"kind\":"
                  "\"gauge\",\"value\":%.1f}\n",
                  aosBytesPerFrame);
    stats_json += line;
    std::snprintf(line, sizeof(line),
                  "{\"name\":\"fleet.bytes_per_frame_baseline\","
                  "\"kind\":\"gauge\",\"value\":%.1f}\n",
                  roadmapBytesPerFrame);
    stats_json += line;
    std::snprintf(line, sizeof(line),
                  "{\"name\":\"fleet.peak_rss_mb\",\"kind\":"
                  "\"gauge\",\"value\":%.1f}\n",
                  peakRssMb);
    stats_json += line;
    std::snprintf(line, sizeof(line),
                  "{\"name\":\"fleet.run_wall_ms\",\"kind\":"
                  "\"gauge\",\"value\":%.3f}\n",
                  totalWallMs);
    stats_json += line;
    bench::dumpText("fleet-scale stats (JSON lines)", stats_json);
    return 0;
}
