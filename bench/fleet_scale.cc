/**
 * @file
 * Fleet-scale capacity study: how many simulated servers one box can
 * hold. Runs a fig11-shaped population (mixed workload kinds,
 * intensity 0.7-1.3, 25% pre-fragmented, half stock Linux and half
 * Contiguitas) at the scale tier — small machines, short uptimes,
 * streaming scan sinks — and reports the numbers that bound
 * population size: frame-table bytes/frame, process peak RSS and
 * servers/second.
 *
 * Defaults to 100,000 servers; `--servers` and `--mem-mb` rescale.
 * The `--json BENCH_fleet.json` output carries, per system, the
 * measured `bytes_per_frame` next to `bytes_per_frame_aos` (the
 * sizeof of the materialized array-of-structs PageFrame the
 * struct-of-arrays table replaced), so CI trend-tracks the >= 2x
 * footprint reduction directly.
 */

#include <algorithm>
#include <cstdio>
#include <string>

#include "base/host_mem.hh"
#include "bench/bench_util.hh"

using namespace ctg;

namespace
{

struct PopulationResult
{
    double wallMs = 0.0;
    unsigned threads = 1;
    double meanFreeContiguity2m = 0.0;
    double meanUnmovableBlocks2m = 0.0;
    /** Frame-table footprint of a representative end-of-run server
     * (meta + link columns + owner side table), per frame. */
    double bytesPerFrame = 0.0;
    /** Owner side-table entries per 1000 frames on that server. */
    double sideEntriesPerKiloFrame = 0.0;
};

/** Frame-table footprint probe: run one representative server of
 * this population to its scan and measure the table it ends with.
 * The fleet's servers are transient (created and destroyed per
 * task), so the probe re-creates one rather than reaching into the
 * run. */
void
probeFootprint(const Fleet &fleet, PopulationResult *out)
{
    Server::Config sc;
    sc.memBytes = fleet.config().memBytes;
    sc.policy = fleet.config().policy;
    sc.kind = WorkloadKind::Web;
    sc.intensity = 1.0;
    sc.prefragment = true;
    sc.uptimeSec = fleet.config().minUptimeSec;
    sc.seed = 0xf00d;
    sc.sharedTables = fleet.sharedTables();
    sc.applyEnvOverlay();
    Server server(sc);
    server.run();
    const FrameArray &frames = server.kernel().mem().frames();
    const double n =
        static_cast<double>(server.kernel().mem().numFrames());
    out->bytesPerFrame = static_cast<double>(frames.bytesUsed()) / n;
    out->sideEntriesPerKiloFrame =
        1000.0 * static_cast<double>(frames.sideTableEntries()) / n;
}

PopulationResult
runPopulation(bool contiguitas, unsigned servers,
              std::uint64_t mem_bytes, std::string *stats_json)
{
    Fleet::Config config;
    config.servers = servers;
    config.memBytes = mem_bytes;
    config.policy.name = contiguitas ? "contiguitas" : "vanilla";
    // fig11 population shape at the scale tier: the same intensity
    // and pre-fragmentation spread, uptimes shortened so 10^5
    // servers finish on one box (steady-state fragmentation shape,
    // not magnitude, is the point of this bench).
    config.minUptimeSec = 2.0;
    config.maxUptimeSec = 5.0;
    config.minIntensity = 0.7;
    config.maxIntensity = 1.3;
    config.prefragmentFrac = 0.25;
    config.streamScans = true;
    config.seed = 0x5ca1e ^ (contiguitas ? 1 : 0);
    config.applyEnvOverlay();
    Fleet fleet(config);

    const char *prefix = contiguitas ? "fleet.ctg" : "fleet.linux";
    StatRegistry registry;
    fleet.attachTelemetry(registry, nullptr, prefix);
    bench::regFaultStats(registry);

    const auto scans = fleet.run();
    PopulationResult result;
    for (const ServerScan &scan : scans) {
        result.meanFreeContiguity2m += scan.freeContiguity[0];
        result.meanUnmovableBlocks2m += scan.unmovableBlocks[0];
    }
    const double n = static_cast<double>(scans.size());
    result.meanFreeContiguity2m /= n;
    result.meanUnmovableBlocks2m /= n;
    result.wallMs = fleet.lastRunWallMs();
    result.threads = fleet.lastRunThreads();
    probeFootprint(fleet, &result);
    *stats_json += registry.jsonLines();

    char line[128];
    std::snprintf(line, sizeof(line),
                  "{\"name\":\"%s.bytes_per_frame\",\"kind\":"
                  "\"gauge\",\"value\":%.3f}\n",
                  prefix, result.bytesPerFrame);
    *stats_json += line;
    std::snprintf(line, sizeof(line),
                  "{\"name\":\"%s.side_entries_per_1k_frames\","
                  "\"kind\":\"gauge\",\"value\":%.3f}\n",
                  prefix, result.sideEntriesPerKiloFrame);
    *stats_json += line;
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string servers_s = "100000";
    std::string mem_mb_s = "64";
    bench::parseArgs(
        argc, argv,
        {{"servers", &servers_s,
          "total population size (split linux/contiguitas)"},
         {"mem-mb", &mem_mb_s, "per-server memory in MiB"}});
    const unsigned servers = static_cast<unsigned>(
        bench::flagU64(servers_s, "servers"));
    const std::uint64_t memBytes =
        bench::flagU64(mem_mb_s, "mem-mb") << 20;

    bench::banner("Fleet scale",
                  "10^5-server population capacity study");
    std::printf("(population: %u servers at %llu MiB each, "
                "scale tier)\n",
                servers,
                static_cast<unsigned long long>(memBytes >> 20));

    std::string stats_json;
    bench::WallTimer wall;
    const PopulationResult linux_pop = runPopulation(
        false, servers / 2, memBytes, &stats_json);
    const PopulationResult ctg_pop = runPopulation(
        true, servers - servers / 2, memBytes, &stats_json);
    const double totalWallMs = wall.ms();

    const double serversPerSec =
        1000.0 * static_cast<double>(servers) / totalWallMs;
    const double peakRssMb =
        static_cast<double>(peakRssBytes()) / (1024.0 * 1024.0);
    // Two reference points: what sizeof says the seed's
    // array-of-structs columns cost (PageFrame value type + two
    // 32-bit links), and the 40 bytes/frame the roadmap charged the
    // pre-diet table with (24 B metadata + 16 B link indices).
    const double aosBytesPerFrame =
        static_cast<double>(sizeof(PageFrame) +
                            2 * sizeof(std::uint32_t));
    const double roadmapBytesPerFrame = 40.0;
    const double maxBytesPerFrame =
        std::max(linux_pop.bytesPerFrame, ctg_pop.bytesPerFrame);

    Table table;
    table.header({"System", "free contig 2M", "unmov blocks 2M",
                  "bytes/frame", "side entries/1k frames"});
    table.row({"Linux", formatPercent(linux_pop.meanFreeContiguity2m),
               formatPercent(linux_pop.meanUnmovableBlocks2m),
               cell(linux_pop.bytesPerFrame, 2),
               cell(linux_pop.sideEntriesPerKiloFrame, 1)});
    table.row({"Contiguitas",
               formatPercent(ctg_pop.meanFreeContiguity2m),
               formatPercent(ctg_pop.meanUnmovableBlocks2m),
               cell(ctg_pop.bytesPerFrame, 2),
               cell(ctg_pop.sideEntriesPerKiloFrame, 1)});
    table.print();

    std::printf("\nFrame table: %.2f bytes/frame worst case — "
                "%.1fx under the pre-diet 40 (roadmap), %.1fx under "
                "the packed array-of-structs %.0f (sizeof)\n",
                maxBytesPerFrame,
                roadmapBytesPerFrame / maxBytesPerFrame,
                aosBytesPerFrame / maxBytesPerFrame,
                aosBytesPerFrame);
    std::printf("Throughput: %.0f servers/sec over %u servers "
                "(%u worker threads, wall %.0f ms)\n",
                serversPerSec, servers, linux_pop.threads,
                totalWallMs);
    std::printf("Process peak RSS: %.0f MiB\n", peakRssMb);

    char line[128];
    std::snprintf(line, sizeof(line),
                  "{\"name\":\"fleet.servers\",\"kind\":\"gauge\","
                  "\"value\":%u}\n",
                  servers);
    stats_json += line;
    std::snprintf(line, sizeof(line),
                  "{\"name\":\"fleet.servers_per_sec\",\"kind\":"
                  "\"gauge\",\"value\":%.1f}\n",
                  serversPerSec);
    stats_json += line;
    std::snprintf(line, sizeof(line),
                  "{\"name\":\"fleet.bytes_per_frame\",\"kind\":"
                  "\"gauge\",\"value\":%.3f}\n",
                  maxBytesPerFrame);
    stats_json += line;
    std::snprintf(line, sizeof(line),
                  "{\"name\":\"fleet.bytes_per_frame_aos\",\"kind\":"
                  "\"gauge\",\"value\":%.1f}\n",
                  aosBytesPerFrame);
    stats_json += line;
    std::snprintf(line, sizeof(line),
                  "{\"name\":\"fleet.bytes_per_frame_baseline\","
                  "\"kind\":\"gauge\",\"value\":%.1f}\n",
                  roadmapBytesPerFrame);
    stats_json += line;
    std::snprintf(line, sizeof(line),
                  "{\"name\":\"fleet.peak_rss_mb\",\"kind\":"
                  "\"gauge\",\"value\":%.1f}\n",
                  peakRssMb);
    stats_json += line;
    std::snprintf(line, sizeof(line),
                  "{\"name\":\"fleet.run_wall_ms\",\"kind\":"
                  "\"gauge\",\"value\":%.3f}\n",
                  totalWallMs);
    stats_json += line;
    bench::dumpText("fleet-scale stats (JSON lines)", stats_json);
    return 0;
}
