/**
 * @file
 * Google-benchmark microbenchmarks of the core primitives: buddy
 * allocation/free, contiguity scans, TLB lookups, cache-hierarchy
 * accesses, LLC redirection during migration, and software vs
 * hardware migration procedures. These guard the simulator's own
 * performance (a fleet study runs millions of these operations).
 */

#include <benchmark/benchmark.h>

#include "base/rng.hh"
#include "base/units.hh"
#include "bench/bench_util.hh"
#include "hw/system.hh"
#include "mem/buddy.hh"
#include "mem/mem_stats.hh"
#include "mem/scanner.hh"

namespace ctg
{
namespace
{

void
BM_BuddyAllocFree4k(benchmark::State &state)
{
    PhysMem mem(256_MiB);
    BuddyAllocator buddy(mem, 0, mem.numFrames(), "bm");
    for (auto _ : state) {
        const Pfn pfn = buddy.allocPages(0, MigrateType::Movable,
                                         AllocSource::User);
        benchmark::DoNotOptimize(pfn);
        buddy.freePages(pfn);
    }
}
BENCHMARK(BM_BuddyAllocFree4k);

void
BM_BuddyAllocFreeHuge(benchmark::State &state)
{
    PhysMem mem(256_MiB);
    BuddyAllocator buddy(mem, 0, mem.numFrames(), "bm");
    for (auto _ : state) {
        const Pfn pfn = buddy.allocPages(hugeOrder,
                                         MigrateType::Movable,
                                         AllocSource::User);
        benchmark::DoNotOptimize(pfn);
        buddy.freePages(pfn);
    }
}
BENCHMARK(BM_BuddyAllocFreeHuge);

void
BM_BuddyFallbackSteal(benchmark::State &state)
{
    PhysMem mem(256_MiB);
    BuddyAllocator buddy(mem, 0, mem.numFrames(), "bm");
    for (auto _ : state) {
        // Every unmovable allocation on a movable-only machine goes
        // through the fallback path.
        const Pfn pfn = buddy.allocPages(0, MigrateType::Unmovable,
                                         AllocSource::Slab);
        benchmark::DoNotOptimize(pfn);
        buddy.freePages(pfn);
    }
}
BENCHMARK(BM_BuddyFallbackSteal);

/** Shared rig for the contiguity read-path benchmarks: a 512 MiB
 * machine fragmented by 20k single-page allocations, ~10% unmovable.
 */
void
fragmentForScan(PhysMem &mem, BuddyAllocator &buddy)
{
    Rng rng(1);
    for (int i = 0; i < 20000; ++i) {
        buddy.allocPages(0,
                         rng.chance(0.1) ? MigrateType::Unmovable
                                         : MigrateType::Movable,
                         AllocSource::User);
    }
}

/** Legacy full-scan read path (scan::reference). */
void
BM_ContiguityScan2MReference(benchmark::State &state)
{
    PhysMem mem(512_MiB);
    BuddyAllocator buddy(mem, 0, mem.numFrames(), "bm");
    fragmentForScan(mem, buddy);
    mem.setContigIndexReads(false);
    for (auto _ : state) {
        benchmark::DoNotOptimize(mem.stats().unmovableBlockFraction(
            0, mem.numFrames(), scan::order2M));
    }
}
BENCHMARK(BM_ContiguityScan2MReference);

/** Same metric answered from the ContigIndex in O(1). */
void
BM_ContiguityScan2MIndex(benchmark::State &state)
{
    PhysMem mem(512_MiB);
    BuddyAllocator buddy(mem, 0, mem.numFrames(), "bm");
    fragmentForScan(mem, buddy);
    mem.setContigIndexReads(true);
    for (auto _ : state) {
        benchmark::DoNotOptimize(mem.stats().unmovableBlockFraction(
            0, mem.numFrames(), scan::order2M));
    }
}
BENCHMARK(BM_ContiguityScan2MIndex);

void
BM_TlbHit(benchmark::State &state)
{
    Tlb tlb(64, 4);
    tlb.insert(42, 100, 0);
    for (auto _ : state)
        benchmark::DoNotOptimize(tlb.lookup(42));
}
BENCHMARK(BM_TlbHit);

void
BM_CacheAccessL1Hit(benchmark::State &state)
{
    MemHierarchy mem{HwConfig{}};
    mem.access(0, 0x4000, false);
    for (auto _ : state)
        benchmark::DoNotOptimize(mem.access(0, 0x4000, false));
}
BENCHMARK(BM_CacheAccessL1Hit);

void
BM_CacheAccessSpread(benchmark::State &state)
{
    MemHierarchy mem{HwConfig{}};
    Rng rng(7);
    for (auto _ : state) {
        const Addr addr =
            (rng.below(1u << 16)) * lineBytes;
        benchmark::DoNotOptimize(mem.access(
            static_cast<CoreId>(rng.below(8)), addr,
            rng.chance(0.3), 1));
    }
}
BENCHMARK(BM_CacheAccessSpread);

void
BM_RedirectedAccess(benchmark::State &state)
{
    HwSystem hw;
    hw.mem().migrationTable().install(0x300, 0x5123,
                                      ChwMode::Noncacheable);
    MigrationEntry *entry =
        hw.mem().migrationTable().findBySrc(0x300);
    entry->ptr = 32;
    Rng rng(3);
    for (auto _ : state) {
        const Addr addr = pfnToAddr(0x300) +
                          rng.below(linesPerPage) * lineBytes;
        benchmark::DoNotOptimize(hw.mem().access(0, addr, false));
    }
}
BENCHMARK(BM_RedirectedAccess);

void
BM_ChwPageMigration(benchmark::State &state)
{
    HwSystem hw;
    Pfn src = 0x1000;
    Pfn dst = 0x2000;
    for (auto _ : state) {
        ChwEngine::Descriptor desc;
        desc.src = src;
        desc.dst = dst;
        desc.mode = ChwMode::Noncacheable;
        hw.chw().submitMigrate(desc);
        hw.drain();
        hw.chw().clear(src);
        std::swap(src, dst);
    }
}
BENCHMARK(BM_ChwPageMigration);

} // namespace
} // namespace ctg

// Custom main instead of BENCHMARK_MAIN(): the shared bench flags
// (--json) are split off before google-benchmark sees the command
// line (it rejects flags it does not know), and the uniform
// `fleet.run_wall_ms` line is dumped once the benchmarks finish.
int
main(int argc, char **argv)
{
    const ctg::bench::WallTimer timer;
    std::vector<char *> rest;
    rest.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json" && i + 1 < argc)
            ctg::bench::jsonOutPath() = argv[++i];
        else if (arg.rfind("--json=", 0) == 0)
            ctg::bench::jsonOutPath() = arg.substr(7);
        else
            rest.push_back(argv[i]);
    }
    int rest_argc = static_cast<int>(rest.size());
    benchmark::Initialize(&rest_argc, rest.data());
    if (benchmark::ReportUnrecognizedArguments(rest_argc,
                                               rest.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    ctg::bench::dumpWallMs(timer.ms());
    return 0;
}
