/**
 * @file
 * Scan-path microbenchmark: the full fleet metric set (ServerScan —
 * free contiguity at four orders, unmovable-block fractions,
 * potential contiguity, per-source attribution, free/aligned-block
 * counts) read through the legacy full-scan reference path vs the
 * incremental ContigIndex (DESIGN.md §11).
 *
 * The rig mirrors the Figure 11 population sampling: fig11-style
 * fragmented 2 GiB servers, each scanned many times per run the way
 * the fleet studies sample populations. Both read paths must produce
 * bit-identical ServerScan values; the benchmark verifies that on
 * every scan before timing is reported.
 *
 * `--json BENCH_scan.json` dumps machine-readable results (keys
 * `bench_scan.*`) for the CI artifact.
 */

#include <chrono>
#include <cstring>

#include "bench/bench_util.hh"
#include "fleet/server.hh"

using namespace ctg;

namespace
{

constexpr unsigned numServers = 4;
constexpr unsigned scansPerServer = 64;

Server::Config
serverConfig(unsigned i)
{
    // Fig11-cell shape: 2 GiB, mixed workloads, fragmented uptime.
    Server::Config config;
    config.memBytes = std::uint64_t{2} << 30;
    config.kind = static_cast<WorkloadKind>(i % 4);
    config.intensity = 0.8 + 0.15 * i;
    config.prefragment = i % 2 == 0;
    config.uptimeSec = 30.0;
    config.seed = 0x5ca9 + i;
    config.applyEnvOverlay();
    return config;
}

/** Exact (bitwise) equality of two scans of the same machine. */
bool
identical(const ServerScan &a, const ServerScan &b)
{
    return std::memcmp(&a, &b, sizeof(ServerScan)) == 0;
}

double
timeScans(Server &server, bool index_reads, ServerScan *out)
{
    server.kernel().mem().setContigIndexReads(index_reads);
    const auto start = std::chrono::steady_clock::now();
    ServerScan scan;
    for (unsigned i = 0; i < scansPerServer; ++i)
        scan = server.scan();
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    *out = scan;
    return ms;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv);
    bench::banner("Scan speedup",
                  "Full metric set: reference scans vs ContigIndex");

    Table table;
    table.header({"Server", "Workload", "Reference (ms)",
                  "Index (ms)", "Speedup", "Identical"});

    double ref_total_ms = 0.0;
    double index_total_ms = 0.0;
    bool all_identical = true;
    for (unsigned i = 0; i < numServers; ++i) {
        const Server::Config config = serverConfig(i);
        Server server(config);
        server.run();

        ServerScan ref_scan;
        ServerScan index_scan;
        const double ref_ms =
            timeScans(server, /*index_reads=*/false, &ref_scan);
        const double index_ms =
            timeScans(server, /*index_reads=*/true, &index_scan);
        const bool same = identical(ref_scan, index_scan);
        all_identical = all_identical && same;
        ref_total_ms += ref_ms;
        index_total_ms += index_ms;

        table.row({"#" + std::to_string(i),
                   workloadName(config.kind), cell(ref_ms, 1),
                   cell(index_ms, 2), cell(ref_ms / index_ms, 1) + "x",
                   same ? "yes" : "NO"});
    }
    table.print();

    const double speedup = ref_total_ms / index_total_ms;
    std::printf("\n%u scans of %u servers: reference %.1f ms, "
                "index %.2f ms — %.1fx speedup, results %s\n",
                scansPerServer, numServers, ref_total_ms,
                index_total_ms, speedup,
                all_identical ? "bit-identical" : "DIVERGED");

    StatRegistry registry;
    const StatGroup group(registry, "bench_scan");
    group.settableGauge("servers", "servers scanned")
        .set(numServers);
    group.settableGauge("scans_per_server", "scans per server")
        .set(scansPerServer);
    group.settableGauge("ref_ms", "reference path total ms")
        .set(ref_total_ms);
    group.settableGauge("index_ms", "index path total ms")
        .set(index_total_ms);
    group.settableGauge("speedup", "reference / index wall ratio")
        .set(speedup);
    group.settableGauge("identical", "1 when paths bit-identical")
        .set(all_identical ? 1.0 : 0.0);
    bench::dumpStats(registry, "scan benchmark (JSON lines)");

    return all_identical ? 0 : 1;
}
