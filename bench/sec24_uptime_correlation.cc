/**
 * @file
 * Section 2.4: correlation between server uptime and contiguity.
 * The paper finds essentially none (Pearson r = 0.00286 between
 * uptime and free 2 MB blocks; 0.16 even for young servers), because
 * servers fragment within their first hour while uptimes span weeks.
 *
 * `--warm-start` additionally demonstrates the checkpoint/restore
 * subsystem on this fleet: a cold run writes per-server snapshots at
 * each server's uptime boundary, a second run restores them and
 * simulates only the short continuation segment. The restored run's
 * scans must be bit-identical to the cold run's, and its wall clock
 * shows the warm-start win (the long fragmentation phase is paid
 * once).
 */

#include <cstring>
#include <filesystem>
#include <type_traits>

#include "bench/bench_util.hh"

using namespace ctg;

namespace
{

/** Strict scan comparison: the restore contract is bit-identity, so
 * compare representations, not values (NaNs and signed zeros must
 * match too). ServerScan is all 8-byte scalars/arrays — no padding. */
bool
scansIdentical(const std::vector<ServerScan> &a,
               const std::vector<ServerScan> &b)
{
    static_assert(std::is_trivially_copyable_v<ServerScan>);
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (std::memcmp(&a[i], &b[i], sizeof(ServerScan)) != 0)
            return false;
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    bool warmStart = false;
    std::vector<char *> args;
    args.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--warm-start") == 0)
            warmStart = true;
        else
            args.push_back(argv[i]);
    }
    bench::parseArgs(static_cast<int>(args.size()), args.data());
    bench::banner("Section 2.4",
                  "Uptime vs contiguity correlation across the "
                  "fleet");

    // A Pearson coefficient needs population: many small servers.
    Fleet::Config config = bench::standardFleet("vanilla", 160);
    config.memBytes = std::uint64_t{1} << 30;
    // Production uptimes are days to weeks — far past the
    // fragmentation plateau (reached within the first "hour", i.e.
    // ~40 simulated seconds). Sample accordingly, with a young
    // minority for the paper's second coefficient.
    config.minUptimeSec = 35.0;
    config.maxUptimeSec = 200.0;

    // Warm-start demo: checkpoint at the uptime boundary, then
    // restore and run only a short continuation segment. The
    // continuation is what a restored run still has to simulate, so
    // keeping it small maximizes (and honestly represents) the win.
    double coldWallMs = 0.0;
    std::vector<ServerScan> coldScans;
    std::string snapDir;
    if (warmStart) {
        config.extraUptimeSec = 5.0;
        snapDir = (std::filesystem::temp_directory_path() /
                   "ctg_sec24_warmstart")
                      .string();
        std::filesystem::remove_all(snapDir);
        Fleet::Config coldConfig = config;
        coldConfig.checkpointDir = snapDir;
        Fleet cold(coldConfig);
        coldScans = cold.run();
        coldWallMs = cold.lastRunWallMs();
        config.restoreDir = snapDir;
    }

    Fleet fleet(config);
    StatRegistry registry;
    fleet.attachTelemetry(registry);
    bench::regFaultStats(registry);
    const auto scans = fleet.run();

    std::vector<double> uptimes;
    std::vector<double> free2m;
    std::vector<double> young_uptimes;
    std::vector<double> young_free2m;
    for (const ServerScan &scan : scans) {
        uptimes.push_back(scan.uptimeSec);
        free2m.push_back(static_cast<double>(scan.free2mBlocks));
        if (scan.uptimeSec < 60.0) {
            young_uptimes.push_back(scan.uptimeSec);
            young_free2m.push_back(
                static_cast<double>(scan.free2mBlocks));
        }
    }

    const double r_all = pearson(uptimes, free2m);
    const double r_young =
        young_uptimes.size() >= 3 ? pearson(young_uptimes,
                                            young_free2m)
                                  : 0.0;

    Table table;
    table.header({"Population", "Servers", "Pearson r(uptime, free "
                  "2MB blocks)", "(paper)"});
    table.row({"whole fleet",
               cell(static_cast<std::uint64_t>(uptimes.size())),
               cell(r_all, 4), "0.00286"});
    table.row({"young servers",
               cell(static_cast<std::uint64_t>(young_uptimes.size())),
               cell(r_young, 4), "0.16"});
    table.print();

    std::printf("\n|r| close to zero: fragmentation is set by the "
                "workload, not by age.\n");
    bench::printFleetWall(fleet);

    if (warmStart) {
        const double warmWallMs = fleet.lastRunWallMs();
        const bool identical = scansIdentical(coldScans, scans);
        Table warm;
        warm.header({"Phase", "Wall ms", "Simulated per server"});
        warm.row({"cold (checkpoint write)", cell(coldWallMs, 0),
                  "uptime + 5 s"});
        warm.row({"warm (restore)", cell(warmWallMs, 0), "5 s"});
        warm.print();
        std::printf("\n[warm-start] speedup %.1fx, results "
                    "bit-identical: %s, snapshots: %s\n",
                    warmWallMs > 0.0 ? coldWallMs / warmWallMs : 0.0,
                    identical ? "yes" : "NO (BUG)",
                    snapDir.c_str());
        if (!identical) {
            std::fprintf(stderr, "warm-start restore diverged from "
                         "the cold run\n");
            return 1;
        }
    }

    bench::dumpStats(registry, "fleet stats (JSON lines)");
    return 0;
}
