/**
 * @file
 * Section 2.4: correlation between server uptime and contiguity.
 * The paper finds essentially none (Pearson r = 0.00286 between
 * uptime and free 2 MB blocks; 0.16 even for young servers), because
 * servers fragment within their first hour while uptimes span weeks.
 */

#include "bench/bench_util.hh"

using namespace ctg;

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv);
    bench::banner("Section 2.4",
                  "Uptime vs contiguity correlation across the "
                  "fleet");

    // A Pearson coefficient needs population: many small servers.
    Fleet::Config config = bench::standardFleet(false, 160);
    config.memBytes = std::uint64_t{1} << 30;
    // Production uptimes are days to weeks — far past the
    // fragmentation plateau (reached within the first "hour", i.e.
    // ~40 simulated seconds). Sample accordingly, with a young
    // minority for the paper's second coefficient.
    config.minUptimeSec = 35.0;
    config.maxUptimeSec = 200.0;
    Fleet fleet(config);
    StatRegistry registry;
    fleet.attachTelemetry(registry);
    bench::regFaultStats(registry);
    const auto scans = fleet.run();

    std::vector<double> uptimes;
    std::vector<double> free2m;
    std::vector<double> young_uptimes;
    std::vector<double> young_free2m;
    for (const ServerScan &scan : scans) {
        uptimes.push_back(scan.uptimeSec);
        free2m.push_back(static_cast<double>(scan.free2mBlocks));
        if (scan.uptimeSec < 60.0) {
            young_uptimes.push_back(scan.uptimeSec);
            young_free2m.push_back(
                static_cast<double>(scan.free2mBlocks));
        }
    }

    const double r_all = pearson(uptimes, free2m);
    const double r_young =
        young_uptimes.size() >= 3 ? pearson(young_uptimes,
                                            young_free2m)
                                  : 0.0;

    Table table;
    table.header({"Population", "Servers", "Pearson r(uptime, free "
                  "2MB blocks)", "(paper)"});
    table.row({"whole fleet",
               cell(static_cast<std::uint64_t>(uptimes.size())),
               cell(r_all, 4), "0.00286"});
    table.row({"young servers",
               cell(static_cast<std::uint64_t>(young_uptimes.size())),
               cell(r_young, 4), "0.16"});
    table.print();

    std::printf("\n|r| close to zero: fragmentation is set by the "
                "workload, not by age.\n");
    bench::printFleetWall(fleet);
    bench::dumpStats(registry, "fleet stats (JSON lines)");
    return 0;
}
