/**
 * @file
 * Section 5.3 performance study: NGINX and memcached serve requests
 * at peak throughput while Contiguitas-HW migrates their unmovable
 * networking buffers in the background, at the Regular rate
 * (100/s) and a Very High rate (1000/s), in both noncacheable and
 * cacheable modes. Paper: <=0.3% overhead for noncacheable at the
 * Very High rate, none for cacheable; and memcached gains ~7% once
 * 2 MB pages come with the recovered contiguity.
 */

#include <deque>

#include "bench/bench_util.hh"
#include "fleet/server.hh"
#include "perfmodel/walkmodel.hh"
#include "workloads/access_gen.hh"

using namespace ctg;

namespace
{

struct RunResult
{
    double cyclesPerRequest = 0.0;
    std::uint64_t migrations = 0;
};

/**
 * Serve requests over a buffer pool + heap while migrating random
 * buffer pages at the given rate.
 */
RunResult
serveWithMigrations(WorkloadKind kind, double migrations_per_sec,
                    ChwMode mode, bool huge_heap)
{
    KernelConfig kc;
    kc.memBytes = std::uint64_t{4} << 30;
    kc.kernelTextBytes = std::uint64_t{4} << 20;
    kc.thpEnabled = huge_heap;
    Kernel kernel(kc);
    AddressSpace space(kernel, 1);

    AccessProfile profile = makeAccessProfile(kind);
    profile.dataBytes = std::uint64_t{1536} << 20;
    profile.codeBytes = std::uint64_t{16} << 20;
    // Request-serving caches have hot working sets.
    profile.dataZipfTheta = 0.8;
    const Addr heap = space.mmap(profile.dataBytes);
    const Addr code = space.mmap(profile.codeBytes);
    space.touchRange(heap, profile.dataBytes);
    space.touchRange(code, profile.codeBytes);

    // Networking buffer pool: unmovable pages the NIC drives.
    const unsigned buffer_pages = 4096; // 16 MiB of rx/tx buffers
    std::vector<Vpn> buffer_vpns;
    PageTables dma_tables(kernel);
    for (unsigned i = 0; i < buffer_pages; ++i) {
        AllocRequest req;
        req.order = 0;
        req.mt = MigrateType::Unmovable;
        req.source = AllocSource::Networking;
        const Pfn pfn = kernel.allocPages(req);
        ctg_assert(pfn != invalidPfn);
        const Vpn vpn = 0x100000 + i;
        dma_tables.map(vpn, pfn, 0);
        buffer_vpns.push_back(vpn);
    }

    HwSystem hw;
    AccessStream stream(profile, heap, code, 0x5e53);
    Rng rng(0x99);

    const double ghz = hw.config().ghz;
    const std::uint64_t requests = 3000;
    const unsigned ops_per_request = 60;
    const unsigned dma_per_request = 8;

    double next_migration_cycles =
        migrations_per_sec > 0
            ? ghz * 1e9 / migrations_per_sec
            : 1e300;
    double total_cycles = 0.0;
    std::uint64_t migrations = 0;
    std::deque<std::pair<Pfn, Vpn>> in_flight;

    for (std::uint64_t r = 0; r < requests; ++r) {
        // Application work.
        for (unsigned op = 0; op < ops_per_request; ++op) {
            bool is_write = false;
            const Addr addr = stream.nextData(&is_write);
            const auto res = hw.coreAccess(
                static_cast<CoreId>(r % hw.config().cores), addr,
                space.pageTables(), is_write, r);
            total_cycles += static_cast<double>(res.latency) + 10;
        }
        // NIC DMA into the buffer pool (through the IOMMU).
        for (unsigned d = 0; d < dma_per_request; ++d) {
            const Vpn vpn =
                buffer_vpns[rng.below(buffer_vpns.size())];
            const auto res = hw.iommu().dmaAccess(
                pfnToAddr(vpn), dma_tables, rng.chance(0.5), r);
            total_cycles += static_cast<double>(res.latency);
        }
        // The application reads packet payloads out of the buffers
        // too — these are the accesses noncacheable migration mode
        // taxes.
        for (unsigned d = 0; d < 4; ++d) {
            const Vpn vpn =
                buffer_vpns[rng.below(buffer_vpns.size())];
            const Translation tr = dma_tables.translate(vpn);
            if (!tr.valid)
                continue;
            const auto res = hw.mem().access(
                static_cast<CoreId>(r % hw.config().cores),
                pfnToAddr(tr.pfn) +
                    rng.below(linesPerPage) * lineBytes,
                false);
            total_cycles += static_cast<double>(res.latency);
        }
        // Let background hardware (the copy engine, lazy
        // invalidations, completion handling) progress to the
        // current request-time anchor.
        hw.drain(static_cast<Tick>(total_cycles));

        // Background migrations of the unmovable buffers.
        if (total_cycles >= next_migration_cycles) {
            next_migration_cycles +=
                ghz * 1e9 / migrations_per_sec;
            const Vpn vpn =
                buffer_vpns[rng.below(buffer_vpns.size())];
            const Translation tr = dma_tables.translate(vpn);
            if (tr.valid &&
                !hw.chw().migrating(tr.pfn)) {
                AllocRequest req;
                req.order = 0;
                req.mt = MigrateType::Unmovable;
                req.source = AllocSource::Networking;
                const Pfn dst = kernel.allocPages(req);
                if (dst != invalidPfn) {
                    hw.shootdown().contiguitasMigrate(
                        0, vpn, dma_tables, dst, mode, hw.chw(),
                        [&kernel, src = tr.pfn](MigrationTiming) {
                            kernel.freePages(src);
                        });
                    hw.iommu().queueInvalidate(vpn);
                    ++migrations;
                }
            }
        }
    }
    hw.drain();

    RunResult result;
    result.cyclesPerRequest =
        total_cycles / static_cast<double>(requests);
    result.migrations = migrations;
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv);
    const bench::WallTimer timer;
    bench::banner("Section 5.3",
                  "Unmovable-buffer migration interference on NGINX "
                  "and memcached");

    Table table;
    table.header({"Workload", "Migration rate", "Mode",
                  "Cycles/request", "Overhead vs idle"});
    for (const WorkloadKind kind :
         {WorkloadKind::Nginx, WorkloadKind::Memcached}) {
        const RunResult base = serveWithMigrations(
            kind, 0.0, ChwMode::Noncacheable, false);
        table.row({workloadName(kind), "none", "-",
                   cell(base.cyclesPerRequest, 1), "-"});
        struct Case
        {
            const char *rate_name;
            double rate;
            ChwMode mode;
            const char *mode_name;
        };
        const Case cases[] = {
            {"Regular (100/s)", 100.0, ChwMode::Noncacheable, "NC"},
            {"Regular (100/s)", 100.0, ChwMode::Cacheable, "C"},
            {"Very High (1000/s)", 1000.0, ChwMode::Noncacheable,
             "NC"},
            {"Very High (1000/s)", 1000.0, ChwMode::Cacheable, "C"},
        };
        for (const Case &c : cases) {
            const RunResult r =
                serveWithMigrations(kind, c.rate, c.mode, false);
            const double overhead =
                r.cyclesPerRequest / base.cyclesPerRequest - 1.0;
            table.row({"", c.rate_name, c.mode_name,
                       cell(r.cyclesPerRequest, 1),
                       formatPercent(overhead, 2)});
        }
    }
    table.print();

    // Memcached with the huge pages the recovered contiguity buys.
    const RunResult mc4k = serveWithMigrations(
        WorkloadKind::Memcached, 100.0, ChwMode::Cacheable, false);
    const RunResult mc2m = serveWithMigrations(
        WorkloadKind::Memcached, 100.0, ChwMode::Cacheable, true);
    std::printf("\nmemcached with 2MB pages: %.1f%% faster "
                "(paper: ~7%%)\n",
                100.0 * (mc4k.cyclesPerRequest /
                             mc2m.cyclesPerRequest -
                         1.0));
    std::printf("Shape check (paper): noncacheable overhead <=0.3%% "
                "even at 1000 migrations/s; cacheable ~0%%.\n");
    bench::dumpWallMs(timer.ms());
    return 0;
}
