/**
 * @file
 * Section 5.3 sizing and hardware-cost analysis: the lazy-
 * invalidation window implied by kernel-entry rates, the theoretical
 * migration throughput of a single metadata entry, peak table
 * occupancy under Poisson migration traffic, and the analytic
 * area/energy/leakage estimate of the 16-entry per-slice table
 * (paper, via Cacti 7 at 22nm: 0.0038 mm^2, 0.0017 nJ/access,
 * 0.64 mW — 0.014% of a core).
 */

#include <queue>

#include "base/rng.hh"
#include "bench/bench_util.hh"
#include "hw/areamodel.hh"
#include "hw/config.hh"

using namespace ctg;

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv);
    const bench::WallTimer timer;
    bench::banner("Section 5.3",
                  "Contiguitas-HW sizing and hardware requirements");

    const HwConfig config;

    // Invalidation-window analysis.
    const double entry_rate_low = 40000.0;  // kernel entries/s
    const double entry_rate_high = 100000.0;
    const double window_us = 1e6 / entry_rate_low;
    const double copy_us = 5.0; // conservative 4KB copy
    const double per_entry_migrations =
        1e6 / (window_us + copy_us);

    Table window("Lazy-invalidation window");
    window.header({"Quantity", "Value"});
    window.row({"Kernel entries per core",
                cell(entry_rate_low, 0) + " - " +
                    cell(entry_rate_high, 0) + " /s"});
    window.row({"Invalidation window", ">= " + cell(window_us, 0) +
                                           " us"});
    window.row({"4KB copy (conservative)", cell(copy_us, 0) + " us"});
    window.row({"Migrations/s per table entry",
                cell(per_entry_migrations, 0)});
    window.print();
    std::printf("\n");

    // Peak occupancy under Poisson migration traffic at the paper's
    // Very High rate, holding each mapping for window + copy time.
    Rng rng(0x0cc);
    const double rate_per_sec = 1000.0;
    const double hold_us = window_us + copy_us;
    std::priority_queue<double, std::vector<double>,
                        std::greater<>> live;
    unsigned peak = 0;
    double now_us = 0.0;
    for (int i = 0; i < 200000; ++i) {
        now_us += rng.exponential(1e6 / rate_per_sec);
        while (!live.empty() && live.top() <= now_us)
            live.pop();
        live.push(now_us + hold_us);
        peak = std::max(peak, static_cast<unsigned>(live.size()));
    }
    Table occupancy("Metadata-table occupancy @1000 migrations/s");
    occupancy.header({"Quantity", "Value"});
    occupancy.row({"Mean mappings live",
                   cell(rate_per_sec * hold_us / 1e6, 2)});
    occupancy.row({"Peak mappings live (simulated)",
                   cell(static_cast<std::uint64_t>(peak))});
    occupancy.row({"Table capacity (per slice)",
                   cell(static_cast<std::uint64_t>(
                       config.chwEntries))});
    occupancy.print();
    std::printf("\n");

    // Hardware cost.
    const SramEstimate est =
        estimateFaSram(config.chwEntries, migrationEntryBits, 22.0);
    Table cost("Per-slice migration table (16 entries, FA, 22nm)");
    cost.header({"Metric", "Model", "(paper/Cacti)"});
    cost.row({"Area", cell(est.areaMm2, 4) + " mm^2",
              "0.0038 mm^2"});
    cost.row({"Energy/access",
              cell(est.energyPerAccessNj, 4) + " nJ", "0.0017 nJ"});
    cost.row({"Leakage", cell(est.leakageMw, 2) + " mW", "0.64 mW"});
    cost.row({"Fraction of a core area",
              formatPercent(est.areaMm2 / coreAreaMm2At22nm, 3),
              "0.014%"});
    cost.print();

    std::printf("\nConclusion: a single entry already sustains ~%d "
                "migrations/s; 16 entries per slice are ample and "
                "the silicon cost is negligible.\n",
                static_cast<int>(per_entry_migrations));
    bench::dumpWallMs(timer.ms());
    return 0;
}
