/**
 * @file
 * Hot-path step microbenchmark: the three index-accelerated search
 * loops of DESIGN.md §12 — compaction passes (compactUntil), region
 * boundary resizing (expand/shrink ping-pong), and gigantic-window
 * search (allocContigRange) — timed through the legacy linear frame
 * walks vs the ContigIndex subtree descent.
 *
 * Each stage is staged so the timed operation is a *pure search* —
 * the part the index accelerates — with no migrations inside the
 * timed region, on the fig11 2 GiB server shape at the uptime where
 * that search dominates in practice:
 *
 *  - compactUntil: a mature fragmented server whose residual mixed
 *    pageblocks are pinned — the paper's motivating state, in which
 *    periodic compaction passes find nothing movable and the whole
 *    pass is classification.
 *  - allocContigRange: a young server with sparse scattered
 *    unmovable pages. Every 1 GB candidate window is tainted, but
 *    the reference scan must walk deep into each window to prove it.
 *  - region resize: an early-uptime Contiguitas server — the window
 *    in which the Algorithm 1 controller does its initial sizing —
 *    ping-ponging the boundary over an already-evacuated border
 *    range, so each leg is a border walk plus constant-cost block
 *    handoff.
 *
 * Pure-search ops mutate nothing, so the reference and index paths
 * must return identical results on every call; the benchmark
 * verifies that before timing is reported.
 *
 * `--json BENCH_step.json` dumps machine-readable results (keys
 * `bench_step.*`) for the CI artifact.
 */

#include <algorithm>
#include <chrono>
#include <vector>

#include "bench/bench_util.hh"
#include "contiguitas/policy.hh"
#include "fleet/server.hh"
#include "kernel/compaction.hh"
#include "kernel/contig_alloc.hh"

using namespace ctg;

namespace
{

constexpr unsigned numServers = 3;   //!< per stage
constexpr unsigned compactReps = 16; //!< no-op passes timed
constexpr unsigned contigReps = 64;  //!< all-blocked searches timed
constexpr unsigned resizeReps = 24;  //!< expand+shrink ping-pongs
/** Resize step: 128 MB border range walked per ping-pong leg. */
constexpr std::uint64_t resizePages = std::uint64_t{1} << 15;

Server::Config
serverConfig(unsigned i, bool contiguitas, double uptime,
             bool prefragment, double intensity)
{
    // Fig11-cell shape: 2 GiB, mixed workloads.
    Server::Config config;
    config.memBytes = std::uint64_t{2} << 30;
    config.kind = static_cast<WorkloadKind>(i % 4);
    config.intensity = intensity;
    config.prefragment = prefragment;
    config.uptimeSec = uptime;
    config.policy.name = contiguitas ? "contiguitas" : "vanilla";
    config.seed = 0x5ca9 + i;
    config.applyEnvOverlay();
    return config;
}

double
msSince(const std::chrono::steady_clock::time_point &start)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
}

bool
sameResult(const CompactionResult &a, const CompactionResult &b)
{
    return a.migrated == b.migrated &&
           a.failedNoMem == b.failedNoMem &&
           a.skippedUnmovable == b.skippedUnmovable &&
           a.blockedPageblocks == b.blockedPageblocks &&
           a.targetReached == b.targetReached;
}

bool
sameStats(const ContigAllocStats &a, const ContigAllocStats &b)
{
    return a.candidatesScanned == b.candidatesScanned &&
           a.candidatesBlocked == b.candidatesBlocked &&
           a.evacuations == b.evacuations &&
           a.evacuationFailures == b.evacuationFailures;
}

/** One stage's accumulated numbers. */
struct StageResult
{
    double refMs = 0.0;
    double indexMs = 0.0;
    bool identical = true;

    double speedup() const { return refMs / indexMs; }
};

/**
 * Pin the residual movable allocations of every mixed pageblock, so
 * compaction has no candidates left: the steady state the paper's
 * pinned-page problem produces, in which a periodic compaction pass
 * is pure classification.
 */
void
pinResidualMovables(Server &server)
{
    PhysMem &mem = server.kernel().mem();
    BuddyAllocator &alloc =
        server.kernel().policy().movableAllocator();
    const Pfn lo = alloc.startPfn();
    const Pfn hi =
        lo + ((alloc.endPfn() - lo) / pagesPerHuge) * pagesPerHuge;
    const Pfn block0 = lo / pagesPerHuge;
    std::vector<bool> mixed((hi - lo) / pagesPerHuge, false);
    for (Pfn b = lo; b < hi; b += pagesPerHuge) {
        bool has_free = false;
        bool has_mov = false;
        for (Pfn p = b; p < b + pagesPerHuge; ++p) {
            const auto f = mem.frame(p);
            if (f.isFree())
                has_free = true;
            else if (!f.isUnmovableAllocation())
                has_mov = true;
        }
        mixed[b / pagesPerHuge - block0] = has_free && has_mov;
    }
    for (Pfn p = lo; p < hi;) {
        const auto f = mem.frame(p);
        if (f.isFree() || !f.isHead() || f.isUnmovableAllocation()) {
            p += f.isHead() ? (Pfn{1} << f.order()) : 1;
            continue;
        }
        const Pfn span = Pfn{1} << f.order();
        bool touches = false;
        for (Pfn b = p / pagesPerHuge;
             b <= (p + span - 1) / pagesPerHuge; ++b) {
            if (b >= block0 && b - block0 < mixed.size() &&
                mixed[b - block0])
                touches = true;
        }
        if (touches)
            mem.setBlockPinned(p, true);
        p += span;
    }
}

/**
 * Steady-state compaction pass on a mature fragmented server whose
 * movable stragglers are pinned: every pass classifies the whole
 * zone and migrates nothing.
 */
void
benchCompact(unsigned i, StageResult &out)
{
    Server server(serverConfig(i, false, 30.0, true, 0.8 + 0.15 * i));
    server.run();
    pinResidualMovables(server);

    BuddyAllocator &alloc =
        server.kernel().policy().movableAllocator();
    const OwnerRegistry &owners = server.kernel().owners();

    std::vector<CompactionResult> ref;
    std::vector<CompactionResult> indexed;
    server.kernel().mem().setContigIndexReads(false);
    auto start = std::chrono::steady_clock::now();
    for (unsigned r = 0; r < compactReps; ++r)
        ref.push_back(compactUntil(alloc, owners, gigaOrder,
                                   std::uint64_t{1} << 20));
    out.refMs += msSince(start);

    server.kernel().mem().setContigIndexReads(true);
    start = std::chrono::steady_clock::now();
    for (unsigned r = 0; r < compactReps; ++r)
        indexed.push_back(compactUntil(alloc, owners, gigaOrder,
                                       std::uint64_t{1} << 20));
    out.indexMs += msSince(start);

    for (unsigned r = 0; r < compactReps; ++r)
        out.identical =
            out.identical && ref[r].migrated == 0 &&
            sameResult(ref[r], indexed[r]);
}

/**
 * Gigantic-window search on a young, lightly fragmented server:
 * unmovable pages are sparse but every 1 GB window holds at least
 * one, so the reference scan walks tens of thousands of frames per
 * window before discovering the taint (Section 2.4: even young
 * servers fail gigantic allocation). Warmup claims any still-clean
 * window as an unmovable range, making the search side-effect-free.
 */
void
benchContig(unsigned i, StageResult &out)
{
    Server server(
        serverConfig(i, false, 4.0, false, 0.55 + 0.05 * i));
    server.run();

    BuddyAllocator &alloc =
        server.kernel().policy().movableAllocator();
    const OwnerRegistry &owners = server.kernel().owners();

    for (unsigned r = 0; r < 8; ++r) {
        const Pfn head =
            allocContigRange(alloc, owners, gigaOrder,
                             MigrateType::Unmovable,
                             AllocSource::Slab, 0);
        if (head == invalidPfn)
            break;
    }

    std::vector<ContigAllocStats> ref(contigReps);
    std::vector<ContigAllocStats> indexed(contigReps);
    server.kernel().mem().setContigIndexReads(false);
    auto start = std::chrono::steady_clock::now();
    for (unsigned r = 0; r < contigReps; ++r)
        out.identical &=
            allocContigRange(alloc, owners, gigaOrder,
                             MigrateType::Unmovable,
                             AllocSource::Slab, 0,
                             &ref[r]) == invalidPfn;
    out.refMs += msSince(start);

    server.kernel().mem().setContigIndexReads(true);
    start = std::chrono::steady_clock::now();
    for (unsigned r = 0; r < contigReps; ++r)
        out.identical &=
            allocContigRange(alloc, owners, gigaOrder,
                             MigrateType::Unmovable,
                             AllocSource::Slab, 0,
                             &indexed[r]) == invalidPfn;
    out.indexMs += msSince(start);

    for (unsigned r = 0; r < contigReps; ++r)
        out.identical = out.identical && sameStats(ref[r], indexed[r]);
}

/**
 * Region-boundary resize ping-pong on an early-uptime Contiguitas
 * server (the initial-sizing window, where border ranges are still
 * evacuable). The warmup expand evacuates the border once, untimed;
 * after the paired shrink hands it back the range stays free — no
 * workload is running — so every timed leg is a pure border-range
 * search plus the constant-cost block handoff between allocators.
 */
void
benchResize(unsigned i, StageResult &out)
{
    Server server(serverConfig(i, true, 0.5, false, 0.8));
    server.run();
    auto &policy = static_cast<ContiguitasPolicy &>(
        server.kernel().policy());
    RegionManager &regions = policy.regions();

    const std::uint64_t warm = regions.expandUnmovable(resizePages);
    if (warm == 0 || regions.shrinkUnmovable(warm) != warm) {
        std::printf("  [resize] server %u skipped: border range "
                    "not evacuable\n", i);
        return;
    }

    std::vector<std::uint64_t> ref;
    std::vector<std::uint64_t> indexed;
    server.kernel().mem().setContigIndexReads(false);
    auto start = std::chrono::steady_clock::now();
    for (unsigned r = 0; r < resizeReps; ++r) {
        const std::uint64_t grown =
            regions.expandUnmovable(resizePages);
        ref.push_back(grown);
        ref.push_back(regions.shrinkUnmovable(grown));
    }
    out.refMs += msSince(start);

    server.kernel().mem().setContigIndexReads(true);
    start = std::chrono::steady_clock::now();
    for (unsigned r = 0; r < resizeReps; ++r) {
        const std::uint64_t grown =
            regions.expandUnmovable(resizePages);
        indexed.push_back(grown);
        indexed.push_back(regions.shrinkUnmovable(grown));
    }
    out.indexMs += msSince(start);

    for (std::size_t r = 0; r < ref.size(); ++r)
        out.identical = out.identical && ref[r] > 0 &&
                        ref[r] == indexed[r];
}

} // namespace

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv);
    bench::banner("Step speedup",
                  "Hot-path searches: linear frame walks vs "
                  "ContigIndex descent");

    StageResult compact;
    StageResult contig;
    StageResult resize;
    for (unsigned i = 0; i < numServers; ++i) {
        benchCompact(i, compact);
        benchContig(i, contig);
        benchResize(i, resize);
    }

    Table table;
    table.header({"Hot path", "Reference (ms)", "Index (ms)",
                  "Speedup", "Identical"});
    const StageResult *stages[] = {&compact, &contig, &resize};
    const char *names[] = {"compactUntil (steady pass)",
                           "allocContigRange (blocked)",
                           "region resize (ping-pong)"};
    for (int i = 0; i < 3; ++i) {
        table.row({names[i], cell(stages[i]->refMs, 2),
                   cell(stages[i]->indexMs, 2),
                   cell(stages[i]->speedup(), 1) + "x",
                   stages[i]->identical ? "yes" : "NO"});
    }
    table.print();

    const bool all_identical =
        compact.identical && contig.identical && resize.identical;
    const double min_speedup =
        std::min({compact.speedup(), contig.speedup(),
                  resize.speedup()});
    std::printf("\n%u servers per stage: min speedup %.1fx, "
                "results %s\n",
                numServers, min_speedup,
                all_identical ? "identical" : "DIVERGED");

    StatRegistry registry;
    const StatGroup group(registry, "bench_step");
    group.settableGauge("servers", "servers per stage")
        .set(numServers);
    group.settableGauge("compact_ref_ms", "compactUntil reference ms")
        .set(compact.refMs);
    group.settableGauge("compact_index_ms", "compactUntil index ms")
        .set(compact.indexMs);
    group.settableGauge("compact_speedup", "compactUntil speedup")
        .set(compact.speedup());
    group.settableGauge("contig_ref_ms",
                        "allocContigRange reference ms")
        .set(contig.refMs);
    group.settableGauge("contig_index_ms", "allocContigRange index ms")
        .set(contig.indexMs);
    group.settableGauge("contig_speedup", "allocContigRange speedup")
        .set(contig.speedup());
    group.settableGauge("resize_ref_ms", "region resize reference ms")
        .set(resize.refMs);
    group.settableGauge("resize_index_ms", "region resize index ms")
        .set(resize.indexMs);
    group.settableGauge("resize_speedup", "region resize speedup")
        .set(resize.speedup());
    group.settableGauge("speedup_min", "minimum speedup across paths")
        .set(min_speedup);
    group.settableGauge("identical", "1 when paths return identically")
        .set(all_identical ? 1.0 : 0.0);
    bench::dumpStats(registry, "step benchmark (JSON lines)");

    return all_identical ? 0 : 1;
}
