file(REMOVE_RECURSE
  "CMakeFiles/fig02_tlb_trends.dir/fig02_tlb_trends.cc.o"
  "CMakeFiles/fig02_tlb_trends.dir/fig02_tlb_trends.cc.o.d"
  "fig02_tlb_trends"
  "fig02_tlb_trends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_tlb_trends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
