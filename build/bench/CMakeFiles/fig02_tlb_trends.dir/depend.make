# Empty dependencies file for fig02_tlb_trends.
# This may be replaced when dependencies are built.
