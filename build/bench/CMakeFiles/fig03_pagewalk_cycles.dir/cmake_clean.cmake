file(REMOVE_RECURSE
  "CMakeFiles/fig03_pagewalk_cycles.dir/fig03_pagewalk_cycles.cc.o"
  "CMakeFiles/fig03_pagewalk_cycles.dir/fig03_pagewalk_cycles.cc.o.d"
  "fig03_pagewalk_cycles"
  "fig03_pagewalk_cycles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_pagewalk_cycles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
