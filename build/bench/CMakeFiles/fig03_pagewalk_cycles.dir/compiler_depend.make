# Empty compiler generated dependencies file for fig03_pagewalk_cycles.
# This may be replaced when dependencies are built.
