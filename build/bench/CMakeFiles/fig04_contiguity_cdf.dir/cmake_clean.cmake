file(REMOVE_RECURSE
  "CMakeFiles/fig04_contiguity_cdf.dir/fig04_contiguity_cdf.cc.o"
  "CMakeFiles/fig04_contiguity_cdf.dir/fig04_contiguity_cdf.cc.o.d"
  "fig04_contiguity_cdf"
  "fig04_contiguity_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_contiguity_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
