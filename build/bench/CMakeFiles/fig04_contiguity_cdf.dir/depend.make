# Empty dependencies file for fig04_contiguity_cdf.
# This may be replaced when dependencies are built.
