file(REMOVE_RECURSE
  "CMakeFiles/fig05_unmovable_cdf.dir/fig05_unmovable_cdf.cc.o"
  "CMakeFiles/fig05_unmovable_cdf.dir/fig05_unmovable_cdf.cc.o.d"
  "fig05_unmovable_cdf"
  "fig05_unmovable_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_unmovable_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
