# Empty dependencies file for fig05_unmovable_cdf.
# This may be replaced when dependencies are built.
