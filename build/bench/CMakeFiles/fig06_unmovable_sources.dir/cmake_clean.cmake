file(REMOVE_RECURSE
  "CMakeFiles/fig06_unmovable_sources.dir/fig06_unmovable_sources.cc.o"
  "CMakeFiles/fig06_unmovable_sources.dir/fig06_unmovable_sources.cc.o.d"
  "fig06_unmovable_sources"
  "fig06_unmovable_sources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_unmovable_sources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
