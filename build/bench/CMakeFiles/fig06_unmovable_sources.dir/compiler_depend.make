# Empty compiler generated dependencies file for fig06_unmovable_sources.
# This may be replaced when dependencies are built.
