file(REMOVE_RECURSE
  "CMakeFiles/fig11_unmovable_confinement.dir/fig11_unmovable_confinement.cc.o"
  "CMakeFiles/fig11_unmovable_confinement.dir/fig11_unmovable_confinement.cc.o.d"
  "fig11_unmovable_confinement"
  "fig11_unmovable_confinement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_unmovable_confinement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
