# Empty dependencies file for fig11_unmovable_confinement.
# This may be replaced when dependencies are built.
