# Empty compiler generated dependencies file for fig12_potential_contiguity.
# This may be replaced when dependencies are built.
