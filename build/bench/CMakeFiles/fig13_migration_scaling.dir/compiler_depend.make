# Empty compiler generated dependencies file for fig13_migration_scaling.
# This may be replaced when dependencies are built.
