file(REMOVE_RECURSE
  "CMakeFiles/sec24_uptime_correlation.dir/sec24_uptime_correlation.cc.o"
  "CMakeFiles/sec24_uptime_correlation.dir/sec24_uptime_correlation.cc.o.d"
  "sec24_uptime_correlation"
  "sec24_uptime_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec24_uptime_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
