# Empty compiler generated dependencies file for sec24_uptime_correlation.
# This may be replaced when dependencies are built.
