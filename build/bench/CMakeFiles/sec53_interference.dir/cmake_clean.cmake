file(REMOVE_RECURSE
  "CMakeFiles/sec53_interference.dir/sec53_interference.cc.o"
  "CMakeFiles/sec53_interference.dir/sec53_interference.cc.o.d"
  "sec53_interference"
  "sec53_interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec53_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
