# Empty compiler generated dependencies file for sec53_interference.
# This may be replaced when dependencies are built.
