file(REMOVE_RECURSE
  "CMakeFiles/sec53_sizing.dir/sec53_sizing.cc.o"
  "CMakeFiles/sec53_sizing.dir/sec53_sizing.cc.o.d"
  "sec53_sizing"
  "sec53_sizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec53_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
