# Empty dependencies file for sec53_sizing.
# This may be replaced when dependencies are built.
