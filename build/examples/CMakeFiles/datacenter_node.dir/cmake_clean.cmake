file(REMOVE_RECURSE
  "CMakeFiles/datacenter_node.dir/datacenter_node.cpp.o"
  "CMakeFiles/datacenter_node.dir/datacenter_node.cpp.o.d"
  "datacenter_node"
  "datacenter_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacenter_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
