# Empty compiler generated dependencies file for datacenter_node.
# This may be replaced when dependencies are built.
