
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fleet/CMakeFiles/ctg_fleet.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/ctg_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/contiguitas/CMakeFiles/ctg_contiguitas.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/ctg_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/ctg_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ctg_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ctg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/ctg_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
