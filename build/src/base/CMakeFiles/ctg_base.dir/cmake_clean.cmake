file(REMOVE_RECURSE
  "CMakeFiles/ctg_base.dir/logging.cc.o"
  "CMakeFiles/ctg_base.dir/logging.cc.o.d"
  "CMakeFiles/ctg_base.dir/rng.cc.o"
  "CMakeFiles/ctg_base.dir/rng.cc.o.d"
  "CMakeFiles/ctg_base.dir/stats.cc.o"
  "CMakeFiles/ctg_base.dir/stats.cc.o.d"
  "CMakeFiles/ctg_base.dir/table.cc.o"
  "CMakeFiles/ctg_base.dir/table.cc.o.d"
  "CMakeFiles/ctg_base.dir/units.cc.o"
  "CMakeFiles/ctg_base.dir/units.cc.o.d"
  "libctg_base.a"
  "libctg_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctg_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
