file(REMOVE_RECURSE
  "libctg_base.a"
)
