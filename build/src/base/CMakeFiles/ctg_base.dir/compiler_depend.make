# Empty compiler generated dependencies file for ctg_base.
# This may be replaced when dependencies are built.
