
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/contiguitas/policy.cc" "src/contiguitas/CMakeFiles/ctg_contiguitas.dir/policy.cc.o" "gcc" "src/contiguitas/CMakeFiles/ctg_contiguitas.dir/policy.cc.o.d"
  "/root/repo/src/contiguitas/region_manager.cc" "src/contiguitas/CMakeFiles/ctg_contiguitas.dir/region_manager.cc.o" "gcc" "src/contiguitas/CMakeFiles/ctg_contiguitas.dir/region_manager.cc.o.d"
  "/root/repo/src/contiguitas/resize_controller.cc" "src/contiguitas/CMakeFiles/ctg_contiguitas.dir/resize_controller.cc.o" "gcc" "src/contiguitas/CMakeFiles/ctg_contiguitas.dir/resize_controller.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernel/CMakeFiles/ctg_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ctg_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/ctg_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
