file(REMOVE_RECURSE
  "CMakeFiles/ctg_contiguitas.dir/policy.cc.o"
  "CMakeFiles/ctg_contiguitas.dir/policy.cc.o.d"
  "CMakeFiles/ctg_contiguitas.dir/region_manager.cc.o"
  "CMakeFiles/ctg_contiguitas.dir/region_manager.cc.o.d"
  "CMakeFiles/ctg_contiguitas.dir/resize_controller.cc.o"
  "CMakeFiles/ctg_contiguitas.dir/resize_controller.cc.o.d"
  "libctg_contiguitas.a"
  "libctg_contiguitas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctg_contiguitas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
