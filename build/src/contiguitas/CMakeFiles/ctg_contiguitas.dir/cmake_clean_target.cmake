file(REMOVE_RECURSE
  "libctg_contiguitas.a"
)
