# Empty dependencies file for ctg_contiguitas.
# This may be replaced when dependencies are built.
