file(REMOVE_RECURSE
  "CMakeFiles/ctg_fleet.dir/fleet.cc.o"
  "CMakeFiles/ctg_fleet.dir/fleet.cc.o.d"
  "CMakeFiles/ctg_fleet.dir/server.cc.o"
  "CMakeFiles/ctg_fleet.dir/server.cc.o.d"
  "libctg_fleet.a"
  "libctg_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctg_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
