file(REMOVE_RECURSE
  "libctg_fleet.a"
)
