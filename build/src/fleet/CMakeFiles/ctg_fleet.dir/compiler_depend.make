# Empty compiler generated dependencies file for ctg_fleet.
# This may be replaced when dependencies are built.
