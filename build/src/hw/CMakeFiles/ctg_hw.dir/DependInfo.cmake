
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/areamodel.cc" "src/hw/CMakeFiles/ctg_hw.dir/areamodel.cc.o" "gcc" "src/hw/CMakeFiles/ctg_hw.dir/areamodel.cc.o.d"
  "/root/repo/src/hw/cache.cc" "src/hw/CMakeFiles/ctg_hw.dir/cache.cc.o" "gcc" "src/hw/CMakeFiles/ctg_hw.dir/cache.cc.o.d"
  "/root/repo/src/hw/chw/engine.cc" "src/hw/CMakeFiles/ctg_hw.dir/chw/engine.cc.o" "gcc" "src/hw/CMakeFiles/ctg_hw.dir/chw/engine.cc.o.d"
  "/root/repo/src/hw/core.cc" "src/hw/CMakeFiles/ctg_hw.dir/core.cc.o" "gcc" "src/hw/CMakeFiles/ctg_hw.dir/core.cc.o.d"
  "/root/repo/src/hw/iommu.cc" "src/hw/CMakeFiles/ctg_hw.dir/iommu.cc.o" "gcc" "src/hw/CMakeFiles/ctg_hw.dir/iommu.cc.o.d"
  "/root/repo/src/hw/mem_hierarchy.cc" "src/hw/CMakeFiles/ctg_hw.dir/mem_hierarchy.cc.o" "gcc" "src/hw/CMakeFiles/ctg_hw.dir/mem_hierarchy.cc.o.d"
  "/root/repo/src/hw/shootdown.cc" "src/hw/CMakeFiles/ctg_hw.dir/shootdown.cc.o" "gcc" "src/hw/CMakeFiles/ctg_hw.dir/shootdown.cc.o.d"
  "/root/repo/src/hw/system.cc" "src/hw/CMakeFiles/ctg_hw.dir/system.cc.o" "gcc" "src/hw/CMakeFiles/ctg_hw.dir/system.cc.o.d"
  "/root/repo/src/hw/tlb.cc" "src/hw/CMakeFiles/ctg_hw.dir/tlb.cc.o" "gcc" "src/hw/CMakeFiles/ctg_hw.dir/tlb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernel/CMakeFiles/ctg_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ctg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/ctg_base.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ctg_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
