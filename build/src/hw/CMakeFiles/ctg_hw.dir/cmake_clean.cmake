file(REMOVE_RECURSE
  "CMakeFiles/ctg_hw.dir/areamodel.cc.o"
  "CMakeFiles/ctg_hw.dir/areamodel.cc.o.d"
  "CMakeFiles/ctg_hw.dir/cache.cc.o"
  "CMakeFiles/ctg_hw.dir/cache.cc.o.d"
  "CMakeFiles/ctg_hw.dir/chw/engine.cc.o"
  "CMakeFiles/ctg_hw.dir/chw/engine.cc.o.d"
  "CMakeFiles/ctg_hw.dir/core.cc.o"
  "CMakeFiles/ctg_hw.dir/core.cc.o.d"
  "CMakeFiles/ctg_hw.dir/iommu.cc.o"
  "CMakeFiles/ctg_hw.dir/iommu.cc.o.d"
  "CMakeFiles/ctg_hw.dir/mem_hierarchy.cc.o"
  "CMakeFiles/ctg_hw.dir/mem_hierarchy.cc.o.d"
  "CMakeFiles/ctg_hw.dir/shootdown.cc.o"
  "CMakeFiles/ctg_hw.dir/shootdown.cc.o.d"
  "CMakeFiles/ctg_hw.dir/system.cc.o"
  "CMakeFiles/ctg_hw.dir/system.cc.o.d"
  "CMakeFiles/ctg_hw.dir/tlb.cc.o"
  "CMakeFiles/ctg_hw.dir/tlb.cc.o.d"
  "libctg_hw.a"
  "libctg_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctg_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
