file(REMOVE_RECURSE
  "libctg_hw.a"
)
