# Empty dependencies file for ctg_hw.
# This may be replaced when dependencies are built.
