
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernel/addrspace.cc" "src/kernel/CMakeFiles/ctg_kernel.dir/addrspace.cc.o" "gcc" "src/kernel/CMakeFiles/ctg_kernel.dir/addrspace.cc.o.d"
  "/root/repo/src/kernel/churn.cc" "src/kernel/CMakeFiles/ctg_kernel.dir/churn.cc.o" "gcc" "src/kernel/CMakeFiles/ctg_kernel.dir/churn.cc.o.d"
  "/root/repo/src/kernel/compaction.cc" "src/kernel/CMakeFiles/ctg_kernel.dir/compaction.cc.o" "gcc" "src/kernel/CMakeFiles/ctg_kernel.dir/compaction.cc.o.d"
  "/root/repo/src/kernel/contig_alloc.cc" "src/kernel/CMakeFiles/ctg_kernel.dir/contig_alloc.cc.o" "gcc" "src/kernel/CMakeFiles/ctg_kernel.dir/contig_alloc.cc.o.d"
  "/root/repo/src/kernel/fsbuffers.cc" "src/kernel/CMakeFiles/ctg_kernel.dir/fsbuffers.cc.o" "gcc" "src/kernel/CMakeFiles/ctg_kernel.dir/fsbuffers.cc.o.d"
  "/root/repo/src/kernel/hugetlb.cc" "src/kernel/CMakeFiles/ctg_kernel.dir/hugetlb.cc.o" "gcc" "src/kernel/CMakeFiles/ctg_kernel.dir/hugetlb.cc.o.d"
  "/root/repo/src/kernel/kernel.cc" "src/kernel/CMakeFiles/ctg_kernel.dir/kernel.cc.o" "gcc" "src/kernel/CMakeFiles/ctg_kernel.dir/kernel.cc.o.d"
  "/root/repo/src/kernel/migrate.cc" "src/kernel/CMakeFiles/ctg_kernel.dir/migrate.cc.o" "gcc" "src/kernel/CMakeFiles/ctg_kernel.dir/migrate.cc.o.d"
  "/root/repo/src/kernel/netstack.cc" "src/kernel/CMakeFiles/ctg_kernel.dir/netstack.cc.o" "gcc" "src/kernel/CMakeFiles/ctg_kernel.dir/netstack.cc.o.d"
  "/root/repo/src/kernel/pagetable.cc" "src/kernel/CMakeFiles/ctg_kernel.dir/pagetable.cc.o" "gcc" "src/kernel/CMakeFiles/ctg_kernel.dir/pagetable.cc.o.d"
  "/root/repo/src/kernel/psi.cc" "src/kernel/CMakeFiles/ctg_kernel.dir/psi.cc.o" "gcc" "src/kernel/CMakeFiles/ctg_kernel.dir/psi.cc.o.d"
  "/root/repo/src/kernel/slab.cc" "src/kernel/CMakeFiles/ctg_kernel.dir/slab.cc.o" "gcc" "src/kernel/CMakeFiles/ctg_kernel.dir/slab.cc.o.d"
  "/root/repo/src/kernel/vanilla_policy.cc" "src/kernel/CMakeFiles/ctg_kernel.dir/vanilla_policy.cc.o" "gcc" "src/kernel/CMakeFiles/ctg_kernel.dir/vanilla_policy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/ctg_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/ctg_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
