file(REMOVE_RECURSE
  "CMakeFiles/ctg_kernel.dir/addrspace.cc.o"
  "CMakeFiles/ctg_kernel.dir/addrspace.cc.o.d"
  "CMakeFiles/ctg_kernel.dir/churn.cc.o"
  "CMakeFiles/ctg_kernel.dir/churn.cc.o.d"
  "CMakeFiles/ctg_kernel.dir/compaction.cc.o"
  "CMakeFiles/ctg_kernel.dir/compaction.cc.o.d"
  "CMakeFiles/ctg_kernel.dir/contig_alloc.cc.o"
  "CMakeFiles/ctg_kernel.dir/contig_alloc.cc.o.d"
  "CMakeFiles/ctg_kernel.dir/fsbuffers.cc.o"
  "CMakeFiles/ctg_kernel.dir/fsbuffers.cc.o.d"
  "CMakeFiles/ctg_kernel.dir/hugetlb.cc.o"
  "CMakeFiles/ctg_kernel.dir/hugetlb.cc.o.d"
  "CMakeFiles/ctg_kernel.dir/kernel.cc.o"
  "CMakeFiles/ctg_kernel.dir/kernel.cc.o.d"
  "CMakeFiles/ctg_kernel.dir/migrate.cc.o"
  "CMakeFiles/ctg_kernel.dir/migrate.cc.o.d"
  "CMakeFiles/ctg_kernel.dir/netstack.cc.o"
  "CMakeFiles/ctg_kernel.dir/netstack.cc.o.d"
  "CMakeFiles/ctg_kernel.dir/pagetable.cc.o"
  "CMakeFiles/ctg_kernel.dir/pagetable.cc.o.d"
  "CMakeFiles/ctg_kernel.dir/psi.cc.o"
  "CMakeFiles/ctg_kernel.dir/psi.cc.o.d"
  "CMakeFiles/ctg_kernel.dir/slab.cc.o"
  "CMakeFiles/ctg_kernel.dir/slab.cc.o.d"
  "CMakeFiles/ctg_kernel.dir/vanilla_policy.cc.o"
  "CMakeFiles/ctg_kernel.dir/vanilla_policy.cc.o.d"
  "libctg_kernel.a"
  "libctg_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctg_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
