file(REMOVE_RECURSE
  "libctg_kernel.a"
)
