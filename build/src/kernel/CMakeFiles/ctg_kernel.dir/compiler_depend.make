# Empty compiler generated dependencies file for ctg_kernel.
# This may be replaced when dependencies are built.
