
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/buddy.cc" "src/mem/CMakeFiles/ctg_mem.dir/buddy.cc.o" "gcc" "src/mem/CMakeFiles/ctg_mem.dir/buddy.cc.o.d"
  "/root/repo/src/mem/migratetype.cc" "src/mem/CMakeFiles/ctg_mem.dir/migratetype.cc.o" "gcc" "src/mem/CMakeFiles/ctg_mem.dir/migratetype.cc.o.d"
  "/root/repo/src/mem/physmem.cc" "src/mem/CMakeFiles/ctg_mem.dir/physmem.cc.o" "gcc" "src/mem/CMakeFiles/ctg_mem.dir/physmem.cc.o.d"
  "/root/repo/src/mem/scanner.cc" "src/mem/CMakeFiles/ctg_mem.dir/scanner.cc.o" "gcc" "src/mem/CMakeFiles/ctg_mem.dir/scanner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/ctg_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
