file(REMOVE_RECURSE
  "CMakeFiles/ctg_mem.dir/buddy.cc.o"
  "CMakeFiles/ctg_mem.dir/buddy.cc.o.d"
  "CMakeFiles/ctg_mem.dir/migratetype.cc.o"
  "CMakeFiles/ctg_mem.dir/migratetype.cc.o.d"
  "CMakeFiles/ctg_mem.dir/physmem.cc.o"
  "CMakeFiles/ctg_mem.dir/physmem.cc.o.d"
  "CMakeFiles/ctg_mem.dir/scanner.cc.o"
  "CMakeFiles/ctg_mem.dir/scanner.cc.o.d"
  "libctg_mem.a"
  "libctg_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctg_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
