file(REMOVE_RECURSE
  "libctg_mem.a"
)
