# Empty dependencies file for ctg_mem.
# This may be replaced when dependencies are built.
