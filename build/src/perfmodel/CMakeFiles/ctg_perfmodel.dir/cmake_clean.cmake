file(REMOVE_RECURSE
  "CMakeFiles/ctg_perfmodel.dir/hwgen.cc.o"
  "CMakeFiles/ctg_perfmodel.dir/hwgen.cc.o.d"
  "CMakeFiles/ctg_perfmodel.dir/walkmodel.cc.o"
  "CMakeFiles/ctg_perfmodel.dir/walkmodel.cc.o.d"
  "libctg_perfmodel.a"
  "libctg_perfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctg_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
