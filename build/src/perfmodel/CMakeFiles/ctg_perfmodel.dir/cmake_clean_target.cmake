file(REMOVE_RECURSE
  "libctg_perfmodel.a"
)
