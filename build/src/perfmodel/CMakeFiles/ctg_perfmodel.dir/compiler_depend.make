# Empty compiler generated dependencies file for ctg_perfmodel.
# This may be replaced when dependencies are built.
