file(REMOVE_RECURSE
  "CMakeFiles/ctg_sim.dir/eventq.cc.o"
  "CMakeFiles/ctg_sim.dir/eventq.cc.o.d"
  "libctg_sim.a"
  "libctg_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctg_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
