file(REMOVE_RECURSE
  "libctg_sim.a"
)
