# Empty dependencies file for ctg_sim.
# This may be replaced when dependencies are built.
