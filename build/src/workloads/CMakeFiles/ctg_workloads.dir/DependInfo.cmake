
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/access_gen.cc" "src/workloads/CMakeFiles/ctg_workloads.dir/access_gen.cc.o" "gcc" "src/workloads/CMakeFiles/ctg_workloads.dir/access_gen.cc.o.d"
  "/root/repo/src/workloads/fragmenter.cc" "src/workloads/CMakeFiles/ctg_workloads.dir/fragmenter.cc.o" "gcc" "src/workloads/CMakeFiles/ctg_workloads.dir/fragmenter.cc.o.d"
  "/root/repo/src/workloads/profile.cc" "src/workloads/CMakeFiles/ctg_workloads.dir/profile.cc.o" "gcc" "src/workloads/CMakeFiles/ctg_workloads.dir/profile.cc.o.d"
  "/root/repo/src/workloads/slab_churn.cc" "src/workloads/CMakeFiles/ctg_workloads.dir/slab_churn.cc.o" "gcc" "src/workloads/CMakeFiles/ctg_workloads.dir/slab_churn.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/workloads/CMakeFiles/ctg_workloads.dir/workload.cc.o" "gcc" "src/workloads/CMakeFiles/ctg_workloads.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernel/CMakeFiles/ctg_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/ctg_base.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ctg_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
