file(REMOVE_RECURSE
  "CMakeFiles/ctg_workloads.dir/access_gen.cc.o"
  "CMakeFiles/ctg_workloads.dir/access_gen.cc.o.d"
  "CMakeFiles/ctg_workloads.dir/fragmenter.cc.o"
  "CMakeFiles/ctg_workloads.dir/fragmenter.cc.o.d"
  "CMakeFiles/ctg_workloads.dir/profile.cc.o"
  "CMakeFiles/ctg_workloads.dir/profile.cc.o.d"
  "CMakeFiles/ctg_workloads.dir/slab_churn.cc.o"
  "CMakeFiles/ctg_workloads.dir/slab_churn.cc.o.d"
  "CMakeFiles/ctg_workloads.dir/workload.cc.o"
  "CMakeFiles/ctg_workloads.dir/workload.cc.o.d"
  "libctg_workloads.a"
  "libctg_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctg_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
