file(REMOVE_RECURSE
  "libctg_workloads.a"
)
