# Empty compiler generated dependencies file for ctg_workloads.
# This may be replaced when dependencies are built.
