
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_base.cc" "tests/CMakeFiles/ctg_tests.dir/test_base.cc.o" "gcc" "tests/CMakeFiles/ctg_tests.dir/test_base.cc.o.d"
  "/root/repo/tests/test_buddy.cc" "tests/CMakeFiles/ctg_tests.dir/test_buddy.cc.o" "gcc" "tests/CMakeFiles/ctg_tests.dir/test_buddy.cc.o.d"
  "/root/repo/tests/test_contig_alloc.cc" "tests/CMakeFiles/ctg_tests.dir/test_contig_alloc.cc.o" "gcc" "tests/CMakeFiles/ctg_tests.dir/test_contig_alloc.cc.o.d"
  "/root/repo/tests/test_contiguitas.cc" "tests/CMakeFiles/ctg_tests.dir/test_contiguitas.cc.o" "gcc" "tests/CMakeFiles/ctg_tests.dir/test_contiguitas.cc.o.d"
  "/root/repo/tests/test_core.cc" "tests/CMakeFiles/ctg_tests.dir/test_core.cc.o" "gcc" "tests/CMakeFiles/ctg_tests.dir/test_core.cc.o.d"
  "/root/repo/tests/test_fleet.cc" "tests/CMakeFiles/ctg_tests.dir/test_fleet.cc.o" "gcc" "tests/CMakeFiles/ctg_tests.dir/test_fleet.cc.o.d"
  "/root/repo/tests/test_hugetlb.cc" "tests/CMakeFiles/ctg_tests.dir/test_hugetlb.cc.o" "gcc" "tests/CMakeFiles/ctg_tests.dir/test_hugetlb.cc.o.d"
  "/root/repo/tests/test_hw.cc" "tests/CMakeFiles/ctg_tests.dir/test_hw.cc.o" "gcc" "tests/CMakeFiles/ctg_tests.dir/test_hw.cc.o.d"
  "/root/repo/tests/test_hw_protocol.cc" "tests/CMakeFiles/ctg_tests.dir/test_hw_protocol.cc.o" "gcc" "tests/CMakeFiles/ctg_tests.dir/test_hw_protocol.cc.o.d"
  "/root/repo/tests/test_kernel.cc" "tests/CMakeFiles/ctg_tests.dir/test_kernel.cc.o" "gcc" "tests/CMakeFiles/ctg_tests.dir/test_kernel.cc.o.d"
  "/root/repo/tests/test_migration_hw.cc" "tests/CMakeFiles/ctg_tests.dir/test_migration_hw.cc.o" "gcc" "tests/CMakeFiles/ctg_tests.dir/test_migration_hw.cc.o.d"
  "/root/repo/tests/test_perfmodel.cc" "tests/CMakeFiles/ctg_tests.dir/test_perfmodel.cc.o" "gcc" "tests/CMakeFiles/ctg_tests.dir/test_perfmodel.cc.o.d"
  "/root/repo/tests/test_region_fuzz.cc" "tests/CMakeFiles/ctg_tests.dir/test_region_fuzz.cc.o" "gcc" "tests/CMakeFiles/ctg_tests.dir/test_region_fuzz.cc.o.d"
  "/root/repo/tests/test_scanner.cc" "tests/CMakeFiles/ctg_tests.dir/test_scanner.cc.o" "gcc" "tests/CMakeFiles/ctg_tests.dir/test_scanner.cc.o.d"
  "/root/repo/tests/test_workloads.cc" "tests/CMakeFiles/ctg_tests.dir/test_workloads.cc.o" "gcc" "tests/CMakeFiles/ctg_tests.dir/test_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/perfmodel/CMakeFiles/ctg_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/fleet/CMakeFiles/ctg_fleet.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/ctg_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/contiguitas/CMakeFiles/ctg_contiguitas.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/ctg_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/ctg_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ctg_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ctg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/ctg_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
