# Empty dependencies file for ctg_tests.
# This may be replaced when dependencies are built.
