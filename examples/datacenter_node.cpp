/**
 * @file
 * A day in the life of one datacenter node, timeline style: boot,
 * page-cache warmup, cache-service traffic, a code deploy (restart),
 * a zero-copy burst pinning user memory, and finally a dynamic 1 GB
 * HugeTLB request — on a Contiguitas kernel with the hardware
 * migration hook enabled, printing the region boundary and memory
 * state at every act.
 */

#include <cstdio>

#include "base/table.hh"
#include "base/units.hh"
#include "contiguitas/policy.hh"
#include "fleet/server.hh"
#include "mem/mem_stats.hh"
#include "mem/scanner.hh"

using namespace ctg;

namespace
{

void
report(const char *act, Server &server)
{
    Kernel &kernel = server.kernel();
    const PhysMem &mem = kernel.mem();
    const Pfn n = mem.numFrames();
    const auto region = kernel.policy().unmovableRegion();
    std::printf(
        "%-28s boundary=%-9s free=%-9s unmovable=%.1f%% "
        "pot2M=%.0f%%\n",
        act,
        formatBytes((region.second - region.first) * pageBytes)
            .c_str(),
        formatBytes(mem.stats().freePages(0, n) * pageBytes).c_str(),
        mem.stats().unmovablePageRatio(0, n) * 100.0,
        mem.stats().potentialContiguityFraction(region.second, n,
                                          scan::order2M) *
            100.0);
}

} // namespace

int
main()
{
    std::printf("one Contiguitas node, end to end\n\n");

    Server::Config config;
    config.memBytes = 4_GiB;
    config.policy.name = "contiguitas";
    config.policy.contiguitas.hwMigration = true;
    config.policy.contiguitas.defragBlocksPerTick = 8;
    config.kind = WorkloadKind::CacheB;
    config.uptimeSec = 0.0; // we drive the timeline by hand
    config.seed = 0x70d4;
    Server server(config);
    Workload &workload = server.workload();

    report("boot", server);

    workload.start();
    report("service started", server);

    workload.runFor(20.0);
    report("20s of cache traffic", server);

    workload.restart();
    report("code deploy (restart)", server);

    workload.runFor(10.0);
    auto &policy =
        static_cast<ContiguitasPolicy &>(server.kernel().policy());
    std::printf("\n  pin migrations so far: %llu "
                "(movable pages moved into the unmovable region "
                "before pinning)\n",
                static_cast<unsigned long long>(
                    policy.stats().pinMigrations));
    std::printf("  region resizes: %llu expands, %llu shrinks, "
                "%llu hardware-assisted page moves\n\n",
                static_cast<unsigned long long>(
                    policy.regions().stats().expansions),
                static_cast<unsigned long long>(
                    policy.regions().stats().shrinks),
                static_cast<unsigned long long>(
                    policy.regions().stats().hwMigrations));

    report("10s more traffic", server);

    const unsigned giga = workload.tryBackGigantic(1);
    report(giga ? "dynamic 1GB page GRANTED"
                : "dynamic 1GB page failed",
           server);

    policy.regions().checkConfinement();
    std::printf("\nconfinement invariant verified: no unmovable "
                "page outside [0, boundary), no movable page "
                "inside.\n");
    return giga == 1 ? 0 : 1;
}
