/**
 * @file
 * Fleet study: sample a population of simulated servers running
 * mixed production-like workloads, scan every machine, and print a
 * Section 2-style fragmentation report — then repeat the exercise
 * with Contiguitas kernels to see the fleet-wide effect.
 *
 * Usage: fleet_study [num_servers]
 */

#include <cstdio>
#include <cstdlib>

#include "base/stats.hh"
#include "base/table.hh"
#include "base/units.hh"
#include "fleet/fleet.hh"

using namespace ctg;

namespace
{

struct Summary
{
    double medianUnmovPages = 0;
    double medianUnmov2m = 0;
    double fracNoFree2m = 0;
    double medianPotential32m = 0;
};

Summary
summarize(const std::vector<ServerScan> &scans)
{
    EmpiricalCdf unmov_pages;
    EmpiricalCdf unmov_2m;
    EmpiricalCdf pot_32m;
    unsigned no_free_2m = 0;
    for (const ServerScan &scan : scans) {
        unmov_pages.add(scan.unmovablePageRatio);
        unmov_2m.add(scan.unmovableBlocks[0]);
        pot_32m.add(scan.potentialContiguity[1]);
        no_free_2m += scan.free2mBlocks == 0;
    }
    Summary s;
    s.medianUnmovPages = unmov_pages.quantile(0.5);
    s.medianUnmov2m = unmov_2m.quantile(0.5);
    s.fracNoFree2m = static_cast<double>(no_free_2m) /
                     static_cast<double>(scans.size());
    s.medianPotential32m = pot_32m.quantile(0.5);
    return s;
}

} // namespace

int
main(int argc, char **argv)
{
    const unsigned servers =
        argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 24;

    Fleet::Config config;
    config.servers = servers;
    config.memBytes = 2_GiB;
    config.minUptimeSec = 25.0;
    config.maxUptimeSec = 80.0;
    config.seed = 0xf1ee7;
    // Honor CTG_THREADS / CTG_CHECKPOINT / CTG_RESTORE etc., like
    // the bench binaries do. The printed report is bit-identical
    // whatever these knobs say, which CI's round-trip smoke diffs.
    config.applyEnvOverlay();

    std::printf("sampling %u vanilla servers ...\n", servers);
    config.policy.name = "vanilla";
    const auto linux_scans = Fleet(config).run();

    std::printf("sampling %u Contiguitas servers ...\n\n", servers);
    config.policy.name = "contiguitas";
    const auto ctg_scans = Fleet(config).run();

    const Summary lx = summarize(linux_scans);
    const Summary cg = summarize(ctg_scans);

    Table table("fleet fragmentation report (" +
                std::to_string(servers) + " servers each)");
    table.header({"Metric (median)", "Linux", "Contiguitas"});
    table.row({"Unmovable 4KB pages",
               formatPercent(lx.medianUnmovPages),
               formatPercent(cg.medianUnmovPages)});
    table.row({"Contaminated 2MB blocks",
               formatPercent(lx.medianUnmov2m),
               formatPercent(cg.medianUnmov2m)});
    table.row({"Servers without a free 2MB block",
               formatPercent(lx.fracNoFree2m),
               formatPercent(cg.fracNoFree2m)});
    table.row({"Potential 32MB contiguity",
               formatPercent(lx.medianPotential32m),
               formatPercent(cg.medianPotential32m)});
    table.print();

    std::printf("\nWorkloads can land on any server: with "
                "Contiguitas the whole fleet offers huge-page "
                "contiguity,\nso no more automatic reboots to "
                "defragment critical hosts.\n");
    return 0;
}
