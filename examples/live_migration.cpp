/**
 * @file
 * Live migration demo: a page that is being DMA'd into by a NIC —
 * unmovable for software — is migrated by Contiguitas-HW while the
 * traffic keeps flowing. The demo prints the migration's progress
 * (Ptr frontier, redirections) and verifies that not a single
 * byte-token is lost, then contrasts the classic IPI-based software
 * migration's downtime.
 */

#include <cstdio>

#include "base/rng.hh"
#include "base/units.hh"
#include "hw/system.hh"
#include "kernel/kernel.hh"

using namespace ctg;

int
main()
{
    std::printf("Contiguitas-HW live migration of an in-use DMA "
                "page\n\n");

    HwSystem hw;
    KernelConfig kc;
    kc.memBytes = 256_MiB;
    kc.kernelTextBytes = 2_MiB;
    Kernel kernel(kc);
    PageTables tables(kernel);
    Rng rng(0xd);

    // An unmovable networking buffer, mapped for the NIC.
    AllocRequest req;
    req.order = 0;
    req.mt = MigrateType::Unmovable;
    req.source = AllocSource::Networking;
    const Pfn src = kernel.allocPages(req);
    const Pfn dst = kernel.allocPages(req);
    const Vpn vpn = 0xbeef;
    tables.map(vpn, src, 0);

    // Seed the page with recognizable tokens.
    std::uint64_t expected[linesPerPage];
    for (unsigned i = 0; i < linesPerPage; ++i) {
        expected[i] = 0xd0d0000 + i;
        hw.mem().pokeMemory(pfnToAddr(src) + i * lineBytes,
                            expected[i]);
    }

    // Start the hardware migration; traffic continues below.
    bool done = false;
    MigrationTiming timing{};
    hw.shootdown().contiguitasMigrate(
        0, vpn, tables, dst, ChwMode::Noncacheable, hw.chw(),
        [&](MigrationTiming t) {
            timing = t;
            done = true;
        });

    // Drive DMA writes and core reads through the page while the
    // copy engine works, stepping the event queue by hand so we can
    // watch Ptr advance.
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    unsigned last_printed = 0;
    while (!done) {
        if (!hw.eventq().step() || done) {
            // The Clear command ended redirection; stop driving
            // traffic through the source name.
            break;
        }
        MigrationEntry *entry =
            hw.mem().migrationTable().findBySrc(src);
        if (entry != nullptr && entry->copying &&
            entry->ptr >= last_printed + 16) {
            last_printed = entry->ptr;
            std::printf("  Ptr=%2u/64  redirections so far: %llu\n",
                        entry->ptr,
                        static_cast<unsigned long long>(
                            hw.mem().stats().redirects));
        }
        for (int op = 0; op < 3; ++op) {
            const unsigned line =
                static_cast<unsigned>(rng.below(linesPerPage));
            const Addr addr = pfnToAddr(src) + line * lineBytes;
            if (rng.chance(0.4)) {
                const std::uint64_t v = rng.next();
                hw.mem().deviceAccess(addr, true, v); // NIC DMA
                expected[line] = v;
                ++writes;
            } else {
                const auto out = hw.mem().access(0, addr, false);
                if (out.value != expected[line]) {
                    std::printf("DATA LOSS at line %u!\n", line);
                    return 1;
                }
                ++reads;
            }
        }
    }
    hw.drain();

    std::printf("\nmigration done: %llu reads, %llu writes during "
                "the copy, 0 inconsistencies\n",
                static_cast<unsigned long long>(reads),
                static_cast<unsigned long long>(writes));

    // Verify the destination page.
    for (unsigned i = 0; i < linesPerPage; ++i) {
        const std::uint64_t v = hw.mem().authoritativeValue(
            pfnToAddr(dst) + i * lineBytes);
        if (v != expected[i]) {
            std::printf("MISMATCH line %u\n", i);
            return 1;
        }
    }
    std::printf("destination page verified: all 64 lines carry the "
                "latest data\n");
    std::printf("page-unavailable time: %llu cycles (the page never "
                "blocked)\n",
                static_cast<unsigned long long>(
                    timing.unavailableCycles));

    // Contrast: the classic software procedure.
    const Vpn vpn2 = 0xcafe;
    const Pfn src2 = kernel.allocPages(req);
    const Pfn dst2 = kernel.allocPages(req);
    tables.map(vpn2, src2, 0);
    MigrationTiming classic{};
    hw.shootdown().softwareMigrate(0, 7, vpn2, tables, dst2,
                                   [&](MigrationTiming t) {
                                       classic = t;
                                   });
    hw.drain();
    std::printf("\nclassic software migration (7 victim TLBs): page "
                "unavailable for %llu cycles\n",
                static_cast<unsigned long long>(
                    classic.unavailableCycles));
    std::printf("...and it is not even allowed on this page: the "
                "NIC cannot be blocked.\n");
    return 0;
}
