/**
 * @file
 * Quickstart: boot two simulated servers — stock Linux and
 * Contiguitas — run the same caching workload on both, and compare
 * what their physical memory looks like afterwards.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "base/table.hh"
#include "base/units.hh"
#include "fleet/server.hh"
#include "mem/scanner.hh"

using namespace ctg;

int
main()
{
    std::printf("Contiguitas quickstart: one workload, two "
                "kernels.\n\n");

    auto run = [](const char *policy) {
        Server::Config config;
        config.memBytes = 2_GiB;
        config.policy.name = policy;
        config.kind = WorkloadKind::CacheB;
        config.uptimeSec = 45.0;
        config.seed = 0x9019;
        Server server(config);
        return server.run();
    };

    std::printf("running vanilla Linux ...\n");
    const ServerScan linux_scan = run("vanilla");
    std::printf("running Contiguitas ...\n\n");
    const ServerScan ctg_scan = run("contiguitas");

    Table table("memory layout after 45s of cache traffic");
    table.header({"Metric", "Linux", "Contiguitas"});
    table.row({"Unmovable 4KB pages",
               formatPercent(linux_scan.unmovablePageRatio),
               formatPercent(ctg_scan.unmovablePageRatio)});
    table.row({"2MB blocks contaminated",
               formatPercent(linux_scan.unmovableBlocks[0]),
               formatPercent(ctg_scan.unmovableBlocks[0])});
    table.row({"Potential 2MB contiguity",
               formatPercent(linux_scan.potentialContiguity[0]),
               formatPercent(ctg_scan.potentialContiguity[0])});
    table.row({"Potential 32MB contiguity",
               formatPercent(linux_scan.potentialContiguity[1]),
               formatPercent(ctg_scan.potentialContiguity[1])});
    table.print();

    std::printf("\nBoth kernels hold the same amount of unmovable "
                "memory — Contiguitas just refuses to let it "
                "scatter.\nThat is the paper's whole point, in one "
                "table.\n");
    return 0;
}
