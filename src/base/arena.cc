#include "base/arena.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <new>
#include <utility>
#include <vector>

namespace ctg
{

namespace
{

/** The calling thread's active arena (null = host heap). Constant
 * initialization, so routing is safe from the first allocation. */
thread_local Arena *tlsArena = nullptr;

/** Malloc-path allocations (operator new calls not served by an
 * arena) — the gauge behind heapAllocCount(). */
std::atomic<std::uint64_t> heapAllocs{0};

/**
 * Global snapshot of every live arena's block ranges, for the
 * delete path: a pointer freed on a thread whose arena does not own
 * it (the fleet's merge thread destroying worker-built state, a
 * stray escape) must still be recognized as arena memory and
 * no-op'd. Readers take one acquire load and binary-search; writers
 * copy-modify-publish under a mutex. Old snapshots are retired to a
 * reachable list instead of freed — a freeing thread may still be
 * reading one, and keeping them reachable also keeps leak checkers
 * quiet. Growth is O(log arena-bytes) per arena, so the retired
 * list stays tiny.
 */
struct RangeSnapshot
{
    std::vector<std::pair<std::uintptr_t, std::uintptr_t>> ranges;
    RangeSnapshot *next = nullptr;
};

std::atomic<const RangeSnapshot *> liveRanges{nullptr};
std::mutex rangesMu;
RangeSnapshot *retiredRanges = nullptr;

void
publishRanges(const std::vector<std::pair<std::uintptr_t,
                                          std::uintptr_t>> &ranges)
{
    // Allocate the snapshot off-arena even when called from inside
    // an active scope (Arena::grow runs under one): the snapshot is
    // global state and must survive every reset.
    ArenaSuspend off;
    auto *snapshot = new RangeSnapshot;
    snapshot->ranges = ranges;
    const RangeSnapshot *old =
        liveRanges.exchange(snapshot, std::memory_order_acq_rel);
    auto *retired = const_cast<RangeSnapshot *>(old);
    if (retired != nullptr) {
        retired->next = retiredRanges;
        retiredRanges = retired;
    }
}

void
registerRange(void *lo, std::size_t size)
{
    const std::lock_guard<std::mutex> lock(rangesMu);
    const RangeSnapshot *cur =
        liveRanges.load(std::memory_order_acquire);
    std::vector<std::pair<std::uintptr_t, std::uintptr_t>> next;
    if (cur != nullptr)
        next = cur->ranges;
    const auto base = reinterpret_cast<std::uintptr_t>(lo);
    next.emplace_back(base, base + size);
    std::sort(next.begin(), next.end());
    publishRanges(next);
}

void
unregisterRange(void *lo)
{
    const std::lock_guard<std::mutex> lock(rangesMu);
    const RangeSnapshot *cur =
        liveRanges.load(std::memory_order_acquire);
    if (cur == nullptr)
        return;
    std::vector<std::pair<std::uintptr_t, std::uintptr_t>> next =
        cur->ranges;
    const auto base = reinterpret_cast<std::uintptr_t>(lo);
    for (auto it = next.begin(); it != next.end(); ++it) {
        if (it->first == base) {
            next.erase(it);
            break;
        }
    }
    publishRanges(next);
}

/** Is `ptr` inside any live arena block, per the global snapshot? */
bool
anyArenaOwns(const void *ptr)
{
    const RangeSnapshot *snapshot =
        liveRanges.load(std::memory_order_acquire);
    if (snapshot == nullptr || snapshot->ranges.empty())
        return false;
    const auto p = reinterpret_cast<std::uintptr_t>(ptr);
    // Binary search: first range whose lo is > p, step back one.
    std::size_t lo = 0, hi = snapshot->ranges.size();
    while (lo < hi) {
        const std::size_t mid = lo + (hi - lo) / 2;
        if (snapshot->ranges[mid].first <= p)
            lo = mid + 1;
        else
            hi = mid;
    }
    if (lo == 0)
        return false;
    const auto &range = snapshot->ranges[lo - 1];
    return p < range.second;
}

inline std::size_t
alignUp(std::size_t v, std::size_t align)
{
    return (v + align - 1) & ~(align - 1);
}

} // namespace

Arena::Arena() = default;

Arena::~Arena()
{
    freeBlocks();
}

void
Arena::freeBlocks()
{
    for (unsigned i = 0; i < nblocks_; ++i) {
        unregisterRange(blocks_[i].data);
        std::free(blocks_[i].data);
        blocks_[i] = Block{};
    }
    nblocks_ = 0;
    cur_ = end_ = nullptr;
}

bool
Arena::grow(std::size_t need)
{
    if (nblocks_ >= maxBlocks)
        return false;
    std::size_t size = firstBlockBytes;
    if (nblocks_ > 0) {
        const std::size_t prev = blocks_[nblocks_ - 1].size;
        size = prev < maxBlockBytes ? prev * 2 : maxBlockBytes;
    }
    if (size < need)
        size = alignUp(need, firstBlockBytes);
    auto *data = static_cast<char *>(std::malloc(size));
    if (data == nullptr)
        return false;
    blocks_[nblocks_] = Block{data, size};
    ++nblocks_;
    cur_ = data;
    end_ = data + size;
    registerRange(data, size);
    return true;
}

void *
Arena::allocate(std::size_t size, std::size_t align)
{
    if (size == 0)
        size = 1;
    if (align < minAlign)
        align = minAlign;
    auto p = reinterpret_cast<std::uintptr_t>(cur_);
    std::uintptr_t aligned = (p + align - 1) & ~(align - 1);
    if (cur_ == nullptr ||
        aligned + size > reinterpret_cast<std::uintptr_t>(end_)) {
        if (!grow(size + align)) {
            // Host-heap fallback: the matching delete finds the
            // pointer not-owned and frees it normally.
            heapAllocs.fetch_add(1, std::memory_order_relaxed);
            void *fallback = std::malloc(size);
            if (fallback == nullptr)
                throw std::bad_alloc();
            return fallback;
        }
        p = reinterpret_cast<std::uintptr_t>(cur_);
        aligned = (p + align - 1) & ~(align - 1);
    }
    cur_ = reinterpret_cast<char *>(aligned + size);
    used_ += (aligned + size) - p;
    if (used_ > highWater_)
        highWater_ = used_;
    return reinterpret_cast<void *>(aligned);
}

bool
Arena::owns(const void *ptr) const
{
    const auto p = reinterpret_cast<std::uintptr_t>(ptr);
    for (unsigned i = 0; i < nblocks_; ++i) {
        const auto lo =
            reinterpret_cast<std::uintptr_t>(blocks_[i].data);
        if (p >= lo && p < lo + blocks_[i].size)
            return true;
    }
    return false;
}

void
Arena::reset()
{
    if (nblocks_ > 1) {
        // Consolidate: one block sized to the high-water mark, so
        // the next task runs single-block and owns() is two
        // compares.
        const std::size_t want =
            alignUp(static_cast<std::size_t>(highWater_) +
                        firstBlockBytes,
                    firstBlockBytes);
        freeBlocks();
        grow(want);
    } else if (nblocks_ == 1) {
        cur_ = blocks_[0].data;
        end_ = cur_ + blocks_[0].size;
    }
    used_ = 0;
}

ArenaScope::ArenaScope(Arena &arena) : prev_(tlsArena)
{
    tlsArena = &arena;
}

ArenaScope::~ArenaScope()
{
    tlsArena = prev_;
}

ArenaSuspend::ArenaSuspend() : prev_(tlsArena)
{
    tlsArena = nullptr;
}

ArenaSuspend::~ArenaSuspend()
{
    tlsArena = prev_;
}

Arena *
activeArena()
{
    return tlsArena;
}

std::uint64_t
heapAllocCount()
{
    return heapAllocs.load(std::memory_order_relaxed);
}

namespace detail
{

/** Malloc-path allocation shared by every operator-new variant. */
inline void *
hostAlloc(std::size_t size, std::size_t align)
{
    heapAllocs.fetch_add(1, std::memory_order_relaxed);
    if (align <= alignof(std::max_align_t))
        return std::malloc(size != 0 ? size : 1);
    void *ptr = nullptr;
    if (posix_memalign(&ptr, align < sizeof(void *) ? sizeof(void *)
                                                    : align,
                       size != 0 ? size : align) != 0)
        return nullptr;
    return ptr;
}

inline void *
routedAlloc(std::size_t size, std::size_t align)
{
    if (Arena *arena = tlsArena)
        return arena->allocate(size, align);
    return hostAlloc(size, align);
}

inline void
routedFree(void *ptr)
{
    if (ptr == nullptr)
        return;
    Arena *arena = tlsArena;
    if (arena != nullptr && arena->owns(ptr))
        return;
    if (anyArenaOwns(ptr))
        return;
    std::free(ptr);
}

} // namespace detail

} // namespace ctg

// -------------------------------------------------------------------
// Global operator new/delete replacement. Linked program-wide through
// ctg_base (every binary's undefined `operator new` pulls this object
// in ahead of libstdc++'s definition), so *all* C++ allocations route
// through the thread's arena when one is active. Sanitizer builds
// keep working: the malloc path is ASan/TSan-intercepted std::malloc.
// -------------------------------------------------------------------

void *
operator new(std::size_t size)
{
    void *ptr = ctg::detail::routedAlloc(size, ctg::Arena::minAlign);
    if (ptr == nullptr)
        throw std::bad_alloc();
    return ptr;
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void *
operator new(std::size_t size, const std::nothrow_t &) noexcept
{
    try {
        return ctg::detail::routedAlloc(size, ctg::Arena::minAlign);
    } catch (...) {
        return nullptr;
    }
}

void *
operator new[](std::size_t size, const std::nothrow_t &) noexcept
{
    return ::operator new(size, std::nothrow);
}

void *
operator new(std::size_t size, std::align_val_t align)
{
    void *ptr = ctg::detail::routedAlloc(
        size, static_cast<std::size_t>(align));
    if (ptr == nullptr)
        throw std::bad_alloc();
    return ptr;
}

void *
operator new[](std::size_t size, std::align_val_t align)
{
    return ::operator new(size, align);
}

void *
operator new(std::size_t size, std::align_val_t align,
             const std::nothrow_t &) noexcept
{
    try {
        return ctg::detail::routedAlloc(
            size, static_cast<std::size_t>(align));
    } catch (...) {
        return nullptr;
    }
}

void *
operator new[](std::size_t size, std::align_val_t align,
               const std::nothrow_t &) noexcept
{
    return ::operator new(size, align, std::nothrow);
}

void
operator delete(void *ptr) noexcept
{
    ctg::detail::routedFree(ptr);
}

void
operator delete[](void *ptr) noexcept
{
    ctg::detail::routedFree(ptr);
}

void
operator delete(void *ptr, std::size_t) noexcept
{
    ctg::detail::routedFree(ptr);
}

void
operator delete[](void *ptr, std::size_t) noexcept
{
    ctg::detail::routedFree(ptr);
}

void
operator delete(void *ptr, const std::nothrow_t &) noexcept
{
    ctg::detail::routedFree(ptr);
}

void
operator delete[](void *ptr, const std::nothrow_t &) noexcept
{
    ctg::detail::routedFree(ptr);
}

void
operator delete(void *ptr, std::align_val_t) noexcept
{
    ctg::detail::routedFree(ptr);
}

void
operator delete[](void *ptr, std::align_val_t) noexcept
{
    ctg::detail::routedFree(ptr);
}

void
operator delete(void *ptr, std::size_t, std::align_val_t) noexcept
{
    ctg::detail::routedFree(ptr);
}

void
operator delete[](void *ptr, std::size_t, std::align_val_t) noexcept
{
    ctg::detail::routedFree(ptr);
}

void
operator delete(void *ptr, std::align_val_t,
                const std::nothrow_t &) noexcept
{
    ctg::detail::routedFree(ptr);
}

void
operator delete[](void *ptr, std::align_val_t,
                  const std::nothrow_t &) noexcept
{
    ctg::detail::routedFree(ptr);
}
