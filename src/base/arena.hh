/**
 * @file
 * Monotonic task arena with transparent operator-new routing.
 *
 * Fleet runs construct and destroy one full Server (frame table,
 * buddy allocators, page tables, policy, workload) per task. The
 * subsystems allocate through ordinary containers, so a cold
 * construction costs thousands of small heap round-trips — the
 * dominant setup/teardown cost at the 10⁵–10⁶ populations ROADMAP
 * item 1 targets. An Arena turns that churn into pointer bumps: a
 * worker activates its arena around a task (ArenaScope), every
 * `operator new` on that thread becomes a bump allocation, every
 * `operator delete` of arena-owned memory a no-op, and reset()
 * rewinds the whole task's storage in O(blocks) for the next server.
 *
 * The routing is implemented by replacing the global operator
 * new/delete family in arena.cc (linked into every binary through
 * ctg_base). Rules that keep it sound:
 *
 *  - Deletes are matched by *ownership*, not by scope: a pointer is
 *    a no-op free iff it lies inside a live arena block — checked
 *    against the active thread's arena first, then against a global
 *    lock-free snapshot of every live arena's block ranges. Any
 *    other pointer goes to std::free, so heap allocations made
 *    inside a scope (ArenaSuspend, fallback path) and arena
 *    pointers freed from another thread (the fleet's merge step)
 *    are both handled correctly.
 *  - Nothing may *survive* a reset(): results that outlive the task
 *    (scan PODs, trace text, span events) are deep-copied out under
 *    ArenaSuspend before the scope closes. fleet.cc owns that
 *    discipline; the pooled-vs-fresh equivalence suite pins it.
 *  - Exceptions escaping a scope carry arena-backed what() strings;
 *    callers re-throw a deep copy under ArenaSuspend (see
 *    fleet.cc).
 *
 * Every malloc-path allocation (i.e. not served by an arena) bumps
 * the process-wide counter behind heapAllocCount() (base/host_mem),
 * which is the alloc-count gauge `bench/fleet_scale` reports: the
 * pooled fleet path must show >= 10x fewer host-heap allocations per
 * simulated server than the construct-per-task baseline.
 */

#ifndef CTG_BASE_ARENA_HH
#define CTG_BASE_ARENA_HH

#include <cstddef>
#include <cstdint>

namespace ctg
{

/**
 * A growable monotonic allocator. Blocks come from std::malloc
 * (never from operator new — the replacement routes through here),
 * grow geometrically, and are retained across reset() so a
 * steady-state task allocates no host memory at all. Not
 * thread-safe: one arena belongs to one worker at a time.
 */
class Arena
{
  public:
    /** Every arena allocation is at least this aligned (matches
     * __STDCPP_DEFAULT_NEW_ALIGNMENT__ on the supported ABIs). */
    static constexpr std::size_t minAlign = 16;

    Arena();
    ~Arena();

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /** Bump-allocate `size` bytes at `align` (power of two). Never
     * returns null: when the block table is exhausted the request
     * falls back to the host heap, where the matching delete finds
     * it not-owned and frees it normally. */
    void *allocate(std::size_t size, std::size_t align = minAlign);

    /** Does `ptr` point into a live block of this arena? */
    bool owns(const void *ptr) const;

    /**
     * Rewind every block for reuse. O(blocks); nothing is returned
     * to the host. When the previous task overflowed into multiple
     * blocks, they are consolidated into one block sized to the
     * high-water mark, so steady-state tasks run single-block (and
     * owns() is two compares).
     */
    void reset();

    /** Bytes handed out since the last reset(). */
    std::uint64_t bytesUsed() const { return used_; }

    /** Largest bytesUsed() ever observed (sizing the consolidated
     * block; also a capacity-planning stat for the scale bench). */
    std::uint64_t highWaterBytes() const { return highWater_; }

    /** Live blocks (1 in steady state after consolidation). */
    unsigned blockCount() const { return nblocks_; }

  private:
    struct Block
    {
        char *data = nullptr;
        std::size_t size = 0;
    };

    /** Beyond this many blocks allocate() falls back to the host
     * heap; with geometric growth the cap is never reached by real
     * tasks (64 blocks cover ~2 GiB). */
    static constexpr unsigned maxBlocks = 64;
    static constexpr std::size_t firstBlockBytes = std::size_t{1}
                                                   << 20;
    static constexpr std::size_t maxBlockBytes = std::size_t{32}
                                                 << 20;

    /** Append a block of at least `need` bytes; false when the
     * block table is full or the host is out of memory. */
    bool grow(std::size_t need);

    void freeBlocks();

    Block blocks_[maxBlocks];
    unsigned nblocks_ = 0;
    /** Active block (always the last; earlier blocks are full). */
    char *cur_ = nullptr;
    char *end_ = nullptr;
    std::uint64_t used_ = 0;
    std::uint64_t highWater_ = 0;
};

/**
 * RAII activation: while alive, the calling thread's operator new
 * serves from `arena`. Scopes nest; the previous routing (usually
 * none) is restored on destruction. The arena must outlive the
 * scope and must not be reset() while allocations made under the
 * scope are still live.
 */
class ArenaScope
{
  public:
    explicit ArenaScope(Arena &arena);
    ~ArenaScope();

    ArenaScope(const ArenaScope &) = delete;
    ArenaScope &operator=(const ArenaScope &) = delete;

  private:
    Arena *prev_;
};

/**
 * RAII de-activation: while alive, the calling thread allocates
 * from the host heap again. Used inside a scope to build results
 * that must outlive the arena (deep copies in the fleet merge
 * path, exception translation, the block-range registry itself).
 */
class ArenaSuspend
{
  public:
    ArenaSuspend();
    ~ArenaSuspend();

    ArenaSuspend(const ArenaSuspend &) = delete;
    ArenaSuspend &operator=(const ArenaSuspend &) = delete;

  private:
    Arena *prev_;
};

/** The arena the calling thread currently routes through, or null. */
Arena *activeArena();

} // namespace ctg

#endif // CTG_BASE_ARENA_HH
