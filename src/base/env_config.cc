#include "base/env_config.hh"

#include <cstdlib>
#include <cstring>

#include "base/logging.hh"

namespace ctg
{
namespace sim
{

namespace
{

/** Parse a decimal unsigned >= 1; returns false on malformed input
 * (which the caller warns about) and on values below 1. strtoul
 * quietly wraps negative input ("-2" becomes a huge unsigned), so
 * reject anything that does not start with a digit. */
bool
parsePositive(const char *text, unsigned *out)
{
    if (text[0] < '0' || text[0] > '9')
        return false;
    char *end = nullptr;
    const unsigned long parsed = std::strtoul(text, &end, 10);
    if (end == text || *end != '\0' || parsed < 1)
        return false;
    *out = static_cast<unsigned>(parsed);
    return true;
}

/** Strict boolean: only the documented spellings are accepted.
 * Returns false (leaving *out untouched) on anything else, so the
 * caller can warn naming the variable — "CTG_EXACT_PREF=ture" must
 * not silently enable the knob. */
bool
parseBool(const char *text, bool *out)
{
    for (const char *yes : {"1", "on", "ON", "true", "yes"}) {
        if (std::strcmp(text, yes) == 0) {
            *out = true;
            return true;
        }
    }
    for (const char *no : {"0", "off", "OFF", "false", "no"}) {
        if (std::strcmp(text, no) == 0) {
            *out = false;
            return true;
        }
    }
    return false;
}

} // namespace

EnvConfig
EnvConfig::fromEnv()
{
    EnvConfig config;

    if (const char *env = std::getenv("CTG_THREADS")) {
        if (!parsePositive(env, &config.threads))
            warn_once("ignoring malformed CTG_THREADS '%s'", env);
    }

    if (const char *env = std::getenv("CTG_FAULTS_SEED")) {
        char *end = nullptr;
        const std::uint64_t parsed = std::strtoull(env, &end, 0);
        if (end != env && *end == '\0') {
            config.hasFaultSeed = true;
            config.faultSeed = parsed;
        } else {
            warn_once("ignoring malformed CTG_FAULTS_SEED '%s'",
                      env);
        }
    }

    if (const char *env = std::getenv("CTG_FAULTS"))
        config.faultSpec = env;

    if (const char *env = std::getenv("CTG_STATS_JSON"))
        config.statsJsonPath = env;

    if (const char *env = std::getenv("CTG_FIG11_POP")) {
        if (!parsePositive(env, &config.fig11Population))
            warn_once("ignoring malformed CTG_FIG11_POP '%s'", env);
    }

    if (const char *env = std::getenv("CTG_TRACE"))
        config.traceSpec = env;

    if (const char *env = std::getenv("CTG_TRACE_FILE"))
        config.traceFile = env;

    if (const char *env = std::getenv("CTG_TRACE_SPANS"))
        config.traceSpansPath = env;

    if (const char *env = std::getenv("CTG_STREAM_SCANS")) {
        if (!parseBool(env, &config.streamScans))
            warn_once("ignoring malformed CTG_STREAM_SCANS '%s'",
                      env);
    }

    config.csvTables = std::getenv("CTG_CSV") != nullptr;

    if (const char *env = std::getenv("CTG_CONTIG_INDEX")) {
        if (!parseBool(env, &config.contigIndexReads))
            warn_once("ignoring malformed CTG_CONTIG_INDEX '%s'",
                      env);
    }

    if (const char *env = std::getenv("CTG_EXACT_PREF")) {
        if (!parseBool(env, &config.exactPref))
            warn_once("ignoring malformed CTG_EXACT_PREF '%s'",
                      env);
    }

    if (const char *env = std::getenv("CTG_COARSE_STEP")) {
        if (!parseBool(env, &config.coarseStep))
            warn_once("ignoring malformed CTG_COARSE_STEP '%s'",
                      env);
    }

    if (const char *env = std::getenv("CTG_SLOT_POOL")) {
        if (!parseBool(env, &config.slotPool))
            warn_once("ignoring malformed CTG_SLOT_POOL '%s'", env);
    }

    if (const char *env = std::getenv("CTG_POLICY"))
        config.policySpec = env;

    if (const char *env = std::getenv("CTG_WORKLOAD"))
        config.workloadOverride = env;

    if (const char *env = std::getenv("CTG_CHECKPOINT"))
        config.checkpointDir = env;

    if (const char *env = std::getenv("CTG_RESTORE"))
        config.restoreDir = env;

    return config;
}

} // namespace sim
} // namespace ctg
