#include "base/env_config.hh"

#include <cstdlib>
#include <cstring>

#include "base/logging.hh"

namespace ctg
{
namespace sim
{

namespace
{

/** Parse a decimal unsigned >= 1; returns false on malformed input
 * (which the caller warns about) and on values below 1. */
bool
parsePositive(const char *text, unsigned *out)
{
    char *end = nullptr;
    const unsigned long parsed = std::strtoul(text, &end, 10);
    if (end == text || *end != '\0' || parsed < 1)
        return false;
    *out = static_cast<unsigned>(parsed);
    return true;
}

bool
parseBool(const char *text)
{
    return std::strcmp(text, "0") != 0 &&
           std::strcmp(text, "off") != 0 &&
           std::strcmp(text, "OFF") != 0 &&
           std::strcmp(text, "false") != 0 &&
           std::strcmp(text, "no") != 0;
}

} // namespace

EnvConfig
EnvConfig::fromEnv()
{
    EnvConfig config;

    if (const char *env = std::getenv("CTG_THREADS")) {
        if (!parsePositive(env, &config.threads))
            warn_once("ignoring malformed CTG_THREADS '%s'", env);
    }

    if (const char *env = std::getenv("CTG_FAULTS_SEED")) {
        char *end = nullptr;
        const std::uint64_t parsed = std::strtoull(env, &end, 0);
        if (end != env && *end == '\0') {
            config.hasFaultSeed = true;
            config.faultSeed = parsed;
        } else {
            warn("ignoring malformed CTG_FAULTS_SEED '%s'", env);
        }
    }

    if (const char *env = std::getenv("CTG_FAULTS"))
        config.faultSpec = env;

    if (const char *env = std::getenv("CTG_STATS_JSON"))
        config.statsJsonPath = env;

    if (const char *env = std::getenv("CTG_FIG11_POP"))
        (void)parsePositive(env, &config.fig11Population);

    if (const char *env = std::getenv("CTG_TRACE"))
        config.traceSpec = env;

    if (const char *env = std::getenv("CTG_TRACE_FILE"))
        config.traceFile = env;

    if (const char *env = std::getenv("CTG_TRACE_SPANS"))
        config.traceSpansPath = env;

    if (const char *env = std::getenv("CTG_STREAM_SCANS"))
        config.streamScans = parseBool(env);

    config.csvTables = std::getenv("CTG_CSV") != nullptr;

    if (const char *env = std::getenv("CTG_CONTIG_INDEX"))
        config.contigIndexReads = parseBool(env);

    if (const char *env = std::getenv("CTG_EXACT_PREF"))
        config.exactPref = parseBool(env);

    return config;
}

} // namespace sim
} // namespace ctg
