/**
 * @file
 * One-stop parsing of the CTG_* environment overrides.
 *
 * Every knob the simulator reads from the environment is parsed here
 * into a sim::EnvConfig value, instead of each subsystem calling
 * getenv ad hoc. Call sites overlay the parsed values onto their own
 * config structs (Fleet::Config::applyEnvOverlay,
 * Server::Config::applyEnvOverlay) or query fromEnv() directly.
 *
 * fromEnv() re-reads the environment on every call — tests mutate
 * CTG_THREADS et al. with setenv at runtime and expect the change to
 * take effect, so nothing here is cached.
 */

#ifndef CTG_BASE_ENV_CONFIG_HH
#define CTG_BASE_ENV_CONFIG_HH

#include <cstdint>
#include <string>

namespace ctg
{
namespace sim
{

/** Parsed CTG_* environment overrides (defaults when unset). */
struct EnvConfig
{
    /** CTG_THREADS: executor width; 0 = auto (hardware threads). */
    unsigned threads = 0;

    /** CTG_FAULTS_SEED: injector RNG seed override. */
    bool hasFaultSeed = false;
    std::uint64_t faultSeed = 0;

    /** CTG_FAULTS: fault-site spec string ("site:p0.1,..."). */
    std::string faultSpec;

    /** CTG_STATS_JSON: path that bench stat dumps append to. */
    std::string statsJsonPath;

    /** CTG_FIG11_POP: fig11 servers per cell (default 8). */
    unsigned fig11Population = 8;

    /** CTG_TRACE / CTG_TRACE_FILE: trace flag spec and sink path. */
    std::string traceSpec;
    std::string traceFile;

    /** CTG_TRACE_SPANS: Perfetto span-trace output path; setting it
     * enables span collection on every flag and writes the JSON at
     * process exit. */
    std::string traceSpansPath;

    /** CTG_STREAM_SCANS: fold fleet scan results through streaming
     * OnlineHistogram sinks instead of materialized sample vectors
     * (same quantiles, O(distinct values) footprint). */
    bool streamScans = false;

    /** CTG_CSV: append CSV renderings after bench tables. */
    bool csvTables = false;

    /** CTG_CONTIG_INDEX: metric reads answer from the ContigIndex
     * (default on; "0"/"off"/"false"/"no" disable, forcing the
     * legacy full-scan reference path). */
    bool contigIndexReads = true;

    /** CTG_EXACT_PREF: AddrPref allocations pick the exact
     * lowest/highest free block via an index descent instead of the
     * capped free-list scan (default off — unlike CTG_CONTIG_INDEX
     * this changes placement, so it is opt-in). */
    bool exactPref = false;

    /** CTG_COARSE_STEP: fleet servers batch workload events into
     * one step per uptime segment while their policy reports no
     * pending maintenance (deferred resizes), dropping to the fine
     * stepSec cadence while work is pending. Deterministic, but a
     * deliberately coarser model than fine stepping — figure-shape
     * regressions pin that the fig11 confinement direction and the
     * Figure 4/12 CDF shapes survive it (default off; the scale
     * bench turns it on). */
    bool coarseStep = false;

    /** CTG_SLOT_POOL: fleet workers recycle per-thread ServerSlot
     * arenas across tasks instead of constructing every server on
     * the host heap (default on; bit-identical either way — the
     * pooled-vs-fresh equivalence suite pins it). "0" restores the
     * construct-per-task baseline, which is also how the scale
     * bench measures its alloc-count reduction. */
    bool slotPool = true;

    /** CTG_POLICY: placement-policy spec "name[:key=val,...]"
     * (registry names: vanilla, contiguitas, contiguitas-nobias,
     * zone-movable, ...). Kept as the raw string here — the
     * contiguitas layer owns the grammar
     * (parsePolicySpec in contiguitas/policy_registry.hh); consumers
     * parse at overlay time so typos warn in context. */
    std::string policySpec;

    /** CTG_WORKLOAD: named workload override (web, cache-a, cache-b,
     * ci, nginx, memcached, aging, fs-cache, unmovable-bursty);
     * every server in the fleet runs this kind. Raw string; parsed
     * by Fleet at overlay time. */
    std::string workloadOverride;

    /** CTG_CHECKPOINT: directory fleet runs write per-server
     * snapshot files and a manifest into. */
    std::string checkpointDir;

    /** CTG_RESTORE: directory fleet runs restore per-server
     * snapshots from; validation failures cold-start the server. */
    std::string restoreDir;

    /** Parse the current environment. Every malformed value warns
     * once, naming the variable and the offending text, and keeps
     * the default — a typo in a CTG_* knob must never be silently
     * interpreted. */
    static EnvConfig fromEnv();
};

} // namespace sim
} // namespace ctg

#endif // CTG_BASE_ENV_CONFIG_HH
