#include "base/host_mem.hh"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace ctg
{

std::uint64_t
peakRssBytes()
{
#if defined(__unix__) || defined(__APPLE__)
    struct rusage ru = {};
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0;
#if defined(__APPLE__)
    // macOS reports ru_maxrss in bytes.
    return static_cast<std::uint64_t>(ru.ru_maxrss);
#else
    // Linux reports ru_maxrss in KiB.
    return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
#endif
#else
    return 0;
#endif
}

} // namespace ctg
