/**
 * @file
 * Host-process memory introspection for the scale benches: the
 * simulator's own footprint is a first-class result at fleet scale
 * (bytes/frame and peak RSS are what bound the population size one
 * box can hold).
 */

#ifndef CTG_BASE_HOST_MEM_HH
#define CTG_BASE_HOST_MEM_HH

#include <cstdint>

namespace ctg
{

/** Peak resident-set size of this process in bytes (getrusage
 * ru_maxrss), or 0 where the platform cannot report it. */
std::uint64_t peakRssBytes();

/** Host-heap allocations performed by this process so far: every
 * operator-new call that was *not* served by an active task arena
 * (see base/arena.hh, where the counter lives). The fleet-scale
 * bench reads a delta of this around each run — the pooled path
 * must show >= 10x fewer host allocations per simulated server than
 * the construct-per-task baseline. Monotonic, relaxed. */
std::uint64_t heapAllocCount();

} // namespace ctg

#endif // CTG_BASE_HOST_MEM_HH
