/**
 * @file
 * Host-process memory introspection for the scale benches: the
 * simulator's own footprint is a first-class result at fleet scale
 * (bytes/frame and peak RSS are what bound the population size one
 * box can hold).
 */

#ifndef CTG_BASE_HOST_MEM_HH
#define CTG_BASE_HOST_MEM_HH

#include <cstdint>

namespace ctg
{

/** Peak resident-set size of this process in bytes (getrusage
 * ru_maxrss), or 0 where the platform cannot report it. */
std::uint64_t peakRssBytes();

} // namespace ctg

#endif // CTG_BASE_HOST_MEM_HH
