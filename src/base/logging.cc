#include "base/logging.hh"

#include <cstdarg>
#include <vector>

namespace ctg
{
namespace detail
{

std::string
formatMessage(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::va_list ap2;
    va_copy(ap2, ap);
    int len = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    if (len < 0) {
        va_end(ap2);
        return fmt;
    }
    std::vector<char> buf(static_cast<std::size_t>(len) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<std::size_t>(len));
}

} // namespace detail
} // namespace ctg
