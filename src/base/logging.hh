/**
 * @file
 * Error and status reporting in the gem5 idiom.
 *
 * panic()  — an internal invariant was violated (simulator bug); aborts.
 * fatal()  — the user asked for something impossible (bad config); exits.
 * warn()   — suspicious but recoverable condition.
 * inform() — plain status output.
 */

#ifndef CTG_BASE_LOGGING_HH
#define CTG_BASE_LOGGING_HH

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace ctg
{

/** Exception thrown by panic() so tests can assert on invariant
 * violations instead of killing the test binary. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error(msg)
    {}
};

/** Exception thrown by fatal() for unusable user configuration. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

namespace detail
{
std::string formatMessage(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));
} // namespace detail

/** Report a simulator bug and throw PanicError. */
template <typename... Args>
[[noreturn]] void
panic(const char *fmt, Args... args)
{
    throw PanicError("panic: " + detail::formatMessage(fmt, args...));
}

/** Report an unusable configuration and throw FatalError. */
template <typename... Args>
[[noreturn]] void
fatal(const char *fmt, Args... args)
{
    throw FatalError("fatal: " + detail::formatMessage(fmt, args...));
}

/** Print a warning to stderr; execution continues. */
template <typename... Args>
void
warn(const char *fmt, Args... args)
{
    std::fprintf(stderr, "warn: %s\n",
                 detail::formatMessage(fmt, args...).c_str());
}

/** Print a status message to stdout. */
template <typename... Args>
void
inform(const char *fmt, Args... args)
{
    std::fprintf(stdout, "info: %s\n",
                 detail::formatMessage(fmt, args...).c_str());
}

/**
 * Per-call-site budget for rate-limited warnings. allow() grants the
 * first `limit` calls; the macro below prints one suppression notice
 * when the budget is first exceeded, so a hot path can never flood
 * stderr during a fleet run. The counter is atomic because the
 * warn_limited statics are shared by every parallel fleet worker
 * that hits the call site (under concurrency the suppression notice
 * is printed at-least-once rather than exactly-once; the budgeted
 * warnings themselves stay exact).
 */
class WarnRateLimiter
{
  public:
    explicit WarnRateLimiter(std::uint64_t limit = 1)
        : limit_(limit)
    {}

    /** True while the call is within budget. */
    bool
    allow()
    {
        return calls_.fetch_add(1, std::memory_order_relaxed) <
               limit_;
    }

    /** True on the first out-of-budget call. */
    bool
    firstSuppressed() const
    {
        return calls_.load(std::memory_order_relaxed) == limit_ + 1;
    }

    std::uint64_t
    suppressed() const
    {
        const std::uint64_t n =
            calls_.load(std::memory_order_relaxed);
        return n > limit_ ? n - limit_ : 0;
    }

    std::uint64_t
    calls() const
    {
        return calls_.load(std::memory_order_relaxed);
    }

  private:
    std::uint64_t limit_;
    std::atomic<std::uint64_t> calls_{0};
};

/** warn() at most `limit` times per call site; the first suppressed
 * occurrence prints a notice, later ones are free of any IO. */
#define warn_limited(limit, ...)                                          \
    do {                                                                  \
        static ::ctg::WarnRateLimiter ctg_warn_limiter_(limit);           \
        if (ctg_warn_limiter_.allow()) {                                  \
            ::ctg::warn(__VA_ARGS__);                                     \
        } else if (ctg_warn_limiter_.firstSuppressed()) {                 \
            ::ctg::warn("(previous warning repeated; further "            \
                        "occurrences suppressed at %s:%d)",               \
                        __FILE__, __LINE__);                              \
        }                                                                 \
    } while (0)

/** warn() exactly once per call site (gem5's warn_once). */
#define warn_once(...) warn_limited(1, __VA_ARGS__)

/** Panic when a condition that must hold does not. */
#define ctg_assert(cond)                                                  \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::ctg::panic("assertion '%s' failed at %s:%d", #cond,         \
                         __FILE__, __LINE__);                             \
        }                                                                 \
    } while (0)

} // namespace ctg

#endif // CTG_BASE_LOGGING_HH
