#include "base/mergeable_stats.hh"

#include <cmath>

#include "base/serde.hh"

namespace ctg
{

void
OnlineHistogram::add(double value, std::uint64_t weight)
{
    ctg_assert(!std::isnan(value));
    if (weight == 0)
        return;
    counts_[value] += weight;
    total_ += weight;
}

void
OnlineHistogram::merge(const OnlineHistogram &other)
{
    for (const auto &entry : other.counts_)
        counts_[entry.first] += entry.second;
    total_ += other.total_;
}

double
OnlineHistogram::min() const
{
    return total_ != 0 ? counts_.begin()->first : 0.0;
}

double
OnlineHistogram::max() const
{
    return total_ != 0 ? counts_.rbegin()->first : 0.0;
}

double
OnlineHistogram::sum() const
{
    // Sorted-order walk: the result depends only on the multiset,
    // not on insertion order or pre-merge partitioning.
    double sum = 0.0;
    for (const auto &entry : counts_)
        sum += entry.first * static_cast<double>(entry.second);
    return sum;
}

double
OnlineHistogram::mean() const
{
    return total_ != 0 ? sum() / static_cast<double>(total_) : 0.0;
}

double
OnlineHistogram::quantile(double frac) const
{
    ctg_assert(total_ != 0);
    ctg_assert(frac >= 0.0 && frac <= 1.0);
    // The sorted-multiset index EmpiricalCdf::quantile reads.
    const auto idx = static_cast<std::uint64_t>(
        frac * static_cast<double>(total_ - 1));
    std::uint64_t seen = 0;
    for (const auto &entry : counts_) {
        seen += entry.second;
        if (seen > idx)
            return entry.first;
    }
    return counts_.rbegin()->first;
}

double
OnlineHistogram::fractionAtOrBelow(double x) const
{
    if (total_ == 0)
        return 0.0;
    std::uint64_t seen = 0;
    for (auto it = counts_.begin();
         it != counts_.end() && !(x < it->first); ++it)
        seen += it->second;
    return static_cast<double>(seen) / static_cast<double>(total_);
}

void
OnlineHistogram::saveTo(serde::Writer &out) const
{
    out.putU64(counts_.size());
    for (const auto &entry : counts_) {
        out.putDouble(entry.first);
        out.putU64(entry.second);
    }
}

void
OnlineHistogram::loadFrom(serde::Reader &in)
{
    const std::uint64_t buckets = in.getU64();
    std::map<double, std::uint64_t> counts;
    std::uint64_t total = 0;
    double prev = 0.0;
    for (std::uint64_t i = 0; i < buckets; ++i) {
        const double value = in.getDouble();
        const std::uint64_t weight = in.getU64();
        if (std::isnan(value))
            throw serde::Error("histogram: NaN bucket value");
        if (weight == 0)
            throw serde::Error("histogram: zero bucket count");
        if (i > 0 && !(prev < value))
            throw serde::Error(
                "histogram: bucket values out of order");
        if (total + weight < total)
            throw serde::Error("histogram: count overflow");
        // Ascending inserts at end(): O(buckets) total.
        counts.emplace_hint(counts.end(), value, weight);
        total += weight;
        prev = value;
    }
    counts_ = std::move(counts);
    total_ = total;
}

} // namespace ctg
