/**
 * @file
 * Order-insensitive, mergeable online statistics.
 *
 * The fleet studies build their CDFs by materializing one sample per
 * server (EmpiricalCdf keeps the raw vector and sorts on read). That
 * is O(servers × metrics) memory — fine at 60 servers, fatal at the
 * 10⁵–10⁶ fleets ROADMAP item 1 targets. OnlineHistogram is the
 * streaming replacement: a sorted value → count map that can be fed
 * incrementally, merged across per-worker partial sinks, and asked
 * the *same* questions with bit-identical answers:
 *
 *  - quantile(f) returns the exact sample EmpiricalCdf::quantile
 *    would return for the same multiset (index floor(f·(n−1)) of the
 *    sorted samples) — not an approximation;
 *  - fractionAtOrBelow(x) matches EmpiricalCdf bit-for-bit;
 *  - count/min/max/mean/sum are computed on read by walking the map
 *    in sorted-value order, so they depend only on the *multiset* of
 *    samples — never on insertion order or on how the samples were
 *    partitioned across sinks before merging.
 *
 * That last property is the determinism contract: merge() is a
 * commutative, associative count union, so per-worker sinks filled
 * under a work-stealing schedule and merged in any order produce the
 * same bits as a single sequential sink (asserted at 1/4/8 threads
 * in test_parallel_fleet). Memory is O(distinct values), which for
 * scan metrics (ratios snapped by discrete block counts) is far
 * below O(servers).
 */

#ifndef CTG_BASE_MERGEABLE_STATS_HH
#define CTG_BASE_MERGEABLE_STATS_HH

#include <cstdint>
#include <map>

#include "base/logging.hh"

namespace ctg
{

namespace serde
{
class Writer;
class Reader;
} // namespace serde

class OnlineHistogram
{
  public:
    /** Fold one sample (NaN is not a valid sample value). */
    void add(double value, std::uint64_t weight = 1);

    /** Fold another sink's samples into this one (count union).
     * Commutative and associative; the merged sink is bit-identical
     * to one that saw every sample directly, in any order. */
    void merge(const OnlineHistogram &other);

    /** Total samples (sum of weights). */
    std::uint64_t count() const { return total_; }

    /** Distinct sample values retained (the memory footprint). */
    std::size_t distinct() const { return counts_.size(); }

    double min() const;
    double max() const;
    double sum() const;
    double mean() const;

    /** Exact inverse CDF over the sample multiset: the value at
     * sorted index floor(frac · (count − 1)) — the same sample
     * EmpiricalCdf::quantile returns. Asserts on an empty sink. */
    double quantile(double frac) const;

    /** Fraction of samples <= x (0 on an empty sink), matching
     * EmpiricalCdf::fractionAtOrBelow bit-for-bit. */
    double fractionAtOrBelow(double x) const;

    /** Sorted value → count map (tests and exporters). */
    const std::map<double, std::uint64_t> &buckets() const
    {
        return counts_;
    }

    /** Serialize the full bucket map (ascending value order). A sink
     * restored by loadFrom answers every query bit-identically —
     * the shard protocol ships per-shard partials this way. */
    void saveTo(serde::Writer &out) const;

    /** Replace this sink's contents with serialized ones. Throws
     * serde::Error on malformed input: NaN values, zero or
     * overflowing counts, or values out of ascending order. */
    void loadFrom(serde::Reader &in);

  private:
    std::map<double, std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

} // namespace ctg

#endif // CTG_BASE_MERGEABLE_STATS_HH
