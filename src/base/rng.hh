/**
 * @file
 * Deterministic random number generation for reproducible simulations.
 *
 * Every stochastic component takes an explicit Rng so experiments are
 * replayable from a single seed. The generator is xoshiro256** seeded
 * via SplitMix64, which is fast and has no observable bias at the
 * sample sizes the fleet studies use.
 */

#ifndef CTG_BASE_RNG_HH
#define CTG_BASE_RNG_HH

#include <array>
#include <cmath>
#include <cstdint>

#include "base/logging.hh"

namespace ctg
{

/** SplitMix64 step, used for seeding and hashing. */
constexpr std::uint64_t
splitMix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/**
 * xoshiro256** pseudo-random generator with convenience distributions.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed, expanded via SplitMix64. */
    explicit Rng(std::uint64_t seed = 0x5eedc0ffee123456ULL)
    {
        std::uint64_t sm = seed;
        for (auto &word : state_)
            word = splitMix64(sm);
    }

    /** Next raw 64-bit sample. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        ctg_assert(bound != 0);
        // Lemire's nearly-divisionless bounded sampling.
        std::uint64_t x = next();
        __uint128_t m = static_cast<__uint128_t>(x) * bound;
        std::uint64_t l = static_cast<std::uint64_t>(m);
        if (l < bound) {
            std::uint64_t threshold = -bound % bound;
            while (l < threshold) {
                x = next();
                m = static_cast<__uint128_t>(x) * bound;
                l = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        ctg_assert(lo <= hi);
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with success probability p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /** Exponentially distributed sample with the given mean. */
    double
    exponential(double mean)
    {
        double u = uniform();
        // Guard against log(0).
        if (u <= 0.0)
            u = 0x1.0p-53;
        return -mean * std::log(u);
    }

    /** Bounded Pareto sample (heavy-tailed lifetimes/sizes). */
    double
    boundedPareto(double alpha, double lo, double hi)
    {
        ctg_assert(alpha > 0.0 && lo > 0.0 && hi > lo);
        const double u = uniform();
        const double la = std::pow(lo, alpha);
        const double ha = std::pow(hi, alpha);
        return std::pow(-(u * ha - u * la - ha) / (ha * la),
                        -1.0 / alpha);
    }

    /** Normally distributed sample (Box-Muller). */
    double
    gaussian(double mean, double stddev)
    {
        double u1 = uniform();
        if (u1 <= 0.0)
            u1 = 0x1.0p-53;
        const double u2 = uniform();
        const double r = std::sqrt(-2.0 * std::log(u1));
        return mean + stddev * r * std::cos(2.0 * M_PI * u2);
    }

    /** Split off an independent stream (for per-server determinism). */
    Rng
    fork()
    {
        return Rng(next() ^ 0xa5a5a5a5deadbeefULL);
    }

    /** Raw xoshiro256** state, for checkpoint serialization. The
     * words are the generator's exact position in its stream:
     * restoring them with setRawState() resumes the identical
     * sample sequence. */
    std::array<std::uint64_t, 4>
    rawState() const
    {
        return {state_[0], state_[1], state_[2], state_[3]};
    }

    /** Overwrite the generator state (checkpoint restore). */
    void
    setRawState(const std::array<std::uint64_t, 4> &state)
    {
        for (int i = 0; i < 4; ++i)
            state_[i] = state[i];
    }

  private:
    static constexpr std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

/**
 * Zipfian sampler over [0, n) with parameter theta, using the
 * Gray et al. rejection-inversion free method (precomputed zeta).
 * Used by the access-stream generators to model hot/cold page reuse.
 */
class Zipf
{
  public:
    Zipf(std::uint64_t n, double theta);

    /** Draw one rank; rank 0 is the hottest item. */
    std::uint64_t sample(Rng &rng) const;

    std::uint64_t items() const { return n_; }

  private:
    std::uint64_t n_;
    double theta_;
    double zetan_;
    double alpha_;
    double eta_;
};

} // namespace ctg

#endif // CTG_BASE_RNG_HH
