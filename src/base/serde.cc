#include "base/serde.hh"

namespace ctg
{
namespace serde
{

namespace
{

struct CrcTable
{
    std::uint32_t entries[256];

    constexpr CrcTable()
        : entries()
    {
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            entries[i] = c;
        }
    }
};

constexpr CrcTable crcTable;

} // namespace

std::uint32_t
crc32(const void *data, std::size_t len, std::uint32_t seed)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint32_t c = seed ^ 0xffffffffu;
    for (std::size_t i = 0; i < len; ++i)
        c = crcTable.entries[(c ^ p[i]) & 0xffu] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

void
Writer::putBytes(const void *data, std::size_t len)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    buf_.insert(buf_.end(), p, p + len);
}

void
Writer::beginSection(std::uint32_t id)
{
    open_.push_back(buf_.size());
    putU32(id);
    putU32(0); // reserved
    putU64(0); // payload length, patched by endSection()
}

void
Writer::endSection()
{
    if (open_.empty())
        throw Error("serde: endSection without beginSection");
    const std::size_t header = open_.back();
    open_.pop_back();
    const std::size_t payloadStart = header + 16;
    const std::uint64_t payloadLen = buf_.size() - payloadStart;
    for (int i = 0; i < 8; ++i)
        buf_[header + 8 + i] =
            static_cast<std::uint8_t>(payloadLen >> (8 * i));
    putU32(crc32(buf_.data() + payloadStart,
                 static_cast<std::size_t>(payloadLen)));
}

std::string
Reader::getString()
{
    const std::uint64_t len = getU64();
    if (len > remaining())
        throw Error("serde: string length exceeds payload");
    std::string s(reinterpret_cast<const char *>(data_ + pos_),
                  static_cast<std::size_t>(len));
    pos_ += static_cast<std::size_t>(len);
    return s;
}

void
Reader::getBytes(void *out, std::size_t len)
{
    need(len);
    std::memcpy(out, data_ + pos_, len);
    pos_ += len;
}

Reader::Section
Reader::nextSection()
{
    need(16);
    const std::uint32_t id = getU32();
    const std::uint32_t reserved = getU32();
    if (reserved != 0)
        throw Error("serde: nonzero reserved field in section " +
                    std::to_string(id));
    const std::uint64_t payloadLen = getU64();
    if (payloadLen > remaining())
        throw Error("serde: section " + std::to_string(id) +
                    " payload truncated (" +
                    std::to_string(payloadLen) + " > " +
                    std::to_string(remaining()) + ")");
    const std::uint8_t *payload = data_ + pos_;
    pos_ += static_cast<std::size_t>(payloadLen);
    const std::uint32_t want = getU32();
    const std::uint32_t got =
        crc32(payload, static_cast<std::size_t>(payloadLen));
    if (want != got)
        throw Error("serde: CRC mismatch in section " +
                    std::to_string(id));
    return Section{
        id, Reader(payload, static_cast<std::size_t>(payloadLen))};
}

} // namespace serde
} // namespace ctg
