/**
 * @file
 * Minimal byte-stream serialization layer for checkpoint snapshots.
 *
 * The snapshot subsystem (sim/snapshot.hh) needs exactly four things
 * from its encoding: fixed-width little-endian primitives so a value
 * round-trips bit-for-bit (doubles travel as their IEEE-754 bit
 * pattern, never through text), length-framed sections so a reader
 * can skip or reject a damaged region without losing framing, a CRC
 * per section so corruption is a detected error rather than a
 * corrupted simulation, and recoverable failure — every malformed
 * input surfaces as serde::Error, which callers catch to fall back
 * to a cold start. Nothing here panics.
 *
 * Byte order is fixed little-endian (encoded value-wise, not by
 * memcpy of scalars), so a snapshot's integer framing is
 * host-independent. Bulk POD arrays (frame tables, link vectors) are
 * an exception: they are written with native layout for speed and
 * guarded by static_asserts on size and triviality; the format
 * version must change if any such struct changes.
 */

#ifndef CTG_BASE_SERDE_HH
#define CTG_BASE_SERDE_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <queue>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

namespace ctg
{
namespace serde
{

/** Recoverable decode/validation failure: truncation, CRC mismatch,
 * bad magic or version, impossible counts. Callers catch this and
 * degrade (checkpoint restore falls back to a cold start). */
class Error : public std::runtime_error
{
  public:
    explicit Error(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320). `seed` chains
 * incremental computations: pass a previous return value to extend. */
std::uint32_t crc32(const void *data, std::size_t len,
                    std::uint32_t seed = 0);

/**
 * Append-only byte-stream encoder with nestable length-framed,
 * CRC-trailed sections.
 *
 * Section wire format:
 *   u32 id | u32 reserved(0) | u64 payloadLen | payload | u32 crc
 * where crc covers exactly the payload bytes. beginSection() writes
 * the header with a length placeholder; endSection() patches the
 * length and appends the CRC.
 */
class Writer
{
  public:
    void
    putU8(std::uint8_t v)
    {
        buf_.push_back(v);
    }

    void
    putU16(std::uint16_t v)
    {
        putU8(static_cast<std::uint8_t>(v));
        putU8(static_cast<std::uint8_t>(v >> 8));
    }

    void
    putU32(std::uint32_t v)
    {
        putU16(static_cast<std::uint16_t>(v));
        putU16(static_cast<std::uint16_t>(v >> 16));
    }

    void
    putU64(std::uint64_t v)
    {
        putU32(static_cast<std::uint32_t>(v));
        putU32(static_cast<std::uint32_t>(v >> 32));
    }

    void
    putBool(bool v)
    {
        putU8(v ? 1 : 0);
    }

    /** IEEE-754 bit pattern: the restored double is the same bits,
     * which the bit-identical resume contract requires. */
    void
    putDouble(double v)
    {
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        putU64(bits);
    }

    void
    putString(const std::string &s)
    {
        putU64(s.size());
        putBytes(s.data(), s.size());
    }

    void
    putRngState(const std::array<std::uint64_t, 4> &state)
    {
        for (std::uint64_t word : state)
            putU64(word);
    }

    void putBytes(const void *data, std::size_t len);

    /** u64 count + native-layout element bytes. Guarded: only
     * trivially copyable element types may travel this way. */
    template <typename T>
    void
    putPodVector(const std::vector<T> &v)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "putPodVector requires trivially copyable T");
        putU64(v.size());
        putBytes(v.data(), v.size() * sizeof(T));
    }

    void beginSection(std::uint32_t id);
    void endSection();

    const std::vector<std::uint8_t> &
    bytes() const
    {
        return buf_;
    }

    std::vector<std::uint8_t>
    take()
    {
        return std::move(buf_);
    }

  private:
    std::vector<std::uint8_t> buf_;
    /** Byte offsets of the headers of currently open sections. */
    std::vector<std::size_t> open_;
};

/**
 * Bounds-checked decoder over a borrowed byte range. Every getter
 * throws serde::Error on truncation; nextSection() additionally
 * validates the payload CRC before handing out a sub-Reader.
 */
class Reader
{
  public:
    Reader(const std::uint8_t *data, std::size_t len)
        : data_(data), len_(len)
    {}

    explicit Reader(const std::vector<std::uint8_t> &buf)
        : Reader(buf.data(), buf.size())
    {}

    std::uint8_t
    getU8()
    {
        need(1);
        return data_[pos_++];
    }

    std::uint16_t
    getU16()
    {
        const std::uint16_t lo = getU8();
        const std::uint16_t hi = getU8();
        return static_cast<std::uint16_t>(lo | (hi << 8));
    }

    std::uint32_t
    getU32()
    {
        const std::uint32_t lo = getU16();
        const std::uint32_t hi = getU16();
        return lo | (hi << 16);
    }

    std::uint64_t
    getU64()
    {
        const std::uint64_t lo = getU32();
        const std::uint64_t hi = getU32();
        return lo | (hi << 32);
    }

    bool
    getBool()
    {
        const std::uint8_t v = getU8();
        if (v > 1)
            throw Error("serde: bool byte out of range");
        return v != 0;
    }

    double
    getDouble()
    {
        const std::uint64_t bits = getU64();
        double v;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    std::string getString();

    std::array<std::uint64_t, 4>
    getRngState()
    {
        std::array<std::uint64_t, 4> state;
        for (auto &word : state)
            word = getU64();
        return state;
    }

    void getBytes(void *out, std::size_t len);

    template <typename T>
    std::vector<T>
    getPodVector()
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "getPodVector requires trivially copyable T");
        const std::uint64_t count = getU64();
        if (count > remaining() / sizeof(T))
            throw Error("serde: pod vector count exceeds payload");
        std::vector<T> v(static_cast<std::size_t>(count));
        getBytes(v.data(), v.size() * sizeof(T));
        return v;
    }

    struct Section;

    /** Decode and CRC-check the next section. Throws on truncated
     * framing or CRC mismatch. */
    Section nextSection();

    std::size_t
    remaining() const
    {
        return len_ - pos_;
    }

    bool
    atEnd() const
    {
        return pos_ == len_;
    }

  private:
    void
    need(std::size_t n) const
    {
        if (n > remaining())
            throw Error("serde: input truncated (need " +
                        std::to_string(n) + " bytes, have " +
                        std::to_string(remaining()) + ")");
    }

    const std::uint8_t *data_;
    std::size_t len_;
    std::size_t pos_ = 0;
};

/** One decoded section: its id and a sub-Reader over exactly the
 * (already CRC-verified) payload bytes. */
struct Reader::Section
{
    std::uint32_t id;
    Reader payload;
};

namespace detail
{

/** Legal protected-member access: `c` is inherited from the
 * priority_queue base, so &HeapAccess::c is a pointer-to-member of
 * the base class, applicable to any queue of the same type. */
template <typename T, typename Container, typename Compare>
struct HeapAccess : std::priority_queue<T, Container, Compare>
{
    static Container &
    container(std::priority_queue<T, Container, Compare> &q)
    {
        return q.*&HeapAccess::c;
    }

    static const Container &
    container(const std::priority_queue<T, Container, Compare> &q)
    {
        return q.*&HeapAccess::c;
    }
};

} // namespace detail

/**
 * The underlying heap array of a priority_queue, for exact-layout
 * serialization. Draining a queue and re-pushing would re-heapify,
 * and elements comparing equal could land in a different order —
 * visibly different pop order, breaking bit-identical resume. The
 * heap array restored verbatim is the same object state.
 */
template <typename T, typename Container, typename Compare>
const Container &
heapOf(const std::priority_queue<T, Container, Compare> &q)
{
    return detail::HeapAccess<T, Container, Compare>::container(q);
}

template <typename T, typename Container, typename Compare>
Container &
heapOf(std::priority_queue<T, Container, Compare> &q)
{
    return detail::HeapAccess<T, Container, Compare>::container(q);
}

} // namespace serde
} // namespace ctg

#endif // CTG_BASE_SERDE_HH
