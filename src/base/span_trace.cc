#include "base/span_trace.hh"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <unordered_set>
#include <utility>

#include "base/env_config.hh"
#include "base/logging.hh"

namespace ctg
{
namespace spans
{

std::atomic<std::uint32_t> mask_{0};

/**
 * Per-stream collection state. Captures own one each; stream 0 (the
 * uncaptured path, i.e. the main thread between tasks) shares a
 * single mutex-guarded instance whose events append straight to the
 * collector.
 */
struct Capture::State
{
    std::uint32_t stream = 0;
    /** 0 = the global stream (no private buffer, collector cap
     * applies instead). */
    std::size_t capacity = 0;
    std::vector<Event> buf;
    /** Next (stream-local) sequence number; ids are
     * stream << 32 | seq, unique and schedule-independent. */
    std::uint64_t nextSeq = 1;
    /** Logical clock: max(lastTs + 1, tick) per event, so Begin/End
     * pairs always nest in trace viewers. */
    std::uint64_t lastTs = 0;
    std::uint64_t nDropped = 0;
    /** Ids of spans currently open on this stream, innermost last. */
    std::vector<std::uint64_t> openStack;
};

namespace
{

using State = Capture::State;

/** Guards the collector, the global stream, stream-id handout, and
 * the export path. Capture-backed emission never takes it. */
std::mutex mu_;
std::vector<Event> collected_;
std::uint64_t collectorDropped_ = 0;
/** Collector cap: ~4M events (~300 MB). End events bypass it so
 * open spans always close; overshoot is bounded by open depth.
 * Mutable only through setCollectorCapForTest. */
constexpr std::size_t defaultCollectorCap = std::size_t{1} << 22;
std::size_t collectorCap = defaultCollectorCap;
State globalStream_;
std::uint32_t nextStream_ = 1;
std::string exportPath_;
bool atexitRegistered_ = false;

thread_local State *tlsCapture_ = nullptr;

std::uint64_t
wallUs()
{
    using namespace std::chrono;
    static const steady_clock::time_point start = steady_clock::now();
    return static_cast<std::uint64_t>(
        duration_cast<microseconds>(steady_clock::now() - start)
            .count());
}

std::uint64_t
makeId(State &s)
{
    return (static_cast<std::uint64_t>(s.stream) << 32) |
           (s.nextSeq++ & 0xffffffffu);
}

/** Fill the stream-derived fields: logical ts, tick, wall clock,
 * track, causal parent (innermost open span). */
void
stamp(State &s, Event &ev)
{
    ev.stream = s.stream;
    ev.tick = trace::currentTick();
    s.lastTs = std::max(s.lastTs + 1,
                        static_cast<std::uint64_t>(ev.tick));
    ev.ts = s.lastTs;
    ev.wallUs = wallUs();
    ev.parent = s.openStack.empty() ? 0 : s.openStack.back();
}

void
copyArgs(Event &ev, const Arg *args, std::size_t nargs)
{
    ev.nargs = static_cast<std::uint8_t>(
        std::min<std::size_t>(nargs, maxArgs));
    for (unsigned i = 0; i < ev.nargs; ++i)
        ev.args[i] = args[i];
}

/** Emit a non-Begin event (instant / flow / End) on the right
 * stream, honoring the caps. End events are never dropped. */
void
emit(Event &ev)
{
    if (State *s = tlsCapture_) {
        if (s->buf.size() >= s->capacity &&
            ev.phase != Event::Phase::End) {
            ++s->nDropped;
            return;
        }
        stamp(*s, ev);
        if (ev.phase == Event::Phase::End) {
            ctg_assert(!s->openStack.empty() &&
                       s->openStack.back() == ev.id);
            s->openStack.pop_back();
            ev.parent =
                s->openStack.empty() ? 0 : s->openStack.back();
        }
        s->buf.push_back(ev);
        return;
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (collected_.size() >= collectorCap &&
        ev.phase != Event::Phase::End) {
        ++collectorDropped_;
        return;
    }
    stamp(globalStream_, ev);
    if (ev.phase == Event::Phase::End) {
        ctg_assert(!globalStream_.openStack.empty() &&
                   globalStream_.openStack.back() == ev.id);
        globalStream_.openStack.pop_back();
        ev.parent = globalStream_.openStack.empty()
                        ? 0
                        : globalStream_.openStack.back();
    }
    collected_.push_back(ev);
}

void
appendEscaped(std::string &out, const char *text)
{
    for (const char *p = text; *p != '\0'; ++p) {
        const char c = *p;
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
}

void
appendEventJson(std::string &out, const Event &ev)
{
    const char *ph = "i";
    switch (ev.phase) {
      case Event::Phase::Begin:
        ph = "B";
        break;
      case Event::Phase::End:
        ph = "E";
        break;
      case Event::Phase::Instant:
        ph = "i";
        break;
      case Event::Phase::FlowBegin:
        ph = "s";
        break;
      case Event::Phase::FlowEnd:
        ph = "f";
        break;
    }

    char buf[160];
    out += "{\"name\":\"";
    appendEscaped(out, ev.name);
    out += "\",\"cat\":\"";
    out += trace::flagName(ev.flag);
    std::snprintf(buf, sizeof(buf),
                  "\",\"ph\":\"%s\",\"pid\":1,\"tid\":%" PRIu32
                  ",\"ts\":%" PRIu64,
                  ph, ev.stream, ev.ts);
    out += buf;

    if (ev.phase == Event::Phase::FlowBegin ||
        ev.phase == Event::Phase::FlowEnd) {
        std::snprintf(buf, sizeof(buf), ",\"id\":%" PRIu64, ev.id);
        out += buf;
        if (ev.phase == Event::Phase::FlowEnd)
            out += ",\"bp\":\"e\"";
    }
    if (ev.phase == Event::Phase::Instant)
        out += ",\"s\":\"t\"";

    out += ",\"args\":{";
    bool first = true;
    if (ev.phase == Event::Phase::Begin) {
        std::snprintf(buf, sizeof(buf),
                      "\"span_id\":%" PRIu64 ",\"parent_span\":%" PRIu64,
                      ev.id, ev.parent);
        out += buf;
        first = false;
    }
    if (ev.tick != 0) {
        std::snprintf(buf, sizeof(buf), "%s\"tick\":%" PRIu64,
                      first ? "" : ",", ev.tick);
        out += buf;
        first = false;
    }
    std::snprintf(buf, sizeof(buf), "%s\"wall_us\":%" PRIu64,
                  first ? "" : ",", ev.wallUs);
    out += buf;
    for (unsigned i = 0; i < ev.nargs; ++i) {
        out += ",\"";
        appendEscaped(out, ev.args[i].key);
        std::snprintf(buf, sizeof(buf), "\":%" PRId64,
                      ev.args[i].value);
        out += buf;
    }
    out += "}}";
}

/** One-time CTG_TRACE_SPANS pickup: write the trace to the given
 * path at process exit. With no CTG_TRACE spec every flag is
 * enabled; a spec restricts the span trace to the listed subsystems
 * (the span mask is separate from the DPRINTF mask, so this leaves
 * text tracing exactly as trace.cc's own EnvInit set it). */
struct EnvInit
{
    EnvInit()
    {
        const sim::EnvConfig env = sim::EnvConfig::fromEnv();
        if (!env.traceSpansPath.empty()) {
            setExportPath(env.traceSpansPath);
            if (env.traceSpec.empty())
                enableAll();
            else
                setFromString(env.traceSpec);
        }
    }
};

const EnvInit envInit_;

} // namespace

void
enable(TraceFlag flag)
{
    mask_.fetch_or(static_cast<std::uint32_t>(flag),
                   std::memory_order_relaxed);
}

void
disable(TraceFlag flag)
{
    mask_.fetch_and(~static_cast<std::uint32_t>(flag),
                    std::memory_order_relaxed);
}

void
enableAll()
{
    mask_.store(trace::allFlagsMask(), std::memory_order_relaxed);
}

void
disableAll()
{
    mask_.store(0, std::memory_order_relaxed);
}

void
setFromString(const std::string &spec)
{
    std::size_t pos = 0;
    while (pos < spec.size()) {
        const std::size_t end = spec.find_first_of(", ", pos);
        const std::string tok =
            spec.substr(pos, end == std::string::npos
                                 ? std::string::npos
                                 : end - pos);
        pos = end == std::string::npos ? spec.size() : end + 1;
        if (tok.empty())
            continue;
        if (tok == "All") {
            enableAll();
            continue;
        }
        TraceFlag flag;
        if (trace::flagFromName(tok, &flag))
            enable(flag);
        else
            warn("unknown span flag '%s' ignored", tok.c_str());
    }
}

void
Scope::begin(TraceFlag flag, const char *name, const Arg *args,
             std::size_t nargs)
{
    flag_ = flag;
    name_ = name;

    Event ev;
    ev.phase = Event::Phase::Begin;
    ev.flag = flag;
    ev.name = name;
    copyArgs(ev, args, nargs);

    if (State *s = tlsCapture_) {
        if (s->buf.size() >= s->capacity) {
            ++s->nDropped;
            return; // stays inactive; the matching End never emits
        }
        id_ = makeId(*s);
        ev.id = id_;
        stamp(*s, ev);
        s->openStack.push_back(id_);
        s->buf.push_back(ev);
    } else {
        std::lock_guard<std::mutex> lock(mu_);
        if (collected_.size() >= collectorCap) {
            ++collectorDropped_;
            return;
        }
        id_ = makeId(globalStream_);
        ev.id = id_;
        stamp(globalStream_, ev);
        globalStream_.openStack.push_back(id_);
        collected_.push_back(ev);
    }
    active_ = true;
}

void
Scope::end()
{
    active_ = false;
    Event ev;
    ev.phase = Event::Phase::End;
    ev.flag = flag_;
    ev.name = name_;
    ev.id = id_;
    ev.nargs = nEndArgs_;
    ev.args = endArgs_;
    emit(ev);
}

void
instant(TraceFlag flag, const char *name,
        std::initializer_list<Arg> args)
{
    if (!enabled(flag))
        return;
    Event ev;
    ev.phase = Event::Phase::Instant;
    ev.flag = flag;
    ev.name = name;
    copyArgs(ev, args.begin(), args.size());
    emit(ev);
}

std::uint64_t
newFlowId()
{
    if (!anyEnabled())
        return 0;
    if (State *s = tlsCapture_)
        return makeId(*s);
    std::lock_guard<std::mutex> lock(mu_);
    return makeId(globalStream_);
}

void
flowBegin(TraceFlag flag, const char *name, std::uint64_t flow)
{
    if (flow == 0 || !enabled(flag))
        return;
    Event ev;
    ev.phase = Event::Phase::FlowBegin;
    ev.flag = flag;
    ev.name = name;
    ev.id = flow;
    emit(ev);
}

void
flowEnd(TraceFlag flag, const char *name, std::uint64_t flow)
{
    if (flow == 0 || !enabled(flag))
        return;
    Event ev;
    ev.phase = Event::Phase::FlowEnd;
    ev.flag = flag;
    ev.name = name;
    ev.id = flow;
    emit(ev);
}

Capture::Capture(std::uint32_t stream, std::size_t capacity)
    : state_(new State), prev_(tlsCapture_)
{
    state_->stream = stream;
    state_->capacity =
        capacity != 0 ? capacity : defaultCaptureCapacity;
    tlsCapture_ = state_;
}

Capture::~Capture()
{
    tlsCapture_ = prev_;
    if (state_->nDropped != 0) {
        std::lock_guard<std::mutex> lock(mu_);
        collectorDropped_ += state_->nDropped;
    }
    delete state_;
}

std::vector<Event>
Capture::take()
{
    std::vector<Event> out = std::move(state_->buf);
    state_->buf.clear();
    return out;
}

std::uint64_t
Capture::dropped() const
{
    return state_->nDropped;
}

std::uint32_t
reserveStreams(std::uint32_t count)
{
    std::lock_guard<std::mutex> lock(mu_);
    const std::uint32_t base = nextStream_;
    nextStream_ += count;
    return base;
}

void
publish(std::vector<Event> events)
{
    if (events.empty())
        return;
    std::lock_guard<std::mutex> lock(mu_);
    // Ends bypass the cap only when their Begin made it in. A Begin
    // dropped at the cap poisons its span id so the matching End
    // vanishes with it — otherwise a full collector would publish
    // dangling Ends and unbalance the stream's B/E stack.
    std::unordered_set<std::uint64_t> droppedSpans;
    for (Event &ev : events) {
        if (ev.phase == Event::Phase::End &&
            droppedSpans.count(ev.id) != 0) {
            ++collectorDropped_;
            continue;
        }
        if (collected_.size() >= collectorCap &&
            ev.phase != Event::Phase::End) {
            if (ev.phase == Event::Phase::Begin)
                droppedSpans.insert(ev.id);
            ++collectorDropped_;
            continue;
        }
        collected_.push_back(ev);
    }
}

std::size_t
collectedCount()
{
    std::lock_guard<std::mutex> lock(mu_);
    return collected_.size();
}

std::uint64_t
droppedCount()
{
    std::lock_guard<std::mutex> lock(mu_);
    return collectorDropped_;
}

std::vector<Event>
collectedEvents()
{
    std::lock_guard<std::mutex> lock(mu_);
    return collected_;
}

std::string
exportJson()
{
    const std::vector<Event> events = collectedEvents();

    std::string out;
    out.reserve(events.size() * 96 + 256);
    out += "{\"traceEvents\":[";

    // One thread_name metadata record per track that has events.
    std::vector<std::uint32_t> streams;
    for (const Event &ev : events)
        streams.push_back(ev.stream);
    std::sort(streams.begin(), streams.end());
    streams.erase(std::unique(streams.begin(), streams.end()),
                  streams.end());
    bool first = true;
    char buf[160];
    for (const std::uint32_t stream : streams) {
        if (!first)
            out += ",";
        first = false;
        if (stream == 0) {
            std::snprintf(buf, sizeof(buf),
                          "{\"name\":\"thread_name\",\"ph\":\"M\","
                          "\"pid\":1,\"tid\":0,"
                          "\"args\":{\"name\":\"main\"}}");
        } else {
            std::snprintf(buf, sizeof(buf),
                          "{\"name\":\"thread_name\",\"ph\":\"M\","
                          "\"pid\":1,\"tid\":%" PRIu32
                          ",\"args\":{\"name\":\"srv-%" PRIu32 "\"}}",
                          stream, stream);
        }
        out += buf;
    }

    for (const Event &ev : events) {
        if (!first)
            out += ",\n";
        first = false;
        appendEventJson(out, ev);
    }
    out += "],\"displayTimeUnit\":\"ms\"}\n";
    return out;
}

bool
writeJson(const std::string &path)
{
    const std::string json = exportJson();
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        warn("cannot open span trace file '%s'", path.c_str());
        return false;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    return true;
}

void
setExportPath(const std::string &path)
{
    std::lock_guard<std::mutex> lock(mu_);
    exportPath_ = path;
    if (!atexitRegistered_ && !exportPath_.empty()) {
        atexitRegistered_ = true;
        std::atexit(+[] {
            std::string path;
            {
                std::lock_guard<std::mutex> lock(mu_);
                path = exportPath_;
            }
            if (!path.empty())
                writeJson(path);
        });
    }
}

void
resetForTest()
{
    disableAll();
    std::lock_guard<std::mutex> lock(mu_);
    collected_.clear();
    collectorDropped_ = 0;
    globalStream_ = State{};
    nextStream_ = 1;
    exportPath_.clear();
    collectorCap = defaultCollectorCap;
}

void
setCollectorCapForTest(std::size_t cap)
{
    std::lock_guard<std::mutex> lock(mu_);
    collectorCap = cap != 0 ? cap : defaultCollectorCap;
}

} // namespace spans
} // namespace ctg
