/**
 * @file
 * Causal span tracing of the migration/evacuation pipeline.
 *
 * Where CTG_DPRINTF emits flat text lines, CTG_SPAN opens a *scoped
 * span*: a named interval with arguments, a unique id, and a causal
 * parent — the innermost span open on the same thread when it began.
 * A region resize therefore shows up as one connected tree
 * (policy.tick → region.expand → region.evacuate → migrate.block →
 * chw/shootdown), and asynchronous continuations that the call stack
 * cannot link (CHW copies and shootdown completions scheduled on the
 * event queue) are stitched with *flow ids* instead.
 *
 * Spans reuse the TraceFlag bits as categories but keep their own
 * enable mask: CTG_TRACE selects printf tracing, CTG_TRACE_SPANS
 * selects span collection (the value is the output path; spans are
 * exported as Chrome/Perfetto `trace_event` JSON at process exit,
 * loadable in https://ui.perfetto.dev or chrome://tracing). With no
 * flag enabled a trace point is a single relaxed mask test; span
 * argument evaluation is a handful of integer stores.
 *
 * Threading follows the trace::ThreadCapture discipline from
 * DESIGN.md §10: a worker wraps each task in a spans::Capture, events
 * land in that capture's bounded per-thread buffer, and the fleet's
 * merge step publishes the buffers in server order — so the collected
 * event sequence (ids, parents, logical timestamps) is identical at
 * any CTG_THREADS, and worker threads never contend on shared state.
 * Events emitted outside any capture go to the process-wide
 * collector under a mutex (the main thread's phase spans).
 *
 * Timestamps: every event carries a per-stream *logical* timestamp
 * (strictly monotonic, so Begin/End pairs always nest in viewers)
 * plus the simulated tick when a trace tick source is installed
 * (hardware-model runs) and a wall-clock microsecond reading for
 * profiling Fleet::run phases. Only the logical clock is
 * deterministic; ServerScans are never affected either way — span
 * collection reads simulator state but feeds nothing back.
 */

#ifndef CTG_BASE_SPAN_TRACE_HH
#define CTG_BASE_SPAN_TRACE_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "base/trace.hh"
#include "base/types.hh"

namespace ctg
{
namespace spans
{

/** One named integer argument attached to a span or instant. */
struct Arg
{
    const char *key;
    std::int64_t value;
};

/** Maximum arguments recorded per event; extras are dropped. */
constexpr unsigned maxArgs = 4;

/** One collected span event. `name` and arg keys must be string
 * literals (the buffer stores the pointers). */
struct Event
{
    enum class Phase : std::uint8_t
    {
        Begin,     //!< span opened ("B")
        End,       //!< span closed ("E")
        Instant,   //!< point event ("i")
        FlowBegin, //!< flow arrow tail ("s"), binds to open span
        FlowEnd,   //!< flow arrow head ("f"), binds to open span
    };

    Phase phase = Phase::Instant;
    TraceFlag flag = TraceFlag::Fleet;
    const char *name = "";
    /** Span id (Begin/End), flow id (FlowBegin/FlowEnd), 0 for
     * instants. */
    std::uint64_t id = 0;
    /** Id of the innermost span open when this event was emitted
     * (for Begin: the causal parent); 0 = none. */
    std::uint64_t parent = 0;
    /** Per-stream logical timestamp; strictly increasing within a
     * stream, deterministic at any thread count. */
    std::uint64_t ts = 0;
    /** Simulated tick when a trace tick source was installed. */
    Tick tick = 0;
    /** Wall-clock microseconds since process start (profiling only;
     * not deterministic). */
    std::uint64_t wallUs = 0;
    /** Track the event renders on: 0 = main, i + 1 = server i. */
    std::uint32_t stream = 0;
    std::uint8_t nargs = 0;
    std::array<Arg, maxArgs> args{};
};

/** Bitmask of span-enabled flags. Relaxed atomic: executor workers
 * read it while tests toggle flags (same contract as trace::mask_). */
extern std::atomic<std::uint32_t> mask_;

inline bool
enabled(TraceFlag flag)
{
    return (mask_.load(std::memory_order_relaxed) &
            static_cast<std::uint32_t>(flag)) != 0u;
}

inline bool
anyEnabled()
{
    return mask_.load(std::memory_order_relaxed) != 0u;
}

void enable(TraceFlag flag);
void disable(TraceFlag flag);
void enableAll();
void disableAll();

/** Comma/space-separated flag names ("Region,Migrate" or "All"),
 * same syntax and flag table as trace::setFromString. */
void setFromString(const std::string &spec);

/**
 * RAII span. Construct through CTG_SPAN / CTG_SPAN_NAMED rather than
 * directly. When the flag is disabled (or the capture buffer is
 * full) the scope is inactive: nothing is recorded, including the
 * matching End — pairs are never half-dropped.
 */
class Scope
{
  public:
    Scope(TraceFlag flag, const char *name)
    {
        if (enabled(flag))
            begin(flag, name, nullptr, 0);
    }

    Scope(TraceFlag flag, const char *name,
          std::initializer_list<Arg> args)
    {
        if (enabled(flag))
            begin(flag, name, args.begin(), args.size());
    }

    ~Scope()
    {
        if (active_)
            end();
    }

    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

    /** Attach a result argument, recorded on the End event (for
     * outcomes only known when the operation finishes). */
    void
    arg(const char *key, std::int64_t value)
    {
        if (active_ && nEndArgs_ < maxArgs)
            endArgs_[nEndArgs_++] = Arg{key, value};
    }

    bool active() const { return active_; }

    /** Id of this span (0 when inactive). */
    std::uint64_t id() const { return id_; }

  private:
    void begin(TraceFlag flag, const char *name, const Arg *args,
               std::size_t nargs);
    void end();

    TraceFlag flag_ = TraceFlag::Fleet;
    const char *name_ = "";
    std::uint64_t id_ = 0;
    bool active_ = false;
    std::uint8_t nEndArgs_ = 0;
    std::array<Arg, maxArgs> endArgs_{};
};

/** Emit a point event inside the current span (use CTG_SPAN_EVENT). */
void instant(TraceFlag flag, const char *name,
             std::initializer_list<Arg> args = {});

/** Allocate a flow id from the current stream's deterministic
 * counter. Returns 0 when no span flag is enabled. */
std::uint64_t newFlowId();

/** Emit the tail / head of a flow arrow, bound to the innermost open
 * span. Connects causally-related spans across asynchronous
 * boundaries (event-queue continuations). */
void flowBegin(TraceFlag flag, const char *name, std::uint64_t flow);
void flowEnd(TraceFlag flag, const char *name, std::uint64_t flow);

/**
 * RAII per-thread capture of span events, mirroring
 * trace::ThreadCapture: while active, events from this thread land
 * in a private bounded buffer instead of the shared collector, and
 * span/flow ids are drawn from a per-stream counter — (stream,
 * sequence) — so ids and order are schedule-independent. The fleet
 * merge step publish()es each capture's events in server order.
 * Captures nest; the inner one shadows the outer.
 */
class Capture
{
  public:
    /** @param stream track id (server index + 1; 0 = main thread)
     *  @param capacity event cap; 0 = defaultCaptureCapacity. New
     *  events past the cap are counted in dropped() and discarded
     *  (Begin drops deactivate their Scope, keeping pairs sound). */
    explicit Capture(std::uint32_t stream, std::size_t capacity = 0);
    ~Capture();

    Capture(const Capture &) = delete;
    Capture &operator=(const Capture &) = delete;

    /** Move out everything captured so far. */
    std::vector<Event> take();

    std::uint64_t dropped() const;

    static constexpr std::size_t defaultCaptureCapacity = 1u << 18;

    /** Implementation detail (defined in span_trace.cc). */
    struct State;

  private:
    State *state_;
    State *prev_;
};

/** Reserve `count` consecutive stream ids and return the first.
 * Fleet::run calls this once per run (from the main thread, so the
 * assignment is deterministic) and hands stream base + i to server
 * i's Capture — ids and logical clocks never collide across
 * back-to-back fleets sharing one process. */
std::uint32_t reserveStreams(std::uint32_t count);

/** Append events to the process-wide collector (the fleet merge
 * step, in server order). Honors the collector cap. */
void publish(std::vector<Event> events);

/** Events collected so far (captures still open are not included). */
std::size_t collectedCount();

/** Events discarded because a capture or the collector was full. */
std::uint64_t droppedCount();

/** Snapshot of the collected events (test introspection). */
std::vector<Event> collectedEvents();

/** Render the collected events as a Chrome trace_event JSON object
 * ({"traceEvents":[...]}). */
std::string exportJson();

/** exportJson() to a file; false (with a warning) on open failure. */
bool writeJson(const std::string &path);

/** Path the process writes at exit when span flags are enabled
 * (CTG_TRACE_SPANS); empty disables the exit hook. */
void setExportPath(const std::string &path);

/** Drop all collected events and dropped counts; disable all flags.
 * Tests call this between cases. */
void resetForTest();

/** Shrink the collector's event cap (0 restores the default).
 * Tests use this to exercise the publish-time drop discipline
 * without materializing millions of events; resetForTest restores
 * the default. */
void setCollectorCapForTest(std::size_t cap);

} // namespace spans
} // namespace ctg

#define CTG_SPAN_PASTE2_(a, b) a##b
#define CTG_SPAN_PASTE_(a, b) CTG_SPAN_PASTE2_(a, b)

/** Open a span for the rest of the enclosing scope:
 * CTG_SPAN(Region, "region.expand", {{"pages", n}}). Arguments after
 * the name are an optional {{key, value}, ...} list of integer
 * args; they are evaluated (cheaply) even when the flag is off. */
#define CTG_SPAN(flag, ...)                                            \
    const ::ctg::spans::Scope CTG_SPAN_PASTE_(ctg_span_, __COUNTER__)( \
        ::ctg::TraceFlag::flag, __VA_ARGS__)

/** Like CTG_SPAN but names the scope variable so result args can be
 * attached: CTG_SPAN_NAMED(span, Migrate, "migrate.block");
 * span.arg("result", r). */
#define CTG_SPAN_NAMED(var, flag, ...)                                 \
    ::ctg::spans::Scope var(::ctg::TraceFlag::flag, __VA_ARGS__)

/** Point event inside the current span. */
#define CTG_SPAN_EVENT(flag, ...)                                      \
    do {                                                               \
        if (::ctg::spans::enabled(::ctg::TraceFlag::flag))             \
            ::ctg::spans::instant(::ctg::TraceFlag::flag,              \
                                  __VA_ARGS__);                        \
    } while (0)

#endif // CTG_BASE_SPAN_TRACE_HH
