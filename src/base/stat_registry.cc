#include "base/stat_registry.hh"

#include <cctype>
#include <cinttypes>
#include <cstdio>

namespace ctg
{

namespace
{

bool
validStatName(const std::string &name)
{
    if (name.empty())
        return false;
    for (const char c : name) {
        const bool ok = std::isalnum(static_cast<unsigned char>(c)) ||
                        c == '.' || c == '_' || c == '-';
        if (!ok)
            return false;
    }
    return true;
}

const char *
kindName(Stat::Kind kind)
{
    switch (kind) {
      case Stat::Kind::Counter:
        return "counter";
      case Stat::Kind::Gauge:
        return "gauge";
      case Stat::Kind::Distribution:
        return "distribution";
    }
    return "?";
}

/** Shortest round-trippable rendering of a double. */
std::string
formatDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

template <typename T, typename... Args>
T &
StatRegistry::add(const std::string &name, Args &&...args)
{
    if (!validStatName(name))
        panic("invalid stat name '%s'", name.c_str());
    if (byName_.count(name) != 0)
        panic("duplicate stat name '%s'", name.c_str());
    auto stat = std::make_unique<T>(name, std::forward<Args>(args)...);
    T &ref = *stat;
    byName_.emplace(name, stat.get());
    stats_.push_back(std::move(stat));
    return ref;
}

Counter &
StatRegistry::addCounter(const std::string &name, std::string desc)
{
    return add<Counter>(name, std::move(desc));
}

Gauge &
StatRegistry::addGauge(const std::string &name, Gauge::Source source,
                       std::string desc)
{
    ctg_assert(source);
    return add<Gauge>(name, std::move(desc), std::move(source));
}

Gauge &
StatRegistry::addSettableGauge(const std::string &name,
                               std::string desc)
{
    return add<Gauge>(name, std::move(desc));
}

Distribution &
StatRegistry::addDistribution(const std::string &name,
                              std::string desc)
{
    return add<Distribution>(name, std::move(desc));
}

const Stat *
StatRegistry::find(const std::string &name) const
{
    const auto it = byName_.find(name);
    return it == byName_.end() ? nullptr : it->second;
}

Stat *
StatRegistry::find(const std::string &name)
{
    const auto it = byName_.find(name);
    return it == byName_.end() ? nullptr : it->second;
}

void
StatRegistry::resetAll()
{
    for (const auto &stat : stats_)
        stat->reset();
}

std::string
StatRegistry::jsonLines() const
{
    std::string out;
    for (const auto &stat : stats_) {
        out += "{\"name\":\"" + stat->name() + "\",\"kind\":\"";
        out += kindName(stat->kind());
        out += "\"";
        if (stat->kind() == Stat::Kind::Distribution) {
            const auto &d = static_cast<const Distribution &>(*stat);
            char head[64];
            std::snprintf(head, sizeof(head),
                          ",\"count\":%" PRIu64, d.count());
            out += head;
            out += ",\"mean\":" + formatDouble(d.mean());
            out += ",\"min\":" + formatDouble(d.min());
            out += ",\"max\":" + formatDouble(d.max());
            out += ",\"stddev\":" + formatDouble(d.stddev());
        } else {
            out += ",\"value\":" + formatDouble(stat->value());
        }
        if (!stat->desc().empty())
            out += ",\"desc\":\"" + stat->desc() + "\"";
        out += "}\n";
    }
    return out;
}

std::string
StatRegistry::csv() const
{
    std::string out = "name,kind,value,count,mean,min,max,stddev\n";
    for (const auto &stat : stats_) {
        out += stat->name();
        out += ",";
        out += kindName(stat->kind());
        if (stat->kind() == Stat::Kind::Distribution) {
            const auto &d = static_cast<const Distribution &>(*stat);
            char head[32];
            std::snprintf(head, sizeof(head), ",,%" PRIu64,
                          d.count());
            out += head;
            out += "," + formatDouble(d.mean());
            out += "," + formatDouble(d.min());
            out += "," + formatDouble(d.max());
            out += "," + formatDouble(d.stddev());
        } else {
            out += "," + formatDouble(stat->value()) + ",,,,,";
        }
        out += "\n";
    }
    return out;
}

} // namespace ctg
