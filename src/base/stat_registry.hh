/**
 * @file
 * Unified statistics registry in the gem5 idiom.
 *
 * Every subsystem registers its counters under a hierarchical
 * dot-separated name (e.g. `server3.mem.buddy.split_events`,
 * `ctg.region.expansions`). Three stat kinds exist:
 *
 *  - Counter:      monotonically increasing event count owned by the
 *                  registry (new code bumps these directly);
 *  - Gauge:        instantaneous value, either settable or backed by a
 *                  callback — the bridge that lets the pre-existing
 *                  ad-hoc `struct Stats` members appear in the registry
 *                  without rewriting their hot-path increments;
 *  - Distribution: streaming mean/min/max/stddev over sampled values.
 *
 * A StatGroup carries a name prefix so each simulated server (or
 * subsystem) registers its subtree once and children only choose leaf
 * names. Exporters render the whole registry as JSON-lines or CSV for
 * machine consumption by the bench binaries; the periodic StatSampler
 * (src/sim/stat_sampler.hh) snapshots scalar views into time series.
 */

#ifndef CTG_BASE_STAT_REGISTRY_HH
#define CTG_BASE_STAT_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/logging.hh"
#include "base/stats.hh"

namespace ctg
{

/** Base of every registered statistic. */
class Stat
{
  public:
    enum class Kind
    {
        Counter,
        Gauge,
        Distribution,
    };

    Stat(std::string name, std::string desc)
        : name_(std::move(name)), desc_(std::move(desc))
    {}

    virtual ~Stat() = default;

    const std::string &name() const { return name_; }
    const std::string &desc() const { return desc_; }

    virtual Kind kind() const = 0;

    /** Scalar view used by the sampler and the exporters (a
     * Distribution reports its mean). */
    virtual double value() const = 0;

    /** Return to the just-registered state (callback gauges keep
     * reading their source). */
    virtual void reset() = 0;

  private:
    std::string name_;
    std::string desc_;
};

/** Monotonic event counter owned by the registry. */
class Counter final : public Stat
{
  public:
    using Stat::Stat;

    Counter &operator++()
    {
        ++count_;
        return *this;
    }

    Counter &
    operator+=(std::uint64_t n)
    {
        count_ += n;
        return *this;
    }

    std::uint64_t count() const { return count_; }

    Kind kind() const override { return Kind::Counter; }
    double value() const override
    {
        return static_cast<double>(count_);
    }
    void reset() override { count_ = 0; }

  private:
    std::uint64_t count_ = 0;
};

/** Instantaneous value: settable, or bound to a callback source. */
class Gauge final : public Stat
{
  public:
    using Source = std::function<double()>;

    Gauge(std::string name, std::string desc)
        : Stat(std::move(name), std::move(desc))
    {}

    Gauge(std::string name, std::string desc, Source source)
        : Stat(std::move(name), std::move(desc)),
          source_(std::move(source))
    {}

    /** Only valid on settable (non-callback) gauges. */
    void
    set(double v)
    {
        ctg_assert(!source_);
        value_ = v;
    }

    bool callbackBacked() const { return static_cast<bool>(source_); }

    Kind kind() const override { return Kind::Gauge; }
    double value() const override
    {
        return source_ ? source_() : value_;
    }
    void reset() override
    {
        if (!source_)
            value_ = 0.0;
    }

  private:
    Source source_;
    double value_ = 0.0;
};

/** Streaming distribution (mean/min/max/stddev over samples). */
class Distribution final : public Stat
{
  public:
    using Stat::Stat;

    void sample(double x) { acc_.add(x); }

    std::uint64_t count() const { return acc_.count(); }
    double mean() const { return acc_.mean(); }
    double min() const { return acc_.min(); }
    double max() const { return acc_.max(); }
    double stddev() const { return acc_.stddev(); }

    Kind kind() const override { return Kind::Distribution; }
    double value() const override { return acc_.mean(); }
    void reset() override { acc_ = RunningStat{}; }

  private:
    RunningStat acc_;
};

/**
 * Owning, name-indexed collection of stats.
 *
 * Names must be non-empty, unique, and drawn from
 * [A-Za-z0-9._-]; registering a duplicate or malformed name panics
 * (a simulator bug, not a user error). Iteration follows
 * registration order, so dumps group naturally by subsystem.
 */
class StatRegistry
{
  public:
    Counter &addCounter(const std::string &name,
                        std::string desc = "");
    Gauge &addGauge(const std::string &name, Gauge::Source source,
                    std::string desc = "");
    Gauge &addSettableGauge(const std::string &name,
                            std::string desc = "");
    Distribution &addDistribution(const std::string &name,
                                  std::string desc = "");

    /** Lookup by full name; nullptr when absent. */
    const Stat *find(const std::string &name) const;
    Stat *find(const std::string &name);

    std::size_t size() const { return stats_.size(); }
    const Stat &at(std::size_t i) const { return *stats_.at(i); }

    void resetAll();

    /** One JSON object per line, e.g.
     * {"name":"a.b","kind":"counter","value":12}. Distributions add
     * count/mean/min/max/stddev fields. */
    std::string jsonLines() const;

    /** Flat CSV with the fixed header
     * name,kind,value,count,mean,min,max,stddev (blank cells where a
     * kind has no such field). */
    std::string csv() const;

  private:
    template <typename T, typename... Args>
    T &add(const std::string &name, Args &&...args);

    std::vector<std::unique_ptr<Stat>> stats_;
    std::unordered_map<std::string, Stat *> byName_;
};

/**
 * A name-prefix view of a registry: `StatGroup(reg, "server3")`
 * registers children as `server3.<leaf>`, and `group("mem")` derives
 * the `server3.mem` subtree. Cheap to copy; the registry must
 * outlive every group derived from it.
 */
class StatGroup
{
  public:
    explicit StatGroup(StatRegistry &registry, std::string prefix = "")
        : registry_(&registry), prefix_(std::move(prefix))
    {}

    /** Derive a child group: prefix "a" + name "b" -> "a.b". */
    StatGroup
    group(const std::string &name) const
    {
        return StatGroup(*registry_, join(name));
    }

    Counter &
    counter(const std::string &name, std::string desc = "") const
    {
        return registry_->addCounter(join(name), std::move(desc));
    }

    Gauge &
    gauge(const std::string &name, Gauge::Source source,
          std::string desc = "") const
    {
        return registry_->addGauge(join(name), std::move(source),
                                   std::move(desc));
    }

    Gauge &
    settableGauge(const std::string &name, std::string desc = "") const
    {
        return registry_->addSettableGauge(join(name),
                                           std::move(desc));
    }

    Distribution &
    distribution(const std::string &name, std::string desc = "") const
    {
        return registry_->addDistribution(join(name),
                                          std::move(desc));
    }

    const std::string &prefix() const { return prefix_; }
    StatRegistry &registry() const { return *registry_; }

  private:
    std::string
    join(const std::string &name) const
    {
        return prefix_.empty() ? name : prefix_ + "." + name;
    }

    StatRegistry *registry_;
    std::string prefix_;
};

} // namespace ctg

#endif // CTG_BASE_STAT_REGISTRY_HH
