#include "base/stats.hh"

#include <cmath>

namespace ctg
{

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0)
{
    ctg_assert(hi > lo);
    ctg_assert(buckets > 0);
}

void
Histogram::add(double x, std::uint64_t weight)
{
    total_ += weight;
    if (x < lo_) {
        underflow_ += weight;
        return;
    }
    if (x >= hi_) {
        overflow_ += weight;
        return;
    }
    const auto idx = static_cast<std::size_t>((x - lo_) / width_);
    counts_[std::min(idx, counts_.size() - 1)] += weight;
}

double
Histogram::bucketLo(std::size_t i) const
{
    return lo_ + width_ * static_cast<double>(i);
}

double
Histogram::percentile(double frac) const
{
    ctg_assert(frac >= 0.0 && frac <= 1.0);
    if (total_ == 0)
        return lo_;
    const double target = frac * static_cast<double>(total_);
    double seen = static_cast<double>(underflow_);
    if (seen >= target)
        return lo_;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        seen += static_cast<double>(counts_[i]);
        if (seen >= target)
            return bucketHi(i);
    }
    return hi_;
}

void
EmpiricalCdf::ensureSorted() const
{
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
}

double
EmpiricalCdf::fractionAtOrBelow(double x) const
{
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    const auto it =
        std::upper_bound(samples_.begin(), samples_.end(), x);
    return static_cast<double>(it - samples_.begin()) /
           static_cast<double>(samples_.size());
}

double
EmpiricalCdf::quantile(double frac) const
{
    ctg_assert(!samples_.empty());
    ctg_assert(frac >= 0.0 && frac <= 1.0);
    ensureSorted();
    const auto idx = static_cast<std::size_t>(
        frac * static_cast<double>(samples_.size() - 1));
    return samples_[idx];
}

double
pearson(const std::vector<double> &xs, const std::vector<double> &ys)
{
    ctg_assert(xs.size() == ys.size());
    ctg_assert(xs.size() >= 2);
    const auto n = static_cast<double>(xs.size());
    double sx = 0, sy = 0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        sx += xs[i];
        sy += ys[i];
    }
    const double mx = sx / n;
    const double my = sy / n;
    double cov = 0, vx = 0, vy = 0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const double dx = xs[i] - mx;
        const double dy = ys[i] - my;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if (vx == 0.0 || vy == 0.0)
        return 0.0;
    return cov / std::sqrt(vx * vy);
}

} // namespace ctg
