/**
 * @file
 * Statistics primitives used across the simulator and the experiment
 * harnesses: streaming mean/variance, histograms, empirical CDFs, and
 * the Pearson correlation used by the Section 2.4 uptime study.
 */

#ifndef CTG_BASE_STATS_HH
#define CTG_BASE_STATS_HH

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "base/logging.hh"

namespace ctg
{

/** Streaming mean / variance accumulator (Welford's algorithm). */
class RunningStat
{
  public:
    void
    add(double x)
    {
        ++n_;
        const double delta = x - mean_;
        mean_ += delta / static_cast<double>(n_);
        m2_ += delta * (x - mean_);
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }

    std::uint64_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }

    double
    variance() const
    {
        return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
    }

    double stddev() const;
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 1e300;
    double max_ = -1e300;
};

/** Fixed-bucket histogram over [lo, hi) with uniform bucket width. */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t buckets);

    void add(double x, std::uint64_t weight = 1);

    std::uint64_t total() const { return total_; }
    std::size_t buckets() const { return counts_.size(); }
    std::uint64_t bucketCount(std::size_t i) const { return counts_.at(i); }
    double bucketLo(std::size_t i) const;
    double bucketHi(std::size_t i) const { return bucketLo(i + 1); }

    /** Mass that fell below lo (still part of total()). */
    std::uint64_t underflow() const { return underflow_; }

    /** Mass that fell at or above hi (still part of total()). */
    std::uint64_t overflow() const { return overflow_; }

    /**
     * Value below which the given fraction of the mass falls.
     * Well-defined on an empty histogram: returns lo. Underflow mass
     * resolves to lo and overflow mass to hi (the histogram cannot
     * place it more precisely).
     */
    double percentile(double frac) const;

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
};

/**
 * Empirical CDF built from raw samples; renders the fleet-study
 * figures (4 and 5) as "fraction of servers with value <= x".
 */
class EmpiricalCdf
{
  public:
    void add(double x) { samples_.push_back(x); sorted_ = false; }

    std::size_t count() const { return samples_.size(); }

    /** Fraction of samples <= x. */
    double fractionAtOrBelow(double x) const;

    /** Inverse CDF: the smallest sample s.t. fraction <= frac. */
    double quantile(double frac) const;

  private:
    void ensureSorted() const;

    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;
};

/** Pearson correlation coefficient of two equal-length series. */
double pearson(const std::vector<double> &xs,
               const std::vector<double> &ys);

} // namespace ctg

#endif // CTG_BASE_STATS_HH
