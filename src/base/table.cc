#include "base/table.hh"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "base/env_config.hh"

namespace ctg
{

Table::Table(std::string title)
    : title_(std::move(title))
{}

void
Table::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
Table::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
Table::render() const
{
    std::vector<std::size_t> widths;
    auto grow = [&widths](const std::vector<std::string> &cells) {
        if (widths.size() < cells.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    grow(header_);
    for (const auto &r : rows_)
        grow(r);

    std::ostringstream out;
    if (!title_.empty())
        out << "== " << title_ << " ==\n";
    auto emit = [&out, &widths](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            out << cells[i];
            if (i + 1 < cells.size()) {
                out << std::string(widths[i] - cells[i].size() + 2, ' ');
            }
        }
        out << '\n';
    };
    if (!header_.empty()) {
        emit(header_);
        std::size_t rule = 0;
        for (std::size_t w : widths)
            rule += w + 2;
        out << std::string(rule > 2 ? rule - 2 : rule, '-') << '\n';
    }
    for (const auto &r : rows_)
        emit(r);
    return out.str();
}

std::string
Table::renderCsv() const
{
    std::ostringstream out;
    auto emit = [&out](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            const bool quote =
                cells[i].find_first_of(",\"\n") != std::string::npos;
            if (quote) {
                out << '"';
                for (const char c : cells[i]) {
                    if (c == '"')
                        out << '"';
                    out << c;
                }
                out << '"';
            } else {
                out << cells[i];
            }
            if (i + 1 < cells.size())
                out << ',';
        }
        out << '\n';
    };
    if (!header_.empty())
        emit(header_);
    for (const auto &row : rows_)
        emit(row);
    return out.str();
}

void
Table::print() const
{
    std::fputs(render().c_str(), stdout);
    if (sim::EnvConfig::fromEnv().csvTables) {
        std::fputs("-- csv --\n", stdout);
        std::fputs(renderCsv().c_str(), stdout);
    }
}

std::string
cell(double v, int decimals)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

std::string
cell(std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    return buf;
}

} // namespace ctg
