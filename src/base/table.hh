/**
 * @file
 * Minimal fixed-width table renderer used by the bench binaries to
 * print paper-style result rows (one table/series per figure).
 */

#ifndef CTG_BASE_TABLE_HH
#define CTG_BASE_TABLE_HH

#include <string>
#include <vector>

namespace ctg
{

/**
 * Accumulates rows of string cells and renders them with aligned
 * columns, a header rule, and an optional title banner.
 */
class Table
{
  public:
    explicit Table(std::string title = "");

    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append a data row. */
    void row(std::vector<std::string> cells);

    /** Render to a string. */
    std::string render() const;

    /** Render as CSV (header row + data rows, comma-escaped). */
    std::string renderCsv() const;

    /** Render to stdout; also emits CSV when the CTG_CSV environment
     * variable is set (machine-readable bench output). */
    void print() const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Shorthand for formatting doubles into table cells. */
std::string cell(double v, int decimals = 2);
std::string cell(std::uint64_t v);

} // namespace ctg

#endif // CTG_BASE_TABLE_HH
