#include "base/trace.hh"

#include <cinttypes>
#include <cstdarg>
#include <cstdlib>
#include <utility>

#include "base/env_config.hh"
#include "base/logging.hh"

namespace ctg
{
namespace trace
{

std::atomic<std::uint32_t> mask_{0};

namespace
{

struct FlagEntry
{
    TraceFlag flag;
    const char *name;
};

constexpr FlagEntry flagTable[] = {
    {TraceFlag::Buddy, "Buddy"},
    {TraceFlag::Compaction, "Compaction"},
    {TraceFlag::Migrate, "Migrate"},
    {TraceFlag::Shootdown, "Shootdown"},
    {TraceFlag::ChwEngine, "ChwEngine"},
    {TraceFlag::Region, "Region"},
    {TraceFlag::Fleet, "Fleet"},
    {TraceFlag::Kernel, "Kernel"},
    {TraceFlag::Tlb, "Tlb"},
    {TraceFlag::Faults, "Faults"},
};

std::FILE *sink_ = nullptr;      //!< non-owning; stderr when null
std::FILE *ownedSink_ = nullptr; //!< file opened by openFileSink
/**
 * Tick source of the simulation driving this thread. thread_local so
 * parallel fleet workers each observe the event queue of the server
 * they are running, never a sibling's (which would both race and
 * leak the work-stealing schedule into captured span timestamps).
 */
thread_local std::function<Tick()> tickSource_;

/** Buffer of the innermost active ThreadCapture on this thread. */
thread_local std::string *captureBuffer_ = nullptr;

std::FILE *
sink()
{
    return sink_ != nullptr ? sink_ : stderr;
}

/** One-time CTG_TRACE / CTG_TRACE_FILE pickup. */
struct EnvInit
{
    EnvInit()
    {
        const sim::EnvConfig env = sim::EnvConfig::fromEnv();
        if (!env.traceFile.empty())
            openFileSink(env.traceFile.c_str());
        if (!env.traceSpec.empty())
            setFromString(env.traceSpec.c_str());
    }
};

const EnvInit envInit_;

} // namespace

void
enable(TraceFlag flag)
{
    mask_.fetch_or(static_cast<std::uint32_t>(flag),
                   std::memory_order_relaxed);
}

void
disable(TraceFlag flag)
{
    mask_.fetch_and(~static_cast<std::uint32_t>(flag),
                    std::memory_order_relaxed);
}

void
enableAll()
{
    for (const FlagEntry &e : flagTable)
        enable(e.flag);
}

void
disableAll()
{
    mask_.store(0, std::memory_order_relaxed);
}

void
setFromString(const std::string &spec)
{
    std::size_t pos = 0;
    while (pos < spec.size()) {
        const std::size_t end = spec.find_first_of(", ", pos);
        const std::string tok =
            spec.substr(pos, end == std::string::npos ? std::string::npos
                                                      : end - pos);
        pos = end == std::string::npos ? spec.size() : end + 1;
        if (tok.empty())
            continue;
        if (tok == "All") {
            enableAll();
            continue;
        }
        TraceFlag flag;
        if (flagFromName(tok, &flag))
            enable(flag);
        else
            warn("unknown trace flag '%s' ignored", tok.c_str());
    }
}

const char *
flagName(TraceFlag flag)
{
    for (const FlagEntry &e : flagTable) {
        if (e.flag == flag)
            return e.name;
    }
    return "?";
}

std::uint32_t
allFlagsMask()
{
    std::uint32_t mask = 0;
    for (const FlagEntry &e : flagTable)
        mask |= static_cast<std::uint32_t>(e.flag);
    return mask;
}

bool
flagFromName(const std::string &name, TraceFlag *out)
{
    for (const FlagEntry &e : flagTable) {
        if (name == e.name) {
            *out = e.flag;
            return true;
        }
    }
    return false;
}

void
setSink(std::FILE *new_sink)
{
    if (ownedSink_ != nullptr) {
        std::fclose(ownedSink_);
        ownedSink_ = nullptr;
    }
    sink_ = new_sink;
}

bool
openFileSink(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        warn_once("cannot open trace file '%s'; keeping current sink",
                  path.c_str());
        return false;
    }
    setSink(f);
    ownedSink_ = f;
    return true;
}

void
setTickSource(std::function<Tick()> source)
{
    tickSource_ = std::move(source);
}

void
clearTickSource()
{
    tickSource_ = nullptr;
}

Tick
currentTick()
{
    return tickSource_ ? tickSource_() : 0;
}

void
print(TraceFlag flag, const char *fmt, ...)
{
    char head[48];
    if (tickSource_) {
        std::snprintf(head, sizeof(head), "%12" PRIu64 ": %s: ",
                      tickSource_(), flagName(flag));
    } else {
        std::snprintf(head, sizeof(head), "%s: ", flagName(flag));
    }

    std::va_list args;
    va_start(args, fmt);
    if (captureBuffer_ != nullptr) {
        char stack[512];
        std::va_list copy;
        va_copy(copy, args);
        const int need =
            std::vsnprintf(stack, sizeof(stack), fmt, copy);
        va_end(copy);
        captureBuffer_->append(head);
        if (need >= 0 &&
            static_cast<std::size_t>(need) < sizeof(stack)) {
            captureBuffer_->append(stack);
        } else if (need >= 0) {
            std::string big(static_cast<std::size_t>(need) + 1,
                            '\0');
            std::vsnprintf(big.data(), big.size(), fmt, args);
            big.resize(static_cast<std::size_t>(need));
            captureBuffer_->append(big);
        }
        captureBuffer_->push_back('\n');
    } else {
        std::FILE *out = sink();
        std::fputs(head, out);
        std::vfprintf(out, fmt, args);
        std::fputc('\n', out);
    }
    va_end(args);
}

void
emitRaw(const std::string &text)
{
    if (text.empty())
        return;
    if (captureBuffer_ != nullptr) {
        captureBuffer_->append(text);
        return;
    }
    std::fwrite(text.data(), 1, text.size(), sink());
}

ThreadCapture::ThreadCapture()
    : prev_(captureBuffer_)
{
    captureBuffer_ = &buffer_;
}

ThreadCapture::~ThreadCapture()
{
    captureBuffer_ = prev_;
}

std::string
ThreadCapture::take()
{
    std::string out = std::move(buffer_);
    buffer_.clear();
    return out;
}

} // namespace trace
} // namespace ctg
