/**
 * @file
 * DPRINTF-style trace facility in the gem5 idiom.
 *
 * Each subsystem owns a trace flag; CTG_DPRINTF(Flag, fmt, ...)
 * compiles to a single mask test when the flag is off — the format
 * arguments are not even evaluated — so trace points are free to live
 * on hot paths. Output is tick-stamped when a tick source (usually an
 * EventQueue) is installed, and goes to a pluggable sink: stderr by
 * default, or a file.
 *
 * Runtime control: trace::enable()/setFromString("Buddy,Region"), or
 * the CTG_TRACE environment variable (same syntax; "All" enables
 * everything). CTG_TRACE_FILE redirects the sink to a file.
 */

#ifndef CTG_BASE_TRACE_HH
#define CTG_BASE_TRACE_HH

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>

#include "base/types.hh"

namespace ctg
{

/** One bit per traced subsystem. */
enum class TraceFlag : std::uint32_t
{
    Buddy      = 1u << 0, //!< buddy fallback steals, failed allocs
    Compaction = 1u << 1, //!< compaction passes and outcomes
    Migrate    = 1u << 2, //!< software page-migration attempts
    Shootdown  = 1u << 3, //!< TLB shootdown / migration procedures
    ChwEngine  = 1u << 4, //!< Contiguitas-HW copy engine
    Region     = 1u << 5, //!< region manager + resize controller
    Fleet      = 1u << 6, //!< fleet/server level progress
    Kernel     = 1u << 7, //!< kernel facade slow paths
    Tlb        = 1u << 8, //!< MMU/TLB events
    Faults     = 1u << 9, //!< fault-injector firings
};

namespace trace
{

/** Bitmask of enabled flags; read via enabled() on hot paths.
 * Atomic with relaxed ordering: executor workers test it while tests
 * (or a debugger) toggle flags — the race is benign by design, but it
 * must still be data-race-free for TSan. */
extern std::atomic<std::uint32_t> mask_;

inline bool
enabled(TraceFlag flag)
{
    return (mask_.load(std::memory_order_relaxed) &
            static_cast<std::uint32_t>(flag)) != 0u;
}

void enable(TraceFlag flag);
void disable(TraceFlag flag);
void enableAll();
void disableAll();

/** Comma/space-separated flag names, e.g. "Buddy,Region" or "All".
 * Unknown names warn and are skipped. */
void setFromString(const std::string &spec);

/** Canonical name of a flag ("Buddy", ...). */
const char *flagName(TraceFlag flag);

/** Reverse lookup; returns false for unknown names. */
bool flagFromName(const std::string &name, TraceFlag *out);

/** OR of every defined flag bit. */
std::uint32_t allFlagsMask();

/** Redirect output to a caller-owned stream (default stderr). */
void setSink(std::FILE *sink);

/** Open (and own) a file sink; returns false and keeps the current
 * sink on failure. */
bool openFileSink(const std::string &path);

/** Install the simulated-time source used to stamp each record
 * (e.g. [&eq]{ return eq.now(); }); clear to drop the stamp. The
 * source is thread-local: each fleet worker sees only the clock of
 * the server it is currently running. */
void setTickSource(std::function<Tick()> source);
void clearTickSource();

/** Current simulated tick per the installed source; 0 when none. */
Tick currentTick();

/** Emit one record: "<tick>: <Flag>: <message>". Use CTG_DPRINTF
 * rather than calling this directly. */
void print(TraceFlag flag, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

/** Write already-formatted trace text verbatim — to the active
 * capture when one is installed on this thread, else to the sink.
 * Used to flush merged capture buffers in deterministic order. */
void emitRaw(const std::string &text);

/**
 * RAII per-thread capture of trace output. While active, every
 * record print()ed from this thread is appended to an in-memory
 * buffer instead of the shared sink. Parallel fleet workers wrap
 * each server task in a capture and the merge step emitRaw()s the
 * buffers in server order, so a traced parallel run prints
 * byte-identically to the sequential path (and worker threads never
 * interleave writes on the sink). Captures nest: an inner capture
 * shadows the outer one until it is destroyed.
 */
class ThreadCapture
{
  public:
    ThreadCapture();
    ~ThreadCapture();

    ThreadCapture(const ThreadCapture &) = delete;
    ThreadCapture &operator=(const ThreadCapture &) = delete;

    /** Move out everything captured so far; capture continues with
     * an empty buffer. */
    std::string take();

  private:
    std::string buffer_;
    std::string *prev_;
};

} // namespace trace
} // namespace ctg

/** Trace-point macro; arguments are only evaluated when the flag is
 * enabled. Use the bare flag name: CTG_DPRINTF(Buddy, "steal %u", n). */
#define CTG_DPRINTF(flag, ...)                                            \
    do {                                                                  \
        if (::ctg::trace::enabled(::ctg::TraceFlag::flag))                \
            ::ctg::trace::print(::ctg::TraceFlag::flag, __VA_ARGS__);     \
    } while (0)

#endif // CTG_BASE_TRACE_HH
