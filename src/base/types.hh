/**
 * @file
 * Fundamental scalar types shared by every Contiguitas subsystem.
 *
 * The simulator follows the Linux/x86-64 conventions used by the paper:
 * 4 KB base pages, 2 MB huge pages (order-9 buddy blocks), and 1 GB
 * gigantic pages. Physical memory is addressed by page frame number
 * (Pfn); the hardware model addresses bytes (Addr) and 64 B cache lines.
 */

#ifndef CTG_BASE_TYPES_HH
#define CTG_BASE_TYPES_HH

#include <cstddef>
#include <cstdint>

namespace ctg
{

/** Byte-granularity physical or virtual address. */
using Addr = std::uint64_t;

/** Physical page frame number (Addr >> pageShift). */
using Pfn = std::uint64_t;

/** Virtual page number. */
using Vpn = std::uint64_t;

/** Simulation time in ticks (the hardware model equates ticks and CPU
 * cycles at 2 GHz, matching Table 1). */
using Tick = std::uint64_t;

/** Cycle counts reported by the timing model. */
using Cycles = std::uint64_t;

/** Identifier of a simulated core, LLC slice, or device. */
using CoreId = std::uint32_t;

/** Base page geometry. */
constexpr unsigned pageShift = 12;
constexpr std::size_t pageBytes = std::size_t{1} << pageShift;

/** Huge page geometry (2 MB == order-9 buddy block). */
constexpr unsigned hugeOrder = 9;
constexpr unsigned hugeShift = pageShift + hugeOrder;
constexpr std::size_t hugeBytes = std::size_t{1} << hugeShift;
constexpr std::size_t pagesPerHuge = std::size_t{1} << hugeOrder;

/** Gigantic page geometry (1 GB == order-18 block). */
constexpr unsigned gigaOrder = 18;
constexpr unsigned gigaShift = pageShift + gigaOrder;
constexpr std::size_t gigaBytes = std::size_t{1} << gigaShift;
constexpr std::size_t pagesPerGiga = std::size_t{1} << gigaOrder;

/** Cache line geometry (Table 1: 64 B lines). */
constexpr unsigned lineShift = 6;
constexpr std::size_t lineBytes = std::size_t{1} << lineShift;
constexpr std::size_t linesPerPage = pageBytes / lineBytes;

/** Largest order tracked by the buddy allocator free lists
 * (order 10 == 4 MB, like Linux's MAX_ORDER). Gigantic allocations are
 * served by a dedicated contiguous-range search, as in Linux. */
constexpr unsigned maxOrder = 10;

/** Address preference for placement policies (Section 3.2: bias
 * allocations away from the region border). Lives here rather than in
 * mem/buddy.hh because the ContigIndex descent queries take it too. */
enum class AddrPref : std::uint8_t
{
    None = 0, //!< take the first suitable block (Linux default)
    Low = 1,  //!< prefer low PFNs (far end of a bottom region)
    High = 2, //!< prefer high PFNs
};

/** Sentinel for "no page frame". */
constexpr Pfn invalidPfn = ~Pfn{0};

/** Sentinel for "no address". */
constexpr Addr invalidAddr = ~Addr{0};

/** Convert a frame number to the byte address of its first byte. */
constexpr Addr
pfnToAddr(Pfn pfn)
{
    return Addr{pfn} << pageShift;
}

/** Convert a byte address to the containing page frame number. */
constexpr Pfn
addrToPfn(Addr addr)
{
    return addr >> pageShift;
}

/** Index of a cache line within its page (0..63). */
constexpr unsigned
lineInPage(Addr addr)
{
    return static_cast<unsigned>((addr >> lineShift) &
                                 (linesPerPage - 1));
}

} // namespace ctg

#endif // CTG_BASE_TYPES_HH
