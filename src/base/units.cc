#include "base/units.hh"

#include <cstdio>

namespace ctg
{

std::string
formatBytes(std::uint64_t bytes)
{
    static const char *suffixes[] = {"B", "KiB", "MiB", "GiB", "TiB"};
    double value = static_cast<double>(bytes);
    std::size_t idx = 0;
    while (value >= 1024.0 && idx + 1 < std::size(suffixes)) {
        value /= 1024.0;
        ++idx;
    }
    char buf[32];
    if (idx == 0)
        std::snprintf(buf, sizeof(buf), "%.0f %s", value, suffixes[idx]);
    else
        std::snprintf(buf, sizeof(buf), "%.1f %s", value, suffixes[idx]);
    return buf;
}

std::string
formatPercent(double fraction, int decimals)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
    return buf;
}

} // namespace ctg
