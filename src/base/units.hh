/**
 * @file
 * Byte-size literals and human-readable size formatting.
 */

#ifndef CTG_BASE_UNITS_HH
#define CTG_BASE_UNITS_HH

#include <cstdint>
#include <string>

namespace ctg
{

constexpr std::uint64_t operator""_KiB(unsigned long long v)
{
    return v << 10;
}

constexpr std::uint64_t operator""_MiB(unsigned long long v)
{
    return v << 20;
}

constexpr std::uint64_t operator""_GiB(unsigned long long v)
{
    return v << 30;
}

/** Format a byte count as e.g. "4.0 GiB" or "512 KiB". */
std::string formatBytes(std::uint64_t bytes);

/** Format a ratio as a percentage string, e.g. "31.4%". */
std::string formatPercent(double fraction, int decimals = 1);

} // namespace ctg

#endif // CTG_BASE_UNITS_HH
