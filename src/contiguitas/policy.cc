#include "contiguitas/policy.hh"

#include <algorithm>
#include <cerrno>
#include <cstdlib>

#include "base/logging.hh"
#include "base/serde.hh"
#include "base/span_trace.hh"
#include "kernel/migrate.hh"
#include "kernel/vanilla_policy.hh"

namespace ctg
{

namespace
{

bool
parseU64Strict(const std::string &value, std::uint64_t *out)
{
    if (value.empty() || value[0] < '0' || value[0] > '9')
        return false;
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
    if (errno != 0 || end == nullptr || *end != '\0')
        return false;
    *out = v;
    return true;
}

bool
parseDoubleStrict(const std::string &value, double *out)
{
    if (value.empty() ||
        !((value[0] >= '0' && value[0] <= '9') || value[0] == '.'))
        return false;
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(value.c_str(), &end);
    if (errno != 0 || end == nullptr || *end != '\0')
        return false;
    *out = v;
    return true;
}

} // namespace

bool
ResizeTuning::set(const std::string &key, const std::string &value)
{
    if (key == "period") {
        double v = 0.0;
        if (!parseDoubleStrict(value, &v) || v <= 0.0 || v > 3600.0) {
            warn_once("resize tuning: period=%s out of range (0, 3600]"
                      "; keeping %g", value.c_str(), periodSec);
            return false;
        }
        periodSec = v;
        return true;
    }
    if (key == "step") {
        std::uint64_t v = 0;
        if (!parseU64Strict(value, &v) || v < 1) {
            warn_once("resize tuning: step=%s invalid (want pages >= 1)"
                      "; keeping %llu", value.c_str(),
                      static_cast<unsigned long long>(stepPages));
            return false;
        }
        stepPages = v;
        return true;
    }
    if (key == "max") {
        std::uint64_t v = 0;
        if (!parseU64Strict(value, &v) || v < 1) {
            warn_once("resize tuning: max=%s invalid (want pages >= 1)"
                      "; keeping %llu", value.c_str(),
                      static_cast<unsigned long long>(maxPerTick));
            return false;
        }
        maxPerTick = v;
        return true;
    }
    if (key == "watermark") {
        double v = 0.0;
        if (!parseDoubleStrict(value, &v) || v < 0.0 || v > 0.5) {
            warn_once("resize tuning: watermark=%s out of range "
                      "[0, 0.5]; keeping %g", value.c_str(),
                      unmovFreeWatermark);
            return false;
        }
        unmovFreeWatermark = v;
        return true;
    }
    if (key == "slack") {
        double v = 0.0;
        if (!parseDoubleStrict(value, &v) || v < 0.0 || v > 1.0) {
            warn_once("resize tuning: slack=%s out of range [0, 1]; "
                      "keeping %g", value.c_str(), shrinkFreeSlack);
            return false;
        }
        shrinkFreeSlack = v;
        return true;
    }
    warn_once("resize tuning: unknown knob '%s' (=%s) ignored",
              key.c_str(), value.c_str());
    return false;
}

ContiguitasPolicy::ContiguitasPolicy(Kernel &kernel,
                                     const ContiguitasConfig &config)
    : kernel_(kernel), config_(config),
      regions_(kernel.mem(), kernel.owners(), config.region),
      controller_(config.resize)
{
    if (config_.hwMigration)
        regions_.enableHwMigration();
    regions_.setPinMovedCallback([this](Pfn src, Pfn dst) {
        kernel_.notifyPinnedMoved(src, dst);
    });
    if (config_.placementBias) {
        // The region is small; a deep best-of scan keeps long-lived
        // allocations packed away from the border.
        regions_.unmovable().setPrefScanCap(256);
    }
}

ContiguitasPolicy::ContiguitasPolicy(Kernel &kernel,
                                     const ContiguitasConfig &config,
                                     serde::Reader &in)
    : kernel_(kernel), config_(config),
      regions_(kernel.mem(), kernel.owners(), config.region, in),
      controller_(config.resize)
{
    // Hooks are process-local function objects: re-attach exactly as
    // in cold construction (the serialized prefScanCap already holds
    // the bias value, so re-applying it is idempotent).
    if (config_.hwMigration)
        regions_.enableHwMigration();
    regions_.setPinMovedCallback([this](Pfn src, Pfn dst) {
        kernel_.notifyPinnedMoved(src, dst);
    });

    for (std::uint64_t *field :
         {&stats_.pinMigrations, &stats_.pinMigrationFailures,
          &stats_.urgentExpansions, &stats_.controllerExpands,
          &stats_.controllerShrinks})
        *field = in.getU64();
    lastResizeSec_ = in.getDouble();

    ResizeController::Stats cs;
    cs.evaluations = in.getU64();
    cs.expandDecisions = in.getU64();
    cs.shrinkDecisions = in.getU64();
    cs.noneDecisions = in.getU64();
    controller_.restoreStats(cs);
}

void
ContiguitasPolicy::saveTo(serde::Writer &out) const
{
    regions_.saveTo(out);
    for (const std::uint64_t field :
         {stats_.pinMigrations, stats_.pinMigrationFailures,
          stats_.urgentExpansions, stats_.controllerExpands,
          stats_.controllerShrinks})
        out.putU64(field);
    out.putDouble(lastResizeSec_);

    const ResizeController::Stats &cs = controller_.stats();
    out.putU64(cs.evaluations);
    out.putU64(cs.expandDecisions);
    out.putU64(cs.shrinkDecisions);
    out.putU64(cs.noneDecisions);
}

AddrPref
ContiguitasPolicy::placementPref(const AllocRequest &req) const
{
    if (req.mt == MigrateType::Movable || !config_.placementBias)
        return AddrPref::None;
    // The unmovable region sits at the bottom of the address space;
    // "away from the border" therefore means low PFNs. Everything is
    // biased away from the border while space is available; the
    // immortal/long-lived classes benefit the most because they are
    // placed first and never churn.
    switch (req.lifetime) {
      case Lifetime::Immortal:
      case Lifetime::Long:
      case Lifetime::Short:
        return AddrPref::Low;
    }
    return AddrPref::None;
}

AddrPref
ContiguitasPolicy::pinPlacementPref() const
{
    // Pages migrated in at pin time are short-lived: park them deep
    // in the region (high PFNs, near the border) so the boundary can
    // keep shrinking past them once they unpin.
    return config_.placementBias ? AddrPref::High : AddrPref::None;
}

Pfn
ContiguitasPolicy::alloc(const AllocRequest &req)
{
    if (req.mt == MigrateType::Movable) {
        return regions_.movable().allocPages(req.order, req.mt,
                                             req.source, req.owner);
    }

    BuddyAllocator &unmov = regions_.unmovable();
    const AddrPref pref = placementPref(req);
    Pfn head = unmov.allocPages(req.order, req.mt, req.source,
                                req.owner, pref);
    if (head != invalidPfn || config_.staticBoundary)
        return head;

    // The region is full: expand synchronously. This is the rare
    // slow path; the controller normally keeps headroom.
    CTG_SPAN_NAMED(span, Region, "policy.urgent_expand",
                   {{"order", req.order}});
    const std::uint64_t step =
        std::max<std::uint64_t>(config_.tuning.stepPages,
                                Pfn{1} << req.order);
    if (regions_.expandUnmovable(step) > 0) {
        ++stats_.urgentExpansions;
        head = unmov.allocPages(req.order, req.mt, req.source,
                                req.owner, pref);
    }
    span.arg("ok", head != invalidPfn ? 1 : 0);
    return head;
}

void
ContiguitasPolicy::free(Pfn head)
{
    if (head < regions_.boundary())
        regions_.unmovable().freePages(head);
    else
        regions_.movable().freePages(head);
}

Pfn
ContiguitasPolicy::allocGigantic(AllocSource src, std::uint64_t owner)
{
    return regions_.movable().allocGigantic(MigrateType::Movable, src,
                                            owner);
}

Pfn
ContiguitasPolicy::pin(Pfn head)
{
    PhysMem &mem = kernel_.mem();
    if (head < regions_.boundary()) {
        // Already confined (kernel page or previously migrated).
        setBlockPinned(mem, head, true);
        return head;
    }

    // Movable page becoming unmovable: migrate it into the unmovable
    // region first, near the border (such pages are short-lived),
    // then pin the destination (Section 3.2).
    CTG_SPAN_NAMED(span, Region, "policy.pin_migrate",
                   {{"head", static_cast<std::int64_t>(head)}});
    for (int attempt = 0; attempt < 2; ++attempt) {
        Pfn dst = invalidPfn;
        const MigrateResult r = migrateBlock(
            regions_.movable(), regions_.unmovable(),
            kernel_.owners(), head, pinPlacementPref(),
            MigrateType::Unmovable, &dst, /*allow_fallback=*/true);
        if (r == MigrateResult::Ok) {
            setBlockPinned(mem, dst, true);
            ++stats_.pinMigrations;
            span.arg("dst", static_cast<std::int64_t>(dst));
            return dst;
        }
        if (r == MigrateResult::Unmovable)
            break;
        // No space: expand and retry once (never with a static
        // boundary — ZONE_MOVABLE would just fail the pin).
        if (config_.staticBoundary ||
            regions_.expandUnmovable(config_.tuning.stepPages) == 0)
            break;
    }
    ++stats_.pinMigrationFailures;
    span.arg("failed", 1);
    return invalidPfn;
}

void
ContiguitasPolicy::unpin(Pfn head)
{
    setBlockPinned(kernel_.mem(), head, false);
}

void
ContiguitasPolicy::runController()
{
    CTG_SPAN(Region, "policy.run_controller");
    BuddyAllocator &unmov = regions_.unmovable();
    const std::uint64_t size = unmov.totalPages();
    const std::uint64_t free = unmov.freePageCount();
    const double free_frac =
        static_cast<double>(free) / static_cast<double>(size);

    // Urgent path: low free memory in the unmovable region expands
    // it regardless of PSI (the reclaim-triggered wakeup of §3.2).
    if (free_frac < config_.tuning.unmovFreeWatermark) {
        if (regions_.expandUnmovable(config_.tuning.stepPages) > 0)
            ++stats_.controllerExpands;
        return;
    }

    const ResizeDecision decision = controller_.evaluate(
        kernel_.psiUnmovable().pressure(),
        kernel_.psiMovable().pressure(), size);

    switch (decision.direction) {
      case ResizeDirection::Expand: {
        const std::uint64_t want = decision.targetPages - size;
        const std::uint64_t delta =
            std::min<std::uint64_t>(want, config_.tuning.maxPerTick);
        if (delta >= config_.tuning.stepPages &&
            regions_.expandUnmovable(delta) > 0) {
            ++stats_.controllerExpands;
        }
        break;
      }
      case ResizeDirection::Shrink: {
        const std::uint64_t want = size - decision.targetPages;
        std::uint64_t delta =
            std::min<std::uint64_t>(want, config_.tuning.maxPerTick);
        // Hysteresis: never shrink into the used part of the region
        // or below the free-slack level.
        const std::uint64_t used = size - free;
        const auto slack = static_cast<std::uint64_t>(
            config_.tuning.shrinkFreeSlack * static_cast<double>(used));
        const std::uint64_t floor_pages = used + slack;
        if (size - delta < floor_pages) {
            delta = size > floor_pages ? size - floor_pages : 0;
            delta &= ~((std::uint64_t{1} << maxOrder) - 1);
        }
        if (delta >= config_.tuning.stepPages &&
            regions_.shrinkUnmovable(delta) > 0) {
            ++stats_.controllerShrinks;
        }
        break;
      }
      case ResizeDirection::None:
        break;
    }
}

void
ContiguitasPolicy::tick(std::uint32_t now_seconds)
{
    kernel_.mem().nowSeconds = now_seconds;
    const auto now = static_cast<double>(now_seconds);
    if (now - lastResizeSec_ < config_.tuning.periodSec)
        return;
    lastResizeSec_ = now;

    CTG_SPAN(Region, "policy.tick",
             {{"now_sec", static_cast<std::int64_t>(now_seconds)}});

    if (!config_.staticBoundary) {
        // Resizes that failed evacuation earlier retry here with
        // capped exponential backoff, ahead of fresh controller
        // decisions.
        regions_.pumpDeferredResizes();
        runController();
    }
    const std::uint64_t budget = defragBudgetPerTick();
    if (budget > 0)
        regions_.defragUnmovable(budget);
}

std::uint64_t
ContiguitasPolicy::freeUserPages() const
{
    return regions_.movable().freePageCount();
}

std::uint64_t
ContiguitasPolicy::freeKernelPages() const
{
    return regions_.unmovable().freePageCount();
}

std::pair<Pfn, Pfn>
ContiguitasPolicy::unmovableRegion() const
{
    return {0, regions_.boundary()};
}

BuddyAllocator &
ContiguitasPolicy::movableAllocator()
{
    return regions_.movable();
}

void
ContiguitasPolicy::regStats(StatGroup group) const
{
    const StatGroup ctg_group = group.group("ctg");
    ctg_group.gauge("pin_migrations",
                    [this] { return double(stats_.pinMigrations); },
                    "pages moved into the unmovable region at pin");
    ctg_group.gauge(
        "pin_migration_failures",
        [this] { return double(stats_.pinMigrationFailures); });
    ctg_group.gauge("urgent_expansions",
                    [this] { return double(stats_.urgentExpansions); },
                    "watermark-triggered expansions");
    ctg_group.gauge(
        "controller_expands",
        [this] { return double(stats_.controllerExpands); });
    ctg_group.gauge(
        "controller_shrinks",
        [this] { return double(stats_.controllerShrinks); });
    regions_.regStats(ctg_group.group("region"));
    controller_.regStats(ctg_group.group("controller"));
    regions_.unmovable().regStats(
        group.group("mem.unmovable.buddy"));
    regions_.movable().regStats(group.group("mem.movable.buddy"));
}

} // namespace ctg
