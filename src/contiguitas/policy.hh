/**
 * @file
 * ContiguitasPolicy — the paper's OS contribution as a drop-in
 * placement policy for the kernel substrate.
 *
 * Confinement: movable allocations are served from the movable
 * region only; unmovable/reclaimable ones from the unmovable region
 * only — never mixed (Section 3.2). Long-lived unmovable allocations
 * are biased toward the far end of the region; pages migrated in at
 * pin time land near the border where their short remaining lifetime
 * keeps shrinking viable. The Algorithm 1 controller resizes the
 * boundary off the allocation critical path, triggered by per-region
 * PSI and a free-memory low watermark.
 */

#ifndef CTG_CONTIGUITAS_POLICY_HH
#define CTG_CONTIGUITAS_POLICY_HH

#include <string>

#include "contiguitas/region_manager.hh"
#include "contiguitas/resize_controller.hh"
#include "kernel/kernel.hh"
#include "kernel/policy.hh"

namespace ctg
{

/**
 * Boundary-resize pacing knobs, grouped so they can be validated in
 * one place. All five are set through set(), which range-checks and
 * warns (warn_once, naming variable and value) instead of silently
 * clamping — an out-of-range assignment keeps the previous value.
 */
struct ResizeTuning
{
    /** Seconds between controller evaluations (resizing is off the
     * allocation critical path; a kernel thread wakes periodically).
     * Valid range (0, 3600]. */
    double periodSec = 1.0;
    /** Resize granularity in pages (16 MB default); must be >= 1. */
    std::uint64_t stepPages = 1u << 12;
    /** Max pages moved per controller wakeup; must be >= 1. */
    std::uint64_t maxPerTick = 1u << 15; // 128 MB
    /** Urgent-expansion watermark: free fraction of the unmovable
     * region below which the region grows regardless of PSI.
     * Valid range [0, 0.5]. */
    double unmovFreeWatermark = 0.08;
    /** Shrink hysteresis: only shrink when the border step would
     * still leave this much of the region free. Valid range [0, 1]. */
    double shrinkFreeSlack = 0.25;

    /**
     * Assign one knob by key: "period", "step", "max", "watermark"
     * or "slack". Unknown keys, malformed numbers and out-of-range
     * values warn (naming the key and the offending value) and leave
     * the current value untouched.
     * @return true iff the value was applied.
     */
    bool set(const std::string &key, const std::string &value);
};

/** Configuration of the Contiguitas OS component. */
struct ContiguitasConfig
{
    RegionManager::Config region;
    ResizeParams resize;
    /** Boundary-resize pacing (period, step, budget, watermarks). */
    ResizeTuning tuning;
    /** Enable the Contiguitas-HW transparent-migration hook. */
    bool hwMigration = false;
    /** Placement bias inside the unmovable region (Section 3.2:
     * allocate away from the border); off = take whatever block the
     * free lists offer first. Ablation knob. */
    bool placementBias = true;
    /** 2 MB blocks defragmented inside the unmovable region per
     * wakeup (0 disables; requires hwMigration for kernel pages). */
    std::uint64_t defragBlocksPerTick = 0;
    /** ZONE_MOVABLE-style baseline: the boundary is fixed at its
     * initial split — no Algorithm 1 controller, no urgent
     * expansion, no expand-on-pin-failure. Confinement and (if
     * budgeted) in-region defrag still apply. */
    bool staticBoundary = false;
};

/**
 * The Contiguitas placement policy.
 */
class ContiguitasPolicy : public MemPolicy
{
  public:
    ContiguitasPolicy(Kernel &kernel, const ContiguitasConfig &config);

    /** Checkpoint restore: adopt serialized regions, controller and
     * policy stats; hooks are re-attached as in cold construction. */
    ContiguitasPolicy(Kernel &kernel, const ContiguitasConfig &config,
                      serde::Reader &in);

    /** Factory for Kernel construction. */
    static Kernel::PolicyFactory
    factory(const ContiguitasConfig &config = {})
    {
        return [config](Kernel &kernel) -> std::unique_ptr<MemPolicy> {
            return std::make_unique<ContiguitasPolicy>(kernel, config);
        };
    }

    /** Factory for the Kernel restore constructor: builds the policy
     * from the serialized stream. The reader must outlive the
     * factory call (Kernel's restore constructor invokes it
     * immediately). */
    static Kernel::PolicyFactory
    restoreFactory(const ContiguitasConfig &config, serde::Reader &in)
    {
        return [config, &in](Kernel &kernel)
                   -> std::unique_ptr<MemPolicy> {
            return std::make_unique<ContiguitasPolicy>(kernel, config,
                                                       in);
        };
    }

    Pfn alloc(const AllocRequest &req) override;
    void free(Pfn head) override;
    Pfn allocGigantic(AllocSource src, std::uint64_t owner) override;
    Pfn pin(Pfn head) override;
    void unpin(Pfn head) override;
    void tick(std::uint32_t now_seconds) override;
    AddrPref placementPref(const AllocRequest &req) const override;
    AddrPref pinPlacementPref() const override;
    std::uint64_t defragBudgetPerTick() const override
    {
        return config_.defragBlocksPerTick;
    }
    std::uint64_t freeUserPages() const override;
    std::uint64_t freeKernelPages() const override;
    /** Deferred resizes retry with per-tick backoff, so coarse
     * stepping must keep the fine cadence while one is queued. */
    bool hasPendingMaintenance() const override
    {
        return regions_.deferredResizePending();
    }
    std::pair<Pfn, Pfn> unmovableRegion() const override;
    BuddyAllocator &movableAllocator() override;
    PhysMem &mem() override { return kernel_.mem(); }

    RegionManager &regions() { return regions_; }
    const RegionManager &regions() const { return regions_; }
    const ResizeController &controller() const { return controller_; }

    struct Stats
    {
        std::uint64_t pinMigrations = 0;
        std::uint64_t pinMigrationFailures = 0;
        std::uint64_t urgentExpansions = 0;
        std::uint64_t controllerExpands = 0;
        std::uint64_t controllerShrinks = 0;
    };

    const Stats &stats() const { return stats_; }

    /** Registers `ctg.*` (policy, region manager, controller) and
     * `mem.unmovable.buddy.*` / `mem.movable.buddy.*` subtrees. */
    void regStats(StatGroup group) const override;

    /** Both region allocators plus region-accounting and confinement
     * checks. */
    void
    attachAuditorChecks(MemAuditor &auditor) override
    {
        regions_.attachAuditorChecks(auditor);
    }

    void saveTo(serde::Writer &out) const override;

  private:
    void runController();

    Kernel &kernel_;
    ContiguitasConfig config_;
    RegionManager regions_;
    ResizeController controller_;
    Stats stats_;
    double lastResizeSec_ = 0.0;
};

} // namespace ctg

#endif // CTG_CONTIGUITAS_POLICY_HH
