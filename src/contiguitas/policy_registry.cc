#include "contiguitas/policy_registry.hh"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "base/arena.hh"
#include "base/logging.hh"
#include "kernel/vanilla_policy.hh"

namespace ctg
{

namespace
{

/** Strict boolean: only the documented spellings (cf. env_config). */
bool
parseBoolStrict(const std::string &text, bool *out)
{
    for (const char *yes : {"1", "on", "ON", "true", "yes"}) {
        if (text == yes) {
            *out = true;
            return true;
        }
    }
    for (const char *no : {"0", "off", "OFF", "false", "no"}) {
        if (text == no) {
            *out = false;
            return true;
        }
    }
    return false;
}

/** Strict decimal u64; rejects sign prefixes and trailing junk. */
bool
parseU64Strict(const std::string &text, std::uint64_t *out)
{
    if (text.empty() || text[0] < '0' || text[0] > '9')
        return false;
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (errno != 0 || end == nullptr || *end != '\0')
        return false;
    *out = v;
    return true;
}

/** Apply one key=value pair of a policy spec; warns and returns
 * false on unknown keys or rejected values. */
bool
applySpecKnob(const std::string &key, const std::string &value,
              PolicyConfig *out)
{
    if (key == "bias" || key == "hw" || key == "static") {
        bool v = false;
        if (!parseBoolStrict(value, &v)) {
            warn_once("CTG_POLICY: malformed boolean %s=%s ignored",
                      key.c_str(), value.c_str());
            return false;
        }
        if (key == "bias")
            out->contiguitas.placementBias = v;
        else if (key == "hw")
            out->contiguitas.hwMigration = v;
        else
            out->contiguitas.staticBoundary = v;
        return true;
    }
    if (key == "defrag") {
        std::uint64_t v = 0;
        if (!parseU64Strict(value, &v)) {
            warn_once("CTG_POLICY: malformed defrag=%s ignored",
                      value.c_str());
            return false;
        }
        out->contiguitas.defragBlocksPerTick = v;
        return true;
    }
    if (key == "initial") {
        std::uint64_t v = 0;
        if (!parseU64Strict(value, &v)) {
            warn_once("CTG_POLICY: malformed initial=%s ignored",
                      value.c_str());
            return false;
        }
        out->contiguitas.region.initialUnmovablePages = v;
        return true;
    }
    if (key == "period" || key == "step" || key == "max" ||
        key == "watermark" || key == "slack") {
        // ResizeTuning::set warns itself, naming key and value.
        return out->contiguitas.tuning.set(key, value);
    }
    warn_once("CTG_POLICY: unknown knob %s=%s ignored", key.c_str(),
              value.c_str());
    return false;
}

} // namespace

const std::string &
PolicyConfig::resolvedName() const
{
    static const std::string fallback = "vanilla";
    return name.empty() ? fallback : name;
}

bool
parsePolicySpec(const std::string &spec, PolicyConfig *out)
{
    std::string name = spec;
    std::string knobs;
    const std::size_t colon = spec.find(':');
    if (colon != std::string::npos) {
        name = spec.substr(0, colon);
        knobs = spec.substr(colon + 1);
    }

    if (!name.empty() && !PolicyRegistry::instance().has(name)) {
        warn_once("CTG_POLICY: unknown policy '%s'", name.c_str());
        return false;
    }
    out->name = name;

    // Apply the built-in preset for derived entries first, so
    // explicit key=val pairs can still override it.
    if (name == "contiguitas-nobias")
        out->contiguitas.placementBias = false;
    else if (name == "zone-movable")
        out->contiguitas.staticBoundary = true;

    std::size_t pos = 0;
    while (pos < knobs.size()) {
        std::size_t comma = knobs.find(',', pos);
        if (comma == std::string::npos)
            comma = knobs.size();
        const std::string pair = knobs.substr(pos, comma - pos);
        pos = comma + 1;
        if (pair.empty())
            continue;
        const std::size_t eq = pair.find('=');
        if (eq == std::string::npos || eq == 0) {
            warn_once("CTG_POLICY: malformed pair '%s' ignored "
                      "(want key=value)", pair.c_str());
            continue;
        }
        applySpecKnob(pair.substr(0, eq), pair.substr(eq + 1), out);
    }
    return true;
}

PolicyRegistry &
PolicyRegistry::instance()
{
    // First use may come from a pooled fleet worker whose thread is
    // routing allocations into a task arena that is rewound between
    // servers; the registry outlives every task, so its storage must
    // come from the host heap.
    const ArenaSuspend off;
    static PolicyRegistry registry;
    return registry;
}

PolicyRegistry::PolicyRegistry()
{
    const auto ctg_make = [](Kernel &kernel,
                             const PolicyConfig &config)
        -> std::unique_ptr<MemPolicy> {
        return std::make_unique<ContiguitasPolicy>(kernel,
                                                   config.contiguitas);
    };
    const auto ctg_restore = [](Kernel &kernel,
                                const PolicyConfig &config,
                                serde::Reader &in)
        -> std::unique_ptr<MemPolicy> {
        return std::make_unique<ContiguitasPolicy>(
            kernel, config.contiguitas, in);
    };

    entries_.push_back(
        {"vanilla", "single buddy allocator, Linux fallback stealing",
         [](Kernel &kernel, const PolicyConfig &)
             -> std::unique_ptr<MemPolicy> {
             return std::make_unique<VanillaPolicy>(kernel.mem());
         },
         [](Kernel &kernel, const PolicyConfig &, serde::Reader &in)
             -> std::unique_ptr<MemPolicy> {
             return std::make_unique<VanillaPolicy>(kernel.mem(), in);
         }});

    entries_.push_back(
        {"contiguitas",
         "two regions, Algorithm 1 resizing, placement bias",
         ctg_make, ctg_restore});

    // Derived entries share the contiguitas factories — the preset
    // lives in the config, applied by parsePolicySpec and (for
    // programmatic construction) re-applied here so a bare name
    // behaves identically either way.
    entries_.push_back(
        {"contiguitas-nobias",
         "contiguitas with the Section 3.2 placement bias disabled",
         [ctg_make](Kernel &kernel, const PolicyConfig &config) {
             PolicyConfig preset = config;
             preset.contiguitas.placementBias = false;
             return ctg_make(kernel, preset);
         },
         [ctg_restore](Kernel &kernel, const PolicyConfig &config,
                       serde::Reader &in) {
             PolicyConfig preset = config;
             preset.contiguitas.placementBias = false;
             return ctg_restore(kernel, preset, in);
         }});

    entries_.push_back(
        {"zone-movable",
         "static boundary split (ZONE_MOVABLE): confinement without "
         "dynamic resizing",
         [ctg_make](Kernel &kernel, const PolicyConfig &config) {
             PolicyConfig preset = config;
             preset.contiguitas.staticBoundary = true;
             return ctg_make(kernel, preset);
         },
         [ctg_restore](Kernel &kernel, const PolicyConfig &config,
                       serde::Reader &in) {
             PolicyConfig preset = config;
             preset.contiguitas.staticBoundary = true;
             return ctg_restore(kernel, preset, in);
         }});
}

void
PolicyRegistry::add(Entry entry)
{
    std::lock_guard<std::mutex> guard(mutex_);
    for (Entry &existing : entries_) {
        if (existing.name == entry.name) {
            existing = std::move(entry);
            return;
        }
    }
    entries_.push_back(std::move(entry));
}

void
PolicyRegistry::remove(const std::string &name)
{
    std::lock_guard<std::mutex> guard(mutex_);
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->name == name) {
            entries_.erase(it);
            return;
        }
    }
}

bool
PolicyRegistry::find(const std::string &name, Entry *out) const
{
    std::lock_guard<std::mutex> guard(mutex_);
    for (const Entry &entry : entries_) {
        if (entry.name == name) {
            *out = entry;
            return true;
        }
    }
    return false;
}

bool
PolicyRegistry::has(const std::string &name) const
{
    std::lock_guard<std::mutex> guard(mutex_);
    for (const Entry &entry : entries_) {
        if (entry.name == name)
            return true;
    }
    return false;
}

std::vector<PolicyRegistry::Entry>
PolicyRegistry::entries() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return entries_;
}

} // namespace ctg
