/**
 * @file
 * String-named registry of placement policies.
 *
 * Policy construction is registry-driven: a PolicyConfig names a
 * policy ("vanilla", "contiguitas", ...) and carries the knobs every
 * entry can draw on; the registry maps the name to {make, restore}
 * factories. Servers, the fleet, env overlays (CTG_POLICY) and the
 * snapshot layer all select policies through this one table, so a
 * new policy added here is immediately sweepable by every bench and
 * restorable from every checkpoint.
 *
 * Built-in entries:
 *   vanilla            — one buddy allocator, Linux fallback stealing
 *   contiguitas        — two regions, Algorithm 1 resizing, bias
 *   contiguitas-nobias — contiguitas with placement bias disabled
 *   zone-movable       — static boundary (ZONE_MOVABLE baseline):
 *                        confinement without dynamic resizing
 *
 * Adding a policy is ~a dozen lines: derive a config preset (or a
 * MemPolicy subclass overriding the decision hooks in
 * kernel/policy.hh) and PolicyRegistry::instance().add({...}).
 */

#ifndef CTG_CONTIGUITAS_POLICY_REGISTRY_HH
#define CTG_CONTIGUITAS_POLICY_REGISTRY_HH

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "contiguitas/policy.hh"

namespace ctg
{

/**
 * Unified policy selection: a registry name plus the knob set the
 * built-in entries draw on. An empty name means "not chosen yet";
 * Server resolves it against CTG_POLICY and defaults to "vanilla".
 */
struct PolicyConfig
{
    /** Registry name; empty = unresolved (CTG_POLICY, else
     * "vanilla"). */
    std::string name;
    /** Knob set for the contiguitas-family entries; ignored by
     * policies that have no region machinery (vanilla). */
    ContiguitasConfig contiguitas;

    /** The name with defaulting applied (empty -> "vanilla"). */
    const std::string &resolvedName() const;
};

/**
 * Parse a `name[:key=val,...]` policy spec (the CTG_POLICY grammar)
 * into @p out. Strict-parser discipline: malformed pairs and unknown
 * or out-of-range keys warn (naming key and value) and are skipped —
 * they never abort the run or clamp silently.
 *
 * Keys: bias/hw/static (bool: 1/0/true/false/on/off/yes/no),
 * defrag/initial (u64 blocks / pages), and the ResizeTuning knobs
 * period/step/max/watermark/slack.
 *
 * @return false iff the (non-empty) name is not registered; the
 *         caller decides whether that is fatal.
 */
bool parsePolicySpec(const std::string &spec, PolicyConfig *out);

/**
 * The process-wide name -> factory table. Reads and writes are
 * mutex-guarded: fleet workers construct servers concurrently.
 */
class PolicyRegistry
{
  public:
    using MakeFn = std::function<std::unique_ptr<MemPolicy>(
        Kernel &, const PolicyConfig &)>;
    using RestoreFn = std::function<std::unique_ptr<MemPolicy>(
        Kernel &, const PolicyConfig &, serde::Reader &)>;

    struct Entry
    {
        std::string name;
        std::string description;
        MakeFn make;
        RestoreFn restore;
    };

    /** The singleton, with the four built-ins pre-registered. */
    static PolicyRegistry &instance();

    /** Register (or replace) an entry. */
    void add(Entry entry);

    /** Drop an entry (tests); built-ins can be re-added via add(). */
    void remove(const std::string &name);

    /** Look up by exact name; empty optional-like nullptr-by-copy:
     * returns false and leaves @p out untouched when unknown. */
    bool find(const std::string &name, Entry *out) const;

    /** True iff @p name is registered. */
    bool has(const std::string &name) const;

    /** Snapshot of all entries, in registration order. */
    std::vector<Entry> entries() const;

  private:
    PolicyRegistry();

    mutable std::mutex mutex_;
    std::vector<Entry> entries_;
};

} // namespace ctg

#endif // CTG_CONTIGUITAS_POLICY_REGISTRY_HH
