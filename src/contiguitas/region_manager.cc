#include "contiguitas/region_manager.hh"

#include <algorithm>

#include "base/serde.hh"
#include "base/span_trace.hh"
#include "base/trace.hh"
#include "kernel/migrate.hh"
#include "sim/fault_injector.hh"

namespace ctg
{

namespace
{

constexpr Pfn resizeAlign = Pfn{1} << maxOrder;

Pfn
roundUpToAlign(Pfn pages)
{
    return (pages + resizeAlign - 1) & ~(resizeAlign - 1);
}

} // namespace

RegionManager::RegionManager(PhysMem &mem, OwnerRegistry &owners,
                             Config config)
    : mem_(mem), owners_(owners), config_(config)
{
    const Pfn total = mem.numFrames();
    if (config_.initialUnmovablePages == 0)
        config_.initialUnmovablePages = total / 16;
    if (config_.maxUnmovablePages == 0)
        config_.maxUnmovablePages = total / 2;
    config_.minUnmovablePages =
        roundUpToAlign(config_.minUnmovablePages);

    const Pfn boundary = std::clamp(
        roundUpToAlign(config_.initialUnmovablePages),
        config_.minUnmovablePages, total / 2);
    unmovable_ = std::make_unique<BuddyAllocator>(
        mem, 0, boundary, "unmovable", MigrateType::Unmovable);
    movable_ = std::make_unique<BuddyAllocator>(
        mem, boundary, total, "movable", MigrateType::Movable);
}

RegionManager::RegionManager(PhysMem &mem, OwnerRegistry &owners,
                             Config config, serde::Reader &in)
    : mem_(mem), owners_(owners), config_(config)
{
    const Pfn total = mem.numFrames();
    if (config_.initialUnmovablePages == 0)
        config_.initialUnmovablePages = total / 16;
    if (config_.maxUnmovablePages == 0)
        config_.maxUnmovablePages = total / 2;
    config_.minUnmovablePages =
        roundUpToAlign(config_.minUnmovablePages);

    unmovable_ = std::make_unique<BuddyAllocator>(mem, in);
    movable_ = std::make_unique<BuddyAllocator>(mem, in);
    if (unmovable_->startPfn() != 0 ||
        unmovable_->endPfn() != movable_->startPfn() ||
        movable_->endPfn() != total)
        throw serde::Error(
            "region manager: allocators do not tile memory");
    const Pfn boundary = unmovable_->endPfn();
    if (boundary % resizeAlign != 0 ||
        boundary < config_.minUnmovablePages ||
        boundary > config_.maxUnmovablePages)
        throw serde::Error(
            "region manager: restored boundary out of bounds");

    if (in.getBool()) {
        DeferredResize d;
        d.expand = in.getBool();
        d.pages = in.getU64();
        d.attempts = in.getU32();
        d.waitPumps = in.getU32();
        if (d.attempts > maxResizeRetries ||
            d.waitPumps > maxResizeBackoff)
            throw serde::Error(
                "region manager: deferred resize out of bounds");
        deferred_ = d;
    }
    Stats &s = stats_;
    for (std::uint64_t *field :
         {&s.expansions, &s.expansionFailures, &s.shrinks,
          &s.shrinkFailures, &s.evacuatedBlocks, &s.hwMigrations,
          &s.injectedEvacFails, &s.deferredEnqueued,
          &s.deferredRetries, &s.deferredCompleted,
          &s.deferredDropped, &s.deferredSuperseded})
        *field = in.getU64();
}

void
RegionManager::saveTo(serde::Writer &out) const
{
    unmovable_->saveTo(out);
    movable_->saveTo(out);
    out.putBool(deferred_.has_value());
    if (deferred_) {
        out.putBool(deferred_->expand);
        out.putU64(deferred_->pages);
        out.putU32(deferred_->attempts);
        out.putU32(deferred_->waitPumps);
    }
    const Stats &s = stats_;
    for (const std::uint64_t field :
         {s.expansions, s.expansionFailures, s.shrinks,
          s.shrinkFailures, s.evacuatedBlocks, s.hwMigrations,
          s.injectedEvacFails, s.deferredEnqueued, s.deferredRetries,
          s.deferredCompleted, s.deferredDropped,
          s.deferredSuperseded})
        out.putU64(field);
}

bool
RegionManager::hwMigrateBlock(BuddyAllocator &alloc, Pfn src,
                              AddrPref pref, Pfn *out_dst)
{
    if (!hwEnabled_)
        return false;

    CTG_SPAN_NAMED(span, Region, "region.hw_migrate",
                   {{"src", static_cast<std::int64_t>(src)}});

    const auto sf = mem_.frame(src);
    ctg_assert(!sf.isFree() && sf.isHead());
    // Contiguitas-HW moves pages whose translations can be
    // repointed: pinned user memory, IOMMU-mapped buffers, device
    // rings. Linear-map structures (slab, page tables, kernel text)
    // have raw pointers strewn through memory — not even hardware
    // redirection makes those movable (Section 2.1, type 1).
    const std::uint64_t owner = sf.owner();
    if (!owners_.relocatable(owner))
        return false;
    const unsigned order = sf.order();
    const MigrateType mt = sf.migrateType();
    const AllocSource source = sf.source();
    const bool pinned = sf.isPinned();

    const Pfn dst = alloc.allocPages(order, mt, source, owner, pref,
                                     /*allow_fallback=*/true);
    if (dst == invalidPfn)
        return false;

    // The LLC migration extension keeps the page accessible while it
    // is copied; software repoints the translation concurrently.
    if (!owners_.relocate(owner, src, dst)) {
        alloc.freePages(dst);
        return false;
    }
    if (pinned) {
        const Pfn count = Pfn{1} << order;
        mem_.setRangePinned(dst, dst + count, true);
        if (pinMoved_)
            pinMoved_(src, dst);
    }
    alloc.freePages(src);
    if (hwHook_)
        hwHook_(src, dst, order);
    ++stats_.hwMigrations;
    if (out_dst != nullptr)
        *out_dst = dst;
    span.arg("dst", static_cast<std::int64_t>(dst));
    span.arg("order", order);
    return true;
}

bool
RegionManager::evacuateBlock(BuddyAllocator &alloc, Pfn head,
                             Pfn range_lo, Pfn range_hi, bool allow_hw)
{
    (void)range_lo;
    (void)range_hi;

    CTG_SPAN_NAMED(span, Region, "region.evacuate_block",
                   {{"head", static_cast<std::int64_t>(head)}});

    // Injected evacuation veto: the block behaves as if nothing —
    // not even Contiguitas-HW — could move it right now, forcing the
    // resize onto its failure/retry path.
    if (faultInjector().shouldFail(FaultSite::RegionEvacFail)) {
        ++stats_.injectedEvacFails;
        CTG_DPRINTF(Region, "injected evacuation failure at %llu",
                    static_cast<unsigned long long>(head));
        return false;
    }

    const auto f = mem_.frame(head);
    // Pick a destination list the region actually has free space on:
    // the frame's own migratetype, falling back across lists.
    const MigrateType dst_mt =
        f.migrateType() == MigrateType::Isolate
            ? MigrateType::Unmovable
            : f.migrateType();
    const AddrPref pref =
        &alloc == unmovable_.get() ? AddrPref::Low : AddrPref::None;

    const MigrateResult r =
        migrateBlock(alloc, alloc, owners_, head, pref, dst_mt,
                     nullptr, /*allow_fallback=*/true);
    if (r == MigrateResult::Ok) {
        ++stats_.evacuatedBlocks;
        return true;
    }
    if (r == MigrateResult::NoMemory)
        return false;
    // Software cannot move it; only Contiguitas-HW can.
    if (allow_hw && hwMigrateBlock(alloc, head, pref, nullptr)) {
        ++stats_.evacuatedBlocks;
        return true;
    }
    return false;
}

bool
RegionManager::evacuateRange(BuddyAllocator &alloc, Pfn lo, Pfn hi)
{
    CTG_SPAN(Region, "region.evacuate_range",
             {{"lo", static_cast<std::int64_t>(lo)},
              {"hi", static_cast<std::int64_t>(hi)}});

    if (mem_.contigIndexReads()) {
        // Hop between allocated heads; the range is isolated, so
        // evacuation destinations always land outside [lo, hi) and
        // each re-query sees exactly the state the linear walk
        // would at the same head.
        const ContigIndex &idx = mem_.contigIndex();
        Pfn pfn = lo;
        while (pfn < hi) {
            pfn = idx.firstAllocatedFrame(pfn, hi);
            if (pfn == invalidPfn)
                return true;
            const auto f = mem_.frame(pfn);
            if (!f.isHead()) {
                ++pfn;
                continue;
            }
            const Pfn span = Pfn{1} << f.order();
            if (!evacuateBlock(alloc, pfn, lo, hi, hwEnabled_))
                return false;
            pfn += span;
        }
        return true;
    }

    for (Pfn pfn = lo; pfn < hi;) {
        const auto f = mem_.frame(pfn);
        if (f.isFree() || !f.isHead()) {
            ++pfn;
            continue;
        }
        const Pfn span = Pfn{1} << f.order();
        if (!evacuateBlock(alloc, pfn, lo, hi, hwEnabled_))
            return false;
        pfn += span;
    }
    return true;
}

std::uint64_t
RegionManager::tryExpand(std::uint64_t pages,
                         bool *evacuation_blocked)
{
    if (evacuation_blocked != nullptr)
        *evacuation_blocked = false;
    const Pfn step = roundUpToAlign(pages);
    CTG_SPAN_NAMED(span, Region, "region.expand",
                   {{"pages", static_cast<std::int64_t>(step)},
                    {"boundary",
                     static_cast<std::int64_t>(boundary())}});
    const Pfn lo = boundary();
    const Pfn hi = lo + step;
    if (hi > movable_->endPfn() ||
        lo + step > config_.maxUnmovablePages ||
        step >= movable_->totalPages()) {
        ++stats_.expansionFailures;
        span.arg("rejected", 1);
        return 0;
    }

    movable_->isolateRange(lo, hi);

    const bool ok = evacuateRange(*movable_, lo, hi);

    if (!ok || !movable_->rangeFullyFree(lo, hi)) {
        movable_->unisolateRange(lo, hi, MigrateType::Movable);
        ++stats_.expansionFailures;
        if (evacuation_blocked != nullptr)
            *evacuation_blocked = true;
        span.arg("blocked", 1);
        return 0;
    }
    span.arg("moved", static_cast<std::int64_t>(step));

    movable_->detachRange(lo, hi);
    unmovable_->attachRange(lo, hi, MigrateType::Unmovable);
    ++stats_.expansions;
    CTG_DPRINTF(Region, "expand unmovable by %llu pages; boundary %llu",
                static_cast<unsigned long long>(step),
                static_cast<unsigned long long>(boundary()));
    return step;
}

std::uint64_t
RegionManager::tryShrink(std::uint64_t pages,
                         bool *evacuation_blocked)
{
    if (evacuation_blocked != nullptr)
        *evacuation_blocked = false;
    const Pfn step = roundUpToAlign(pages);
    CTG_SPAN_NAMED(span, Region, "region.shrink",
                   {{"pages", static_cast<std::int64_t>(step)},
                    {"boundary",
                     static_cast<std::int64_t>(boundary())}});
    const Pfn hi = boundary();
    if (step >= hi || hi - step < config_.minUnmovablePages) {
        ++stats_.shrinkFailures;
        span.arg("rejected", 1);
        return 0;
    }
    const Pfn lo = hi - step;

    unmovable_->isolateRange(lo, hi);

    const bool ok = evacuateRange(*unmovable_, lo, hi);

    if (!ok || !unmovable_->rangeFullyFree(lo, hi)) {
        unmovable_->unisolateRange(lo, hi, MigrateType::Unmovable);
        ++stats_.shrinkFailures;
        if (evacuation_blocked != nullptr)
            *evacuation_blocked = true;
        span.arg("blocked", 1);
        return 0;
    }
    span.arg("moved", static_cast<std::int64_t>(step));

    unmovable_->detachRange(lo, hi);
    movable_->attachRange(lo, hi, MigrateType::Movable);
    ++stats_.shrinks;
    CTG_DPRINTF(Region, "shrink unmovable by %llu pages; boundary %llu",
                static_cast<unsigned long long>(step),
                static_cast<unsigned long long>(boundary()));
    return step;
}

std::uint64_t
RegionManager::expandUnmovable(std::uint64_t pages)
{
    bool evacuation_blocked = false;
    const std::uint64_t moved = tryExpand(pages, &evacuation_blocked);
    // Only evacuation failures are transient; bounds rejections are
    // not retried (the controller will re-evaluate anyway).
    if (moved == 0 && evacuation_blocked)
        deferResize(/*expand=*/true, pages);
    return moved;
}

std::uint64_t
RegionManager::shrinkUnmovable(std::uint64_t pages)
{
    bool evacuation_blocked = false;
    const std::uint64_t moved = tryShrink(pages, &evacuation_blocked);
    if (moved == 0 && evacuation_blocked)
        deferResize(/*expand=*/false, pages);
    return moved;
}

void
RegionManager::deferResize(bool expand, std::uint64_t pages)
{
    if (deferred_ && deferred_->expand == expand) {
        // Merge with the queued request; the larger goal wins and
        // the backoff clock keeps running.
        deferred_->pages = std::max(deferred_->pages, pages);
        return;
    }
    if (deferred_) {
        // Opposite direction queued: the controller changed its
        // mind, so the stale request is superseded rather than
        // retried against current pressure.
        ++stats_.deferredSuperseded;
    }
    DeferredResize d;
    d.expand = expand;
    d.pages = pages;
    d.attempts = 1;
    d.waitPumps = std::min(2u, maxResizeBackoff);
    deferred_ = d;
    ++stats_.deferredEnqueued;
    CTG_SPAN_EVENT(Region, "region.defer_resize",
                   {{"expand", expand ? 1 : 0},
                    {"pages", static_cast<std::int64_t>(pages)}});
    CTG_DPRINTF(Region, "deferred %s of %llu pages (attempt 1)",
                expand ? "expansion" : "shrink",
                static_cast<unsigned long long>(pages));
}

std::uint64_t
RegionManager::pumpDeferredResizes()
{
    if (!deferred_)
        return 0;
    if (deferred_->waitPumps > 0) {
        --deferred_->waitPumps;
        CTG_SPAN_EVENT(Region, "region.defer_backoff",
                       {{"expand", deferred_->expand ? 1 : 0},
                        {"wait_pumps", deferred_->waitPumps + 1},
                        {"attempts", deferred_->attempts}});
        return 0;
    }

    CTG_SPAN_NAMED(span, Region, "region.pump_deferred",
                   {{"expand", deferred_->expand ? 1 : 0},
                    {"pages",
                     static_cast<std::int64_t>(deferred_->pages)},
                    {"attempt", deferred_->attempts + 1}});
    ++stats_.deferredRetries;
    bool evacuation_blocked = false;
    const std::uint64_t moved =
        deferred_->expand
            ? tryExpand(deferred_->pages, &evacuation_blocked)
            : tryShrink(deferred_->pages, &evacuation_blocked);
    if (moved != 0) {
        ++stats_.deferredCompleted;
        CTG_DPRINTF(Region, "deferred %s succeeded after %u attempts",
                    deferred_->expand ? "expansion" : "shrink",
                    deferred_->attempts + 1);
        span.arg("completed", 1);
        deferred_.reset();
        return moved;
    }

    ++deferred_->attempts;
    if (!evacuation_blocked || deferred_->attempts > maxResizeRetries) {
        // Structural rejection (region hit a bound since we queued)
        // or out of retries: stop.
        ++stats_.deferredDropped;
        CTG_DPRINTF(Region, "deferred %s dropped after %u attempts",
                    deferred_->expand ? "expansion" : "shrink",
                    deferred_->attempts);
        span.arg("dropped", 1);
        deferred_.reset();
        return 0;
    }
    // Capped exponential backoff: 2, 4, 8, 8, ... pump calls.
    deferred_->waitPumps =
        std::min(1u << deferred_->attempts, maxResizeBackoff);
    return 0;
}

std::uint64_t
RegionManager::defragUnmovable(std::uint64_t max_migrations)
{
    CTG_SPAN_NAMED(defrag_span, Region, "region.defrag",
                   {{"budget",
                     static_cast<std::int64_t>(max_migrations)}});
    std::uint64_t migrated = 0;
    const Pfn end = boundary();
    const bool indexed = mem_.contigIndexReads();

    // Walk 2 MB blocks top-down (near the border first) and evacuate
    // sparse ones toward the low end of the region. With index paths
    // on, occupancy comes from one subtree query per block and the
    // inner walk hops between allocated heads; selection and
    // migration order match the frame walk exactly because each
    // query runs at the same point in the mutation sequence.
    for (Pfn block = end; block >= pagesPerHuge && migrated < max_migrations;
         block -= pagesPerHuge) {
        const Pfn base = block - pagesPerHuge;
        std::uint64_t used = 0;
        if (indexed) {
            used = pagesPerHuge -
                   mem_.contigIndex().freePagesIn(base, block);
        } else {
            for (Pfn pfn = base; pfn < block; ++pfn) {
                if (!mem_.frame(pfn).isFree())
                    ++used;
            }
        }
        if (used == 0 || used > pagesPerHuge / 2)
            continue;

        for (Pfn pfn = base; pfn < block && migrated < max_migrations;) {
            if (indexed) {
                pfn = mem_.contigIndex().firstAllocatedFrame(pfn,
                                                             block);
                if (pfn == invalidPfn)
                    break;
            }
            const auto f = mem_.frame(pfn);
            if (f.isFree() || !f.isHead()) {
                ++pfn;
                continue;
            }
            const Pfn span = Pfn{1} << f.order();
            Pfn dst = invalidPfn;
            const MigrateResult r = migrateBlock(
                *unmovable_, *unmovable_, owners_, pfn, AddrPref::Low,
                f.migrateType(), &dst, /*allow_fallback=*/true);
            bool moved = r == MigrateResult::Ok;
            if (!moved && r == MigrateResult::Unmovable && hwEnabled_)
                moved = hwMigrateBlock(*unmovable_, pfn,
                                       AddrPref::Low, &dst);
            if (moved && dst != invalidPfn && dst >= base) {
                // Destination landed back in the sparse block; give
                // up on this block to avoid thrash.
                ++migrated;
                break;
            }
            if (moved)
                ++migrated;
            pfn += span;
        }
    }
    defrag_span.arg("migrated", static_cast<std::int64_t>(migrated));
    return migrated;
}

void
RegionManager::regStats(StatGroup group) const
{
    group.gauge("expansions",
                [this] { return double(stats_.expansions); },
                "successful unmovable-region growths");
    group.gauge("expansion_failures",
                [this] { return double(stats_.expansionFailures); });
    group.gauge("shrinks",
                [this] { return double(stats_.shrinks); },
                "successful unmovable-region shrinks");
    group.gauge("shrink_failures",
                [this] { return double(stats_.shrinkFailures); });
    group.gauge("evacuated_blocks",
                [this] { return double(stats_.evacuatedBlocks); },
                "blocks moved out of a resizing border range");
    group.gauge("hw_migrations",
                [this] { return double(stats_.hwMigrations); },
                "blocks only Contiguitas-HW could move");
    group.gauge("boundary_pfn",
                [this] { return double(boundary()); },
                "unmovable region covers [0, boundary)");
    group.gauge("unmovable_pages",
                [this] { return double(unmovable_->totalPages()); });
    group.gauge("injected_evac_fails",
                [this] { return double(stats_.injectedEvacFails); },
                "evacuations vetoed by the fault injector");
    group.gauge("deferred_enqueued",
                [this] { return double(stats_.deferredEnqueued); },
                "failed resizes queued for retry");
    group.gauge("deferred_retries",
                [this] { return double(stats_.deferredRetries); });
    group.gauge("deferred_completed",
                [this] { return double(stats_.deferredCompleted); },
                "queued resizes that eventually succeeded");
    group.gauge("deferred_dropped",
                [this] { return double(stats_.deferredDropped); },
                "queued resizes abandoned after the retry cap");
    group.gauge("deferred_superseded",
                [this] { return double(stats_.deferredSuperseded); },
                "queued resizes replaced by the opposite direction");
}

void
RegionManager::auditConfinement(AuditReport &report) const
{
    const Pfn b = boundary();
    const Pfn n = mem_.numFrames();

    if (mem_.contigIndexReads()) {
        // The violating frames are exactly the movable-migratetype
        // allocations inside [0, b) and the unmovable allocations in
        // [b, n); enumerate only those via index descents, in the
        // same ascending frame order as the reference walk. Stop
        // once the report is full — further violation() calls would
        // be dropped anyway.
        const ContigIndex &idx = mem_.contigIndex();
        for (Pfn pfn = idx.firstMovableMtFrame(0, b);
             pfn != invalidPfn;) {
            report.violation(
                "movable allocation at %llu inside unmovable "
                "region [0, %llu)",
                static_cast<unsigned long long>(pfn),
                static_cast<unsigned long long>(b));
            if (report.violations.size() >= AuditReport::maxViolations)
                return;
            const Pfn next = pfn + 1;
            pfn = next >= b ? invalidPfn
                            : idx.firstMovableMtFrame(next, b);
        }
        for (Pfn pfn = idx.firstUnmovableFrame(b, n);
             pfn != invalidPfn;) {
            report.violation(
                "unmovable allocation at %llu outside the "
                "unmovable region [0, %llu)",
                static_cast<unsigned long long>(pfn),
                static_cast<unsigned long long>(b));
            if (report.violations.size() >= AuditReport::maxViolations)
                return;
            const Pfn next = pfn + 1;
            pfn = next >= n ? invalidPfn
                            : idx.firstUnmovableFrame(next, n);
        }
        return;
    }

    for (Pfn pfn = 0; pfn < n; ++pfn) {
        const auto f = mem_.frame(pfn);
        if (f.isFree())
            continue;
        if (pfn < b) {
            if (f.migrateType() == MigrateType::Movable)
                report.violation(
                    "movable allocation at %llu inside unmovable "
                    "region [0, %llu)",
                    static_cast<unsigned long long>(pfn),
                    static_cast<unsigned long long>(b));
        } else {
            if (f.isUnmovableAllocation())
                report.violation(
                    "unmovable allocation at %llu outside the "
                    "unmovable region [0, %llu)",
                    static_cast<unsigned long long>(pfn),
                    static_cast<unsigned long long>(b));
        }
    }
}

void
RegionManager::checkConfinement() const
{
    AuditReport report;
    auditConfinement(report);
    if (!report.ok())
        panic("%s", report.violations.front().c_str());
}

void
RegionManager::attachAuditorChecks(MemAuditor &auditor)
{
    auditor.addAllocator(unmovable_.get());
    auditor.addAllocator(movable_.get());
    auditor.addCheck("region.accounting", [this](AuditReport &r) {
        if (unmovable_->startPfn() != 0)
            r.violation("unmovable region starts at %llu, not 0",
                        static_cast<unsigned long long>(
                            unmovable_->startPfn()));
        if (unmovable_->endPfn() != movable_->startPfn())
            r.violation(
                "regions not adjacent: unmovable ends %llu, movable "
                "starts %llu",
                static_cast<unsigned long long>(unmovable_->endPfn()),
                static_cast<unsigned long long>(
                    movable_->startPfn()));
        if (movable_->endPfn() != mem_.numFrames())
            r.violation(
                "movable region ends at %llu, not %llu",
                static_cast<unsigned long long>(movable_->endPfn()),
                static_cast<unsigned long long>(mem_.numFrames()));
        if (unmovable_->totalPages() > config_.maxUnmovablePages)
            r.violation(
                "unmovable region %llu pages exceeds cap %llu",
                static_cast<unsigned long long>(
                    unmovable_->totalPages()),
                static_cast<unsigned long long>(
                    config_.maxUnmovablePages));
    });
    auditor.addCheck("region.confinement", [this](AuditReport &r) {
        auditConfinement(r);
    });
}

} // namespace ctg
