#include "contiguitas/region_manager.hh"

#include <algorithm>

#include "base/trace.hh"
#include "kernel/migrate.hh"

namespace ctg
{

namespace
{

constexpr Pfn resizeAlign = Pfn{1} << maxOrder;

Pfn
roundUpToAlign(Pfn pages)
{
    return (pages + resizeAlign - 1) & ~(resizeAlign - 1);
}

} // namespace

RegionManager::RegionManager(PhysMem &mem, OwnerRegistry &owners,
                             Config config)
    : mem_(mem), owners_(owners), config_(config)
{
    const Pfn total = mem.numFrames();
    if (config_.initialUnmovablePages == 0)
        config_.initialUnmovablePages = total / 16;
    if (config_.maxUnmovablePages == 0)
        config_.maxUnmovablePages = total / 2;
    config_.minUnmovablePages =
        roundUpToAlign(config_.minUnmovablePages);

    const Pfn boundary = std::clamp(
        roundUpToAlign(config_.initialUnmovablePages),
        config_.minUnmovablePages, total / 2);
    unmovable_ = std::make_unique<BuddyAllocator>(
        mem, 0, boundary, "unmovable", MigrateType::Unmovable);
    movable_ = std::make_unique<BuddyAllocator>(
        mem, boundary, total, "movable", MigrateType::Movable);
}

bool
RegionManager::hwMigrateBlock(BuddyAllocator &alloc, Pfn src,
                              AddrPref pref, Pfn *out_dst)
{
    if (!hwEnabled_)
        return false;

    const PageFrame &sf = mem_.frame(src);
    ctg_assert(!sf.isFree() && sf.isHead());
    // Contiguitas-HW moves pages whose translations can be
    // repointed: pinned user memory, IOMMU-mapped buffers, device
    // rings. Linear-map structures (slab, page tables, kernel text)
    // have raw pointers strewn through memory — not even hardware
    // redirection makes those movable (Section 2.1, type 1).
    if (!owners_.relocatable(sf.owner))
        return false;
    const unsigned order = sf.order;
    const MigrateType mt = sf.migrateType;
    const AllocSource source = sf.source;
    const std::uint64_t owner = sf.owner;
    const bool pinned = sf.isPinned();

    const Pfn dst = alloc.allocPages(order, mt, source, owner, pref,
                                     /*allow_fallback=*/true);
    if (dst == invalidPfn)
        return false;

    // The LLC migration extension keeps the page accessible while it
    // is copied; software repoints the translation concurrently.
    if (!owners_.relocate(owner, src, dst)) {
        alloc.freePages(dst);
        return false;
    }
    if (pinned) {
        const Pfn count = Pfn{1} << order;
        for (Pfn pfn = dst; pfn < dst + count; ++pfn)
            mem_.frame(pfn).setPinned(true);
        if (pinMoved_)
            pinMoved_(src, dst);
    }
    alloc.freePages(src);
    if (hwHook_)
        hwHook_(src, dst, order);
    ++stats_.hwMigrations;
    if (out_dst != nullptr)
        *out_dst = dst;
    return true;
}

bool
RegionManager::evacuateBlock(BuddyAllocator &alloc, Pfn head,
                             Pfn range_lo, Pfn range_hi, bool allow_hw)
{
    (void)range_lo;
    (void)range_hi;
    const PageFrame &f = mem_.frame(head);
    // Pick a destination list the region actually has free space on:
    // the frame's own migratetype, falling back across lists.
    const MigrateType dst_mt =
        f.migrateType == MigrateType::Isolate ? MigrateType::Unmovable
                                              : f.migrateType;
    const AddrPref pref =
        &alloc == unmovable_.get() ? AddrPref::Low : AddrPref::None;

    const MigrateResult r =
        migrateBlock(alloc, alloc, owners_, head, pref, dst_mt,
                     nullptr, /*allow_fallback=*/true);
    if (r == MigrateResult::Ok) {
        ++stats_.evacuatedBlocks;
        return true;
    }
    if (r == MigrateResult::NoMemory)
        return false;
    // Software cannot move it; only Contiguitas-HW can.
    if (allow_hw && hwMigrateBlock(alloc, head, pref, nullptr)) {
        ++stats_.evacuatedBlocks;
        return true;
    }
    return false;
}

std::uint64_t
RegionManager::expandUnmovable(std::uint64_t pages)
{
    const Pfn step = roundUpToAlign(pages);
    const Pfn lo = boundary();
    const Pfn hi = lo + step;
    if (hi > movable_->endPfn() ||
        lo + step > config_.maxUnmovablePages ||
        step >= movable_->totalPages()) {
        ++stats_.expansionFailures;
        return 0;
    }

    movable_->isolateRange(lo, hi);

    bool ok = true;
    for (Pfn pfn = lo; pfn < hi && ok;) {
        const PageFrame &f = mem_.frame(pfn);
        if (f.isFree() || !f.isHead()) {
            ++pfn;
            continue;
        }
        const Pfn span = Pfn{1} << f.order;
        if (!evacuateBlock(*movable_, pfn, lo, hi, hwEnabled_))
            ok = false;
        pfn += span;
    }

    if (!ok || !movable_->rangeFullyFree(lo, hi)) {
        movable_->unisolateRange(lo, hi, MigrateType::Movable);
        ++stats_.expansionFailures;
        return 0;
    }

    movable_->detachRange(lo, hi);
    unmovable_->attachRange(lo, hi, MigrateType::Unmovable);
    ++stats_.expansions;
    CTG_DPRINTF(Region, "expand unmovable by %llu pages; boundary %llu",
                static_cast<unsigned long long>(step),
                static_cast<unsigned long long>(boundary()));
    return step;
}

std::uint64_t
RegionManager::shrinkUnmovable(std::uint64_t pages)
{
    const Pfn step = roundUpToAlign(pages);
    const Pfn hi = boundary();
    if (step >= hi || hi - step < config_.minUnmovablePages) {
        ++stats_.shrinkFailures;
        return 0;
    }
    const Pfn lo = hi - step;

    unmovable_->isolateRange(lo, hi);

    bool ok = true;
    for (Pfn pfn = lo; pfn < hi && ok;) {
        const PageFrame &f = mem_.frame(pfn);
        if (f.isFree() || !f.isHead()) {
            ++pfn;
            continue;
        }
        const Pfn span = Pfn{1} << f.order;
        if (!evacuateBlock(*unmovable_, pfn, lo, hi, hwEnabled_))
            ok = false;
        pfn += span;
    }

    if (!ok || !unmovable_->rangeFullyFree(lo, hi)) {
        unmovable_->unisolateRange(lo, hi, MigrateType::Unmovable);
        ++stats_.shrinkFailures;
        return 0;
    }

    unmovable_->detachRange(lo, hi);
    movable_->attachRange(lo, hi, MigrateType::Movable);
    ++stats_.shrinks;
    CTG_DPRINTF(Region, "shrink unmovable by %llu pages; boundary %llu",
                static_cast<unsigned long long>(step),
                static_cast<unsigned long long>(boundary()));
    return step;
}

std::uint64_t
RegionManager::defragUnmovable(std::uint64_t max_migrations)
{
    std::uint64_t migrated = 0;
    const Pfn end = boundary();

    // Walk 2 MB blocks top-down (near the border first) and evacuate
    // sparse ones toward the low end of the region.
    for (Pfn block = end; block >= pagesPerHuge && migrated < max_migrations;
         block -= pagesPerHuge) {
        const Pfn base = block - pagesPerHuge;
        std::uint64_t used = 0;
        for (Pfn pfn = base; pfn < block; ++pfn) {
            if (!mem_.frame(pfn).isFree())
                ++used;
        }
        if (used == 0 || used > pagesPerHuge / 2)
            continue;

        for (Pfn pfn = base; pfn < block && migrated < max_migrations;) {
            const PageFrame &f = mem_.frame(pfn);
            if (f.isFree() || !f.isHead()) {
                ++pfn;
                continue;
            }
            const Pfn span = Pfn{1} << f.order;
            Pfn dst = invalidPfn;
            const MigrateResult r = migrateBlock(
                *unmovable_, *unmovable_, owners_, pfn, AddrPref::Low,
                f.migrateType, &dst, /*allow_fallback=*/true);
            bool moved = r == MigrateResult::Ok;
            if (!moved && r == MigrateResult::Unmovable && hwEnabled_)
                moved = hwMigrateBlock(*unmovable_, pfn,
                                       AddrPref::Low, &dst);
            if (moved && dst != invalidPfn && dst >= base) {
                // Destination landed back in the sparse block; give
                // up on this block to avoid thrash.
                ++migrated;
                break;
            }
            if (moved)
                ++migrated;
            pfn += span;
        }
    }
    return migrated;
}

void
RegionManager::regStats(StatGroup group) const
{
    group.gauge("expansions",
                [this] { return double(stats_.expansions); },
                "successful unmovable-region growths");
    group.gauge("expansion_failures",
                [this] { return double(stats_.expansionFailures); });
    group.gauge("shrinks",
                [this] { return double(stats_.shrinks); },
                "successful unmovable-region shrinks");
    group.gauge("shrink_failures",
                [this] { return double(stats_.shrinkFailures); });
    group.gauge("evacuated_blocks",
                [this] { return double(stats_.evacuatedBlocks); },
                "blocks moved out of a resizing border range");
    group.gauge("hw_migrations",
                [this] { return double(stats_.hwMigrations); },
                "blocks only Contiguitas-HW could move");
    group.gauge("boundary_pfn",
                [this] { return double(boundary()); },
                "unmovable region covers [0, boundary)");
    group.gauge("unmovable_pages",
                [this] { return double(unmovable_->totalPages()); });
}

void
RegionManager::checkConfinement() const
{
    const Pfn b = boundary();
    for (Pfn pfn = 0; pfn < mem_.numFrames(); ++pfn) {
        const PageFrame &f = mem_.frame(pfn);
        if (f.isFree())
            continue;
        if (pfn < b) {
            if (f.migrateType == MigrateType::Movable)
                panic("movable allocation at %llu inside unmovable "
                      "region [0, %llu)",
                      static_cast<unsigned long long>(pfn),
                      static_cast<unsigned long long>(b));
        } else {
            if (f.isUnmovableAllocation())
                panic("unmovable allocation at %llu outside the "
                      "unmovable region [0, %llu)",
                      static_cast<unsigned long long>(pfn),
                      static_cast<unsigned long long>(b));
        }
    }
}

} // namespace ctg
