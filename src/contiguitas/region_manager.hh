/**
 * @file
 * The Contiguitas region manager (Section 3.2).
 *
 * Physical memory is split into a continuous *unmovable* region at
 * the bottom of the address space and a continuous *movable* region
 * above it. Each region has its own buddy allocator; the boundary
 * between them moves in max-order-block granularity.
 *
 * Expansion of the unmovable region isolates the range just above
 * the boundary, evacuates its movable pages by software migration,
 * and hands the now-free range to the unmovable allocator. Shrinking
 * does the converse — which succeeds only when the border range
 * holds nothing, software-movable pages, or (with the Contiguitas-HW
 * migration hook enabled) any pages at all.
 */

#ifndef CTG_CONTIGUITAS_REGION_MANAGER_HH
#define CTG_CONTIGUITAS_REGION_MANAGER_HH

#include <functional>
#include <memory>

#include "base/stat_registry.hh"
#include "base/types.hh"
#include "kernel/owner.hh"
#include "mem/buddy.hh"

namespace ctg
{

/**
 * Two-region physical memory layout with a movable boundary.
 */
class RegionManager
{
  public:
    struct Config
    {
        /** Initial unmovable-region size in pages (paper: 4 GB on
         * 64 GB servers, i.e. 1/16 of memory). */
        std::uint64_t initialUnmovablePages = 0;
        /** Floor for shrinking. */
        std::uint64_t minUnmovablePages = 1u << 14; // 64 MB
        /** Ceiling for expansion (0 = half of memory). */
        std::uint64_t maxUnmovablePages = 0;
    };

    /** Resizing event counters. */
    struct Stats
    {
        std::uint64_t expansions = 0;
        std::uint64_t expansionFailures = 0;
        std::uint64_t shrinks = 0;
        std::uint64_t shrinkFailures = 0;
        std::uint64_t evacuatedBlocks = 0;
        std::uint64_t hwMigrations = 0;
    };

    RegionManager(PhysMem &mem, OwnerRegistry &owners, Config config);

    /** Boundary PFN: unmovable covers [0, boundary). */
    Pfn boundary() const { return unmovable_->endPfn(); }

    BuddyAllocator &unmovable() { return *unmovable_; }
    BuddyAllocator &movable() { return *movable_; }
    const BuddyAllocator &unmovable() const { return *unmovable_; }
    const BuddyAllocator &movable() const { return *movable_; }

    /**
     * Grow the unmovable region by at least `pages` (rounded up to
     * max-order blocks). Movable pages in the annexed range are
     * migrated deeper into the movable region first.
     * @return pages actually added (0 on failure).
     */
    std::uint64_t expandUnmovable(std::uint64_t pages);

    /**
     * Shrink the unmovable region by at least `pages`. The border
     * range must be evacuated: software migration for pages with
     * relocatable owners, the hardware hook for the rest.
     * @return pages actually removed (0 on failure).
     */
    std::uint64_t shrinkUnmovable(std::uint64_t pages);

    /**
     * Enable transparent hardware migration of unmovable pages
     * (Contiguitas-HW, Section 3.3). With the hook set, shrink
     * evacuation and unmovable-region defragmentation may move pages
     * that software alone cannot. The hook is invoked once per moved
     * block for accounting/timing by the hardware simulator; the
     * layout effect is applied by the region manager itself.
     */
    using HwMigrationHook = std::function<void(Pfn src, Pfn dst,
                                               unsigned order)>;
    void
    enableHwMigration(HwMigrationHook hook = nullptr)
    {
        hwEnabled_ = true;
        hwHook_ = std::move(hook);
    }

    bool hwMigrationEnabled() const { return hwEnabled_; }

    /** Invoked whenever a *pinned* block moves, so pin bookkeeping
     * (Kernel pin handles) can follow the page. */
    using PinMovedCallback = std::function<void(Pfn src, Pfn dst)>;
    void
    setPinMovedCallback(PinMovedCallback cb)
    {
        pinMoved_ = std::move(cb);
    }

    /**
     * Defragment the unmovable region: migrate allocations out of
     * sparsely-used 2 MB blocks into denser ones (requires the HW
     * hook for kernel pages). Reduces the internal fragmentation the
     * paper measures at 22% (Section 5.2).
     * @return blocks migrated.
     */
    std::uint64_t defragUnmovable(std::uint64_t max_migrations);

    const Stats &stats() const { return stats_; }
    const Config &config() const { return config_; }

    /** Register resize counters and boundary gauges under the given
     * group (e.g. `<server>.ctg.region.*`). The two buddy allocators
     * register their own subtrees separately. */
    void regStats(StatGroup group) const;

    /** Confinement theorem check: no unmovable allocation outside
     * [0, boundary) and no movable one inside. Panics on violation. */
    void checkConfinement() const;

  private:
    /** Move one allocated block out of [lo, hi); dst constrained to
     * the same allocator outside the range, or forced via HW. */
    bool evacuateBlock(BuddyAllocator &alloc, Pfn head, Pfn range_lo,
                       Pfn range_hi, bool allow_hw);

    /** Forced migration of a block software cannot move. */
    bool hwMigrateBlock(BuddyAllocator &alloc, Pfn src, AddrPref pref,
                        Pfn *out_dst);

    PhysMem &mem_;
    OwnerRegistry &owners_;
    Config config_;
    std::unique_ptr<BuddyAllocator> unmovable_;
    std::unique_ptr<BuddyAllocator> movable_;
    bool hwEnabled_ = false;
    HwMigrationHook hwHook_;
    PinMovedCallback pinMoved_;
    Stats stats_;
};

} // namespace ctg

#endif // CTG_CONTIGUITAS_REGION_MANAGER_HH
