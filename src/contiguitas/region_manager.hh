/**
 * @file
 * The Contiguitas region manager (Section 3.2).
 *
 * Physical memory is split into a continuous *unmovable* region at
 * the bottom of the address space and a continuous *movable* region
 * above it. Each region has its own buddy allocator; the boundary
 * between them moves in max-order-block granularity.
 *
 * Expansion of the unmovable region isolates the range just above
 * the boundary, evacuates its movable pages by software migration,
 * and hands the now-free range to the unmovable allocator. Shrinking
 * does the converse — which succeeds only when the border range
 * holds nothing, software-movable pages, or (with the Contiguitas-HW
 * migration hook enabled) any pages at all.
 */

#ifndef CTG_CONTIGUITAS_REGION_MANAGER_HH
#define CTG_CONTIGUITAS_REGION_MANAGER_HH

#include <functional>
#include <memory>
#include <optional>

#include "base/stat_registry.hh"
#include "base/types.hh"
#include "kernel/owner.hh"
#include "mem/auditor.hh"
#include "mem/buddy.hh"

namespace ctg
{

/**
 * Two-region physical memory layout with a movable boundary.
 */
class RegionManager
{
  public:
    struct Config
    {
        /** Initial unmovable-region size in pages (paper: 4 GB on
         * 64 GB servers, i.e. 1/16 of memory). */
        std::uint64_t initialUnmovablePages = 0;
        /** Floor for shrinking. */
        std::uint64_t minUnmovablePages = 1u << 14; // 64 MB
        /** Ceiling for expansion (0 = half of memory). */
        std::uint64_t maxUnmovablePages = 0;
    };

    /** Resizing event counters. */
    struct Stats
    {
        std::uint64_t expansions = 0;
        std::uint64_t expansionFailures = 0;
        std::uint64_t shrinks = 0;
        std::uint64_t shrinkFailures = 0;
        std::uint64_t evacuatedBlocks = 0;
        std::uint64_t hwMigrations = 0;
        /** Evacuations vetoed by the fault injector. */
        std::uint64_t injectedEvacFails = 0;
        /** Deferred-resize queue activity. */
        std::uint64_t deferredEnqueued = 0;
        std::uint64_t deferredRetries = 0;
        std::uint64_t deferredCompleted = 0;
        std::uint64_t deferredDropped = 0;
        std::uint64_t deferredSuperseded = 0;
    };

    RegionManager(PhysMem &mem, OwnerRegistry &owners, Config config);

    /** Checkpoint restore: adopt the serialized boundary, both
     * allocators, the deferred-resize queue and stats. The frame
     * table must already be restored; hooks (HW migration, pin-moved)
     * are re-attached by the owning policy afterwards. */
    RegionManager(PhysMem &mem, OwnerRegistry &owners, Config config,
                  serde::Reader &in);

    /** Serialize boundary, allocators, deferred queue and stats. */
    void saveTo(serde::Writer &out) const;

    /** Boundary PFN: unmovable covers [0, boundary). */
    Pfn boundary() const { return unmovable_->endPfn(); }

    BuddyAllocator &unmovable() { return *unmovable_; }
    BuddyAllocator &movable() { return *movable_; }
    const BuddyAllocator &unmovable() const { return *unmovable_; }
    const BuddyAllocator &movable() const { return *movable_; }

    /**
     * Grow the unmovable region by at least `pages` (rounded up to
     * max-order blocks). Movable pages in the annexed range are
     * migrated deeper into the movable region first. A failed
     * attempt (evacuation blocked) is queued for deferred retry with
     * capped exponential backoff — see pumpDeferredResizes().
     * @return pages actually added (0 on failure; retry queued).
     */
    std::uint64_t expandUnmovable(std::uint64_t pages);

    /**
     * Shrink the unmovable region by at least `pages`. The border
     * range must be evacuated: software migration for pages with
     * relocatable owners, the hardware hook for the rest. Failed
     * attempts are queued for deferred retry like expansions.
     * @return pages actually removed (0 on failure; retry queued).
     */
    std::uint64_t shrinkUnmovable(std::uint64_t pages);

    /**
     * Advance the deferred-resize queue by one step (the policy
     * calls this once per tick). A failed resize waits
     * min(2^attempts, maxResizeBackoff) pump calls before its next
     * attempt and is dropped after maxResizeRetries attempts; a
     * resize request in the opposite direction supersedes whatever
     * is queued (the controller changed its mind, and the queued
     * direction is stale).
     * @return pages moved by a retried resize this pump (0 if none).
     */
    std::uint64_t pumpDeferredResizes();

    /** True while a failed resize awaits retry. */
    bool deferredResizePending() const { return deferred_.has_value(); }

    /** Retry ceiling before a deferred resize is dropped. */
    static constexpr unsigned maxResizeRetries = 6;
    /** Backoff ceiling, in pump calls. */
    static constexpr unsigned maxResizeBackoff = 8;

    /**
     * Enable transparent hardware migration of unmovable pages
     * (Contiguitas-HW, Section 3.3). With the hook set, shrink
     * evacuation and unmovable-region defragmentation may move pages
     * that software alone cannot. The hook is invoked once per moved
     * block for accounting/timing by the hardware simulator; the
     * layout effect is applied by the region manager itself.
     */
    using HwMigrationHook = std::function<void(Pfn src, Pfn dst,
                                               unsigned order)>;
    void
    enableHwMigration(HwMigrationHook hook = nullptr)
    {
        hwEnabled_ = true;
        hwHook_ = std::move(hook);
    }

    bool hwMigrationEnabled() const { return hwEnabled_; }

    /** Invoked whenever a *pinned* block moves, so pin bookkeeping
     * (Kernel pin handles) can follow the page. */
    using PinMovedCallback = std::function<void(Pfn src, Pfn dst)>;
    void
    setPinMovedCallback(PinMovedCallback cb)
    {
        pinMoved_ = std::move(cb);
    }

    /**
     * Defragment the unmovable region: migrate allocations out of
     * sparsely-used 2 MB blocks into denser ones (requires the HW
     * hook for kernel pages). Reduces the internal fragmentation the
     * paper measures at 22% (Section 5.2).
     * @return blocks migrated.
     */
    std::uint64_t defragUnmovable(std::uint64_t max_migrations);

    const Stats &stats() const { return stats_; }
    const Config &config() const { return config_; }

    /** Register resize counters and boundary gauges under the given
     * group (e.g. `<server>.ctg.region.*`). The two buddy allocators
     * register their own subtrees separately. */
    void regStats(StatGroup group) const;

    /** Confinement theorem check: no unmovable allocation outside
     * [0, boundary) and no movable one inside. Panics on violation. */
    void checkConfinement() const;

    /** Non-panicking confinement check for the MemAuditor. */
    void auditConfinement(AuditReport &report) const;

    /** Register both region allocators plus region-accounting and
     * confinement checks with a system-wide auditor. */
    void attachAuditorChecks(MemAuditor &auditor);

  private:
    /** One queued resize retry. */
    struct DeferredResize
    {
        bool expand = false;
        std::uint64_t pages = 0;
        unsigned attempts = 0;
        /** Pump calls to wait before the next attempt. */
        unsigned waitPumps = 0;
    };

    /** Resize attempt without deferral bookkeeping. A failure sets
     * *evacuation_blocked to distinguish a transient evacuation
     * failure (worth retrying) from a structural rejection (region
     * bounds — retrying cannot help). */
    std::uint64_t tryExpand(std::uint64_t pages,
                            bool *evacuation_blocked = nullptr);
    std::uint64_t tryShrink(std::uint64_t pages,
                            bool *evacuation_blocked = nullptr);

    /** Queue (or merge) a failed resize for retry. */
    void deferResize(bool expand, std::uint64_t pages);
    /** Move one allocated block out of [lo, hi); dst constrained to
     * the same allocator outside the range, or forced via HW. */
    bool evacuateBlock(BuddyAllocator &alloc, Pfn head, Pfn range_lo,
                       Pfn range_hi, bool allow_hw);

    /** Evacuate every allocated block out of the isolated range
     * [lo, hi), hopping between allocated heads via the ContigIndex
     * when index paths are on (DESIGN.md §12) and falling back to
     * the linear frame walk otherwise.
     * @return false as soon as one block cannot be moved. */
    bool evacuateRange(BuddyAllocator &alloc, Pfn lo, Pfn hi);

    /** Forced migration of a block software cannot move. */
    bool hwMigrateBlock(BuddyAllocator &alloc, Pfn src, AddrPref pref,
                        Pfn *out_dst);

    PhysMem &mem_;
    OwnerRegistry &owners_;
    Config config_;
    std::unique_ptr<BuddyAllocator> unmovable_;
    std::unique_ptr<BuddyAllocator> movable_;
    bool hwEnabled_ = false;
    HwMigrationHook hwHook_;
    PinMovedCallback pinMoved_;
    std::optional<DeferredResize> deferred_;
    Stats stats_;
};

} // namespace ctg

#endif // CTG_CONTIGUITAS_REGION_MANAGER_HH
