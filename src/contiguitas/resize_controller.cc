#include "contiguitas/resize_controller.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace ctg
{

ResizeController::ResizeController(const ResizeParams &params)
    : params_(params)
{
    ctg_assert(params_.thresholdUnmov > 0);
    ctg_assert(params_.thresholdMov > 0);
    ctg_assert(params_.cue >= 0 && params_.cme >= 0);
    ctg_assert(params_.cms >= 0 && params_.cus >= 0);
    ctg_assert(params_.maxFactor > 0 && params_.maxFactor <= 1.0);
}

ResizeDecision
ResizeController::evaluate(double pressure_unmov, double pressure_mov,
                           std::uint64_t mem_unmov) const
{
    ResizeDecision decision;
    const double mem = static_cast<double>(mem_unmov);

    if (pressure_unmov >= params_.thresholdUnmov &&
        pressure_mov < params_.thresholdMov) {
        // Expand unmovable upon high pressure (Algorithm 1 line 4).
        double factor =
            pressure_unmov / params_.thresholdUnmov * params_.cue +
            params_.thresholdMov / std::max(pressure_mov, 1.0) *
                params_.cme;
        factor = std::min(factor, params_.maxFactor);
        decision.direction = ResizeDirection::Expand;
        decision.factor = factor;
        decision.targetPages = static_cast<std::uint64_t>(
            std::ceil((1.0 + factor) * mem));
    } else {
        // Shrink for all other cases (Algorithm 1 line 8).
        double factor =
            pressure_mov / params_.thresholdMov * params_.cms +
            params_.thresholdUnmov / std::max(pressure_unmov, 1.0) *
                params_.cus;
        factor = std::min(factor, params_.maxFactor);
        decision.direction = ResizeDirection::Shrink;
        decision.factor = factor;
        decision.targetPages = static_cast<std::uint64_t>(
            std::floor((1.0 - factor) * mem));
    }
    if (decision.targetPages == mem_unmov)
        decision.direction = ResizeDirection::None;
    return decision;
}

} // namespace ctg
