#include "contiguitas/resize_controller.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"
#include "base/span_trace.hh"
#include "base/trace.hh"

namespace ctg
{

ResizeController::ResizeController(const ResizeParams &params)
    : params_(params)
{
    ctg_assert(params_.thresholdUnmov > 0);
    ctg_assert(params_.thresholdMov > 0);
    ctg_assert(params_.cue >= 0 && params_.cme >= 0);
    ctg_assert(params_.cms >= 0 && params_.cus >= 0);
    ctg_assert(params_.maxFactor > 0 && params_.maxFactor <= 1.0);
}

ResizeDecision
ResizeController::evaluate(double pressure_unmov, double pressure_mov,
                           std::uint64_t mem_unmov) const
{
    CTG_SPAN_NAMED(span, Region, "controller.evaluate",
                   {{"mem_unmov",
                     static_cast<std::int64_t>(mem_unmov)},
                    {"p_unmov_pct",
                     static_cast<std::int64_t>(pressure_unmov * 100)},
                    {"p_mov_pct",
                     static_cast<std::int64_t>(pressure_mov * 100)}});
    ResizeDecision decision;
    const double mem = static_cast<double>(mem_unmov);

    if (pressure_unmov >= params_.thresholdUnmov &&
        pressure_mov < params_.thresholdMov) {
        // Expand unmovable upon high pressure (Algorithm 1 line 4).
        double factor =
            pressure_unmov / params_.thresholdUnmov * params_.cue +
            params_.thresholdMov /
                std::max(pressure_mov, minPressure) * params_.cme;
        factor = std::min(factor, params_.maxFactor);
        decision.direction = ResizeDirection::Expand;
        decision.factor = factor;
        decision.targetPages = static_cast<std::uint64_t>(
            std::ceil((1.0 + factor) * mem));
    } else {
        // Shrink for all other cases (Algorithm 1 line 8).
        double factor =
            pressure_mov / params_.thresholdMov * params_.cms +
            params_.thresholdUnmov /
                std::max(pressure_unmov, minPressure) * params_.cus;
        factor = std::min(factor, params_.maxFactor);
        decision.direction = ResizeDirection::Shrink;
        decision.factor = factor;
        decision.targetPages = static_cast<std::uint64_t>(
            std::floor((1.0 - factor) * mem));
    }
    if (decision.targetPages == mem_unmov)
        decision.direction = ResizeDirection::None;

    span.arg("direction", static_cast<std::int64_t>(
                              decision.direction == ResizeDirection::Expand
                                  ? 1
                                  : decision.direction ==
                                            ResizeDirection::Shrink
                                        ? -1
                                        : 0));
    span.arg("target_pages",
             static_cast<std::int64_t>(decision.targetPages));

    ++stats_.evaluations;
    switch (decision.direction) {
      case ResizeDirection::Expand:
        ++stats_.expandDecisions;
        break;
      case ResizeDirection::Shrink:
        ++stats_.shrinkDecisions;
        break;
      case ResizeDirection::None:
        ++stats_.noneDecisions;
        break;
    }
    CTG_DPRINTF(Region,
                "controller: P_unmov=%.2f P_mov=%.2f mem=%llu -> %s "
                "target %llu (F=%.3f)",
                pressure_unmov, pressure_mov,
                static_cast<unsigned long long>(mem_unmov),
                decision.direction == ResizeDirection::Expand
                    ? "expand"
                    : decision.direction == ResizeDirection::Shrink
                          ? "shrink"
                          : "none",
                static_cast<unsigned long long>(decision.targetPages),
                decision.factor);
    return decision;
}

void
ResizeController::regStats(StatGroup group) const
{
    group.gauge("evaluations",
                [this] { return double(stats_.evaluations); },
                "Algorithm 1 controller wakeups");
    group.gauge("expand_decisions",
                [this] { return double(stats_.expandDecisions); });
    group.gauge("shrink_decisions",
                [this] { return double(stats_.shrinkDecisions); });
    group.gauge("none_decisions",
                [this] { return double(stats_.noneDecisions); },
                "evaluations whose target equals the current size");
}

} // namespace ctg
