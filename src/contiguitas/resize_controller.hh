/**
 * @file
 * Algorithm 1 — the region resizing controller.
 *
 * Given the per-region PSI pressures, configurable thresholds and
 * expansion/shrink coefficients, the controller computes the target
 * size of the unmovable region:
 *
 *   if P_unmov >= T_unmov and P_mov < T_mov:
 *       F = P_unmov/T_unmov * c_ue + T_mov/max(P_mov,eps) * c_me
 *       U = (1 + F) * Mem_unmov           (expand)
 *   else:
 *       F = P_mov/T_mov * c_ms + T_unmov/max(P_unmov,eps) * c_us
 *       U = (1 - F) * Mem_unmov           (shrink)
 *
 * with F clamped so one decision can never more than double or empty
 * the region. The paper writes max(P, 1) for the counter-pressure
 * divisors; we floor at minPressure (eps) instead so sub-1% PSI
 * readings are not silently flattened — see the constant below.
 */

#ifndef CTG_CONTIGUITAS_RESIZE_CONTROLLER_HH
#define CTG_CONTIGUITAS_RESIZE_CONTROLLER_HH

#include <cstdint>

#include "base/stat_registry.hh"

namespace ctg
{

/** Tunables of Algorithm 1 (paper: set empirically, global across
 * workloads). */
struct ResizeParams
{
    /** PSI pressure thresholds in percent. */
    double thresholdUnmov = 5.0;
    double thresholdMov = 5.0;
    /** Expansion coefficients: native pressure and counter-pressure
     * terms. */
    double cue = 0.15;
    double cme = 0.02;
    /** Shrink coefficients. */
    double cms = 0.05;
    double cus = 0.01;
    /** Clamp on the resize factor F per decision. */
    double maxFactor = 1.0;
};

/** Direction of a resize decision. */
enum class ResizeDirection
{
    Expand,
    Shrink,
    None,
};

/** Outcome of one controller evaluation. */
struct ResizeDecision
{
    ResizeDirection direction = ResizeDirection::None;
    /** Target unmovable size in pages. */
    std::uint64_t targetPages = 0;
    /** The raw factor F of Algorithm 1 (after clamping). */
    double factor = 0.0;
};

/**
 * Stateless evaluator of Algorithm 1.
 */
class ResizeController
{
  public:
    /**
     * Floor for the counter-pressure divisors (the max(P, 1)
     * denominators of Algorithm 1). It keeps the T/P terms finite
     * as a pressure approaches 0 — the paper writes max(P_mov, 1),
     * but flooring at a full 1% silently distorts every sub-1%
     * pressure reading: P_mov = 0.2% and P_mov = 0.9% would produce
     * identical counter-pressure terms even though the former region
     * is four times calmer. Flooring at 0.25% preserves that
     * gradient across the band fleet PSI readings actually visit
     * while still bounding the bonus term at 4x its paper ceiling —
     * low enough that a calm counter-region can never saturate the
     * maxFactor clamp on its own and erase the native-pressure
     * gradient.
     */
    static constexpr double minPressure = 0.25;

    explicit ResizeController(const ResizeParams &params);

    /**
     * Evaluate Algorithm 1.
     *
     * @param pressure_unmov PSI pressure of the unmovable region (%)
     * @param pressure_mov PSI pressure of the movable region (%)
     * @param mem_unmov current unmovable-region size in pages
     */
    ResizeDecision evaluate(double pressure_unmov,
                            double pressure_mov,
                            std::uint64_t mem_unmov) const;

    const ResizeParams &params() const { return params_; }

    /** Decision counters (the evaluator stays logically stateless;
     * these only observe it). */
    struct Stats
    {
        std::uint64_t evaluations = 0;
        std::uint64_t expandDecisions = 0;
        std::uint64_t shrinkDecisions = 0;
        std::uint64_t noneDecisions = 0;
    };

    const Stats &stats() const { return stats_; }

    /** Checkpoint restore of the observation counters. */
    void restoreStats(const Stats &stats) { stats_ = stats; }

    /** Register decision counters under the given group. */
    void regStats(StatGroup group) const;

  private:
    ResizeParams params_;
    mutable Stats stats_;
};

} // namespace ctg

#endif // CTG_CONTIGUITAS_RESIZE_CONTROLLER_HH
