#include "fleet/fleet.hh"

#include "base/rng.hh"
#include "base/trace.hh"

namespace ctg
{

Fleet::Fleet(const Config &config)
    : config_(config)
{}

void
Fleet::attachTelemetry(StatRegistry &registry, StatSampler *sampler,
                       const std::string &prefix)
{
    const StatGroup group(registry, prefix);
    serversRun_ = &group.counter("servers_run");
    freeContiguity2m_ = &group.distribution(
        "free_contiguity_2m",
        "per-server fraction of free memory in free 2M blocks");
    unmovableBlocks2m_ = &group.distribution(
        "unmovable_blocks_2m",
        "per-server fraction of 2M blocks with unmovable pages");
    unmovablePageRatio_ =
        &group.distribution("unmovable_page_ratio");
    uptimeSec_ = &group.distribution("uptime_sec");
    sampler_ = sampler;
}

std::vector<ServerScan>
Fleet::run()
{
    Rng rng(config_.seed);
    std::vector<ServerScan> scans;
    scans.reserve(config_.servers);

    static const WorkloadKind kinds[] = {
        WorkloadKind::Web,    WorkloadKind::CacheA,
        WorkloadKind::CacheB, WorkloadKind::CI,
        WorkloadKind::Nginx,  WorkloadKind::Memcached,
    };

    for (unsigned i = 0; i < config_.servers; ++i) {
        Server::Config sc;
        sc.memBytes = config_.memBytes;
        sc.contiguitas = config_.contiguitas;
        sc.kind = kinds[rng.below(std::size(kinds))];
        sc.intensity =
            config_.minIntensity +
            rng.uniform() * (config_.maxIntensity -
                             config_.minIntensity);
        sc.prefragment = rng.chance(config_.prefragmentFrac);
        sc.uptimeSec =
            config_.minUptimeSec +
            rng.uniform() * (config_.maxUptimeSec -
                             config_.minUptimeSec);
        sc.seed = rng.next();
        CTG_DPRINTF(Fleet,
                    "server %u: kind=%d intensity=%.2f "
                    "prefragment=%d uptime=%.1fs",
                    i, int(sc.kind), sc.intensity,
                    int(sc.prefragment), sc.uptimeSec);
        Server server(sc);
        const ServerScan s = server.run();
        CTG_DPRINTF(Fleet,
                    "server %u done: free_contig_2m=%.3f "
                    "unmovable_blocks_2m=%.3f",
                    i, s.freeContiguity[0], s.unmovableBlocks[0]);
        if (serversRun_ != nullptr) {
            ++*serversRun_;
            freeContiguity2m_->sample(s.freeContiguity[0]);
            unmovableBlocks2m_->sample(s.unmovableBlocks[0]);
            unmovablePageRatio_->sample(s.unmovablePageRatio);
            uptimeSec_->sample(s.uptimeSec);
            if (sampler_ != nullptr)
                sampler_->sample(i);
        }
        scans.push_back(s);
    }
    return scans;
}

} // namespace ctg
