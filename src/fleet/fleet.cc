#include "fleet/fleet.hh"

#include <chrono>
#include <filesystem>
#include <map>
#include <mutex>
#include <optional>
#include <thread>

#include "base/arena.hh"
#include "base/env_config.hh"
#include "base/host_mem.hh"
#include "base/logging.hh"
#include "base/rng.hh"
#include "base/span_trace.hh"
#include "base/trace.hh"
#include "fleet/server_slot.hh"
#include "sim/executor.hh"
#include "sim/fault_injector.hh"
#include "sim/snapshot.hh"

namespace ctg
{

void
Fleet::Config::applyEnvOverlay()
{
    const sim::EnvConfig env = sim::EnvConfig::fromEnv();
    if (threads == 0)
        threads = env.threads;
    if (policy.name.empty() && !env.policySpec.empty())
        parsePolicySpec(env.policySpec, &policy);
    if (workloadOverride.empty())
        workloadOverride = env.workloadOverride;
    if (!contigIndexReads)
        contigIndexReads = env.contigIndexReads;
    if (!exactPref)
        exactPref = env.exactPref;
    if (!coarseStep)
        coarseStep = env.coarseStep;
    if (!slotPool)
        slotPool = env.slotPool;
    if (!streamScans)
        streamScans = env.streamScans;
    if (checkpointDir.empty())
        checkpointDir = env.checkpointDir;
    if (restoreDir.empty())
        restoreDir = env.restoreDir;
}

namespace
{

/** Resolve the named workload override against workloadKey(),
 * falling back to the deprecated enum field. An unknown name warns
 * and defers to the enum shim (then to the sampled mix) — a typo in
 * CTG_WORKLOAD must not silently pick a kind. */
std::optional<WorkloadKind>
resolvedKindOverride(const Fleet::Config &config)
{
    if (!config.workloadOverride.empty()) {
        WorkloadKind kind = WorkloadKind::Web;
        if (parseWorkloadKind(config.workloadOverride, &kind))
            return kind;
        warn_once("ignoring unknown workload override '%s'",
                  config.workloadOverride.c_str());
    }
    return config.kindOverride;
}

} // namespace

std::uint64_t
fleetConfigFingerprint(const Fleet::Config &config)
{
    snap::Fingerprint fp;
    fp.mixU32(config.servers);
    fp.mixU64(config.memBytes);
    mixPolicyConfig(fp, config.policy);
    fp.mixDouble(config.minUptimeSec);
    fp.mixDouble(config.maxUptimeSec);
    fp.mixDouble(config.minIntensity);
    fp.mixDouble(config.maxIntensity);
    fp.mixDouble(config.prefragmentFrac);
    fp.mixDouble(config.extraUptimeSec);
    fp.mixU64(config.seed);
    const std::optional<WorkloadKind> kind =
        resolvedKindOverride(config);
    fp.mixBool(kind.has_value());
    if (kind)
        fp.mixU32(static_cast<std::uint32_t>(*kind));
    // Coarse stepping changes results, so it partitions snapshots
    // just like it does in serverConfigFingerprint. Mixed resolved,
    // so config and CTG_COARSE_STEP spellings agree. The shard range
    // (rangeBegin/rangeEnd) is deliberately NOT mixed: shards of one
    // population must share a single manifest.
    fp.mixBool(config.coarseStep.value_or(
        sim::EnvConfig::fromEnv().coarseStep));
    return fp.value();
}

void
Fleet::ScanSinks::absorb(const ServerScan &scan)
{
    freeContiguity2m.add(scan.freeContiguity[0]);
    unmovableBlocks2m.add(scan.unmovableBlocks[0]);
    unmovablePageRatio.add(scan.unmovablePageRatio);
    uptimeSec.add(scan.uptimeSec);
}

void
Fleet::ScanSinks::merge(const ScanSinks &other)
{
    freeContiguity2m.merge(other.freeContiguity2m);
    unmovableBlocks2m.merge(other.unmovableBlocks2m);
    unmovablePageRatio.merge(other.unmovablePageRatio);
    uptimeSec.merge(other.uptimeSec);
}

Fleet::Fleet(const Config &config)
    : config_(config),
      tables_(SharedFleetTables::make(config.memBytes))
{}

Server::Config
Fleet::baseServerConfig() const
{
    Server::Config sc;
    sc.memBytes = config_.memBytes;
    sc.policy = config_.policy;
    sc.sharedTables = tables_;
    sc.contigIndexReads = config_.contigIndexReads;
    sc.exactPref = config_.exactPref;
    sc.coarseStep = config_.coarseStep;
    sc.extraUptimeSec = config_.extraUptimeSec;
    return sc;
}

void
Fleet::attachTelemetry(StatRegistry &registry, StatSampler *sampler,
                       const std::string &prefix)
{
    const StatGroup group(registry, prefix);
    serversRun_ = &group.counter("servers_run");
    freeContiguity2m_ = &group.distribution(
        "free_contiguity_2m",
        "per-server fraction of free memory in free 2M blocks");
    unmovableBlocks2m_ = &group.distribution(
        "unmovable_blocks_2m",
        "per-server fraction of 2M blocks with unmovable pages");
    unmovablePageRatio_ =
        &group.distribution("unmovable_page_ratio");
    uptimeSec_ = &group.distribution("uptime_sec");
    group.gauge(
        "run_wall_ms", [this] { return runWallMs_; },
        "wall-clock milliseconds of the last run()");
    group.gauge(
        "threads",
        [this] { return static_cast<double>(runThreads_); },
        "worker threads used by the last run()");
    group.gauge(
        "peak_rss_mb",
        [] {
            return static_cast<double>(peakRssBytes()) /
                   (1024.0 * 1024.0);
        },
        "peak resident-set size of the whole process (MiB)");
    sampler_ = sampler;
}

std::vector<ServerScan>
Fleet::run()
{
    const auto wallStart = std::chrono::steady_clock::now();

    // Shard range: sample the whole population (identical seed
    // stream in every shard) but simulate only [lo, hi).
    const unsigned lo = config_.rangeBegin;
    const unsigned hi =
        config_.rangeEnd == 0 ? config_.servers : config_.rangeEnd;
    if (lo > hi || hi > config_.servers)
        fatal("fleet range [%u, %u) outside population of %u",
              lo, hi, config_.servers);
    const unsigned count = hi - lo;
    capturedSpans_.clear();
    pendingManifestEntries_.clear();

    Executor executor(config_.threads);
    runThreads_ = executor.threads();

    // Stream ids for the per-server captures are reserved up front
    // from the main thread, so back-to-back fleets in one process
    // never reuse a track (a reused track's logical clock would
    // restart and break event ordering in viewers).
    const bool spansOn = spans::anyEnabled();
    const std::uint32_t streamBase =
        spansOn ? spans::reserveStreams(config_.servers) : 0;
    CTG_SPAN_NAMED(run_span, Fleet, "fleet.run",
                   {{"servers", config_.servers},
                    {"threads", runThreads_}});

    // The sampled mix stays the six paper kinds even now that more
    // profiles exist: adding to this array would shift every seed
    // stream and break the bit-identity contract with older runs.
    // The aging profiles enter through the workload override.
    static const WorkloadKind kinds[] = {
        WorkloadKind::Web,    WorkloadKind::CacheA,
        WorkloadKind::CacheB, WorkloadKind::CI,
        WorkloadKind::Nginx,  WorkloadKind::Memcached,
    };
    const std::optional<WorkloadKind> kindOverride =
        resolvedKindOverride(config_);

    // Pre-sample every server's configuration from the fleet RNG on
    // the calling thread, before dispatch: the seed stream is
    // consumed in server order, so the draws cannot depend on the
    // worker schedule.
    const Server::Config base = baseServerConfig();
    std::vector<Server::Config> configs(config_.servers);
    {
    CTG_SPAN(Fleet, "fleet.sample_configs",
             {{"servers", config_.servers}});
    Rng rng(config_.seed);
    for (unsigned i = 0; i < config_.servers; ++i) {
        Server::Config &sc = configs[i];
        // Fleet-wide knobs are plain copies of the stamped base —
        // not RNG draws, so they cannot perturb the seed stream.
        sc = base;
        sc.kind = kinds[rng.below(std::size(kinds))];
        // Applied after the draw so the seed stream is unchanged.
        if (kindOverride)
            sc.kind = *kindOverride;
        sc.intensity =
            config_.minIntensity +
            rng.uniform() * (config_.maxIntensity -
                             config_.minIntensity);
        sc.prefragment = rng.chance(config_.prefragmentFrac);
        sc.uptimeSec =
            config_.minUptimeSec +
            rng.uniform() * (config_.maxUptimeSec -
                             config_.minUptimeSec);
        sc.seed = rng.next();
    }
    }

    // Checkpoint/restore plumbing. The restore manifest is loaded
    // and validated once, up front, on the calling thread; any
    // failure warns and disables restoring — every server then
    // cold-starts, which by construction reproduces the
    // straight-through results.
    const std::uint64_t fleetFp = fleetConfigFingerprint(config_);
    bool checkpointing = !config_.checkpointDir.empty();
    if (checkpointing) {
        std::error_code ec;
        std::filesystem::create_directories(config_.checkpointDir,
                                            ec);
        if (ec) {
            warn("fleet checkpoint to '%s' disabled: %s",
                 config_.checkpointDir.c_str(),
                 ec.message().c_str());
            checkpointing = false;
        }
    }
    std::optional<snap::Manifest> restoreManifest;
    if (!config_.restoreDir.empty()) {
        try {
            restoreManifest =
                snap::loadManifest(config_.restoreDir, fleetFp);
        } catch (const serde::Error &e) {
            warn("fleet restore from '%s' disabled: %s",
                 config_.restoreDir.c_str(), e.what());
        }
    }

    // Each task gets a fault injector forked from the ambient one
    // (resolved here, on the calling thread, so nested scopes work)
    // and a trace capture; both are merged below in server order.
    FaultInjector &ambient = faultInjector();

    struct TaskResult
    {
        ServerScan scan;
        FaultInjector faults{0};
        std::string traceText;
        std::vector<spans::Event> spanEvents;
        /** Manifest line for this server's written snapshot, when
         * checkpointing succeeded for it. */
        std::optional<snap::ManifestEntry> snapEntry;
    };
    std::vector<TaskResult> results(count);

    // Streaming sinks: one partial per worker thread, folded as each
    // task finishes (one short lock per server). OnlineHistogram
    // merges are order-insensitive, so the work-stealing schedule
    // cannot leak into the merged bits.
    std::mutex sinksMu;
    std::map<std::thread::id, ScanSinks> workerSinks;
    streamSinks_ = ScanSinks{};

    // Pooled per-worker server storage (the fleet-scale fast path):
    // one ServerSlot per worker thread, its arena reset and reused
    // across tasks. Slots are keyed by thread id under a mutex, the
    // same pattern as workerSinks — the executor has no worker-index
    // API, and one short lock per server is noise next to the ~ms of
    // simulation it brackets.
    const bool pooled = config_.slotPool.value_or(
        sim::EnvConfig::fromEnv().slotPool);
    std::mutex slotsMu;
    std::map<std::thread::id, std::unique_ptr<ServerSlot>> slots;

    // The task body, shared by the pooled and fresh paths. With a
    // slot, the caller has already opened an ArenaScope: every
    // allocation below lands in the slot's arena and dies at the
    // next task's rewind, so everything that outlives the task —
    // trace text, span events, the manifest entry — is deep-copied
    // into `out` under ArenaSuspend before returning. ServerScan is
    // all-POD and assigns safely either way.
    const auto runOne = [&](unsigned i, const Server::Config &sc,
                            TaskResult &out, ServerSlot *slot) {
        trace::ThreadCapture capture;
        std::optional<spans::Capture> spanCapture;
        if (spansOn)
            spanCapture.emplace(streamBase + i);
        CTG_DPRINTF(Fleet,
                    "server %u: kind=%d intensity=%.2f "
                    "prefragment=%d uptime=%.1fs",
                    i, int(sc.kind), sc.intensity,
                    int(sc.prefragment), sc.uptimeSec);
        const FaultInjectorScope scope(out.faults);
        std::optional<snap::ManifestEntry> localEntry;
        {
            CTG_SPAN_NAMED(srv_span, Fleet, "server.run",
                           {{"server", i},
                            {"kind", int(sc.kind)},
                            {"prefragment",
                             sc.prefragment ? 1 : 0}});
            // Warm start: resume from the snapshot when one loads
            // and validates. Every failure mode — missing entry,
            // injected read fault, torn write, bit flip, version
            // skew, manifest skew, failed audit — lands in the warn
            // + cold-start path below, whose simulation is
            // bit-identical to a straight-through run (the restore
            // attempt only ever probes snap.* fault sites, which
            // have their own RNG streams).
            bool restored = false;
            if (restoreManifest) {
                const snap::ManifestEntry *entry =
                    restoreManifest->find(i);
                if (entry == nullptr) {
                    warn("server %u: no snapshot in manifest; "
                         "cold-starting", i);
                } else {
                    try {
                        const std::vector<std::uint8_t> bytes =
                            snap::readImageFile(config_.restoreDir +
                                                "/" + entry->file);
                        snap::validateAgainstManifest(*entry, bytes);
                        std::unique_ptr<Server> server =
                            decodeSnapshot(sc, bytes, &out.faults);
                        if (slot != nullptr) {
                            out.scan =
                                slot->adopt(std::move(server))
                                    .resume();
                        } else {
                            out.scan = server->resume();
                        }
                        restored = true;
                    } catch (const serde::Error &e) {
                        warn("server %u: snapshot restore failed "
                             "(%s); cold-starting", i, e.what());
                    }
                }
            }
            // Fresh construction: into the slot's arena when pooled
            // (no rewind — a restore fallback must not clobber the
            // captures above), on the stack otherwise.
            std::optional<Server> localServer;
            const auto makeServer = [&]() -> Server & {
                if (slot != nullptr)
                    return slot->construct(sc);
                return localServer.emplace(sc);
            };
            if (!restored && checkpointing) {
                Server &server = makeServer();
                server.runToCheckpoint();
                snap::ManifestEntry entry;
                entry.server = i;
                entry.file = snap::snapshotFileName(i);
                // The manifest records the intended bytes; injected
                // write corruption (applied inside writeImageFile)
                // therefore always disagrees with either the
                // manifest or a section CRC.
                const std::vector<std::uint8_t> bytes =
                    encodeSnapshot(server, out.faults);
                entry.bytes = bytes.size();
                entry.crc = serde::crc32(bytes.data(), bytes.size());
                if (snap::writeImageFile(config_.checkpointDir +
                                             "/" + entry.file,
                                         bytes))
                    localEntry = std::move(entry);
                out.scan = server.resume();
            } else if (!restored) {
                out.scan = makeServer().run();
            }
            srv_span.arg("free_2m_bp",
                         static_cast<std::int64_t>(
                             out.scan.freeContiguity[0] * 10000.0));
        }
        if (config_.streamScans) {
            // The sink map nodes and histogram buckets outlive the
            // task, so they must come from the heap, not the arena.
            const ArenaSuspend off;
            const std::lock_guard<std::mutex> lock(sinksMu);
            workerSinks[std::this_thread::get_id()].absorb(out.scan);
        }
        CTG_DPRINTF(Fleet,
                    "server %u done: free_contig_2m=%.3f "
                    "unmovable_blocks_2m=%.3f",
                    i, out.scan.freeContiguity[0],
                    out.scan.unmovableBlocks[0]);
        if (slot == nullptr) {
            out.traceText = capture.take();
            if (spanCapture)
                out.spanEvents = spanCapture->take();
            out.snapEntry = std::move(localEntry);
            return;
        }
        // Pooled: the captured buffers are arena-backed. Take them
        // first (still inside the scope), then deep-copy element by
        // element with the arena suspended so the copies survive the
        // rewind. Event name/key pointers are static literals, safe
        // to carry across tasks.
        const std::string traceText = capture.take();
        std::vector<spans::Event> events;
        if (spanCapture)
            events = spanCapture->take();
        const ArenaSuspend off;
        out.traceText.assign(traceText.begin(), traceText.end());
        out.spanEvents.assign(events.begin(), events.end());
        if (localEntry) {
            snap::ManifestEntry deep;
            deep.server = localEntry->server;
            deep.bytes = localEntry->bytes;
            deep.crc = localEntry->crc;
            deep.file.assign(localEntry->file.begin(),
                             localEntry->file.end());
            out.snapEntry = std::move(deep);
        }
    };

    {
    CTG_SPAN(Fleet, "fleet.simulate",
             {{"servers", count}, {"threads", runThreads_}});
    executor.run(count, [&](std::size_t task) {
        const unsigned i = lo + static_cast<unsigned>(task);
        const Server::Config &sc = configs[i];
        TaskResult &out = results[task];
        // Heap-free, so safe to fork before any arena is active.
        out.faults = ambient.forkForTask(i);
        if (!pooled) {
            runOne(i, sc, out, nullptr);
            return;
        }
        ServerSlot *slot = nullptr;
        {
            const std::lock_guard<std::mutex> lock(slotsMu);
            std::unique_ptr<ServerSlot> &entry =
                slots[std::this_thread::get_id()];
            if (entry == nullptr)
                entry = std::make_unique<ServerSlot>();
            slot = entry.get();
        }
        // Rewind before the scope opens: the rewind invalidates the
        // previous task's arena contents, so nothing this task has
        // allocated may predate it.
        slot->begin();
        const ArenaScope arenaScope(slot->arena());
        try {
            runOne(i, sc, out, slot);
        } catch (const PanicError &e) {
            // Exception messages are arena-backed; rethrow a deep
            // copy built off-arena, preserving the concrete types
            // tests and callers catch. bad_alloc carries a static
            // message and propagates as-is.
            const ArenaSuspend off;
            throw PanicError(std::string(e.what()));
        } catch (const FatalError &e) {
            const ArenaSuspend off;
            throw FatalError(std::string(e.what()));
        } catch (const serde::Error &e) {
            const ArenaSuspend off;
            throw serde::Error(std::string(e.what()));
        } catch (const std::bad_alloc &) {
            throw;
        } catch (const std::exception &e) {
            const ArenaSuspend off;
            throw std::runtime_error(std::string(e.what()));
        }
    });
    }

    // Deterministic merge: every observable side effect is applied
    // here, in server order, on the calling thread — identical
    // Distributions (same sample order), sampler snapshots, trace
    // bytes, span streams and fault counters at any thread count.
    CTG_SPAN(Fleet, "fleet.merge", {{"servers", count}});
    const std::size_t snapshotBase =
        sampler_ != nullptr ? sampler_->sampleCount() : 0;
    if (config_.captureSpans)
        capturedSpans_.resize(count);
    std::vector<ServerScan> scans;
    scans.reserve(count);
    for (unsigned task = 0; task < count; ++task) {
        TaskResult &r = results[task];
        trace::emitRaw(r.traceText);
        if (config_.captureSpans)
            capturedSpans_[task] = std::move(r.spanEvents);
        else if (!r.spanEvents.empty())
            spans::publish(std::move(r.spanEvents));
        ambient.absorbStats(r.faults);
        if (serversRun_ != nullptr) {
            ++*serversRun_;
            freeContiguity2m_->sample(r.scan.freeContiguity[0]);
            unmovableBlocks2m_->sample(r.scan.unmovableBlocks[0]);
            unmovablePageRatio_->sample(r.scan.unmovablePageRatio);
            uptimeSec_->sample(r.scan.uptimeSec);
            if (sampler_ != nullptr) {
                // The tick is the sampler's running snapshot index
                // (server index when fresh); restarting at 0 on a
                // reused sampler would violate its non-decreasing
                // tick contract and scramble the series.
                sampler_->sample(
                    static_cast<Tick>(snapshotBase + task));
                ctg_assert(sampler_->sampleCount() ==
                           snapshotBase + task + 1);
                ctg_assert(sampler_->ticks().back() ==
                           static_cast<Tick>(snapshotBase + task));
            }
        }
        scans.push_back(r.scan);
    }

    // The manifest is written last, on the calling thread, in server
    // order: the snap.manifest_skew probes it takes on the ambient
    // injector are deterministic at any thread count. Servers whose
    // snapshot write failed are simply absent — a later restore
    // cold-starts them. A partial (shard) range never writes a
    // manifest: its entries are stashed for the shard parent, which
    // merges every shard's and writes the one manifest itself, so
    // the per-entry manifest_skew probes land on the parent's
    // ambient injector exactly as in a single-process run.
    if (checkpointing) {
        std::vector<snap::ManifestEntry> entries;
        for (unsigned task = 0; task < count; ++task)
            if (results[task].snapEntry)
                entries.push_back(*results[task].snapEntry);
        if (lo == 0 && hi == config_.servers) {
            snap::Manifest manifest;
            manifest.fleetFingerprint = fleetFp;
            manifest.entries = std::move(entries);
            snap::writeManifest(config_.checkpointDir, manifest);
        } else {
            pendingManifestEntries_ = std::move(entries);
        }
    }

    // Per-worker partials merge in map order; OnlineHistogram::merge
    // is order-insensitive, so the result is the same bits as a
    // single sequential sink.
    if (config_.streamScans) {
        for (const auto &entry : workerSinks)
            streamSinks_.merge(entry.second);
    }

    runWallMs_ =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - wallStart)
            .count();
    return scans;
}

} // namespace ctg
