#include "fleet/fleet.hh"

#include "base/rng.hh"

namespace ctg
{

Fleet::Fleet(const Config &config)
    : config_(config)
{}

std::vector<ServerScan>
Fleet::run()
{
    Rng rng(config_.seed);
    std::vector<ServerScan> scans;
    scans.reserve(config_.servers);

    static const WorkloadKind kinds[] = {
        WorkloadKind::Web,    WorkloadKind::CacheA,
        WorkloadKind::CacheB, WorkloadKind::CI,
        WorkloadKind::Nginx,  WorkloadKind::Memcached,
    };

    for (unsigned i = 0; i < config_.servers; ++i) {
        Server::Config sc;
        sc.memBytes = config_.memBytes;
        sc.contiguitas = config_.contiguitas;
        sc.kind = kinds[rng.below(std::size(kinds))];
        sc.intensity =
            config_.minIntensity +
            rng.uniform() * (config_.maxIntensity -
                             config_.minIntensity);
        sc.prefragment = rng.chance(config_.prefragmentFrac);
        sc.uptimeSec =
            config_.minUptimeSec +
            rng.uniform() * (config_.maxUptimeSec -
                             config_.minUptimeSec);
        sc.seed = rng.next();
        Server server(sc);
        scans.push_back(server.run());
    }
    return scans;
}

} // namespace ctg
