/**
 * @file
 * Fleet-scale study driver: a population of servers with randomized
 * workloads, intensities and uptimes, run in parallel and scanned,
 * reproducing the methodology behind Figures 4, 5 and 6 and the
 * Section 2.4 uptime-correlation analysis.
 *
 * Servers are independent, so run() farms them out to a
 * work-stealing Executor. Determinism is a contract, not an
 * accident: per-server configs are pre-sampled from the fleet RNG
 * before dispatch, every worker task runs under a forked per-server
 * fault injector and a per-thread trace capture, and all observable
 * side effects (fleet Distributions, sampler snapshots, trace
 * output, fault counters) are applied in a merge step that walks
 * servers in index order — so a run is byte-identical at every
 * thread count, including threads = 1 (the legacy sequential path).
 * See DESIGN.md §10.
 */

#ifndef CTG_FLEET_FLEET_HH
#define CTG_FLEET_FLEET_HH

#include <optional>
#include <vector>

#include "base/mergeable_stats.hh"
#include "base/span_trace.hh"
#include "fleet/server.hh"
#include "fleet/shared_tables.hh"
#include "sim/snapshot.hh"

namespace ctg
{

/**
 * A sampled population of production-like servers.
 */
class Fleet
{
  public:
    struct Config
    {
        unsigned servers = 60;
        std::uint64_t memBytes = std::uint64_t{1} << 31; // 2 GiB
        /** Placement policy for every server, selected by registry
         * name (empty name = CTG_POLICY, else "vanilla"); copied
         * into each sampled Server::Config. */
        PolicyConfig policy;
        /** Uptime range (simulated seconds; the steady state is
         * reached within the first ~30 s of simulated churn, just as
         * production servers fragment within their first hour). */
        double minUptimeSec = 4.0;
        double maxUptimeSec = 60.0;
        /** Intensity spread across servers. */
        double minIntensity = 0.4;
        double maxIntensity = 1.6;
        /** Share of servers that were pre-fragmented by a previous
         * tenant. */
        double prefragmentFrac = 0.25;
        /** Continuation segment each server runs after its sampled
         * uptime (Server::Config::extraUptimeSec, a plain copy).
         * With a restore directory set, only this segment is
         * simulated — the sampled uptime comes from the snapshot. */
        double extraUptimeSec = 0.0;
        std::uint64_t seed = 0xf1ee7;
        /** Worker threads for run(): 0 = auto (the CTG_THREADS
         * environment variable, else hardware concurrency); 1 =
         * sequential legacy path. Any value produces bit-identical
         * results. */
        unsigned threads = 0;
        /** Fix every server's workload kind by name (workloadKey
         * vocabulary: "web", "cache-a", ..., "aging") instead of
         * sampling the standard six-kind mix — population studies of
         * a single workload (Figure 11 cells). Empty defers to
         * CTG_WORKLOAD, then to the deprecated kindOverride below.
         * The kind draw is still taken from the fleet RNG so the
         * rest of the seed stream is unchanged. Unknown names warn
         * and leave the sampled mix in place. */
        std::string workloadOverride;
        /** DEPRECATED (one-release shim): enum-typed form of
         * workloadOverride; ignored whenever workloadOverride or
         * CTG_WORKLOAD names a kind. Use workloadOverride. */
        std::optional<WorkloadKind> kindOverride;
        /** Per-server ContigIndex read toggle, copied into every
         * Server::Config (nullopt = CTG_CONTIG_INDEX, default on). */
        std::optional<bool> contigIndexReads;
        /** Per-server exact AddrPref toggle, copied into every
         * Server::Config (nullopt = CTG_EXACT_PREF, default off). */
        std::optional<bool> exactPref;
        /** Per-server scale stepping toggle, copied into every
         * Server::Config (nullopt = CTG_COARSE_STEP, default off).
         * Changes results (deliberately coarser model), so it is
         * part of both config fingerprints. */
        std::optional<bool> coarseStep;
        /** Pooled per-worker server arenas (nullopt = CTG_SLOT_POOL,
         * default on): each worker thread keeps one ServerSlot whose
         * arena backs every allocation a server task makes, reset
         * and reused across tasks instead of churning the heap.
         * Results are bit-identical either way; "false" restores the
         * per-task-churn baseline (the pool equivalence tests pin
         * this). */
        std::optional<bool> slotPool;
        /** Fold each server's scan into streaming per-worker
         * OnlineHistogram sinks as tasks finish, merged after the
         * run (scanSinks()). The sinks answer quantile/CDF queries
         * bit-identically to the materialized Distributions at any
         * thread count — the fleet-scale path that drops the
         * O(servers) sample vectors (CTG_STREAM_SCANS). */
        bool streamScans = false;

        /** Checkpoint directory (CTG_CHECKPOINT): every server's
         * state at its uptime boundary is written here as an
         * integrity-checked snapshot file, plus a manifest after the
         * run. Empty disables checkpointing. The run's results are
         * unchanged — servers continue into their extra segment
         * after the snapshot is taken. */
        std::string checkpointDir;

        /** Restore directory (CTG_RESTORE): servers resume from the
         * snapshots found here instead of simulating their uptime
         * segment. Any validation failure — missing file, torn
         * write, CRC mismatch, version skew, manifest disagreement,
         * failed audit — warns and cold-starts that server, so the
         * fleet's output is bit-identical to a straight-through run
         * either way. Empty disables restoring. */
        std::string restoreDir;

        /** Shard-internal knobs (set by runShardedFleet, not user
         * config): run only servers [rangeBegin, rangeEnd) while
         * sampling the full population's configs, so every shard
         * consumes the identical seed stream. 0/0 = whole fleet.
         * Neither field enters the fleet fingerprint — a sharded
         * run checkpoints/restores against the same manifest as a
         * single-process one. */
        unsigned rangeBegin = 0;
        unsigned rangeEnd = 0;
        /** Shard-internal: stash each server's span events in
         * takeCapturedSpans() order instead of publishing them to
         * the process-local collector, so a shard child can ship
         * them across the pipe for the parent to publish. */
        bool captureSpans = false;

        /** Overlay environment-derived fields (sim::EnvConfig) onto
         * any still-unset knobs (threads, contigIndexReads,
         * exactPref, coarseStep, slotPool, streamScans,
         * checkpointDir, restoreDir). */
        void applyEnvOverlay();
    };

    /** Streaming scan statistics: one mergeable sink per telemetry
     * Distribution. Workers fold scans into per-worker partials;
     * run() merges them (order-insensitively) into the fleet's
     * sinks. */
    struct ScanSinks
    {
        OnlineHistogram freeContiguity2m;
        OnlineHistogram unmovableBlocks2m;
        OnlineHistogram unmovablePageRatio;
        OnlineHistogram uptimeSec;

        /** Fold one server's scan. */
        void absorb(const ServerScan &scan);
        /** Fold another partial sink. */
        void merge(const ScanSinks &other);
    };

    explicit Fleet(const Config &config);

    /**
     * Attach fleet-level telemetry. Servers are transient (created
     * and destroyed per task), so per-server gauges would dangle;
     * the fleet instead owns value-holding Distributions of the scan
     * results, registered under `<prefix>.`, plus `run_wall_ms` /
     * `threads` gauges reading the last run()'s wall clock and
     * worker count (the fleet must outlive the registry's reads).
     *
     * If a sampler is given, the merge step snapshots it once per
     * server, in server order. The tick is the sampler's running
     * snapshot index — equal to the server index when the sampler is
     * fresh, and strictly increasing across repeated runs (ticks
     * restarting at 0 would corrupt snapshot ordering). The merge
     * asserts this ordering holds.
     */
    void attachTelemetry(StatRegistry &registry,
                         StatSampler *sampler = nullptr,
                         const std::string &prefix = "fleet");

    /** Run every server and collect its scan, indexed by server. */
    std::vector<ServerScan> run();

    /** Wall-clock milliseconds of the last run(). */
    double lastRunWallMs() const { return runWallMs_; }

    /** Worker threads the last run() used. */
    unsigned lastRunThreads() const { return runThreads_; }

    /** Merged streaming sinks of the last run(); empty unless
     * Config::streamScans was set. */
    const ScanSinks &scanSinks() const { return streamSinks_; }

    /** The population's shared calibration tables (built once in the
     * constructor and stamped into every sampled Server::Config). */
    std::shared_ptr<const SharedFleetTables> sharedTables() const
    {
        return tables_;
    }

    /** One server's config with every fleet-wide (non-sampled) knob
     * stamped: memBytes, policy, shared tables, toggles, step mode,
     * extra uptime. run() starts each sampled config from this;
     * benchmarks reuse it to probe a representative server without
     * restating the stamping rules. */
    Server::Config baseServerConfig() const;

    /** Span events captured by the last run() under
     * Config::captureSpans, one vector per server in the run's
     * range, in server order (moves them out; empty otherwise). */
    std::vector<std::vector<spans::Event>> takeCapturedSpans()
    {
        return std::move(capturedSpans_);
    }

    /** Manifest entries the last ranged run() produced instead of
     * writing a manifest (a partial range never writes one — the
     * shard parent merges entries from every shard and writes the
     * single manifest itself). Moves them out. */
    std::vector<snap::ManifestEntry> takePendingManifestEntries()
    {
        return std::move(pendingManifestEntries_);
    }

    const Config &config() const { return config_; }

  private:
    Config config_;
    std::shared_ptr<const SharedFleetTables> tables_;
    ScanSinks streamSinks_;
    std::vector<std::vector<spans::Event>> capturedSpans_;
    std::vector<snap::ManifestEntry> pendingManifestEntries_;
    StatSampler *sampler_ = nullptr;
    Distribution *freeContiguity2m_ = nullptr;
    Distribution *unmovableBlocks2m_ = nullptr;
    Distribution *unmovablePageRatio_ = nullptr;
    Distribution *uptimeSec_ = nullptr;
    Counter *serversRun_ = nullptr;
    double runWallMs_ = 0.0;
    unsigned runThreads_ = 0;
};

/** Fingerprint of everything in a Fleet::Config that shapes the
 * population (thread count, shard range and streaming/telemetry
 * knobs excluded — they are bit-identical by contract). Stamped into
 * the checkpoint manifest; a restore against a different fleet
 * configuration is refused up front. The workload override is mixed
 * in resolved form, so CTG_WORKLOAD=cache-b and the deprecated
 * kindOverride=CacheB fingerprint identically — they configure the
 * same population. */
std::uint64_t fleetConfigFingerprint(const Fleet::Config &config);

} // namespace ctg

#endif // CTG_FLEET_FLEET_HH
