/**
 * @file
 * Fleet-scale study driver: a population of servers with randomized
 * workloads, intensities and uptimes, run (sequentially) and
 * scanned, reproducing the methodology behind Figures 4, 5 and 6
 * and the Section 2.4 uptime-correlation analysis.
 */

#ifndef CTG_FLEET_FLEET_HH
#define CTG_FLEET_FLEET_HH

#include <vector>

#include "fleet/server.hh"

namespace ctg
{

/**
 * A sampled population of production-like servers.
 */
class Fleet
{
  public:
    struct Config
    {
        unsigned servers = 60;
        std::uint64_t memBytes = std::uint64_t{1} << 31; // 2 GiB
        bool contiguitas = false;
        /** Uptime range (simulated seconds; the steady state is
         * reached within the first ~30 s of simulated churn, just as
         * production servers fragment within their first hour). */
        double minUptimeSec = 4.0;
        double maxUptimeSec = 60.0;
        /** Intensity spread across servers. */
        double minIntensity = 0.4;
        double maxIntensity = 1.6;
        /** Share of servers that were pre-fragmented by a previous
         * tenant. */
        double prefragmentFrac = 0.25;
        std::uint64_t seed = 0xf1ee7;
    };

    explicit Fleet(const Config &config);

    /**
     * Attach fleet-level telemetry. Servers are transient (created
     * and destroyed per loop iteration), so per-server gauges would
     * dangle; the fleet instead owns value-holding Distributions of
     * the scan results, registered under `<prefix>.`. If a sampler
     * is given, run() snapshots it after every server with the
     * server index as the tick, so the registry's stats trace how
     * the population aggregates converge.
     */
    void attachTelemetry(StatRegistry &registry,
                         StatSampler *sampler = nullptr,
                         const std::string &prefix = "fleet");

    /** Run every server and collect its scan. */
    std::vector<ServerScan> run();

    const Config &config() const { return config_; }

  private:
    Config config_;
    StatSampler *sampler_ = nullptr;
    Distribution *freeContiguity2m_ = nullptr;
    Distribution *unmovableBlocks2m_ = nullptr;
    Distribution *unmovablePageRatio_ = nullptr;
    Distribution *uptimeSec_ = nullptr;
    Counter *serversRun_ = nullptr;
};

} // namespace ctg

#endif // CTG_FLEET_FLEET_HH
