#include "fleet/server.hh"

#include <algorithm>

#include "base/env_config.hh"
#include "base/serde.hh"
#include "base/trace.hh"
#include "fleet/shared_tables.hh"
#include "mem/auditor.hh"
#include "mem/mem_stats.hh"
#include "mem/scanner.hh"
#include "sim/fault_injector.hh"
#include "sim/snapshot.hh"

namespace ctg
{

void
Server::Config::applyEnvOverlay()
{
    if (policy.name.empty()) {
        const std::string spec = sim::EnvConfig::fromEnv().policySpec;
        if (!spec.empty())
            parsePolicySpec(spec, &policy);
    }
    if (!contigIndexReads) {
        contigIndexReads =
            sim::EnvConfig::fromEnv().contigIndexReads;
    }
    if (!exactPref)
        exactPref = sim::EnvConfig::fromEnv().exactPref;
    if (!coarseStep)
        coarseStep = sim::EnvConfig::fromEnv().coarseStep;
}

WorkloadProfile
scaleProfile(WorkloadProfile profile, double intensity)
{
    profile.net.skbRatePerSec *= intensity;
    profile.fs.scratchRatePerSec *= intensity;
    profile.fs.cacheGrowthPagesPerSec *= intensity;
    profile.slab.ratePerSec *= intensity;
    profile.miscRatePerSec *= intensity;
    profile.pinRatePerSec *= intensity;
    profile.heapChurnFracPerSec *= intensity;
    return profile;
}

namespace
{

KernelConfig
kernelConfigFor(const Server::Config &config)
{
    KernelConfig kc;
    kc.memBytes = config.memBytes;
    kc.kernelTextBytes = std::max<std::uint64_t>(
        std::uint64_t{4} << 20, config.memBytes / 1024);
    kc.seed = config.seed;
    return kc;
}

/** Resolve the config's policy against the registry; fatal on an
 * unregistered name (bad user config, not a simulator bug). */
PolicyRegistry::Entry
policyEntryFor(const Server::Config &config)
{
    PolicyRegistry::Entry entry;
    const std::string &name = config.policy.resolvedName();
    if (!PolicyRegistry::instance().find(name, &entry))
        fatal("unknown placement policy '%s'", name.c_str());
    return entry;
}

WorkloadProfile
profileFor(const Server::Config &config)
{
    // The shared tables are a cache of makeProfile outputs keyed by
    // (kind, memBytes); using them must be invisible in the results,
    // so a size mismatch falls back to building the profile here.
    if (config.sharedTables != nullptr &&
        config.sharedTables->memBytes() == config.memBytes) {
        return scaleProfile(config.sharedTables->profile(config.kind),
                            config.intensity);
    }
    return scaleProfile(makeProfile(config.kind, config.memBytes),
                        config.intensity);
}

} // namespace

Server::Server(const Config &config)
    : config_(config)
{
    const KernelConfig kc = kernelConfigFor(config_);
    const PolicyRegistry::Entry entry = policyEntryFor(config_);
    kernel_ = std::make_unique<Kernel>(
        kc, [&entry, this](Kernel &kernel) {
            return entry.make(kernel, config_.policy);
        });

    kernel_->mem().setContigIndexReads(config_.contigIndexReads.value_or(
        sim::EnvConfig::fromEnv().contigIndexReads));
    kernel_->mem().setExactAddrPref(config_.exactPref.value_or(
        sim::EnvConfig::fromEnv().exactPref));

    workload_ = std::make_unique<Workload>(
        *kernel_, profileFor(config_), config_.seed ^ 0x77ff);
}

Server::Server(const Config &config, serde::Reader &in)
    : config_(config)
{
    // Mirrors saveTo(): policy name, then kernel (memory + policy +
    // kernel state), then the optional fragmenter, then the workload
    // — the same construction order as the cold path, so
    // owner-client ids and the shrinker list land exactly where the
    // checkpoint had them.
    //
    // The *serialized* name selects the registry entry: an image is
    // restorable on any config whose fingerprint matches, and a name
    // that is no longer registered is a recoverable decode failure
    // (cold-start fallback), not a crash.
    const std::string name = in.getString();
    PolicyRegistry::Entry entry;
    if (!PolicyRegistry::instance().find(name, &entry)) {
        throw serde::Error("snapshot: unknown placement policy '" +
                           name + "'");
    }
    const KernelConfig kc = kernelConfigFor(config_);
    kernel_ = std::make_unique<Kernel>(
        kc,
        [&entry, &in, this](Kernel &kernel) {
            return entry.restore(kernel, config_.policy, in);
        },
        in);

    kernel_->mem().setContigIndexReads(config_.contigIndexReads.value_or(
        sim::EnvConfig::fromEnv().contigIndexReads));
    kernel_->mem().setExactAddrPref(config_.exactPref.value_or(
        sim::EnvConfig::fromEnv().exactPref));

    const bool hasFragmenter = in.getBool();
    if (hasFragmenter != config_.prefragment)
        throw serde::Error(
            "server: fragmenter presence disagrees with config");
    if (hasFragmenter) {
        fragmenter_ = std::make_unique<Fragmenter>(
            *kernel_, Fragmenter::Config{}, in);
    }
    workload_ = std::make_unique<Workload>(
        *kernel_, profileFor(config_), in);
}

void
Server::saveTo(serde::Writer &out) const
{
    out.putString(config_.policy.resolvedName());
    kernel_->saveTo(out);
    out.putBool(fragmenter_ != nullptr);
    if (fragmenter_)
        fragmenter_->saveTo(out);
    workload_->saveTo(out);
}

Server::~Server() = default;

void
Server::enableStepAudit()
{
    if (!auditor_)
        auditor_ = kernel_->makeAuditor();
}

ServerScan
Server::scan() const
{
    const MemStats stats = kernel_->mem().stats();
    ServerScan result;

    const unsigned orders4[4] = {scan::order2M, scan::order4M,
                                 scan::order32M, scan::order1G};
    for (int i = 0; i < 4; ++i) {
        result.freeContiguity[i] =
            stats.freeContiguityFraction(orders4[i]);
        result.unmovableBlocks[i] =
            stats.unmovableBlockFraction(orders4[i]);
    }
    const unsigned orders3[3] = {scan::order2M, scan::order32M,
                                 scan::order1G};
    for (int i = 0; i < 3; ++i) {
        result.potentialContiguity[i] =
            stats.potentialContiguityFraction(orders3[i]);
    }
    result.unmovablePageRatio = stats.unmovablePageRatio();
    result.bySource = stats.unmovableBySource();
    result.freePages = stats.freePages();
    result.free2mBlocks = stats.freeAlignedBlocks(scan::order2M);
    const auto region = kernel_->policy().unmovableRegion();
    if (region.second > region.first) {
        result.unmovableRegionFreeShare =
            stats.meanFreeShareOfUnmovableBlocks(region.first,
                                                 region.second);
    } else {
        result.unmovableRegionFreeShare =
            stats.meanFreeShareOfUnmovableBlocks();
    }
    result.uptimeSec = workload_ ? workload_->now() : 0.0;
    return result;
}

void
Server::attachTelemetry(StatRegistry &registry, StatSampler *sampler,
                        const std::string &prefix)
{
    const StatGroup group(registry, prefix);
    kernel_->regStats(group.group("kernel"));
    kernel_->policy().regStats(group);
    workload_->regStats(group.group("workload"));
    if (auditor_)
        auditor_->regStats(group.group("audit"));

    // Fragmentation gauges answer from the ContigIndex when index
    // reads are enabled (O(1)); with the reference path selected
    // they re-scan physical memory on every read.
    const StatGroup frag = group.group("frag");
    const PhysMem &mem = kernel_->mem();
    frag.gauge(
        "free_contiguity_2m",
        [&mem] {
            return mem.stats().freeContiguityFraction(scan::order2M);
        },
        "fraction of free memory in free aligned 2M blocks");
    frag.gauge(
        "unmovable_blocks_2m",
        [&mem] {
            return mem.stats().unmovableBlockFraction(scan::order2M);
        },
        "fraction of 2M blocks containing unmovable pages");
    frag.gauge(
        "free_2m_blocks",
        [&mem] {
            return double(
                mem.stats().freeAlignedBlocks(scan::order2M));
        });
    frag.gauge(
        "unmovable_page_ratio",
        [&mem] { return mem.stats().unmovablePageRatio(); });
    sampler_ = sampler;
}

void
Server::runSegment(double seconds)
{
    if (sampler_ == nullptr && auditor_ == nullptr) {
        if (seconds <= 0.0)
            return;
        if (!config_.coarseStep.value_or(
                sim::EnvConfig::fromEnv().coarseStep)) {
            workload_->runFor(seconds, config_.stepSec);
            return;
        }
        // Scale stepping: batch the remainder of the segment into a
        // single workload step while the policy is idle; fall back
        // to the fine cadence while maintenance (deferred resizes)
        // is pending so its per-tick retries still happen. Pending
        // work surfacing *inside* a batched step waits for the next
        // quantum boundary — that coarsening is the model, and it
        // is deterministic either way.
        double remaining = seconds;
        while (remaining > 0.0) {
            const double dt =
                kernel_->policy().hasPendingMaintenance()
                    ? std::min(config_.stepSec, remaining)
                    : remaining;
            workload_->runFor(dt, dt);
            remaining -= dt;
        }
        return;
    }

    // Stepped run: advance step by step so the sampler can snapshot
    // the stat tree along the way and the auditor can cross-check the
    // memory stack after every step. Ticks are simulated milliseconds.
    double remaining = seconds;
    while (remaining > 0.0) {
        const double dt = std::min(config_.stepSec, remaining);
        workload_->runFor(dt, dt);
        remaining -= dt;
        if (auditor_)
            auditor_->auditOrDie();
        if (sampler_) {
            sampler_->sample(
                static_cast<Tick>(workload_->now() * 1000.0));
        }
    }
}

void
Server::runToCheckpoint()
{
    if (config_.prefragment) {
        Fragmenter::Config fc;
        fragmenter_ = std::make_unique<Fragmenter>(
            *kernel_, fc, config_.seed ^ 0xf7a6);
        fragmenter_->run();
        if (auditor_)
            auditor_->auditOrDie();
    }
    workload_->start();
    if (auditor_)
        auditor_->auditOrDie();
    if (sampler_) {
        sampler_->sample(
            static_cast<Tick>(workload_->now() * 1000.0));
    }
    runSegment(config_.uptimeSec);
}

ServerScan
Server::resume()
{
    runSegment(config_.extraUptimeSec);
    return scan();
}

ServerScan
Server::run()
{
    runToCheckpoint();
    return resume();
}

void
mixPolicyConfig(snap::Fingerprint &fp, const PolicyConfig &policy)
{
    const std::string &name = policy.resolvedName();
    fp.mixU64(name.size());
    for (const char c : name)
        fp.mixU32(static_cast<std::uint32_t>(
            static_cast<unsigned char>(c)));

    // Every knob the contiguitas-family entries read shapes
    // placement, so all of them guard the snapshot fingerprint.
    const ContiguitasConfig &cc = policy.contiguitas;
    fp.mixU64(cc.region.initialUnmovablePages);
    fp.mixU64(cc.region.minUnmovablePages);
    fp.mixU64(cc.region.maxUnmovablePages);
    fp.mixDouble(cc.resize.thresholdUnmov);
    fp.mixDouble(cc.resize.thresholdMov);
    fp.mixDouble(cc.resize.cue);
    fp.mixDouble(cc.resize.cme);
    fp.mixDouble(cc.resize.cms);
    fp.mixDouble(cc.resize.cus);
    fp.mixDouble(cc.resize.maxFactor);
    fp.mixDouble(cc.tuning.periodSec);
    fp.mixU64(cc.tuning.stepPages);
    fp.mixU64(cc.tuning.maxPerTick);
    fp.mixDouble(cc.tuning.unmovFreeWatermark);
    fp.mixDouble(cc.tuning.shrinkFreeSlack);
    fp.mixBool(cc.hwMigration);
    fp.mixBool(cc.placementBias);
    fp.mixU64(cc.defragBlocksPerTick);
    fp.mixBool(cc.staticBoundary);
}

std::uint64_t
serverConfigFingerprint(const Server::Config &config)
{
    snap::Fingerprint fp;
    fp.mixU64(config.memBytes);
    mixPolicyConfig(fp, config.policy);
    fp.mixU32(static_cast<std::uint32_t>(config.kind));
    fp.mixDouble(config.intensity);
    fp.mixBool(config.prefragment);
    fp.mixDouble(config.uptimeSec);
    fp.mixDouble(config.extraUptimeSec);
    fp.mixDouble(config.stepSec);
    fp.mixU64(config.seed);
    // exactPref changes placement, so a snapshot taken with it on
    // must not silently continue with it off (and vice versa).
    // contigIndexReads only selects a bit-identical read path and
    // sharedTables is a pure cache of makeProfile outputs; both are
    // deliberately left out.
    fp.mixBool(config.exactPref.value_or(
        sim::EnvConfig::fromEnv().exactPref));
    // Coarse stepping batches workload events differently, so a
    // snapshot taken fine must not silently resume coarse.
    fp.mixBool(config.coarseStep.value_or(
        sim::EnvConfig::fromEnv().coarseStep));
    return fp.value();
}

std::vector<std::uint8_t>
encodeSnapshot(const Server &server, const FaultInjector &faults)
{
    serde::Writer out;
    snap::beginImage(out);

    out.beginSection(snap::SecMeta);
    out.putU64(serverConfigFingerprint(server.config()));
    out.endSection();

    out.beginSection(snap::SecServer);
    server.saveTo(out);
    out.endSection();

    out.beginSection(snap::SecFaults);
    faults.saveTo(out);
    out.endSection();

    out.beginSection(snap::SecEnd);
    out.endSection();
    return out.take();
}

std::unique_ptr<Server>
decodeSnapshot(const Server::Config &config,
               const std::vector<std::uint8_t> &bytes,
               FaultInjector *faults)
{
    serde::Reader in(bytes);
    snap::openImage(in);

    auto expect = [&in](std::uint32_t id) -> serde::Reader {
        serde::Reader::Section section = in.nextSection();
        if (section.id != id)
            throw serde::Error("snapshot: unexpected section " +
                               std::to_string(section.id));
        return section.payload;
    };

    serde::Reader meta = expect(snap::SecMeta);
    if (meta.getU64() != serverConfigFingerprint(config))
        throw serde::Error(
            "snapshot: server-config fingerprint mismatch");

    serde::Reader body = expect(snap::SecServer);
    auto server = std::make_unique<Server>(config, body);
    if (!body.atEnd())
        throw serde::Error(
            "snapshot: trailing bytes in server section");

    // Restore the injector into a scratch copy first: a failure past
    // this point must leave the caller's injector untouched so the
    // cold-start fallback replays the straight-through pattern.
    serde::Reader faultBody = expect(snap::SecFaults);
    FaultInjector restoredFaults(0);
    restoredFaults.loadFrom(faultBody);
    if (!faultBody.atEnd())
        throw serde::Error(
            "snapshot: trailing bytes in faults section");

    serde::Reader end = expect(snap::SecEnd);
    if (!end.atEnd() || !in.atEnd())
        throw serde::Error("snapshot: trailing bytes after end");

    // Integrity gate: the restored machine must pass the same
    // system-wide invariant audit chaos runs enforce — free lists,
    // page conservation, region accounting, owner handles, pin
    // tables — before a single workload step runs on it.
    const AuditReport report =
        server->kernel().makeAuditor()->audit();
    if (!report.ok())
        throw serde::Error("snapshot: restored state failed audit: " +
                           report.summary());

    if (faults != nullptr)
        *faults = restoredFaults;
    return server;
}

} // namespace ctg
