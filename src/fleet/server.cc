#include "fleet/server.hh"

#include <algorithm>

#include "base/env_config.hh"
#include "base/trace.hh"
#include "mem/auditor.hh"
#include "mem/mem_stats.hh"
#include "mem/scanner.hh"

namespace ctg
{

void
Server::Config::applyEnvOverlay()
{
    if (!contigIndexReads) {
        contigIndexReads =
            sim::EnvConfig::fromEnv().contigIndexReads;
    }
    if (!exactPref)
        exactPref = sim::EnvConfig::fromEnv().exactPref;
}

WorkloadProfile
scaleProfile(WorkloadProfile profile, double intensity)
{
    profile.net.skbRatePerSec *= intensity;
    profile.fs.scratchRatePerSec *= intensity;
    profile.fs.cacheGrowthPagesPerSec *= intensity;
    profile.slab.ratePerSec *= intensity;
    profile.miscRatePerSec *= intensity;
    profile.pinRatePerSec *= intensity;
    profile.heapChurnFracPerSec *= intensity;
    return profile;
}

Server::Server(const Config &config)
    : config_(config)
{
    KernelConfig kc;
    kc.memBytes = config_.memBytes;
    kc.kernelTextBytes = std::max<std::uint64_t>(
        std::uint64_t{4} << 20, config_.memBytes / 1024);
    kc.seed = config_.seed;

    if (config_.contiguitas) {
        ContiguitasConfig cc = config_.contiguitasConfig;
        if (cc.region.initialUnmovablePages == 0) {
            // Paper default: 1/16 of memory (4 GB on 64 GB hosts).
            cc.region.initialUnmovablePages =
                (config_.memBytes / pageBytes) / 16;
        }
        kernel_ = std::make_unique<Kernel>(
            kc, ContiguitasPolicy::factory(cc));
    } else {
        kernel_ = std::make_unique<Kernel>(kc);
    }

    kernel_->mem().setContigIndexReads(config_.contigIndexReads.value_or(
        sim::EnvConfig::fromEnv().contigIndexReads));
    kernel_->mem().setExactAddrPref(config_.exactPref.value_or(
        sim::EnvConfig::fromEnv().exactPref));

    WorkloadProfile profile = scaleProfile(
        makeProfile(config_.kind, config_.memBytes),
        config_.intensity);
    workload_ = std::make_unique<Workload>(*kernel_, profile,
                                           config_.seed ^ 0x77ff);
}

Server::~Server() = default;

void
Server::enableStepAudit()
{
    if (!auditor_)
        auditor_ = kernel_->makeAuditor();
}

ServerScan
Server::scan() const
{
    const MemStats stats = kernel_->mem().stats();
    ServerScan result;

    const unsigned orders4[4] = {scan::order2M, scan::order4M,
                                 scan::order32M, scan::order1G};
    for (int i = 0; i < 4; ++i) {
        result.freeContiguity[i] =
            stats.freeContiguityFraction(orders4[i]);
        result.unmovableBlocks[i] =
            stats.unmovableBlockFraction(orders4[i]);
    }
    const unsigned orders3[3] = {scan::order2M, scan::order32M,
                                 scan::order1G};
    for (int i = 0; i < 3; ++i) {
        result.potentialContiguity[i] =
            stats.potentialContiguityFraction(orders3[i]);
    }
    result.unmovablePageRatio = stats.unmovablePageRatio();
    result.bySource = stats.unmovableBySource();
    result.freePages = stats.freePages();
    result.free2mBlocks = stats.freeAlignedBlocks(scan::order2M);
    const auto region = kernel_->policy().unmovableRegion();
    if (region.second > region.first) {
        result.unmovableRegionFreeShare =
            stats.meanFreeShareOfUnmovableBlocks(region.first,
                                                 region.second);
    } else {
        result.unmovableRegionFreeShare =
            stats.meanFreeShareOfUnmovableBlocks();
    }
    result.uptimeSec = workload_ ? workload_->now() : 0.0;
    return result;
}

void
Server::attachTelemetry(StatRegistry &registry, StatSampler *sampler,
                        const std::string &prefix)
{
    const StatGroup group(registry, prefix);
    kernel_->regStats(group.group("kernel"));
    kernel_->policy().regStats(group);
    workload_->regStats(group.group("workload"));
    if (auditor_)
        auditor_->regStats(group.group("audit"));

    // Fragmentation gauges answer from the ContigIndex when index
    // reads are enabled (O(1)); with the reference path selected
    // they re-scan physical memory on every read.
    const StatGroup frag = group.group("frag");
    const PhysMem &mem = kernel_->mem();
    frag.gauge(
        "free_contiguity_2m",
        [&mem] {
            return mem.stats().freeContiguityFraction(scan::order2M);
        },
        "fraction of free memory in free aligned 2M blocks");
    frag.gauge(
        "unmovable_blocks_2m",
        [&mem] {
            return mem.stats().unmovableBlockFraction(scan::order2M);
        },
        "fraction of 2M blocks containing unmovable pages");
    frag.gauge(
        "free_2m_blocks",
        [&mem] {
            return double(
                mem.stats().freeAlignedBlocks(scan::order2M));
        });
    frag.gauge(
        "unmovable_page_ratio",
        [&mem] { return mem.stats().unmovablePageRatio(); });
    sampler_ = sampler;
}

ServerScan
Server::run()
{
    if (config_.prefragment) {
        Fragmenter::Config fc;
        fragmenter_ = std::make_unique<Fragmenter>(
            *kernel_, fc, config_.seed ^ 0xf7a6);
        fragmenter_->run();
        if (auditor_)
            auditor_->auditOrDie();
    }
    workload_->start();
    if (auditor_)
        auditor_->auditOrDie();
    if (sampler_ == nullptr && auditor_ == nullptr) {
        workload_->runFor(config_.uptimeSec, config_.stepSec);
        return scan();
    }

    // Stepped run: advance step by step so the sampler can snapshot
    // the stat tree along the way and the auditor can cross-check the
    // memory stack after every step. Ticks are simulated milliseconds.
    if (sampler_) {
        sampler_->sample(
            static_cast<Tick>(workload_->now() * 1000.0));
    }
    double remaining = config_.uptimeSec;
    while (remaining > 0.0) {
        const double dt = std::min(config_.stepSec, remaining);
        workload_->runFor(dt, dt);
        remaining -= dt;
        if (auditor_)
            auditor_->auditOrDie();
        if (sampler_) {
            sampler_->sample(
                static_cast<Tick>(workload_->now() * 1000.0));
        }
    }
    return scan();
}

} // namespace ctg
