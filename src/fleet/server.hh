/**
 * @file
 * One fleet server: a kernel (vanilla or Contiguitas), a workload,
 * an optional fragmentation pretreatment, and the full-memory scan
 * the paper's fleet studies perform (Sections 2.4, 2.5, 5.2).
 */

#ifndef CTG_FLEET_SERVER_HH
#define CTG_FLEET_SERVER_HH

#include <array>
#include <memory>
#include <optional>
#include <string>

#include "contiguitas/policy_registry.hh"
#include "kernel/kernel.hh"
#include "sim/stat_sampler.hh"
#include "workloads/fragmenter.hh"
#include "workloads/workload.hh"

namespace ctg
{

class SharedFleetTables;

/** Results of one server's full memory scan. */
struct ServerScan
{
    /** Free contiguity as a fraction of free memory (Figure 4),
     * indexed 2M/4M/32M/1G. */
    std::array<double, 4> freeContiguity{};
    /** Fraction of aligned blocks containing unmovable pages
     * (Figure 5 / Figure 11), indexed 2M/4M/32M/1G. */
    std::array<double, 4> unmovableBlocks{};
    /** Post-perfect-compaction contiguity as fraction of memory
     * (Figure 12), indexed 2M/32M/1G. */
    std::array<double, 3> potentialContiguity{};
    /** Unmovable 4 KB pages / total pages. */
    double unmovablePageRatio = 0.0;
    /** Unmovable pages per source (Figure 6). */
    std::array<std::uint64_t, numAllocSources> bySource{};
    /** Free pages at scan time. */
    std::uint64_t freePages = 0;
    /** Free aligned 2 MB blocks (uptime-correlation study). */
    std::uint64_t free2mBlocks = 0;
    /** Mean free share inside unmovable 2 MB blocks (Section 5.2's
     * internal fragmentation; scoped to the unmovable region when
     * one exists). */
    double unmovableRegionFreeShare = 0.0;
    /** Simulated uptime. */
    double uptimeSec = 0.0;
};

/**
 * A single simulated server.
 */
class Server
{
  public:
    struct Config
    {
        std::uint64_t memBytes = std::uint64_t{2} << 30;
        /** Placement policy, selected by registry name (empty name =
         * CTG_POLICY, else "vanilla"). Construction goes through
         * PolicyRegistry::instance(); an unregistered name is fatal
         * at server construction. The embedded ContiguitasConfig
         * carries the knobs the contiguitas-family entries use. */
        PolicyConfig policy;
        WorkloadKind kind = WorkloadKind::Web;
        /** Scales all kernel churn rates of the profile. */
        double intensity = 1.0;
        /** Run the Full Fragmentation pretreatment first. */
        bool prefragment = false;
        double uptimeSec = 40.0;
        /** Continuation segment run after the checkpoint boundary.
         * run() always executes uptimeSec then extraUptimeSec as two
         * separate segments, so a straight-through run and a
         * checkpoint-at-the-boundary + resume() run take the exact
         * same sequence of workload steps — the foundation of the
         * bit-identical warm-start contract. */
        double extraUptimeSec = 0.0;
        double stepSec = 1.0;
        /** Scale stepping (nullopt defers to CTG_COARSE_STEP,
         * default off): while the policy reports no pending
         * maintenance, batch the rest of the segment into one
         * workload step instead of pacing at stepSec — skipping the
         * per-step tick/PSI/kcompactd overhead on idle ticks.
         * Deterministic, but a deliberately coarser model than fine
         * stepping (it changes results, so it is fingerprinted);
         * figure regressions pin that the confinement direction and
         * CDF shapes survive it. Ignored when a sampler or step
         * auditor needs the per-step cadence. */
        std::optional<bool> coarseStep;
        std::uint64_t seed = 1;
        /** Metric reads answer from the ContigIndex (nullopt defers
         * to the CTG_CONTIG_INDEX environment knob, default on).
         * The index is maintained either way; this only selects the
         * read path, and results are bit-identical. */
        std::optional<bool> contigIndexReads;
        /** Exact index-backed AddrPref placement (nullopt defers to
         * CTG_EXACT_PREF, default off). Unlike contigIndexReads this
         * deliberately changes placement, so it is opt-in and has
         * its own figure-regression check. */
        std::optional<bool> exactPref;
        /** Shared per-population calibration tables (workload
         * profiles at this memBytes, hw/perfmodel constants). A pure
         * cache of makeProfile outputs: null or mismatched memBytes
         * falls back to building the profile per server, with
         * bit-identical results either way — which is why this is
         * excluded from serverConfigFingerprint. */
        std::shared_ptr<const SharedFleetTables> sharedTables;

        /** Overlay environment-derived fields (sim::EnvConfig) onto
         * any still-unset knobs (CTG_POLICY applies only while
         * policy.name is empty). */
        void applyEnvOverlay();
    };

    explicit Server(const Config &config);

    /**
     * Checkpoint restore: rebuild the complete server — frame table,
     * allocators, policy, registries, workload, RNG streams — from a
     * decoded Server snapshot section. The config must match the one
     * the snapshot was taken under (decodeSnapshot checks the
     * fingerprint first). Throws serde::Error on malformed input;
     * use resume() afterwards, never run().
     */
    Server(const Config &config, serde::Reader &in);

    ~Server();

    /** Boot, (optionally) fragment, run the workload, and scan.
     * Equivalent to runToCheckpoint() followed by resume(). */
    ServerScan run();

    /** First half of run(): pretreatment, workload start, and the
     * uptimeSec segment, stopping at the checkpoint boundary. */
    void runToCheckpoint();

    /** Second half of run(): the extraUptimeSec continuation segment
     * and the final scan. Valid after runToCheckpoint() or on a
     * snapshot-restored server. */
    ServerScan resume();

    /** Serialize the complete server state (the payload of a
     * snapshot Server section). Call at the checkpoint boundary —
     * i.e. after runToCheckpoint(), before resume(). */
    void saveTo(serde::Writer &out) const;

    /**
     * Audit the whole memory stack (free lists, frame table, page
     * conservation, region accounting, confinement, owner handles,
     * pin tables) after pretreatment and after every workload step
     * of run(), panicking on the first violation. Chaos tests run
     * fleets with this on while the fault injector fires. Call
     * before attachTelemetry to get `audit.*` gauges.
     */
    void enableStepAudit();

    /** The step auditor, or nullptr when disabled. */
    MemAuditor *auditor() { return auditor_.get(); }

    Kernel &kernel() { return *kernel_; }
    const Kernel &kernel() const { return *kernel_; }
    Workload &workload() { return *workload_; }
    const Config &config() const { return config_; }

    /** Scan without running (for intermediate sampling). */
    ServerScan scan() const;

    /**
     * Register this server's whole stat tree (kernel, policy,
     * workload, fragmentation gauges) under `<prefix>.` in the
     * registry. The registry's gauges read live server state, so it
     * must not outlive the server. If a sampler is given, run()
     * snapshots it after every workload step with the simulated time
     * in milliseconds as the tick, producing the fragmentation
     * trajectory time series.
     */
    void attachTelemetry(StatRegistry &registry,
                         StatSampler *sampler = nullptr,
                         const std::string &prefix = "server");

  private:
    /** Advance the workload by one segment, honouring the stepped
     * audit/sampling mode when enabled. */
    void runSegment(double seconds);

    Config config_;
    std::unique_ptr<Kernel> kernel_;
    std::unique_ptr<Fragmenter> fragmenter_;
    std::unique_ptr<Workload> workload_;
    std::unique_ptr<MemAuditor> auditor_;
    StatSampler *sampler_ = nullptr;
};

/** Scale a profile's kernel churn rates by an intensity factor. */
WorkloadProfile scaleProfile(WorkloadProfile profile,
                             double intensity);

class FaultInjector;

namespace snap
{
class Fingerprint;
} // namespace snap

/** Mix a PolicyConfig — resolved name plus every knob that shapes
 * placement — into a snapshot fingerprint. Shared by the server and
 * fleet config fingerprints so both refuse images taken under a
 * different policy. */
void mixPolicyConfig(snap::Fingerprint &fp, const PolicyConfig &policy);

/** Fingerprint of everything in a Server::Config that shapes the
 * simulation (exactPref included — it changes placement). Stored in
 * a snapshot's Meta section; decodeSnapshot refuses images whose
 * fingerprint disagrees with the restoring config. */
std::uint64_t serverConfigFingerprint(const Server::Config &config);

/**
 * Encode a complete snapshot image for a server at its checkpoint
 * boundary: container header, Meta (config fingerprint), Server
 * (full state), Faults (the injector driving this server's task) and
 * End sections. Pair with snap::writeImageFile for durable storage.
 */
std::vector<std::uint8_t> encodeSnapshot(const Server &server,
                                         const FaultInjector &faults);

/**
 * Decode, validate and restore a snapshot image. Checks the header,
 * every section CRC, the Meta fingerprint against `config`, restores
 * the server, then cross-checks the result with a full MemAuditor
 * audit before anything runs. Only when all of that passes is
 * `faults` overwritten with the snapshot's injector state — a failed
 * decode leaves it untouched, so the cold-start fallback replays the
 * straight-through firing pattern. Throws serde::Error on any
 * failure.
 */
std::unique_ptr<Server>
decodeSnapshot(const Server::Config &config,
               const std::vector<std::uint8_t> &bytes,
               FaultInjector *faults);

} // namespace ctg

#endif // CTG_FLEET_SERVER_HH
