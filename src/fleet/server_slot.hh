/**
 * @file
 * Per-worker pooled server storage for fleet runs.
 *
 * A ServerSlot pairs one Arena (base/arena.hh) with the Server
 * currently living inside it. Fleet workers keep one slot per
 * thread and recycle it across tasks: begin() tears the previous
 * server down and rewinds the arena in O(blocks), then the task
 * constructs (or snapshot-restores) the next server into the same
 * storage — eliminating the per-task heap churn that dominates
 * setup/teardown cost at 10⁵–10⁶-server populations. Simulation
 * results are bit-identical to fresh construction (nothing in the
 * simulator observes allocation addresses); the pooled-vs-fresh
 * equivalence suite in tests/test_fleet_scale.cc pins that, with
 * every fault site armed, at 1/4/8 threads.
 *
 * Lifecycle per task (see Fleet::run):
 *   slot.begin();                     // destroy old, rewind arena
 *   ArenaScope scope(slot.arena());   // route this thread's news
 *   Server &server = slot.construct(config);   // or adopt(...)
 *   ... run, scan, deep-copy outliving results (ArenaSuspend) ...
 *   // scope closes; storage stays parked until the next begin()
 *
 * begin() must run *before* the task's ArenaScope opens: the rewind
 * invalidates every allocation in the arena, so nothing the task
 * has already allocated (trace captures, span state) may predate
 * it.
 */

#ifndef CTG_FLEET_SERVER_SLOT_HH
#define CTG_FLEET_SERVER_SLOT_HH

#include <memory>

#include "base/arena.hh"
#include "fleet/server.hh"

namespace ctg
{

class ServerSlot
{
  public:
    ServerSlot() = default;

    ~ServerSlot()
    {
        const ArenaScope scope(arena_);
        current_.reset();
        // arena_ destroyed after current_: the server's frees are
        // owns() no-ops, then the blocks go back to the host.
    }

    ServerSlot(const ServerSlot &) = delete;
    ServerSlot &operator=(const ServerSlot &) = delete;

    /** Destroy the previous task's server and rewind the arena.
     * Call once per task, before opening the task's ArenaScope. */
    void
    begin()
    {
        const ArenaScope scope(arena_);
        current_.reset();
        arena_.reset();
    }

    /** Cold-construct the task's server inside the arena. Does not
     * rewind (so a failed restore can fall back to this without
     * clobbering its own trace/span captures). */
    Server &
    construct(const Server::Config &config)
    {
        const ArenaScope scope(arena_);
        current_ = std::make_unique<Server>(config);
        return *current_;
    }

    /** Adopt a server the caller built under this slot's scope (the
     * snapshot-restore path, where decodeSnapshot owns
     * construction). */
    Server &
    adopt(std::unique_ptr<Server> server)
    {
        current_ = std::move(server);
        return *current_;
    }

    /** The arena tasks should scope their allocations into. */
    Arena &arena() { return arena_; }

  private:
    Arena arena_;
    std::unique_ptr<Server> current_;
};

} // namespace ctg

#endif // CTG_FLEET_SERVER_SLOT_HH
