#include "fleet/sharding.hh"

#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <unordered_set>

#include "base/host_mem.hh"
#include "base/logging.hh"
#include "base/serde.hh"
#include "base/span_trace.hh"
#include "sim/fault_injector.hh"
#include "sim/snapshot.hh"

namespace ctg
{

namespace
{

/** Section ids of the child → parent result stream. */
enum ShardSection : std::uint32_t
{
    SecHeader = 0x53484452,   // "SHDR"
    SecScans = 0x5343414e,    // "SCAN"
    SecSinks = 0x53494e4b,    // "SINK"
    SecFaults = 0x464c5453,   // "FLTS"
    SecSpans = 0x53504e53,    // "SPNS"
    SecManifest = 0x4d414e46, // "MANF"
    SecGauges = 0x47415547,   // "GAUG"
};

constexpr std::uint32_t shardStreamMagic = 0x43544748; // "CTGH"
constexpr std::uint32_t shardFormatVersion = 1;

void
writeFully(int fd, const std::uint8_t *data, std::size_t len)
{
    while (len > 0) {
        const ssize_t wrote = ::write(fd, data, len);
        if (wrote < 0) {
            if (errno == EINTR)
                continue;
            // The parent is gone; nothing useful left to do but
            // die — the parent's waitpid sees the failure.
            std::fprintf(stderr,
                         "ctg shard: result write failed: %s\n",
                         std::strerror(errno));
            ::_exit(1);
        }
        data += wrote;
        len -= static_cast<std::size_t>(wrote);
    }
}

std::vector<std::uint8_t>
readAll(int fd)
{
    std::vector<std::uint8_t> buf;
    std::uint8_t chunk[1u << 16];
    for (;;) {
        const ssize_t got = ::read(fd, chunk, sizeof(chunk));
        if (got < 0) {
            if (errno == EINTR)
                continue;
            throw FatalError(std::string("shard pipe read failed: ") +
                             std::strerror(errno));
        }
        if (got == 0)
            return buf;
        buf.insert(buf.end(), chunk, chunk + got);
    }
}

/** Intern a span name/key shipped from a shard: spans::Event stores
 * `const char *` to storage that must outlive the collector, which
 * literals guarantee in-process but serialized strings do not. The
 * pool is append-only and deliberately reachable for the process
 * lifetime. */
const char *
internSpanString(const std::string &s)
{
    static std::mutex mu;
    static std::unordered_set<std::string> pool;
    const std::lock_guard<std::mutex> lock(mu);
    return pool.insert(s).first->c_str();
}

void
putEvent(serde::Writer &out, const spans::Event &e)
{
    out.putU8(static_cast<std::uint8_t>(e.phase));
    out.putU32(static_cast<std::uint32_t>(e.flag));
    out.putString(e.name);
    out.putU64(e.id);
    out.putU64(e.parent);
    out.putU64(e.ts);
    out.putU64(static_cast<std::uint64_t>(e.tick));
    out.putU64(e.wallUs);
    out.putU32(e.stream);
    out.putU8(e.nargs);
    for (unsigned a = 0; a < e.nargs && a < spans::maxArgs; ++a) {
        out.putString(e.args[a].key);
        out.putU64(static_cast<std::uint64_t>(e.args[a].value));
    }
}

spans::Event
getEvent(serde::Reader &in)
{
    spans::Event e;
    const std::uint8_t phase = in.getU8();
    if (phase > static_cast<std::uint8_t>(
                    spans::Event::Phase::FlowEnd))
        throw serde::Error("shard: span phase out of range");
    e.phase = static_cast<spans::Event::Phase>(phase);
    e.flag = static_cast<TraceFlag>(in.getU32());
    e.name = internSpanString(in.getString());
    e.id = in.getU64();
    e.parent = in.getU64();
    e.ts = in.getU64();
    e.tick = static_cast<Tick>(in.getU64());
    e.wallUs = in.getU64();
    e.stream = in.getU32();
    e.nargs = in.getU8();
    if (e.nargs > spans::maxArgs)
        throw serde::Error("shard: span arg count out of range");
    for (unsigned a = 0; a < e.nargs; ++a) {
        e.args[a].key = internSpanString(in.getString());
        e.args[a].value =
            static_cast<std::int64_t>(in.getU64());
    }
    return e;
}

void
putSinks(serde::Writer &out, const Fleet::ScanSinks &sinks)
{
    sinks.freeContiguity2m.saveTo(out);
    sinks.unmovableBlocks2m.saveTo(out);
    sinks.unmovablePageRatio.saveTo(out);
    sinks.uptimeSec.saveTo(out);
}

Fleet::ScanSinks
getSinks(serde::Reader &in)
{
    Fleet::ScanSinks sinks;
    sinks.freeContiguity2m.loadFrom(in);
    sinks.unmovableBlocks2m.loadFrom(in);
    sinks.unmovablePageRatio.loadFrom(in);
    sinks.uptimeSec.loadFrom(in);
    return sinks;
}

/** The child side: run the shard's range and stream every result a
 * single-process merge step would have applied back to the parent.
 * Runs inside fork(); must end in _exit, never return to the
 * caller's stack. */
void
runShardChild(Fleet::Config config, unsigned shard, unsigned lo,
              unsigned hi, bool includeScans, int fd)
{
    config.rangeBegin = lo;
    config.rangeEnd = hi;
    // Per-server span streams are stashed by the fleet and shipped
    // below; the parent publishes them in server order, exactly
    // where the in-process merge step would have.
    config.captureSpans = spans::anyEnabled();

    FaultInjector &ambient = faultInjector();
    std::array<FaultInjector::SiteStats, numFaultSites> before{};
    for (unsigned s = 0; s < numFaultSites; ++s)
        before[s] = ambient.siteStats(static_cast<FaultSite>(s));
    const std::uint64_t allocsBefore = heapAllocCount();

    Fleet fleet(config);
    const std::vector<ServerScan> scans = fleet.run();

    serde::Writer out;
    out.beginSection(SecHeader);
    out.putU32(shardStreamMagic);
    out.putU32(shardFormatVersion);
    out.putU32(shard);
    out.putU32(lo);
    out.putU32(hi);
    out.endSection();

    if (includeScans) {
        out.beginSection(SecScans);
        out.putPodVector(scans);
        out.endSection();
    }

    if (config.streamScans) {
        out.beginSection(SecSinks);
        putSinks(out, fleet.scanSinks());
        out.endSection();
    }

    out.beginSection(SecFaults);
    out.putU32(numFaultSites);
    for (unsigned s = 0; s < numFaultSites; ++s) {
        const FaultInjector::SiteStats &after =
            ambient.siteStats(static_cast<FaultSite>(s));
        out.putU64(after.evaluations - before[s].evaluations);
        out.putU64(after.fires - before[s].fires);
    }
    out.endSection();

    if (config.captureSpans) {
        std::vector<std::vector<spans::Event>> perServer =
            fleet.takeCapturedSpans();
        out.beginSection(SecSpans);
        out.putU64(perServer.size());
        for (const std::vector<spans::Event> &events : perServer) {
            out.putU64(events.size());
            for (const spans::Event &e : events)
                putEvent(out, e);
        }
        out.endSection();
    }

    if (!config.checkpointDir.empty()) {
        const std::vector<snap::ManifestEntry> entries =
            fleet.takePendingManifestEntries();
        out.beginSection(SecManifest);
        out.putU64(entries.size());
        for (const snap::ManifestEntry &entry : entries) {
            out.putU32(entry.server);
            out.putString(entry.file);
            out.putU64(entry.bytes);
            out.putU32(entry.crc);
        }
        out.endSection();
    }

    out.beginSection(SecGauges);
    out.putDouble(fleet.lastRunWallMs());
    out.putU64(peakRssBytes());
    out.putU64(heapAllocCount() - allocsBefore);
    out.endSection();

    writeFully(fd, out.bytes().data(), out.bytes().size());
    ::close(fd);
}

/** Everything the parent decodes from one shard's stream. */
struct ShardPayload
{
    unsigned lo = 0;
    unsigned hi = 0;
    std::vector<ServerScan> scans;
    Fleet::ScanSinks sinks;
    std::vector<std::vector<spans::Event>> spans;
    std::vector<snap::ManifestEntry> manifestEntries;
    ShardStats stats;
};

ShardPayload
decodeShard(const std::vector<std::uint8_t> &blob, unsigned shard,
            unsigned expectLo, unsigned expectHi)
{
    ShardPayload payload;
    serde::Reader in(blob);
    bool sawHeader = false;
    bool sawGauges = false;
    while (!in.atEnd()) {
        serde::Reader::Section section = in.nextSection();
        serde::Reader &p = section.payload;
        switch (section.id) {
          case SecHeader: {
            if (p.getU32() != shardStreamMagic ||
                p.getU32() != shardFormatVersion)
                throw serde::Error("shard: bad stream magic");
            if (p.getU32() != shard)
                throw serde::Error("shard: index mismatch");
            payload.lo = p.getU32();
            payload.hi = p.getU32();
            if (payload.lo != expectLo || payload.hi != expectHi)
                throw serde::Error("shard: range mismatch");
            sawHeader = true;
            break;
          }
          case SecScans:
            payload.scans = p.getPodVector<ServerScan>();
            break;
          case SecSinks:
            payload.sinks = getSinks(p);
            break;
          case SecFaults: {
            if (p.getU32() != numFaultSites)
                throw serde::Error("shard: fault site count skew");
            FaultInjector &ambient = faultInjector();
            for (unsigned s = 0; s < numFaultSites; ++s) {
                FaultInjector::SiteStats delta;
                delta.evaluations = p.getU64();
                delta.fires = p.getU64();
                ambient.absorbSiteStats(static_cast<FaultSite>(s),
                                        delta);
            }
            break;
          }
          case SecSpans: {
            const std::uint64_t servers = p.getU64();
            payload.spans.resize(
                static_cast<std::size_t>(servers));
            for (std::uint64_t i = 0; i < servers; ++i) {
                const std::uint64_t count = p.getU64();
                std::vector<spans::Event> &events =
                    payload.spans[static_cast<std::size_t>(i)];
                events.reserve(static_cast<std::size_t>(count));
                for (std::uint64_t e = 0; e < count; ++e)
                    events.push_back(getEvent(p));
            }
            break;
          }
          case SecManifest: {
            const std::uint64_t count = p.getU64();
            payload.manifestEntries.reserve(
                static_cast<std::size_t>(count));
            for (std::uint64_t e = 0; e < count; ++e) {
                snap::ManifestEntry entry;
                entry.server = p.getU32();
                entry.file = p.getString();
                entry.bytes = p.getU64();
                entry.crc = p.getU32();
                payload.manifestEntries.push_back(
                    std::move(entry));
            }
            break;
          }
          case SecGauges:
            payload.stats.wallMs = p.getDouble();
            payload.stats.peakRssBytes = p.getU64();
            payload.stats.heapAllocs = p.getU64();
            sawGauges = true;
            break;
          default:
            throw serde::Error("shard: unknown section");
        }
    }
    if (!sawHeader || !sawGauges)
        throw serde::Error("shard: stream missing sections");
    payload.stats.begin = payload.lo;
    payload.stats.end = payload.hi;
    return payload;
}

} // namespace

ShardRunResult
runShardedFleet(const Fleet::Config &config, unsigned shards,
                bool includeScans)
{
    Fleet::Config cfg = config;
    cfg.applyEnvOverlay();
    if (cfg.rangeBegin != 0 || cfg.rangeEnd != 0)
        fatal("runShardedFleet owns the shard range fields");
    if (shards == 0)
        shards = 1;
    if (shards > cfg.servers)
        shards = cfg.servers != 0 ? cfg.servers : 1;

    const auto wallStart = std::chrono::steady_clock::now();

    if (shards <= 1) {
        ShardRunResult result;
        const std::uint64_t allocsBefore = heapAllocCount();
        Fleet fleet(cfg);
        std::vector<ServerScan> scans = fleet.run();
        if (includeScans)
            result.scans = std::move(scans);
        result.sinks = fleet.scanSinks();
        ShardStats stats;
        stats.begin = 0;
        stats.end = cfg.servers;
        stats.wallMs = fleet.lastRunWallMs();
        stats.peakRssBytes = peakRssBytes();
        stats.heapAllocs = heapAllocCount() - allocsBefore;
        result.shards.push_back(stats);
        result.wallMs =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - wallStart)
                .count();
        return result;
    }

    const bool spansOn = spans::anyEnabled();

    struct Child
    {
        pid_t pid = -1;
        int fd = -1;
        unsigned lo = 0;
        unsigned hi = 0;
    };
    std::vector<Child> children;
    children.reserve(shards);

    for (unsigned s = 0; s < shards; ++s) {
        // Even split; the first (servers % shards) shards take one
        // extra server.
        const unsigned lo = static_cast<unsigned>(
            (static_cast<std::uint64_t>(cfg.servers) * s) / shards);
        const unsigned hi = static_cast<unsigned>(
            (static_cast<std::uint64_t>(cfg.servers) * (s + 1)) /
            shards);
        int fds[2];
        if (::pipe(fds) != 0)
            throw FatalError(std::string("shard pipe failed: ") +
                             std::strerror(errno));
        // Flush before fork so buffered output is not duplicated
        // into the children.
        std::fflush(stdout);
        std::fflush(stderr);
        const pid_t pid = ::fork();
        if (pid < 0)
            throw FatalError(std::string("shard fork failed: ") +
                             std::strerror(errno));
        if (pid == 0) {
            ::close(fds[0]);
            // Earlier shards' read ends are inherited; they are
            // read ends only (the parent closed every write end it
            // held), so they cannot hold a sibling's pipe open.
            int code = 0;
            try {
                runShardChild(cfg, s, lo, hi, includeScans,
                              fds[1]);
            } catch (const std::exception &e) {
                std::fprintf(stderr, "ctg shard %u failed: %s\n",
                             s, e.what());
                code = 1;
            }
            // _exit, not exit: the child must not run the parent's
            // atexit hooks (span export, stdio teardown) a second
            // time.
            ::_exit(code);
        }
        ::close(fds[1]);
        Child child;
        child.pid = pid;
        child.fd = fds[0];
        child.lo = lo;
        child.hi = hi;
        children.push_back(child);
    }

    // Every child reserved the population's span streams from the
    // counter value it inherited at fork; advance the parent's
    // counter identically so later fleets in this process cannot
    // collide with the tracks the shards used.
    const std::uint32_t streamBase =
        spansOn ? spans::reserveStreams(cfg.servers) : 0;
    (void)streamBase;

    ShardRunResult result;
    if (includeScans)
        result.scans.reserve(cfg.servers);
    std::vector<snap::ManifestEntry> manifestEntries;

    // Drain and merge in shard (= server) order. The parent never
    // writes to a child, so reading each pipe to EOF cannot
    // deadlock; later children block in write() until their turn.
    for (unsigned s = 0; s < shards; ++s) {
        Child &child = children[s];
        std::vector<std::uint8_t> blob;
        std::string readError;
        try {
            blob = readAll(child.fd);
        } catch (const FatalError &e) {
            readError = e.what();
        }
        ::close(child.fd);
        int status = 0;
        while (::waitpid(child.pid, &status, 0) < 0) {
            if (errno != EINTR)
                throw FatalError(
                    std::string("shard waitpid failed: ") +
                    std::strerror(errno));
        }
        if (!WIFEXITED(status) || WEXITSTATUS(status) != 0)
            throw FatalError(
                "shard " + std::to_string(s) +
                " (servers [" + std::to_string(child.lo) + ", " +
                std::to_string(child.hi) + ")) died with status " +
                std::to_string(status));
        if (!readError.empty())
            throw FatalError(readError);

        ShardPayload payload;
        try {
            payload = decodeShard(blob, s, child.lo, child.hi);
        } catch (const serde::Error &e) {
            throw FatalError("shard " + std::to_string(s) +
                             " result stream invalid: " + e.what());
        }
        if (includeScans) {
            if (payload.scans.size() != child.hi - child.lo)
                throw FatalError("shard " + std::to_string(s) +
                                 " returned wrong scan count");
            result.scans.insert(result.scans.end(),
                                payload.scans.begin(),
                                payload.scans.end());
        }
        if (cfg.streamScans)
            result.sinks.merge(payload.sinks);
        for (std::vector<spans::Event> &events : payload.spans) {
            if (!events.empty())
                spans::publish(std::move(events));
        }
        manifestEntries.insert(
            manifestEntries.end(),
            std::make_move_iterator(payload.manifestEntries.begin()),
            std::make_move_iterator(payload.manifestEntries.end()));
        result.shards.push_back(payload.stats);
    }

    // One manifest for the whole population, written by the parent
    // in server order — the snap.manifest_skew probes land on the
    // parent's ambient injector exactly as in a single-process run.
    if (!cfg.checkpointDir.empty()) {
        snap::Manifest manifest;
        manifest.fleetFingerprint = fleetConfigFingerprint(cfg);
        manifest.entries = std::move(manifestEntries);
        snap::writeManifest(cfg.checkpointDir, manifest);
    }

    result.wallMs = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - wallStart)
                        .count();
    return result;
}

} // namespace ctg
