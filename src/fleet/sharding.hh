/**
 * @file
 * Process-sharded fleet populations.
 *
 * One simulator process tops out well below the 10⁶-server tier
 * ROADMAP item 1 targets: a single address space accumulates page
 * tables, allocator metadata and telemetry for the whole population,
 * and a single process is limited to one machine's worth of cores.
 * runShardedFleet() splits the population into contiguous server
 * ranges and forks one worker process per range. Each child runs an
 * ordinary Fleet over its range (sampling the *full* population's
 * configs so every shard consumes the identical seed stream), then
 * streams its results back over a pipe using the serde layer:
 * per-server scans, merged OnlineHistogram sinks, fault-counter
 * deltas, captured span events and checkpoint manifest entries.
 *
 * The parent drains the pipes in shard order and merges — scans
 * concatenate in server order, sinks merge commutatively, fault
 * deltas fold into the ambient injector, span events are published
 * in server order (names re-interned, since pointers cannot cross a
 * process boundary), and manifest entries from every shard are
 * written as the one manifest a single-process run would have
 * produced. The result is bit-identical to an unsharded run: same
 * scans, same streamed quantiles, same fault counters, same manifest
 * bytes (pinned by tests/test_fleet_scale.cc with every fault site
 * armed). The only observable difference is that the children's
 * main-thread `fleet.*` phase spans die with the child processes —
 * per-server span streams survive intact.
 *
 * fork() is used without exec: children inherit the sampled
 * environment and the span stream counter, so no state needs to be
 * re-marshalled on the way in. Call with no live threads (Fleet
 * joins its executor before returning, so back-to-back runs are
 * safe).
 */

#ifndef CTG_FLEET_SHARDING_HH
#define CTG_FLEET_SHARDING_HH

#include <cstdint>
#include <vector>

#include "fleet/fleet.hh"

namespace ctg
{

/** Per-shard resource accounting, reported by each worker process. */
struct ShardStats
{
    /** Server range [begin, end) this shard simulated. */
    unsigned begin = 0;
    unsigned end = 0;
    /** Wall-clock milliseconds of the shard's Fleet::run. */
    double wallMs = 0.0;
    /** Peak resident-set size of the shard process (bytes). */
    std::uint64_t peakRssBytes = 0;
    /** Host heap allocations the shard performed during its run
     * (base/host_mem heapAllocCount delta) — the gauge the pooled
     * arena path is measured by. */
    std::uint64_t heapAllocs = 0;
};

/** Merged results of a sharded fleet run. */
struct ShardRunResult
{
    /** Per-server scans in server order across all shards; empty
     * when the run was invoked with includeScans = false (the
     * 10⁶-tier path, where materializing O(servers) scans in the
     * parent defeats the point of streaming sinks). */
    std::vector<ServerScan> scans;
    /** Merged streaming sinks (empty unless Config::streamScans). */
    Fleet::ScanSinks sinks;
    /** One entry per shard, in shard (= server range) order. */
    std::vector<ShardStats> shards;
    /** Wall-clock milliseconds of the whole sharded run, fork to
     * final merge. */
    double wallMs = 0.0;
};

/**
 * Run `config`'s population split across `shards` worker processes
 * (clamped to [1, servers]; 1 runs in-process with no fork). Throws
 * FatalError if a shard process dies or returns a malformed result
 * stream — a lost shard cannot be patched over without silently
 * changing the population.
 */
ShardRunResult runShardedFleet(const Fleet::Config &config,
                               unsigned shards,
                               bool includeScans = true);

} // namespace ctg

#endif // CTG_FLEET_SHARDING_HH
