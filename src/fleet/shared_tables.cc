#include "fleet/shared_tables.hh"

namespace ctg
{

SharedFleetTables::SharedFleetTables(std::uint64_t memBytes)
    : memBytes_(memBytes), generations_(hwGenerations())
{
    for (unsigned k = 0; k < numWorkloadKinds; ++k) {
        profiles_[k] =
            makeProfile(static_cast<WorkloadKind>(k), memBytes);
    }
}

std::shared_ptr<const SharedFleetTables>
SharedFleetTables::make(std::uint64_t memBytes)
{
    // Private constructor, so no make_shared: the two-allocation
    // cost is paid once per population, not per server.
    return std::shared_ptr<const SharedFleetTables>(
        new SharedFleetTables(memBytes));
}

std::uint64_t
SharedFleetTables::bytes() const
{
    std::uint64_t total =
        sizeof(*this) +
        generations_.capacity() * sizeof(HwGeneration);
    for (const WorkloadProfile &p : profiles_)
        total += p.name.capacity();
    return total;
}

} // namespace ctg
