/**
 * @file
 * Immutable per-population configuration tables.
 *
 * A fleet of N servers used to rebuild the same calibrated state N
 * times: each Server called makeProfile() for its kind, and every
 * consumer of the hardware model re-materialized the Table-1
 * parameters and the Figure-2 generation trends. At 10^5 servers
 * that is pure waste — the tables depend only on (kind, memBytes),
 * which is constant across a population.
 *
 * SharedFleetTables builds every calibration table once — the six
 * workload profiles at the population's machine size, the HwConfig
 * (DRAM timing and cache/TLB latencies of Table 1) and the
 * hardware-generation table — and hands all servers one
 * shared_ptr<const ...>. The tables are a pure cache: profile(kind)
 * is byte-for-byte what makeProfile(kind, memBytes) returns, so
 * presence or absence of the pointer never changes simulation
 * results (test_fleet_scale.cc asserts this). Servers with a
 * different memBytes fall back to makeProfile.
 */

#ifndef CTG_FLEET_SHARED_TABLES_HH
#define CTG_FLEET_SHARED_TABLES_HH

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "hw/config.hh"
#include "perfmodel/hwgen.hh"
#include "workloads/profile.hh"

namespace ctg
{

/**
 * One population's calibration surface, built once and shared
 * read-only by every server. Immutable after construction — safe to
 * read concurrently from all worker threads without locks.
 */
class SharedFleetTables
{
  public:
    /** Build the tables for servers of `memBytes` machine size. */
    static std::shared_ptr<const SharedFleetTables>
    make(std::uint64_t memBytes);

    /** Machine size the workload profiles were calibrated for. */
    std::uint64_t memBytes() const { return memBytes_; }

    /** Calibrated (unscaled) profile for a workload kind; identical
     * to makeProfile(kind, memBytes()). */
    const WorkloadProfile &profile(WorkloadKind kind) const
    {
        return profiles_[static_cast<unsigned>(kind)];
    }

    /** Table-1 architectural parameters (cache/TLB/DRAM timing). */
    const HwConfig &hw() const { return hw_; }

    /** Figure-2 hardware-generation trends. */
    const std::vector<HwGeneration> &generations() const
    {
        return generations_;
    }

    /** Approximate heap footprint of the tables (the entire
     * population shares this once, vs. once per server before). */
    std::uint64_t bytes() const;

  private:
    explicit SharedFleetTables(std::uint64_t memBytes);

    std::uint64_t memBytes_;
    std::array<WorkloadProfile, numWorkloadKinds> profiles_;
    HwConfig hw_;
    std::vector<HwGeneration> generations_;
};

} // namespace ctg

#endif // CTG_FLEET_SHARED_TABLES_HH
