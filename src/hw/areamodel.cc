#include "hw/areamodel.hh"

namespace ctg
{

SramEstimate
estimateFaSram(unsigned entries, unsigned bits_per_entry, double nm)
{
    SramEstimate est;
    est.bits = static_cast<std::uint64_t>(entries) * bits_per_entry;

    // Area scales with the square of feature size relative to the
    // 22 nm calibration point. Small arrays are dominated by the
    // peripheral/overhead term, not the bit cells.
    const double scale = (nm / 22.0) * (nm / 22.0);
    constexpr double bit_area_mm2 = 1.0e-6;  // CAM cell + periphery
    constexpr double fixed_area_mm2 = 2.5e-3; // decoders, comparators
    est.areaMm2 =
        scale * (fixed_area_mm2 +
                 bit_area_mm2 * static_cast<double>(est.bits));

    // Dynamic energy: CAM search touches every entry's tag plus the
    // matched payload readout.
    constexpr double fixed_energy_nj = 4.0e-4;
    constexpr double bit_energy_nj = 1.0e-6;
    est.energyPerAccessNj =
        scale * (fixed_energy_nj +
                 bit_energy_nj * static_cast<double>(est.bits));

    // Leakage is proportional to the retained bits.
    constexpr double leak_per_bit_mw = 5.0e-4;
    est.leakageMw =
        scale * leak_per_bit_mw * static_cast<double>(est.bits);
    return est;
}

} // namespace ctg
