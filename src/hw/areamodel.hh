/**
 * @file
 * Analytic SRAM/CAM area, energy and leakage model standing in for
 * the paper's Cacti 7 analysis (Section 5.3). Constants are
 * calibrated at the 22 nm node against the numbers the paper
 * reports for the per-slice migration table: 0.0038 mm²,
 * 0.0017 nJ/access, 0.64 mW leakage.
 */

#ifndef CTG_HW_AREAMODEL_HH
#define CTG_HW_AREAMODEL_HH

#include <cstdint>

namespace ctg
{

/** Estimated physical cost of a small associatively-searched SRAM. */
struct SramEstimate
{
    double areaMm2 = 0.0;
    double energyPerAccessNj = 0.0;
    double leakageMw = 0.0;
    std::uint64_t bits = 0;
};

/**
 * Estimate a fully-associative (CAM-tagged) SRAM structure.
 *
 * @param entries number of entries
 * @param bits_per_entry payload+tag width in bits
 * @param nm technology node (scaling reference: 22 nm)
 */
SramEstimate estimateFaSram(unsigned entries, unsigned bits_per_entry,
                            double nm = 22.0);

/** Bits of one Contiguitas-HW migration-table entry: two 36-bit
 * PPNs, a 7-bit Ptr, valid/mode/state bits. */
constexpr unsigned migrationEntryBits = 36 + 36 + 7 + 4;

/** Reference area of one core at 22 nm (mm²) used for the "0.014%
 * of a core" comparison. */
constexpr double coreAreaMm2At22nm = 27.0;

} // namespace ctg

#endif // CTG_HW_AREAMODEL_HH
