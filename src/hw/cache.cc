#include "hw/cache.hh"

namespace ctg
{

CacheArray::CacheArray(std::uint64_t bytes, unsigned assoc,
                       std::string name)
    : assoc_(assoc), name_(std::move(name))
{
    const std::uint64_t num_lines = bytes / lineBytes;
    ctg_assert(num_lines > 0 && assoc > 0);
    ctg_assert(num_lines % assoc == 0);
    sets_ = num_lines / assoc;
    // Power-of-two set counts only, for cheap indexing.
    ctg_assert((sets_ & (sets_ - 1)) == 0);
    entries_.resize(num_lines);
}

std::uint64_t
CacheArray::setIndex(Addr line_addr) const
{
    return (line_addr >> lineShift) & (sets_ - 1);
}

CacheEntry *
CacheArray::lookup(Addr line_addr)
{
    const std::uint64_t set = setIndex(line_addr);
    for (unsigned way = 0; way < assoc_; ++way) {
        CacheEntry &entry = entries_[set * assoc_ + way];
        if (entry.valid && entry.lineAddr == line_addr) {
            entry.lru = ++lruClock_;
            ++stats.hits;
            return &entry;
        }
    }
    ++stats.misses;
    return nullptr;
}

const CacheEntry *
CacheArray::peek(Addr line_addr) const
{
    const std::uint64_t set = setIndex(line_addr);
    for (unsigned way = 0; way < assoc_; ++way) {
        const CacheEntry &entry = entries_[set * assoc_ + way];
        if (entry.valid && entry.lineAddr == line_addr)
            return &entry;
    }
    return nullptr;
}

CacheEntry &
CacheArray::insert(Addr line_addr, CacheEntry *evicted)
{
    const std::uint64_t set = setIndex(line_addr);
    CacheEntry *victim = nullptr;
    for (unsigned way = 0; way < assoc_; ++way) {
        CacheEntry &entry = entries_[set * assoc_ + way];
        if (!entry.valid) {
            victim = &entry;
            break;
        }
        if (victim == nullptr || entry.lru < victim->lru)
            victim = &entry;
    }
    ctg_assert(victim != nullptr);
    if (victim->valid) {
        ++stats.evictions;
        if (evicted != nullptr)
            *evicted = *victim;
    } else if (evicted != nullptr) {
        evicted->valid = false;
    }
    *victim = CacheEntry{};
    victim->valid = true;
    victim->lineAddr = line_addr;
    victim->lru = ++lruClock_;
    return *victim;
}

bool
CacheArray::invalidate(Addr line_addr)
{
    const std::uint64_t set = setIndex(line_addr);
    for (unsigned way = 0; way < assoc_; ++way) {
        CacheEntry &entry = entries_[set * assoc_ + way];
        if (entry.valid && entry.lineAddr == line_addr) {
            entry = CacheEntry{};
            return true;
        }
    }
    return false;
}

void
CacheArray::flush()
{
    for (auto &entry : entries_)
        entry = CacheEntry{};
}

} // namespace ctg
