/**
 * @file
 * Generic set-associative cache array with LRU replacement.
 *
 * The array stores 64 B line entries keyed by line address. Each
 * entry carries a MESI-style coherence state, a functional data
 * value (one 64-bit token standing in for the line's contents — the
 * migration property tests check these tokens for linearizability),
 * and, for LLC/directory use, a sharer bitmap and owner.
 */

#ifndef CTG_HW_CACHE_HH
#define CTG_HW_CACHE_HH

#include <cstdint>
#include <vector>

#include "base/logging.hh"
#include "base/types.hh"

namespace ctg
{

/** Coherence state of a cached line. */
enum class CohState : std::uint8_t
{
    Invalid = 0,
    Shared,
    Exclusive,
    Modified,
};

/** One cache entry. */
struct CacheEntry
{
    bool valid = false;
    Addr lineAddr = 0; //!< line-aligned byte address
    CohState state = CohState::Invalid;
    std::uint64_t value = 0;
    std::uint64_t lru = 0;
    /** Directory info (LLC only): which cores hold the line. */
    std::uint32_t sharers = 0;
    /** Core holding the line Modified, or -1. */
    std::int32_t owner = -1;
};

/**
 * Set-associative tag/data array.
 */
class CacheArray
{
  public:
    /**
     * @param bytes total capacity
     * @param assoc ways per set (assoc == lines -> fully associative)
     * @param name for diagnostics
     */
    CacheArray(std::uint64_t bytes, unsigned assoc, std::string name);

    /** Find the entry for a line; nullptr on miss. Touches LRU. */
    CacheEntry *lookup(Addr line_addr);

    /** Find without updating recency. */
    const CacheEntry *peek(Addr line_addr) const;

    /**
     * Insert a line, evicting the set's LRU victim if needed.
     * @param evicted receives a copy of the displaced valid entry
     * @return reference to the inserted entry
     */
    CacheEntry &insert(Addr line_addr, CacheEntry *evicted);

    /** Invalidate a line if present; true if it was. */
    bool invalidate(Addr line_addr);

    /** Drop everything (power-on state). */
    void flush();

    std::uint64_t lines() const { return entries_.size(); }
    std::uint64_t sets() const { return sets_; }

    /** Visit every valid entry (for back-invalidation sweeps). */
    template <typename Fn>
    void
    forEachValid(Fn &&fn)
    {
        for (auto &entry : entries_) {
            if (entry.valid)
                fn(entry);
        }
    }

    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;
    };

    Stats stats;

  private:
    std::uint64_t setIndex(Addr line_addr) const;

    std::vector<CacheEntry> entries_;
    std::uint64_t sets_;
    unsigned assoc_;
    std::uint64_t lruClock_ = 0;
    std::string name_;
};

} // namespace ctg

#endif // CTG_HW_CACHE_HH
