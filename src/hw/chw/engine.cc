#include "hw/chw/engine.hh"

#include "base/span_trace.hh"
#include "base/trace.hh"
#include "sim/fault_injector.hh"

namespace ctg
{

ChwEngine::ChwEngine(EventQueue &eventq, MemHierarchy &mem)
    : eventq_(eventq), mem_(mem)
{}

bool
ChwEngine::submitMigrate(Descriptor desc)
{
    ctg_assert(desc.src != invalidPfn && desc.dst != invalidPfn);

    CTG_SPAN_NAMED(span, ChwEngine, "chw.submit",
                   {{"src", static_cast<std::int64_t>(desc.src)},
                    {"dst", static_cast<std::int64_t>(desc.dst)},
                    {"pages", desc.sizePages},
                    {"cacheable",
                     desc.mode == ChwMode::Cacheable ? 1 : 0}});

    // Injected install failure: the descriptor is rejected before
    // anything is installed, exactly like a full metadata table, so
    // the OS fallback path (software migration) takes over.
    if (faultInjector().shouldFail(FaultSite::ChwInstallFail)) {
        ++stats_.installsRejected;
        CTG_DPRINTF(ChwEngine, "injected install rejection for %llu",
                    static_cast<unsigned long long>(desc.src));
        span.arg("rejected", 1);
        return false;
    }

    MigrationEntry *entry = mem_.migrationTable().install(
        desc.src, desc.dst, desc.mode, desc.sizePages);
    if (entry == nullptr) {
        ++stats_.installsRejected;
        span.arg("rejected", 1);
        return false;
    }

    RunState state;
    state.startTick = eventq_.now();
    // The copy proceeds through event-queue hops the call tree
    // cannot link; a flow arrow ties this submit slice to the
    // completion (or abort) slice.
    state.flowId = spans::newFlowId();
    spans::flowBegin(TraceFlag::ChwEngine, "chw.migration",
                     state.flowId);
    state.onComplete = std::move(desc.onComplete);
    state.onAbort = std::move(desc.onAbort);
    running_[desc.src] = std::move(state);
    ++stats_.migrationsStarted;
    CTG_DPRINTF(ChwEngine,
                "migrate %llu -> %llu, %u pages, %s%s",
                static_cast<unsigned long long>(desc.src),
                static_cast<unsigned long long>(desc.dst),
                desc.sizePages,
                desc.mode == ChwMode::Cacheable ? "cacheable"
                                                : "noncacheable",
                desc.startCopyNow ? ", copy now" : "");

    if (desc.startCopyNow)
        startCopy(desc.src);
    return true;
}

void
ChwEngine::startCopy(Pfn src)
{
    CTG_SPAN(ChwEngine, "chw.start_copy",
             {{"src", static_cast<std::int64_t>(src)}});
    MigrationEntry *entry = mem_.migrationTable().findBySrc(src);
    ctg_assert(entry != nullptr);
    ctg_assert(!entry->copying && !entry->copyDone);
    entry->copying = true;
    auto it = running_.find(src);
    ctg_assert(it != running_.end());
    it->second.startTick = eventq_.now();
    it->second.currentSlice =
        mem_.sliceOf(pfnToAddr(entry->srcPpn));
    eventq_.schedule(mem_.config().chwLat,
                     [this, src] { copyNextLine(src); },
                     EventPriority::HardwareResponse);
}

void
ChwEngine::finishCopy(Pfn src, MigrationEntry &entry)
{
    entry.copying = false;
    entry.copyDone = true;
    auto it = running_.find(src);
    ctg_assert(it != running_.end());
    stats_.lastCopyCycles = eventq_.now() - it->second.startTick;
    ++stats_.migrationsCompleted;
    {
        CTG_SPAN(ChwEngine, "chw.complete",
                 {{"src", static_cast<std::int64_t>(src)},
                  {"cycles", static_cast<std::int64_t>(
                                 stats_.lastCopyCycles)}});
        spans::flowEnd(TraceFlag::ChwEngine, "chw.migration",
                       it->second.flowId);
    }
    CTG_DPRINTF(ChwEngine, "copy of pfn=%llu done in %llu cycles",
                static_cast<unsigned long long>(src),
                static_cast<unsigned long long>(
                    stats_.lastCopyCycles));
    if (it->second.onComplete)
        it->second.onComplete();
    running_.erase(it);
}

void
ChwEngine::abortRun(Pfn src)
{
    auto it = running_.find(src);
    if (it == running_.end())
        return;
    ++stats_.migrationsAborted;
    {
        CTG_SPAN(ChwEngine, "chw.abort",
                 {{"src", static_cast<std::int64_t>(src)}});
        spans::flowEnd(TraceFlag::ChwEngine, "chw.migration",
                       it->second.flowId);
    }
    CTG_DPRINTF(ChwEngine, "migration of pfn=%llu aborted",
                static_cast<unsigned long long>(src));
    // Detach before invoking: the callback may resubmit this page.
    auto on_abort = std::move(it->second.onAbort);
    running_.erase(it);
    if (on_abort)
        on_abort();
}

void
ChwEngine::copyNextLine(Pfn src)
{
    MigrationEntry *entry = mem_.migrationTable().findBySrc(src);
    if (entry == nullptr || !entry->copying) {
        // The OS cleared the mapping mid-copy. Account the abort and
        // tell the OS instead of erasing the run silently —
        // migrations_started must always reconcile with
        // completed + aborted + in-flight.
        abortRun(src);
        return;
    }

    // Injected engine fault mid-copy: drop the mapping and abort, as
    // if the OS had cleared it under the engine.
    if (faultInjector().shouldFail(FaultSite::ChwMidcopyAbort)) {
        mem_.migrationTable().clear(src);
        abortRun(src);
        return;
    }

    const unsigned total_lines =
        entry->sizePages * static_cast<unsigned>(linesPerPage);
    if (entry->ptr >= total_lines) {
        finishCopy(src, *entry);
        return;
    }

    const unsigned idx = entry->ptr;
    const Addr off = static_cast<Addr>(idx) * lineBytes;
    const Addr src_line = pfnToAddr(entry->srcPpn) + off;
    const Addr dst_line = pfnToAddr(entry->dstPpn) + off;

    Cycles cost = mem_.config().chwCopyPerLine;
    auto it = running_.find(src);
    ctg_assert(it != running_.end());
    RunState &state = it->second;

    // Slice handoff: the copy proceeds in line order, and the slice
    // owning the next source line takes over when it changes.
    const unsigned src_home = mem_.sliceOf(src_line);
    if (src_home != state.currentSlice) {
        cost += mem_.ringLat(state.currentSlice, src_home);
        state.currentSlice = src_home;
        ++stats_.sliceHandoffs;
    }

    const bool skip =
        entry->mode == ChwMode::Cacheable &&
        mem_.lineModifiedInPrivate(dst_line);
    if (skip) {
        // Destination already holds newer data (Modified in a
        // private cache); copying would roll it back.
        ++stats_.linesSkippedDirty;
    } else {
        // The engine keeps several lines in flight; chwCopyPerLine
        // is the calibrated steady-state cost per line rather than
        // the serialized BusRdX + Write round trips.
        const std::uint64_t value = mem_.busRdX(src_line, nullptr);
        mem_.copyWrite(dst_line, value, nullptr);
        const unsigned dst_home = mem_.sliceOf(dst_line);
        if (dst_home != src_home) {
            // Write + Ack across the ring (Figure 9 steps 2-3).
            cost += 2 * mem_.ringLat(src_home, dst_home);
            ++stats_.crossSliceWrites;
        }
        ++stats_.linesCopied;
    }

    ++entry->ptr;
    eventq_.schedule(cost, [this, src] { copyNextLine(src); },
                     EventPriority::HardwareResponse);
}

void
ChwEngine::clear(Pfn src)
{
    mem_.migrationTable().clear(src);
    // Clearing after completion is the normal teardown (the run is
    // already gone); clearing while the run exists aborts it.
    abortRun(src);
}

void
ChwEngine::regStats(StatGroup group) const
{
    group.gauge(
        "migrations_started",
        [this] { return double(stats_.migrationsStarted); });
    group.gauge(
        "migrations_completed",
        [this] { return double(stats_.migrationsCompleted); });
    group.gauge(
        "migrations_aborted",
        [this] { return double(stats_.migrationsAborted); },
        "migrations ended by Clear or fault before completion");
    group.gauge(
        "installs_rejected",
        [this] { return double(stats_.installsRejected); },
        "Migrate descriptors rejected at submission");
    group.gauge(
        "migrations_in_flight",
        [this] { return double(running_.size()); },
        "installed and neither completed nor aborted");
    group.gauge("lines_copied",
                [this] { return double(stats_.linesCopied); });
    group.gauge(
        "lines_skipped_dirty",
        [this] { return double(stats_.linesSkippedDirty); },
        "destination lines left alone: Modified in a private cache");
    group.gauge("slice_handoffs",
                [this] { return double(stats_.sliceHandoffs); });
    group.gauge(
        "cross_slice_writes",
        [this] { return double(stats_.crossSliceWrites); },
        "lines whose source and destination homes differ");
    group.gauge("last_copy_cycles",
                [this] { return double(stats_.lastCopyCycles); },
                "duration of the most recent completed copy");
}

} // namespace ctg
