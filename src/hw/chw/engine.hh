/**
 * @file
 * Contiguitas-HW copy engine and OS work-queue interface
 * (Section 3.3, Figures 8 and 9).
 *
 * The OS submits Migrate(src, dst, flags) descriptors through an
 * ENQCMD-style work queue. The engine installs the mapping in the
 * migration table (replicated per slice), then copies the page line
 * by line: BusRdX pulls the freshest source line into the LLC and
 * invalidates private copies, the value is written to the
 * destination line's home slice (a cross-slice Write/Ack when the
 * homes differ), and Ptr advances. Slices hand off to each other
 * rather than copying in parallel — the deliberately unaggressive
 * design the paper chooses. In cacheable mode the copy skips
 * destination lines that are Modified in a private cache.
 */

#ifndef CTG_HW_CHW_ENGINE_HH
#define CTG_HW_CHW_ENGINE_HH

#include <functional>
#include <unordered_map>

#include "base/stat_registry.hh"
#include "hw/mem_hierarchy.hh"
#include "sim/eventq.hh"

namespace ctg
{

/**
 * The migration copy engine.
 */
class ChwEngine
{
  public:
    /** Work descriptor submitted via ENQCMD. */
    struct Descriptor
    {
        Pfn src = invalidPfn;
        Pfn dst = invalidPfn;
        /** Buffer size in pages (Section 3.3, variable buffer
         * sizes); source and destination ranges must both be this
         * long. */
        unsigned sizePages = 1;
        ChwMode mode = ChwMode::Noncacheable;
        /** Noncacheable mode starts copying immediately; cacheable
         * mode installs the mapping only (Flag argument of the
         * Migrate command) and copies on startCopy(). */
        bool startCopyNow = true;
        /** Invoked when the copy completes (completion-address
         * write). */
        std::function<void()> onComplete;
        /** Invoked when the migration ends without completing — the
         * OS cleared the mapping mid-copy or the engine faulted. The
         * table entry is already gone when this runs; the OS uses it
         * to roll back (free the destination, retry later). */
        std::function<void()> onAbort;
    };

    ChwEngine(EventQueue &eventq, MemHierarchy &mem);

    /**
     * Submit a Migrate descriptor.
     * @return false if the metadata table is full.
     */
    bool submitMigrate(Descriptor desc);

    /** Cacheable mode phase 2: begin the copy after the lazy TLB
     * switch completed. */
    void startCopy(Pfn src);

    /** OS Clear command: remove the mapping, ending the migration. */
    void clear(Pfn src);

    /** True while a mapping for the page exists. */
    bool
    migrating(Pfn ppn)
    {
        return mem_.migrationTable().find(ppn) != nullptr;
    }

    /** Migrations currently installed and not yet completed or
     * aborted. Invariant: migrationsStarted ==
     * migrationsCompleted + migrationsAborted + inFlight(). */
    std::size_t inFlight() const { return running_.size(); }

    struct Stats
    {
        std::uint64_t migrationsStarted = 0;
        std::uint64_t migrationsCompleted = 0;
        /** Migrations ended without completing (OS Clear mid-copy or
         * injected engine fault). */
        std::uint64_t migrationsAborted = 0;
        /** Migrate descriptors rejected at submit (table full or
         * injected install failure); never counted as started. */
        std::uint64_t installsRejected = 0;
        std::uint64_t linesCopied = 0;
        std::uint64_t linesSkippedDirty = 0;
        std::uint64_t sliceHandoffs = 0;
        std::uint64_t crossSliceWrites = 0;
        /** Duration of the most recent completed copy. */
        Cycles lastCopyCycles = 0;
    };

    const Stats &stats() const { return stats_; }

    /** Register engine counters under the given group
     * (conventionally `<prefix>.chw`). */
    void regStats(StatGroup group) const;

    /** Fixed ENQCMD submission cost charged to the OS. */
    static constexpr Cycles enqcmdCost = 50;

  private:
    struct RunState
    {
        Tick startTick = 0;
        unsigned currentSlice = 0;
        /** Span-trace flow id stitching the submit → copy →
         * complete/abort chain across event-queue hops (0 when span
         * tracing is off). */
        std::uint64_t flowId = 0;
        std::function<void()> onComplete;
        std::function<void()> onAbort;
    };

    void copyNextLine(Pfn src);
    void finishCopy(Pfn src, MigrationEntry &entry);

    /** Account an abort and notify the OS. No-op when the run is
     * already gone (a stale copy event after the abort was
     * accounted), so an abort is never counted twice. */
    void abortRun(Pfn src);

    EventQueue &eventq_;
    MemHierarchy &mem_;
    std::unordered_map<Pfn, RunState> running_;
    Stats stats_;
};

} // namespace ctg

#endif // CTG_HW_CHW_ENGINE_HH
