/**
 * @file
 * Contiguitas-HW migration metadata table (Figure 8b).
 *
 * Each entry aliases a source physical page with a destination page
 * and tracks Ptr, the number of cache lines copied so far. The table
 * is architecturally replicated per LLC slice with identical
 * contents; the model keeps one logical copy and charges the
 * per-slice access latency at the point of use.
 */

#ifndef CTG_HW_CHW_MIGRATION_TABLE_HH
#define CTG_HW_CHW_MIGRATION_TABLE_HH

#include <array>
#include <cstdint>

#include "base/logging.hh"
#include "base/types.hh"

namespace ctg
{

/** Cache-interaction mode of a migration (Section 3.3). */
enum class ChwMode : std::uint8_t
{
    /** Migrating lines become noncacheable in L1/L2; all traffic is
     * redirected at the LLC. */
    Noncacheable,
    /** Private caching stays enabled under the single-active-mapping
     * invariant; copy starts after the lazy TLB switch completes. */
    Cacheable,
};

/** One migration mapping. */
struct MigrationEntry
{
    bool valid = false;
    Pfn srcPpn = invalidPfn;
    Pfn dstPpn = invalidPfn;
    /** Buffer size in pages (the Size-field extension of Section
     * 3.3 for variable device-TLB mapping sizes). */
    unsigned sizePages = 1;
    /** Lines [0, ptr) of the whole buffer have been copied. */
    unsigned ptr = 0;
    ChwMode mode = ChwMode::Noncacheable;
    /** Copy engine currently advancing Ptr. */
    bool copying = false;
    /** Copy finished; flag the OS polls at kernel entry. */
    bool copyDone = false;
    /** Cores already notified of noncacheability (NACK-and-retry
     * bookkeeping for first-touch cores). */
    std::uint32_t notified = 0;
};

/**
 * Fully-associative migration mapping table.
 */
class MigrationTable
{
  public:
    explicit MigrationTable(unsigned entries)
        : capacity_(entries)
    {
        ctg_assert(entries > 0 && entries <= slots_.size());
    }

    /** Install a mapping; nullptr when the table is full. */
    MigrationEntry *
    install(Pfn src, Pfn dst, ChwMode mode, unsigned size_pages = 1)
    {
        ctg_assert(size_pages >= 1);
        ctg_assert(find(src) == nullptr && find(dst) == nullptr);
        for (unsigned i = 0; i < capacity_; ++i) {
            MigrationEntry &entry = slots_[i];
            if (!entry.valid) {
                entry = MigrationEntry{};
                entry.valid = true;
                entry.srcPpn = src;
                entry.dstPpn = dst;
                entry.sizePages = size_pages;
                entry.mode = mode;
                ++installs_;
                return &entry;
            }
        }
        ++installFailures_;
        return nullptr;
    }

    /** Clear the entry whose source is src (the Clear command). */
    void
    clear(Pfn src)
    {
        MigrationEntry *entry = findBySrc(src);
        ctg_assert(entry != nullptr);
        *entry = MigrationEntry{};
    }

    /** Find the entry whose source or destination range covers a
     * page. */
    MigrationEntry *
    find(Pfn ppn)
    {
        for (unsigned i = 0; i < capacity_; ++i) {
            MigrationEntry &entry = slots_[i];
            if (!entry.valid)
                continue;
            if ((ppn >= entry.srcPpn &&
                 ppn < entry.srcPpn + entry.sizePages) ||
                (ppn >= entry.dstPpn &&
                 ppn < entry.dstPpn + entry.sizePages)) {
                return &entry;
            }
        }
        return nullptr;
    }

    MigrationEntry *
    findBySrc(Pfn src)
    {
        for (unsigned i = 0; i < capacity_; ++i) {
            MigrationEntry &entry = slots_[i];
            if (entry.valid && entry.srcPpn == src)
                return &entry;
        }
        return nullptr;
    }

    /** Number of live entries. */
    unsigned
    occupancy() const
    {
        unsigned used = 0;
        for (unsigned i = 0; i < capacity_; ++i) {
            if (slots_[i].valid)
                ++used;
        }
        return used;
    }

    unsigned capacity() const { return capacity_; }
    std::uint64_t installs() const { return installs_; }
    std::uint64_t installFailures() const { return installFailures_; }

  private:
    std::array<MigrationEntry, 64> slots_{};
    unsigned capacity_;
    std::uint64_t installs_ = 0;
    std::uint64_t installFailures_ = 0;
};

/**
 * Canonical physical line for an access to a buffer under migration:
 * copied lines live at the destination, uncopied ones at the source
 * (both for source-mapped and destination-mapped requests). Ptr
 * counts lines across the whole (possibly multi-page) buffer.
 */
inline Addr
canonicalLine(const MigrationEntry &entry, Addr line_addr)
{
    const Pfn page = addrToPfn(line_addr);
    const bool via_src = page >= entry.srcPpn &&
                         page < entry.srcPpn + entry.sizePages;
    const Pfn base = via_src ? entry.srcPpn : entry.dstPpn;
    ctg_assert(via_src ||
               (page >= entry.dstPpn &&
                page < entry.dstPpn + entry.sizePages));
    const unsigned line_idx = static_cast<unsigned>(
        (page - base) * linesPerPage + lineInPage(line_addr));
    const Addr offset_bytes =
        static_cast<Addr>(line_idx) * lineBytes;
    if (line_idx < entry.ptr)
        return pfnToAddr(entry.dstPpn) + offset_bytes;
    return pfnToAddr(entry.srcPpn) + offset_bytes;
}

} // namespace ctg

#endif // CTG_HW_CHW_MIGRATION_TABLE_HH
