/**
 * @file
 * Architectural parameters of the full-system simulation (Table 1).
 *
 * One simulated tick is one CPU cycle at 2 GHz. Latencies are
 * round-trip values as the paper reports them.
 */

#ifndef CTG_HW_CONFIG_HH
#define CTG_HW_CONFIG_HH

#include <cstdint>

#include "base/types.hh"

namespace ctg
{

/** Table 1: full-system simulation parameters. */
struct HwConfig
{
    /** 8 4-issue OoO cores, 2 GHz (we model memory-side timing). */
    unsigned cores = 8;
    double ghz = 2.0;

    /** L1 cache: 32 KB, 8-way, 2-cycle round trip, 64 B lines. */
    std::uint32_t l1Bytes = 32 * 1024;
    unsigned l1Assoc = 8;
    Cycles l1Lat = 2;

    /** L2 cache: 256 KB, 8-way, 14-cycle round trip. */
    std::uint32_t l2Bytes = 256 * 1024;
    unsigned l2Assoc = 8;
    Cycles l2Lat = 14;

    /** L3: one 2 MB 16-way slice per core, 40-cycle round trip. */
    std::uint32_t llcSliceBytes = 2 * 1024 * 1024;
    unsigned llcAssoc = 16;
    Cycles llcLat = 40;

    /** Ring interconnect hop cost between slices. */
    Cycles ringHopLat = 4;

    /** Main memory: DDR4-3200 — effective round trip in CPU cycles. */
    Cycles dramLat = 160;

    /** L1 TLB: 64 entries, 4-way, 2-cycle round trip. */
    unsigned l1TlbEntries = 64;
    unsigned l1TlbAssoc = 4;
    Cycles l1TlbLat = 2;

    /** L2 TLB: 1536 entries, 16-way, 12-cycle round trip. */
    unsigned l2TlbEntries = 1536;
    unsigned l2TlbAssoc = 16;
    Cycles l2TlbLat = 12;

    /** Page walk caches: 3 levels, 32 entries each, FA, 2 cycles. */
    unsigned pwcEntries = 32;
    Cycles pwcLat = 2;

    /** Contiguitas-HW metadata table: 16 entries, FA; conservative
     * 2-cycle access (Section 5.3). */
    unsigned chwEntries = 16;
    Cycles chwLat = 2;
    /** Steady-state copy-engine cost per line (pipelined BusRdX +
     * Write); 64 lines x ~50 cycles ~= the ~2 us 4 KB migration of
     * Section 5.3. */
    Cycles chwCopyPerLine = 50;

    /** Measured cost of an INVLPG including the pipeline flush
     * (Section 4: ~250 cycles on real hardware). */
    Cycles invlpgCost = 250;

    /** IPI delivery latency (initiator to remote interrupt entry). */
    Cycles ipiDeliverLat = 400;
    /** Remote handler overhead besides the INVLPG itself. */
    Cycles ipiHandlerLat = 150;
    /** Acknowledgement propagation back to the initiator. */
    Cycles ipiAckLat = 100;

    /** Cost of the kernel's PTE clear/update steps. */
    Cycles pteUpdateLat = 100;

    /** Kernel-entry cadence for lazy invalidations: system calls and
     * context switches observed at 40K-100K/s => >= 25 us windows. */
    Cycles kernelEntryPeriod = 50000; // 25 us at 2 GHz

    std::uint32_t llcSlices() const { return cores; }
};

} // namespace ctg

#endif // CTG_HW_CONFIG_HH
