#include "hw/core.hh"

namespace ctg
{

Core::Core(HwSystem &hw, CoreId id, const PageTables &tables,
           Cycles compute_per_op)
    : hw_(hw), id_(id), tables_(tables),
      computePerOp_(compute_per_op)
{
    ctg_assert(id < hw.config().cores);
}

Cycles
Core::walkPart(const HwSystem::AccessResult &result) const
{
    if (!result.pageWalk)
        return 0;
    const HwConfig &config = hw_.config();
    const Cycles lookup =
        config.l1TlbLat + config.l2TlbLat + config.pwcLat;
    return result.translationLatency > lookup
               ? result.translationLatency - lookup
               : 0;
}

void
Core::run(const TraceFn &trace, std::uint64_t ops)
{
    for (std::uint64_t i = 0; i < ops; ++i) {
        const Op op = trace();
        const auto instr =
            hw_.coreAccess(id_, op.codeAddr, tables_, false);
        const auto data = hw_.coreAccess(id_, op.dataAddr, tables_,
                                         op.isWrite, op.writeValue);
        ++stats_.ops;
        stats_.totalCycles +=
            instr.latency + data.latency + computePerOp_;
        stats_.instrWalkCycles += walkPart(instr);
        stats_.dataWalkCycles += walkPart(data);
        stats_.instrWalks += instr.pageWalk;
        stats_.dataWalks += data.pageWalk;
    }
}

void
Core::warmup(const TraceFn &trace, std::uint64_t ops)
{
    const Stats saved = stats_;
    run(trace, ops);
    stats_ = saved;
}

} // namespace ctg
