/**
 * @file
 * Simple core front end: executes a stream of memory operations
 * (instruction fetch + data access per "operation") against the
 * simulated MMU and cache hierarchy, accumulating the cycle
 * accounting the Figure 3 / Figure 10 measurements need. The core is
 * in-order with a fixed non-memory cost per operation; the paper's
 * protocol-level results do not depend on OoO detail (DESIGN.md §1).
 */

#ifndef CTG_HW_CORE_HH
#define CTG_HW_CORE_HH

#include <functional>

#include "hw/system.hh"

namespace ctg
{

/**
 * Trace-driven execution on one simulated core.
 */
class Core
{
  public:
    /** One operation of the input trace. */
    struct Op
    {
        Addr codeAddr = 0;   //!< instruction fetch target
        Addr dataAddr = 0;   //!< data access target
        bool isWrite = false;
        std::uint64_t writeValue = 0;
    };

    /** Callback producing the next operation. */
    using TraceFn = std::function<Op()>;

    /** Accumulated execution statistics. */
    struct Stats
    {
        std::uint64_t ops = 0;
        Cycles totalCycles = 0;
        Cycles instrWalkCycles = 0;
        Cycles dataWalkCycles = 0;
        std::uint64_t instrWalks = 0;
        std::uint64_t dataWalks = 0;

        double
        instrWalkFrac() const
        {
            return totalCycles == 0
                       ? 0.0
                       : static_cast<double>(instrWalkCycles) /
                             static_cast<double>(totalCycles);
        }

        double
        dataWalkFrac() const
        {
            return totalCycles == 0
                       ? 0.0
                       : static_cast<double>(dataWalkCycles) /
                             static_cast<double>(totalCycles);
        }

        double
        cyclesPerOp() const
        {
            return ops == 0 ? 0.0
                            : static_cast<double>(totalCycles) /
                                  static_cast<double>(ops);
        }
    };

    Core(HwSystem &hw, CoreId id, const PageTables &tables,
         Cycles compute_per_op = 12);

    /** Execute `ops` operations from the trace. */
    void run(const TraceFn &trace, std::uint64_t ops);

    /** Execute and discard (cache/TLB warmup). */
    void warmup(const TraceFn &trace, std::uint64_t ops);

    const Stats &stats() const { return stats_; }
    void resetStats() { stats_ = Stats{}; }
    CoreId id() const { return id_; }

  private:
    /** Walk-cycle share of one access result. */
    Cycles walkPart(const HwSystem::AccessResult &result) const;

    HwSystem &hw_;
    CoreId id_;
    const PageTables &tables_;
    Cycles computePerOp_;
    Stats stats_;
};

} // namespace ctg

#endif // CTG_HW_CORE_HH
