#include "hw/iommu.hh"

namespace ctg
{

Iommu::Iommu(const HwConfig &config, MemHierarchy &mem)
    : config_(config), mem_(mem), iotlb_(128, 4)
{}

void
Iommu::queueInvalidate(Vpn vpn)
{
    queue_.push_back(vpn);
}

void
Iommu::drainQueue()
{
    while (!queue_.empty()) {
        iotlb_.invalidate(queue_.front());
        queue_.pop_front();
        ++stats_.invalidations;
    }
}

Iommu::Result
Iommu::dmaAccess(Addr vaddr, const PageTables &tables, bool write,
                 std::uint64_t write_value)
{
    ++stats_.accesses;
    drainQueue();

    Result result;
    const Vpn vpn = addrToPfn(vaddr);
    result.latency += iotlbLat;

    Pfn pfn = invalidPfn;
    if (const Tlb::Entry *entry = iotlb_.lookup(vpn)) {
        pfn = entry->pfnHead + (vpn - entry->vpnHead);
        ++stats_.iotlbHits;
    } else {
        const Translation tr = tables.translate(vpn);
        if (!tr.valid)
            return result;
        result.walked = true;
        ++stats_.walks;
        // IOMMU page walk: charge a flat per-level cost (the IOMMU
        // walker has its own small caches we do not model).
        unsigned depth = 0;
        tables.walkAddrs(vpn, &depth);
        result.latency += depth * walkLatPerLevel;
        const Vpn head = vpn & ~((Vpn{1} << tr.order) - 1);
        iotlb_.insert(head, tr.pfn - (vpn & ((Vpn{1} << tr.order) - 1)),
                      tr.order);
        pfn = tr.pfn;
    }

    const Addr paddr = pfnToAddr(pfn) + (vaddr & (pageBytes - 1));
    const auto outcome = mem_.deviceAccess(paddr, write, write_value);
    result.latency += outcome.latency;
    result.value = outcome.value;
    result.valid = true;
    return result;
}

} // namespace ctg
