/**
 * @file
 * IOMMU with an IOTLB and a queued-invalidation interface, plus a
 * device-TLB-equipped NIC front end. Device accesses translate
 * through the IOTLB and hit the LLC as cache-coherent DMA; the core
 * posts TLB invalidations onto an in-memory queue that the IOMMU
 * drains asynchronously — the mechanism Contiguitas-HW leans on for
 * device-side lazy invalidation (Section 3.3).
 */

#ifndef CTG_HW_IOMMU_HH
#define CTG_HW_IOMMU_HH

#include <deque>

#include "hw/tlb.hh"

namespace ctg
{

/**
 * IOMMU + NIC device TLB model.
 */
class Iommu
{
  public:
    Iommu(const HwConfig &config, MemHierarchy &mem);

    /** Result of one DMA access. */
    struct Result
    {
        bool valid = false;
        Cycles latency = 0;
        std::uint64_t value = 0;
        bool walked = false;
    };

    /**
     * Device read/write of vaddr through the given (DMA) page
     * tables. Pending queued invalidations are drained first.
     */
    Result dmaAccess(Addr vaddr, const PageTables &tables, bool write,
                     std::uint64_t write_value = 0);

    /** Post an invalidation request onto the in-memory queue (the
     * core returns immediately; no blocking handshake). */
    void queueInvalidate(Vpn vpn);

    /** Number of requests still queued. */
    std::size_t pendingInvalidations() const { return queue_.size(); }

    struct Stats
    {
        std::uint64_t accesses = 0;
        std::uint64_t iotlbHits = 0;
        std::uint64_t walks = 0;
        std::uint64_t invalidations = 0;
    };

    const Stats &stats() const { return stats_; }

    /** Register IOMMU counters under the given group. */
    void
    regStats(StatGroup group) const
    {
        group.gauge("accesses",
                    [this] { return double(stats_.accesses); });
        group.gauge("iotlb_hits",
                    [this] { return double(stats_.iotlbHits); });
        group.gauge("walks",
                    [this] { return double(stats_.walks); });
        group.gauge(
            "invalidations",
            [this] { return double(stats_.invalidations); },
            "queued invalidations drained");
    }

  private:
    void drainQueue();

    const HwConfig &config_;
    MemHierarchy &mem_;
    Tlb iotlb_;
    std::deque<Vpn> queue_;
    Stats stats_;

    static constexpr Cycles iotlbLat = 4;
    static constexpr Cycles walkLatPerLevel = 40;
};

} // namespace ctg

#endif // CTG_HW_IOMMU_HH
