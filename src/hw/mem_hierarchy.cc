#include "hw/mem_hierarchy.hh"

namespace ctg
{

namespace
{

Addr
alignLine(Addr addr)
{
    return addr & ~static_cast<Addr>(lineBytes - 1);
}

} // namespace

MemHierarchy::MemHierarchy(const HwConfig &config)
    : config_(config), table_(config.chwEntries)
{
    cores_.resize(config_.cores);
    for (unsigned c = 0; c < config_.cores; ++c) {
        cores_[c].l1 = std::make_unique<CacheArray>(
            config_.l1Bytes, config_.l1Assoc, "l1");
        cores_[c].l2 = std::make_unique<CacheArray>(
            config_.l2Bytes, config_.l2Assoc, "l2");
    }
    for (unsigned s = 0; s < config_.llcSlices(); ++s) {
        slices_.push_back(std::make_unique<CacheArray>(
            config_.llcSliceBytes, config_.llcAssoc, "llc"));
    }
}

unsigned
MemHierarchy::sliceOf(Addr line_addr) const
{
    // XOR-fold the line address bits — the cheap hash the paper
    // notes real slice-selection functions use.
    std::uint64_t x = line_addr >> lineShift;
    x ^= x >> 17;
    x ^= x >> 9;
    x ^= x >> 4;
    return static_cast<unsigned>(x % slices_.size());
}

Cycles
MemHierarchy::ringLat(unsigned from, unsigned to) const
{
    const unsigned n = static_cast<unsigned>(slices_.size());
    const unsigned d = from > to ? from - to : to - from;
    const unsigned hops = std::min(d, n - d);
    return hops * config_.ringHopLat;
}

void
MemHierarchy::dropSharer(CacheEntry &entry, CoreId core)
{
    entry.sharers &= ~(std::uint32_t{1} << core);
    if (entry.owner == static_cast<std::int32_t>(core))
        entry.owner = -1;
}

std::uint64_t
MemHierarchy::freshValue(Addr line_addr) const
{
    // Owner's private copy is freshest; then the LLC; then DRAM.
    const CacheArray &slice = *slices_[sliceOf(line_addr)];
    const CacheEntry *dir = slice.peek(line_addr);
    if (dir != nullptr && dir->owner >= 0) {
        const PrivateCaches &pc =
            cores_[static_cast<unsigned>(dir->owner)];
        if (const CacheEntry *e = pc.l1->peek(line_addr))
            return e->value;
        if (const CacheEntry *e = pc.l2->peek(line_addr))
            return e->value;
    }
    if (dir != nullptr)
        return dir->value;
    const auto it = mainMem_.find(line_addr);
    return it == mainMem_.end() ? 0 : it->second;
}

std::uint64_t
MemHierarchy::authoritativeValue(Addr line_addr) const
{
    return freshValue(alignLine(line_addr));
}

void
MemHierarchy::pokeMemory(Addr line_addr, std::uint64_t value)
{
    mainMem_[alignLine(line_addr)] = value;
}

void
MemHierarchy::invalidatePrivate(Addr line_addr)
{
    for (auto &pc : cores_) {
        pc.l1->invalidate(line_addr);
        pc.l2->invalidate(line_addr);
    }
    CacheArray &slice = *slices_[sliceOf(line_addr)];
    // The directory forgets all sharers; the LLC copy (if any)
    // already carries the freshest value only if no owner existed,
    // so callers needing the value must read it first (busRdX does).
    if (CacheEntry *dir =
            const_cast<CacheEntry *>(slice.peek(line_addr))) {
        dir->sharers = 0;
        dir->owner = -1;
    }
}

void
MemHierarchy::backInvalidate(const CacheEntry &evicted)
{
    if (!evicted.valid)
        return;
    // Inclusive LLC: displacing a line evicts it everywhere. Collect
    // the freshest private value first.
    std::uint64_t value = evicted.value;
    if (evicted.owner >= 0) {
        const PrivateCaches &pc =
            cores_[static_cast<unsigned>(evicted.owner)];
        if (const CacheEntry *e = pc.l1->peek(evicted.lineAddr))
            value = e->value;
        else if (const CacheEntry *e = pc.l2->peek(evicted.lineAddr))
            value = e->value;
    }
    for (auto &pc : cores_) {
        pc.l1->invalidate(evicted.lineAddr);
        pc.l2->invalidate(evicted.lineAddr);
    }
    mainMem_[evicted.lineAddr] = value;
    ++stats_.writebacks;
}

CacheEntry &
MemHierarchy::llcFill(Addr line_addr, bool *filled_from_dram,
                      Cycles *extra)
{
    CacheArray &slice = *slices_[sliceOf(line_addr)];
    if (CacheEntry *hit = slice.lookup(line_addr)) {
        if (filled_from_dram != nullptr)
            *filled_from_dram = false;
        return *hit;
    }
    CacheEntry evicted;
    CacheEntry &fresh = slice.insert(line_addr, &evicted);
    backInvalidate(evicted);
    const auto it = mainMem_.find(line_addr);
    fresh.value = it == mainMem_.end() ? 0 : it->second;
    fresh.state = CohState::Shared;
    fresh.sharers = 0;
    fresh.owner = -1;
    if (filled_from_dram != nullptr)
        *filled_from_dram = true;
    if (extra != nullptr)
        *extra += config_.dramLat;
    ++stats_.dramFills;
    return fresh;
}

Addr
MemHierarchy::resolveLine(CoreId core, Addr line_addr,
                          bool *redirected, bool *noncacheable,
                          Cycles *extra)
{
    MigrationEntry *entry = table_.find(addrToPfn(line_addr));
    if (entry == nullptr)
        return line_addr;

    *extra += config_.chwLat;
    const Addr canonical = canonicalLine(*entry, line_addr);
    *redirected = canonical != line_addr;
    if (*redirected)
        ++stats_.redirects;

    if (entry->mode == ChwMode::Noncacheable) {
        *noncacheable = true;
        // First touch from a core that missed the notification gets
        // NACKed and retried as noncacheable (Section 3.3).
        const std::uint32_t bit = std::uint32_t{1} << core;
        if (core != ~CoreId{0} && !(entry->notified & bit)) {
            entry->notified |= bit;
            *extra += config_.l2Lat + config_.ringHopLat;
            ++stats_.nackRetries;
            // Purge any stale private copies of both names.
            const unsigned off = lineInPage(line_addr);
            const Addr off_bytes =
                static_cast<Addr>(off) * lineBytes;
            cores_[core].l1->invalidate(pfnToAddr(entry->srcPpn) +
                                        off_bytes);
            cores_[core].l2->invalidate(pfnToAddr(entry->srcPpn) +
                                        off_bytes);
            cores_[core].l1->invalidate(pfnToAddr(entry->dstPpn) +
                                        off_bytes);
            cores_[core].l2->invalidate(pfnToAddr(entry->dstPpn) +
                                        off_bytes);
        }
    }
    return canonical;
}

MemHierarchy::Outcome
MemHierarchy::access(CoreId core, Addr paddr, bool write,
                     std::uint64_t write_value)
{
    ctg_assert(core < cores_.size());
    ++stats_.accesses;
    Outcome out;
    const Addr requested = alignLine(paddr);
    PrivateCaches &pc = cores_[core];

    // Contiguitas-HW resolution. In cacheable mode lines are cached
    // under their canonical name, so redirection applies before the
    // private lookup; the per-line BusRdX of the copy engine purges
    // entries whose canonical name changed.
    Cycles extra = 0;
    bool noncacheable = false;
    const Addr line = resolveLine(core, requested, &out.redirected,
                                  &noncacheable, &extra);
    out.latency += extra;

    if (!noncacheable) {
        // L1.
        if (CacheEntry *e1 = pc.l1->lookup(line)) {
            out.latency += config_.l1Lat;
            if (write) {
                if (e1->state == CohState::Shared) {
                    // Upgrade: claim exclusivity at the directory.
                    CacheArray &slice = *slices_[sliceOf(line)];
                    CacheEntry *dir = const_cast<CacheEntry *>(
                        slice.peek(line));
                    out.latency += ringLat(core % slices_.size(),
                                           sliceOf(line)) +
                                   config_.llcLat;
                    ++stats_.upgrades;
                    if (dir != nullptr) {
                        for (unsigned c = 0; c < cores_.size(); ++c) {
                            if (c != core &&
                                (dir->sharers &
                                 (std::uint32_t{1} << c))) {
                                cores_[c].l1->invalidate(line);
                                cores_[c].l2->invalidate(line);
                            }
                        }
                        dir->sharers = std::uint32_t{1} << core;
                        dir->owner = static_cast<std::int32_t>(core);
                    }
                }
                e1->state = CohState::Modified;
                e1->value = write_value;
                if (CacheEntry *e2 = pc.l2->lookup(line)) {
                    e2->state = CohState::Modified;
                    e2->value = write_value;
                }
            }
            out.value = e1->value;
            ++stats_.l1Hits;
            return out;
        }
        out.latency += config_.l1Lat;

        // L2.
        if (CacheEntry *e2 = pc.l2->lookup(line)) {
            out.latency += config_.l2Lat;
            if (write && e2->state == CohState::Shared) {
                CacheArray &slice = *slices_[sliceOf(line)];
                CacheEntry *dir =
                    const_cast<CacheEntry *>(slice.peek(line));
                out.latency += ringLat(core % slices_.size(),
                                       sliceOf(line)) +
                               config_.llcLat;
                ++stats_.upgrades;
                if (dir != nullptr) {
                    for (unsigned c = 0; c < cores_.size(); ++c) {
                        if (c != core &&
                            (dir->sharers & (std::uint32_t{1} << c))) {
                            cores_[c].l1->invalidate(line);
                            cores_[c].l2->invalidate(line);
                        }
                    }
                    dir->sharers = std::uint32_t{1} << core;
                    dir->owner = static_cast<std::int32_t>(core);
                }
            }
            if (write) {
                e2->state = CohState::Modified;
                e2->value = write_value;
            }
            // Fill L1 (inclusive of L2; eviction is silent since L2
            // still holds the line).
            CacheEntry evicted;
            CacheEntry &e1 = pc.l1->insert(line, &evicted);
            e1.state = e2->state;
            e1.value = e2->value;
            out.value = e2->value;
            ++stats_.l2Hits;
            return out;
        }
        out.latency += config_.l2Lat;
    } else {
        out.bypassedPrivate = true;
        ++stats_.ncBypasses;
    }

    // LLC slice of the canonical line (forwarding between slices is
    // the Figure 9 step 6 path).
    const unsigned home = sliceOf(line);
    const unsigned requested_home = sliceOf(requested);
    out.latency += ringLat(core % slices_.size(), requested_home) +
                   config_.llcLat;
    if (home != requested_home) {
        out.latency += ringLat(requested_home, home);
        ++stats_.crossSliceForwards;
    }

    CacheArray &slice = *slices_[home];
    CacheEntry *dir = slice.lookup(line);
    bool from_dram = false;
    if (dir == nullptr) {
        Cycles fill_extra = 0;
        dir = &llcFill(line, &from_dram, &fill_extra);
        out.latency += fill_extra;
        out.servedFromDram = from_dram;
    } else {
        ++stats_.llcHits;
    }

    // Fetch the freshest copy from a remote owner if one exists.
    if (dir->owner >= 0 &&
        dir->owner != static_cast<std::int32_t>(core)) {
        const auto owner = static_cast<unsigned>(dir->owner);
        out.latency +=
            ringLat(home, owner % slices_.size()) + config_.l2Lat;
        std::uint64_t owner_value = dir->value;
        if (const CacheEntry *e = cores_[owner].l1->peek(line))
            owner_value = e->value;
        else if (const CacheEntry *e = cores_[owner].l2->peek(line))
            owner_value = e->value;
        dir->value = owner_value;
        if (write || noncacheable) {
            cores_[owner].l1->invalidate(line);
            cores_[owner].l2->invalidate(line);
            dropSharer(*dir, owner);
        } else {
            // Downgrade the owner to Shared.
            if (CacheEntry *e = cores_[owner].l1->lookup(line))
                e->state = CohState::Shared;
            if (CacheEntry *e = cores_[owner].l2->lookup(line))
                e->state = CohState::Shared;
            dir->owner = -1;
        }
    }

    if (noncacheable) {
        // Serve directly from the LLC; writes update it in place.
        if (write)
            dir->value = write_value;
        out.value = dir->value;
        return out;
    }

    // Fill the private hierarchy.
    if (write) {
        for (unsigned c = 0; c < cores_.size(); ++c) {
            if (c != core && (dir->sharers & (std::uint32_t{1} << c))) {
                cores_[c].l1->invalidate(line);
                cores_[c].l2->invalidate(line);
            }
        }
        dir->sharers = std::uint32_t{1} << core;
        dir->owner = static_cast<std::int32_t>(core);
    } else {
        dir->sharers |= std::uint32_t{1} << core;
    }

    const std::uint64_t fill_value = write ? write_value : dir->value;
    const CohState state =
        write ? CohState::Modified
              : (dir->sharers == (std::uint32_t{1} << core)
                     ? CohState::Exclusive
                     : CohState::Shared);
    // Exclusive lines can be silently written (E->M); the directory
    // must treat the exclusive holder as the potential owner.
    if (state != CohState::Shared)
        dir->owner = static_cast<std::int32_t>(core);

    CacheEntry evicted;
    CacheEntry &e2 = pc.l2->insert(line, &evicted);
    if (evicted.valid) {
        // L2 eviction: writeback to the LLC and keep inclusion.
        pc.l1->invalidate(evicted.lineAddr);
        CacheArray &vslice = *slices_[sliceOf(evicted.lineAddr)];
        if (CacheEntry *vdir = const_cast<CacheEntry *>(
                vslice.peek(evicted.lineAddr))) {
            if (evicted.state == CohState::Modified)
                vdir->value = evicted.value;
            dropSharer(*vdir, core);
        }
    }
    e2.state = state;
    e2.value = fill_value;

    CacheEntry evicted1;
    CacheEntry &e1 = pc.l1->insert(line, &evicted1);
    e1.state = state;
    e1.value = fill_value;

    out.value = fill_value;
    return out;
}

MemHierarchy::Outcome
MemHierarchy::deviceAccess(Addr paddr, bool write,
                           std::uint64_t write_value)
{
    // The NIC is cache coherent with the LLC (Section 3.3 platform)
    // but has no private cache in our model: treat it as a
    // noncacheable agent hitting the LLC directly.
    Outcome out;
    const Addr requested = alignLine(paddr);
    Cycles extra = 0;
    bool noncacheable = false;
    const Addr line = resolveLine(~CoreId{0}, requested,
                                  &out.redirected, &noncacheable,
                                  &extra);
    out.latency += extra;

    const unsigned home = sliceOf(line);
    out.latency += config_.ringHopLat + config_.llcLat;
    CacheEntry *dir = slices_[home]->lookup(line);
    bool from_dram = false;
    if (dir == nullptr) {
        Cycles fill_extra = 0;
        dir = &llcFill(line, &from_dram, &fill_extra);
        out.latency += fill_extra;
        out.servedFromDram = from_dram;
    }
    if (dir->owner >= 0) {
        const auto owner = static_cast<unsigned>(dir->owner);
        std::uint64_t v = dir->value;
        if (const CacheEntry *e = cores_[owner].l1->peek(line))
            v = e->value;
        else if (const CacheEntry *e = cores_[owner].l2->peek(line))
            v = e->value;
        dir->value = v;
        if (write) {
            cores_[owner].l1->invalidate(line);
            cores_[owner].l2->invalidate(line);
            dropSharer(*dir, owner);
        }
        out.latency += config_.l2Lat;
    }
    if (write) {
        // Invalidate all cached copies; DMA writes must be visible.
        for (unsigned c = 0; c < cores_.size(); ++c) {
            if (dir->sharers & (std::uint32_t{1} << c)) {
                cores_[c].l1->invalidate(line);
                cores_[c].l2->invalidate(line);
            }
        }
        dir->sharers = 0;
        dir->owner = -1;
        dir->value = write_value;
    }
    out.value = dir->value;
    return out;
}

std::uint64_t
MemHierarchy::busRdX(Addr line_addr, Cycles *cost)
{
    const Addr line = alignLine(line_addr);
    const std::uint64_t value = freshValue(line);
    invalidatePrivate(line);
    bool from_dram = false;
    Cycles extra = 0;
    CacheEntry &dir = llcFill(line, &from_dram, &extra);
    dir.value = value;
    dir.sharers = 0;
    dir.owner = -1;
    if (cost != nullptr)
        *cost += config_.llcLat + extra;
    return value;
}

void
MemHierarchy::copyWrite(Addr line_addr, std::uint64_t value,
                        Cycles *cost)
{
    const Addr line = alignLine(line_addr);
    invalidatePrivate(line);
    bool from_dram = false;
    Cycles extra = 0;
    CacheEntry &dir = llcFill(line, &from_dram, &extra);
    dir.value = value;
    dir.sharers = 0;
    dir.owner = -1;
    if (cost != nullptr)
        *cost += config_.llcLat + extra;
}

bool
MemHierarchy::lineModifiedInPrivate(Addr line_addr) const
{
    const Addr line = alignLine(line_addr);
    const CacheEntry *dir = slices_[sliceOf(line)]->peek(line);
    return dir != nullptr && dir->owner >= 0;
}

void
MemHierarchy::regStats(StatGroup group) const
{
    group.gauge("accesses",
                [this] { return double(stats_.accesses); });
    group.gauge("l1_hits",
                [this] { return double(stats_.l1Hits); });
    group.gauge("l2_hits",
                [this] { return double(stats_.l2Hits); });
    group.gauge("llc_hits",
                [this] { return double(stats_.llcHits); });
    group.gauge("dram_fills",
                [this] { return double(stats_.dramFills); });
    group.gauge("redirects",
                [this] { return double(stats_.redirects); },
                "LLC requests canonicalized by a live migration");
    group.gauge(
        "cross_slice_forwards",
        [this] { return double(stats_.crossSliceForwards); });
    group.gauge("nc_bypasses",
                [this] { return double(stats_.ncBypasses); },
                "noncacheable-mode private-cache bypasses");
    group.gauge("nack_retries",
                [this] { return double(stats_.nackRetries); });
    group.gauge("writebacks",
                [this] { return double(stats_.writebacks); });
    group.gauge("upgrades",
                [this] { return double(stats_.upgrades); });
}

} // namespace ctg
