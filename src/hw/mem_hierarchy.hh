/**
 * @file
 * Multicore cache hierarchy: per-core L1/L2, ring-connected shared
 * LLC slices with an inclusive directory, and DRAM. The model is
 * functional-plus-timing: each access executes atomically, returning
 * its latency and maintaining MESI-style single-writer coherence and
 * a per-line data token used by the migration correctness tests.
 *
 * The Contiguitas-HW extension hooks in at the LLC: requests to a
 * page with a live migration mapping are redirected to the canonical
 * line (Figure 8c) and, in noncacheable mode, bypass the private
 * caches entirely.
 */

#ifndef CTG_HW_MEM_HIERARCHY_HH
#define CTG_HW_MEM_HIERARCHY_HH

#include <memory>
#include <unordered_map>
#include <vector>

#include "base/stat_registry.hh"
#include "hw/cache.hh"
#include "hw/chw/migration_table.hh"
#include "hw/config.hh"

namespace ctg
{

/**
 * The memory system shared by all simulated cores and devices.
 */
class MemHierarchy
{
  public:
    explicit MemHierarchy(const HwConfig &config);

    /** Result of one memory access. */
    struct Outcome
    {
        Cycles latency = 0;
        std::uint64_t value = 0;
        bool servedFromDram = false;
        bool redirected = false;   //!< canonicalized by Contiguitas-HW
        bool bypassedPrivate = false; //!< noncacheable handling
    };

    /**
     * Perform a coherent load or store of the line containing paddr.
     *
     * @param core issuing core
     * @param paddr physical byte address
     * @param write true for stores
     * @param write_value token stored on a write
     */
    Outcome access(CoreId core, Addr paddr, bool write,
                   std::uint64_t write_value = 0);

    /** DMA access from a cache-coherent device (NIC): goes straight
     * to the LLC like a noncacheable agent. */
    Outcome deviceAccess(Addr paddr, bool write,
                         std::uint64_t write_value = 0);

    /** @{ Copy-engine primitives (Contiguitas-HW, Figure 8c). */
    /** BusRdX on the source line: invalidate private copies and pull
     * the latest version into its home LLC slice. Returns the value
     * and the cycles the operation took. */
    std::uint64_t busRdX(Addr line_addr, Cycles *cost);

    /** Write a copied value into the destination line's home slice,
     * invalidating stale private copies of the destination name. */
    void copyWrite(Addr line_addr, std::uint64_t value, Cycles *cost);

    /** True if some core holds the line Modified (cacheable-mode
     * copy skips such destination lines). */
    bool lineModifiedInPrivate(Addr line_addr) const;
    /** @} */

    /** Authoritative value of a line (tests/verification). */
    std::uint64_t authoritativeValue(Addr line_addr) const;

    /** Preset main-memory contents for a line (test setup). */
    void pokeMemory(Addr line_addr, std::uint64_t value);

    /** Invalidate a line from every private cache. */
    void invalidatePrivate(Addr line_addr);

    MigrationTable &migrationTable() { return table_; }
    const HwConfig &config() const { return config_; }

    /** Home slice of a physical line (XOR hash, Section 3.3). */
    unsigned sliceOf(Addr line_addr) const;

    /** Ring hops between two slice positions. */
    Cycles ringLat(unsigned from, unsigned to) const;

    struct Stats
    {
        std::uint64_t accesses = 0;
        std::uint64_t l1Hits = 0;
        std::uint64_t l2Hits = 0;
        std::uint64_t llcHits = 0;
        std::uint64_t dramFills = 0;
        std::uint64_t redirects = 0;
        std::uint64_t crossSliceForwards = 0;
        std::uint64_t ncBypasses = 0;
        std::uint64_t nackRetries = 0;
        std::uint64_t writebacks = 0;
        std::uint64_t upgrades = 0;
    };

    const Stats &stats() const { return stats_; }

    /** Register hierarchy counters under the given group
     * (conventionally `<prefix>.mem_hierarchy`). */
    void regStats(StatGroup group) const;

  private:
    struct PrivateCaches
    {
        std::unique_ptr<CacheArray> l1;
        std::unique_ptr<CacheArray> l2;
    };

    /** Resolve redirection; returns canonical line and whether the
     * access must bypass the private caches. */
    Addr resolveLine(CoreId core, Addr line_addr, bool *redirected,
                     bool *noncacheable, Cycles *extra);

    /** Read the freshest value of a canonical line without changing
     * cache contents. */
    std::uint64_t freshValue(Addr line_addr) const;

    /** Get or create the LLC entry for a line (handles eviction with
     * back-invalidation); `filled` reports a DRAM fill happened. */
    CacheEntry &llcFill(Addr line_addr, bool *filled_from_dram,
                        Cycles *extra);

    /** Remove a core from an LLC entry's sharer set. */
    static void dropSharer(CacheEntry &entry, CoreId core);

    void backInvalidate(const CacheEntry &evicted);

    HwConfig config_;
    std::vector<PrivateCaches> cores_;
    std::vector<std::unique_ptr<CacheArray>> slices_;
    std::unordered_map<Addr, std::uint64_t> mainMem_;
    MigrationTable table_;
    Stats stats_;
};

} // namespace ctg

#endif // CTG_HW_MEM_HIERARCHY_HH
