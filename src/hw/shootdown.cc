#include "hw/shootdown.hh"

#include "base/span_trace.hh"
#include "base/trace.hh"

namespace ctg
{

ShootdownManager::ShootdownManager(EventQueue &eventq,
                                   const HwConfig &config,
                                   MemHierarchy &mem,
                                   std::vector<Mmu *> mmus)
    : eventq_(eventq), config_(config), mem_(mem),
      mmus_(std::move(mmus))
{}

Cycles
ShootdownManager::classicShootdownCost(unsigned victims) const
{
    // Per victim: IPI delivery, handler entry, INVLPG (with its
    // pipeline flush), acknowledgement — serialized at the
    // initiator, hence the linear scaling the paper measures.
    const Cycles per_victim = config_.ipiDeliverLat +
                              config_.ipiHandlerLat +
                              config_.invlpgCost + config_.ipiAckLat;
    return victims * per_victim;
}

void
ShootdownManager::regStats(StatGroup group) const
{
    group.gauge(
        "software_migrations",
        [this] { return double(stats_.softwareMigrations); },
        "completed classic shootdown+copy migrations");
    group.gauge(
        "contiguitas_migrations",
        [this] { return double(stats_.contiguitasMigrations); },
        "completed redirection-based migrations");
    group.gauge("ipis_sent",
                [this] { return double(stats_.ipisSent); });
    group.gauge(
        "unavailable_cycles",
        [this] { return double(stats_.unavailableCycles); },
        "summed page-unavailable window over all migrations");
    group.gauge("total_cycles",
                [this] { return double(stats_.totalCycles); },
                "summed end-to-end migration latency");
}

Cycles
ShootdownManager::copyPage(Pfn src, Pfn dst)
{
    // Move the data tokens functionally so correctness checks hold;
    // charge the cost of a pipelined kernel memcpy rather than 128
    // serialized misses (real copies keep many lines in flight).
    Cycles ignored = 0;
    for (unsigned idx = 0; idx < linesPerPage; ++idx) {
        const Addr off = static_cast<Addr>(idx) * lineBytes;
        const std::uint64_t v =
            mem_.busRdX(pfnToAddr(src) + off, &ignored);
        mem_.copyWrite(pfnToAddr(dst) + off, v, &ignored);
    }
    // ~20 cycles per line sustains the ~1300-cycle 4 KB copy the
    // paper reports.
    return linesPerPage * 20;
}

void
ShootdownManager::softwareMigrate(
    CoreId initiator, unsigned victims, Vpn vpn, PageTables &tables,
    Pfn dst, std::function<void(MigrationTiming)> done)
{
    ctg_assert(initiator < mmus_.size());
    ctg_assert(victims < mmus_.size());
    const Translation tr = tables.translate(vpn);
    ctg_assert(tr.valid && tr.order == 0);
    const Pfn src = tr.pfn;

    auto timing = std::make_shared<MigrationTiming>();
    timing->start = eventq_.now();
    CTG_DPRINTF(Shootdown,
                "software migrate vpn=%llu -> pfn=%llu, %u victims",
                static_cast<unsigned long long>(vpn),
                static_cast<unsigned long long>(dst), victims);

    // The procedure runs as a chain of event-queue continuations; a
    // flow arrow ties this initiation slice to the completion slice.
    const std::uint64_t flow = spans::newFlowId();
    {
        CTG_SPAN(Shootdown, "shootdown.sw_migrate",
                 {{"vpn", static_cast<std::int64_t>(vpn)},
                  {"dst", static_cast<std::int64_t>(dst)},
                  {"victims", victims}});
        spans::flowBegin(TraceFlag::Shootdown, "shootdown.sw", flow);
    }

    // Step 1: clear the PTE — the page becomes unavailable.
    eventq_.schedule(config_.pteUpdateLat, [=, this, &tables] {
        CTG_SPAN(Shootdown, "shootdown.pte_clear_ipis",
                 {{"vpn", static_cast<std::int64_t>(vpn)},
                  {"victims", victims}});
        tables.unmap(vpn);
        timing->pteCleared = eventq_.now();

        // Step 2: initiator invalidates its own TLB.
        const Cycles local = mmus_[initiator]->invlpg(vpn);

        // Steps 3-5: IPI each victim; handler INVLPGs and acks.
        Cycles shoot = 0;
        for (unsigned v = 0; v < victims; ++v) {
            const CoreId victim = (initiator + 1 + v) %
                                  static_cast<CoreId>(mmus_.size());
            shoot += config_.ipiDeliverLat + config_.ipiHandlerLat;
            shoot += mmus_[victim]->invlpg(vpn);
            shoot += config_.ipiAckLat;
            ++stats_.ipisSent;
        }

        eventq_.schedule(local + shoot, [=, this, &tables] {
            timing->shootdownDone = eventq_.now();

            // Step 6: copy the page.
            Cycles copy_cost = 0;
            {
                CTG_SPAN(Shootdown, "shootdown.copy_page",
                         {{"src", static_cast<std::int64_t>(src)},
                          {"dst", static_cast<std::int64_t>(dst)}});
                copy_cost = copyPage(src, dst);
            }
            eventq_.schedule(copy_cost, [=, this, &tables] {
                timing->copyDone = eventq_.now();

                // Step 7: update the PTE — available again.
                eventq_.schedule(config_.pteUpdateLat,
                                 [=, this, &tables] {
                    tables.map(vpn, dst, 0);
                    timing->pteUpdated = eventq_.now();
                    timing->unavailableCycles =
                        timing->pteUpdated - timing->pteCleared;
                    timing->totalCycles =
                        timing->pteUpdated - timing->start;
                    ++stats_.softwareMigrations;
                    stats_.unavailableCycles +=
                        timing->unavailableCycles;
                    stats_.totalCycles += timing->totalCycles;
                    {
                        CTG_SPAN(
                            Shootdown, "shootdown.sw_complete",
                            {{"vpn", static_cast<std::int64_t>(vpn)},
                             {"total_cycles",
                              static_cast<std::int64_t>(
                                  timing->totalCycles)},
                             {"unavailable_cycles",
                              static_cast<std::int64_t>(
                                  timing->unavailableCycles)}});
                        spans::flowEnd(TraceFlag::Shootdown,
                                       "shootdown.sw", flow);
                    }
                    CTG_DPRINTF(Shootdown,
                                "software migrate vpn=%llu done: "
                                "total=%llu unavailable=%llu",
                                static_cast<unsigned long long>(vpn),
                                static_cast<unsigned long long>(
                                    timing->totalCycles),
                                static_cast<unsigned long long>(
                                    timing->unavailableCycles));
                    done(*timing);
                });
            });
        });
    });
}

void
ShootdownManager::contiguitasMigrate(
    CoreId initiator, Vpn vpn, PageTables &tables, Pfn dst,
    ChwMode mode, ChwEngine &engine,
    std::function<void(MigrationTiming)> done)
{
    ctg_assert(initiator < mmus_.size());
    const Translation tr = tables.translate(vpn);
    ctg_assert(tr.valid && tr.order == 0);
    const Pfn src = tr.pfn;

    auto timing = std::make_shared<MigrationTiming>();
    timing->start = eventq_.now();
    // The page is never unavailable: both mappings stay serviceable
    // through LLC redirection for the whole procedure.
    timing->pteCleared = eventq_.now();
    timing->pteUpdated = eventq_.now();

    const bool cacheable = mode == ChwMode::Cacheable;

    ChwEngine::Descriptor desc;
    desc.src = src;
    desc.dst = dst;
    desc.mode = mode;
    desc.startCopyNow = !cacheable;
    desc.onComplete = [timing, done, src, &engine, this] {
        timing->copyDone = eventq_.now();
        // The OS notices the completion flag at the next natural
        // kernel entry and issues the Clear command.
        eventq_.schedule(config_.kernelEntryPeriod / 2,
                         [timing, done, src, &engine, this] {
            engine.clear(src);
            auto t = *timing;
            t.totalCycles = eventq_.now() - t.start;
            t.unavailableCycles = 0;
            ++stats_.contiguitasMigrations;
            stats_.totalCycles += t.totalCycles;
            CTG_DPRINTF(Shootdown,
                        "contiguitas migrate pfn=%llu done: "
                        "total=%llu (never unavailable)",
                        static_cast<unsigned long long>(src),
                        static_cast<unsigned long long>(
                            t.totalCycles));
            done(t);
        });
    };

    // ENQCMD submission, then immediate PTE flip: redirection keeps
    // both mappings live, so no synchronization is needed.
    eventq_.schedule(ChwEngine::enqcmdCost + config_.pteUpdateLat,
                     [=, this, &tables, &engine] {
        const bool installed = engine.submitMigrate(desc);
        ctg_assert(installed);
        tables.unmap(vpn);
        tables.map(vpn, dst, 0);

        // Lazy local invalidations: each core INVLPGs at its next
        // natural kernel entry — no IPIs, no synchronous acks.
        Tick lazy_span = 0;
        for (unsigned c = 0; c < mmus_.size(); ++c) {
            const Tick entry_delay =
                (c + 1) * (config_.kernelEntryPeriod /
                           static_cast<Tick>(mmus_.size()));
            lazy_span = std::max(lazy_span, entry_delay);
            eventq_.schedule(entry_delay, [this, c, vpn] {
                mmus_[c]->invlpg(vpn);
            });
        }

        if (cacheable) {
            // Phase 2: the copy starts once every TLB switched to
            // the destination mapping.
            eventq_.schedule(lazy_span + 1, [=, &engine] {
                engine.startCopy(src);
            });
        }
    });
}

} // namespace ctg
