/**
 * @file
 * TLB shootdown and software page migration (Figure 1), plus the
 * Contiguitas lazy local-invalidation alternative.
 *
 * The classic procedure: the initiator clears the PTE, invalidates
 * its own TLB, interrupts every victim core (each runs INVLPG and
 * acknowledges), copies the page, and finally updates the PTE. The
 * page is unavailable from the PTE clear to the PTE update; the IPI
 * round trips serialize on the initiator, which is why the cost
 * scales linearly with the number of victim TLBs.
 *
 * Contiguitas replaces this with hardware redirection: the page
 * stays available throughout, and each core performs a local INVLPG
 * the next time the kernel naturally runs on it.
 */

#ifndef CTG_HW_SHOOTDOWN_HH
#define CTG_HW_SHOOTDOWN_HH

#include <functional>
#include <vector>

#include "base/stat_registry.hh"
#include "hw/chw/engine.hh"
#include "hw/tlb.hh"
#include "sim/eventq.hh"

namespace ctg
{

/** Timing record of one migration, as the Figure 13 bench reports. */
struct MigrationTiming
{
    Tick start = 0;
    Tick pteCleared = 0;
    Tick shootdownDone = 0;
    Tick copyDone = 0;
    Tick pteUpdated = 0;
    /** Cycles during which an access to the page would block. */
    Cycles unavailableCycles = 0;
    /** End-to-end migration latency. */
    Cycles totalCycles = 0;
};

/**
 * Orchestrates page migrations over the simulated cores.
 */
class ShootdownManager
{
  public:
    ShootdownManager(EventQueue &eventq, const HwConfig &config,
                     MemHierarchy &mem, std::vector<Mmu *> mmus);

    /**
     * Classic Linux software migration of the 4 KB page at vpn.
     *
     * @param initiator core running the kernel migration path
     * @param victims number of remote cores whose TLBs must be shot
     *        down (1..cores-1)
     * @param vpn virtual page to migrate
     * @param tables page tables to update
     * @param dst destination frame
     * @param done completion callback with the timing record
     */
    void softwareMigrate(CoreId initiator, unsigned victims, Vpn vpn,
                         PageTables &tables, Pfn dst,
                         std::function<void(MigrationTiming)> done);

    /**
     * Contiguitas-HW migration: install the mapping, update the PTE
     * immediately (both mappings stay serviceable via redirection),
     * let each core invalidate locally at its next kernel entry, and
     * copy per the mode. The page is never unavailable.
     */
    void contiguitasMigrate(CoreId initiator, Vpn vpn,
                            PageTables &tables, Pfn dst, ChwMode mode,
                            ChwEngine &engine,
                            std::function<void(MigrationTiming)> done);

    /** Analytic cost of the classic shootdown alone (validation). */
    Cycles classicShootdownCost(unsigned victims) const;

    /** Migration counts and accumulated timing. */
    struct Stats
    {
        std::uint64_t softwareMigrations = 0;
        std::uint64_t contiguitasMigrations = 0;
        std::uint64_t ipisSent = 0;
        /** Summed over completed migrations of either flavour. */
        std::uint64_t unavailableCycles = 0;
        std::uint64_t totalCycles = 0;
    };

    const Stats &stats() const { return stats_; }

    /** Register counters under the given group (conventionally
     * `<prefix>.shootdown`). */
    void regStats(StatGroup group) const;

  private:
    /** Functionally copy page contents (values move through the
     * hierarchy) while charging the pipelined-memcpy cost. */
    Cycles copyPage(Pfn src, Pfn dst);

    EventQueue &eventq_;
    const HwConfig &config_;
    MemHierarchy &mem_;
    std::vector<Mmu *> mmus_;
    Stats stats_;
};

} // namespace ctg

#endif // CTG_HW_SHOOTDOWN_HH
