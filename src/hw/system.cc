#include "hw/system.hh"

namespace ctg
{

HwSystem::HwSystem(const HwConfig &config)
    : config_(config)
{
    mem_ = std::make_unique<MemHierarchy>(config_);
    for (unsigned c = 0; c < config_.cores; ++c)
        mmus_.push_back(std::make_unique<Mmu>(config_, c, *mem_));
    engine_ = std::make_unique<ChwEngine>(eventq_, *mem_);
    std::vector<Mmu *> raw;
    raw.reserve(mmus_.size());
    for (auto &mmu : mmus_)
        raw.push_back(mmu.get());
    shootdown_ = std::make_unique<ShootdownManager>(
        eventq_, config_, *mem_, std::move(raw));
    iommu_ = std::make_unique<Iommu>(config_, *mem_);
}

HwSystem::AccessResult
HwSystem::coreAccess(CoreId core, Addr vaddr, const PageTables &tables,
                     bool write, std::uint64_t write_value)
{
    AccessResult result;
    Mmu::Result tr = mmus_.at(core)->translate(vaddr, tables);
    result.translationLatency = tr.latency;
    result.latency = tr.latency;
    result.pageWalk = tr.walked;
    if (!tr.valid)
        return result;
    const auto outcome =
        mem_->access(core, tr.paddr, write, write_value);
    result.latency += outcome.latency;
    result.value = outcome.value;
    result.valid = true;
    return result;
}

void
HwSystem::drain(Tick limit_ticks)
{
    eventq_.run(limit_ticks);
}

} // namespace ctg
