#include "hw/system.hh"

#include <string>

#include "base/trace.hh"

namespace ctg
{

HwSystem::HwSystem(const HwConfig &config)
    : config_(config)
{
    // Trace records are stamped with this system's hardware clock.
    // Kernel-only runs (no HwSystem) trace unstamped.
    trace::setTickSource([this] { return eventq_.now(); });
    mem_ = std::make_unique<MemHierarchy>(config_);
    for (unsigned c = 0; c < config_.cores; ++c)
        mmus_.push_back(std::make_unique<Mmu>(config_, c, *mem_));
    engine_ = std::make_unique<ChwEngine>(eventq_, *mem_);
    std::vector<Mmu *> raw;
    raw.reserve(mmus_.size());
    for (auto &mmu : mmus_)
        raw.push_back(mmu.get());
    shootdown_ = std::make_unique<ShootdownManager>(
        eventq_, config_, *mem_, std::move(raw));
    iommu_ = std::make_unique<Iommu>(config_, *mem_);
}

HwSystem::~HwSystem()
{
    trace::clearTickSource();
}

HwSystem::AccessResult
HwSystem::coreAccess(CoreId core, Addr vaddr, const PageTables &tables,
                     bool write, std::uint64_t write_value)
{
    AccessResult result;
    Mmu::Result tr = mmus_.at(core)->translate(vaddr, tables);
    result.translationLatency = tr.latency;
    result.latency = tr.latency;
    result.pageWalk = tr.walked;
    if (!tr.valid)
        return result;
    const auto outcome =
        mem_->access(core, tr.paddr, write, write_value);
    result.latency += outcome.latency;
    result.value = outcome.value;
    result.valid = true;
    return result;
}

void
HwSystem::drain(Tick limit_ticks)
{
    eventq_.run(limit_ticks);
}

void
HwSystem::regStats(StatGroup group) const
{
    for (std::size_t c = 0; c < mmus_.size(); ++c) {
        mmus_[c]->regStats(
            group.group("core" + std::to_string(c) + ".mmu"));
    }
    mem_->regStats(group.group("mem_hierarchy"));
    engine_->regStats(group.group("chw"));
    shootdown_->regStats(group.group("shootdown"));
    iommu_->regStats(group.group("iommu"));
}

} // namespace ctg
