/**
 * @file
 * HwSystem — the full-system simulation facade (Section 4's
 * QEMU+SST+DRAMSim3 stand-in): event queue, memory hierarchy,
 * per-core MMUs, Contiguitas-HW engine, shootdown manager and IOMMU,
 * wired together over a kernel instance's page tables.
 */

#ifndef CTG_HW_SYSTEM_HH
#define CTG_HW_SYSTEM_HH

#include <memory>
#include <vector>

#include "hw/chw/engine.hh"
#include "hw/iommu.hh"
#include "hw/shootdown.hh"
#include "hw/tlb.hh"
#include "sim/eventq.hh"

namespace ctg
{

/**
 * One simulated server's hardware.
 */
class HwSystem
{
  public:
    explicit HwSystem(const HwConfig &config = HwConfig{});
    ~HwSystem();

    EventQueue &eventq() { return eventq_; }
    MemHierarchy &mem() { return *mem_; }
    Mmu &mmu(CoreId core) { return *mmus_.at(core); }
    ChwEngine &chw() { return *engine_; }
    ShootdownManager &shootdown() { return *shootdown_; }
    Iommu &iommu() { return *iommu_; }
    const HwConfig &config() const { return config_; }

    /** Combined translate + data access from one core. */
    struct AccessResult
    {
        bool valid = false;
        Cycles latency = 0;
        Cycles translationLatency = 0;
        std::uint64_t value = 0;
        bool pageWalk = false;
    };

    AccessResult coreAccess(CoreId core, Addr vaddr,
                            const PageTables &tables, bool write,
                            std::uint64_t write_value = 0);

    /** Run pending hardware events to completion (bounded). */
    void drain(Tick limit_ticks = ~Tick{0});

    /** Register every hardware component's counters under the given
     * group: `coreN.mmu.*`, `mem_hierarchy.*`, `chw.*`,
     * `shootdown.*`, `iommu.*`. */
    void regStats(StatGroup group) const;

  private:
    HwConfig config_;
    EventQueue eventq_;
    std::unique_ptr<MemHierarchy> mem_;
    std::vector<std::unique_ptr<Mmu>> mmus_;
    std::unique_ptr<ChwEngine> engine_;
    std::unique_ptr<ShootdownManager> shootdown_;
    std::unique_ptr<Iommu> iommu_;
};

} // namespace ctg

#endif // CTG_HW_SYSTEM_HH
