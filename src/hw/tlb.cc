#include "hw/tlb.hh"

namespace ctg
{

namespace
{

constexpr unsigned supportedOrders[] = {0, hugeOrder, gigaOrder};

} // namespace

Tlb::Tlb(unsigned entries, unsigned assoc)
    : assoc_(assoc)
{
    ctg_assert(entries > 0 && assoc > 0 && entries % assoc == 0);
    // Set counts like 96 (1536/16) are not powers of two; index by
    // modulo as real TLBs effectively do with their hash.
    sets_ = entries / assoc;
    entries_.resize(entries);
}

std::uint64_t
Tlb::setOf(Vpn vpn, unsigned order) const
{
    return (vpn >> order) % sets_;
}

const Tlb::Entry *
Tlb::lookup(Vpn vpn)
{
    // One probe per supported page size, like split/skewed designs.
    for (const unsigned order : supportedOrders) {
        const Vpn head = vpn & ~((Vpn{1} << order) - 1);
        const std::uint64_t set = setOf(vpn, order);
        for (unsigned way = 0; way < assoc_; ++way) {
            Entry &entry = entries_[set * assoc_ + way];
            if (entry.valid && entry.order == order &&
                entry.vpnHead == head) {
                entry.lru = ++lruClock_;
                ++stats.hits;
                return &entry;
            }
        }
    }
    ++stats.misses;
    return nullptr;
}

void
Tlb::insert(Vpn vpn_head, Pfn pfn_head, unsigned order)
{
    ctg_assert((vpn_head & ((Vpn{1} << order) - 1)) == 0);
    const std::uint64_t set = setOf(vpn_head, order);
    Entry *victim = nullptr;
    for (unsigned way = 0; way < assoc_; ++way) {
        Entry &entry = entries_[set * assoc_ + way];
        if (entry.valid && entry.order == order &&
            entry.vpnHead == vpn_head) {
            victim = &entry; // refresh in place
            break;
        }
        if (!entry.valid) {
            if (victim == nullptr || victim->valid)
                victim = &entry;
            continue;
        }
        if (victim == nullptr ||
            (victim->valid && entry.lru < victim->lru)) {
            victim = &entry;
        }
    }
    ctg_assert(victim != nullptr);
    victim->valid = true;
    victim->vpnHead = vpn_head;
    victim->pfnHead = pfn_head;
    victim->order = order;
    victim->lru = ++lruClock_;
}

bool
Tlb::invalidate(Vpn vpn)
{
    bool any = false;
    for (const unsigned order : supportedOrders) {
        const Vpn head = vpn & ~((Vpn{1} << order) - 1);
        const std::uint64_t set = setOf(vpn, order);
        for (unsigned way = 0; way < assoc_; ++way) {
            Entry &entry = entries_[set * assoc_ + way];
            if (entry.valid && entry.order == order &&
                entry.vpnHead == head) {
                entry = Entry{};
                any = true;
            }
        }
    }
    if (any)
        ++stats.invalidations;
    return any;
}

void
Tlb::flushAll()
{
    for (auto &entry : entries_)
        entry = Entry{};
}

PageWalkCache::PageWalkCache(unsigned entries)
    : entries_(entries)
{
    ctg_assert(entries > 0);
}

bool
PageWalkCache::lookup(std::uint64_t key, Addr *table_addr)
{
    for (auto &entry : entries_) {
        if (entry.valid && entry.key == key) {
            entry.lru = ++lruClock_;
            if (table_addr != nullptr)
                *table_addr = entry.tableAddr;
            return true;
        }
    }
    return false;
}

void
PageWalkCache::insert(std::uint64_t key, Addr table_addr)
{
    Entry *victim = &entries_[0];
    for (auto &entry : entries_) {
        if (entry.valid && entry.key == key) {
            entry.tableAddr = table_addr;
            entry.lru = ++lruClock_;
            return;
        }
        if (!entry.valid) {
            victim = &entry;
            break;
        }
        if (entry.lru < victim->lru)
            victim = &entry;
    }
    victim->valid = true;
    victim->key = key;
    victim->tableAddr = table_addr;
    victim->lru = ++lruClock_;
}

void
PageWalkCache::flushAll()
{
    for (auto &entry : entries_)
        entry = Entry{};
}

Mmu::Mmu(const HwConfig &config, CoreId core, MemHierarchy &mem)
    : config_(config), core_(core), mem_(mem),
      l1_(config.l1TlbEntries, config.l1TlbAssoc),
      l2_(config.l2TlbEntries, config.l2TlbAssoc)
{
    for (int level = 0; level < 3; ++level)
        pwcs_.emplace_back(config.pwcEntries);
}

Mmu::Result
Mmu::translate(Addr vaddr, const PageTables &tables)
{
    ++stats_.translations;
    Result result;
    const Vpn vpn = addrToPfn(vaddr);
    const Addr page_off = vaddr & (pageBytes - 1);

    auto finish = [&result, vpn, page_off](const Tlb::Entry &entry) {
        const Vpn delta = vpn - entry.vpnHead;
        result.valid = true;
        result.paddr =
            pfnToAddr(entry.pfnHead + delta) + page_off;
    };

    result.latency += config_.l1TlbLat;
    if (const Tlb::Entry *entry = l1_.lookup(vpn)) {
        finish(*entry);
        return result;
    }

    result.latency += config_.l2TlbLat;
    if (const Tlb::Entry *entry = l2_.lookup(vpn)) {
        l1_.insert(entry->vpnHead, entry->pfnHead, entry->order);
        finish(*entry);
        return result;
    }

    // Page walk. The PWCs can skip upper radix levels; every level
    // actually visited is a real memory access through the cache
    // hierarchy.
    result.walked = true;
    ++stats_.walks;
    result.latency += config_.pwcLat;

    unsigned depth = 0;
    const auto addrs = tables.walkAddrs(vpn, &depth);
    ctg_assert(depth >= 1);

    // Deepest PWC hit determines where the walk starts. PWC level i
    // caches the table reached after consuming i+1 radix levels.
    unsigned start = 0;
    const unsigned upper_levels = depth - 1;
    for (int i = static_cast<int>(
             std::min(upper_levels, 3u)) - 1;
         i >= 0; --i) {
        const std::uint64_t key =
            vpn >> (27 - 9 * static_cast<unsigned>(i));
        if (pwcs_[static_cast<unsigned>(i)].lookup(key, nullptr)) {
            start = static_cast<unsigned>(i) + 1;
            break;
        }
    }

    for (unsigned j = start; j < depth; ++j) {
        const auto outcome = mem_.access(core_, addrs[j], false);
        result.latency += outcome.latency;
        stats_.walkCycles += outcome.latency;
        ++result.walkDepth;
    }

    // Refill the PWCs for the levels traversed.
    for (unsigned j = 0; j + 1 < depth && j < 3; ++j) {
        const std::uint64_t key = vpn >> (27 - 9 * j);
        pwcs_[j].insert(key, addrs[j + 1]);
    }

    const Translation tr = tables.translate(vpn);
    if (!tr.valid)
        return result;

    const Vpn head = vpn & ~((Vpn{1} << tr.order) - 1);
    const Pfn pfn_head = tr.pfn - (vpn & ((Vpn{1} << tr.order) - 1));
    l1_.insert(head, pfn_head, tr.order);
    l2_.insert(head, pfn_head, tr.order);
    result.valid = true;
    result.paddr = pfnToAddr(tr.pfn) + page_off;
    return result;
}

Cycles
Mmu::invlpg(Vpn vpn)
{
    ++stats_.invlpgs;
    l1_.invalidate(vpn);
    l2_.invalidate(vpn);
    for (auto &pwc : pwcs_)
        pwc.flushAll();
    return config_.invlpgCost;
}

void
Mmu::flushAll()
{
    l1_.flushAll();
    l2_.flushAll();
    for (auto &pwc : pwcs_)
        pwc.flushAll();
}

namespace
{

void
regTlbStats(StatGroup group, const Tlb &tlb)
{
    group.gauge("hits", [&tlb] { return double(tlb.stats.hits); });
    group.gauge("misses",
                [&tlb] { return double(tlb.stats.misses); });
    group.gauge("invalidations",
                [&tlb] { return double(tlb.stats.invalidations); });
}

} // namespace

void
Mmu::regStats(StatGroup group) const
{
    group.gauge("translations",
                [this] { return double(stats_.translations); });
    group.gauge("walks", [this] { return double(stats_.walks); },
                "translations that missed both TLB levels");
    group.gauge("walk_cycles",
                [this] { return double(stats_.walkCycles); },
                "cycles spent in hardware page walks");
    group.gauge("invlpgs",
                [this] { return double(stats_.invlpgs); });
    regTlbStats(group.group("l1"), l1_);
    regTlbStats(group.group("l2"), l2_);
}

} // namespace ctg
