/**
 * @file
 * Address-translation hardware: two-level TLBs, page-walk caches,
 * and the hardware page walker that charges real memory accesses for
 * each radix level (Figure 3's page-walk cycles come from here).
 */

#ifndef CTG_HW_TLB_HH
#define CTG_HW_TLB_HH

#include <cstdint>
#include <vector>

#include "base/stat_registry.hh"
#include "hw/config.hh"
#include "hw/mem_hierarchy.hh"
#include "kernel/pagetable.hh"

namespace ctg
{

/**
 * Set-associative TLB holding leaf translations of any page size.
 */
class Tlb
{
  public:
    struct Entry
    {
        bool valid = false;
        Vpn vpnHead = 0;    //!< order-aligned VPN of the mapping
        Pfn pfnHead = 0;
        unsigned order = 0; //!< 0, 9 or 18
        std::uint64_t lru = 0;
    };

    Tlb(unsigned entries, unsigned assoc);

    /** Look up the translation covering vpn; nullptr on miss. */
    const Entry *lookup(Vpn vpn);

    /** Install a leaf translation. */
    void insert(Vpn vpn_head, Pfn pfn_head, unsigned order);

    /** Invalidate any entry covering vpn (INVLPG). */
    bool invalidate(Vpn vpn);

    /** Full flush. */
    void flushAll();

    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t invalidations = 0;
    };

    Stats stats;

  private:
    std::uint64_t setOf(Vpn vpn, unsigned order) const;

    std::vector<Entry> entries_;
    std::uint64_t sets_;
    unsigned assoc_;
    std::uint64_t lruClock_ = 0;
};

/**
 * Fully-associative page-walk cache for one radix level: caches the
 * physical address of the next-level table, letting the walker skip
 * upper levels.
 */
class PageWalkCache
{
  public:
    explicit PageWalkCache(unsigned entries);

    /** Key is the VPN prefix above the cached level. */
    bool lookup(std::uint64_t key, Addr *table_addr);
    void insert(std::uint64_t key, Addr table_addr);
    void flushAll();

  private:
    struct Entry
    {
        bool valid = false;
        std::uint64_t key = 0;
        Addr tableAddr = 0;
        std::uint64_t lru = 0;
    };

    std::vector<Entry> entries_;
    std::uint64_t lruClock_ = 0;
};

/**
 * Per-core MMU: L1/L2 TLBs, page-walk caches and the walker.
 */
class Mmu
{
  public:
    Mmu(const HwConfig &config, CoreId core, MemHierarchy &mem);

    /** Result of a translation. */
    struct Result
    {
        bool valid = false;
        Addr paddr = 0;
        Cycles latency = 0;
        bool walked = false;     //!< required a page walk
        unsigned walkDepth = 0;  //!< levels touched by the walk
    };

    /**
     * Translate vaddr through the given page tables, charging TLB
     * and walk latencies (walk levels are real memory accesses).
     */
    Result translate(Addr vaddr, const PageTables &tables);

    /** Local INVLPG: drop the translation and pay the pipeline-flush
     * cost (Section 4: ~250 cycles measured). */
    Cycles invlpg(Vpn vpn);

    /** Flush everything (context switch with full flush). */
    void flushAll();

    Tlb &l1Tlb() { return l1_; }
    Tlb &l2Tlb() { return l2_; }

    struct Stats
    {
        std::uint64_t translations = 0;
        std::uint64_t walks = 0;
        Cycles walkCycles = 0;
        std::uint64_t invlpgs = 0;
    };

    const Stats &stats() const { return stats_; }

    /** Register MMU counters plus `l1`/`l2` TLB subtrees under the
     * given group (conventionally `<prefix>.coreN.mmu`). */
    void regStats(StatGroup group) const;

  private:
    const HwConfig &config_;
    CoreId core_;
    MemHierarchy &mem_;
    Tlb l1_;
    Tlb l2_;
    /** One PWC per upper level (PGD/PUD/PMD). */
    std::vector<PageWalkCache> pwcs_;
    Stats stats_;
};

} // namespace ctg

#endif // CTG_HW_TLB_HH
