#include "kernel/addrspace.hh"

#include <algorithm>

#include "base/serde.hh"

namespace ctg
{

void
ChunkTable::restoreEntries(std::vector<Entry> entries)
{
    slots_ = std::move(entries);
    index_.clear();
    index_.reserve(slots_.size());
    for (std::size_t i = 0; i < slots_.size(); ++i) {
        const bool fresh =
            index_.emplace(slots_[i].vpn,
                           static_cast<std::uint32_t>(i)).second;
        if (!fresh)
            throw serde::Error("chunk table: duplicate vpn");
    }
}

AddressSpace::AddressSpace(Kernel &kernel, std::uint32_t pid)
    : kernel_(kernel), pid_(pid),
      clientId_(kernel.owners().registerClient(this)), tables_(kernel)
{}

AddressSpace::AddressSpace(Kernel &kernel, serde::Reader &in)
    : kernel_(kernel), pid_(in.getU32()), clientId_(in.getU16()),
      tables_(kernel, in)
{
    kernel_.owners().attachClientAt(clientId_, this);

    const std::uint64_t region_count = in.getU64();
    for (std::uint64_t i = 0; i < region_count; ++i) {
        const Vpn base = in.getU64();
        const std::uint64_t pages = in.getU64();
        if (pages == 0 ||
            !regions_.emplace(base, Region{base, pages}).second)
            throw serde::Error("address space: bad region");
    }

    // The chunk slot order is RNG-visible state (releasePages samples
    // it uniformly), so the dense array is adopted verbatim. Each
    // entry is cross-checked against the restored page tables; the
    // per-size counters and the 2 MB-range occupancy map are derived
    // and rebuilt here.
    const std::uint64_t chunk_count = in.getU64();
    if (chunk_count != tables_.mappings())
        throw serde::Error("address space: chunk count mismatch");
    std::vector<ChunkTable::Entry> entries;
    entries.reserve(chunk_count);
    for (std::uint64_t i = 0; i < chunk_count; ++i) {
        const Vpn vpn = in.getU64();
        const std::uint32_t order = in.getU32();
        if (order != 0 && order != hugeOrder && order != gigaOrder)
            throw serde::Error("address space: bad chunk order");
        const Translation tr = tables_.translate(vpn);
        if (!tr.valid || tr.order != order)
            throw serde::Error(
                "address space: chunk/page-table mismatch");
        entries.push_back(ChunkTable::Entry{vpn, order});
        if (order == 0) {
            ++pages4k_;
            ++hugeRangeUse_[vpn >> hugeOrder];
        } else if (order == hugeOrder) {
            ++chunks2m_;
        } else {
            ++chunks1g_;
        }
    }
    chunks_.restoreEntries(std::move(entries));
    nextBaseVpn_ = in.getU64();
}

void
AddressSpace::saveTo(serde::Writer &out) const
{
    out.putU32(pid_);
    out.putU16(clientId_);
    tables_.saveTo(out);
    out.putU64(regions_.size());
    for (const auto &[base, region] : regions_) {
        out.putU64(region.baseVpn);
        out.putU64(region.pages);
    }
    out.putU64(chunks_.size());
    for (const ChunkTable::Entry &entry : chunks_.entries()) {
        out.putU64(entry.vpn);
        out.putU32(entry.order);
    }
    out.putU64(nextBaseVpn_);
}

AddressSpace::~AddressSpace()
{
    while (!regions_.empty())
        munmap(pfnToAddr(regions_.begin()->first));
    kernel_.owners().unregisterClient(clientId_);
}

Addr
AddressSpace::mmap(std::uint64_t bytes)
{
    const std::uint64_t pages =
        (bytes + pageBytes - 1) / pageBytes;
    ctg_assert(pages > 0);
    const Vpn base = nextBaseVpn_;
    // Advance by whole gigabytes so every region base is 1 GB aligned.
    const std::uint64_t giga_span =
        (pages + pagesPerGiga - 1) / pagesPerGiga;
    nextBaseVpn_ += giga_span * pagesPerGiga;
    regions_.emplace(base, Region{base, pages});
    return pfnToAddr(base);
}

void
AddressSpace::munmap(Addr base)
{
    const Vpn base_vpn = addrToPfn(base);
    auto it = regions_.find(base_vpn);
    ctg_assert(it != regions_.end());
    const Region region = it->second;

    Vpn vpn = region.baseVpn;
    const Vpn end = region.baseVpn + region.pages;
    while (vpn < end) {
        if (const std::uint32_t *corder = chunks_.find(vpn)) {
            const unsigned order = *corder;
            // Process teardown drops any remaining DMA pins.
            const Translation tr = tables_.translate(vpn);
            if (tr.valid && kernel_.mem().frame(tr.pfn).isPinned())
                kernel_.unpinPages(tr.pfn);
            unbackChunk(vpn, order);
            vpn += Vpn{1} << order;
        } else {
            ++vpn;
        }
    }
    regions_.erase(it);
}

bool
AddressSpace::backChunk(Vpn vpn, unsigned order)
{
    AllocRequest req;
    req.order = order;
    req.mt = MigrateType::Movable;
    req.source = AllocSource::User;
    req.owner = OwnerRegistry::makeOwner(clientId_, vpn);
    req.lifetime = Lifetime::Short;
    const Pfn pfn = kernel_.allocPages(req);
    if (pfn == invalidPfn)
        return false;
    if (!tables_.map(vpn, pfn, order)) {
        kernel_.freePages(pfn);
        return false;
    }
    chunks_.insert(vpn, order);
    if (order == 0) {
        ++pages4k_;
        ++hugeRangeUse_[vpn >> hugeOrder];
    } else if (order == hugeOrder) {
        ++chunks2m_;
    }
    return true;
}

void
AddressSpace::unbackChunk(Vpn vpn, unsigned order)
{
    const Translation tr = tables_.translate(vpn);
    ctg_assert(tr.valid && tr.order == order);
    tables_.unmap(vpn);
    kernel_.freePages(tr.pfn);
    chunks_.erase(vpn);
    if (order == 0) {
        --pages4k_;
        auto it = hugeRangeUse_.find(vpn >> hugeOrder);
        ctg_assert(it != hugeRangeUse_.end() && it->second > 0);
        if (--it->second == 0)
            hugeRangeUse_.erase(it);
    } else if (order == hugeOrder) {
        --chunks2m_;
    } else {
        ctg_assert(order == gigaOrder);
        --chunks1g_;
    }
}

std::uint64_t
AddressSpace::touchRange(Addr addr, std::uint64_t bytes)
{
    const Vpn first = addrToPfn(addr);
    const Vpn last = addrToPfn(addr + bytes - 1);
    std::uint64_t backed = 0;

    Vpn vpn = first;
    while (vpn <= last) {
        if (tables_.translate(vpn).valid) {
            ++vpn;
            continue;
        }
        // THP policy: aligned 2 MB chunk fully inside the requested
        // range gets a huge-page attempt first.
        const bool huge_aligned = (vpn % pagesPerHuge) == 0;
        const bool huge_fits = vpn + pagesPerHuge - 1 <= last;
        const bool huge_clear =
            hugeRangeUse_.find(vpn >> hugeOrder) ==
            hugeRangeUse_.end();
        if (kernel_.config().thpEnabled && huge_aligned &&
            huge_fits && huge_clear) {
            if (backChunk(vpn, hugeOrder)) {
                backed += pagesPerHuge;
                vpn += pagesPerHuge;
                continue;
            }
        }
        if (backChunk(vpn, 0))
            ++backed;
        ++vpn;
    }
    return backed;
}

bool
AddressSpace::backWithGigantic(Addr addr)
{
    const Vpn vpn = addrToPfn(addr);
    ctg_assert(vpn % pagesPerGiga == 0);
    ctg_assert(!tables_.translate(vpn).valid);
    const std::uint64_t owner =
        OwnerRegistry::makeOwner(clientId_, vpn);
    const Pfn pfn = kernel_.allocGigantic(owner);
    if (pfn == invalidPfn)
        return false;
    if (!tables_.map(vpn, pfn, gigaOrder)) {
        kernel_.freePages(pfn);
        return false;
    }
    chunks_.insert(vpn, gigaOrder);
    ++chunks1g_;
    return true;
}

std::uint64_t
AddressSpace::releasePages(std::uint64_t pages, Rng &rng)
{
    if (chunks_.empty())
        return 0;
    std::uint64_t freed = 0;
    // Random eviction: uniform over the dense chunk slots (never
    // over hash-table internals — see ChunkTable).
    std::uint64_t attempts = 0;
    const std::uint64_t max_attempts = pages * 8 + 64;
    while (freed < pages && !chunks_.empty() &&
           attempts++ < max_attempts) {
        const ChunkTable::Entry &entry =
            chunks_.at(rng.below(chunks_.size()));
        const Vpn vpn = entry.vpn;
        const unsigned order = entry.order;
        // Pinned pages cannot be reclaimed while IO may target them.
        const Translation tr = tables_.translate(vpn);
        if (tr.valid && kernel_.mem().frame(tr.pfn).isPinned())
            continue;
        unbackChunk(vpn, order);
        freed += Pfn{1} << order;
    }
    return freed;
}

std::uint64_t
AddressSpace::releaseRange(Addr base, std::uint64_t bytes,
                           std::uint64_t pages, Rng &rng)
{
    const Vpn lo = addrToPfn(base);
    const std::uint64_t span = bytes / pageBytes;
    ctg_assert(span > 0);
    std::uint64_t freed = 0;
    std::uint64_t attempts = 0;
    const std::uint64_t max_attempts = pages * 4 + 16;
    while (freed < pages && attempts++ < max_attempts) {
        const Vpn vpn = lo + rng.below(span);
        const Translation tr = tables_.translate(vpn);
        if (!tr.valid || tr.order > hugeOrder)
            continue;
        const Vpn head = vpn & ~((Vpn{1} << tr.order) - 1);
        const Translation head_tr = tables_.translate(head);
        ctg_assert(head_tr.valid);
        if (kernel_.mem().frame(head_tr.pfn).isPinned())
            continue;
        unbackChunk(head, tr.order);
        freed += Pfn{1} << tr.order;
    }
    return freed;
}

std::uint64_t
AddressSpace::promoteHugeRanges(std::uint64_t budget)
{
    if (budget == 0 || !kernel_.config().thpEnabled)
        return 0;
    // Gather candidates first: collapsing mutates hugeRangeUse_.
    std::vector<Vpn> candidates;
    for (const auto &[range, used] : hugeRangeUse_) {
        if (used == pagesPerHuge)
            candidates.push_back(range);
        if (candidates.size() >= budget * 4)
            break;
    }

    std::uint64_t promoted = 0;
    for (const Vpn range : candidates) {
        if (promoted >= budget)
            break;
        const Vpn head = range << hugeOrder;
        // Skip ranges with pinned pages (DMA may target them).
        bool pinned = false;
        for (Vpn vpn = head; vpn < head + pagesPerHuge; ++vpn) {
            const Translation tr = tables_.translate(vpn);
            ctg_assert(tr.valid && tr.order == 0);
            if (kernel_.mem().frame(tr.pfn).isPinned()) {
                pinned = true;
                break;
            }
        }
        if (pinned)
            continue;

        AllocRequest req;
        req.order = hugeOrder;
        req.mt = MigrateType::Movable;
        req.source = AllocSource::User;
        req.owner = OwnerRegistry::makeOwner(clientId_, head);
        req.lifetime = Lifetime::Short;
        const Pfn huge = kernel_.allocPages(req);
        if (huge == invalidPfn)
            break; // no contiguity available right now

        // Migrate ("copy") each base page into the huge frame and
        // retire the old mapping.
        for (Vpn vpn = head; vpn < head + pagesPerHuge; ++vpn)
            unbackChunk(vpn, 0);
        const bool ok = tables_.map(head, huge, hugeOrder);
        ctg_assert(ok);
        chunks_.insert(head, hugeOrder);
        ++chunks2m_;
        ++promoted;
    }
    return promoted;
}

Translation
AddressSpace::translate(Addr vaddr) const
{
    return tables_.translate(addrToPfn(vaddr));
}

bool
AddressSpace::relocate(std::uint64_t tag, Pfn old_head, Pfn new_head)
{
    const Vpn vpn = tag;
    const Translation tr = tables_.translate(vpn);
    if (!tr.valid || tr.pfn != old_head)
        return false;
    return tables_.repoint(vpn, new_head);
}

std::uint64_t
AddressSpace::backedPages() const
{
    return pages4k_ + chunks2m_ * pagesPerHuge +
           chunks1g_ * pagesPerGiga;
}

Pfn
AddressSpace::randomBacked4kFrame(Rng &rng) const
{
    if (chunks_.empty())
        return invalidPfn;
    for (int attempt = 0; attempt < 64; ++attempt) {
        const ChunkTable::Entry &entry =
            chunks_.at(rng.below(chunks_.size()));
        if (entry.order == 0) {
            const Translation tr = tables_.translate(entry.vpn);
            ctg_assert(tr.valid);
            return tr.pfn;
        }
    }
    return invalidPfn;
}

} // namespace ctg
