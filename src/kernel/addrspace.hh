/**
 * @file
 * Process address spaces: anonymous mmap regions, demand faulting
 * with a THP policy (2 MB attempt on aligned chunks), HugeTLB 1 GB
 * reservation, and migration support (the address space is a
 * PageOwnerClient whose pages compaction and Contiguitas can move).
 */

#ifndef CTG_KERNEL_ADDRSPACE_HH
#define CTG_KERNEL_ADDRSPACE_HH

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "base/rng.hh"
#include "base/types.hh"
#include "kernel/kernel.hh"
#include "kernel/pagetable.hh"

namespace ctg
{

namespace serde
{
class Writer;
class Reader;
} // namespace serde

/**
 * Mapped-chunk table: vpn -> order with O(1) lookup, O(1)
 * swap-remove erase, and O(1) uniform random sampling over a dense
 * slot array. The churn paths used to sample unordered_map buckets,
 * which made RNG-visible behavior depend on the standard library's
 * internal bucket layout — state that cannot be serialized, so a
 * restored process could never replay bit-identically. Here the only
 * structure the RNG ever sees is the slot array, which is a pure
 * function of the operation history (and is what a snapshot saves);
 * the unordered index is never iterated or sampled.
 */
class ChunkTable
{
  public:
    struct Entry
    {
        Vpn vpn;
        std::uint32_t order;
    };

    bool
    empty() const
    {
        return slots_.empty();
    }

    std::size_t
    size() const
    {
        return slots_.size();
    }

    const Entry &
    at(std::size_t i) const
    {
        return slots_[i];
    }

    /** Order of the chunk at vpn, or nullptr. */
    const std::uint32_t *
    find(Vpn vpn) const
    {
        auto it = index_.find(vpn);
        return it == index_.end() ? nullptr
                                  : &slots_[it->second].order;
    }

    void
    insert(Vpn vpn, std::uint32_t order)
    {
        index_.emplace(vpn, static_cast<std::uint32_t>(slots_.size()));
        slots_.push_back(Entry{vpn, order});
    }

    void
    erase(Vpn vpn)
    {
        auto it = index_.find(vpn);
        ctg_assert(it != index_.end());
        const std::uint32_t slot = it->second;
        index_.erase(it);
        const std::uint32_t last =
            static_cast<std::uint32_t>(slots_.size() - 1);
        if (slot != last) {
            slots_[slot] = slots_[last];
            index_[slots_[slot].vpn] = slot;
        }
        slots_.pop_back();
    }

    /** The dense slot array — serialized verbatim; the index is
     * rebuilt on load. */
    const std::vector<Entry> &entries() const { return slots_; }

    /** Checkpoint restore: adopt a slot array and rebuild the
     * index. */
    void restoreEntries(std::vector<Entry> entries);

  private:
    std::vector<Entry> slots_;
    /** Lookup accelerator only — never iterated, never sampled. */
    std::unordered_map<Vpn, std::uint32_t> index_;
};

/**
 * One process's virtual address space.
 */
class AddressSpace : public PageOwnerClient
{
  public:
    AddressSpace(Kernel &kernel, std::uint32_t pid);

    /** Checkpoint restore: re-attach at the serialized client id
     * (owner handles baked into frames must keep resolving to this
     * object) and adopt the serialized tables/regions/chunk state
     * without allocating. */
    AddressSpace(Kernel &kernel, serde::Reader &in);

    ~AddressSpace() override;

    AddressSpace(const AddressSpace &) = delete;
    AddressSpace &operator=(const AddressSpace &) = delete;

    /**
     * Reserve a virtual region of the given size (rounded up to
     * whole pages; bases are 1 GB aligned so gigantic mappings are
     * possible). Nothing is backed until touched.
     * @return the base virtual address.
     */
    Addr mmap(std::uint64_t bytes);

    /** Unmap a region and free all its backing memory. */
    void munmap(Addr base);

    /**
     * Fault-in every page of [addr, addr+bytes) within a region.
     * Aligned 2 MB chunks try a THP allocation first when the kernel
     * has THP enabled; failures fall back to 4 KB pages.
     * @return number of 4 KB pages newly backed.
     */
    std::uint64_t touchRange(Addr addr, std::uint64_t bytes);

    /**
     * Try to back [addr, addr+1GB) with one gigantic page (HugeTLB
     * dynamic allocation path). The range must be untouched.
     * @return true on success.
     */
    bool backWithGigantic(Addr addr);

    /** Release backing of random mapped chunks totalling roughly the
     * given number of pages (workload churn). Returns pages freed. */
    std::uint64_t releasePages(std::uint64_t pages, Rng &rng);

    /** Like releasePages but restricted to [base, base+bytes): punch
     * random holes into one heap segment. */
    std::uint64_t releaseRange(Addr base, std::uint64_t bytes,
                               std::uint64_t pages, Rng &rng);

    /**
     * khugepaged analogue: collapse up to `budget` fully-4K-backed
     * aligned 2 MB ranges into huge mappings. Each collapse
     * allocates a fresh huge page, migrates the 512 base pages into
     * it and installs a PMD leaf. Pinned pages block a collapse.
     * @return ranges promoted.
     */
    std::uint64_t promoteHugeRanges(std::uint64_t budget);

    /** Translate a virtual address. */
    Translation translate(Addr vaddr) const;

    /** PageOwnerClient: repoint vpn (tag) to a new frame. */
    bool relocate(std::uint64_t tag, Pfn old_head,
                  Pfn new_head) override;

    PageTables &pageTables() { return tables_; }
    const PageTables &pageTables() const { return tables_; }

    /** @{ Backing-page statistics by mapping size. */
    std::uint64_t pages4k() const { return pages4k_; }
    std::uint64_t chunks2m() const { return chunks2m_; }
    std::uint64_t chunks1g() const { return chunks1g_; }
    /** Total backed 4 KB page equivalents. */
    std::uint64_t backedPages() const;
    /** @} */

    std::uint32_t pid() const { return pid_; }

    /** Pick a random mapped 4 KB-backed frame (for pinning tests);
     * invalidPfn if none. */
    Pfn randomBacked4kFrame(Rng &rng) const;

    /** Serialize the full address-space state (checkpoint). */
    void saveTo(serde::Writer &out) const;

  private:
    struct Region
    {
        Vpn baseVpn;
        std::uint64_t pages;
    };

    /** Back one aligned chunk with a fresh allocation. */
    bool backChunk(Vpn vpn, unsigned order);

    void unbackChunk(Vpn vpn, unsigned order);

    Kernel &kernel_;
    std::uint32_t pid_;
    std::uint16_t clientId_;
    PageTables tables_;
    std::map<Vpn, Region> regions_;
    /** Mapped chunk heads: vpn -> order (0, 9 or 18). */
    ChunkTable chunks_;
    /** 4 KB mappings per 2 MB-aligned range, so the THP fault path
     * can tell whether a huge mapping would collide. Ordered so the
     * khugepaged candidate walk is independent of hash layout. */
    std::map<Vpn, std::uint32_t> hugeRangeUse_;
    Vpn nextBaseVpn_ = Vpn{1} << gigaOrder; // skip the zero GB
    std::uint64_t pages4k_ = 0;
    std::uint64_t chunks2m_ = 0;
    std::uint64_t chunks1g_ = 0;
};

} // namespace ctg

#endif // CTG_KERNEL_ADDRSPACE_HH
