#include "kernel/churn.hh"

#include <algorithm>
#include <cmath>

namespace ctg
{

ChurnPool::ChurnPool(Kernel &kernel, Config config, std::uint64_t seed)
    : kernel_(kernel), config_(std::move(config)), rng_(seed)
{
    ctg_assert(config_.ratePerSec > 0);
    ctg_assert(!config_.orderDist.empty());
    // Lognormal modulation inflates the mean arrival rate by
    // exp(sigma^2/2); normalize so configured rates stay the mean.
    if (config_.burstSigma > 0.0) {
        config_.ratePerSec /=
            std::exp(config_.burstSigma * config_.burstSigma / 2.0);
    }
    for (const auto &[order, weight] : config_.orderDist) {
        ctg_assert(order <= maxOrder);
        orderWeightTotal_ += weight;
    }
    if (config_.relocatable)
        clientId_ = kernel_.owners().registerClient(this);
    nextArrival_ = rng_.exponential(1.0 / config_.ratePerSec);
}

ChurnPool::~ChurnPool()
{
    drain();
    if (clientId_ != 0)
        kernel_.owners().unregisterClient(clientId_);
}

unsigned
ChurnPool::sampleOrder()
{
    double pick = rng_.uniform() * orderWeightTotal_;
    for (const auto &[order, weight] : config_.orderDist) {
        if (pick < weight)
            return order;
        pick -= weight;
    }
    return config_.orderDist.back().first;
}

std::uint32_t
ChurnPool::acquireSlot()
{
    if (!freeSlots_.empty()) {
        const std::uint32_t slot = freeSlots_.back();
        freeSlots_.pop_back();
        return slot;
    }
    slots_.emplace_back();
    return static_cast<std::uint32_t>(slots_.size() - 1);
}

bool
ChurnPool::relocate(std::uint64_t tag, Pfn old_head, Pfn new_head)
{
    const auto slot = static_cast<std::size_t>(tag);
    if (slot >= slots_.size() || slots_[slot].head != old_head)
        return false;
    slots_[slot].head = new_head;
    return true;
}

void
ChurnPool::advanceTo(double now_sec)
{
    ctg_assert(now_sec >= nowSec_);

    while (true) {
        // Interleave deaths and arrivals in time order so the live
        // set stays faithful to the queueing process.
        const double next_death =
            live_.empty() ? 1e300 : live_.top().death;
        const double next_arrival =
            paused_ ? 1e300 : nextArrival_;
        const double next_event =
            std::min(next_death, next_arrival);
        if (next_event > now_sec)
            break;

        // Resample the burst factor when its period elapses.
        if (config_.burstSigma > 0.0 &&
            next_event >= nextBurstChange_) {
            burstFactor_ = std::exp(
                rng_.gaussian(0.0, config_.burstSigma));
            burstFactor_ = std::clamp(burstFactor_, 0.1, 6.0);
            nextBurstChange_ =
                next_event +
                rng_.exponential(config_.burstPeriodSec);
        }

        if (next_death <= next_arrival) {
            const std::uint32_t slot = live_.top().slot;
            live_.pop();
            Slot &record = slots_[slot];
            ctg_assert(record.head != invalidPfn);
            kernel_.freePages(record.head);
            livePages_ -= Pfn{1} << record.order;
            record.head = invalidPfn;
            freeSlots_.push_back(slot);
        } else {
            const unsigned order = sampleOrder();
            AllocRequest req;
            req.order = order;
            req.mt = config_.mt;
            req.source = config_.source;
            req.lifetime = config_.lifetime;
            const std::uint32_t slot = acquireSlot();
            if (clientId_ != 0) {
                req.owner =
                    OwnerRegistry::makeOwner(clientId_, slot);
            }
            const Pfn head = kernel_.allocPages(req);
            if (head == invalidPfn) {
                ++failedAllocs_;
                freeSlots_.push_back(slot);
            } else {
                if (clientId_ != 0) {
                    // IO buffers are busy for DMA: software cannot
                    // block access to migrate them (the pinned
                    // marker); only Contiguitas-HW moves them.
                    kernel_.mem().setRangePinned(
                        head, head + (Pfn{1} << order), true);
                }
                const bool long_lived =
                    rng_.chance(config_.longLivedFrac);
                const double life = rng_.exponential(
                    long_lived ? config_.longMeanLifeSec
                               : config_.meanLifeSec);
                slots_[slot] = Slot{head, order};
                live_.push(Obj{nextArrival_ + life, slot});
                livePages_ += Pfn{1} << order;
            }
            nextArrival_ += rng_.exponential(
                1.0 / (config_.ratePerSec * burstFactor_));
        }
    }
    nowSec_ = now_sec;
}

void
ChurnPool::drain()
{
    while (!live_.empty()) {
        const std::uint32_t slot = live_.top().slot;
        live_.pop();
        Slot &record = slots_[slot];
        if (record.head != invalidPfn) {
            kernel_.freePages(record.head);
            record.head = invalidPfn;
            freeSlots_.push_back(slot);
        }
    }
    livePages_ = 0;
}

} // namespace ctg
