#include "kernel/churn.hh"

#include <algorithm>
#include <cmath>

#include "base/serde.hh"

namespace ctg
{

namespace
{

/** Shared config normalization of both constructors. */
double
normalizeConfig(ChurnPool::Config &config)
{
    ctg_assert(config.ratePerSec > 0);
    ctg_assert(!config.orderDist.empty());
    // Lognormal modulation inflates the mean arrival rate by
    // exp(sigma^2/2); normalize so configured rates stay the mean.
    if (config.burstSigma > 0.0) {
        config.ratePerSec /=
            std::exp(config.burstSigma * config.burstSigma / 2.0);
    }
    double weight_total = 0.0;
    for (const auto &[order, weight] : config.orderDist) {
        ctg_assert(order <= maxOrder);
        weight_total += weight;
    }
    return weight_total;
}

} // namespace

ChurnPool::ChurnPool(Kernel &kernel, Config config, std::uint64_t seed)
    : kernel_(kernel), config_(std::move(config)), rng_(seed)
{
    orderWeightTotal_ = normalizeConfig(config_);
    if (config_.relocatable)
        clientId_ = kernel_.owners().registerClient(this);
    nextArrival_ = rng_.exponential(1.0 / config_.ratePerSec);
}

ChurnPool::ChurnPool(Kernel &kernel, Config config, serde::Reader &in)
    : kernel_(kernel), config_(std::move(config))
{
    orderWeightTotal_ = normalizeConfig(config_);

    clientId_ = in.getU16();
    if (config_.relocatable != (clientId_ != 0))
        throw serde::Error("churn pool: relocatable/client mismatch");
    if (clientId_ != 0)
        kernel_.owners().attachClientAt(clientId_, this);

    rng_.setRawState(in.getRngState());
    nowSec_ = in.getDouble();
    nextArrival_ = in.getDouble();
    burstFactor_ = in.getDouble();
    nextBurstChange_ = in.getDouble();

    const std::uint64_t frames = kernel_.mem().numFrames();
    const std::uint64_t slot_count = in.getU64();
    if (slot_count > frames)
        throw serde::Error("churn pool: slot count exceeds memory");
    slots_.reserve(slot_count);
    std::uint64_t live_pages = 0;
    for (std::uint64_t i = 0; i < slot_count; ++i) {
        Slot slot;
        slot.head = in.getU64();
        slot.order = in.getU32();
        if (slot.order > maxOrder ||
            (slot.head != invalidPfn && slot.head >= frames))
            throw serde::Error("churn pool: bad slot");
        if (slot.head != invalidPfn)
            live_pages += Pfn{1} << slot.order;
        slots_.push_back(slot);
    }

    freeSlots_ = in.getPodVector<std::uint32_t>();
    for (const std::uint32_t slot : freeSlots_) {
        if (slot >= slots_.size() ||
            slots_[slot].head != invalidPfn)
            throw serde::Error("churn pool: bad free-slot entry");
    }

    // The live heap is restored verbatim (the pop order of
    // equal-death entries is observable state); entries must tile the
    // occupied slots exactly.
    const std::uint64_t live_count = in.getU64();
    if (live_count != slots_.size() - freeSlots_.size())
        throw serde::Error("churn pool: live count mismatch");
    std::vector<Obj> &heap = serde::heapOf(live_);
    heap.reserve(live_count);
    for (std::uint64_t i = 0; i < live_count; ++i) {
        Obj obj;
        obj.death = in.getDouble();
        obj.slot = in.getU32();
        if (obj.slot >= slots_.size() ||
            slots_[obj.slot].head == invalidPfn)
            throw serde::Error("churn pool: bad live entry");
        heap.push_back(obj);
    }
    if (!std::is_heap(heap.begin(), heap.end(), std::greater<>()))
        throw serde::Error("churn pool: live heap order violated");

    livePages_ = in.getU64();
    if (livePages_ != live_pages)
        throw serde::Error("churn pool: live-page count mismatch");
    failedAllocs_ = in.getU64();
    paused_ = in.getBool();
}

void
ChurnPool::saveTo(serde::Writer &out) const
{
    out.putU16(clientId_);
    out.putRngState(rng_.rawState());
    out.putDouble(nowSec_);
    out.putDouble(nextArrival_);
    out.putDouble(burstFactor_);
    out.putDouble(nextBurstChange_);
    out.putU64(slots_.size());
    for (const Slot &slot : slots_) {
        out.putU64(slot.head);
        out.putU32(slot.order);
    }
    out.putPodVector(freeSlots_);
    const std::vector<Obj> &heap = serde::heapOf(live_);
    out.putU64(heap.size());
    for (const Obj &obj : heap) {
        out.putDouble(obj.death);
        out.putU32(obj.slot);
    }
    out.putU64(livePages_);
    out.putU64(failedAllocs_);
    out.putBool(paused_);
}

ChurnPool::~ChurnPool()
{
    drain();
    if (clientId_ != 0)
        kernel_.owners().unregisterClient(clientId_);
}

unsigned
ChurnPool::sampleOrder()
{
    double pick = rng_.uniform() * orderWeightTotal_;
    for (const auto &[order, weight] : config_.orderDist) {
        if (pick < weight)
            return order;
        pick -= weight;
    }
    return config_.orderDist.back().first;
}

std::uint32_t
ChurnPool::acquireSlot()
{
    if (!freeSlots_.empty()) {
        const std::uint32_t slot = freeSlots_.back();
        freeSlots_.pop_back();
        return slot;
    }
    slots_.emplace_back();
    return static_cast<std::uint32_t>(slots_.size() - 1);
}

bool
ChurnPool::relocate(std::uint64_t tag, Pfn old_head, Pfn new_head)
{
    const auto slot = static_cast<std::size_t>(tag);
    if (slot >= slots_.size() || slots_[slot].head != old_head)
        return false;
    slots_[slot].head = new_head;
    return true;
}

void
ChurnPool::advanceTo(double now_sec)
{
    ctg_assert(now_sec >= nowSec_);

    while (true) {
        // Interleave deaths and arrivals in time order so the live
        // set stays faithful to the queueing process.
        const double next_death =
            live_.empty() ? 1e300 : live_.top().death;
        const double next_arrival =
            paused_ ? 1e300 : nextArrival_;
        const double next_event =
            std::min(next_death, next_arrival);
        if (next_event > now_sec)
            break;

        // Resample the burst factor when its period elapses.
        if (config_.burstSigma > 0.0 &&
            next_event >= nextBurstChange_) {
            burstFactor_ = std::exp(
                rng_.gaussian(0.0, config_.burstSigma));
            burstFactor_ = std::clamp(burstFactor_, 0.1, 6.0);
            nextBurstChange_ =
                next_event +
                rng_.exponential(config_.burstPeriodSec);
        }

        if (next_death <= next_arrival) {
            const std::uint32_t slot = live_.top().slot;
            live_.pop();
            Slot &record = slots_[slot];
            ctg_assert(record.head != invalidPfn);
            kernel_.freePages(record.head);
            livePages_ -= Pfn{1} << record.order;
            record.head = invalidPfn;
            freeSlots_.push_back(slot);
        } else {
            const unsigned order = sampleOrder();
            AllocRequest req;
            req.order = order;
            req.mt = config_.mt;
            req.source = config_.source;
            req.lifetime = config_.lifetime;
            const std::uint32_t slot = acquireSlot();
            if (clientId_ != 0) {
                req.owner =
                    OwnerRegistry::makeOwner(clientId_, slot);
            }
            const Pfn head = kernel_.allocPages(req);
            if (head == invalidPfn) {
                ++failedAllocs_;
                freeSlots_.push_back(slot);
            } else {
                if (clientId_ != 0) {
                    // IO buffers are busy for DMA: software cannot
                    // block access to migrate them (the pinned
                    // marker); only Contiguitas-HW moves them.
                    kernel_.mem().setRangePinned(
                        head, head + (Pfn{1} << order), true);
                }
                const bool long_lived =
                    rng_.chance(config_.longLivedFrac);
                const double life = rng_.exponential(
                    long_lived ? config_.longMeanLifeSec
                               : config_.meanLifeSec);
                slots_[slot] = Slot{head, order};
                live_.push(Obj{nextArrival_ + life, slot});
                livePages_ += Pfn{1} << order;
            }
            nextArrival_ += rng_.exponential(
                1.0 / (config_.ratePerSec * burstFactor_));
        }
    }
    nowSec_ = now_sec;
}

void
ChurnPool::drain()
{
    while (!live_.empty()) {
        const std::uint32_t slot = live_.top().slot;
        live_.pop();
        Slot &record = slots_[slot];
        if (record.head != invalidPfn) {
            kernel_.freePages(record.head);
            record.head = invalidPfn;
            freeSlots_.push_back(slot);
        }
    }
    livePages_ = 0;
}

} // namespace ctg
