/**
 * @file
 * Stochastic allocate/free churn pool.
 *
 * Kernel subsystems (networking skbs, filesystem buffers, driver
 * scratch memory) allocate short-lived page blocks at high rates.
 * ChurnPool models one such stream: Poisson arrivals modulated by
 * lognormal bursts, a block-order distribution, and a two-class
 * exponential lifetime mix (most objects die quickly; a heavy tail
 * survives for a long time — the tail is what pins pageblocks). The
 * steady-state live footprint is rate x mean-lifetime.
 *
 * I/O pools (relocatable = true) register as page owners: their
 * pages are reached through IOMMU/device translations that
 * Contiguitas-HW can repoint, so hardware migration may move them.
 * Linear-map pools (slab, misc kernel structures) stay unowned —
 * nothing can move those, exactly as the paper says.
 */

#ifndef CTG_KERNEL_CHURN_HH
#define CTG_KERNEL_CHURN_HH

#include <queue>
#include <vector>

#include "base/rng.hh"
#include "base/types.hh"
#include "kernel/kernel.hh"

namespace ctg
{

namespace serde
{
class Writer;
class Reader;
} // namespace serde

/**
 * Poisson-arrival page-block churn with heavy-tailed lifetimes.
 */
class ChurnPool : public PageOwnerClient
{
  public:
    struct Config
    {
        /** Block arrivals per simulated second. */
        double ratePerSec = 1000.0;
        /** Mean lifetime of the fast-dying class (seconds). */
        double meanLifeSec = 0.05;
        /** Fraction of arrivals in the long-lived class. */
        double longLivedFrac = 0.05;
        /** Mean lifetime of the long-lived class (seconds). */
        double longMeanLifeSec = 120.0;
        /** Block-order distribution: (order, weight) pairs. */
        std::vector<std::pair<unsigned, double>> orderDist =
            {{0, 1.0}};
        MigrateType mt = MigrateType::Unmovable;
        AllocSource source = AllocSource::Other;
        Lifetime lifetime = Lifetime::Short;
        /** Traffic burstiness: the arrival rate is modulated by a
         * lognormal factor resampled every burstPeriodSec. Bursts
         * are what force a subsystem past its pageblock stock and
         * into fallback steals. 0 disables modulation. */
        double burstSigma = 1.0;
        double burstPeriodSec = 1.5;
        /** True for pools whose pages are reached through
         * repointable translations (IOMMU/device TLBs): they
         * register as page owners so Contiguitas-HW can move their
         * pages. False for linear-map pools. */
        bool relocatable = false;
    };

    ChurnPool(Kernel &kernel, Config config, std::uint64_t seed);

    /** Checkpoint restore: adopt the serialized slot table, live
     * heap, RNG and clock state. `config` must equal the config of
     * the checkpointed pool (it is workload-derived, not
     * serialized). Relocatable pools re-attach at their serialized
     * owner-client id. */
    ChurnPool(Kernel &kernel, Config config, serde::Reader &in);

    ~ChurnPool() override;

    ChurnPool(const ChurnPool &) = delete;
    ChurnPool &operator=(const ChurnPool &) = delete;

    /** Advance wall-clock: retire deaths, spawn arrivals. */
    void advanceTo(double now_sec);

    /** Live 4 KB pages held by the pool. */
    std::uint64_t livePages() const { return livePages_; }

    /** Free everything immediately. */
    void drain();

    /** Stop new arrivals; existing objects keep dying off on their
     * own schedule (traffic wind-down). */
    void pause() { paused_ = true; }

    /** Allocations that failed even after reclaim. */
    std::uint64_t failedAllocs() const { return failedAllocs_; }

    /** PageOwnerClient: repoint our record when hardware migrates
     * one of our buffers. */
    bool relocate(std::uint64_t tag, Pfn old_head,
                  Pfn new_head) override;

    /** Serialize the full pool state (checkpoint). */
    void saveTo(serde::Writer &out) const;

  private:
    struct Slot
    {
        Pfn head = invalidPfn;
        unsigned order = 0;
    };

    struct Obj
    {
        double death;
        std::uint32_t slot;

        bool operator>(const Obj &o) const { return death > o.death; }
    };

    unsigned sampleOrder();
    std::uint32_t acquireSlot();

    Kernel &kernel_;
    Config config_;
    Rng rng_;
    std::uint16_t clientId_ = 0;
    double nowSec_ = 0.0;
    double nextArrival_ = 0.0;
    double burstFactor_ = 1.0;
    double nextBurstChange_ = 0.0;
    std::vector<Slot> slots_;
    std::vector<std::uint32_t> freeSlots_;
    std::priority_queue<Obj, std::vector<Obj>, std::greater<>> live_;
    std::uint64_t livePages_ = 0;
    std::uint64_t failedAllocs_ = 0;
    bool paused_ = false;
    double orderWeightTotal_ = 0.0;
};

} // namespace ctg

#endif // CTG_KERNEL_CHURN_HH
