#include "kernel/compaction.hh"

#include "base/span_trace.hh"
#include "base/trace.hh"
#include "kernel/migrate.hh"
#include "mem/contig_index.hh"

namespace ctg
{

namespace
{

/** Whether a block of free pages of target order exists already. */
bool
haveTargetBlock(const BuddyAllocator &alloc, unsigned target_order)
{
    return alloc.largestFreeOrder() >= static_cast<int>(target_order);
}

/**
 * Evacuate the movable allocations of one mixed pageblock into
 * high-address free space (the free scanner analogue). Shared by the
 * reference and index passes so the per-block behaviour is identical
 * by construction.
 */
void
evacuatePageblock(BuddyAllocator &alloc, const OwnerRegistry &registry,
                  Pfn block, CompactionResult &result,
                  std::uint64_t max_migrations)
{
    PhysMem &mem = alloc.mem();
    for (Pfn pfn = block; pfn < block + pagesPerHuge;) {
        const auto f = mem.frame(pfn);
        const Pfn step = f.isHead() ? (Pfn{1} << f.order()) : 1;
        if (f.isFree() || !f.isHead() ||
            f.isUnmovableAllocation() ||
            f.migrateType() != MigrateType::Movable) {
            if (!f.isFree() && f.isHead() &&
                f.isUnmovableAllocation()) {
                ++result.skippedUnmovable;
            }
            pfn += step;
            continue;
        }
        if (result.migrated >= max_migrations)
            break;
        Pfn dst = invalidPfn;
        const MigrateResult mr = migrateBlock(
            alloc, alloc, registry, pfn, AddrPref::High,
            MigrateType::Movable, &dst);
        switch (mr) {
          case MigrateResult::Ok:
            ++result.migrated;
            break;
          case MigrateResult::NoMemory:
            ++result.failedNoMem;
            break;
          case MigrateResult::Unmovable:
            ++result.skippedUnmovable;
            break;
        }
        pfn += step;
    }
}

/**
 * Reference pass: walk every pageblock, classify it by touching all
 * of its frames, evacuate the mixed ones. Kept as the ground truth
 * the index pass must match bit for bit.
 */
CompactionResult
compactRangeReference(BuddyAllocator &alloc,
                      const OwnerRegistry &registry, Pfn lo, Pfn hi,
                      std::uint64_t max_migrations)
{
    CompactionResult result;
    PhysMem &mem = alloc.mem();

    // Migrate scanner: walk pageblocks bottom-up. Only mixed
    // pageblocks (some free, some allocated-movable) are worth
    // evacuating; fully-allocated blocks would just shuffle memory.
    for (Pfn block = lo; block + pagesPerHuge <= hi;
         block += pagesPerHuge) {
        if (result.migrated >= max_migrations)
            break;

        bool has_free = false;
        bool has_unmovable = false;
        bool has_movable_alloc = false;
        for (Pfn pfn = block; pfn < block + pagesPerHuge; ++pfn) {
            const auto f = mem.frame(pfn);
            if (f.isFree())
                has_free = true;
            else if (f.isUnmovableAllocation())
                has_unmovable = true;
            else
                has_movable_alloc = true;
        }
        if (has_unmovable)
            ++result.blockedPageblocks;
        if (!has_free || !has_movable_alloc)
            continue;

        evacuatePageblock(alloc, registry, block, result,
                          max_migrations);
    }
    return result;
}

/**
 * Index pass: jump straight between mixed pageblocks via
 * ContigIndex::firstMixedBlock and count the taint of the skipped gap
 * in bulk. The enumeration order and every counter match the
 * reference walk exactly: gaps contain no migrations, so state when
 * a block's taint is counted is the state the reference would see,
 * and re-querying after each evacuation observes destination blocks
 * the evacuation itself may have made mixed — just as the linear
 * scanner encounters them (DESIGN.md §12).
 */
CompactionResult
compactRangeIndexed(BuddyAllocator &alloc,
                    const OwnerRegistry &registry, Pfn lo, Pfn hi,
                    std::uint64_t max_migrations)
{
    CompactionResult result;
    const ContigIndex &idx = alloc.mem().contigIndex();
    // Blocks considered by the reference: base + pagesPerHuge <= hi.
    const Pfn end =
        lo + ((hi - lo) / pagesPerHuge) * pagesPerHuge;

    Pfn block = lo;
    while (block < end) {
        if (result.migrated >= max_migrations)
            break;
        const Pfn next = idx.firstMixedBlock(block, end);
        const Pfn gap_end = next == invalidPfn ? end : next;
        // The reference classifies each non-mixed gap block only to
        // count its taint; nothing mutates across the gap, so a bulk
        // range count is identical.
        result.blockedPageblocks +=
            idx.taintedBlocksIn(block, gap_end, hugeOrder);
        if (next == invalidPfn)
            break;
        if (idx.blockClass(next).unmovable > 0)
            ++result.blockedPageblocks;
        evacuatePageblock(alloc, registry, next, result,
                          max_migrations);
        block = next + pagesPerHuge;
    }
    return result;
}

} // namespace

CompactionResult
compactRange(BuddyAllocator &alloc, const OwnerRegistry &registry,
             Pfn lo, Pfn hi, std::uint64_t max_migrations)
{
    PhysMem &mem = alloc.mem();
    const bool indexed =
        mem.contigIndexReads() && lo % pagesPerHuge == 0;
    CTG_SPAN_NAMED(span, Compaction, "compact.range",
                   {{"lo", static_cast<std::int64_t>(lo)},
                    {"hi", static_cast<std::int64_t>(hi)},
                    {"indexed", indexed ? 1 : 0}});
    const CompactionResult result =
        indexed ? compactRangeIndexed(alloc, registry, lo, hi,
                                      max_migrations)
                : compactRangeReference(alloc, registry, lo, hi,
                                        max_migrations);
    span.arg("migrated", static_cast<std::int64_t>(result.migrated));
    span.arg("blocked", static_cast<std::int64_t>(
                            result.blockedPageblocks));
    CTG_DPRINTF(Compaction,
                "range [%llu, %llu): migrated=%llu nomem=%llu "
                "skipped=%llu blocked_pageblocks=%llu",
                static_cast<unsigned long long>(lo),
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(result.migrated),
                static_cast<unsigned long long>(result.failedNoMem),
                static_cast<unsigned long long>(result.skippedUnmovable),
                static_cast<unsigned long long>(
                    result.blockedPageblocks));
    return result;
}

CompactionResult
compactUntil(BuddyAllocator &alloc, const OwnerRegistry &registry,
             unsigned target_order, std::uint64_t max_migrations)
{
    CompactionResult total;
    if (haveTargetBlock(alloc, target_order)) {
        total.targetReached = true;
        return total;
    }

    CTG_SPAN_NAMED(span, Compaction, "compact.until",
                   {{"target_order", target_order},
                    {"budget",
                     static_cast<std::int64_t>(max_migrations)}});

    PhysMem &mem = alloc.mem();
    // Run bounded passes; each pass re-walks because freed space
    // changes which pageblocks are mixed.
    std::uint64_t budget = max_migrations;
    for (int pass = 0; pass < 4 && budget > 0; ++pass) {
        const Pfn lo = alloc.startPfn();
        const Pfn hi = alloc.endPfn();
        if (mem.contigIndexReads() && lo % pagesPerHuge == 0) {
            // Index early-exit: no mixed pageblock means a pass
            // cannot migrate anything — it would only recount the
            // blocked snapshot, fail to reach the target, and stop.
            // Reproduce exactly that (including the pass trace line)
            // without walking.
            const Pfn end =
                lo + ((hi - lo) / pagesPerHuge) * pagesPerHuge;
            const ContigIndex &idx = mem.contigIndex();
            if (idx.mixedBlocksIn(lo, end) == 0) {
                total.blockedPageblocks =
                    idx.taintedBlocksIn(lo, end, hugeOrder);
                CTG_DPRINTF(Compaction,
                            "range [%llu, %llu): migrated=0 nomem=0 "
                            "skipped=0 blocked_pageblocks=%llu",
                            static_cast<unsigned long long>(lo),
                            static_cast<unsigned long long>(hi),
                            static_cast<unsigned long long>(
                                total.blockedPageblocks));
                if (haveTargetBlock(alloc, target_order))
                    total.targetReached = true;
                break;
            }
        }
        CompactionResult r = compactRange(alloc, registry, lo, hi,
                                          budget);
        total.migrated += r.migrated;
        total.failedNoMem += r.failedNoMem;
        total.skippedUnmovable += r.skippedUnmovable;
        // Deliberately a final-pass *snapshot*, not a sum: passes
        // revisit the same pageblocks, so accumulating would count
        // each blocked pageblock once per pass. The last pass's
        // count is the current number of blocked pageblocks in the
        // zone (asserted by CompactUntilBlockedPageblocksIsSnapshot).
        total.blockedPageblocks = r.blockedPageblocks;
        budget -= std::min(budget, r.migrated);
        if (haveTargetBlock(alloc, target_order)) {
            total.targetReached = true;
            break;
        }
        if (r.migrated == 0)
            break;
    }
    CTG_DPRINTF(Compaction,
                "compactUntil order-%u: migrated=%llu reached=%d",
                target_order,
                static_cast<unsigned long long>(total.migrated),
                int(total.targetReached));
    span.arg("migrated", static_cast<std::int64_t>(total.migrated));
    span.arg("reached", total.targetReached ? 1 : 0);
    return total;
}

} // namespace ctg
