#include "kernel/compaction.hh"

#include "base/trace.hh"
#include "kernel/migrate.hh"

namespace ctg
{

namespace
{

/** Whether a block of free pages of target order exists already. */
bool
haveTargetBlock(const BuddyAllocator &alloc, unsigned target_order)
{
    return alloc.largestFreeOrder() >= static_cast<int>(target_order);
}

} // namespace

CompactionResult
compactRange(BuddyAllocator &alloc, const OwnerRegistry &registry,
             Pfn lo, Pfn hi, std::uint64_t max_migrations)
{
    CompactionResult result;
    PhysMem &mem = alloc.mem();

    // Migrate scanner: walk pageblocks bottom-up. Only mixed
    // pageblocks (some free, some allocated-movable) are worth
    // evacuating; fully-allocated blocks would just shuffle memory.
    for (Pfn block = lo; block + pagesPerHuge <= hi;
         block += pagesPerHuge) {
        if (result.migrated >= max_migrations)
            break;

        bool has_free = false;
        bool has_unmovable = false;
        bool has_movable_alloc = false;
        for (Pfn pfn = block; pfn < block + pagesPerHuge; ++pfn) {
            const PageFrame &f = mem.frame(pfn);
            if (f.isFree())
                has_free = true;
            else if (f.isUnmovableAllocation())
                has_unmovable = true;
            else
                has_movable_alloc = true;
        }
        if (has_unmovable)
            ++result.blockedPageblocks;
        if (!has_free || !has_movable_alloc)
            continue;

        // Evacuate the movable allocations of this pageblock into
        // high-address free space (the free scanner analogue).
        for (Pfn pfn = block; pfn < block + pagesPerHuge;) {
            const PageFrame &f = mem.frame(pfn);
            const Pfn step = f.isHead() ? (Pfn{1} << f.order) : 1;
            if (f.isFree() || !f.isHead() ||
                f.isUnmovableAllocation() ||
                f.migrateType != MigrateType::Movable) {
                if (!f.isFree() && f.isHead() &&
                    f.isUnmovableAllocation()) {
                    ++result.skippedUnmovable;
                }
                pfn += step;
                continue;
            }
            if (result.migrated >= max_migrations)
                break;
            Pfn dst = invalidPfn;
            const MigrateResult mr = migrateBlock(
                alloc, alloc, registry, pfn, AddrPref::High,
                MigrateType::Movable, &dst);
            switch (mr) {
              case MigrateResult::Ok:
                ++result.migrated;
                break;
              case MigrateResult::NoMemory:
                ++result.failedNoMem;
                break;
              case MigrateResult::Unmovable:
                ++result.skippedUnmovable;
                break;
            }
            pfn += step;
        }
    }
    CTG_DPRINTF(Compaction,
                "range [%llu, %llu): migrated=%llu nomem=%llu "
                "skipped=%llu blocked_pageblocks=%llu",
                static_cast<unsigned long long>(lo),
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(result.migrated),
                static_cast<unsigned long long>(result.failedNoMem),
                static_cast<unsigned long long>(result.skippedUnmovable),
                static_cast<unsigned long long>(
                    result.blockedPageblocks));
    return result;
}

CompactionResult
compactUntil(BuddyAllocator &alloc, const OwnerRegistry &registry,
             unsigned target_order, std::uint64_t max_migrations)
{
    CompactionResult total;
    if (haveTargetBlock(alloc, target_order)) {
        total.targetReached = true;
        return total;
    }

    // Run bounded passes; each pass re-walks because freed space
    // changes which pageblocks are mixed.
    std::uint64_t budget = max_migrations;
    for (int pass = 0; pass < 4 && budget > 0; ++pass) {
        CompactionResult r = compactRange(alloc, registry,
                                          alloc.startPfn(),
                                          alloc.endPfn(), budget);
        total.migrated += r.migrated;
        total.failedNoMem += r.failedNoMem;
        total.skippedUnmovable += r.skippedUnmovable;
        total.blockedPageblocks = r.blockedPageblocks;
        budget -= std::min(budget, r.migrated);
        if (haveTargetBlock(alloc, target_order)) {
            total.targetReached = true;
            break;
        }
        if (r.migrated == 0)
            break;
    }
    CTG_DPRINTF(Compaction,
                "compactUntil order-%u: migrated=%llu reached=%d",
                target_order,
                static_cast<unsigned long long>(total.migrated),
                int(total.targetReached));
    return total;
}

} // namespace ctg
