/**
 * @file
 * Memory compaction (defragmentation).
 *
 * Modeled after Linux's compaction: a migrate scanner walks
 * pageblocks from the bottom of the range and relocates movable
 * allocations into free space preferentially at the top, merging the
 * freed space into larger blocks. Pageblocks containing unmovable
 * pages can never become fully free — exactly the limitation that
 * motivates Contiguitas (Section 1).
 */

#ifndef CTG_KERNEL_COMPACTION_HH
#define CTG_KERNEL_COMPACTION_HH

#include <cstdint>

#include "base/types.hh"
#include "kernel/owner.hh"
#include "mem/buddy.hh"

namespace ctg
{

/** Result counters of one compaction run. */
struct CompactionResult
{
    std::uint64_t migrated = 0;        //!< blocks relocated
    std::uint64_t failedNoMem = 0;     //!< no destination available
    std::uint64_t skippedUnmovable = 0; //!< blocks pinned/unowned
    std::uint64_t blockedPageblocks = 0; //!< pageblocks with unmovable
    bool targetReached = false;
};

/**
 * Compact the allocator's coverage until a free block of at least
 * target_order exists or the work budget runs out.
 *
 * @param alloc allocator whose range is compacted
 * @param registry owner registry for mapping updates
 * @param target_order stop once freeBlocks(>= target_order) > 0
 * @param max_migrations work budget
 */
CompactionResult compactUntil(BuddyAllocator &alloc,
                              const OwnerRegistry &registry,
                              unsigned target_order,
                              std::uint64_t max_migrations);

/**
 * One full bottom-to-top compaction pass over [lo, hi) regardless of
 * any target (used by the proactive compaction daemon analogue).
 */
CompactionResult compactRange(BuddyAllocator &alloc,
                              const OwnerRegistry &registry, Pfn lo,
                              Pfn hi, std::uint64_t max_migrations);

} // namespace ctg

#endif // CTG_KERNEL_COMPACTION_HH
