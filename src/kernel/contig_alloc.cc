#include "kernel/contig_alloc.hh"

#include "kernel/migrate.hh"
#include "mem/contig_index.hh"

namespace ctg
{

namespace
{

/**
 * Does the window contain anything software cannot move?
 * Reference form: classify every frame.
 */
bool
windowBlockedReference(const PhysMem &mem, Pfn lo, Pfn hi,
                       const OwnerRegistry &registry)
{
    for (Pfn pfn = lo; pfn < hi; ++pfn) {
        const auto f = mem.frame(pfn);
        if (f.isFree())
            continue;
        if (f.isUnmovableAllocation())
            return true;
        if (f.isHead() && !registry.relocatable(f.owner()))
            return true;
    }
    return false;
}

/**
 * Index form: one subtree query answers the unmovable half; only the
 * allocated heads (reached by index jumps over the free space) need
 * an owner lookup. Same boolean as the reference — the predicate is
 * an existence test, so enumeration shortcuts cannot change it.
 */
bool
windowBlockedIndexed(const PhysMem &mem, Pfn lo, Pfn hi,
                     const OwnerRegistry &registry)
{
    const ContigIndex &idx = mem.contigIndex();
    if (idx.unmovablePagesIn(lo, hi) > 0)
        return true;
    for (Pfn pfn = idx.firstAllocatedFrame(lo, hi);
         pfn != invalidPfn;) {
        const auto f = mem.frame(pfn);
        Pfn next;
        if (f.isHead()) {
            if (!registry.relocatable(f.owner()))
                return true;
            next = pfn + (Pfn{1} << f.order());
        } else {
            next = pfn + 1;
        }
        pfn = next >= hi ? invalidPfn
                         : idx.firstAllocatedFrame(next, hi);
    }
    return false;
}

bool
windowBlocked(const PhysMem &mem, Pfn lo, Pfn hi,
              const OwnerRegistry &registry)
{
    if (mem.contigIndexReads())
        return windowBlockedIndexed(mem, lo, hi, registry);
    return windowBlockedReference(mem, lo, hi, registry);
}

} // namespace

Pfn
allocContigRange(BuddyAllocator &alloc, const OwnerRegistry &registry,
                 unsigned order, MigrateType mt, AllocSource src,
                 std::uint64_t owner, ContigAllocStats *stats)
{
    ContigAllocStats local;
    ContigAllocStats &st = stats != nullptr ? *stats : local;
    // Only the gigantic path exists today; smaller orders go
    // through normal compaction.
    ctg_assert(order == gigaOrder);
    PhysMem &mem = alloc.mem();
    const bool indexed = mem.contigIndexReads();
    const Pfn span = Pfn{1} << order;

    const Pfn first =
        (alloc.startPfn() + span - 1) & ~(span - 1);
    for (Pfn base = first; base + span <= alloc.endPfn();
         base += span) {
        ++st.candidatesScanned;
        if (windowBlocked(mem, base, base + span, registry)) {
            ++st.candidatesBlocked;
            continue;
        }
        // Enough free space *outside* the window to absorb the
        // evacuees?
        std::uint64_t used = 0;
        if (indexed) {
            used = span -
                   mem.contigIndex().freePagesIn(base, base + span);
        } else {
            for (Pfn pfn = base; pfn < base + span; ++pfn)
                used += !mem.frame(pfn).isFree();
        }
        const std::uint64_t free_inside = span - used;
        const std::uint64_t free_total = alloc.freePageCount();
        if (free_total - free_inside < used + used / 16)
            continue;

        alloc.isolateRange(base, base + span);

        bool ok = true;
        if (indexed) {
            // Jump between allocated heads instead of stepping over
            // every free frame; each migration frees its source, so
            // the next query sees exactly what the linear walk would.
            const ContigIndex &idx = mem.contigIndex();
            for (Pfn pfn = base; pfn < base + span && ok;) {
                pfn = idx.firstAllocatedFrame(pfn, base + span);
                if (pfn == invalidPfn)
                    break;
                const auto f = mem.frame(pfn);
                if (!f.isHead()) {
                    ++pfn;
                    continue;
                }
                const Pfn step = Pfn{1} << f.order();
                ++st.evacuations;
                const MigrateResult r = migrateBlock(
                    alloc, alloc, registry, pfn, AddrPref::None,
                    MigrateType::Movable, nullptr,
                    /*allow_fallback=*/true);
                if (r != MigrateResult::Ok) {
                    ++st.evacuationFailures;
                    ok = false;
                    break;
                }
                pfn += step;
            }
        } else {
            for (Pfn pfn = base; pfn < base + span && ok;) {
                const auto f = mem.frame(pfn);
                if (f.isFree() || !f.isHead()) {
                    ++pfn;
                    continue;
                }
                const Pfn step = Pfn{1} << f.order();
                ++st.evacuations;
                const MigrateResult r = migrateBlock(
                    alloc, alloc, registry, pfn, AddrPref::None,
                    MigrateType::Movable, nullptr,
                    /*allow_fallback=*/true);
                if (r != MigrateResult::Ok) {
                    ++st.evacuationFailures;
                    ok = false;
                    break;
                }
                pfn += step;
            }
        }

        if (!ok || !alloc.rangeFullyFree(base, base + span)) {
            alloc.unisolateRange(base, base + span,
                                 MigrateType::Movable);
            continue;
        }

        // Claim the window: pull its free blocks off the isolate
        // lists, retag and mark the whole range as one allocation.
        alloc.unisolateRange(base, base + span, mt);
        const Pfn head = alloc.allocGigantic(mt, src, owner);
        // The scan inside allocGigantic finds our window (it is the
        // only fully-free aligned one we just built) — but be
        // defensive in case an even earlier window was free.
        if (head != invalidPfn)
            return head;
        return invalidPfn;
    }
    return invalidPfn;
}

} // namespace ctg
