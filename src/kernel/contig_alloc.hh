/**
 * @file
 * alloc_contig_range analogue: allocate a large aligned range by
 * isolating a candidate window and migrating every movable page out
 * of it. This is the mechanism behind dynamic gigantic (1 GB)
 * HugeTLB allocation. A single unmovable page inside every candidate
 * window — the vanilla-Linux situation the paper measures — makes it
 * fail unconditionally; a Contiguitas movable region makes it
 * succeed by construction.
 */

#ifndef CTG_KERNEL_CONTIG_ALLOC_HH
#define CTG_KERNEL_CONTIG_ALLOC_HH

#include "kernel/owner.hh"
#include "mem/buddy.hh"

namespace ctg
{

/** Result counters for observability/tests. */
struct ContigAllocStats
{
    std::uint64_t candidatesScanned = 0;
    std::uint64_t candidatesBlocked = 0; //!< unmovable page inside
    std::uint64_t evacuations = 0;
    std::uint64_t evacuationFailures = 0;
};

/**
 * Allocate a 2^order-aligned fully-backed range from the allocator
 * by evacuating movable pages (order may exceed maxOrder).
 *
 * @return head PFN or invalidPfn if no candidate window could be
 *         cleared.
 */
Pfn allocContigRange(BuddyAllocator &alloc,
                     const OwnerRegistry &registry, unsigned order,
                     MigrateType mt, AllocSource src,
                     std::uint64_t owner,
                     ContigAllocStats *stats = nullptr);

} // namespace ctg

#endif // CTG_KERNEL_CONTIG_ALLOC_HH
