#include "kernel/fsbuffers.hh"

#include "base/serde.hh"

namespace ctg
{

namespace
{

ChurnPool::Config
scratchConfigFor(const FsBuffers::Config &config)
{
    ChurnPool::Config scratch_config;
    scratch_config.ratePerSec = config.scratchRatePerSec;
    scratch_config.meanLifeSec = config.scratchMeanLifeSec;
    scratch_config.longLivedFrac = config.longLivedFrac;
    scratch_config.longMeanLifeSec = config.longMeanLifeSec;
    scratch_config.orderDist = {{0, 0.7}, {1, 0.2}, {2, 0.1}};
    scratch_config.mt = MigrateType::Unmovable;
    scratch_config.source = AllocSource::Filesystem;
    scratch_config.lifetime = Lifetime::Short;
    scratch_config.relocatable = true; // in-flight IO buffers
    return scratch_config;
}

} // namespace

FsBuffers::FsBuffers(Kernel &kernel, Config config, std::uint64_t seed)
    : kernel_(kernel), config_(config), rng_(seed)
{
    scratch_ = std::make_unique<ChurnPool>(kernel_,
                                           scratchConfigFor(config_),
                                           seed ^ 0x66732d736372ULL);
    clientId_ = kernel_.owners().registerClient(this);
    kernel_.registerShrinker(this);
}

FsBuffers::FsBuffers(Kernel &kernel, Config config, serde::Reader &in)
    : kernel_(kernel), config_(config)
{
    scratch_ = std::make_unique<ChurnPool>(kernel_,
                                           scratchConfigFor(config_),
                                           in);
    clientId_ = in.getU16();
    if (clientId_ == 0)
        throw serde::Error("fs buffers: missing owner-client id");
    kernel_.owners().attachClientAt(clientId_, this);
    kernel_.registerShrinker(this);
    rng_.setRawState(in.getRngState());

    cache_ = in.getPodVector<Pfn>();
    const std::uint64_t frames = kernel_.mem().numFrames();
    std::uint64_t live = 0;
    for (const Pfn head : cache_) {
        if (head == invalidPfn)
            continue;
        if (head >= frames)
            throw serde::Error("fs buffers: cache pfn out of range");
        ++live;
    }

    // The free-slot stack order determines future slot reuse, so it
    // travels verbatim; every empty slot must appear exactly once.
    freeSlots_ = in.getPodVector<std::uint32_t>();
    if (freeSlots_.size() != cache_.size() - live)
        throw serde::Error("fs buffers: free-slot count mismatch");
    std::vector<bool> seen(cache_.size(), false);
    for (const std::uint32_t slot : freeSlots_) {
        if (slot >= cache_.size() || cache_[slot] != invalidPfn ||
            seen[slot])
            throw serde::Error("fs buffers: bad free-slot entry");
        seen[slot] = true;
    }

    cacheLive_ = in.getU64();
    if (cacheLive_ != live)
        throw serde::Error("fs buffers: live count mismatch");
    nowSec_ = in.getDouble();
    cacheCarry_ = in.getDouble();
    turnoverCarry_ = in.getDouble();
}

FsBuffers::~FsBuffers()
{
    for (const Pfn head : cache_) {
        if (head != invalidPfn)
            kernel_.freePages(head);
    }
    kernel_.owners().unregisterClient(clientId_);
}

bool
FsBuffers::growCacheOne()
{
    std::uint32_t slot;
    if (!freeSlots_.empty()) {
        slot = freeSlots_.back();
        freeSlots_.pop_back();
    } else {
        slot = static_cast<std::uint32_t>(cache_.size());
        cache_.push_back(invalidPfn);
    }
    if (kernel_.policy().freeUserPages() <= config_.keepFreePages) {
        freeSlots_.push_back(slot);
        return false;
    }
    AllocRequest req;
    req.order = 0;
    req.mt = MigrateType::Movable;
    req.source = AllocSource::Filesystem;
    req.owner = OwnerRegistry::makeOwner(clientId_, slot);
    req.lifetime = Lifetime::Short;
    // Do not reclaim-to-allocate: the cache only consumes genuinely
    // free memory (it is what reclaim reclaims *from*).
    const Pfn head = kernel_.policy().alloc(req);
    if (head == invalidPfn) {
        freeSlots_.push_back(slot);
        return false;
    }
    cache_[slot] = head;
    ++cacheLive_;
    return true;
}

void
FsBuffers::drainScratch()
{
    scratch_->drain();
}

void
FsBuffers::advanceTo(double now_sec)
{
    scratch_->advanceTo(now_sec);
    const double dt = now_sec - nowSec_;

    // Natural turnover: re-fetch a slice of the cache.
    turnoverCarry_ += dt * config_.cacheTurnoverPerSec *
                      static_cast<double>(cacheLive_);
    while (turnoverCarry_ >= 1.0 && cacheLive_ > 0) {
        turnoverCarry_ -= 1.0;
        // Evict a random live slot, then refill below.
        const std::uint32_t slot = static_cast<std::uint32_t>(
            rng_.below(cache_.size()));
        if (cache_[slot] == invalidPfn)
            continue;
        kernel_.freePages(cache_[slot]);
        cache_[slot] = invalidPfn;
        freeSlots_.push_back(slot);
        --cacheLive_;
        cacheCarry_ += 1.0;
    }

    // Growth: the cache absorbs free memory up to its cap.
    cacheCarry_ += dt * config_.cacheGrowthPagesPerSec;
    while (cacheCarry_ >= 1.0 && cacheLive_ < config_.cacheCapPages) {
        cacheCarry_ -= 1.0;
        if (!growCacheOne())
            break;
    }
    if (cacheCarry_ > 4.0)
        cacheCarry_ = 4.0;
    nowSec_ = now_sec;
}

std::uint64_t
FsBuffers::shrink(std::uint64_t target_pages)
{
    std::uint64_t freed = 0;
    if (cache_.empty())
        return 0;
    // Approximate-LRU eviction: which pages are cold has nothing to
    // do with where they sit physically, so evict random slots. This
    // is what keeps free memory scattered on real servers.
    std::size_t cursor = rng_.below(cache_.size());
    std::size_t probed = 0;
    while (freed < target_pages && cacheLive_ > 0 &&
           probed < cache_.size() * 2) {
        cursor = (cursor + 1) % cache_.size();
        ++probed;
        if (cache_[cursor] == invalidPfn) {
            // Jump to a new random position past runs of holes.
            cursor = rng_.below(cache_.size());
            continue;
        }
        kernel_.freePages(cache_[cursor]);
        cache_[cursor] = invalidPfn;
        freeSlots_.push_back(static_cast<std::uint32_t>(cursor));
        --cacheLive_;
        ++freed;
    }
    return freed;
}

bool
FsBuffers::relocate(std::uint64_t tag, Pfn old_head, Pfn new_head)
{
    const auto slot = static_cast<std::size_t>(tag);
    if (slot >= cache_.size() || cache_[slot] != old_head)
        return false;
    cache_[slot] = new_head;
    return true;
}

void
FsBuffers::saveTo(serde::Writer &out) const
{
    scratch_->saveTo(out);
    out.putU16(clientId_);
    out.putRngState(rng_.rawState());
    out.putPodVector(cache_);
    out.putPodVector(freeSlots_);
    out.putU64(cacheLive_);
    out.putDouble(nowSec_);
    out.putDouble(cacheCarry_);
    out.putDouble(turnoverCarry_);
}

} // namespace ctg
