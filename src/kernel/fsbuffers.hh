/**
 * @file
 * Filesystem buffer memory: short-lived compression/decompression
 * scratch buffers (unmovable while in flight) plus a page cache that
 * grows into all free memory — as in production, where free memory
 * is wasted memory — and is trimmed back by the shrinker under
 * allocation pressure. Page-cache pages are movable (Linux can
 * migrate them), so they churn the movable free lists without
 * counting as unmovable.
 */

#ifndef CTG_KERNEL_FSBUFFERS_HH
#define CTG_KERNEL_FSBUFFERS_HH

#include <memory>
#include <vector>

#include "kernel/churn.hh"

namespace ctg
{

/**
 * Filesystem memory footprint model.
 */
class FsBuffers : public Shrinker, public PageOwnerClient
{
  public:
    struct Config
    {
        /** Compression-buffer arrivals per second. */
        double scratchRatePerSec = 2500.0;
        double scratchMeanLifeSec = 0.02;
        double longLivedFrac = 0.03;
        double longMeanLifeSec = 90.0;
        /** Page-cache growth in pages per second of activity. */
        double cacheGrowthPagesPerSec = 256.0;
        /** Cap on the cached footprint (pages); by default the
         * cache is willing to take half of memory and relies on the
         * shrinker to give it back. */
        std::uint64_t cacheCapPages = ~std::uint64_t{0};
        /** Natural turnover: fraction of the cache re-fetched per
         * second (frees + reallocations). */
        double cacheTurnoverPerSec = 0.02;
        /** Free-memory floor (pages): growth pauses below it, like
         * kswapd's watermarks keep a reclaim headroom. */
        std::uint64_t keepFreePages = 4096;
    };

    FsBuffers(Kernel &kernel, Config config, std::uint64_t seed);

    /** Checkpoint restore: re-attach at the serialized owner-client
     * id, adopt the serialized cache/scratch state and re-register
     * as a shrinker (construction order across subsystems must match
     * the cold path so the shrinker list round-trips). */
    FsBuffers(Kernel &kernel, Config config, serde::Reader &in);

    ~FsBuffers() override;

    FsBuffers(const FsBuffers &) = delete;
    FsBuffers &operator=(const FsBuffers &) = delete;

    void advanceTo(double now_sec);

    /** Drop all in-flight scratch buffers (IO stops). */
    void drainScratch();

    /** Page-cache trim under memory pressure. */
    std::uint64_t shrink(std::uint64_t target_pages) override;

    /** Page cache is migratable: compaction repoints our slot. */
    bool relocate(std::uint64_t tag, Pfn old_head,
                  Pfn new_head) override;

    std::uint64_t scratchPages() const { return scratch_->livePages(); }
    std::uint64_t cachePages() const { return cacheLive_; }

    /** Serialize the full buffer state (checkpoint). */
    void saveTo(serde::Writer &out) const;

  private:
    /** Grab one cache page (slot reuse keeps tags stable). */
    bool growCacheOne();

    Kernel &kernel_;
    Config config_;
    Rng rng_;
    std::uint16_t clientId_ = 0;
    std::unique_ptr<ChurnPool> scratch_;
    /** Slot table: invalidPfn = empty slot. */
    std::vector<Pfn> cache_;
    std::vector<std::uint32_t> freeSlots_;
    std::uint64_t cacheLive_ = 0;
    double nowSec_ = 0.0;
    double cacheCarry_ = 0.0;
    double turnoverCarry_ = 0.0;
};

} // namespace ctg

#endif // CTG_KERNEL_FSBUFFERS_HH
