#include "kernel/hugetlb.hh"

namespace ctg
{

HugeTlbPool::HugeTlbPool(Kernel &kernel, const Config &config)
    : kernel_(kernel)
{
    if (grow1g(config.reserve1g) != config.reserve1g ||
        grow2m(config.reserve2m) != config.reserve2m) {
        fatal("HugeTLB boot reservation failed (%u x 2MB, %u x 1GB "
              "requested)",
              config.reserve2m, config.reserve1g);
    }
}

HugeTlbPool::~HugeTlbPool()
{
    ctg_assert(inUse2m_ == 0 && inUse1g_ == 0);
    for (const Pfn head : free2m_)
        kernel_.freePages(head);
    for (const Pfn head : free1g_)
        kernel_.freePages(head);
}

unsigned
HugeTlbPool::grow2m(unsigned count)
{
    unsigned got = 0;
    for (; got < count; ++got) {
        AllocRequest req;
        req.order = hugeOrder;
        req.mt = MigrateType::Movable;
        req.source = AllocSource::User;
        req.lifetime = Lifetime::Long;
        const Pfn head = kernel_.allocPages(req);
        if (head == invalidPfn)
            break;
        free2m_.push_back(head);
        ++total2m_;
    }
    return got;
}

unsigned
HugeTlbPool::grow1g(unsigned count)
{
    unsigned got = 0;
    for (; got < count; ++got) {
        const Pfn head = kernel_.allocGigantic(0);
        if (head == invalidPfn)
            break;
        free1g_.push_back(head);
        ++total1g_;
    }
    return got;
}

unsigned
HugeTlbPool::shrink2m(unsigned count)
{
    unsigned freed = 0;
    while (freed < count && !free2m_.empty()) {
        kernel_.freePages(free2m_.back());
        free2m_.pop_back();
        --total2m_;
        ++freed;
    }
    return freed;
}

unsigned
HugeTlbPool::shrink1g(unsigned count)
{
    unsigned freed = 0;
    while (freed < count && !free1g_.empty()) {
        kernel_.freePages(free1g_.back());
        free1g_.pop_back();
        --total1g_;
        ++freed;
    }
    return freed;
}

Pfn
HugeTlbPool::acquire2m()
{
    if (free2m_.empty())
        return invalidPfn;
    const Pfn head = free2m_.back();
    free2m_.pop_back();
    ++inUse2m_;
    return head;
}

void
HugeTlbPool::release2m(Pfn head)
{
    ctg_assert(inUse2m_ > 0);
    --inUse2m_;
    free2m_.push_back(head);
}

Pfn
HugeTlbPool::acquire1g()
{
    if (free1g_.empty())
        return invalidPfn;
    const Pfn head = free1g_.back();
    free1g_.pop_back();
    ++inUse1g_;
    return head;
}

void
HugeTlbPool::release1g(Pfn head)
{
    ctg_assert(inUse1g_ > 0);
    --inUse1g_;
    free1g_.push_back(head);
}

} // namespace ctg
