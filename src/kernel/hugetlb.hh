/**
 * @file
 * HugeTLB pool (Section 2.1): administrator-reserved persistent huge
 * pages that applications map explicitly.
 *
 * Unlike THP, reservations are made once (ideally at boot, while
 * contiguity still exists) and survive fragmentation — which is why
 * services that depend on huge pages reserve early or, failing that,
 * reboot servers. Dynamic growth later goes through the
 * alloc_contig_range path and succeeds only if the kernel can still
 * assemble the contiguity — trivially true under Contiguitas,
 * usually false on a fragmented vanilla kernel.
 */

#ifndef CTG_KERNEL_HUGETLB_HH
#define CTG_KERNEL_HUGETLB_HH

#include <vector>

#include "kernel/kernel.hh"

namespace ctg
{

/**
 * A reserved pool of 2 MB and 1 GB pages.
 */
class HugeTlbPool
{
  public:
    struct Config
    {
        /** Pages reserved at pool creation ("boot time"). */
        unsigned reserve2m = 0;
        unsigned reserve1g = 0;
    };

    /**
     * Reserve the configured pages immediately. Throws FatalError if
     * the boot-time reservation itself cannot be satisfied (the
     * administrator asked for more than the machine can give).
     */
    HugeTlbPool(Kernel &kernel, const Config &config);
    ~HugeTlbPool();

    HugeTlbPool(const HugeTlbPool &) = delete;
    HugeTlbPool &operator=(const HugeTlbPool &) = delete;

    /** @{ Dynamic resizing (the /proc/sys/vm/nr_hugepages path).
     * Returns pages actually added — may be fewer than requested
     * when contiguity is unavailable. */
    unsigned grow2m(unsigned count);
    unsigned grow1g(unsigned count);
    /** Return unused pages to the buddy allocator. */
    unsigned shrink2m(unsigned count);
    unsigned shrink1g(unsigned count);
    /** @} */

    /** @{ Application mapping interface: take a page out of the
     * pool / hand it back. invalidPfn when the pool is empty. */
    Pfn acquire2m();
    void release2m(Pfn head);
    Pfn acquire1g();
    void release1g(Pfn head);
    /** @} */

    /** @{ Occupancy. */
    unsigned total2m() const { return total2m_; }
    unsigned free2m() const
    {
        return static_cast<unsigned>(free2m_.size());
    }
    unsigned total1g() const { return total1g_; }
    unsigned free1g() const
    {
        return static_cast<unsigned>(free1g_.size());
    }
    /** @} */

  private:
    Kernel &kernel_;
    std::vector<Pfn> free2m_;
    std::vector<Pfn> free1g_;
    unsigned total2m_ = 0;
    unsigned total1g_ = 0;
    unsigned inUse2m_ = 0;
    unsigned inUse1g_ = 0;
};

} // namespace ctg

#endif // CTG_KERNEL_HUGETLB_HH
