#include "kernel/kernel.hh"

#include <algorithm>
#include <map>

#include "base/serde.hh"
#include "base/span_trace.hh"
#include "kernel/contig_alloc.hh"
#include "kernel/vanilla_policy.hh"
#include "mem/auditor.hh"
#include "sim/fault_injector.hh"

namespace ctg
{

Kernel::PolicyFactory
Kernel::vanillaPolicy()
{
    return [](Kernel &kernel) -> std::unique_ptr<MemPolicy> {
        return std::make_unique<VanillaPolicy>(kernel.mem());
    };
}

Kernel::Kernel(const KernelConfig &config, const PolicyFactory &factory)
    : config_(config), mem_(std::make_unique<PhysMem>(config.memBytes)),
      rng_(config.seed)
{
    policy_ = factory(*this);
    ctg_assert(policy_ != nullptr);
    lowWatermark_ = static_cast<std::uint64_t>(
        config_.lowWatermarkFrac *
        static_cast<double>(mem_->numFrames()));
    bootAllocations();
}

Kernel::Kernel(const KernelConfig &config)
    : Kernel(config, vanillaPolicy())
{}

Kernel::Kernel(const KernelConfig &config,
               const PolicyFactory &factory, serde::Reader &in)
    : config_(config), mem_(std::make_unique<PhysMem>(config.memBytes)),
      rng_(config.seed)
{
    // Stream order matches saveTo(): physical memory first (the
    // policy's allocators reference restored frames), then the
    // policy, then the kernel's own state. No bootAllocations() —
    // the restored frame table already holds them.
    mem_->loadFrom(in);
    policy_ = factory(*this);
    ctg_assert(policy_ != nullptr);
    lowWatermark_ = static_cast<std::uint64_t>(
        config_.lowWatermarkFrac *
        static_cast<double>(mem_->numFrames()));

    const std::uint64_t clientCount = in.getU64();
    if (clientCount >= 0x10000)
        throw serde::Error("kernel: client count out of range");
    owners_.restorePadTo(static_cast<std::size_t>(clientCount));

    Psi::SavedState psi;
    for (Psi *target : {&psiMovable_, &psiUnmovable_}) {
        psi.nowUs = in.getDouble();
        psi.pendingStallUs = in.getDouble();
        psi.decayedStall = in.getDouble();
        psi.elapsedUs = in.getDouble();
        psi.totalStallUs = in.getDouble();
        target->restoreState(psi);
    }
    rng_.setRawState(in.getRngState());
    bootPages_ = in.getPodVector<Pfn>();
    for (const Pfn head : bootPages_)
        if (head >= mem_->numFrames())
            throw serde::Error("kernel: boot page out of range");

    Counters &c = counters_;
    for (std::uint64_t *field :
         {&c.allocRetries, &c.allocFailures, &c.directReclaims,
          &c.directCompactions, &c.pins, &c.unpins,
          &c.reclaimedPages, &c.kcompactdRuns, &c.compactMigrated,
          &c.compactFailedNoMem, &c.compactSkippedUnmovable})
        *field = in.getU64();

    nextPinId_ = in.getU64();
    const std::uint64_t pinCount = in.getU64();
    if (pinCount > mem_->numFrames())
        throw serde::Error("kernel: pin table larger than memory");
    for (std::uint64_t i = 0; i < pinCount; ++i) {
        const std::uint64_t id = in.getU64();
        const Pfn pfn = in.getU64();
        if (id == 0 || id >= nextPinId_ || pfn >= mem_->numFrames())
            throw serde::Error("kernel: pin entry out of range");
        if (!pinPfnById_.emplace(id, pfn).second ||
            !pinIdByPfn_.emplace(pfn, id).second)
            throw serde::Error("kernel: duplicate pin entry");
    }
    nowSeconds_ = in.getDouble();
    kcompactdCarry_ = in.getDouble();
}

void
Kernel::saveTo(serde::Writer &out) const
{
    mem_->saveTo(out);
    policy_->saveTo(out);
    out.putU64(owners_.clientCount());

    for (const Psi *source : {&psiMovable_, &psiUnmovable_}) {
        const Psi::SavedState psi = source->savedState();
        out.putDouble(psi.nowUs);
        out.putDouble(psi.pendingStallUs);
        out.putDouble(psi.decayedStall);
        out.putDouble(psi.elapsedUs);
        out.putDouble(psi.totalStallUs);
    }
    out.putRngState(rng_.rawState());
    out.putPodVector(bootPages_);

    const Counters &c = counters_;
    for (const std::uint64_t field :
         {c.allocRetries, c.allocFailures, c.directReclaims,
          c.directCompactions, c.pins, c.unpins, c.reclaimedPages,
          c.kcompactdRuns, c.compactMigrated, c.compactFailedNoMem,
          c.compactSkippedUnmovable})
        out.putU64(field);

    out.putU64(nextPinId_);
    // Pin handles: id -> pfn, written in id order (the two
    // unordered maps are exact inverses; both rebuild from this).
    const std::map<std::uint64_t, Pfn> sorted(pinPfnById_.begin(),
                                              pinPfnById_.end());
    out.putU64(sorted.size());
    for (const auto &[id, pfn] : sorted) {
        out.putU64(id);
        out.putU64(pfn);
    }
    out.putDouble(nowSeconds_);
    out.putDouble(kcompactdCarry_);
}

void
Kernel::bootAllocations()
{
    // Kernel text and immortal boot-time structures. These are the
    // allocations Contiguitas parks at the far end of the unmovable
    // region (Section 3.2).
    const std::uint64_t text_pages =
        config_.kernelTextBytes / pageBytes;
    std::uint64_t remaining = text_pages;
    while (remaining > 0) {
        const unsigned order =
            std::min<unsigned>(maxOrder,
                               remaining >= (1u << maxOrder)
                                   ? maxOrder
                                   : 0);
        AllocRequest req;
        req.order = order;
        req.mt = MigrateType::Unmovable;
        req.source = AllocSource::KernelText;
        req.lifetime = Lifetime::Immortal;
        const Pfn head = policy_->alloc(req);
        if (head == invalidPfn)
            fatal("cannot place kernel text at boot");
        bootPages_.push_back(head);
        remaining -= std::min<std::uint64_t>(remaining,
                                             Pfn{1} << order);
    }
}

void
Kernel::advanceSeconds(double dt)
{
    ctg_assert(dt >= 0);
    nowSeconds_ += dt;
    mem_->nowSeconds = static_cast<std::uint32_t>(nowSeconds_);
    const double now_us = nowSeconds_ * 1e6;
    psiMovable_.advanceTo(now_us);
    psiUnmovable_.advanceTo(now_us);
    policy_->tick(static_cast<std::uint32_t>(nowSeconds_));

    // kcompactd: proactive background compaction of the movable
    // space, paced by wall-clock time.
    if (config_.kcompactdBudgetPerSec > 0) {
        kcompactdCarry_ +=
            dt * static_cast<double>(config_.kcompactdBudgetPerSec);
        if (kcompactdCarry_ >= 1.0) {
            const auto budget =
                static_cast<std::uint64_t>(kcompactdCarry_);
            kcompactdCarry_ -= static_cast<double>(budget);
            CTG_SPAN(Compaction, "kernel.kcompactd",
                     {{"budget",
                       static_cast<std::int64_t>(budget)}});
            BuddyAllocator &movable = policy_->movableAllocator();
            const CompactionResult r =
                compactRange(movable, owners_, movable.startPfn(),
                             movable.endPfn(), budget);
            counters_.compactMigrated += r.migrated;
            counters_.compactFailedNoMem += r.failedNoMem;
            counters_.compactSkippedUnmovable += r.skippedUnmovable;
            ++counters_.kcompactdRuns;
        }
    }
}

Pfn
Kernel::allocPages(const AllocRequest &req)
{
    Pfn head = policy_->alloc(req);
    if (head != invalidPfn)
        return head;

    // Slow path: charge a stall to the region this request targets,
    // reclaim, optionally compact, retry.
    CTG_SPAN_NAMED(span, Kernel, "kernel.alloc_slow",
                   {{"order", req.order},
                    {"movable",
                     req.mt == MigrateType::Movable ? 1 : 0}});
    Psi &psi = req.mt == MigrateType::Movable ? psiMovable_
                                              : psiUnmovable_;
    psi.recordStall(config_.reclaimStallUs);
    ++counters_.allocRetries;
    ++counters_.directReclaims;
    const std::uint64_t want = (Pfn{1} << req.order) * 4;
    counters_.reclaimedPages += reclaim(want);

    head = policy_->alloc(req);
    if (head != invalidPfn) {
        span.arg("after_reclaim", 1);
        return head;
    }

    // Huge-page faults fail fast in defer mode (khugepaged promotes
    // later); smaller high-order requests compact directly.
    const bool may_compact =
        req.mt == MigrateType::Movable && req.order > 0 &&
        (req.order < hugeOrder || config_.thpDirectCompact);
    if (may_compact) {
        ++counters_.directCompactions;
        psi.recordStall(config_.reclaimStallUs);
        compact(req.order);
        head = policy_->alloc(req);
        if (head != invalidPfn) {
            span.arg("after_compact", 1);
            return head;
        }
    }

    psi.recordStall(config_.reclaimStallUs);
    ++counters_.allocFailures;
    span.arg("failed", 1);
    return invalidPfn;
}

void
Kernel::freePages(Pfn head)
{
    policy_->free(head);
}

Pfn
Kernel::allocGigantic(std::uint64_t owner)
{
    Pfn head = policy_->allocGigantic(AllocSource::User, owner);
    if (head != invalidPfn)
        return head;

    // HugeTLB's dynamic path works hard: reclaim enough free memory
    // for the evacuees, then run alloc_contig_range — isolate a
    // candidate gigabyte and migrate everything movable out of it.
    // On a vanilla kernel scattered unmovable pages block every
    // candidate window; on Contiguitas the movable region is clean
    // by construction.
    CTG_SPAN(Kernel, "kernel.alloc_gigantic_slow");
    psiMovable_.recordStall(config_.reclaimStallUs * 4);
    ++counters_.directReclaims;
    counters_.reclaimedPages +=
        reclaim(pagesPerGiga + pagesPerGiga / 4);
    ++counters_.directCompactions;
    return allocContigRange(policy_->movableAllocator(), owners_,
                            gigaOrder, MigrateType::Movable,
                            AllocSource::User, owner);
}

Pfn
Kernel::pinPages(Pfn head)
{
    ++counters_.pins;
    return policy_->pin(head);
}

void
Kernel::unpinPages(Pfn head)
{
    ++counters_.unpins;
    policy_->unpin(head);
    // Retire any handle bound to this location.
    const auto it = pinIdByPfn_.find(head);
    if (it != pinIdByPfn_.end()) {
        pinPfnById_.erase(it->second);
        pinIdByPfn_.erase(it);
    }
}

std::uint64_t
Kernel::pinPagesId(Pfn head)
{
    const Pfn where = pinPages(head);
    if (where == invalidPfn)
        return 0;
    const std::uint64_t id = nextPinId_++;
    pinIdByPfn_[where] = id;
    pinPfnById_[id] = where;
    return id;
}

void
Kernel::unpinById(std::uint64_t id)
{
    const auto it = pinPfnById_.find(id);
    if (it == pinPfnById_.end())
        return; // already force-unpinned (process exit)
    const Pfn where = it->second;
    pinPfnById_.erase(it);
    pinIdByPfn_.erase(where);
    if (mem_->frame(where).isPinned()) {
        ++counters_.unpins;
        policy_->unpin(where);
    }
}

Pfn
Kernel::pinnedLocation(std::uint64_t id) const
{
    const auto it = pinPfnById_.find(id);
    return it == pinPfnById_.end() ? invalidPfn : it->second;
}

void
Kernel::notifyPinnedMoved(Pfn old_head, Pfn new_head)
{
    const auto it = pinIdByPfn_.find(old_head);
    if (it == pinIdByPfn_.end())
        return;
    const std::uint64_t id = it->second;
    pinIdByPfn_.erase(it);
    pinIdByPfn_[new_head] = id;
    pinPfnById_[id] = new_head;
}

void
Kernel::registerShrinker(Shrinker *shrinker)
{
    ctg_assert(shrinker != nullptr);
    shrinkers_.push_back(shrinker);
}

std::uint64_t
Kernel::reclaim(std::uint64_t target_pages)
{
    CTG_SPAN_NAMED(span, Kernel, "kernel.reclaim",
                   {{"target",
                     static_cast<std::int64_t>(target_pages)}});

    // Injected reclaim failure: every shrinker comes back empty, so
    // the caller's no-progress path (stall accounting, compaction,
    // final allocation failure) is exercised.
    if (faultInjector().shouldFail(FaultSite::KernelReclaimFail))
        return 0;

    std::uint64_t freed = 0;
    for (Shrinker *shrinker : shrinkers_) {
        if (freed >= target_pages)
            break;
        freed += shrinker->shrink(target_pages - freed);
    }
    span.arg("freed", static_cast<std::int64_t>(freed));
    return freed;
}

void
Kernel::attachAuditorChecks(MemAuditor &auditor)
{
    auditor.addCheck("kernel.owners", [this](AuditReport &r) {
        // Owner-handle conservation: every allocated block's handle
        // must name a registered client slot (live or retired) or be
        // noOwner. A handle above the registered range means frame
        // metadata was corrupted or stamped outside the registry.
        const Pfn n = mem_->numFrames();
        for (Pfn pfn = 0; pfn < n; ++pfn) {
            const auto f = mem_->frame(pfn);
            const std::uint64_t owner = f.isFree() ? 0 : f.owner();
            if (f.isFree() || !f.isHead() ||
                owner == OwnerRegistry::noOwner) {
                continue;
            }
            const std::uint64_t cid = owner >> 48;
            if (cid == 0 || cid > owners_.clientCount()) {
                r.violation(
                    "frame %llu owner handle %#llx names unknown "
                    "client %llu",
                    static_cast<unsigned long long>(pfn),
                    static_cast<unsigned long long>(owner),
                    static_cast<unsigned long long>(cid));
            }
        }
    });
    auditor.addCheck("kernel.pins", [this](AuditReport &r) {
        if (pinIdByPfn_.size() != pinPfnById_.size()) {
            r.violation("pin maps out of sync: %zu by-pfn vs %zu "
                        "by-id", pinIdByPfn_.size(),
                        pinPfnById_.size());
        }
        for (const auto &[id, pfn] : pinPfnById_) {
            const auto it = pinIdByPfn_.find(pfn);
            if (it == pinIdByPfn_.end() || it->second != id) {
                r.violation(
                    "pin handle %llu -> frame %llu has no matching "
                    "reverse entry",
                    static_cast<unsigned long long>(id),
                    static_cast<unsigned long long>(pfn));
                continue;
            }
            const auto f = mem_->frame(pfn);
            if (f.isFree() || !f.isHead() || !f.isPinned()) {
                r.violation(
                    "pin handle %llu -> frame %llu which is not an "
                    "allocated pinned head (flags %u)",
                    static_cast<unsigned long long>(id),
                    static_cast<unsigned long long>(pfn),
                    unsigned(f.flags()));
            }
        }
    });
}

std::unique_ptr<MemAuditor>
Kernel::makeAuditor()
{
    auto auditor = std::make_unique<MemAuditor>(*mem_);
    policy_->attachAuditorChecks(*auditor);
    attachAuditorChecks(*auditor);
    return auditor;
}

CompactionResult
Kernel::compact(unsigned target_order, std::uint64_t max_migrations)
{
    // The policy may redirect the effort (over-compact THP-style or
    // cap it); the default target is exactly what was requested.
    const CompactionResult r =
        compactUntil(policy_->movableAllocator(), owners_,
                     policy_->compactUntilTarget(target_order),
                     max_migrations);
    counters_.compactMigrated += r.migrated;
    counters_.compactFailedNoMem += r.failedNoMem;
    counters_.compactSkippedUnmovable += r.skippedUnmovable;
    return r;
}

void
Kernel::regStats(StatGroup group) const
{
    group.gauge("alloc_retries",
                [this] { return double(counters_.allocRetries); },
                "allocations that entered the reclaim slow path");
    group.gauge("alloc_failures",
                [this] { return double(counters_.allocFailures); },
                "allocations that failed after reclaim/compaction");
    group.gauge("direct_reclaims",
                [this] { return double(counters_.directReclaims); });
    group.gauge(
        "direct_compactions",
        [this] { return double(counters_.directCompactions); });
    group.gauge("pins", [this] { return double(counters_.pins); });
    group.gauge("unpins",
                [this] { return double(counters_.unpins); });
    group.gauge("reclaimed_pages",
                [this] { return double(counters_.reclaimedPages); });
    group.gauge("kcompactd_runs",
                [this] { return double(counters_.kcompactdRuns); });

    const StatGroup compact_group = group.group("compact");
    compact_group.gauge(
        "migrated",
        [this] { return double(counters_.compactMigrated); },
        "blocks relocated by any compaction run");
    compact_group.gauge(
        "failed_nomem",
        [this] { return double(counters_.compactFailedNoMem); });
    compact_group.gauge(
        "skipped_unmovable",
        [this] { return double(counters_.compactSkippedUnmovable); },
        "blocks compaction could not move");

    const StatGroup index_group = group.group("contig_index");
    index_group.gauge(
        "resync_calls",
        [this] { return double(mem_->contigIndex().resyncCalls()); },
        "incremental index update calls");
    index_group.gauge(
        "frames_rescanned",
        [this] {
            return double(mem_->contigIndex().framesRescanned());
        },
        "frames re-read by index updates");
    index_group.gauge(
        "free_pages",
        [this] { return double(mem_->contigIndex().freePages()); });
    index_group.gauge(
        "unmovable_pages",
        [this] {
            return double(mem_->contigIndex().unmovablePages());
        });
    index_group.gauge(
        "pinned_pages",
        [this] { return double(mem_->contigIndex().pinnedPages()); });

    group.gauge("now_seconds",
                [this] { return nowSeconds_; },
                "simulated kernel wall clock");
    group.gauge("free_user_pages",
                [this] { return double(policy_->freeUserPages()); });
    group.gauge(
        "free_kernel_pages",
        [this] { return double(policy_->freeKernelPages()); });
    group.gauge("psi_movable",
                [this] { return psiMovable_.pressure(); },
                "PSI pressure of the movable space, percent");
    group.gauge("psi_unmovable",
                [this] { return psiUnmovable_.pressure(); },
                "PSI pressure of the unmovable space, percent");
}

} // namespace ctg
