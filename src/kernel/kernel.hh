/**
 * @file
 * Kernel facade: the top-level object representing one simulated
 * server's memory-management stack.
 *
 * It owns physical memory, a placement policy (vanilla Linux or
 * Contiguitas), per-region PSI, the owner registry used by page
 * migration, and the reclaim machinery (shrinker list + watermarks).
 * Subsystems (slab, netstack, address spaces, ...) allocate through
 * it so every allocation gets reclaim-retry and stall accounting.
 */

#ifndef CTG_KERNEL_KERNEL_HH
#define CTG_KERNEL_KERNEL_HH

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "base/rng.hh"
#include "base/types.hh"
#include "kernel/compaction.hh"
#include "kernel/owner.hh"
#include "kernel/policy.hh"
#include "kernel/psi.hh"
#include "mem/physmem.hh"

namespace ctg
{

/** Static configuration of a simulated server kernel. */
struct KernelConfig
{
    std::uint64_t memBytes = std::uint64_t{4} << 30;
    bool thpEnabled = true;
    /** THP fault behaviour: defer (fail fast, khugepaged promotes
     * later — Linux's defer mode and Meta's production setting) vs
     * direct compaction on the fault path. */
    bool thpDirectCompact = false;
    /** Background compaction (kcompactd) migrations per second;
     * 0 disables. */
    std::uint64_t kcompactdBudgetPerSec = 4096;
    /** Low watermark as a fraction of total pages; direct reclaim
     * kicks in below it. */
    double lowWatermarkFrac = 0.02;
    /** Kernel text + immortal boot allocations. */
    std::uint64_t kernelTextBytes = std::uint64_t{48} << 20;
    /** Direct-reclaim stall charged per failed allocation (us). */
    double reclaimStallUs = 1500.0;
    std::uint64_t seed = 0xc0ffee;
};

/** Subsystems that can surrender pages under memory pressure. */
class Shrinker
{
  public:
    virtual ~Shrinker() = default;

    /** Try to free up to target pages; returns pages actually freed. */
    virtual std::uint64_t shrink(std::uint64_t target_pages) = 0;
};

/**
 * One simulated server kernel.
 */
class Kernel
{
  public:
    using PolicyFactory =
        std::function<std::unique_ptr<MemPolicy>(Kernel &)>;

    /** Factory for the stock-Linux baseline policy. */
    static PolicyFactory vanillaPolicy();

    Kernel(const KernelConfig &config, const PolicyFactory &factory);

    /** Convenience: vanilla kernel. */
    explicit Kernel(const KernelConfig &config);

    /**
     * Checkpoint restore. Constructs a quiescent kernel (no boot
     * allocations — the restored frame table already holds them),
     * restores physical memory from the stream, then invokes the
     * factory, which must build the policy from the same stream (use
     * a restore-mode policy constructor), then restores the kernel's
     * own state. Shrinkers and owner clients re-attach as the
     * workload is restored afterwards. Throws serde::Error on
     * malformed input.
     */
    Kernel(const KernelConfig &config, const PolicyFactory &factory,
           serde::Reader &in);

    /** Serialize physical memory, policy and kernel state. */
    void saveTo(serde::Writer &out) const;

    /** @{ Accessors. */
    PhysMem &mem() { return *mem_; }
    const PhysMem &mem() const { return *mem_; }
    MemPolicy &policy() { return *policy_; }
    OwnerRegistry &owners() { return owners_; }
    const OwnerRegistry &owners() const { return owners_; }
    Psi &psiMovable() { return psiMovable_; }
    Psi &psiUnmovable() { return psiUnmovable_; }
    Rng &rng() { return rng_; }
    const KernelConfig &config() const { return config_; }
    /** @} */

    /** @{ Simulated kernel time. */
    double nowSeconds() const { return nowSeconds_; }
    /** Advance time; runs PSI decay and the policy maintenance tick. */
    void advanceSeconds(double dt);
    /** @} */

    /**
     * Allocate pages with reclaim-retry. On first failure the kernel
     * charges a PSI stall to the region the request targets, runs the
     * shrinkers, optionally compacts (movable requests), and retries.
     * @return head PFN or invalidPfn.
     */
    Pfn allocPages(const AllocRequest &req);

    /** Free a block allocated through allocPages/allocGigantic. */
    void freePages(Pfn head);

    /** HugeTLB-style dynamic 1 GB allocation attempt. */
    Pfn allocGigantic(std::uint64_t owner);

    /** Pin a movable block for IO (may migrate under Contiguitas). */
    Pfn pinPages(Pfn head);

    /** Release a pin. */
    void unpinPages(Pfn head);

    /** @{ Handle-based pinning. Contiguitas-HW may migrate a pinned
     * page; handles stay valid across such moves while raw PFNs go
     * stale. 0 means the pin failed. */
    std::uint64_t pinPagesId(Pfn head);
    void unpinById(std::uint64_t id);
    Pfn pinnedLocation(std::uint64_t id) const;
    /** Called by the policy when hardware moved a pinned page. */
    void notifyPinnedMoved(Pfn old_head, Pfn new_head);
    /** @} */

    /** Register a shrinker (never unregistered in our runs). */
    void registerShrinker(Shrinker *shrinker);

    /** Run shrinkers until target pages freed or all are exhausted. */
    std::uint64_t reclaim(std::uint64_t target_pages);

    /** Register kernel-level cross-checks (owner-handle validity,
     * pin-table consistency) with a system-wide auditor. */
    void attachAuditorChecks(MemAuditor &auditor);

    /** Assemble a system-wide auditor for this server: the policy's
     * allocators and invariant checks plus the kernel's own. The
     * caller owns the auditor; this kernel must outlive it. */
    std::unique_ptr<MemAuditor> makeAuditor();

    /** Compact the movable allocator toward a free block of the
     * given order. */
    CompactionResult compact(unsigned target_order,
                             std::uint64_t max_migrations = 1u << 16);

    /** Event counters for reporting. */
    struct Counters
    {
        std::uint64_t allocRetries = 0;
        std::uint64_t allocFailures = 0;
        std::uint64_t directReclaims = 0;
        std::uint64_t directCompactions = 0;
        std::uint64_t pins = 0;
        std::uint64_t unpins = 0;
        std::uint64_t reclaimedPages = 0;
        std::uint64_t kcompactdRuns = 0;
        /** Lifetime totals over every compaction run (direct and
         * kcompactd), accumulated from CompactionResult. */
        std::uint64_t compactMigrated = 0;
        std::uint64_t compactFailedNoMem = 0;
        std::uint64_t compactSkippedUnmovable = 0;
    };

    const Counters &counters() const { return counters_; }

    /** Register the kernel's counters and occupancy gauges under the
     * given group (conventionally `<server>.kernel`). The policy's
     * subtree is registered separately via MemPolicy::regStats. */
    void regStats(StatGroup group) const;

    /** Pages below which direct reclaim triggers. */
    std::uint64_t lowWatermarkPages() const { return lowWatermark_; }

  private:
    void bootAllocations();

    KernelConfig config_;
    std::unique_ptr<PhysMem> mem_;
    OwnerRegistry owners_;
    std::unique_ptr<MemPolicy> policy_;
    Psi psiMovable_;
    Psi psiUnmovable_;
    Rng rng_;
    std::vector<Shrinker *> shrinkers_;
    std::vector<Pfn> bootPages_;
    Counters counters_;
    std::unordered_map<Pfn, std::uint64_t> pinIdByPfn_;
    std::unordered_map<std::uint64_t, Pfn> pinPfnById_;
    std::uint64_t nextPinId_ = 1;
    double nowSeconds_ = 0.0;
    double kcompactdCarry_ = 0.0;
    std::uint64_t lowWatermark_ = 0;
};

} // namespace ctg

#endif // CTG_KERNEL_KERNEL_HH
