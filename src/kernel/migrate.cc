#include "kernel/migrate.hh"

namespace ctg
{

MigrateResult
migrateBlock(BuddyAllocator &src_alloc, BuddyAllocator &dst_alloc,
             const OwnerRegistry &registry, Pfn src, AddrPref pref,
             MigrateType dst_mt, Pfn *out_dst, bool allow_fallback)
{
    PhysMem &mem = src_alloc.mem();
    const PageFrame &sf = mem.frame(src);
    ctg_assert(!sf.isFree() && sf.isHead());

    if (sf.isPinned())
        return MigrateResult::Unmovable;
    if (!registry.relocatable(sf.owner))
        return MigrateResult::Unmovable;

    const unsigned order = sf.order;
    const AllocSource source = sf.source;
    const std::uint64_t owner = sf.owner;

    const Pfn dst = dst_alloc.allocPages(order, dst_mt, source, owner,
                                         pref, allow_fallback);
    if (dst == invalidPfn)
        return MigrateResult::NoMemory;

    if (!registry.relocate(owner, src, dst)) {
        dst_alloc.freePages(dst);
        return MigrateResult::Unmovable;
    }

    src_alloc.freePages(src);
    if (out_dst != nullptr)
        *out_dst = dst;
    return MigrateResult::Ok;
}

} // namespace ctg
