#include "kernel/migrate.hh"

#include "base/span_trace.hh"
#include "base/trace.hh"
#include "sim/fault_injector.hh"

namespace ctg
{

MigrateStats &
globalMigrateStats()
{
    static MigrateStats stats;
    return stats;
}

void
regMigrateStats(StatGroup group)
{
    MigrateStats &stats = globalMigrateStats();
    group.gauge("attempts",
                [&stats] { return double(stats.attempts); },
                "migrateBlock calls (process-wide)");
    group.gauge("moved", [&stats] { return double(stats.moved); });
    group.gauge("unmovable",
                [&stats] { return double(stats.unmovable); },
                "attempts rejected: pinned or non-relocatable owner");
    group.gauge("no_memory",
                [&stats] { return double(stats.noMemory); },
                "attempts without a destination block");
    group.gauge("injected_faults",
                [&stats] { return double(stats.injectedFaults); },
                "migration failures forced by the fault injector");
}

MigrateResult
migrateBlock(BuddyAllocator &src_alloc, BuddyAllocator &dst_alloc,
             const OwnerRegistry &registry, Pfn src, AddrPref pref,
             MigrateType dst_mt, Pfn *out_dst, bool allow_fallback)
{
    MigrateStats &mstats = globalMigrateStats();
    ++mstats.attempts;

    CTG_SPAN_NAMED(span, Migrate, "migrate.block",
                   {{"src", static_cast<std::int64_t>(src)}});

    PhysMem &mem = src_alloc.mem();
    const auto sf = mem.frame(src);
    ctg_assert(!sf.isFree() && sf.isHead());

    if (sf.isPinned()) {
        ++mstats.unmovable;
        span.arg("unmovable", 1);
        return MigrateResult::Unmovable;
    }
    const std::uint64_t owner = sf.owner();
    if (!registry.relocatable(owner)) {
        ++mstats.unmovable;
        span.arg("unmovable", 1);
        return MigrateResult::Unmovable;
    }

    const unsigned order = sf.order();
    const AllocSource source = sf.source();

    if (faultInjector().shouldFail(FaultSite::MigrateDstFail)) {
        ++mstats.injectedFaults;
        ++mstats.noMemory;
        CTG_DPRINTF(Migrate,
                    "order-%u block at %llu: injected destination "
                    "failure", order,
                    static_cast<unsigned long long>(src));
        span.arg("no_memory", 1);
        return MigrateResult::NoMemory;
    }

    const Pfn dst = dst_alloc.allocPages(order, dst_mt, source, owner,
                                         pref, allow_fallback);
    if (dst == invalidPfn) {
        ++mstats.noMemory;
        CTG_DPRINTF(Migrate,
                    "order-%u block at %llu: no destination in %s",
                    order, static_cast<unsigned long long>(src),
                    dst_alloc.name().c_str());
        span.arg("no_memory", 1);
        return MigrateResult::NoMemory;
    }

    // An injected relocate refusal exercises the rollback path: the
    // destination block was already allocated and must be returned.
    if (faultInjector().shouldFail(FaultSite::MigrateRelocateFail)) {
        ++mstats.injectedFaults;
        dst_alloc.freePages(dst);
        ++mstats.unmovable;
        CTG_DPRINTF(Migrate,
                    "order-%u block at %llu: injected relocate "
                    "refusal, destination %llu rolled back", order,
                    static_cast<unsigned long long>(src),
                    static_cast<unsigned long long>(dst));
        span.arg("rolled_back", 1);
        return MigrateResult::Unmovable;
    }

    if (!registry.relocate(owner, src, dst)) {
        dst_alloc.freePages(dst);
        ++mstats.unmovable;
        span.arg("rolled_back", 1);
        return MigrateResult::Unmovable;
    }

    src_alloc.freePages(src);
    ++mstats.moved;
    span.arg("dst", static_cast<std::int64_t>(dst));
    span.arg("order", order);
    CTG_DPRINTF(Migrate, "order-%u block %llu -> %llu (%s)", order,
                static_cast<unsigned long long>(src),
                static_cast<unsigned long long>(dst),
                dst_alloc.name().c_str());
    if (out_dst != nullptr)
        *out_dst = dst;
    return MigrateResult::Ok;
}

} // namespace ctg
