/**
 * @file
 * Software page migration (Figure 1 procedure, layout effects only).
 *
 * The layout simulator migrates a block by allocating a destination,
 * asking the page's owner to repoint its mapping, and freeing the
 * source. The timing cost of the real procedure (TLB shootdown +
 * copy) is modeled separately by the hardware simulator; here we
 * track counts so PSI stalls can be charged.
 */

#ifndef CTG_KERNEL_MIGRATE_HH
#define CTG_KERNEL_MIGRATE_HH

#include <atomic>

#include "base/stat_registry.hh"
#include "base/types.hh"
#include "kernel/owner.hh"
#include "mem/buddy.hh"

namespace ctg
{

/** Outcome of a software migration attempt. */
enum class MigrateResult
{
    Ok,          //!< page moved; source freed
    Unmovable,   //!< page is pinned or has no relocatable owner
    NoMemory,    //!< destination allocation failed
};

/** Process-wide software-migration counters. migrateBlock is a free
 * function invoked from compaction, region resizing and pinning, so
 * the counters aggregate over every allocator (and, in fleet runs,
 * every server) in the process. The fields are relaxed atomics:
 * parallel fleet workers bump them concurrently, and since addition
 * commutes the totals are identical at every thread count. */
struct MigrateStats
{
    std::atomic<std::uint64_t> attempts{0};
    std::atomic<std::uint64_t> moved{0};
    std::atomic<std::uint64_t> unmovable{0};
    std::atomic<std::uint64_t> noMemory{0};
    /** Failures forced by the fault injector (also counted in
     * unmovable / noMemory according to the simulated outcome). */
    std::atomic<std::uint64_t> injectedFaults{0};

    MigrateStats() = default;
    MigrateStats(const MigrateStats &other) { *this = other; }
    MigrateStats &
    operator=(const MigrateStats &other)
    {
        attempts = other.attempts.load();
        moved = other.moved.load();
        unmovable = other.unmovable.load();
        noMemory = other.noMemory.load();
        injectedFaults = other.injectedFaults.load();
        return *this;
    }

    void reset() { *this = MigrateStats{}; }
};

MigrateStats &globalMigrateStats();

/** Register the process-wide migration counters under the given
 * group (conventionally `<prefix>.kernel.migrate`). */
void regMigrateStats(StatGroup group);

/**
 * Migrate the block headed at src into dst_alloc.
 *
 * The destination allocation inherits the source's migratetype,
 * source tag and owner. On success the owner's mapping points at
 * *out_dst and the source block is freed to src_alloc.
 *
 * @param src_alloc allocator that owns the source block
 * @param dst_alloc allocator to place the destination in (may be the
 *        same object for intra-region compaction)
 * @param registry owner registry for the repointing callback
 * @param src source block head
 * @param pref destination address preference
 * @param dst_mt migratetype for the destination block
 * @param out_dst destination head on success
 * @param allow_fallback permit cross-migratetype stealing for the
 *        destination allocation. Compaction keeps this off (stealing
 *        pageblocks would defeat its purpose); region resizing turns
 *        it on to evacuate into whatever space the region has.
 */
MigrateResult migrateBlock(BuddyAllocator &src_alloc,
                           BuddyAllocator &dst_alloc,
                           const OwnerRegistry &registry, Pfn src,
                           AddrPref pref, MigrateType dst_mt,
                           Pfn *out_dst, bool allow_fallback = false);

} // namespace ctg

#endif // CTG_KERNEL_MIGRATE_HH
