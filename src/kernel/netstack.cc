#include "kernel/netstack.hh"

#include "base/serde.hh"

namespace ctg
{

namespace
{

ChurnPool::Config
skbConfigFor(const NetStack::Config &config)
{
    ChurnPool::Config skb_config;
    skb_config.ratePerSec = config.skbRatePerSec;
    skb_config.meanLifeSec = config.skbMeanLifeSec;
    skb_config.longLivedFrac = config.longLivedFrac;
    skb_config.longMeanLifeSec = config.longMeanLifeSec;
    // skb sizes: mostly sub-page, some jumbo/multi-page (GRO).
    skb_config.orderDist = {{0, 0.62}, {1, 0.26}, {2, 0.12}};
    skb_config.mt = MigrateType::Unmovable;
    skb_config.source = AllocSource::Networking;
    skb_config.lifetime = Lifetime::Short;
    skb_config.relocatable = true; // IOMMU-translated buffers
    return skb_config;
}

} // namespace

NetStack::NetStack(Kernel &kernel, Config config, std::uint64_t seed)
    : kernel_(kernel), config_(config), rng_(seed)
{
    clientId_ = kernel_.owners().registerClient(this);
    skbs_ = std::make_unique<ChurnPool>(kernel_, skbConfigFor(config_),
                                        seed ^ 0x6e65742d736b62ULL);
}

NetStack::NetStack(Kernel &kernel, Config config, serde::Reader &in)
    : kernel_(kernel), config_(config)
{
    clientId_ = in.getU16();
    if (clientId_ == 0)
        throw serde::Error("netstack: missing owner-client id");
    kernel_.owners().attachClientAt(clientId_, this);
    rng_.setRawState(in.getRngState());

    rings_ = in.getPodVector<Pfn>();
    const std::uint64_t frames = kernel_.mem().numFrames();
    for (const Pfn head : rings_) {
        if (head >= frames)
            throw serde::Error("netstack: ring pfn out of range");
    }

    pins_ = in.getPodVector<std::uint64_t>();
    for (const std::uint64_t id : pins_) {
        if (id == 0)
            throw serde::Error("netstack: null pin handle");
    }

    started_ = in.getBool();
    skbs_ = std::make_unique<ChurnPool>(kernel_, skbConfigFor(config_),
                                        in);
}

NetStack::~NetStack()
{
    unpinAll();
    for (const Pfn head : rings_)
        kernel_.freePages(head);
    kernel_.owners().unregisterClient(clientId_);
}

bool
NetStack::relocate(std::uint64_t tag, Pfn old_head, Pfn new_head)
{
    const auto idx = static_cast<std::size_t>(tag);
    if (idx >= rings_.size() || rings_[idx] != old_head)
        return false;
    rings_[idx] = new_head;
    return true;
}

void
NetStack::start()
{
    ctg_assert(!started_);
    started_ = true;
    for (unsigned q = 0; q < config_.queues; ++q) {
        for (unsigned b = 0; b < config_.ringBlocksPerQueue; ++b) {
            AllocRequest req;
            req.order = 2;
            req.mt = MigrateType::Unmovable;
            req.source = AllocSource::Networking;
            req.lifetime = Lifetime::Long;
            req.owner = OwnerRegistry::makeOwner(
                clientId_, rings_.size());
            const Pfn head = kernel_.allocPages(req);
            if (head == invalidPfn)
                fatal("cannot allocate NIC ring buffers");
            // The NIC DMAs into rings continuously; software can
            // never block access to them.
            kernel_.mem().setRangePinned(head, head + 4, true);
            rings_.push_back(head);
        }
    }
}

void
NetStack::advanceTo(double now_sec)
{
    skbs_->advanceTo(now_sec);
}

void
NetStack::drainSkbs()
{
    skbs_->drain();
}

std::uint64_t
NetStack::pinUserPages(AddressSpace &space, std::uint64_t count)
{
    std::uint64_t pinned = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
        const Pfn candidate = space.randomBacked4kFrame(rng_);
        if (candidate == invalidPfn)
            break;
        if (kernel_.mem().frame(candidate).isPinned())
            continue;
        const std::uint64_t id = kernel_.pinPagesId(candidate);
        if (id == 0)
            continue;
        pins_.push_back(id);
        ++pinned;
    }
    return pinned;
}

void
NetStack::unpinAll()
{
    for (const std::uint64_t id : pins_)
        kernel_.unpinById(id);
    pins_.clear();
}

std::uint64_t
NetStack::livePages() const
{
    return skbs_->livePages() + rings_.size() * 4;
}

void
NetStack::saveTo(serde::Writer &out) const
{
    out.putU16(clientId_);
    out.putRngState(rng_.rawState());
    out.putPodVector(rings_);
    out.putPodVector(pins_);
    out.putBool(started_);
    skbs_->saveTo(out);
}

} // namespace ctg
