/**
 * @file
 * Networking stack memory model — the dominant unmovable source
 * (73% of unmovable pages in the paper's Figure 6).
 *
 * Three components:
 *  - per-queue RX/TX ring buffers, allocated once and held for the
 *    lifetime of the interface (long-lived unmovable blocks);
 *  - skb churn: high-rate short-lived send/receive buffers with a
 *    heavy tail of buffered-socket pages;
 *  - zero-copy pins: user pages pinned for DMA, which stock Linux
 *    leaves in place (polluting movable pageblocks) and Contiguitas
 *    first migrates into the unmovable region (Section 3.2).
 */

#ifndef CTG_KERNEL_NETSTACK_HH
#define CTG_KERNEL_NETSTACK_HH

#include <memory>
#include <vector>

#include "kernel/addrspace.hh"
#include "kernel/churn.hh"

namespace ctg
{

/**
 * Simulated kernel networking memory. Ring buffers and skbs are
 * reached through IOMMU/device-TLB translations, so the stack
 * registers as their page owner: Contiguitas-HW migrations repoint
 * the records here the way they repoint the IOTLB.
 */
class NetStack : public PageOwnerClient
{
  public:
    struct Config
    {
        unsigned queues = 16;
        /** Order-2 ring segments per queue. */
        unsigned ringBlocksPerQueue = 16;
        /** skb arrivals per second at nominal load. */
        double skbRatePerSec = 30000.0;
        double skbMeanLifeSec = 0.01;
        /** Buffered-socket tail. */
        double longLivedFrac = 0.04;
        double longMeanLifeSec = 60.0;
    };

    NetStack(Kernel &kernel, Config config, std::uint64_t seed);

    /** Checkpoint restore: re-attach at the serialized owner-client
     * id and adopt the serialized rings, skb pool and pin handles. */
    NetStack(Kernel &kernel, Config config, serde::Reader &in);

    ~NetStack() override;

    NetStack(const NetStack &) = delete;
    NetStack &operator=(const NetStack &) = delete;

    /** Allocate the interface rings (call once, at "ifup"). */
    void start();

    /** Advance the skb churn to the given time. */
    void advanceTo(double now_sec);

    /** Drop all in-flight skbs (traffic stops). */
    void drainSkbs();

    /**
     * Pin up to count user pages of an address space for zero-copy
     * sends / RDMA registration.
     * @return pages actually pinned.
     */
    std::uint64_t pinUserPages(AddressSpace &space,
                               std::uint64_t count);

    /** Drop all outstanding pins. */
    void unpinAll();

    /** Live unmovable pages held (rings + skbs; pins excluded since
     * those remain owned by the process). */
    std::uint64_t livePages() const;

    std::uint64_t pinnedPages() const { return pins_.size(); }

    /** PageOwnerClient: repoint a ring-buffer record. */
    bool relocate(std::uint64_t tag, Pfn old_head,
                  Pfn new_head) override;

    /** Serialize the full stack state (checkpoint). */
    void saveTo(serde::Writer &out) const;

  private:
    Kernel &kernel_;
    Config config_;
    Rng rng_;
    std::uint16_t clientId_ = 0;
    std::unique_ptr<ChurnPool> skbs_;
    std::vector<Pfn> rings_;
    std::vector<std::uint64_t> pins_; //!< kernel pin handles
    bool started_ = false;
};

} // namespace ctg

#endif // CTG_KERNEL_NETSTACK_HH
