/**
 * @file
 * Page-owner tracking used by migration and compaction.
 *
 * Every allocated page frame records a 64-bit owner handle. The high
 * 16 bits identify a registered PageOwnerClient (an address space,
 * a kernel subsystem, ...) and the low 48 bits are a client-chosen
 * tag (e.g. the VPN). When the kernel wants to migrate a page it
 * resolves the handle and asks the client to atomically repoint its
 * mapping from the old frame to the new one.
 *
 * A handle of 0 means "no owner": the page cannot be relocated by
 * software — this is how unmovable kernel allocations behave in the
 * paper (they are reachable through the linear map and cannot be
 * repointed).
 */

#ifndef CTG_KERNEL_OWNER_HH
#define CTG_KERNEL_OWNER_HH

#include <cstdint>
#include <vector>

#include "base/logging.hh"
#include "base/types.hh"

namespace ctg
{

/** Interface implemented by anything whose pages can be migrated. */
class PageOwnerClient
{
  public:
    virtual ~PageOwnerClient() = default;

    /**
     * Repoint the mapping identified by tag from old_head to
     * new_head (both block heads of the same order).
     * @return false if the client refuses (page must not move).
     */
    virtual bool relocate(std::uint64_t tag, Pfn old_head,
                          Pfn new_head) = 0;
};

/** Registry resolving owner handles to clients. */
class OwnerRegistry
{
  public:
    static constexpr std::uint64_t noOwner = 0;

    /** Register a client; returns its id (1..65535). */
    std::uint16_t
    registerClient(PageOwnerClient *client)
    {
        ctg_assert(client != nullptr);
        clients_.push_back(client);
        const std::size_t id = clients_.size();
        ctg_assert(id < 0x10000);
        return static_cast<std::uint16_t>(id);
    }

    /** Drop a client; outstanding handles become non-relocatable. */
    void
    unregisterClient(std::uint16_t id)
    {
        ctg_assert(id >= 1 && id <= clients_.size());
        clients_[id - 1] = nullptr;
    }

    /**
     * Checkpoint restore: grow the slot array to `count` with dead
     * (nullptr) slots. Ids are never reused, so the restored
     * registry must be the same *size* as at checkpoint even where
     * the owning objects are gone — otherwise the next
     * registerClient() would hand out an id that stale frame owner
     * handles already reference.
     */
    void
    restorePadTo(std::size_t count)
    {
        ctg_assert(count < 0x10000);
        ctg_assert(clients_.size() <= count);
        clients_.resize(count, nullptr);
    }

    /** Checkpoint restore: re-attach a live client at the exact id
     * it held when the snapshot was taken (its handles are baked
     * into frame owner fields). The slot must exist and be dead. */
    void
    attachClientAt(std::uint16_t id, PageOwnerClient *client)
    {
        ctg_assert(client != nullptr);
        ctg_assert(id >= 1 && id <= clients_.size());
        ctg_assert(clients_[id - 1] == nullptr);
        clients_[id - 1] = client;
    }

    /** Build an owner handle from a client id and 48-bit tag. */
    static std::uint64_t
    makeOwner(std::uint16_t client_id, std::uint64_t tag)
    {
        ctg_assert(client_id != 0);
        ctg_assert(tag < (std::uint64_t{1} << 48));
        return (std::uint64_t{client_id} << 48) | tag;
    }

    /** Registered client slots, live or not (ids are never reused,
     * so any valid handle's client id is <= this). */
    std::size_t clientCount() const { return clients_.size(); }

    /** True if the handle belongs to a live, relocatable client. */
    bool
    relocatable(std::uint64_t owner) const
    {
        const std::uint64_t cid = owner >> 48;
        return cid >= 1 && cid <= clients_.size() &&
               clients_[cid - 1] != nullptr;
    }

    /**
     * Ask the owning client to repoint its mapping.
     * @return false for unowned handles or client refusal.
     */
    bool
    relocate(std::uint64_t owner, Pfn old_head, Pfn new_head) const
    {
        if (!relocatable(owner))
            return false;
        const std::uint64_t cid = owner >> 48;
        const std::uint64_t tag = owner & ((std::uint64_t{1} << 48) - 1);
        return clients_[cid - 1]->relocate(tag, old_head, new_head);
    }

  private:
    std::vector<PageOwnerClient *> clients_;
};

} // namespace ctg

#endif // CTG_KERNEL_OWNER_HH
