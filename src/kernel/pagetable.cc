#include "kernel/pagetable.hh"

#include "base/serde.hh"

namespace ctg
{

namespace
{

/** Node level holding a leaf of the given order: 1 = PT (4 KB),
 * 2 = PMD (2 MB), 3 = PUD (1 GB). */
unsigned
leafNodeLevel(unsigned order)
{
    switch (order) {
      case 0:
        return 1;
      case hugeOrder:
        return 2;
      case gigaOrder:
        return 3;
      default:
        panic("unsupported page-table leaf order %u", order);
    }
}

} // namespace

unsigned
PageTables::indexAt(Vpn vpn, unsigned level)
{
    ctg_assert(level >= 1 && level <= levels);
    return static_cast<unsigned>(
        (vpn >> ((level - 1) * bitsPerLevel)) & 0x1ff);
}

PageTables::PageTables(Kernel &kernel)
    : kernel_(kernel)
{
    root_ = allocNode();
    if (!root_)
        fatal("cannot allocate page-table root");
}

PageTables::PageTables(Kernel &kernel, serde::Reader &in)
    : kernel_(kernel)
{
    const std::uint64_t tablePages = in.getU64();
    const std::uint64_t mappings = in.getU64();
    root_ = loadNode(in, levels);
    if (!root_)
        throw serde::Error("pagetable: missing root node");
    if (tablePages_ != tablePages || mappings_ != mappings)
        throw serde::Error("pagetable: node/mapping counts disagree "
                           "with serialized tree");
}

PageTables::~PageTables()
{
    freeNode(std::move(root_));
}

void
PageTables::saveNode(const Node &node, serde::Writer &out)
{
    out.putU64(node.backing);
    out.putU32(static_cast<std::uint32_t>(node.entries.size()));
    for (const auto &[idx, entry] : node.entries) {
        out.putU16(static_cast<std::uint16_t>(idx));
        out.putBool(entry.leaf);
        out.putU32(entry.order);
        out.putU64(entry.pfn);
        out.putBool(entry.child != nullptr);
        if (entry.child)
            saveNode(*entry.child, out);
    }
}

std::unique_ptr<PageTables::Node>
PageTables::loadNode(serde::Reader &in, unsigned depthLeft)
{
    if (depthLeft == 0)
        throw serde::Error("pagetable: tree deeper than 4 levels");
    auto node = std::make_unique<Node>();
    node->backing = in.getU64();
    ++tablePages_;
    const std::uint32_t count = in.getU32();
    if (count > pageBytes / 8)
        throw serde::Error("pagetable: node entry count too large");
    unsigned prev = 0;
    for (std::uint32_t i = 0; i < count; ++i) {
        const unsigned idx = in.getU16();
        if (idx >= (1u << bitsPerLevel) || (i > 0 && idx <= prev))
            throw serde::Error("pagetable: entry index out of order");
        prev = idx;
        Entry &entry = node->entries[idx];
        entry.present = true;
        entry.leaf = in.getBool();
        entry.order = in.getU32();
        entry.pfn = in.getU64();
        const bool hasChild = in.getBool();
        if (entry.leaf == hasChild)
            throw serde::Error("pagetable: leaf/child disagreement");
        if (hasChild)
            entry.child = loadNode(in, depthLeft - 1);
        else
            ++mappings_;
    }
    return node;
}

void
PageTables::saveTo(serde::Writer &out) const
{
    out.putU64(tablePages_);
    out.putU64(mappings_);
    saveNode(*root_, out);
}

std::unique_ptr<PageTables::Node>
PageTables::allocNode()
{
    AllocRequest req;
    req.order = 0;
    req.mt = MigrateType::Unmovable;
    req.source = AllocSource::PageTables;
    req.lifetime = Lifetime::Long;
    const Pfn backing = kernel_.allocPages(req);
    if (backing == invalidPfn)
        return nullptr;
    auto node = std::make_unique<Node>();
    node->backing = backing;
    ++tablePages_;
    return node;
}

void
PageTables::freeNode(std::unique_ptr<Node> node)
{
    if (!node)
        return;
    for (auto &[idx, entry] : node->entries) {
        (void)idx;
        if (entry.child)
            freeNode(std::move(entry.child));
    }
    kernel_.freePages(node->backing);
    ctg_assert(tablePages_ > 0);
    --tablePages_;
}

bool
PageTables::map(Vpn vpn, Pfn pfn, unsigned order)
{
    const unsigned leaf_level = leafNodeLevel(order);
    ctg_assert((vpn & ((Vpn{1} << order) - 1)) == 0);

    Node *node = root_.get();
    for (unsigned level = levels; level > leaf_level; --level) {
        Entry &entry = node->entries[indexAt(vpn, level)];
        if (entry.present && entry.leaf)
            panic("mapping conflict: leaf already present at level %u",
                  level);
        if (!entry.present) {
            entry.child = allocNode();
            if (!entry.child) {
                node->entries.erase(indexAt(vpn, level));
                return false;
            }
            entry.present = true;
            entry.leaf = false;
        }
        node = entry.child.get();
    }

    Entry &entry = node->entries[indexAt(vpn, leaf_level)];
    if (entry.present && !entry.leaf &&
        entry.child->entries.empty()) {
        // A lower-level table that was fully unmapped (e.g. before a
        // khugepaged collapse) can be retired in place.
        freeNode(std::move(entry.child));
        entry.present = false;
    }
    ctg_assert(!entry.present);
    entry.present = true;
    entry.leaf = true;
    entry.order = order;
    entry.pfn = pfn;
    ++mappings_;
    return true;
}

PageTables::Entry *
PageTables::findLeaf(Vpn vpn)
{
    Node *node = root_.get();
    for (unsigned level = levels; level >= 1; --level) {
        auto it = node->entries.find(indexAt(vpn, level));
        if (it == node->entries.end() || !it->second.present)
            return nullptr;
        Entry &entry = it->second;
        if (entry.leaf)
            return &entry;
        node = entry.child.get();
    }
    return nullptr;
}

const PageTables::Entry *
PageTables::findLeaf(Vpn vpn) const
{
    return const_cast<PageTables *>(this)->findLeaf(vpn);
}

bool
PageTables::unmap(Vpn vpn)
{
    Node *node = root_.get();
    for (unsigned level = levels; level >= 1; --level) {
        const unsigned idx = indexAt(vpn, level);
        auto it = node->entries.find(idx);
        if (it == node->entries.end() || !it->second.present)
            return false;
        if (it->second.leaf) {
            node->entries.erase(it);
            ctg_assert(mappings_ > 0);
            --mappings_;
            return true;
        }
        node = it->second.child.get();
    }
    return false;
}

bool
PageTables::repoint(Vpn vpn, Pfn new_pfn)
{
    Entry *entry = findLeaf(vpn);
    if (entry == nullptr)
        return false;
    entry->pfn = new_pfn;
    return true;
}

Translation
PageTables::translate(Vpn vpn) const
{
    Translation result;
    const Entry *entry = findLeaf(vpn);
    if (entry == nullptr)
        return result;
    result.valid = true;
    result.order = entry->order;
    result.level = leafNodeLevel(entry->order);
    // Offset within the huge leaf.
    const Vpn mask = (Vpn{1} << entry->order) - 1;
    result.pfn = entry->pfn + (vpn & mask);
    return result;
}

std::array<Addr, PageTables::levels>
PageTables::walkAddrs(Vpn vpn, unsigned *depth) const
{
    std::array<Addr, levels> addrs{};
    unsigned count = 0;
    const Node *node = root_.get();
    for (unsigned level = levels; level >= 1 && node != nullptr;
         --level) {
        const unsigned idx = indexAt(vpn, level);
        addrs[count++] = pfnToAddr(node->backing) +
                         static_cast<Addr>(idx) * 8;
        auto it = node->entries.find(idx);
        if (it == node->entries.end() || !it->second.present ||
            it->second.leaf) {
            break;
        }
        node = it->second.child.get();
    }
    if (depth != nullptr)
        *depth = count;
    return addrs;
}

} // namespace ctg
