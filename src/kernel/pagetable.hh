/**
 * @file
 * Four-level x86-64 radix page tables.
 *
 * Table pages are real simulated allocations (unmovable, source
 * PageTables) so the Figure 6 breakdown and the fragmentation they
 * cause are captured. The table also exposes the physical addresses
 * a hardware page walk touches at each level, which the hw simulator
 * uses to charge page-walk memory accesses (Figure 3).
 *
 * Supported leaf sizes mirror x86-64: 4 KB (PTE), 2 MB (PMD leaf)
 * and 1 GB (PUD leaf).
 */

#ifndef CTG_KERNEL_PAGETABLE_HH
#define CTG_KERNEL_PAGETABLE_HH

#include <array>
#include <cstdint>
#include <map>
#include <memory>

#include "base/types.hh"
#include "kernel/kernel.hh"

namespace ctg
{

namespace serde
{
class Writer;
class Reader;
} // namespace serde

/** Result of a translation lookup. */
struct Translation
{
    bool valid = false;
    Pfn pfn = invalidPfn;   //!< head frame of the leaf mapping
    unsigned order = 0;     //!< 0 (4K), 9 (2M) or 18 (1G)
    unsigned level = 0;     //!< radix level of the leaf (1=PTE..3=PUD)
};

/**
 * One process's radix page tables.
 */
class PageTables
{
  public:
    static constexpr unsigned levels = 4;
    static constexpr unsigned bitsPerLevel = 9;

    explicit PageTables(Kernel &kernel);

    /** Checkpoint restore: adopt a serialized radix tree. Table
     * backing frames are already live in the restored frame table,
     * so this constructor performs no allocations. */
    PageTables(Kernel &kernel, serde::Reader &in);

    ~PageTables();

    PageTables(const PageTables &) = delete;
    PageTables &operator=(const PageTables &) = delete;

    /**
     * Install a leaf mapping vpn -> pfn of the given order
     * (0, hugeOrder or gigaOrder). vpn must be order-aligned.
     * @return false if a table page allocation failed.
     */
    bool map(Vpn vpn, Pfn pfn, unsigned order);

    /** Remove the leaf covering vpn; true if one existed. */
    bool unmap(Vpn vpn);

    /** Repoint an existing leaf at a new frame (migration). */
    bool repoint(Vpn vpn, Pfn new_pfn);

    /** Look up the leaf covering vpn. */
    Translation translate(Vpn vpn) const;

    /**
     * Physical addresses of the table entries a hardware walk of
     * vpn reads, root first. Size equals the number of levels
     * actually traversed (shorter for huge leaves).
     */
    std::array<Addr, levels> walkAddrs(Vpn vpn, unsigned *depth) const;

    /** Number of live table pages (unmovable PageTables frames). */
    std::uint64_t tablePages() const { return tablePages_; }

    /** Number of live leaf mappings. */
    std::uint64_t mappings() const { return mappings_; }

    /** Serialize the radix tree (checkpoint). */
    void saveTo(serde::Writer &out) const;

  private:
    struct Node;
    struct Entry
    {
        bool present = false;
        bool leaf = false;
        unsigned order = 0;
        Pfn pfn = invalidPfn;        //!< leaf target
        std::unique_ptr<Node> child; //!< next-level table
    };

    struct Node
    {
        Pfn backing = invalidPfn; //!< frame holding this table
        /** Ordered: teardown frees table pages in index order, so
         * the buddy merge pattern (and everything downstream of it)
         * is independent of any hash layout — required for
         * bit-identical checkpoint resume. */
        std::map<unsigned, Entry> entries;
    };

    static unsigned indexAt(Vpn vpn, unsigned level);

    std::unique_ptr<Node> allocNode();
    void freeNode(std::unique_ptr<Node> node);

    static void saveNode(const Node &node, serde::Writer &out);
    std::unique_ptr<Node> loadNode(serde::Reader &in,
                                   unsigned depthLeft);

    /** Find the entry whose leaf covers vpn, or nullptr. */
    Entry *findLeaf(Vpn vpn);
    const Entry *findLeaf(Vpn vpn) const;

    Kernel &kernel_;
    std::unique_ptr<Node> root_;
    std::uint64_t tablePages_ = 0;
    std::uint64_t mappings_ = 0;
};

} // namespace ctg

#endif // CTG_KERNEL_PAGETABLE_HH
