/**
 * @file
 * Memory placement policy interface.
 *
 * A MemPolicy decides *where* in physical memory each allocation
 * lands. The kernel substrate drives it for every allocation, free,
 * pin and maintenance tick. Two implementations exist:
 *
 *  - VanillaPolicy (this library): one buddy allocator over all of
 *    memory with Linux fallback stealing — the paper's baseline.
 *  - ContiguitasPolicy (src/contiguitas): two regions with a dynamic
 *    boundary, confinement, placement bias and Algorithm 1 resizing.
 *
 * Policies are normally constructed by name through the
 * PolicyRegistry (src/contiguitas/policy_registry.hh), which also
 * derives variants ("contiguitas-nobias", "zone-movable") from
 * config presets rather than subclass forks — the tunable decision
 * points are the virtual hooks below (placementPref,
 * pinPlacementPref, compactUntilTarget, defragBudgetPerTick).
 */

#ifndef CTG_KERNEL_POLICY_HH
#define CTG_KERNEL_POLICY_HH

#include <cstdint>

#include "base/stat_registry.hh"
#include "base/types.hh"
#include "mem/buddy.hh"
#include "mem/physmem.hh"

namespace ctg
{

class MemAuditor;

/** Expected lifetime of an allocation; Contiguitas places long-lived
 * unmovable allocations away from the region border (Section 3.2). */
enum class Lifetime : std::uint8_t
{
    Short = 0,    //!< sub-second churn (skb, fs buffers)
    Long = 1,     //!< minutes-to-hours (slab backing, rings)
    Immortal = 2, //!< never freed (kernel text, boot structures)
};

/** Parameters of one block allocation. */
struct AllocRequest
{
    unsigned order = 0;
    MigrateType mt = MigrateType::Movable;
    AllocSource source = AllocSource::User;
    std::uint64_t owner = 0;
    Lifetime lifetime = Lifetime::Short;
};

/**
 * Placement policy driven by the Kernel facade.
 */
class MemPolicy
{
  public:
    virtual ~MemPolicy() = default;

    /** Allocate one block; invalidPfn on failure (caller reclaims
     * and retries). */
    virtual Pfn alloc(const AllocRequest &req) = 0;

    /** Free a block previously returned by alloc/allocGigantic. */
    virtual void free(Pfn head) = 0;

    /** Allocate a 1 GB gigantic movable block (HugeTLB path). */
    virtual Pfn allocGigantic(AllocSource src, std::uint64_t owner) = 0;

    /**
     * Pin a movable page for DMA/zero-copy IO. Contiguitas first
     * migrates the page into the unmovable region (Section 3.2).
     * @return the (possibly new) PFN of the pinned page, or
     *         invalidPfn if pinning failed.
     */
    virtual Pfn pin(Pfn head) = 0;

    /** Release a pin. */
    virtual void unpin(Pfn head) = 0;

    /** Periodic maintenance (reclaim hooks, region resizing). */
    virtual void tick(std::uint32_t now_seconds) = 0;

    /**
     * Placement preference for one allocation — the policy's
     * opportunity to bias *where inside its allocator* the block
     * lands (Contiguitas pushes long-lived unmovables low, away
     * from the region border; Section 3.2). Default: no preference.
     */
    virtual AddrPref placementPref(const AllocRequest &req) const
    {
        (void)req;
        return AddrPref::None;
    }

    /** Placement preference for the unmovable copy of a pinned page
     * (Contiguitas with placement bias pushes pins high, deep into
     * the unmovable region). Default: no preference. */
    virtual AddrPref pinPlacementPref() const { return AddrPref::None; }

    /**
     * Order the kernel's direct compaction should actually aim for
     * when a caller of order @p requested hits the slow path. A
     * policy may over-compact (build bigger blocks than asked, THP
     * style) or cap the effort. Default: compact exactly what was
     * requested.
     */
    virtual unsigned compactUntilTarget(unsigned requested) const
    {
        return requested;
    }

    /** Background defragmentation budget, in max-order blocks per
     * maintenance tick (0 = no background defrag). */
    virtual std::uint64_t defragBudgetPerTick() const { return 0; }

    /**
     * Does the policy have maintenance work queued that wants the
     * fine tick cadence — deferred region resizes retrying with
     * backoff, half-evacuated regions? Coarse fleet stepping
     * (CTG_COARSE_STEP) consults this at each quantum boundary:
     * while false the server batches the rest of its segment into
     * one step; while true it falls back to stepSec-sized steps so
     * the pending work gets its per-second tick retries. Default:
     * nothing pending (stateless policies batch whole segments).
     */
    virtual bool hasPendingMaintenance() const { return false; }

    /** Free movable-capacity pages available to user allocations. */
    virtual std::uint64_t freeUserPages() const = 0;

    /** Free pages available to kernel (unmovable) allocations. */
    virtual std::uint64_t freeKernelPages() const = 0;

    /** The unmovable region bounds; {0, 0} when the policy has no
     * dedicated region (vanilla). */
    virtual std::pair<Pfn, Pfn> unmovableRegion() const = 0;

    /** Allocator serving movable allocations (for compaction). */
    virtual BuddyAllocator &movableAllocator() = 0;

    virtual PhysMem &mem() = 0;

    /** Register the policy's stats subtree (allocators, regions,
     * controller) under the given group. The group is the *server*
     * prefix; implementations add their own `mem.` / `ctg.`
     * components so vanilla and Contiguitas dumps line up. */
    virtual void regStats(StatGroup group) const { (void)group; }

    /** Register this policy's allocators and invariant checks with a
     * system-wide auditor (default: nothing to audit). */
    virtual void attachAuditorChecks(MemAuditor &auditor)
    {
        (void)auditor;
    }

    /** Serialize policy-owned state (allocators, region boundary,
     * deferred resizes, stats) for a checkpoint. Restore happens via
     * each policy's restore constructor, selected by the restoring
     * Server from its own config. */
    virtual void saveTo(serde::Writer &out) const = 0;
};

} // namespace ctg

#endif // CTG_KERNEL_POLICY_HH
