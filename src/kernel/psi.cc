#include "kernel/psi.hh"

#include <cmath>

namespace ctg
{

void
Psi::advanceTo(double now_us)
{
    ctg_assert(now_us >= nowUs_);
    const double delta = now_us - nowUs_;
    if (delta <= 0)
        return;
    // Fold the newly accumulated stall into the decayed windows. The
    // decay factor halves contributions every halfLifeUs_.
    const double decay = std::exp2(-delta / halfLifeUs_);
    totalStallUs_ += pendingStallUs_;
    // Clamp the stall accrued since the last advance to the interval
    // so pressure can never exceed 100%.
    const double interval_stall = std::fmin(pendingStallUs_, delta);
    pendingStallUs_ = 0.0;
    elapsedUs_ = elapsedUs_ * decay + delta;
    decayedStall_ = decayedStall_ * decay + interval_stall;
    nowUs_ = now_us;
}

double
Psi::pressure() const
{
    if (elapsedUs_ <= 0)
        return 0.0;
    return std::fmin(100.0, 100.0 * decayedStall_ / elapsedUs_);
}

} // namespace ctg
