/**
 * @file
 * Pressure Stall Information (PSI) analogue.
 *
 * Linux's PSI reports the share of wall-clock time in which tasks are
 * stalled for memory. Contiguitas extends PSI to track the movable
 * and unmovable regions separately (Section 3.2) and feeds both into
 * the Algorithm 1 resize controller. We reproduce the "some" pressure
 * metric as an exponentially-decayed ratio of stall time to elapsed
 * time, expressed in percent like /proc/pressure/memory.
 */

#ifndef CTG_KERNEL_PSI_HH
#define CTG_KERNEL_PSI_HH

#include <cstdint>

#include "base/logging.hh"

namespace ctg
{

/**
 * Exponentially-decayed stall-time tracker.
 *
 * Time is measured in microseconds of simulated kernel time. The
 * decay half-life defaults to 10 s, matching the avg10 window that
 * the paper's reclaim logic keys off.
 */
class Psi
{
  public:
    explicit Psi(double half_life_us = 10e6)
        : halfLifeUs_(half_life_us)
    {
        ctg_assert(half_life_us > 0);
    }

    /** Record a stall of the given duration at the current time. */
    void
    recordStall(double stall_us)
    {
        ctg_assert(stall_us >= 0);
        pendingStallUs_ += stall_us;
    }

    /** Advance wall-clock time; decays the accumulated windows. */
    void advanceTo(double now_us);

    /** Pressure in percent of recent time spent stalled (avg-like). */
    double pressure() const;

    /** Total (undecayed) stall time, for reporting. */
    double totalStallUs() const { return totalStallUs_; }

    /** @{ Checkpoint state: the five evolving doubles (the half-life
     * is configuration). Restored bit-exactly via their IEEE-754
     * patterns. */
    struct SavedState
    {
        double nowUs;
        double pendingStallUs;
        double decayedStall;
        double elapsedUs;
        double totalStallUs;
    };

    SavedState
    savedState() const
    {
        return {nowUs_, pendingStallUs_, decayedStall_, elapsedUs_,
                totalStallUs_};
    }

    void
    restoreState(const SavedState &s)
    {
        nowUs_ = s.nowUs;
        pendingStallUs_ = s.pendingStallUs;
        decayedStall_ = s.decayedStall;
        elapsedUs_ = s.elapsedUs;
        totalStallUs_ = s.totalStallUs;
    }
    /** @} */

  private:
    double halfLifeUs_;
    double nowUs_ = 0.0;
    /** Stall time accrued since the last advanceTo(). */
    double pendingStallUs_ = 0.0;
    /** Decayed stall time and decayed elapsed time windows. */
    double decayedStall_ = 0.0;
    double elapsedUs_ = 0.0;
    double totalStallUs_ = 0.0;
};

} // namespace ctg

#endif // CTG_KERNEL_PSI_HH
