#include "kernel/slab.hh"

#include <algorithm>

#include "base/serde.hh"

namespace ctg
{

namespace
{

struct SizeClass
{
    std::uint32_t bytes;
    std::uint8_t pageOrder;
};

/** Size classes roughly matching kmalloc caches; larger classes use
 * higher-order slabs so each slab still holds several objects. */
constexpr SizeClass sizeClasses[] = {
    {32, 0},   {64, 0},   {96, 0},   {128, 0},  {192, 0},
    {256, 0},  {512, 0},  {1024, 0}, {2048, 1}, {4096, 1},
    {8192, 2},
};

constexpr unsigned numClasses = std::size(sizeClasses);

} // namespace

SlabAllocator::SlabAllocator(Kernel &kernel, AllocSource src)
    : kernel_(kernel), source_(src), partial_(numClasses)
{
    kernel_.registerShrinker(this);
}

SlabAllocator::SlabAllocator(Kernel &kernel, serde::Reader &in,
                             AllocSource src)
    : kernel_(kernel), source_(src), partial_(numClasses)
{
    kernel_.registerShrinker(this);

    const std::uint64_t frames = kernel_.mem().numFrames();
    const std::uint64_t slab_count = in.getU64();
    if (slab_count > frames)
        throw serde::Error("slab: slab count exceeds memory");
    slabs_.reserve(slab_count);
    std::uint64_t backing = 0;
    std::uint64_t live_objects = 0;
    for (std::uint64_t i = 0; i < slab_count; ++i) {
        Slab slab;
        slab.page = in.getU64();
        slab.order = in.getU8();
        slab.capacity = in.getU16();
        slab.inUse = in.getU16();
        slab.classIdx = in.getU32();
        slab.live = in.getBool();
        slab.bitmap = in.getPodVector<std::uint64_t>();
        if (!slab.live) {
            if (slab.page != invalidPfn)
                throw serde::Error("slab: dead slab with a page");
        } else {
            if (slab.page >= frames || slab.classIdx >= numClasses ||
                slab.order != sizeClasses[slab.classIdx].pageOrder)
                throw serde::Error("slab: bad slab record");
            const std::uint32_t bytes =
                (1u << slab.order) * pageBytes;
            const auto capacity = static_cast<std::uint16_t>(
                bytes / sizeClasses[slab.classIdx].bytes);
            if (slab.capacity != capacity ||
                slab.inUse > slab.capacity ||
                slab.bitmap.size() != (slab.capacity + 63u) / 64)
                throw serde::Error("slab: bad slab geometry");
            std::uint64_t used = 0;
            for (std::size_t w = 0; w < slab.bitmap.size(); ++w) {
                std::uint64_t word = slab.bitmap[w];
                // Bits past capacity must be clear.
                if (w + 1 == slab.bitmap.size() &&
                    slab.capacity % 64 != 0) {
                    const std::uint64_t valid =
                        (std::uint64_t{1} << (slab.capacity % 64)) -
                        1;
                    if (word & ~valid)
                        throw serde::Error(
                            "slab: bitmap bit past capacity");
                    word &= valid;
                }
                used += static_cast<std::uint64_t>(
                    __builtin_popcountll(word));
            }
            if (used != slab.inUse)
                throw serde::Error("slab: in-use/bitmap mismatch");
            backing += Pfn{1} << slab.order;
            live_objects += slab.inUse;
        }
        slabs_.push_back(std::move(slab));
    }

    recycledIds_ = in.getPodVector<std::uint32_t>();
    for (const std::uint32_t id : recycledIds_) {
        if (id >= slabs_.size() || slabs_[id].live)
            throw serde::Error("slab: bad recycled id");
    }

    const std::uint64_t class_count = in.getU64();
    if (class_count != numClasses)
        throw serde::Error("slab: size-class count mismatch");
    for (unsigned c = 0; c < numClasses; ++c) {
        partial_[c] = in.getPodVector<std::uint32_t>();
        for (const std::uint32_t id : partial_[c]) {
            if (id >= slabs_.size() || !slabs_[id].live ||
                slabs_[id].classIdx != c ||
                slabs_[id].inUse >= slabs_[id].capacity ||
                slabs_[id].inUse == 0)
                throw serde::Error("slab: bad partial entry");
        }
    }

    emptyCached_ = in.getPodVector<std::uint32_t>();
    if (emptyCached_.size() > emptyCacheCap)
        throw serde::Error("slab: empty cache overflow");
    for (const std::uint32_t id : emptyCached_) {
        if (id >= slabs_.size() || !slabs_[id].live ||
            slabs_[id].inUse != 0)
            throw serde::Error("slab: bad empty-cache entry");
    }

    backingPages_ = in.getU64();
    liveObjects_ = in.getU64();
    if (backingPages_ != backing || liveObjects_ != live_objects)
        throw serde::Error("slab: aggregate count mismatch");
}

void
SlabAllocator::saveTo(serde::Writer &out) const
{
    out.putU64(slabs_.size());
    for (const Slab &slab : slabs_) {
        out.putU64(slab.page);
        out.putU8(slab.order);
        out.putU16(slab.capacity);
        out.putU16(slab.inUse);
        out.putU32(slab.classIdx);
        out.putBool(slab.live);
        out.putPodVector(slab.bitmap);
    }
    out.putPodVector(recycledIds_);
    out.putU64(numClasses);
    for (const auto &list : partial_)
        out.putPodVector(list);
    out.putPodVector(emptyCached_);
    out.putU64(backingPages_);
    out.putU64(liveObjects_);
}

SlabAllocator::~SlabAllocator()
{
    for (std::uint32_t id = 0; id < slabs_.size(); ++id) {
        if (slabs_[id].live)
            kernel_.freePages(slabs_[id].page);
    }
}

unsigned
SlabAllocator::classIndexFor(std::uint32_t size_bytes)
{
    for (unsigned i = 0; i < numClasses; ++i) {
        if (size_bytes <= sizeClasses[i].bytes)
            return i;
    }
    panic("slab object of %u bytes exceeds maximum", size_bytes);
}

std::uint32_t
SlabAllocator::acquireSlab(unsigned class_idx)
{
    if (!partial_[class_idx].empty())
        return partial_[class_idx].back();

    std::uint32_t id;
    if (!emptyCached_.empty()) {
        // Repurpose a cached empty slab for this class.
        id = emptyCached_.back();
        emptyCached_.pop_back();
        Slab &slab = slabs_[id];
        // Keep the existing page but maybe wrong order for the new
        // class; if so release it and fall through to fresh alloc.
        if (slab.order == sizeClasses[class_idx].pageOrder) {
            const std::uint32_t bytes =
                (1u << slab.order) * pageBytes;
            slab.classIdx = class_idx;
            slab.capacity = static_cast<std::uint16_t>(
                bytes / sizeClasses[class_idx].bytes);
            slab.inUse = 0;
            slab.bitmap.assign((slab.capacity + 63) / 64, 0);
            partial_[class_idx].push_back(id);
            return id;
        }
        releaseSlabPage(id);
    }

    AllocRequest req;
    req.order = sizeClasses[class_idx].pageOrder;
    req.mt = MigrateType::Unmovable;
    req.source = source_;
    req.lifetime = Lifetime::Long;
    const Pfn page = kernel_.allocPages(req);
    if (page == invalidPfn)
        return 0xffffffffu;

    if (!recycledIds_.empty()) {
        id = recycledIds_.back();
        recycledIds_.pop_back();
    } else {
        id = static_cast<std::uint32_t>(slabs_.size());
        slabs_.emplace_back();
    }
    Slab &slab = slabs_[id];
    slab.page = page;
    slab.order = sizeClasses[class_idx].pageOrder;
    slab.classIdx = class_idx;
    const std::uint32_t bytes = (1u << slab.order) * pageBytes;
    slab.capacity = static_cast<std::uint16_t>(
        bytes / sizeClasses[class_idx].bytes);
    slab.inUse = 0;
    slab.live = true;
    slab.bitmap.assign((slab.capacity + 63) / 64, 0);
    backingPages_ += Pfn{1} << slab.order;
    partial_[class_idx].push_back(id);
    return id;
}

void
SlabAllocator::releaseSlabPage(std::uint32_t slab_id)
{
    Slab &slab = slabs_[slab_id];
    ctg_assert(slab.live && slab.inUse == 0);
    kernel_.freePages(slab.page);
    ctg_assert(backingPages_ >= (Pfn{1} << slab.order));
    backingPages_ -= Pfn{1} << slab.order;
    slab.live = false;
    slab.page = invalidPfn;
    recycledIds_.push_back(slab_id);
}

SlabAllocator::ObjHandle
SlabAllocator::allocObject(std::uint32_t size_bytes)
{
    const unsigned class_idx = classIndexFor(size_bytes);
    const std::uint32_t id = acquireSlab(class_idx);
    if (id == 0xffffffffu)
        return 0;

    Slab &slab = slabs_[id];
    ctg_assert(slab.inUse < slab.capacity);
    // Find a clear bit.
    std::uint32_t slot = 0;
    for (std::size_t w = 0; w < slab.bitmap.size(); ++w) {
        const std::uint64_t word = slab.bitmap[w];
        if (word != ~std::uint64_t{0}) {
            const unsigned bit = static_cast<unsigned>(
                __builtin_ctzll(~word));
            slot = static_cast<std::uint32_t>(w * 64 + bit);
            if (slot < slab.capacity) {
                slab.bitmap[w] |= std::uint64_t{1} << bit;
                break;
            }
        }
        if (w + 1 == slab.bitmap.size())
            panic("slab bookkeeping inconsistent");
    }
    ++slab.inUse;
    ++liveObjects_;
    if (slab.inUse == slab.capacity) {
        auto &list = partial_[class_idx];
        list.erase(std::find(list.begin(), list.end(), id));
    }
    return (static_cast<ObjHandle>(id) + 1) << 16 | slot;
}

void
SlabAllocator::freeObject(ObjHandle handle)
{
    ctg_assert(handle != 0);
    const auto id = static_cast<std::uint32_t>((handle >> 16) - 1);
    const auto slot = static_cast<std::uint32_t>(handle & 0xffff);
    ctg_assert(id < slabs_.size());
    Slab &slab = slabs_[id];
    ctg_assert(slab.live && slot < slab.capacity);
    std::uint64_t &word = slab.bitmap[slot / 64];
    const std::uint64_t bit = std::uint64_t{1} << (slot % 64);
    ctg_assert(word & bit);
    word &= ~bit;

    const bool was_full = slab.inUse == slab.capacity;
    --slab.inUse;
    --liveObjects_;
    if (was_full)
        partial_[slab.classIdx].push_back(id);
    if (slab.inUse == 0) {
        auto &list = partial_[slab.classIdx];
        list.erase(std::find(list.begin(), list.end(), id));
        if (emptyCached_.size() < emptyCacheCap)
            emptyCached_.push_back(id);
        else
            releaseSlabPage(id);
    }
}

std::uint64_t
SlabAllocator::shrink(std::uint64_t target_pages)
{
    std::uint64_t freed = 0;
    while (freed < target_pages && !emptyCached_.empty()) {
        const std::uint32_t id = emptyCached_.back();
        emptyCached_.pop_back();
        freed += Pfn{1} << slabs_[id].order;
        releaseSlabPage(id);
    }
    return freed;
}

} // namespace ctg
