#include "kernel/slab.hh"

#include <algorithm>

namespace ctg
{

namespace
{

struct SizeClass
{
    std::uint32_t bytes;
    std::uint8_t pageOrder;
};

/** Size classes roughly matching kmalloc caches; larger classes use
 * higher-order slabs so each slab still holds several objects. */
constexpr SizeClass sizeClasses[] = {
    {32, 0},   {64, 0},   {96, 0},   {128, 0},  {192, 0},
    {256, 0},  {512, 0},  {1024, 0}, {2048, 1}, {4096, 1},
    {8192, 2},
};

constexpr unsigned numClasses = std::size(sizeClasses);

} // namespace

SlabAllocator::SlabAllocator(Kernel &kernel, AllocSource src)
    : kernel_(kernel), source_(src), partial_(numClasses)
{
    kernel_.registerShrinker(this);
}

SlabAllocator::~SlabAllocator()
{
    for (std::uint32_t id = 0; id < slabs_.size(); ++id) {
        if (slabs_[id].live)
            kernel_.freePages(slabs_[id].page);
    }
}

unsigned
SlabAllocator::classIndexFor(std::uint32_t size_bytes)
{
    for (unsigned i = 0; i < numClasses; ++i) {
        if (size_bytes <= sizeClasses[i].bytes)
            return i;
    }
    panic("slab object of %u bytes exceeds maximum", size_bytes);
}

std::uint32_t
SlabAllocator::acquireSlab(unsigned class_idx)
{
    if (!partial_[class_idx].empty())
        return partial_[class_idx].back();

    std::uint32_t id;
    if (!emptyCached_.empty()) {
        // Repurpose a cached empty slab for this class.
        id = emptyCached_.back();
        emptyCached_.pop_back();
        Slab &slab = slabs_[id];
        // Keep the existing page but maybe wrong order for the new
        // class; if so release it and fall through to fresh alloc.
        if (slab.order == sizeClasses[class_idx].pageOrder) {
            const std::uint32_t bytes =
                (1u << slab.order) * pageBytes;
            slab.classIdx = class_idx;
            slab.capacity = static_cast<std::uint16_t>(
                bytes / sizeClasses[class_idx].bytes);
            slab.inUse = 0;
            slab.bitmap.assign((slab.capacity + 63) / 64, 0);
            partial_[class_idx].push_back(id);
            return id;
        }
        releaseSlabPage(id);
    }

    AllocRequest req;
    req.order = sizeClasses[class_idx].pageOrder;
    req.mt = MigrateType::Unmovable;
    req.source = source_;
    req.lifetime = Lifetime::Long;
    const Pfn page = kernel_.allocPages(req);
    if (page == invalidPfn)
        return 0xffffffffu;

    if (!recycledIds_.empty()) {
        id = recycledIds_.back();
        recycledIds_.pop_back();
    } else {
        id = static_cast<std::uint32_t>(slabs_.size());
        slabs_.emplace_back();
    }
    Slab &slab = slabs_[id];
    slab.page = page;
    slab.order = sizeClasses[class_idx].pageOrder;
    slab.classIdx = class_idx;
    const std::uint32_t bytes = (1u << slab.order) * pageBytes;
    slab.capacity = static_cast<std::uint16_t>(
        bytes / sizeClasses[class_idx].bytes);
    slab.inUse = 0;
    slab.live = true;
    slab.bitmap.assign((slab.capacity + 63) / 64, 0);
    backingPages_ += Pfn{1} << slab.order;
    partial_[class_idx].push_back(id);
    return id;
}

void
SlabAllocator::releaseSlabPage(std::uint32_t slab_id)
{
    Slab &slab = slabs_[slab_id];
    ctg_assert(slab.live && slab.inUse == 0);
    kernel_.freePages(slab.page);
    ctg_assert(backingPages_ >= (Pfn{1} << slab.order));
    backingPages_ -= Pfn{1} << slab.order;
    slab.live = false;
    slab.page = invalidPfn;
    recycledIds_.push_back(slab_id);
}

SlabAllocator::ObjHandle
SlabAllocator::allocObject(std::uint32_t size_bytes)
{
    const unsigned class_idx = classIndexFor(size_bytes);
    const std::uint32_t id = acquireSlab(class_idx);
    if (id == 0xffffffffu)
        return 0;

    Slab &slab = slabs_[id];
    ctg_assert(slab.inUse < slab.capacity);
    // Find a clear bit.
    std::uint32_t slot = 0;
    for (std::size_t w = 0; w < slab.bitmap.size(); ++w) {
        const std::uint64_t word = slab.bitmap[w];
        if (word != ~std::uint64_t{0}) {
            const unsigned bit = static_cast<unsigned>(
                __builtin_ctzll(~word));
            slot = static_cast<std::uint32_t>(w * 64 + bit);
            if (slot < slab.capacity) {
                slab.bitmap[w] |= std::uint64_t{1} << bit;
                break;
            }
        }
        if (w + 1 == slab.bitmap.size())
            panic("slab bookkeeping inconsistent");
    }
    ++slab.inUse;
    ++liveObjects_;
    if (slab.inUse == slab.capacity) {
        auto &list = partial_[class_idx];
        list.erase(std::find(list.begin(), list.end(), id));
    }
    return (static_cast<ObjHandle>(id) + 1) << 16 | slot;
}

void
SlabAllocator::freeObject(ObjHandle handle)
{
    ctg_assert(handle != 0);
    const auto id = static_cast<std::uint32_t>((handle >> 16) - 1);
    const auto slot = static_cast<std::uint32_t>(handle & 0xffff);
    ctg_assert(id < slabs_.size());
    Slab &slab = slabs_[id];
    ctg_assert(slab.live && slot < slab.capacity);
    std::uint64_t &word = slab.bitmap[slot / 64];
    const std::uint64_t bit = std::uint64_t{1} << (slot % 64);
    ctg_assert(word & bit);
    word &= ~bit;

    const bool was_full = slab.inUse == slab.capacity;
    --slab.inUse;
    --liveObjects_;
    if (was_full)
        partial_[slab.classIdx].push_back(id);
    if (slab.inUse == 0) {
        auto &list = partial_[slab.classIdx];
        list.erase(std::find(list.begin(), list.end(), id));
        if (emptyCached_.size() < emptyCacheCap)
            emptyCached_.push_back(id);
        else
            releaseSlabPage(id);
    }
}

std::uint64_t
SlabAllocator::shrink(std::uint64_t target_pages)
{
    std::uint64_t freed = 0;
    while (freed < target_pages && !emptyCached_.empty()) {
        const std::uint32_t id = emptyCached_.back();
        emptyCached_.pop_back();
        freed += Pfn{1} << slabs_[id].order;
        releaseSlabPage(id);
    }
    return freed;
}

} // namespace ctg
