/**
 * @file
 * Slab allocator (SLUB-like) for kernel small objects.
 *
 * Objects are packed into slabs of one or more pages obtained from
 * the page allocator as unmovable memory. A slab page stays allocated
 * while any object on it lives — the classic mechanism by which a
 * single long-lived kernel object pins a page (and its 2 MB block)
 * forever. Empty slabs are cached and released by the shrinker under
 * memory pressure.
 */

#ifndef CTG_KERNEL_SLAB_HH
#define CTG_KERNEL_SLAB_HH

#include <cstdint>
#include <vector>

#include "base/types.hh"
#include "kernel/kernel.hh"

namespace ctg
{

namespace serde
{
class Writer;
class Reader;
} // namespace serde

/**
 * Size-class slab allocator backed by kernel pages.
 */
class SlabAllocator : public Shrinker
{
  public:
    /** Opaque object handle; 0 is invalid. */
    using ObjHandle = std::uint64_t;

    explicit SlabAllocator(Kernel &kernel,
                           AllocSource src = AllocSource::Slab);

    /** Checkpoint restore: adopt the serialized slab table, partial
     * lists and empty cache; re-registers as a shrinker. */
    SlabAllocator(Kernel &kernel, serde::Reader &in,
                  AllocSource src = AllocSource::Slab);

    ~SlabAllocator() override;

    SlabAllocator(const SlabAllocator &) = delete;
    SlabAllocator &operator=(const SlabAllocator &) = delete;

    /** Allocate an object of the given byte size (rounded up to a
     * size class). Returns 0 if backing pages cannot be allocated. */
    ObjHandle allocObject(std::uint32_t size_bytes);

    /** Free a previously allocated object. */
    void freeObject(ObjHandle handle);

    /** Pages currently backing slabs (live + cached empty). */
    std::uint64_t backingPages() const { return backingPages_; }

    /** Live objects across all classes. */
    std::uint64_t liveObjects() const { return liveObjects_; }

    /** Release cached empty slabs (memory-pressure hook). */
    std::uint64_t shrink(std::uint64_t target_pages) override;

    /** Largest object size supported. */
    static constexpr std::uint32_t maxObjectBytes = 8192;

    /** Serialize the full allocator state (checkpoint). */
    void saveTo(serde::Writer &out) const;

  private:
    struct Slab
    {
        Pfn page = invalidPfn;
        std::uint8_t order = 0;
        std::uint16_t capacity = 0;
        std::uint16_t inUse = 0;
        std::uint32_t classIdx = 0;
        bool live = false;
        std::vector<std::uint64_t> bitmap; //!< set bit = slot in use
    };

    static unsigned classIndexFor(std::uint32_t size_bytes);

    /** Get a slab with a free slot for the class; may allocate. */
    std::uint32_t acquireSlab(unsigned class_idx);

    void releaseSlabPage(std::uint32_t slab_id);

    Kernel &kernel_;
    AllocSource source_;
    std::vector<Slab> slabs_;
    std::vector<std::uint32_t> recycledIds_;
    /** Per class: slab ids with at least one free slot. */
    std::vector<std::vector<std::uint32_t>> partial_;
    /** Fully-empty slabs kept cached for reuse. */
    std::vector<std::uint32_t> emptyCached_;
    std::uint64_t backingPages_ = 0;
    std::uint64_t liveObjects_ = 0;

    static constexpr std::size_t emptyCacheCap = 32;
};

} // namespace ctg

#endif // CTG_KERNEL_SLAB_HH
