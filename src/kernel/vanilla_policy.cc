#include "kernel/vanilla_policy.hh"

#include "base/serde.hh"

namespace ctg
{

void
setBlockPinned(PhysMem &mem, Pfn head, bool pinned)
{
    mem.setBlockPinned(head, pinned);
}

VanillaPolicy::VanillaPolicy(PhysMem &mem)
    : mem_(mem), allocator_(mem, 0, mem.numFrames(), "vanilla")
{}

VanillaPolicy::VanillaPolicy(PhysMem &mem, serde::Reader &in)
    : mem_(mem), allocator_(mem, in)
{
    if (allocator_.startPfn() != 0 ||
        allocator_.endPfn() != mem.numFrames())
        throw serde::Error(
            "vanilla policy: allocator coverage is not whole-machine");
}

void
VanillaPolicy::saveTo(serde::Writer &out) const
{
    allocator_.saveTo(out);
}

Pfn
VanillaPolicy::alloc(const AllocRequest &req)
{
    return allocator_.allocPages(req.order, req.mt, req.source,
                                 req.owner);
}

void
VanillaPolicy::free(Pfn head)
{
    allocator_.freePages(head);
}

Pfn
VanillaPolicy::allocGigantic(AllocSource src, std::uint64_t owner)
{
    return allocator_.allocGigantic(MigrateType::Movable, src, owner);
}

Pfn
VanillaPolicy::pin(Pfn head)
{
    // Stock Linux pins in place: the page becomes unmovable wherever
    // it happens to sit, polluting its pageblock.
    setBlockPinned(mem_, head, true);
    return head;
}

void
VanillaPolicy::unpin(Pfn head)
{
    setBlockPinned(mem_, head, false);
}

void
VanillaPolicy::tick(std::uint32_t now_seconds)
{
    mem_.nowSeconds = now_seconds;
}

std::uint64_t
VanillaPolicy::freeUserPages() const
{
    return allocator_.freePageCount();
}

std::uint64_t
VanillaPolicy::freeKernelPages() const
{
    return allocator_.freePageCount();
}

std::pair<Pfn, Pfn>
VanillaPolicy::unmovableRegion() const
{
    return {0, 0};
}

} // namespace ctg
