/**
 * @file
 * Baseline Linux-like placement policy: one buddy allocator over all
 * of physical memory. Unmovable allocations mix freely with movable
 * ones through migratetype fallback — the behaviour the paper's
 * Section 2 measures in production.
 */

#ifndef CTG_KERNEL_VANILLA_POLICY_HH
#define CTG_KERNEL_VANILLA_POLICY_HH

#include "kernel/policy.hh"
#include "mem/auditor.hh"

namespace ctg
{

/** Single-region policy matching stock Linux 5.12 behaviour. */
class VanillaPolicy : public MemPolicy
{
  public:
    explicit VanillaPolicy(PhysMem &mem);

    /** Checkpoint restore: adopt the serialized allocator state (the
     * frame table must already be restored). */
    VanillaPolicy(PhysMem &mem, serde::Reader &in);

    Pfn alloc(const AllocRequest &req) override;
    void free(Pfn head) override;
    Pfn allocGigantic(AllocSource src, std::uint64_t owner) override;
    Pfn pin(Pfn head) override;
    void unpin(Pfn head) override;
    void tick(std::uint32_t now_seconds) override;
    std::uint64_t freeUserPages() const override;
    std::uint64_t freeKernelPages() const override;
    std::pair<Pfn, Pfn> unmovableRegion() const override;
    BuddyAllocator &movableAllocator() override { return allocator_; }
    PhysMem &mem() override { return mem_; }

    void
    regStats(StatGroup group) const override
    {
        allocator_.regStats(group.group("mem.buddy"));
    }

    void
    attachAuditorChecks(MemAuditor &auditor) override
    {
        auditor.addAllocator(&allocator_);
    }

    const BuddyAllocator &allocator() const { return allocator_; }

    void saveTo(serde::Writer &out) const override;

  private:
    PhysMem &mem_;
    BuddyAllocator allocator_;
};

/** Set/clear the pinned flag on every frame of a block. */
void setBlockPinned(PhysMem &mem, Pfn head, bool pinned);

} // namespace ctg

#endif // CTG_KERNEL_VANILLA_POLICY_HH
