#include "mem/auditor.hh"

#include <algorithm>

#include "mem/scanner.hh"

namespace ctg
{

std::string
AuditReport::summary(std::size_t limit) const
{
    if (violations.empty())
        return "audit clean";
    std::string out = detail::formatMessage(
        "%zu violation(s):", violations.size());
    const std::size_t shown = std::min(limit, violations.size());
    for (std::size_t i = 0; i < shown; ++i) {
        out += "\n  ";
        out += violations[i];
    }
    if (shown < violations.size())
        out += "\n  ...";
    return out;
}

MemAuditor::MemAuditor(const PhysMem &mem)
    : mem_(mem)
{
}

void
MemAuditor::addAllocator(const BuddyAllocator *alloc)
{
    ctg_assert(alloc != nullptr);
    allocators_.push_back(alloc);
}

void
MemAuditor::addCheck(std::string name, Check check)
{
    ctg_assert(check != nullptr);
    checks_.emplace_back(std::move(name), std::move(check));
}

void
MemAuditor::auditCoverage(const BuddyAllocator &alloc,
                          AuditReport &report) const
{
    const FrameArray &frames = mem_.frames();
    const char *name = alloc.name().c_str();
    const Pfn end = alloc.endPfn();
    std::uint64_t walk_free = 0;

    Pfn pfn = alloc.startPfn();
    while (pfn < end) {
        const auto head = frames.frame(pfn);
        if (!head.isHead()) {
            // Resync at the next head so one corrupt frame does not
            // cascade into a violation per page.
            const Pfn gap_start = pfn;
            while (pfn < end && !frames.frame(pfn).isHead())
                ++pfn;
            report.violation(
                "%s: frames [%llu, %llu) belong to no block head",
                name, static_cast<unsigned long long>(gap_start),
                static_cast<unsigned long long>(pfn));
            continue;
        }

        Pfn span = Pfn{1} << head.order();
        if (pfn + span > end) {
            report.violation(
                "%s: block at %llu order %u overruns coverage end "
                "%llu", name, static_cast<unsigned long long>(pfn),
                unsigned(head.order()),
                static_cast<unsigned long long>(end));
            span = end - pfn;
        }

        if (head.isFree()) {
            walk_free += span;
            if (head.isPinned())
                report.violation("%s: free head %llu is pinned", name,
                                 static_cast<unsigned long long>(pfn));
            for (Pfn p = pfn + 1; p < pfn + span; ++p) {
                const auto f = frames.frame(p);
                if (!f.isFree() || f.isHead() || f.isPinned()) {
                    report.violation(
                        "%s: member %llu of free block %llu has "
                        "flags %u", name,
                        static_cast<unsigned long long>(p),
                        static_cast<unsigned long long>(pfn),
                        unsigned(f.flags()));
                }
            }
            // MIGRATE_ISOLATE coherence: a free block sits on the
            // Isolate list exactly when its pageblocks are tagged
            // Isolate. (General list-vs-pageblock tag agreement is
            // NOT an invariant — frees list by the head's pageblock
            // and order-10 blocks span two pageblocks — but
            // isolation boundaries are maxOrder-aligned, so Isolate
            // tagging is uniform across any free block.)
            std::uint64_t isolated_blocks = 0, total_blocks = 0;
            for (Pfn p = pfn; p < pfn + span; p += pagesPerHuge) {
                ++total_blocks;
                if (mem_.blockMt(p) == MigrateType::Isolate)
                    ++isolated_blocks;
            }
            if (span >= pagesPerHuge && isolated_blocks != 0 &&
                isolated_blocks != total_blocks) {
                report.violation(
                    "%s: free block %llu straddles the isolation "
                    "boundary", name,
                    static_cast<unsigned long long>(pfn));
            }
            const bool on_isolate_list =
                head.migrateType() == MigrateType::Isolate;
            const bool in_isolated_block =
                mem_.blockMt(pfn) == MigrateType::Isolate;
            if (on_isolate_list != in_isolated_block) {
                report.violation(
                    "%s: free block %llu on %s list but pageblock "
                    "tagged %s", name,
                    static_cast<unsigned long long>(pfn),
                    migrateTypeName(head.migrateType()),
                    migrateTypeName(mem_.blockMt(pfn)));
            }
        } else {
            for (Pfn p = pfn + 1; p < pfn + span; ++p) {
                const auto f = frames.frame(p);
                if (f.isFree() || f.isHead() ||
                    f.order() != head.order()) {
                    report.violation(
                        "%s: member %llu of allocated block %llu "
                        "disagrees with its head (flags %u order %u)",
                        name, static_cast<unsigned long long>(p),
                        static_cast<unsigned long long>(pfn),
                        unsigned(f.flags()), unsigned(f.order()));
                }
            }
        }
        pfn += span;
    }

    // Page conservation: the frame walk and the free lists must
    // account the same number of free pages.
    if (walk_free != alloc.freePageCount()) {
        report.violation(
            "%s: frame walk sees %llu free pages but free lists "
            "account %llu", name,
            static_cast<unsigned long long>(walk_free),
            static_cast<unsigned long long>(alloc.freePageCount()));
    }
}

void
MemAuditor::auditTiling(AuditReport &report) const
{
    std::vector<std::pair<Pfn, Pfn>> spans;
    for (const BuddyAllocator *alloc : allocators_) {
        if (alloc->startPfn() != alloc->endPfn())
            spans.emplace_back(alloc->startPfn(), alloc->endPfn());
    }
    std::sort(spans.begin(), spans.end());

    Pfn cursor = 0;
    for (const auto &[lo, hi] : spans) {
        if (lo < cursor) {
            report.violation(
                "coverages overlap at [%llu, %llu)",
                static_cast<unsigned long long>(lo),
                static_cast<unsigned long long>(std::min(cursor, hi)));
        } else if (requireFullCoverage_ && lo != cursor) {
            report.violation(
                "frames [%llu, %llu) belong to no allocator",
                static_cast<unsigned long long>(cursor),
                static_cast<unsigned long long>(lo));
        }
        cursor = std::max(cursor, hi);
    }
    if (cursor > mem_.numFrames()) {
        report.violation(
            "coverage end %llu exceeds physical memory %llu",
            static_cast<unsigned long long>(cursor),
            static_cast<unsigned long long>(mem_.numFrames()));
    } else if (requireFullCoverage_ && cursor != mem_.numFrames()) {
        report.violation(
            "frames [%llu, %llu) belong to no allocator",
            static_cast<unsigned long long>(cursor),
            static_cast<unsigned long long>(mem_.numFrames()));
    }
}

void
MemAuditor::auditContigIndex(AuditReport &report) const
{
    const ContigIndex &index = mem_.contigIndex();
    const Pfn n = mem_.numFrames();

    // Machine-wide page counters against one reference frame walk.
    std::uint64_t free_pages = 0, unmovable = 0, pinned = 0;
    std::array<std::uint64_t, numAllocSources> by_source{};
    for (Pfn pfn = 0; pfn < n; ++pfn) {
        const auto f = mem_.frame(pfn);
        if (f.isFree()) {
            ++free_pages;
            continue;
        }
        if (f.isPinned())
            ++pinned;
        if (f.isUnmovableAllocation()) {
            ++unmovable;
            ++by_source[static_cast<unsigned>(f.source())];
        }
    }
    const auto mismatch = [&report](const char *what,
                                    std::uint64_t index_value,
                                    std::uint64_t scan_value) {
        if (index_value == scan_value)
            return;
        report.violation(
            "contig index %s = %llu but reference scan sees %llu",
            what, static_cast<unsigned long long>(index_value),
            static_cast<unsigned long long>(scan_value));
    };
    mismatch("free_pages", index.freePages(), free_pages);
    mismatch("unmovable_pages", index.unmovablePages(), unmovable);
    mismatch("pinned_pages", index.pinnedPages(), pinned);
    for (unsigned src = 0; src < numAllocSources; ++src) {
        mismatch(allocSourceName(static_cast<AllocSource>(src)),
                 index.unmovableBySource()[src], by_source[src]);
    }

    // Per-order block counters for the orders the figures report.
    const unsigned orders[] = {1, scan::order2M, scan::order4M,
                               scan::order32M, scan::order1G};
    for (const unsigned order : orders) {
        mismatch("fully_free_blocks",
                 index.fullyFreeBlocks(order),
                 scan::reference::freeAlignedBlocks(mem_, 0, n,
                                                    order));
        mismatch("tainted_blocks", index.taintedBlocks(order),
                 scan::reference::unmovableAlignedBlocks(mem_, 0, n,
                                                         order));
    }

    // One interior subrange, exercising the tree-node query path.
    const Pfn span = Pfn{1} << scan::order2M;
    const Pfn lo = (n / 4) & ~(span - 1);
    const Pfn hi = (3 * n / 4) & ~(span - 1);
    if (lo < hi) {
        mismatch("subrange fully_free_blocks",
                 index.fullyFreeBlocksIn(lo, hi, scan::order2M),
                 scan::reference::freeAlignedBlocks(mem_, lo, hi,
                                                    scan::order2M));
        mismatch("subrange free_pages", index.freePagesIn(lo, hi),
                 scan::reference::freePages(mem_, lo, hi));
    }

    // Descent-query cross-check (DESIGN.md §12): the mixed-pageblock
    // enumeration the compaction hot path relies on must agree with a
    // reference classification of every pageblock, and the per-block
    // class counts must re-derive from the frames.
    std::uint64_t mixed_blocks = 0;
    Pfn enumerated = index.firstMixedBlock(0, n);
    for (Pfn block = 0; block < n; block += pagesPerHuge) {
        const Pfn block_end = std::min<Pfn>(block + pagesPerHuge, n);
        std::uint64_t b_free = 0, b_unmov = 0, b_pinned = 0;
        for (Pfn pfn = block; pfn < block_end; ++pfn) {
            const auto f = mem_.frame(pfn);
            if (f.isFree())
                ++b_free;
            else if (f.isUnmovableAllocation())
                ++b_unmov;
            if (!f.isFree() && f.isPinned())
                ++b_pinned;
        }
        const std::uint64_t b_movable =
            (block_end - block) - b_free - b_unmov;
        const ContigIndex::BlockClass cls = index.blockClass(block);
        mismatch("blockClass.free", cls.free, b_free);
        mismatch("blockClass.unmovable", cls.unmovable, b_unmov);
        mismatch("blockClass.pinned", cls.pinned, b_pinned);
        mismatch("blockClass.movableAlloc", cls.movableAlloc,
                 b_movable);
        if (b_free > 0 && b_movable > 0) {
            ++mixed_blocks;
            if (enumerated != block) {
                report.violation(
                    "contig index mixed-block enumeration yields "
                    "%llu where reference scan sees mixed block %llu",
                    static_cast<unsigned long long>(enumerated),
                    static_cast<unsigned long long>(block));
            }
            if (enumerated != invalidPfn)
                enumerated = index.nextMixedBlock(enumerated, n);
        }
    }
    if (enumerated != invalidPfn) {
        report.violation(
            "contig index mixed-block enumeration continues at %llu "
            "past the last reference mixed block",
            static_cast<unsigned long long>(enumerated));
    }
    mismatch("mixed_blocks", index.mixedBlocksIn(0, n), mixed_blocks);
}

AuditReport
MemAuditor::audit() const
{
    AuditReport report;

    for (const BuddyAllocator *alloc : allocators_) {
        std::vector<std::string> list_violations;
        alloc->auditFreeLists(list_violations);
        for (std::string &msg : list_violations) {
            if (report.violations.size() < AuditReport::maxViolations)
                report.violations.push_back(std::move(msg));
        }
        ++report.checksRun;

        auditCoverage(*alloc, report);
        ++report.checksRun;
    }

    auditTiling(report);
    ++report.checksRun;

    auditContigIndex(report);
    ++report.checksRun;

    for (const auto &[name, check] : checks_) {
        const std::size_t before = report.violations.size();
        check(report);
        ++report.checksRun;
        // Attribute new violations to the check that found them.
        for (std::size_t i = before; i < report.violations.size(); ++i)
            report.violations[i] = name + ": " + report.violations[i];
    }

    ++stats_.audits;
    stats_.violations += report.violations.size();
    return report;
}

void
MemAuditor::auditOrDie() const
{
    const AuditReport report = audit();
    if (!report.ok())
        panic("memory audit failed: %s", report.summary().c_str());
}

void
MemAuditor::schedulePeriodic(EventQueue &eventq, Tick period,
                             std::uint64_t count)
{
    if (count == 0)
        return;
    eventq.schedule(
        period,
        [this, &eventq, period, count] {
            auditOrDie();
            schedulePeriodic(eventq, period, count - 1);
        },
        EventPriority::Maintenance);
}

void
MemAuditor::regStats(StatGroup group) const
{
    group.gauge("audits", [this] { return double(stats_.audits); },
                "system-wide invariant audits run");
    group.gauge("violations",
                [this] { return double(stats_.violations); },
                "cumulative violations found (0 in a healthy run)");
}

} // namespace ctg
