/**
 * @file
 * Cross-subsystem memory invariant auditor.
 *
 * BuddyAllocator::checkInvariants verifies one allocator's free
 * lists; the MemAuditor extends that into a system-wide pass over
 * everything that shares a PhysMem:
 *
 *  - every audited allocator's free lists (alignment, links, counts);
 *  - the frame table against the free lists: each coverage tiles
 *    exactly into head-led blocks, members agree with their head,
 *    and the pages the frame walk sees free equal the pages the
 *    free lists account — page conservation;
 *  - allocator coverages are disjoint and (by default) tile all of
 *    physical memory;
 *  - MIGRATE_ISOLATE coherence between pageblock tags and the list a
 *    free block sits on;
 *  - any number of registered higher-layer checks (region
 *    accounting, confinement, owner-registry conservation,
 *    migration-table consistency) appended via addCheck() — the
 *    auditor lives below those layers and must not depend on them.
 *
 * An audit either collects violations into an AuditReport (chaos
 * tests assert the report stays green after every injected fault) or
 * panics via auditOrDie(). schedulePeriodic() re-arms the audit on an
 * event queue for long hardware-driven runs.
 */

#ifndef CTG_MEM_AUDITOR_HH
#define CTG_MEM_AUDITOR_HH

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "base/logging.hh"
#include "base/stat_registry.hh"
#include "mem/buddy.hh"
#include "mem/physmem.hh"
#include "sim/eventq.hh"

namespace ctg
{

/** Outcome of one audit pass. */
struct AuditReport
{
    /** Human-readable violation records, capped at maxViolations so
     * a corrupt run cannot allocate unboundedly. */
    std::vector<std::string> violations;
    /** Individual checks executed (not violations). */
    std::uint64_t checksRun = 0;

    static constexpr std::size_t maxViolations = 64;

    bool ok() const { return violations.empty(); }

    template <typename... Args>
    void
    violation(const char *fmt, Args... args)
    {
        if (violations.size() >= maxViolations)
            return;
        violations.push_back(
            detail::formatMessage(fmt, args...));
    }

    /** First few violations joined for panic/log messages. */
    std::string summary(std::size_t limit = 8) const;
};

/**
 * System-wide invariant auditor over one PhysMem.
 */
class MemAuditor
{
  public:
    using Check = std::function<void(AuditReport &)>;

    explicit MemAuditor(const PhysMem &mem);

    /** Audit this allocator's free lists and coverage. The allocator
     * must outlive the auditor. */
    void addAllocator(const BuddyAllocator *alloc);

    /** Append a named higher-layer check. */
    void addCheck(std::string name, Check check);

    /** Require audited coverages to tile [0, numFrames) exactly
     * (default on; disable for partial-memory test rigs). */
    void requireFullCoverage(bool require)
    {
        requireFullCoverage_ = require;
    }

    /** Run every check; never panics. */
    AuditReport audit() const;

    /** Run every check and panic with a summary on any violation. */
    void auditOrDie() const;

    /**
     * Audit every `period` ticks on the event queue, `count` times
     * (the queue must drain eventually, so the count is explicit).
     * Panics on violation.
     */
    void schedulePeriodic(EventQueue &eventq, Tick period,
                          std::uint64_t count);

    struct Stats
    {
        std::uint64_t audits = 0;
        std::uint64_t violations = 0;
    };

    const Stats &stats() const { return stats_; }

    /** Register audit counters under the given group
     * (conventionally `<prefix>.audit`). */
    void regStats(StatGroup group) const;

  private:
    /** Frame-table walk of one allocator's coverage. */
    void auditCoverage(const BuddyAllocator &alloc,
                       AuditReport &report) const;

    /** ContigIndex counters vs. a reference full scan: the
     * incremental accounting must be exact at all times, including
     * across fault-injected rollbacks (DESIGN.md §11). */
    void auditContigIndex(AuditReport &report) const;

    /** Coverages sorted, disjoint, optionally tiling the machine. */
    void auditTiling(AuditReport &report) const;

    const PhysMem &mem_;
    std::vector<const BuddyAllocator *> allocators_;
    std::vector<std::pair<std::string, Check>> checks_;
    bool requireFullCoverage_ = true;
    mutable Stats stats_;
};

} // namespace ctg

#endif // CTG_MEM_AUDITOR_HH
