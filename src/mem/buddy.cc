#include "mem/buddy.hh"

#include <algorithm>

#include "base/serde.hh"
#include "base/trace.hh"
#include "sim/fault_injector.hh"

namespace ctg
{

namespace
{

/** Linux-like fallback order: which lists to steal from when the
 * native migratetype lists are empty. Isolate lists are never donors
 * and never requesters. */
const MigrateType fallbackOrder[3][2] = {
    /* Movable     */ {MigrateType::Reclaimable, MigrateType::Unmovable},
    /* Unmovable   */ {MigrateType::Reclaimable, MigrateType::Movable},
    /* Reclaimable */ {MigrateType::Unmovable, MigrateType::Movable},
};

unsigned
mtIndex(MigrateType mt)
{
    return static_cast<unsigned>(mt);
}

} // namespace

BuddyAllocator::BuddyAllocator(PhysMem &mem, Pfn start, Pfn end,
                               std::string name,
                               MigrateType initial_block_mt)
    : mem_(mem), frames_(mem.frames()), start_(start), end_(end),
      name_(std::move(name))
{
    if (start % pagesPerHuge != 0 || end % pagesPerHuge != 0)
        fatal("buddy range [%llu, %llu) not pageblock aligned",
              static_cast<unsigned long long>(start),
              static_cast<unsigned long long>(end));
    if (end > mem.numFrames() || start > end)
        fatal("buddy range exceeds physical memory");

    for (auto &per_mt : heads_)
        for (auto &head : per_mt)
            head = FrameArray::nil;

    for (Pfn pfn = start_; pfn < end_; pfn += pagesPerHuge)
        mem_.setBlockMt(pfn, initial_block_mt);
    for (Pfn pfn = start_; pfn < end_; ++pfn) {
        auto f = frames_.frame(pfn);
        f.reset();
        f.setFree(true);
    }
    freeRangeAsBlocks(start_, end_, initial_block_mt);
    mem_.noteFramesChanged(start_, end_);
}

BuddyAllocator::BuddyAllocator(PhysMem &mem, serde::Reader &in)
    : mem_(mem), frames_(mem.frames())
{
    start_ = in.getU64();
    end_ = in.getU64();
    if (start_ > end_ || end_ > mem.numFrames() ||
        start_ % pagesPerHuge != 0 || end_ % pagesPerHuge != 0)
        throw serde::Error("buddy: serialized coverage invalid");
    name_ = in.getString();
    if (name_.size() > 256)
        throw serde::Error("buddy: allocator name too long");
    claimSmallSteals_ = in.getBool();
    prefScanCap_ = in.getU32();
    if (prefScanCap_ < 1)
        throw serde::Error("buddy: prefScanCap out of range");
    for (auto &per_mt : heads_)
        for (auto &head : per_mt) {
            head = in.getU32();
            if (head != FrameArray::nil &&
                (head < start_ || head >= end_))
                throw serde::Error("buddy: list head out of range");
        }
    for (auto &count : freeCount_) {
        count = in.getU64();
        if (count > end_ - start_)
            throw serde::Error("buddy: free count exceeds coverage");
    }
    for (auto &per_mt : blockCount_)
        for (auto &count : per_mt) {
            count = in.getU64();
            if (count > end_ - start_)
                throw serde::Error(
                    "buddy: block count exceeds coverage");
        }
    Stats &s = stats_;
    for (std::uint64_t *field :
         {&s.allocCalls, &s.freeCalls, &s.splits, &s.merges,
          &s.fallbackAllocs, &s.pageblockSteals, &s.failedAllocs,
          &s.giganticAllocs, &s.giganticFailures,
          &s.injectedFailures})
        *field = in.getU64();
}

void
BuddyAllocator::saveTo(serde::Writer &out) const
{
    out.putU64(start_);
    out.putU64(end_);
    out.putString(name_);
    out.putBool(claimSmallSteals_);
    out.putU32(prefScanCap_);
    for (const auto &per_mt : heads_)
        for (const std::uint32_t head : per_mt)
            out.putU32(head);
    for (const std::uint64_t count : freeCount_)
        out.putU64(count);
    for (const auto &per_mt : blockCount_)
        for (const std::uint64_t count : per_mt)
            out.putU64(count);
    const Stats &s = stats_;
    for (const std::uint64_t field :
         {s.allocCalls, s.freeCalls, s.splits, s.merges,
          s.fallbackAllocs, s.pageblockSteals, s.failedAllocs,
          s.giganticAllocs, s.giganticFailures, s.injectedFailures})
        out.putU64(field);
}

void
BuddyAllocator::pushFree(Pfn head, unsigned order, MigrateType list_mt)
{
    auto f = frames_.frame(head);
    ctg_assert(f.isFree());
    f.setHead(true);
    f.setOrder(order);
    f.setMigrateType(list_mt);

    const unsigned mi = mtIndex(list_mt);
    std::uint32_t &list_head = heads_[mi][order];
    frames_.next(head) = list_head;
    frames_.prev(head) = FrameArray::nil;
    if (list_head != FrameArray::nil)
        frames_.prev(list_head) = static_cast<std::uint32_t>(head);
    list_head = static_cast<std::uint32_t>(head);

    freeCount_[mi] += std::uint64_t{1} << order;
    ++blockCount_[mi][order];
}

void
BuddyAllocator::removeFree(Pfn head)
{
    auto f = frames_.frame(head);
    ctg_assert(f.isFree() && f.isHead());
    const unsigned mi = mtIndex(f.migrateType());
    const unsigned order = f.order();

    const std::uint32_t nxt = frames_.next(head);
    const std::uint32_t prv = frames_.prev(head);
    if (prv != FrameArray::nil)
        frames_.next(prv) = nxt;
    else
        heads_[mi][order] = nxt;
    if (nxt != FrameArray::nil)
        frames_.prev(nxt) = prv;
    frames_.next(head) = FrameArray::nil;
    frames_.prev(head) = FrameArray::nil;
    f.setHead(false);

    ctg_assert(freeCount_[mi] >= (std::uint64_t{1} << order));
    ctg_assert(blockCount_[mi][order] > 0);
    freeCount_[mi] -= std::uint64_t{1} << order;
    --blockCount_[mi][order];
}

Pfn
BuddyAllocator::popFree(MigrateType mt, unsigned order, AddrPref pref)
{
    const unsigned mi = mtIndex(mt);
    std::uint32_t cursor = heads_[mi][order];
    if (cursor == FrameArray::nil)
        return invalidPfn;

    Pfn best = cursor;
    if (pref != AddrPref::None) {
        if (mem_.exactAddrPref() && mem_.contigIndexReads()) {
            const Pfn exact = exactPrefBest(mt, order, pref);
            if (exact != invalidPfn) {
                removeFree(exact);
                return exact;
            }
            // Defensive: the enumeration cannot miss a non-empty
            // list, but fall through to the capped scan if it does.
        }
        unsigned scanned = 0;
        for (std::uint32_t it = cursor;
             it != FrameArray::nil && scanned < prefScanCap_;
             it = frames_.next(it), ++scanned) {
            if ((pref == AddrPref::Low && it < best) ||
                (pref == AddrPref::High && it > best)) {
                best = it;
            }
        }
    }
    removeFree(best);
    return best;
}

Pfn
BuddyAllocator::exactPrefBest(MigrateType mt, unsigned order,
                              AddrPref pref) const
{
    // Candidates are the fully-free aligned order-blocks inside the
    // coverage, enumerated from the preferred end. A candidate is a
    // list entry exactly when its base is a free head of this order
    // on this migratetype's list; other candidates are the interior
    // or halves of differently-shaped free blocks and are skipped —
    // by their containing block where it is known, else by one span.
    const ContigIndex &idx = mem_.contigIndex();
    const Pfn span = Pfn{1} << order;
    Pfn lo = (start_ + span - 1) & ~(span - 1);
    Pfn hi = end_ & ~(span - 1);
    while (lo < hi) {
        const Pfn base = idx.firstFullyFreeSpan(order, lo, hi, pref);
        if (base == invalidPfn)
            return invalidPfn;
        const auto f = frames_.frame(base);
        ctg_assert(f.isFree());
        if (f.isHead() && f.order() == order &&
            f.migrateType() == mt)
            return base;
        // Skip past the free block containing the candidate (the
        // interior of a block holds no list heads). Free non-head
        // frames do not record their block, but the head must sit at
        // one of the coarser alignments of `base`.
        Pfn skip_hi = base + span; // containing block unknown: 1 span
        Pfn skip_lo = base;
        if (f.isHead() && f.order() > order) {
            skip_lo = base;
            skip_hi = base + (Pfn{1} << f.order());
        } else if (!f.isHead()) {
            for (unsigned o = order + 1; o <= maxOrder; ++o) {
                const Pfn h = base & ~((Pfn{1} << o) - 1);
                const auto g = frames_.frame(h);
                if (g.isFree() && g.isHead() && g.order() == o &&
                    base < h + (Pfn{1} << o)) {
                    skip_lo = h;
                    skip_hi = h + (Pfn{1} << o);
                    break;
                }
            }
        }
        if (pref == AddrPref::High)
            hi = std::max(lo, skip_lo & ~(span - 1));
        else
            lo = (skip_hi + span - 1) & ~(span - 1);
    }
    return invalidPfn;
}

Pfn
BuddyAllocator::splitTo(Pfn head, unsigned have, unsigned want,
                        MigrateType list_mt)
{
    while (have > want) {
        --have;
        const Pfn upper = head + (Pfn{1} << have);
        pushFree(upper, have, list_mt);
        ++stats_.splits;
    }
    return head;
}

void
BuddyAllocator::markAllocated(Pfn head, unsigned order, MigrateType mt,
                              AllocSource src, std::uint64_t owner)
{
    const Pfn count = Pfn{1} << order;
    for (Pfn pfn = head; pfn < head + count; ++pfn)
        frames_.frame(pfn).stampAllocated(order, mt, src,
                                          pfn == head);
    // The cold fields live once per block in the side table, keyed
    // by the head; member frames derive them through their order.
    frames_.frame(head).setAllocInfo(owner, mem_.nowSeconds);
    mem_.noteFramesChanged(head, head + count);
}

Pfn
BuddyAllocator::allocPages(unsigned order, MigrateType mt,
                           AllocSource src, std::uint64_t owner,
                           AddrPref pref, bool allow_fallback)
{
    ctg_assert(order <= maxOrder);
    ctg_assert(mt != MigrateType::Isolate);
    ++stats_.allocCalls;

    if (faultInjector().shouldFail(FaultSite::BuddyAllocFail)) {
        ++stats_.failedAllocs;
        ++stats_.injectedFailures;
        CTG_DPRINTF(Buddy, "%s: injected order-%u %s alloc failure",
                    name_.c_str(), order, migrateTypeName(mt));
        return invalidPfn;
    }

    // Native path: smallest sufficient block of the requested type.
    for (unsigned o = order; o <= maxOrder; ++o) {
        const Pfn head = popFree(mt, o, pref);
        if (head == invalidPfn)
            continue;
        splitTo(head, o, order, mt);
        markAllocated(head, order, mt, src, owner);
        return head;
    }

    if (!allow_fallback) {
        ++stats_.failedAllocs;
        return invalidPfn;
    }

    // Fallback path: steal the *largest* block from a victim type to
    // minimize the number of future fallbacks (Linux policy). If the
    // stolen block covers whole pageblocks, retag them to the new
    // type; otherwise the allocation pollutes a foreign pageblock —
    // the scattering mechanism of Section 2.5.
    for (const MigrateType victim : fallbackOrder[mtIndex(mt)]) {
        for (int o = static_cast<int>(maxOrder);
             o >= static_cast<int>(order); --o) {
            const Pfn head =
                popFree(victim, static_cast<unsigned>(o), pref);
            if (head == invalidPfn)
                continue;
            ++stats_.fallbackAllocs;
            CTG_DPRINTF(Buddy,
                        "%s: fallback steal order %d from %s list "
                        "for order-%u %s alloc at pfn %llu",
                        name_.c_str(), o, migrateTypeName(victim),
                        order, migrateTypeName(mt),
                        static_cast<unsigned long long>(head));
            const bool claim = claimSmallSteals_ ||
                               static_cast<unsigned>(o) >= hugeOrder;
            if (claim) {
                // Stealing at pageblock granularity claims the
                // block: retag it and keep the remainder on the new
                // type's lists.
                const Pfn span = Pfn{1} << static_cast<unsigned>(o);
                for (Pfn p = head; p < head + span; p += pagesPerHuge)
                    mem_.setBlockMt(p, mt);
                ++stats_.pageblockSteals;
            }
            // A small dirty steal leaves the remainder with its
            // owner, so the next foreign request falls back again
            // somewhere else — the scattering mechanism.
            splitTo(head, static_cast<unsigned>(o), order,
                    claim ? mt : victim);
            markAllocated(head, order, mt, src, owner);
            return head;
        }
    }

    ++stats_.failedAllocs;
    CTG_DPRINTF(Buddy, "%s: order-%u %s alloc failed (free %llu)",
                name_.c_str(), order, migrateTypeName(mt),
                static_cast<unsigned long long>(freePageCount()));
    return invalidPfn;
}

void
BuddyAllocator::freePages(Pfn head)
{
    auto hf = frames_.frame(head);
    ctg_assert(!hf.isFree());
    ctg_assert(hf.isHead());
    ++stats_.freeCalls;

    unsigned order = hf.order();
    const Pfn count = Pfn{1} << order;
    ctg_assert(inRange(head) && head + count <= end_);
    for (Pfn pfn = head; pfn < head + count; ++pfn) {
        auto f = frames_.frame(pfn);
        ctg_assert(!f.isFree());
        f.reset();
        f.setFree(true);
    }
    mem_.noteFramesChanged(head, head + count);

    if (order > maxOrder) {
        // Gigantic block: return it as maxOrder chunks.
        for (Pfn pfn = head; pfn < head + count;
             pfn += (Pfn{1} << maxOrder)) {
            pushFree(pfn, maxOrder, mem_.blockMt(pfn));
        }
        return;
    }

    // Like Linux, the block joins the free list of its *pageblock's*
    // migratetype, not the type it was allocated with.
    MigrateType list_mt = mem_.blockMt(head);

    // Coalesce with free buddies up to maxOrder.
    Pfn curr = head;
    while (order < maxOrder) {
        const Pfn buddy = curr ^ (Pfn{1} << order);
        if (!inRange(buddy) || buddy + (Pfn{1} << order) > end_)
            break;
        const auto bf = frames_.frame(buddy);
        if (!(bf.isFree() && bf.isHead() && bf.order() == order))
            break;
        removeFree(buddy);
        ++stats_.merges;
        curr = std::min(curr, buddy);
        ++order;
    }
    pushFree(curr, order, list_mt);
}

Pfn
BuddyAllocator::allocGigantic(MigrateType mt, AllocSource src,
                              std::uint64_t owner)
{
    if (faultInjector().shouldFail(FaultSite::BuddyGiganticFail)) {
        ++stats_.giganticFailures;
        ++stats_.injectedFailures;
        CTG_DPRINTF(Buddy, "%s: injected gigantic %s alloc failure",
                    name_.c_str(), migrateTypeName(mt));
        return invalidPfn;
    }

    const Pfn span = pagesPerGiga;
    Pfn first = (start_ + span - 1) & ~(span - 1);
    if (mem_.contigIndexReads()) {
        // Index path: one descent finds the lowest fully-free aligned
        // 1 GB range — the same candidate the linear scan below would
        // settle on (both consider aligned bases low-to-high).
        const Pfn base = mem_.contigIndex().firstFullyFreeSpan(
            gigaOrder, start_, end_, AddrPref::None);
        if (base != invalidPfn) {
            for (Pfn pfn = base; pfn < base + span;) {
                const auto f = frames_.frame(pfn);
                ctg_assert(f.isFree() && f.isHead());
                const Pfn blk = Pfn{1} << f.order();
                removeFree(pfn);
                pfn += blk;
            }
            for (Pfn pfn = base; pfn < base + span;
                 pfn += pagesPerHuge)
                mem_.setBlockMt(pfn, mt);
            markAllocated(base, gigaOrder, mt, src, owner);
            ++stats_.giganticAllocs;
            return base;
        }
        ++stats_.giganticFailures;
        CTG_DPRINTF(Buddy,
                    "%s: gigantic %s alloc found no free 1GB range",
                    name_.c_str(), migrateTypeName(mt));
        return invalidPfn;
    }
    for (Pfn base = first; base + span <= end_; base += span) {
        if (!rangeFullyFree(base, base + span))
            continue;
        // Remove every free head in the range from the lists.
        for (Pfn pfn = base; pfn < base + span;) {
            const auto f = frames_.frame(pfn);
            ctg_assert(f.isFree() && f.isHead());
            const Pfn blk = Pfn{1} << f.order();
            removeFree(pfn);
            pfn += blk;
        }
        for (Pfn pfn = base; pfn < base + span; pfn += pagesPerHuge)
            mem_.setBlockMt(pfn, mt);
        markAllocated(base, gigaOrder, mt, src, owner);
        ++stats_.giganticAllocs;
        return base;
    }
    ++stats_.giganticFailures;
    CTG_DPRINTF(Buddy, "%s: gigantic %s alloc found no free 1GB range",
                name_.c_str(), migrateTypeName(mt));
    return invalidPfn;
}

void
BuddyAllocator::regStats(StatGroup group) const
{
    group.gauge("alloc_calls",
                [this] { return double(stats_.allocCalls); },
                "allocPages invocations");
    group.gauge("free_calls",
                [this] { return double(stats_.freeCalls); },
                "freePages invocations");
    group.gauge("split_events",
                [this] { return double(stats_.splits); },
                "free blocks split to serve a smaller order");
    group.gauge("merge_events",
                [this] { return double(stats_.merges); },
                "buddy coalesces on free");
    group.gauge("fallback_allocs",
                [this] { return double(stats_.fallbackAllocs); },
                "cross-migratetype steals");
    group.gauge("pageblock_steals",
                [this] { return double(stats_.pageblockSteals); },
                "pageblocks retagged by large steals");
    group.gauge("failed_allocs",
                [this] { return double(stats_.failedAllocs); });
    group.gauge("gigantic_allocs",
                [this] { return double(stats_.giganticAllocs); });
    group.gauge("gigantic_failures",
                [this] { return double(stats_.giganticFailures); });
    group.gauge("injected_failures",
                [this] { return double(stats_.injectedFailures); },
                "allocation failures forced by the fault injector");
    group.gauge("free_pages",
                [this] { return double(freePageCount()); },
                "pages currently on the free lists");
    group.gauge("largest_free_order",
                [this] { return double(largestFreeOrder()); },
                "-1 when no free block exists");
}

bool
BuddyAllocator::rangeFullyFree(Pfn lo, Pfn hi) const
{
    ctg_assert(lo >= start_ && hi <= end_ && lo <= hi);
    // The index counts free frames by the same isFree() predicate the
    // walk below evaluates, so the answers are identical.
    if (mem_.contigIndexReads())
        return mem_.contigIndex().freePagesIn(lo, hi) == hi - lo;
    for (Pfn pfn = lo; pfn < hi; ++pfn) {
        if (!frames_.frame(pfn).isFree())
            return false;
    }
    return true;
}

void
BuddyAllocator::splitFreeBlockAt(Pfn cut)
{
    if (cut <= start_ || cut >= end_)
        return;
    // Find the free head covering `cut`, if it straddles.
    Pfn pfn = cut;
    while (pfn > start_ && !frames_.frame(pfn).isHead())
        --pfn;
    const auto f = frames_.frame(pfn);
    if (!f.isFree() || !f.isHead())
        return;
    const Pfn blk_end = pfn + (Pfn{1} << f.order());
    if (blk_end <= cut)
        return;
    const MigrateType list_mt = f.migrateType();
    removeFree(pfn);
    freeRangeAsBlocks(pfn, cut, list_mt);
    freeRangeAsBlocks(cut, blk_end, list_mt);
}

void
BuddyAllocator::relistFreeRange(Pfn lo, Pfn hi,
                                MigrateType new_list_mt)
{
    for (Pfn pfn = lo; pfn < hi;) {
        const auto f = frames_.frame(pfn);
        if (f.isFree() && f.isHead()) {
            const unsigned order = f.order();
            ctg_assert(pfn + (Pfn{1} << order) <= hi);
            if (f.migrateType() != new_list_mt) {
                removeFree(pfn);
                pushFree(pfn, order, new_list_mt);
            }
            pfn += Pfn{1} << order;
        } else {
            ++pfn;
        }
    }
}

void
BuddyAllocator::isolateRange(Pfn lo, Pfn hi)
{
    // Max-order alignment guarantees buddy coalescing can never
    // produce a free block straddling the isolation boundary.
    constexpr Pfn align = Pfn{1} << maxOrder;
    ctg_assert(lo % align == 0 && hi % align == 0);
    ctg_assert(lo >= start_ && hi <= end_);
    splitFreeBlockAt(lo);
    splitFreeBlockAt(hi);
    for (Pfn pfn = lo; pfn < hi; pfn += pagesPerHuge)
        mem_.setBlockMt(pfn, MigrateType::Isolate);
    relistFreeRange(lo, hi, MigrateType::Isolate);
}

void
BuddyAllocator::unisolateRange(Pfn lo, Pfn hi, MigrateType restore_mt)
{
    ctg_assert(lo % pagesPerHuge == 0 && hi % pagesPerHuge == 0);
    ctg_assert(restore_mt != MigrateType::Isolate);
    for (Pfn pfn = lo; pfn < hi; pfn += pagesPerHuge)
        mem_.setBlockMt(pfn, restore_mt);
    relistFreeRange(lo, hi, restore_mt);
}

void
BuddyAllocator::detachRange(Pfn lo, Pfn hi)
{
    ctg_assert(lo % pagesPerHuge == 0 && hi % pagesPerHuge == 0);
    ctg_assert(lo == start_ || hi == end_);
    ctg_assert(rangeFullyFree(lo, hi));

    // Free blocks may straddle the detach boundary; split such heads
    // first so every free block lies entirely inside or outside.
    splitFreeBlockAt(lo);
    splitFreeBlockAt(hi);

    for (Pfn pfn = lo; pfn < hi;) {
        const auto f = frames_.frame(pfn);
        ctg_assert(f.isFree() && f.isHead());
        const Pfn blk = Pfn{1} << f.order();
        ctg_assert(pfn + blk <= hi);
        removeFree(pfn);
        pfn += blk;
    }

    if (lo == start_)
        start_ = hi;
    else
        end_ = lo;
    ctg_assert(start_ <= end_);
}

void
BuddyAllocator::attachRange(Pfn lo, Pfn hi, MigrateType block_mt)
{
    ctg_assert(lo % pagesPerHuge == 0 && hi % pagesPerHuge == 0);
    ctg_assert(hi == start_ || lo == end_ || start_ == end_);
    // detachRange's postcondition: every frame in the range is a
    // plain free frame (fully free, list heads removed). The index
    // is maintained unconditionally, so this holds in O(log n)
    // instead of an O(range) walk.
    ctg_assert(mem_.contigIndex().freePagesIn(lo, hi) == hi - lo);
    // Stale allocation-era fields on those free frames are dead:
    // every reader of a free frame's order/migrateType/owner is
    // guarded by isHead(), and pushFree/markAllocated rewrite all
    // fields before the next read. The leaf bits of a free frame are
    // LeafFree regardless, so no resync is needed either — the
    // handoff costs O(range / 2^maxOrder), not O(range).
    for (Pfn pfn = lo; pfn < hi; pfn += pagesPerHuge)
        mem_.setBlockMt(pfn, block_mt);
    freeRangeAsBlocks(lo, hi, block_mt);
    if (start_ == end_) {
        start_ = lo;
        end_ = hi;
    } else if (hi == start_) {
        start_ = lo;
    } else {
        end_ = hi;
    }
}

void
BuddyAllocator::freeRangeAsBlocks(Pfn lo, Pfn hi, MigrateType list_mt)
{
    Pfn pfn = lo;
    while (pfn < hi) {
        unsigned order = maxOrder;
        while (order > 0 &&
               ((pfn & ((Pfn{1} << order) - 1)) != 0 ||
                pfn + (Pfn{1} << order) > hi)) {
            --order;
        }
        pushFree(pfn, order, list_mt);
        pfn += Pfn{1} << order;
    }
}

std::uint64_t
BuddyAllocator::freePageCount() const
{
    std::uint64_t total = 0;
    for (const std::uint64_t c : freeCount_)
        total += c;
    return total;
}

std::uint64_t
BuddyAllocator::freePageCount(MigrateType list_mt) const
{
    return freeCount_[mtIndex(list_mt)];
}

std::uint64_t
BuddyAllocator::freeBlocks(MigrateType list_mt, unsigned order) const
{
    ctg_assert(order <= maxOrder);
    return blockCount_[mtIndex(list_mt)][order];
}

int
BuddyAllocator::largestFreeOrder() const
{
    for (int o = static_cast<int>(maxOrder); o >= 0; --o) {
        for (unsigned mi = 0; mi < numMigrateTypes; ++mi) {
            if (blockCount_[mi][o] > 0)
                return o;
        }
    }
    return -1;
}

unsigned
BuddyAllocator::auditFreeLists(std::vector<std::string> &out) const
{
    const std::size_t before = out.size();
    const auto report = [&](std::string msg) {
        out.push_back(name_ + ": " + std::move(msg));
    };

    std::uint64_t free_from_lists[numMigrateTypes] = {};
    for (unsigned mi = 0; mi < numMigrateTypes; ++mi) {
        for (unsigned o = 0; o <= maxOrder; ++o) {
            std::uint64_t blocks = 0;
            std::uint32_t prev = FrameArray::nil;
            // Cap the walk so a cyclic next link cannot hang us.
            std::uint64_t steps = 0;
            const std::uint64_t max_steps = totalPages() + 1;
            for (std::uint32_t it = heads_[mi][o];
                 it != FrameArray::nil; it = frames_.next(it)) {
                if (++steps > max_steps) {
                    report(detail::formatMessage(
                        "free list mt=%u order=%u does not terminate "
                        "(cyclic links?)", mi, o));
                    break;
                }
                const auto f = frames_.frame(it);
                if (!f.isFree() || !f.isHead())
                    report(detail::formatMessage(
                        "list entry %u not a free head", it));
                if (f.order() != o)
                    report(detail::formatMessage(
                        "list entry %u order %u on list %u", it,
                        f.order(), o));
                if (mtIndex(f.migrateType()) != mi)
                    report(detail::formatMessage(
                        "list entry %u mt mismatch", it));
                if ((it & ((std::uint32_t{1} << o) - 1)) != 0)
                    report(detail::formatMessage(
                        "free head %u misaligned for order %u", it, o));
                if (it < start_ || it + (Pfn{1} << o) > end_)
                    report(detail::formatMessage(
                        "free head %u outside coverage", it));
                if (frames_.prev(it) != prev)
                    report(detail::formatMessage(
                        "broken prev link at %u", it));
                prev = it;
                ++blocks;
                free_from_lists[mi] += std::uint64_t{1} << o;
            }
            if (blocks != blockCount_[mi][o])
                report(detail::formatMessage(
                    "block count mismatch mt=%u order=%u "
                    "(walked %llu, counter %llu)", mi, o,
                    static_cast<unsigned long long>(blocks),
                    static_cast<unsigned long long>(
                        blockCount_[mi][o])));
        }
    }
    for (unsigned mi = 0; mi < numMigrateTypes; ++mi) {
        if (free_from_lists[mi] != freeCount_[mi])
            report(detail::formatMessage(
                "free count mismatch for mt=%u (lists %llu, "
                "counter %llu)", mi,
                static_cast<unsigned long long>(free_from_lists[mi]),
                static_cast<unsigned long long>(freeCount_[mi])));
    }
    return static_cast<unsigned>(out.size() - before);
}

void
BuddyAllocator::checkInvariants() const
{
    std::vector<std::string> violations;
    if (auditFreeLists(violations) != 0)
        panic("%s", violations.front().c_str());
}

} // namespace ctg
