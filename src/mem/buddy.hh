/**
 * @file
 * Linux-style binary buddy allocator with per-migratetype free lists.
 *
 * The allocator reproduces the mechanisms the paper's Section 2
 * identifies as the root cause of unmovable scattering:
 *
 *  - separate free lists per migratetype (MOVABLE/UNMOVABLE/RECLAIMABLE)
 *    over 2 MB pageblocks tagged with an owning migratetype;
 *  - fallback allocation that steals the *largest* free block from
 *    another migratetype when the native lists are empty, retagging
 *    whole pageblocks when the stolen block is large enough — this is
 *    how a single unmovable allocation lands in (and poisons) a
 *    movable pageblock;
 *  - frees return blocks to the free list of the *pageblock's*
 *    migratetype, perpetuating the mixing.
 *
 * An allocator instance covers a contiguous PFN range of a PhysMem.
 * The Contiguitas region manager runs two instances side by side and
 * moves pageblock-aligned ranges between them (attachRange /
 * detachRange), which is how the movable/unmovable boundary moves.
 */

#ifndef CTG_MEM_BUDDY_HH
#define CTG_MEM_BUDDY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/stat_registry.hh"
#include "base/types.hh"
#include "mem/physmem.hh"

namespace ctg
{

namespace serde
{
class Writer;
class Reader;
} // namespace serde

/**
 * Buddy allocator over [start, end) page frames of a PhysMem.
 */
class BuddyAllocator
{
  public:
    /** Allocation/free event counters. */
    struct Stats
    {
        std::uint64_t allocCalls = 0;
        std::uint64_t freeCalls = 0;
        std::uint64_t splits = 0;
        std::uint64_t merges = 0;
        std::uint64_t fallbackAllocs = 0;
        std::uint64_t pageblockSteals = 0;
        std::uint64_t failedAllocs = 0;
        std::uint64_t giganticAllocs = 0;
        std::uint64_t giganticFailures = 0;
        /** Failures forced by the fault injector (also counted in
         * failedAllocs / giganticFailures). */
        std::uint64_t injectedFailures = 0;
    };

    /**
     * Create an allocator covering [start, end). The range must be
     * pageblock-aligned and initially unallocated; all of it is added
     * to the free lists with the given initial pageblock migratetype.
     */
    BuddyAllocator(PhysMem &mem, Pfn start, Pfn end, std::string name,
                   MigrateType initial_block_mt = MigrateType::Movable);

    /**
     * Checkpoint restore: adopt serialized coverage, free-list
     * heads, counts and stats without seeding any free lists. The
     * frame table (which holds the intrusive list links) must
     * already be restored; the MemAuditor's free-list audit is the
     * deep validation pass. Throws serde::Error on malformed input.
     */
    BuddyAllocator(PhysMem &mem, serde::Reader &in);

    /** Serialize coverage, free-list heads, counts, knobs and stats
     * (checkpoint). The lists' membership lives in the FrameArray
     * links, serialized with PhysMem. */
    void saveTo(serde::Writer &out) const;

    /**
     * Allocate a 2^order page block.
     *
     * @param order buddy order (0..maxOrder)
     * @param mt requested migratetype
     * @param src allocation source tag (Figure 6 accounting)
     * @param owner opaque owner handle stored in the frame
     * @param pref address preference within the free list
     * @param allow_fallback permit cross-migratetype stealing
     * @return head PFN or invalidPfn on failure
     */
    Pfn allocPages(unsigned order, MigrateType mt, AllocSource src,
                   std::uint64_t owner = 0,
                   AddrPref pref = AddrPref::None,
                   bool allow_fallback = true);

    /** Free an allocated block by its head PFN (order is recorded). */
    void freePages(Pfn head);

    /**
     * Allocate a 1 GB aligned gigantic block by scanning for a fully
     * free aligned range (the Linux alloc_contig_range analogue).
     * @return head PFN or invalidPfn if no such range exists.
     */
    Pfn allocGigantic(MigrateType mt, AllocSource src,
                      std::uint64_t owner = 0);

    /** True if every frame in [lo, hi) is free. */
    bool rangeFullyFree(Pfn lo, Pfn hi) const;

    /**
     * Remove a fully-free pageblock-aligned range at either edge of
     * the coverage from this allocator (for region resizing). Frames
     * are left marked free but belong to no free list afterwards.
     */
    void detachRange(Pfn lo, Pfn hi);

    /**
     * Extend coverage with a pageblock-aligned range adjacent to the
     * current coverage; its frames are inserted as free blocks and the
     * pageblocks retagged. The range must be fully free with no
     * free-list heads — detachRange's postcondition — which makes the
     * handoff O(range / 2^maxOrder) rather than O(range).
     */
    void attachRange(Pfn lo, Pfn hi, MigrateType block_mt);

    /**
     * Quarantine a pageblock-aligned range (MIGRATE_ISOLATE
     * analogue): its pageblocks are retagged Isolate, free blocks in
     * it move to the Isolate lists, and frees inside it land on the
     * Isolate lists too — so the range drains as it is evacuated and
     * nothing new is placed there.
     */
    void isolateRange(Pfn lo, Pfn hi);

    /** Undo isolation, retagging pageblocks to restore_mt and moving
     * the Isolate free blocks back to that list. */
    void unisolateRange(Pfn lo, Pfn hi, MigrateType restore_mt);

    /** @{ Coverage and occupancy queries. */
    Pfn startPfn() const { return start_; }
    Pfn endPfn() const { return end_; }
    std::uint64_t totalPages() const { return end_ - start_; }
    std::uint64_t freePageCount() const;
    std::uint64_t freePageCount(MigrateType list_mt) const;
    std::uint64_t freeBlocks(MigrateType list_mt, unsigned order) const;
    /** Largest order with a nonempty free list, or -1 if none. */
    int largestFreeOrder() const;
    /** @} */

    const Stats &stats() const { return stats_; }

    /** Register this allocator's counters (and occupancy gauges)
     * under the given group, e.g. `<server>.mem.buddy.*`. */
    void regStats(StatGroup group) const;

    const std::string &name() const { return name_; }
    PhysMem &mem() { return mem_; }

    /** Verify free-list integrity; panics on violation (tests). */
    void checkInvariants() const;

    /**
     * Non-panicking form of checkInvariants: append a description of
     * every free-list violation to `out` (the MemAuditor collects
     * these across allocators). Safe on corrupted state — list walks
     * are iteration-capped so a cyclic link cannot hang the audit.
     * @return the number of violations appended.
     */
    unsigned auditFreeLists(std::vector<std::string> &out) const;

    /** Ablation knob: when true, small fallback steals move the
     * block remainder to the requester's list (pre-4.x Linux
     * behaviour) instead of leaving it with the victim. The default
     * (false) matches modern Linux and produces the unmovable
     * scattering the paper measures. */
    void
    setClaimRemainderOnSmallSteal(bool claim)
    {
        claimSmallSteals_ = claim;
    }

    /** How many free-list entries an AddrPref allocation scans for
     * the best-placed block. Small regions (the Contiguitas
     * unmovable region) can afford deeper scans for a stronger
     * away-from-border bias. */
    void
    setPrefScanCap(unsigned cap)
    {
        ctg_assert(cap >= 1);
        prefScanCap_ = cap;
    }

  private:
    /** Insert a free block at the front of list (list_mt, order). */
    void pushFree(Pfn head, unsigned order, MigrateType list_mt);

    /** Unlink a free head from its list (fields identify the list). */
    void removeFree(Pfn head);

    /** Pop a block from (mt, order) honoring the address preference;
     * scans at most prefScanCap list entries — or, when
     * PhysMem::exactAddrPref() is on, finds the exact extreme entry
     * via an index descent. */
    Pfn popFree(MigrateType mt, unsigned order, AddrPref pref);

    /** Exact lowest/highest-address (mt, order) free-list entry,
     * found by enumerating fully-free aligned order-blocks from the
     * preferred end of the coverage through the ContigIndex and
     * checking each candidate's head frame. Returns invalidPfn only
     * if the enumeration misses (callers fall back to the capped
     * scan). */
    Pfn exactPrefBest(MigrateType mt, unsigned order,
                      AddrPref pref) const;

    /** Split a free block down to the target order, pushing tail
     * halves onto list_mt lists. */
    Pfn splitTo(Pfn head, unsigned have, unsigned want,
                MigrateType list_mt);

    /** Stamp the frames of an allocated block. */
    void markAllocated(Pfn head, unsigned order, MigrateType mt,
                       AllocSource src, std::uint64_t owner);

    /** Insert [lo, hi) into the free lists as maximal aligned blocks. */
    void freeRangeAsBlocks(Pfn lo, Pfn hi, MigrateType list_mt);

    /** Split the free block straddling `cut` (if any) so no free
     * block crosses that PFN. */
    void splitFreeBlockAt(Pfn cut);

    /** Move every free block fully inside [lo, hi) onto the new
     * list; callers must have split straddlers first. */
    void relistFreeRange(Pfn lo, Pfn hi, MigrateType new_list_mt);

    bool inRange(Pfn pfn) const { return pfn >= start_ && pfn < end_; }

    unsigned prefScanCap_ = 64;

    PhysMem &mem_;
    FrameArray &frames_;
    Pfn start_;
    Pfn end_;
    std::string name_;

    bool claimSmallSteals_ = false;
    std::uint32_t heads_[numMigrateTypes][maxOrder + 1];
    std::uint64_t freeCount_[numMigrateTypes] = {};
    std::uint64_t blockCount_[numMigrateTypes][maxOrder + 1] = {};
    Stats stats_;
};

} // namespace ctg

#endif // CTG_MEM_BUDDY_HH
