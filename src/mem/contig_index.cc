#include "mem/contig_index.hh"

#include <algorithm>

#include "base/logging.hh"

namespace ctg
{

ContigIndex::ContigIndex(const FrameArray &frames)
    : frames_(frames), n_(frames.size()), leaf_(n_, 0),
      leafSrc_(n_, 0)
{
    for (unsigned level = 1; level <= topLevel; ++level) {
        const std::uint64_t nodes =
            (n_ + (std::uint64_t{1} << level) - 1) >> level;
        levels_[level - 1].assign(nodes, Node{});
    }
    // Default-constructed frames are neither free nor unmovable, so
    // the zeroed tree already matches them; publish the real state.
    resync(0, n_);
}

ContigIndex::Node
ContigIndex::nodeFromLeaves(std::uint64_t index) const
{
    Node node;
    const Pfn lo = index << 1;
    const Pfn hi = std::min<Pfn>(lo + 2, n_);
    for (Pfn pfn = lo; pfn < hi; ++pfn) {
        const std::uint8_t bits = leaf_[pfn];
        node.free += (bits & LeafFree) ? 1 : 0;
        node.unmov += (bits & LeafUnmovable) ? 1 : 0;
        node.pinned += (bits & LeafPinned) ? 1 : 0;
    }
    return node;
}

ContigIndex::Node
ContigIndex::nodeFromChildren(unsigned level,
                              std::uint64_t index) const
{
    const std::vector<Node> &children = levels_[level - 2];
    const std::uint64_t c0 = index << 1;
    Node node = children[c0];
    if (c0 + 1 < children.size()) {
        const Node &c1 = children[c0 + 1];
        node.free += c1.free;
        node.unmov += c1.unmov;
        node.pinned += c1.pinned;
    }
    return node;
}

void
ContigIndex::resync(Pfn lo, Pfn hi)
{
    ctg_assert(lo <= hi && hi <= n_);
    if (lo == hi)
        return;
    ++resyncCalls_;
    framesRescanned_ += hi - lo;

    // Leaf pass: diff the frame truth against the cached snapshot and
    // apply the page-granular deltas to the machine-wide totals.
    bool changed = false;
    for (Pfn pfn = lo; pfn < hi; ++pfn) {
        const PageFrame &f = frames_.frame(pfn);
        const std::uint8_t bits = leafBits(f);
        const std::uint8_t src =
            static_cast<std::uint8_t>(f.source);
        const std::uint8_t old = leaf_[pfn];
        if (bits == old &&
            (!(bits & LeafUnmovable) || src == leafSrc_[pfn]))
            continue;
        changed = true;
        freePages_ += static_cast<std::uint64_t>(
            int((bits & LeafFree) != 0) - int((old & LeafFree) != 0));
        unmovablePages_ += static_cast<std::uint64_t>(
            int((bits & LeafUnmovable) != 0) -
            int((old & LeafUnmovable) != 0));
        pinnedPages_ += static_cast<std::uint64_t>(
            int((bits & LeafPinned) != 0) -
            int((old & LeafPinned) != 0));
        if (old & LeafUnmovable)
            --bySource_[leafSrc_[pfn]];
        if (bits & LeafUnmovable)
            ++bySource_[src];
        leaf_[pfn] = bits;
        leafSrc_[pfn] = src;
    }
    if (!changed)
        return;

    // Fold the change up the tree. At each level the touched node
    // range is recomputed from the level below; full<->partial and
    // clean<->tainted transitions of in-machine nodes adjust the
    // per-order global counters.
    for (unsigned level = 1; level <= topLevel; ++level) {
        std::vector<Node> &nodes = levels_[level - 1];
        const std::uint64_t i0 = lo >> level;
        const std::uint64_t i1 =
            std::min<std::uint64_t>((hi - 1) >> level,
                                    nodes.size() - 1);
        const std::uint64_t span = std::uint64_t{1} << level;
        for (std::uint64_t i = i0; i <= i1; ++i) {
            const Node fresh = level == 1
                                   ? nodeFromLeaves(i)
                                   : nodeFromChildren(level, i);
            Node &node = nodes[i];
            if (fresh == node)
                continue;
            if (nodeInMachine(level, i)) {
                fullFree_[level] += static_cast<std::uint64_t>(
                    int(fresh.free == span) - int(node.free == span));
                tainted_[level] += static_cast<std::uint64_t>(
                    int(fresh.unmov > 0) - int(node.unmov > 0));
            }
            node = fresh;
        }
    }
}

std::uint64_t
ContigIndex::fullyFreeBlocks(unsigned order) const
{
    if (order == 0)
        return freePages_;
    ctg_assert(order <= topLevel);
    return fullFree_[order];
}

std::uint64_t
ContigIndex::taintedBlocks(unsigned order) const
{
    if (order == 0)
        return unmovablePages_;
    ctg_assert(order <= topLevel);
    return tainted_[order];
}

namespace
{

/** Greedy aligned-block decomposition of [lo, hi): invoke fn(level,
 * index) for maximal aligned power-of-two blocks covering the range.
 * Level 0 blocks are single frames (index == pfn). */
template <typename Fn>
void
decompose(Pfn lo, Pfn hi, unsigned top_level, Fn fn)
{
    Pfn pfn = lo;
    while (pfn < hi) {
        unsigned level = top_level;
        while (level > 0 &&
               ((pfn & ((Pfn{1} << level) - 1)) != 0 ||
                pfn + (Pfn{1} << level) > hi)) {
            --level;
        }
        fn(level, pfn >> level);
        pfn += Pfn{1} << level;
    }
}

} // namespace

std::uint64_t
ContigIndex::freePagesIn(Pfn lo, Pfn hi) const
{
    ctg_assert(lo <= hi && hi <= n_);
    if (lo == 0 && hi == n_)
        return freePages_;
    std::uint64_t total = 0;
    decompose(lo, hi, topLevel,
              [&](unsigned level, std::uint64_t index) {
                  total += level == 0
                               ? ((leaf_[index] & LeafFree) ? 1 : 0)
                               : levels_[level - 1][index].free;
              });
    return total;
}

std::uint64_t
ContigIndex::unmovablePagesIn(Pfn lo, Pfn hi) const
{
    ctg_assert(lo <= hi && hi <= n_);
    if (lo == 0 && hi == n_)
        return unmovablePages_;
    std::uint64_t total = 0;
    decompose(lo, hi, topLevel,
              [&](unsigned level, std::uint64_t index) {
                  total += level == 0
                               ? ((leaf_[index] & LeafUnmovable) ? 1
                                                                 : 0)
                               : levels_[level - 1][index].unmov;
              });
    return total;
}

std::uint64_t
ContigIndex::fullyFreeBlocksIn(Pfn lo, Pfn hi, unsigned order) const
{
    const Pfn span = Pfn{1} << order;
    ctg_assert(lo % span == 0 && hi % span == 0);
    ctg_assert(lo <= hi && hi <= n_);
    if (lo == 0 && hi == (n_ & ~(span - 1)))
        return fullyFreeBlocks(order);
    if (order == 0)
        return freePagesIn(lo, hi);
    std::uint64_t blocks = 0;
    const std::vector<Node> &nodes = levels_[order - 1];
    for (std::uint64_t i = lo >> order; i < (hi >> order); ++i)
        blocks += nodes[i].free == span ? 1 : 0;
    return blocks;
}

std::uint64_t
ContigIndex::taintedBlocksIn(Pfn lo, Pfn hi, unsigned order) const
{
    const Pfn span = Pfn{1} << order;
    ctg_assert(lo % span == 0 && hi % span == 0);
    ctg_assert(lo <= hi && hi <= n_);
    if (lo == 0 && hi == (n_ & ~(span - 1)))
        return taintedBlocks(order);
    if (order == 0)
        return unmovablePagesIn(lo, hi);
    std::uint64_t blocks = 0;
    const std::vector<Node> &nodes = levels_[order - 1];
    for (std::uint64_t i = lo >> order; i < (hi >> order); ++i)
        blocks += nodes[i].unmov > 0 ? 1 : 0;
    return blocks;
}

std::uint32_t
ContigIndex::nodeFreePages(unsigned order, std::uint64_t index) const
{
    ctg_assert(order >= 1 && order <= topLevel);
    ctg_assert(index < levels_[order - 1].size());
    return levels_[order - 1][index].free;
}

std::uint32_t
ContigIndex::nodeUnmovablePages(unsigned order,
                                std::uint64_t index) const
{
    ctg_assert(order >= 1 && order <= topLevel);
    ctg_assert(index < levels_[order - 1].size());
    return levels_[order - 1][index].unmov;
}

} // namespace ctg
