#include "mem/contig_index.hh"

#include <algorithm>

#include "base/logging.hh"

namespace ctg
{

ContigIndex::ContigIndex(const FrameArray &frames)
    : frames_(frames), n_(frames.size()), leaf_(n_, 0),
      leafSrc_(n_, 0)
{
    for (unsigned level = 1; level <= topLevel; ++level) {
        const std::uint64_t nodes =
            (n_ + (std::uint64_t{1} << level) - 1) >> level;
        levels_[level - 1].assign(nodes, Node{});
    }
    // Default-constructed frames are neither free nor unmovable, so
    // the zeroed tree already matches them; publish the real state.
    resync(0, n_);
}

ContigIndex::Node
ContigIndex::nodeFromLeaves(std::uint64_t index) const
{
    Node node;
    const Pfn lo = index << 1;
    const Pfn hi = std::min<Pfn>(lo + 2, n_);
    for (Pfn pfn = lo; pfn < hi; ++pfn) {
        const std::uint8_t bits = leaf_[pfn];
        node.free += (bits & LeafFree) ? 1 : 0;
        node.unmov += (bits & LeafUnmovable) ? 1 : 0;
        node.pinned += (bits & LeafPinned) ? 1 : 0;
        node.movableMt += (bits & LeafMovableMt) ? 1 : 0;
    }
    // A level-1 node is a fully-free order-1 block only when both of
    // its frames exist and are free; one free frame still yields a
    // fully-free order-0 block.
    node.maxFF = node.free == 2 ? 1 : (node.free == 1 ? 0 : -1);
    return node;
}

ContigIndex::Node
ContigIndex::nodeFromChildren(unsigned level,
                              std::uint64_t index) const
{
    const std::vector<Node> &children = levels_[level - 2];
    const std::uint64_t c0 = index << 1;
    Node node = children[c0];
    std::int8_t child_max = children[c0].maxFF;
    if (c0 + 1 < children.size()) {
        const Node &c1 = children[c0 + 1];
        node.free += c1.free;
        node.unmov += c1.unmov;
        node.pinned += c1.pinned;
        node.movableMt += c1.movableMt;
        node.mixed += c1.mixed;
        child_max = std::max(child_max, c1.maxFF);
    }
    const std::uint64_t span = std::uint64_t{1} << level;
    // free == span implies the node covers span whole frames, so the
    // in-machine check is implicit.
    node.maxFF = node.free == span ? static_cast<std::int8_t>(level)
                                   : child_max;
    if (level == hugeOrder) {
        // The pageblock level defines "mixed" from its own counts
        // (children carry zero): some free space and some
        // movable-allocated frames — the compactRange evacuation
        // predicate, taint notwithstanding.
        const std::uint64_t base = index << level;
        const std::uint64_t coverage =
            std::min<std::uint64_t>(span, n_ - base);
        const std::uint64_t movable_alloc =
            coverage - node.free - node.unmov;
        node.mixed = (node.free > 0 && movable_alloc > 0) ? 1 : 0;
    }
    return node;
}

void
ContigIndex::resync(Pfn lo, Pfn hi)
{
    ctg_assert(lo <= hi && hi <= n_);
    if (lo == hi)
        return;
    ++resyncCalls_;
    framesRescanned_ += hi - lo;

    // Leaf pass: diff the frame truth against the cached snapshot and
    // apply the page-granular deltas to the machine-wide totals.
    bool changed = false;
    for (Pfn pfn = lo; pfn < hi; ++pfn) {
        const std::uint16_t m = frames_.meta(pfn);
        const std::uint8_t bits = leafBits(m);
        const std::uint8_t src = static_cast<std::uint8_t>(
            (m >> FrameArray::metaSrcShift) &
            FrameArray::metaSrcMask);
        const std::uint8_t old = leaf_[pfn];
        if (bits == old &&
            (!(bits & LeafUnmovable) || src == leafSrc_[pfn]))
            continue;
        changed = true;
        freePages_ += static_cast<std::uint64_t>(
            int((bits & LeafFree) != 0) - int((old & LeafFree) != 0));
        unmovablePages_ += static_cast<std::uint64_t>(
            int((bits & LeafUnmovable) != 0) -
            int((old & LeafUnmovable) != 0));
        pinnedPages_ += static_cast<std::uint64_t>(
            int((bits & LeafPinned) != 0) -
            int((old & LeafPinned) != 0));
        if (old & LeafUnmovable)
            --bySource_[leafSrc_[pfn]];
        if (bits & LeafUnmovable)
            ++bySource_[src];
        leaf_[pfn] = bits;
        leafSrc_[pfn] = src;
    }
    if (!changed)
        return;

    // Fold the change up the tree. At each level the touched node
    // range is recomputed from the level below; full<->partial and
    // clean<->tainted transitions of in-machine nodes adjust the
    // per-order global counters.
    for (unsigned level = 1; level <= topLevel; ++level) {
        std::vector<Node> &nodes = levels_[level - 1];
        const std::uint64_t i0 = lo >> level;
        const std::uint64_t i1 =
            std::min<std::uint64_t>((hi - 1) >> level,
                                    nodes.size() - 1);
        const std::uint64_t span = std::uint64_t{1} << level;
        for (std::uint64_t i = i0; i <= i1; ++i) {
            const Node fresh = level == 1
                                   ? nodeFromLeaves(i)
                                   : nodeFromChildren(level, i);
            Node &node = nodes[i];
            if (fresh == node)
                continue;
            if (nodeInMachine(level, i)) {
                fullFree_[level] += static_cast<std::uint64_t>(
                    int(fresh.free == span) - int(node.free == span));
                tainted_[level] += static_cast<std::uint64_t>(
                    int(fresh.unmov > 0) - int(node.unmov > 0));
            }
            node = fresh;
        }
    }
}

std::uint64_t
ContigIndex::fullyFreeBlocks(unsigned order) const
{
    if (order == 0)
        return freePages_;
    ctg_assert(order <= topLevel);
    return fullFree_[order];
}

std::uint64_t
ContigIndex::taintedBlocks(unsigned order) const
{
    if (order == 0)
        return unmovablePages_;
    ctg_assert(order <= topLevel);
    return tainted_[order];
}

namespace
{

/** Greedy aligned-block decomposition of [lo, hi): invoke fn(level,
 * index) for maximal aligned power-of-two blocks covering the range.
 * Level 0 blocks are single frames (index == pfn). */
template <typename Fn>
void
decompose(Pfn lo, Pfn hi, unsigned top_level, Fn fn)
{
    Pfn pfn = lo;
    while (pfn < hi) {
        unsigned level = top_level;
        while (level > 0 &&
               ((pfn & ((Pfn{1} << level) - 1)) != 0 ||
                pfn + (Pfn{1} << level) > hi)) {
            --level;
        }
        fn(level, pfn >> level);
        pfn += Pfn{1} << level;
    }
}

} // namespace

std::uint64_t
ContigIndex::freePagesIn(Pfn lo, Pfn hi) const
{
    ctg_assert(lo <= hi && hi <= n_);
    if (lo == 0 && hi == n_)
        return freePages_;
    std::uint64_t total = 0;
    decompose(lo, hi, topLevel,
              [&](unsigned level, std::uint64_t index) {
                  total += level == 0
                               ? ((leaf_[index] & LeafFree) ? 1 : 0)
                               : levels_[level - 1][index].free;
              });
    return total;
}

std::uint64_t
ContigIndex::unmovablePagesIn(Pfn lo, Pfn hi) const
{
    ctg_assert(lo <= hi && hi <= n_);
    if (lo == 0 && hi == n_)
        return unmovablePages_;
    std::uint64_t total = 0;
    decompose(lo, hi, topLevel,
              [&](unsigned level, std::uint64_t index) {
                  total += level == 0
                               ? ((leaf_[index] & LeafUnmovable) ? 1
                                                                 : 0)
                               : levels_[level - 1][index].unmov;
              });
    return total;
}

std::uint64_t
ContigIndex::fullyFreeBlocksIn(Pfn lo, Pfn hi, unsigned order) const
{
    const Pfn span = Pfn{1} << order;
    ctg_assert(lo % span == 0 && hi % span == 0);
    ctg_assert(lo <= hi && hi <= n_);
    if (lo == 0 && hi == (n_ & ~(span - 1)))
        return fullyFreeBlocks(order);
    if (order == 0)
        return freePagesIn(lo, hi);
    std::uint64_t blocks = 0;
    const std::vector<Node> &nodes = levels_[order - 1];
    for (std::uint64_t i = lo >> order; i < (hi >> order); ++i)
        blocks += nodes[i].free == span ? 1 : 0;
    return blocks;
}

std::uint64_t
ContigIndex::taintedBlocksIn(Pfn lo, Pfn hi, unsigned order) const
{
    const Pfn span = Pfn{1} << order;
    ctg_assert(lo % span == 0 && hi % span == 0);
    ctg_assert(lo <= hi && hi <= n_);
    if (lo == 0 && hi == (n_ & ~(span - 1)))
        return taintedBlocks(order);
    if (order == 0)
        return unmovablePagesIn(lo, hi);
    std::uint64_t blocks = 0;
    const std::vector<Node> &nodes = levels_[order - 1];
    for (std::uint64_t i = lo >> order; i < (hi >> order); ++i)
        blocks += nodes[i].unmov > 0 ? 1 : 0;
    return blocks;
}

std::uint32_t
ContigIndex::nodeFreePages(unsigned order, std::uint64_t index) const
{
    ctg_assert(order >= 1 && order <= topLevel);
    ctg_assert(index < levels_[order - 1].size());
    return levels_[order - 1][index].free;
}

std::uint32_t
ContigIndex::nodeUnmovablePages(unsigned order,
                                std::uint64_t index) const
{
    ctg_assert(order >= 1 && order <= topLevel);
    ctg_assert(index < levels_[order - 1].size());
    return levels_[order - 1][index].unmov;
}

std::uint64_t
ContigIndex::movableMtPagesIn(Pfn lo, Pfn hi) const
{
    ctg_assert(lo <= hi && hi <= n_);
    std::uint64_t total = 0;
    decompose(lo, hi, topLevel,
              [&](unsigned level, std::uint64_t index) {
                  total +=
                      level == 0
                          ? ((leaf_[index] & LeafMovableMt) ? 1 : 0)
                          : levels_[level - 1][index].movableMt;
              });
    return total;
}

ContigIndex::BlockClass
ContigIndex::blockClass(Pfn pfn) const
{
    ctg_assert(pfn < n_);
    const std::uint64_t index = pfn >> hugeOrder;
    const Node &node = levels_[hugeOrder - 1][index];
    const std::uint64_t base = index << hugeOrder;
    const std::uint32_t coverage = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(pagesPerHuge, n_ - base));
    BlockClass cls;
    cls.free = node.free;
    cls.unmovable = node.unmov;
    cls.pinned = node.pinned;
    cls.movableAlloc = coverage - node.free - node.unmov;
    return cls;
}

std::uint64_t
ContigIndex::mixedBlocksIn(Pfn lo, Pfn hi) const
{
    ctg_assert(lo % pagesPerHuge == 0 && hi % pagesPerHuge == 0);
    ctg_assert(lo <= hi && hi <= n_);
    std::uint64_t total = 0;
    decompose(lo, hi, topLevel,
              [&](unsigned level, std::uint64_t index) {
                  // Pageblock-aligned bounds decompose into blocks of
                  // level >= hugeOrder, where `mixed` is meaningful.
                  ctg_assert(level >= hugeOrder);
                  total += levels_[level - 1][index].mixed;
              });
    return total;
}

Pfn
ContigIndex::findMixedRec(unsigned level, std::uint64_t index, Pfn lo,
                          Pfn hi) const
{
    const Pfn base = Pfn{index} << level;
    const Pfn cover_end = std::min<Pfn>(base + (Pfn{1} << level), n_);
    if (std::max(base, lo) >= std::min(cover_end, hi))
        return invalidPfn;
    const Node &node = levels_[level - 1][index];
    if (node.mixed == 0)
        return invalidPfn;
    // With pageblock-aligned bounds, a level-hugeOrder node that
    // intersects the range lies fully inside it.
    if (level == hugeOrder)
        return base;
    const std::uint64_t c0 = index << 1;
    const Pfn left = findMixedRec(level - 1, c0, lo, hi);
    if (left != invalidPfn)
        return left;
    if (c0 + 1 < levels_[level - 2].size())
        return findMixedRec(level - 1, c0 + 1, lo, hi);
    return invalidPfn;
}

Pfn
ContigIndex::firstMixedBlock(Pfn lo, Pfn hi) const
{
    ctg_assert(lo % pagesPerHuge == 0 && hi % pagesPerHuge == 0);
    ctg_assert(lo <= hi && hi <= n_);
    if (lo >= hi)
        return invalidPfn;
    const std::uint64_t t1 = (hi - 1) >> topLevel;
    for (std::uint64_t ti = lo >> topLevel; ti <= t1; ++ti) {
        const Pfn r = findMixedRec(topLevel, ti, lo, hi);
        if (r != invalidPfn)
            return r;
    }
    return invalidPfn;
}

Pfn
ContigIndex::findSpanRec(unsigned level, std::uint64_t index, Pfn lo,
                         Pfn hi, unsigned order, bool highest) const
{
    const Pfn base = Pfn{index} << level;
    const Pfn cover_end = std::min<Pfn>(base + (Pfn{1} << level), n_);
    if (std::max(base, lo) >= std::min(cover_end, hi))
        return invalidPfn;
    const Node &node = levels_[level - 1][index];
    if (node.maxFF < static_cast<std::int8_t>(order))
        return invalidPfn;
    // At the target level, maxFF >= order means this very node is a
    // fully-free aligned order-block; span-aligned bounds plus
    // intersection guarantee it lies fully inside [lo, hi).
    if (level == order)
        return base;
    const std::uint64_t c0 = index << 1;
    const std::uint64_t kids[2] = {highest ? c0 + 1 : c0,
                                   highest ? c0 : c0 + 1};
    for (const std::uint64_t ci : kids) {
        if (ci >= levels_[level - 2].size())
            continue;
        const Pfn r =
            findSpanRec(level - 1, ci, lo, hi, order, highest);
        if (r != invalidPfn)
            return r;
    }
    return invalidPfn;
}

Pfn
ContigIndex::firstFullyFreeSpan(unsigned order, Pfn lo, Pfn hi,
                                AddrPref pref) const
{
    ctg_assert(order <= topLevel);
    ctg_assert(lo <= hi && hi <= n_);
    const Pfn span = Pfn{1} << order;
    lo = (lo + span - 1) & ~(span - 1);
    hi &= ~(span - 1);
    if (lo >= hi)
        return invalidPfn;
    const bool highest = pref == AddrPref::High;
    if (order == 0) {
        return findFrame(
            lo, hi, highest,
            [](const Node &node, Pfn) { return node.free > 0; },
            [](std::uint8_t bits) {
                return (bits & LeafFree) != 0;
            });
    }
    const std::uint64_t t0 = lo >> topLevel;
    const std::uint64_t t1 = (hi - 1) >> topLevel;
    if (!highest) {
        for (std::uint64_t ti = t0; ti <= t1; ++ti) {
            const Pfn r =
                findSpanRec(topLevel, ti, lo, hi, order, false);
            if (r != invalidPfn)
                return r;
        }
    } else {
        for (std::uint64_t ti = t1 + 1; ti > t0;) {
            const Pfn r =
                findSpanRec(topLevel, --ti, lo, hi, order, true);
            if (r != invalidPfn)
                return r;
        }
    }
    return invalidPfn;
}

template <typename NodeHas, typename LeafHas>
Pfn
ContigIndex::findFrameRec(unsigned level, std::uint64_t index, Pfn lo,
                          Pfn hi, bool highest,
                          const NodeHas &nodeHas,
                          const LeafHas &leafHas) const
{
    const Pfn base = Pfn{index} << level;
    const Pfn cover_end = std::min<Pfn>(base + (Pfn{1} << level), n_);
    const Pfn a = std::max(base, lo);
    const Pfn b = std::min(cover_end, hi);
    if (a >= b)
        return invalidPfn;
    const Node &node = levels_[level - 1][index];
    if (!nodeHas(node, cover_end - base))
        return invalidPfn;
    if (level == 1) {
        if (!highest) {
            for (Pfn p = a; p < b; ++p) {
                if (leafHas(leaf_[p]))
                    return p;
            }
        } else {
            for (Pfn p = b; p > a;) {
                if (leafHas(leaf_[--p]))
                    return p;
            }
        }
        return invalidPfn;
    }
    const std::uint64_t c0 = index << 1;
    const std::uint64_t kids[2] = {highest ? c0 + 1 : c0,
                                   highest ? c0 : c0 + 1};
    for (const std::uint64_t ci : kids) {
        if (ci >= levels_[level - 2].size())
            continue;
        const Pfn r = findFrameRec(level - 1, ci, lo, hi, highest,
                                   nodeHas, leafHas);
        if (r != invalidPfn)
            return r;
    }
    return invalidPfn;
}

template <typename NodeHas, typename LeafHas>
Pfn
ContigIndex::findFrame(Pfn lo, Pfn hi, bool highest,
                       NodeHas &&nodeHas, LeafHas &&leafHas) const
{
    ctg_assert(lo <= hi && hi <= n_);
    if (lo >= hi)
        return invalidPfn;
    const std::uint64_t t0 = lo >> topLevel;
    const std::uint64_t t1 = (hi - 1) >> topLevel;
    if (!highest) {
        for (std::uint64_t ti = t0; ti <= t1; ++ti) {
            const Pfn r = findFrameRec(topLevel, ti, lo, hi, false,
                                       nodeHas, leafHas);
            if (r != invalidPfn)
                return r;
        }
    } else {
        for (std::uint64_t ti = t1 + 1; ti > t0;) {
            const Pfn r = findFrameRec(topLevel, --ti, lo, hi, true,
                                       nodeHas, leafHas);
            if (r != invalidPfn)
                return r;
        }
    }
    return invalidPfn;
}

Pfn
ContigIndex::firstAllocatedFrame(Pfn lo, Pfn hi) const
{
    return findFrame(
        lo, hi, /*highest=*/false,
        [](const Node &node, Pfn coverage) {
            return node.free < coverage;
        },
        [](std::uint8_t bits) { return (bits & LeafFree) == 0; });
}

Pfn
ContigIndex::firstUnmovableFrame(Pfn lo, Pfn hi) const
{
    return findFrame(
        lo, hi, /*highest=*/false,
        [](const Node &node, Pfn) { return node.unmov > 0; },
        [](std::uint8_t bits) {
            return (bits & LeafUnmovable) != 0;
        });
}

Pfn
ContigIndex::firstMovableMtFrame(Pfn lo, Pfn hi) const
{
    return findFrame(
        lo, hi, /*highest=*/false,
        [](const Node &node, Pfn) { return node.movableMt > 0; },
        [](std::uint8_t bits) {
            return (bits & LeafMovableMt) != 0;
        });
}

} // namespace ctg
