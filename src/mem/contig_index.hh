/**
 * @file
 * Incremental per-order contiguity accounting (DESIGN.md §11).
 *
 * The paper's fleet metrics (Figures 4, 5, 11, 12) were originally
 * computed by full scans over the frame array, re-run for four block
 * orders on every sampler tick of every server — the dominant
 * wall-clock cost of a population run. The ContigIndex replaces the
 * rescans with a buddy-style binary tree over the frame array: each
 * node at level L covers an aligned 2^L-frame block and holds the
 * number of free, unmovable and pinned frames inside it, and global
 * per-order counters track how many aligned blocks are fully free or
 * contain at least one unmovable page.
 *
 * The index is *derived state*: it never interprets allocator
 * semantics. Mutation sites re-publish the frame range they touched
 * via resync(), which re-reads the per-frame truth (PageFrame flags),
 * diffs it against a cached per-frame snapshot, and folds the deltas
 * up the tree — O(range + log n) per call, so maintaining the index
 * costs the same order as the mutation itself. Because every counter
 * is recomputed from the same predicate the legacy scanners use
 * (PageFrame::isFree / isUnmovableAllocation), the index is
 * bit-identical to a fresh full scan at all times, including across
 * fault-injected rollbacks; the MemAuditor cross-checks this.
 *
 * Reads: whole-machine per-order queries are O(1) (the global
 * counters); arbitrary [lo, hi) ranges are answered from tree nodes
 * in O(range / 2^order + log n) without touching the frame array.
 *
 * Descent queries (DESIGN.md §12): beyond counting, the tree supports
 * positional search — "first mixed pageblock at or after lo", "first
 * (lowest or highest) fully-free aligned order-o block", "first
 * allocated/unmovable/movable-migratetype frame" — by descending from
 * the top level and pruning subtrees whose aggregates rule out a hit.
 * Two extra per-node aggregates make the pruning exact: `mixed`
 * counts compaction-worthy pageblocks (>= 1 free and >= 1
 * movable-allocated frame) in the subtree, and `maxFF` is the largest
 * order j such that the subtree contains a fully-free aligned order-j
 * block. The mutation hot paths (compactRange, region resizing,
 * findContigRange, exact-AddrPref popFree) are built on these.
 */

#ifndef CTG_MEM_CONTIG_INDEX_HH
#define CTG_MEM_CONTIG_INDEX_HH

#include <array>
#include <cstdint>
#include <vector>

#include "base/types.hh"
#include "mem/frame.hh"

namespace ctg
{

/** Hierarchical occupancy index over one FrameArray. */
class ContigIndex
{
  public:
    explicit ContigIndex(const FrameArray &frames);

    /** Highest tree level maintained (1 GB blocks). */
    static constexpr unsigned topLevel = gigaOrder;

    /**
     * Re-read frames [lo, hi) from the frame array and fold any state
     * changes into the tree. Every code path that mutates a frame's
     * free/unmovable/pinned/source state must call this (via
     * PhysMem::noteFramesChanged) before the next metric read.
     */
    void resync(Pfn lo, Pfn hi);

    /** @{ Whole-machine counters, O(1). */
    std::uint64_t numFrames() const { return n_; }
    std::uint64_t freePages() const { return freePages_; }
    std::uint64_t unmovablePages() const { return unmovablePages_; }
    std::uint64_t pinnedPages() const { return pinnedPages_; }
    /** Aligned order-blocks fully inside the machine. */
    std::uint64_t
    alignedBlocks(unsigned order) const
    {
        return n_ >> order;
    }
    /** Fully-free aligned blocks of the given order. */
    std::uint64_t fullyFreeBlocks(unsigned order) const;
    /** Aligned blocks containing at least one unmovable page. */
    std::uint64_t taintedBlocks(unsigned order) const;
    /** Unmovable page counts keyed by AllocSource (Figure 6). */
    const std::array<std::uint64_t, numAllocSources> &
    unmovableBySource() const
    {
        return bySource_;
    }
    /** @} */

    /** @{ Range queries over [lo, hi), exact vs. a fresh scan. */
    std::uint64_t freePagesIn(Pfn lo, Pfn hi) const;
    std::uint64_t unmovablePagesIn(Pfn lo, Pfn hi) const;
    /** lo and hi must be order-aligned (callers trim like the
     * scanners do). */
    std::uint64_t fullyFreeBlocksIn(Pfn lo, Pfn hi,
                                    unsigned order) const;
    std::uint64_t taintedBlocksIn(Pfn lo, Pfn hi,
                                  unsigned order) const;
    /** @} */

    /** @{ Per-node occupancy of one aligned block (order >= 1);
     * index is the block number at that order. Used by the Section
     * 5.2 free-share metric and the auditor. */
    std::uint32_t nodeFreePages(unsigned order,
                                std::uint64_t index) const;
    std::uint32_t nodeUnmovablePages(unsigned order,
                                     std::uint64_t index) const;
    /** @} */

    /** @{ Descent queries (DESIGN.md §12). All are exact against a
     * fresh linear classification of the frame array; the mutation
     * hot paths rely on that for bit-identity with the legacy
     * walks. */

    /** Per-frame classification counts of one pageblock, matching
     * the compactRange classifier: every frame is exactly one of
     * free, unmovable-allocation, or movable-allocation. pinned is a
     * sub-count of unmovable (a pinned allocated frame is an
     * unmovable allocation by definition). */
    struct BlockClass
    {
        std::uint32_t free = 0;
        std::uint32_t unmovable = 0;
        std::uint32_t pinned = 0;
        std::uint32_t movableAlloc = 0;
    };

    /** O(1): classify the pageblock containing pfn. */
    BlockClass blockClass(Pfn pfn) const;

    /** Lowest pageblock base in [lo, hi) with at least one free AND
     * one movable-allocated frame (the blocks compaction evacuates;
     * unmovable taint does not exclude a block, mirroring
     * compactRange). lo and hi must be pageblock-aligned. Returns
     * invalidPfn when none. O(log n). */
    Pfn firstMixedBlock(Pfn lo, Pfn hi) const;

    /** firstMixedBlock after the given block: searches
     * [block + pagesPerHuge, hi). */
    Pfn
    nextMixedBlock(Pfn block, Pfn hi) const
    {
        const Pfn next = block + pagesPerHuge;
        return next >= hi ? invalidPfn : firstMixedBlock(next, hi);
    }

    /** Count of mixed pageblocks in [lo, hi) (pageblock-aligned). */
    std::uint64_t mixedBlocksIn(Pfn lo, Pfn hi) const;

    /** Base of a fully-free aligned order-block within [lo, hi) —
     * the lowest such base, or the highest when pref is
     * AddrPref::High. lo is rounded up and hi down to order
     * alignment first (the legacy scans consider exactly those
     * candidates). Returns invalidPfn when none. O(log n). */
    Pfn firstFullyFreeSpan(unsigned order, Pfn lo, Pfn hi,
                           AddrPref pref = AddrPref::None) const;

    /** Lowest allocated (non-free) frame in [lo, hi), or invalidPfn.
     * O(log n); lets range walks jump over free space. */
    Pfn firstAllocatedFrame(Pfn lo, Pfn hi) const;

    /** Lowest frame in [lo, hi) that is an unmovable allocation. */
    Pfn firstUnmovableFrame(Pfn lo, Pfn hi) const;

    /** Lowest allocated frame in [lo, hi) whose migratetype is
     * Movable (regardless of pin state — the region-confinement
     * audit predicate, not the compaction one). */
    Pfn firstMovableMtFrame(Pfn lo, Pfn hi) const;

    /** Count of allocated Movable-migratetype frames in [lo, hi). */
    std::uint64_t movableMtPagesIn(Pfn lo, Pfn hi) const;

    /** @} */

    /** @{ Maintenance counters (observability). */
    std::uint64_t resyncCalls() const { return resyncCalls_; }
    std::uint64_t framesRescanned() const { return framesRescanned_; }
    /** @} */

  private:
    /** Per-block occupancy counts and search aggregates of one tree
     * node. The aggregates (mixed, maxFF) are derived bottom-up from
     * the children, so the comparison must include them: two nodes
     * with identical counts can differ in where the free frames sit,
     * and the fold relies on operator== to know when a parent's
     * aggregates may have moved. */
    struct Node
    {
        std::uint32_t free = 0;
        std::uint32_t unmov = 0;
        std::uint32_t pinned = 0;
        /** Allocated frames with MigrateType::Movable (pin state
         * ignored — the region-confinement predicate). */
        std::uint32_t movableMt = 0;
        /** Mixed pageblocks (>= 1 free, >= 1 movable-allocated
         * frame) in the subtree. Zero below level hugeOrder. */
        std::uint32_t mixed = 0;
        /** Largest order j such that the subtree contains a
         * fully-free aligned order-j block; -1 when no frame is
         * free. */
        std::int8_t maxFF = -1;

        bool
        operator==(const Node &o) const
        {
            return free == o.free && unmov == o.unmov &&
                   pinned == o.pinned && movableMt == o.movableMt &&
                   mixed == o.mixed && maxFF == o.maxFF;
        }
    };

    static constexpr std::uint8_t LeafFree = 1 << 0;
    static constexpr std::uint8_t LeafUnmovable = 1 << 1;
    static constexpr std::uint8_t LeafPinned = 1 << 2;
    static constexpr std::uint8_t LeafMovableMt = 1 << 3;

    /** Leaf predicate bits of a frame, computed straight from the
     * packed meta word (one load per frame on the resync hot path).
     * Same predicates the legacy scanners evaluate: a free frame is
     * only LeafFree; an allocated one is unmovable when its
     * migratetype is not Movable or it is pinned. */
    static std::uint8_t
    leafBits(std::uint16_t meta)
    {
        if (meta & PageFrame::FlagFree)
            return LeafFree;
        const bool pinned = meta & PageFrame::FlagPinned;
        const bool movable_mt =
            ((meta >> FrameArray::metaMtShift) &
             FrameArray::metaMtMask) ==
            static_cast<std::uint16_t>(MigrateType::Movable);
        std::uint8_t bits = 0;
        if (!movable_mt || pinned)
            bits |= LeafUnmovable;
        if (pinned)
            bits |= LeafPinned;
        if (movable_mt)
            bits |= LeafMovableMt;
        return bits;
    }

    /** Node spanned by level-1 node `index`, recomputed from leaves. */
    Node nodeFromLeaves(std::uint64_t index) const;
    /** Node at `level` >= 2 recomputed from its two children. */
    Node nodeFromChildren(unsigned level, std::uint64_t index) const;

    /** Generic first/last-frame descent: nodeHas(node, coverage)
     * says whether the subtree can contain a hit, leafHas(bits) tests
     * one frame. Exact node predicates make the pruning lossless.
     * Defined in the .cc (only instantiated there). */
    template <typename NodeHas, typename LeafHas>
    Pfn findFrame(Pfn lo, Pfn hi, bool highest, NodeHas &&nodeHas,
                  LeafHas &&leafHas) const;
    template <typename NodeHas, typename LeafHas>
    Pfn findFrameRec(unsigned level, std::uint64_t index, Pfn lo,
                     Pfn hi, bool highest, const NodeHas &nodeHas,
                     const LeafHas &leafHas) const;

    /** Subtree descent for firstMixedBlock (stops at level
     * hugeOrder). */
    Pfn findMixedRec(unsigned level, std::uint64_t index, Pfn lo,
                     Pfn hi) const;

    /** Subtree descent for firstFullyFreeSpan (stops at level
     * `order`, pruning on maxFF). */
    Pfn findSpanRec(unsigned level, std::uint64_t index, Pfn lo,
                    Pfn hi, unsigned order, bool highest) const;

    /** True when the node covers only whole in-machine frames, i.e.
     * participates in the per-order global counters (mirrors the
     * scanners' trimming of a partial tail block). */
    bool
    nodeInMachine(unsigned level, std::uint64_t index) const
    {
        return ((index + 1) << level) <= n_;
    }

    const FrameArray &frames_;
    std::uint64_t n_;

    /** Cached per-frame predicate bits (LeafFree/Unmovable/Pinned). */
    std::vector<std::uint8_t> leaf_;
    /** Cached AllocSource of each unmovable frame. */
    std::vector<std::uint8_t> leafSrc_;
    /** levels_[L-1] holds level L (block order L), L in 1..topLevel. */
    std::array<std::vector<Node>, topLevel> levels_;

    std::uint64_t freePages_ = 0;
    std::uint64_t unmovablePages_ = 0;
    std::uint64_t pinnedPages_ = 0;
    /** Indexed by order 1..topLevel (entry 0 unused; order-0 queries
     * answer from the leaf totals). */
    std::array<std::uint64_t, topLevel + 1> fullFree_{};
    std::array<std::uint64_t, topLevel + 1> tainted_{};
    std::array<std::uint64_t, numAllocSources> bySource_{};

    std::uint64_t resyncCalls_ = 0;
    std::uint64_t framesRescanned_ = 0;
};

} // namespace ctg

#endif // CTG_MEM_CONTIG_INDEX_HH
