/**
 * @file
 * Per-page-frame metadata (struct page analogue) and the frame array.
 *
 * The FrameArray owns the metadata for every physical frame of a
 * simulated server plus the intrusive free-list links used by the
 * buddy allocator. It is stored struct-of-arrays: the hot per-frame
 * state (flags, block order, migratetype, allocation source) is
 * packed into one 16-bit word per frame and the 32-bit free-list
 * links stay in two parallel columns. The cold allocation-era fields
 * ride along at near-zero cost: the link slots of an *allocated*
 * frame are dead (only free-list members are ever linked), so the
 * owner handle is overlaid onto the head frame's next/prev pair, and
 * the allocation second — the one field with nowhere to hide — lives
 * in a sparse side table keyed by allocation-head PFN
 * (mem/side_table.hh). That puts the fixed cost at 10 bytes/frame —
 * versus 24 for the old array-of-structs layout — so 10^5-server
 * fleet populations fit on one box even when fragmented servers are
 * dense with order-0 allocations.
 *
 * Accessors hand out FrameRef/ConstFrameRef proxies instead of
 * references to a PageFrame struct; the method surface is the same,
 * so allocator/scanner/auditor code reads naturally and the packed
 * layout stays an implementation detail. PageFrame survives as the
 * materialized value type (FrameArray::get) for tests and reference
 * models.
 */

#ifndef CTG_MEM_FRAME_HH
#define CTG_MEM_FRAME_HH

#include <cstdint>
#include <vector>

#include "base/logging.hh"
#include "base/types.hh"
#include "mem/migratetype.hh"
#include "mem/side_table.hh"

namespace ctg
{

namespace serde
{
class Writer;
class Reader;
} // namespace serde

/** Materialized per-frame metadata: the value type FrameArray::get
 * returns, and the reference model differential tests compare
 * against. Field meanings depend on the state bits: a frame is
 * either free (possibly the head of a buddy block) or allocated
 * (possibly the head of a multi-page allocation). */
struct PageFrame
{
    /** Opaque handle identifying the owner of an allocated page
     * (process/vpn for user pages, subsystem object for kernel). */
    std::uint64_t owner = 0;

    /** Tick at which the current allocation was made. */
    std::uint32_t allocSecond = 0;

    std::uint8_t flags = 0;
    std::uint8_t order = 0; //!< block order if head (free or allocated)
    MigrateType migrateType = MigrateType::Movable;
    AllocSource source = AllocSource::User;

    static constexpr std::uint8_t FlagFree = 1 << 0;
    static constexpr std::uint8_t FlagHead = 1 << 1;
    static constexpr std::uint8_t FlagPinned = 1 << 2;
    static constexpr std::uint8_t FlagMigrating = 1 << 3;

    bool isFree() const { return flags & FlagFree; }
    bool isHead() const { return flags & FlagHead; }
    bool isPinned() const { return flags & FlagPinned; }
    bool isMigrating() const { return flags & FlagMigrating; }

    void setFree(bool v) { setFlag(FlagFree, v); }
    void setHead(bool v) { setFlag(FlagHead, v); }
    void setPinned(bool v) { setFlag(FlagPinned, v); }
    void setMigrating(bool v) { setFlag(FlagMigrating, v); }

    /** An allocated frame counts as unmovable if its migratetype is
     * Unmovable/Reclaimable (kernel memory) or it is pinned. */
    bool
    isUnmovableAllocation() const
    {
        if (isFree())
            return false;
        return migrateType != MigrateType::Movable || isPinned();
    }

  private:
    void
    setFlag(std::uint8_t bit, bool v)
    {
        if (v)
            flags |= bit;
        else
            flags &= static_cast<std::uint8_t>(~bit);
    }
};

/**
 * Struct-of-arrays metadata for all frames of a simulated machine
 * plus intrusive doubly-linked free-list link storage.
 */
class FrameArray
{
  public:
    /** Link index sentinel meaning "end of list". */
    static constexpr std::uint32_t nil = 0xffffffffu;

    /** Packed meta word layout. Bits 0-3 mirror PageFrame's flag
     * byte, so flags() round-trips through get() unchanged. Valid
     * orders (0..maxOrder and gigaOrder) fit the 5-bit field; the two
     * spare bits must stay zero (loadFrom enforces it). */
    static constexpr std::uint16_t metaFlagsMask = 0x000f;
    static constexpr unsigned metaMtShift = 4;
    static constexpr std::uint16_t metaMtMask = 0x3;
    static constexpr unsigned metaSrcShift = 6;
    static constexpr std::uint16_t metaSrcMask = 0x7;
    static constexpr unsigned metaOrderShift = 9;
    static constexpr std::uint16_t metaOrderMask = 0x1f;
    static constexpr std::uint16_t metaSpareMask = 0xc000;

    /** Read-only proxy for one frame. Copy it freely — it is two
     * words. The owner/allocSecond reads resolve lazily through the
     * containing block's head (every block is 2^order aligned, so
     * the head is the masked-down PFN): owner from the head's
     * overlaid link slots, allocSecond from the side table. */
    class ConstFrameRef
    {
      public:
        bool isFree() const { return word() & PageFrame::FlagFree; }
        bool isHead() const { return word() & PageFrame::FlagHead; }
        bool
        isPinned() const
        {
            return word() & PageFrame::FlagPinned;
        }
        bool
        isMigrating() const
        {
            return word() & PageFrame::FlagMigrating;
        }

        std::uint8_t
        flags() const
        {
            return static_cast<std::uint8_t>(word() & metaFlagsMask);
        }

        unsigned
        order() const
        {
            return (word() >> metaOrderShift) & metaOrderMask;
        }

        MigrateType
        migrateType() const
        {
            return static_cast<MigrateType>((word() >> metaMtShift) &
                                            metaMtMask);
        }

        AllocSource
        source() const
        {
            return static_cast<AllocSource>((word() >> metaSrcShift) &
                                            metaSrcMask);
        }

        bool
        isUnmovableAllocation() const
        {
            const std::uint16_t m = word();
            if (m & PageFrame::FlagFree)
                return false;
            return ((m >> metaMtShift) & metaMtMask) !=
                       static_cast<std::uint16_t>(
                           MigrateType::Movable) ||
                   (m & PageFrame::FlagPinned);
        }

        /** Owner handle of the containing allocation; 0 when free
         * (the old layout reset it on free). Allocated frames are on
         * no free list, so the head's link slots hold the handle:
         * low half in next, high half in prev. */
        std::uint64_t
        owner() const
        {
            if (isFree())
                return 0;
            const Pfn h = headPfn();
            return (static_cast<std::uint64_t>(fa_->prev_[h]) << 32) |
                   fa_->next_[h];
        }

        /** Allocation timestamp of the containing allocation; 0 when
         * free. */
        std::uint32_t
        allocSecond() const
        {
            if (isFree())
                return 0;
            return fa_->side_.secondFor(
                static_cast<std::uint32_t>(headPfn()));
        }

        Pfn pfn() const { return pfn_; }

      protected:
        friend class FrameArray;
        ConstFrameRef(const FrameArray *fa, Pfn pfn)
            : fa_(fa), pfn_(pfn)
        {
        }

        std::uint16_t word() const { return fa_->meta_[pfn_]; }

        /** Head PFN of the block containing this frame: itself when
         * it is the head, else the 2^order aligned base (allocations
         * stamp their order on every member frame). */
        Pfn
        headPfn() const
        {
            if (isHead())
                return pfn_;
            return pfn_ & ~((Pfn{1} << order()) - 1);
        }

        const FrameArray *fa_;
        Pfn pfn_;
    };

    /** Mutable proxy. The setters keep the mirror-image semantics of
     * the old struct fields: they read-modify-write only their own
     * bits, so state other code left behind (e.g. a stale order on a
     * free non-head frame) is preserved exactly as the AoS layout
     * preserved it. */
    class FrameRef : public ConstFrameRef
    {
      public:
        void setFree(bool v) { setFlag(PageFrame::FlagFree, v); }
        void setHead(bool v) { setFlag(PageFrame::FlagHead, v); }
        void setPinned(bool v) { setFlag(PageFrame::FlagPinned, v); }
        void
        setMigrating(bool v)
        {
            setFlag(PageFrame::FlagMigrating, v);
        }

        void
        setOrder(unsigned order)
        {
            ctg_assert(order <= metaOrderMask);
            mut() = static_cast<std::uint16_t>(
                (word() & ~(metaOrderMask << metaOrderShift)) |
                (order << metaOrderShift));
        }

        void
        setMigrateType(MigrateType mt)
        {
            mut() = static_cast<std::uint16_t>(
                (word() & ~(metaMtMask << metaMtShift)) |
                (static_cast<std::uint16_t>(mt) << metaMtShift));
        }

        void
        setSource(AllocSource src)
        {
            mut() = static_cast<std::uint16_t>(
                (word() & ~(metaSrcMask << metaSrcShift)) |
                (static_cast<std::uint16_t>(src) << metaSrcShift));
        }

        /** One-store transition to "allocated member of a block":
         * clears free/pinned/migrating, sets head as given, stamps
         * order/migratetype/source — the per-frame half of the old
         * markAllocated loop body. */
        void
        stampAllocated(unsigned order, MigrateType mt,
                       AllocSource src, bool head)
        {
            ctg_assert(order <= metaOrderMask);
            mut() = static_cast<std::uint16_t>(
                (head ? PageFrame::FlagHead : 0) |
                (static_cast<std::uint16_t>(mt) << metaMtShift) |
                (static_cast<std::uint16_t>(src) << metaSrcShift) |
                (order << metaOrderShift));
        }

        /** Record the cold allocation-era fields for the block this
         * frame heads: the owner handle into the (dead) link slots,
         * the timestamp into the side table. Only allocated heads may
         * carry either. */
        void
        setAllocInfo(std::uint64_t owner, std::uint32_t second)
        {
            ctg_assert(!isFree() && isHead());
            arr()->next_[pfn_] =
                static_cast<std::uint32_t>(owner);
            arr()->prev_[pfn_] =
                static_cast<std::uint32_t>(owner >> 32);
            arr()->side_.set(static_cast<std::uint32_t>(pfn_),
                             second);
        }

        /** Equivalent of the old `frame = PageFrame{}`: every field
         * back to defaults, and the side-table entry (if this frame
         * headed an allocation) dropped. The link slots keep their
         * stale bits — exactly as the old layout kept stale links —
         * until the buddy relinks the frame into a free list. */
        void
        reset()
        {
            const std::uint16_t m = word();
            if ((m & PageFrame::FlagHead) &&
                !(m & PageFrame::FlagFree)) {
                arr()->side_.erase(
                    static_cast<std::uint32_t>(pfn_));
            }
            mut() = 0;
        }

      private:
        friend class FrameArray;
        FrameRef(FrameArray *fa, Pfn pfn) : ConstFrameRef(fa, pfn) {}

        FrameArray *arr() const { return const_cast<FrameArray *>(fa_); }
        std::uint16_t &mut() { return arr()->meta_[pfn_]; }

        void
        setFlag(std::uint8_t bit, bool v)
        {
            if (v)
                mut() |= bit;
            else
                mut() &= static_cast<std::uint16_t>(~bit);
        }
    };

    explicit FrameArray(std::uint64_t num_frames)
        : meta_(num_frames, 0), next_(num_frames, nil),
          prev_(num_frames, nil)
    {
        ctg_assert(num_frames < nil);
    }

    std::uint64_t size() const { return meta_.size(); }

    FrameRef
    frame(Pfn pfn)
    {
        ctg_assert(pfn < meta_.size());
        return FrameRef(this, pfn);
    }

    ConstFrameRef
    frame(Pfn pfn) const
    {
        ctg_assert(pfn < meta_.size());
        return ConstFrameRef(this, pfn);
    }

    /** Raw packed meta word — the ContigIndex resync hot path reads
     * this instead of going through a proxy per predicate. */
    std::uint16_t
    meta(Pfn pfn) const
    {
        ctg_assert(pfn < meta_.size());
        return meta_[pfn];
    }

    /** Materialize one frame as the old value type (tests, reference
     * models, and cold paths that want a stable copy). */
    PageFrame
    get(Pfn pfn) const
    {
        const ConstFrameRef f = frame(pfn);
        PageFrame out;
        out.flags = f.flags();
        out.order = static_cast<std::uint8_t>(f.order());
        out.migrateType = f.migrateType();
        out.source = f.source();
        out.owner = f.owner();
        out.allocSecond = f.allocSecond();
        return out;
    }

    std::uint32_t &next(Pfn pfn) { return next_[pfn]; }
    std::uint32_t &prev(Pfn pfn) { return prev_[pfn]; }

    /** Heap bytes of the whole frame table: the three columns plus
     * the side table (the footprint BENCH_fleet.json reports as
     * bytes/frame). */
    std::uint64_t
    bytesUsed() const
    {
        return meta_.capacity() * sizeof(std::uint16_t) +
               next_.capacity() * sizeof(std::uint32_t) +
               prev_.capacity() * sizeof(std::uint32_t) +
               side_.bytes();
    }

    /** Allocated-head entries currently in the side table. */
    std::uint64_t sideTableEntries() const { return side_.size(); }

    /** Serialize the meta column, the intrusive links, and the side
     * table (sorted by head PFN, so images are deterministic). The
     * columns *are* the frame table and the buddy free lists'
     * membership — restoring them wholesale restores both. Defined
     * in mem/physmem.cc (needs base/serde.hh). */
    void saveTo(serde::Writer &out) const;

    /** Overwrite from a snapshot; the serialized frame count must
     * equal size() (it is part of the snapshot's config fingerprint,
     * so a mismatch is corruption). Every field is validated — order
     * range, spare bits, link indices (< size() or nil), side-table
     * keys strictly increasing and naming allocated heads — before
     * any state is replaced. Throws serde::Error. */
    void loadFrom(serde::Reader &in);

  private:
    std::vector<std::uint16_t> meta_;
    std::vector<std::uint32_t> next_;
    std::vector<std::uint32_t> prev_;
    AllocSideTable side_;
};

} // namespace ctg

#endif // CTG_MEM_FRAME_HH
