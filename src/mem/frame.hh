/**
 * @file
 * Per-page-frame metadata (struct page analogue) and the frame array.
 *
 * The FrameArray owns the metadata for every physical frame of a
 * simulated server plus the intrusive free-list links used by the
 * buddy allocator. It is deliberately compact (24 bytes of metadata
 * plus 8 bytes of links per frame) so 64 GB servers — 16.7 M frames —
 * remain cheap to simulate.
 */

#ifndef CTG_MEM_FRAME_HH
#define CTG_MEM_FRAME_HH

#include <cstdint>
#include <vector>

#include "base/logging.hh"
#include "base/types.hh"
#include "mem/migratetype.hh"

namespace ctg
{

namespace serde
{
class Writer;
class Reader;
} // namespace serde

/** Per-frame metadata. Field meanings depend on the state bits:
 *  a frame is either free (possibly the head of a buddy block) or
 *  allocated (possibly the head of a multi-page allocation). */
struct PageFrame
{
    /** Opaque handle identifying the owner of an allocated page
     * (process/vpn for user pages, subsystem object for kernel). */
    std::uint64_t owner = 0;

    /** Tick at which the current allocation was made. */
    std::uint32_t allocSecond = 0;

    std::uint8_t flags = 0;
    std::uint8_t order = 0; //!< block order if head (free or allocated)
    MigrateType migrateType = MigrateType::Movable;
    AllocSource source = AllocSource::User;

    static constexpr std::uint8_t FlagFree = 1 << 0;
    static constexpr std::uint8_t FlagHead = 1 << 1;
    static constexpr std::uint8_t FlagPinned = 1 << 2;
    static constexpr std::uint8_t FlagMigrating = 1 << 3;

    bool isFree() const { return flags & FlagFree; }
    bool isHead() const { return flags & FlagHead; }
    bool isPinned() const { return flags & FlagPinned; }
    bool isMigrating() const { return flags & FlagMigrating; }

    void setFree(bool v) { setFlag(FlagFree, v); }
    void setHead(bool v) { setFlag(FlagHead, v); }
    void setPinned(bool v) { setFlag(FlagPinned, v); }
    void setMigrating(bool v) { setFlag(FlagMigrating, v); }

    /** An allocated frame counts as unmovable if its migratetype is
     * Unmovable/Reclaimable (kernel memory) or it is pinned. */
    bool
    isUnmovableAllocation() const
    {
        if (isFree())
            return false;
        return migrateType != MigrateType::Movable || isPinned();
    }

  private:
    void
    setFlag(std::uint8_t bit, bool v)
    {
        if (v)
            flags |= bit;
        else
            flags &= static_cast<std::uint8_t>(~bit);
    }
};

/**
 * Metadata for all frames of a simulated machine plus intrusive
 * doubly-linked free-list link storage (32-bit indices).
 */
class FrameArray
{
  public:
    /** Link index sentinel meaning "end of list". */
    static constexpr std::uint32_t nil = 0xffffffffu;

    explicit FrameArray(std::uint64_t num_frames)
        : frames_(num_frames), next_(num_frames, nil),
          prev_(num_frames, nil)
    {
        ctg_assert(num_frames < nil);
    }

    std::uint64_t size() const { return frames_.size(); }

    PageFrame &
    frame(Pfn pfn)
    {
        ctg_assert(pfn < frames_.size());
        return frames_[pfn];
    }

    const PageFrame &
    frame(Pfn pfn) const
    {
        ctg_assert(pfn < frames_.size());
        return frames_[pfn];
    }

    std::uint32_t &next(Pfn pfn) { return next_[pfn]; }
    std::uint32_t &prev(Pfn pfn) { return prev_[pfn]; }

    /** Serialize every frame plus the intrusive links (checkpoint).
     * The three vectors *are* the frame table and the buddy free
     * lists' membership — restoring them wholesale restores both.
     * Defined in mem/physmem.cc (needs base/serde.hh). */
    void saveTo(serde::Writer &out) const;

    /** Overwrite from a snapshot; the serialized frame count must
     * equal size() (it is part of the snapshot's config fingerprint,
     * so a mismatch is corruption). Throws serde::Error. */
    void loadFrom(serde::Reader &in);

  private:
    std::vector<PageFrame> frames_;
    std::vector<std::uint32_t> next_;
    std::vector<std::uint32_t> prev_;
};

} // namespace ctg

#endif // CTG_MEM_FRAME_HH
