#include "mem/mem_stats.hh"

#include "base/logging.hh"
#include "mem/scanner.hh"

namespace ctg
{

namespace
{

/** Align lo up and hi down to the block size; returns false if the
 * range contains no aligned block. Mirrors scan::reference exactly so
 * both read paths trim identically. */
bool
alignRange(Pfn &lo, Pfn &hi, unsigned order)
{
    const Pfn span = Pfn{1} << order;
    lo = (lo + span - 1) & ~(span - 1);
    hi = hi & ~(span - 1);
    return lo < hi;
}

} // namespace

std::uint64_t
MemStats::freePages() const
{
    return freePages(0, mem_->numFrames());
}

std::uint64_t
MemStats::freePages(Pfn lo, Pfn hi) const
{
    if (!useIndex())
        return scan::reference::freePages(*mem_, lo, hi);
    return index().freePagesIn(lo, hi);
}

std::uint64_t
MemStats::freeAlignedBlocks(unsigned order) const
{
    return freeAlignedBlocks(0, mem_->numFrames(), order);
}

std::uint64_t
MemStats::freeAlignedBlocks(Pfn lo, Pfn hi, unsigned order) const
{
    if (!useIndex())
        return scan::reference::freeAlignedBlocks(*mem_, lo, hi,
                                                  order);
    if (!alignRange(lo, hi, order))
        return 0;
    return index().fullyFreeBlocksIn(lo, hi, order);
}

double
MemStats::freeContiguityFraction(unsigned order) const
{
    return freeContiguityFraction(0, mem_->numFrames(), order);
}

double
MemStats::freeContiguityFraction(Pfn lo, Pfn hi,
                                 unsigned order) const
{
    if (!useIndex()) {
        return scan::reference::freeContiguityFraction(*mem_, lo, hi,
                                                       order);
    }
    const std::uint64_t free_total = freePages(lo, hi);
    if (free_total == 0)
        return 0.0;
    const std::uint64_t blocks = freeAlignedBlocks(lo, hi, order);
    const std::uint64_t pages_in_blocks = blocks << order;
    return static_cast<double>(pages_in_blocks) /
           static_cast<double>(free_total);
}

double
MemStats::unmovableBlockFraction(unsigned order) const
{
    return unmovableBlockFraction(0, mem_->numFrames(), order);
}

double
MemStats::unmovableBlockFraction(Pfn lo, Pfn hi,
                                 unsigned order) const
{
    if (!useIndex()) {
        return scan::reference::unmovableBlockFraction(*mem_, lo, hi,
                                                       order);
    }
    if (!alignRange(lo, hi, order))
        return 0.0;
    const std::uint64_t total = (hi - lo) >> order;
    const std::uint64_t tainted =
        index().taintedBlocksIn(lo, hi, order);
    return static_cast<double>(tainted) / static_cast<double>(total);
}

double
MemStats::potentialContiguityFraction(unsigned order) const
{
    return potentialContiguityFraction(0, mem_->numFrames(), order);
}

double
MemStats::potentialContiguityFraction(Pfn lo, Pfn hi,
                                      unsigned order) const
{
    if (!useIndex()) {
        return scan::reference::potentialContiguityFraction(
            *mem_, lo, hi, order);
    }
    const Pfn range_pages = hi - lo;
    if (range_pages == 0)
        return 0.0;
    Pfn alo = lo, ahi = hi;
    if (!alignRange(alo, ahi, order))
        return 0.0;
    const std::uint64_t total = (ahi - alo) >> order;
    const std::uint64_t tainted =
        index().taintedBlocksIn(alo, ahi, order);
    const std::uint64_t clean_pages = (total - tainted) << order;
    return static_cast<double>(clean_pages) /
           static_cast<double>(range_pages);
}

double
MemStats::unmovablePageRatio() const
{
    return unmovablePageRatio(0, mem_->numFrames());
}

double
MemStats::unmovablePageRatio(Pfn lo, Pfn hi) const
{
    if (!useIndex())
        return scan::reference::unmovablePageRatio(*mem_, lo, hi);
    ctg_assert(hi > lo);
    const std::uint64_t unmovable = index().unmovablePagesIn(lo, hi);
    return static_cast<double>(unmovable) /
           static_cast<double>(hi - lo);
}

std::array<std::uint64_t, numAllocSources>
MemStats::unmovableBySource() const
{
    return unmovableBySource(0, mem_->numFrames());
}

std::array<std::uint64_t, numAllocSources>
MemStats::unmovableBySource(Pfn lo, Pfn hi) const
{
    if (useIndex() && lo == 0 && hi == mem_->numFrames())
        return index().unmovableBySource();
    // The index only keeps machine-wide per-source totals; partial
    // ranges take the reference scan (no current caller needs one on
    // a hot path).
    return scan::reference::unmovableBySource(*mem_, lo, hi);
}

double
MemStats::meanFreeShareOfUnmovableBlocks() const
{
    return meanFreeShareOfUnmovableBlocks(0, mem_->numFrames());
}

double
MemStats::meanFreeShareOfUnmovableBlocks(Pfn lo, Pfn hi) const
{
    if (!useIndex()) {
        return scan::reference::meanFreeShareOfUnmovableBlocks(
            *mem_, lo, hi);
    }
    Pfn alo = lo, ahi = hi;
    if (!alignRange(alo, ahi, scan::order2M))
        return 0.0;
    const Pfn span = Pfn{1} << scan::order2M;
    const ContigIndex &idx = index();
    std::uint64_t blocks = 0;
    double free_share_sum = 0.0;
    // Same ascending block order as the reference loop, so the double
    // accumulation rounds identically.
    for (std::uint64_t i = alo >> scan::order2M;
         i < (ahi >> scan::order2M); ++i) {
        if (idx.nodeUnmovablePages(scan::order2M, i) == 0)
            continue;
        ++blocks;
        free_share_sum +=
            static_cast<double>(idx.nodeFreePages(scan::order2M, i)) /
            static_cast<double>(span);
    }
    return blocks ? free_share_sum / static_cast<double>(blocks) : 0.0;
}

} // namespace ctg
