/**
 * @file
 * Unified contiguity-metrics facade over one PhysMem.
 *
 * MemStats is the single read API for every paper metric (Figures 4,
 * 5, 6, 11, 12 and the Section 2.5 / 5.2 scalars). It answers from
 * the incremental ContigIndex by default — O(1) for whole-machine
 * queries instead of a full frame-array scan — and falls back to the
 * legacy scanner loops (scan::reference) when index reads are
 * disabled on the PhysMem, which keeps a slow reference path alive
 * for bit-identity tests and benchmarking.
 *
 * Both paths compute each double through the *same* arithmetic over
 * the same integer counts, so results are bit-identical, not merely
 * close; the figure regression suite asserts this at multiple thread
 * counts.
 */

#ifndef CTG_MEM_MEM_STATS_HH
#define CTG_MEM_MEM_STATS_HH

#include <array>
#include <cstdint>

#include "base/types.hh"
#include "mem/physmem.hh"

namespace ctg
{

/** Value-type view over one PhysMem; cheap to construct per query
 * batch (e.g. one sampler tick). Obtain via PhysMem::stats(). */
class MemStats
{
  public:
    explicit MemStats(const PhysMem &mem) : mem_(&mem) {}

    /** Number of free 4 KB frames. */
    std::uint64_t freePages() const;
    std::uint64_t freePages(Pfn lo, Pfn hi) const;

    /** Count of fully-free aligned blocks of the given order. */
    std::uint64_t freeAlignedBlocks(unsigned order) const;
    std::uint64_t freeAlignedBlocks(Pfn lo, Pfn hi,
                                    unsigned order) const;

    /** Figure 4 metric: fraction of *free memory* sitting inside
     * fully-free aligned blocks of the given order. */
    double freeContiguityFraction(unsigned order) const;
    double freeContiguityFraction(Pfn lo, Pfn hi,
                                  unsigned order) const;

    /** Figure 5 / 11 metric: fraction of aligned blocks containing
     * at least one unmovable page. */
    double unmovableBlockFraction(unsigned order) const;
    double unmovableBlockFraction(Pfn lo, Pfn hi,
                                  unsigned order) const;

    /** Figure 12 metric: fraction of total memory in aligned blocks
     * with *no* unmovable page. */
    double potentialContiguityFraction(unsigned order) const;
    double potentialContiguityFraction(Pfn lo, Pfn hi,
                                       unsigned order) const;

    /** Section 2.5 scalar: unmovable pages / all pages. */
    double unmovablePageRatio() const;
    double unmovablePageRatio(Pfn lo, Pfn hi) const;

    /** Unmovable page counts keyed by AllocSource (Figure 6). The
     * ranged overload falls back to a reference scan when the range
     * is not the whole machine. */
    std::array<std::uint64_t, numAllocSources>
    unmovableBySource() const;
    std::array<std::uint64_t, numAllocSources>
    unmovableBySource(Pfn lo, Pfn hi) const;

    /** Section 5.2 metric: mean free-page share of 2 MB blocks that
     * contain at least one unmovable page. */
    double meanFreeShareOfUnmovableBlocks() const;
    double meanFreeShareOfUnmovableBlocks(Pfn lo, Pfn hi) const;

  private:
    bool useIndex() const { return mem_->contigIndexReads(); }
    const ContigIndex &index() const { return mem_->contigIndex(); }

    const PhysMem *mem_;
};

} // namespace ctg

#endif // CTG_MEM_MEM_STATS_HH
