#include "mem/migratetype.hh"

namespace ctg
{

const char *
migrateTypeName(MigrateType mt)
{
    switch (mt) {
      case MigrateType::Movable:
        return "movable";
      case MigrateType::Unmovable:
        return "unmovable";
      case MigrateType::Reclaimable:
        return "reclaimable";
      case MigrateType::Isolate:
        return "isolate";
    }
    return "?";
}

const char *
allocSourceName(AllocSource src)
{
    switch (src) {
      case AllocSource::User:
        return "user";
      case AllocSource::Networking:
        return "networking";
      case AllocSource::Slab:
        return "slab";
      case AllocSource::Filesystem:
        return "filesystem";
      case AllocSource::PageTables:
        return "page tables";
      case AllocSource::KernelText:
        return "kernel text";
      case AllocSource::Other:
        return "others";
    }
    return "?";
}

} // namespace ctg
