/**
 * @file
 * Allocation mobility classes and allocation-source tags.
 *
 * MigrateType mirrors the Linux page allocator's migratetypes: the
 * buddy allocator keeps separate free lists per type and only mixes
 * them through the fallback (pageblock stealing) path — which is
 * exactly the mechanism the paper identifies as the root cause of
 * unmovable scattering (Section 2.5).
 *
 * AllocSource tags every allocation with the kernel subsystem that
 * requested it so the Figure 6 source breakdown can be reproduced by
 * scanning the frame array.
 */

#ifndef CTG_MEM_MIGRATETYPE_HH
#define CTG_MEM_MIGRATETYPE_HH

#include <cstdint>

namespace ctg
{

/** Mobility class of an allocation (Linux migratetype analogue). */
enum class MigrateType : std::uint8_t
{
    Movable = 0,     //!< user pages; can be migrated by compaction
    Unmovable = 1,   //!< kernel pages addressed via the linear map
    Reclaimable = 2, //!< slab/page-cache pages freeable under pressure
    Isolate = 3,     //!< quarantined pageblocks (region resizing);
                     //!< never allocated from, like MIGRATE_ISOLATE
};

constexpr unsigned numMigrateTypes = 4;

/** Subsystem that performed an allocation (for Figure 6). */
enum class AllocSource : std::uint8_t
{
    User = 0,       //!< anonymous / file-backed application memory
    Networking = 1, //!< skb send/receive buffers, pinned RDMA regions
    Slab = 2,       //!< kernel small-object allocator backing pages
    Filesystem = 3, //!< fs compression/decompression buffers
    PageTables = 4, //!< radix page-table pages
    KernelText = 5, //!< kernel code/static data (boot-time, immortal)
    Other = 6,      //!< everything else (drivers, per-cpu, ...)
};

constexpr unsigned numAllocSources = 7;

/** Human-readable migratetype name. */
const char *migrateTypeName(MigrateType mt);

/** Human-readable source name. */
const char *allocSourceName(AllocSource src);

/** Whether a source is unmovable by construction (vs. pinned later). */
constexpr bool
sourceIsKernel(AllocSource src)
{
    return src != AllocSource::User;
}

} // namespace ctg

#endif // CTG_MEM_MIGRATETYPE_HH
