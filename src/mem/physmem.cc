#include "mem/physmem.hh"

#include "base/logging.hh"

namespace ctg
{

PhysMem::PhysMem(std::uint64_t bytes)
    : numFrames_(bytes / pageBytes),
      frames_(bytes / pageBytes),
      blockMt_((bytes / pageBytes) >> hugeOrder, MigrateType::Movable)
{
    if (bytes == 0 || bytes % hugeBytes != 0)
        fatal("memory capacity must be a multiple of 2 MiB, got %llu",
              static_cast<unsigned long long>(bytes));
}

} // namespace ctg
