#include "mem/physmem.hh"

#include "base/logging.hh"
#include "mem/mem_stats.hh"

namespace ctg
{

PhysMem::PhysMem(std::uint64_t bytes)
    : numFrames_(bytes / pageBytes),
      frames_(bytes / pageBytes),
      blockMt_((bytes / pageBytes) >> hugeOrder, MigrateType::Movable),
      index_(frames_)
{
    if (bytes == 0 || bytes % hugeBytes != 0)
        fatal("memory capacity must be a multiple of 2 MiB, got %llu",
              static_cast<unsigned long long>(bytes));
}

MemStats
PhysMem::stats() const
{
    return MemStats(*this);
}

void
PhysMem::setRangePinned(Pfn lo, Pfn hi, bool pinned)
{
    for (Pfn pfn = lo; pfn < hi; ++pfn)
        frames_.frame(pfn).setPinned(pinned);
    noteFramesChanged(lo, hi);
}

void
PhysMem::setBlockPinned(Pfn head, bool pinned)
{
    const PageFrame &hf = frames_.frame(head);
    ctg_assert(!hf.isFree() && hf.isHead());
    const Pfn count = Pfn{1} << hf.order;
    setRangePinned(head, head + count, pinned);
}

} // namespace ctg
