#include "mem/physmem.hh"

#include "base/logging.hh"
#include "base/serde.hh"
#include "mem/mem_stats.hh"

namespace ctg
{

// Bulk POD serialization of the frame table: native layout, guarded.
// Any change here is a snapshot format change (bump
// snapshot::formatVersion).
static_assert(sizeof(PageFrame) == 16,
              "PageFrame layout changed: bump the snapshot format "
              "version and revisit FrameArray serialization");
static_assert(std::is_trivially_copyable_v<PageFrame>);
static_assert(sizeof(MigrateType) == 1);

void
FrameArray::saveTo(serde::Writer &out) const
{
    out.putPodVector(frames_);
    out.putPodVector(next_);
    out.putPodVector(prev_);
}

void
FrameArray::loadFrom(serde::Reader &in)
{
    std::vector<PageFrame> frames = in.getPodVector<PageFrame>();
    std::vector<std::uint32_t> next =
        in.getPodVector<std::uint32_t>();
    std::vector<std::uint32_t> prev =
        in.getPodVector<std::uint32_t>();
    if (frames.size() != frames_.size() ||
        next.size() != frames.size() || prev.size() != frames.size())
        throw serde::Error("frame table size mismatch");
    for (std::size_t i = 0; i < frames.size(); ++i) {
        const PageFrame &f = frames[i];
        // Valid block orders: 0..maxOrder (buddy) plus gigaOrder
        // (contiguous-range gigantic allocations).
        if (f.order > maxOrder && f.order != gigaOrder)
            throw serde::Error("frame order out of range");
        if (f.flags >> 4)
            throw serde::Error("unknown frame flag bits");
        if (static_cast<unsigned>(f.migrateType) >= numMigrateTypes)
            throw serde::Error("frame migratetype out of range");
        if (static_cast<unsigned>(f.source) >= numAllocSources)
            throw serde::Error("frame alloc source out of range");
        if ((next[i] != nil && next[i] >= frames.size()) ||
            (prev[i] != nil && prev[i] >= frames.size()))
            throw serde::Error("frame link out of range");
    }
    frames_ = std::move(frames);
    next_ = std::move(next);
    prev_ = std::move(prev);
}

void
PhysMem::saveTo(serde::Writer &out) const
{
    out.putU64(numFrames_);
    frames_.saveTo(out);
    out.putPodVector(blockMt_);
    out.putU32(nowSeconds);
}

void
PhysMem::loadFrom(serde::Reader &in)
{
    if (in.getU64() != numFrames_)
        throw serde::Error("physmem frame count mismatch");
    frames_.loadFrom(in);
    std::vector<MigrateType> blockMt =
        in.getPodVector<MigrateType>();
    if (blockMt.size() != blockMt_.size())
        throw serde::Error("pageblock tag count mismatch");
    for (const MigrateType mt : blockMt)
        if (static_cast<unsigned>(mt) >= numMigrateTypes)
            throw serde::Error("pageblock migratetype out of range");
    blockMt_ = std::move(blockMt);
    nowSeconds = in.getU32();
    // The index is derived state: rebuild it from the restored
    // frames so it is exact by construction.
    noteFramesChanged(0, numFrames_);
}

PhysMem::PhysMem(std::uint64_t bytes)
    : numFrames_(bytes / pageBytes),
      frames_(bytes / pageBytes),
      blockMt_((bytes / pageBytes) >> hugeOrder, MigrateType::Movable),
      index_(frames_)
{
    if (bytes == 0 || bytes % hugeBytes != 0)
        fatal("memory capacity must be a multiple of 2 MiB, got %llu",
              static_cast<unsigned long long>(bytes));
}

MemStats
PhysMem::stats() const
{
    return MemStats(*this);
}

void
PhysMem::setRangePinned(Pfn lo, Pfn hi, bool pinned)
{
    for (Pfn pfn = lo; pfn < hi; ++pfn)
        frames_.frame(pfn).setPinned(pinned);
    noteFramesChanged(lo, hi);
}

void
PhysMem::setBlockPinned(Pfn head, bool pinned)
{
    const PageFrame &hf = frames_.frame(head);
    ctg_assert(!hf.isFree() && hf.isHead());
    const Pfn count = Pfn{1} << hf.order;
    setRangePinned(head, head + count, pinned);
}

} // namespace ctg
