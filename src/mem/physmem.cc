#include "mem/physmem.hh"

#include "base/logging.hh"
#include "base/serde.hh"
#include "mem/mem_stats.hh"

namespace ctg
{

// Column-wise serialization of the struct-of-arrays frame table.
// Any change here is a snapshot format change (bump
// snapshot::formatVersion).
static_assert(sizeof(MigrateType) == 1);

void
FrameArray::saveTo(serde::Writer &out) const
{
    out.putPodVector(meta_);
    // The link columns carry the free lists *and* the overlaid owner
    // handles of allocated heads — one dump restores both.
    out.putPodVector(next_);
    out.putPodVector(prev_);
    // Side table in canonical (key-sorted) order so images of equal
    // state are byte-identical regardless of insertion history.
    const auto entries = side_.sortedEntries();
    out.putU64(entries.size());
    for (const AllocSideTable::Entry &e : entries) {
        out.putU32(e.key);
        out.putU32(e.second);
    }
}

void
FrameArray::loadFrom(serde::Reader &in)
{
    std::vector<std::uint16_t> meta =
        in.getPodVector<std::uint16_t>();
    std::vector<std::uint32_t> next =
        in.getPodVector<std::uint32_t>();
    std::vector<std::uint32_t> prev =
        in.getPodVector<std::uint32_t>();
    if (meta.size() != meta_.size() || next.size() != meta.size() ||
        prev.size() != meta.size())
        throw serde::Error("frame table size mismatch");
    for (std::size_t i = 0; i < meta.size(); ++i) {
        const std::uint16_t m = meta[i];
        // Valid block orders: 0..maxOrder (buddy) plus gigaOrder
        // (contiguous-range gigantic allocations).
        const unsigned order =
            (m >> metaOrderShift) & metaOrderMask;
        if (order > maxOrder && order != gigaOrder)
            throw serde::Error("frame order out of range");
        if (m & metaSpareMask)
            throw serde::Error("unknown frame flag bits");
        const unsigned src = (m >> metaSrcShift) & metaSrcMask;
        if (src >= numAllocSources)
            throw serde::Error("frame alloc source out of range");
        // Every deserialized link index the restored free lists can
        // traverse must be in-table (or nil) *before* the buddy
        // walks them — a CRC-passed payload is not a trusted
        // payload. Only free block heads are ever list members; the
        // link slots of other frames hold overlaid owner bits
        // (allocated heads) or stale history, neither of which is
        // ever dereferenced as a link.
        const bool traversable =
            (m & PageFrame::FlagFree) && (m & PageFrame::FlagHead);
        if (traversable &&
            ((next[i] != nil && next[i] >= meta.size()) ||
             (prev[i] != nil && prev[i] >= meta.size())))
            throw serde::Error("frame link out of range");
    }
    const std::uint64_t entries = in.getU64();
    if (entries > meta.size())
        throw serde::Error("side table larger than frame table");
    AllocSideTable side;
    std::uint64_t prev_key = 0;
    for (std::uint64_t i = 0; i < entries; ++i) {
        const std::uint32_t key = in.getU32();
        const std::uint32_t second = in.getU32();
        if (key >= meta.size())
            throw serde::Error("side table key out of range");
        if (i > 0 && key <= prev_key)
            throw serde::Error("side table keys not sorted");
        prev_key = key;
        const std::uint16_t m = meta[key];
        if ((m & PageFrame::FlagFree) ||
            !(m & PageFrame::FlagHead))
            throw serde::Error(
                "side table key is not an allocated head");
        if (second == 0)
            throw serde::Error("side table entry is zero");
        side.set(key, second);
    }
    meta_ = std::move(meta);
    next_ = std::move(next);
    prev_ = std::move(prev);
    side_ = std::move(side);
}

void
PhysMem::saveTo(serde::Writer &out) const
{
    out.putU64(numFrames_);
    frames_.saveTo(out);
    out.putPodVector(blockMt_);
    out.putU32(nowSeconds);
}

void
PhysMem::loadFrom(serde::Reader &in)
{
    if (in.getU64() != numFrames_)
        throw serde::Error("physmem frame count mismatch");
    frames_.loadFrom(in);
    std::vector<MigrateType> blockMt =
        in.getPodVector<MigrateType>();
    if (blockMt.size() != blockMt_.size())
        throw serde::Error("pageblock tag count mismatch");
    for (const MigrateType mt : blockMt)
        if (static_cast<unsigned>(mt) >= numMigrateTypes)
            throw serde::Error("pageblock migratetype out of range");
    blockMt_ = std::move(blockMt);
    nowSeconds = in.getU32();
    // The index is derived state: rebuild it from the restored
    // frames so it is exact by construction.
    noteFramesChanged(0, numFrames_);
}

PhysMem::PhysMem(std::uint64_t bytes)
    : numFrames_(bytes / pageBytes),
      frames_(bytes / pageBytes),
      blockMt_((bytes / pageBytes) >> hugeOrder, MigrateType::Movable),
      index_(frames_)
{
    if (bytes == 0 || bytes % hugeBytes != 0)
        fatal("memory capacity must be a multiple of 2 MiB, got %llu",
              static_cast<unsigned long long>(bytes));
}

MemStats
PhysMem::stats() const
{
    return MemStats(*this);
}

void
PhysMem::setRangePinned(Pfn lo, Pfn hi, bool pinned)
{
    for (Pfn pfn = lo; pfn < hi; ++pfn)
        frames_.frame(pfn).setPinned(pinned);
    noteFramesChanged(lo, hi);
}

void
PhysMem::setBlockPinned(Pfn head, bool pinned)
{
    const auto hf = frames_.frame(head);
    ctg_assert(!hf.isFree() && hf.isHead());
    const Pfn count = Pfn{1} << hf.order();
    setRangePinned(head, head + count, pinned);
}

} // namespace ctg
