/**
 * @file
 * Machine-wide physical memory state shared by all allocators.
 *
 * PhysMem owns the frame metadata array and the per-pageblock
 * migratetype tags (2 MB pageblocks, like Linux). Buddy allocator
 * instances cover disjoint PFN ranges of a single PhysMem; the
 * Contiguitas region manager splits one PhysMem between a movable and
 * an unmovable allocator and moves the boundary between them.
 */

#ifndef CTG_MEM_PHYSMEM_HH
#define CTG_MEM_PHYSMEM_HH

#include <cstdint>
#include <vector>

#include "base/types.hh"
#include "mem/frame.hh"
#include "mem/migratetype.hh"

namespace ctg
{

/** Shared physical memory state of one simulated server. */
class PhysMem
{
  public:
    /** Construct a machine with the given memory capacity. Capacity
     * must be a whole number of pageblocks (2 MB). */
    explicit PhysMem(std::uint64_t bytes);

    std::uint64_t totalBytes() const { return numFrames_ * pageBytes; }
    std::uint64_t numFrames() const { return numFrames_; }
    std::uint64_t numPageblocks() const { return blockMt_.size(); }

    FrameArray &frames() { return frames_; }
    const FrameArray &frames() const { return frames_; }

    PageFrame &frame(Pfn pfn) { return frames_.frame(pfn); }
    const PageFrame &frame(Pfn pfn) const { return frames_.frame(pfn); }

    /** Pageblock index containing a PFN. */
    static std::uint64_t
    blockIndex(Pfn pfn)
    {
        return pfn >> hugeOrder;
    }

    /** Migratetype tag of the pageblock containing pfn. */
    MigrateType
    blockMt(Pfn pfn) const
    {
        return blockMt_[blockIndex(pfn)];
    }

    void
    setBlockMt(Pfn pfn, MigrateType mt)
    {
        blockMt_[blockIndex(pfn)] = mt;
    }

    /** Wall-clock second used to stamp allocations (set by drivers). */
    std::uint32_t nowSeconds = 0;

  private:
    std::uint64_t numFrames_;
    FrameArray frames_;
    std::vector<MigrateType> blockMt_;
};

} // namespace ctg

#endif // CTG_MEM_PHYSMEM_HH
