/**
 * @file
 * Machine-wide physical memory state shared by all allocators.
 *
 * PhysMem owns the frame metadata array and the per-pageblock
 * migratetype tags (2 MB pageblocks, like Linux). Buddy allocator
 * instances cover disjoint PFN ranges of a single PhysMem; the
 * Contiguitas region manager splits one PhysMem between a movable and
 * an unmovable allocator and moves the boundary between them.
 *
 * PhysMem also owns the ContigIndex, the incremental contiguity
 * accounting structure (DESIGN.md §11). Any code that mutates the
 * free/unmovable/pinned/source state of frames must publish the
 * touched range via noteFramesChanged() — the buddy allocator does so
 * for all alloc/free/attach paths, and pin changes go through
 * setRangePinned()/setBlockPinned(). Metric reads go through the
 * MemStats facade returned by stats().
 */

#ifndef CTG_MEM_PHYSMEM_HH
#define CTG_MEM_PHYSMEM_HH

#include <cstdint>
#include <vector>

#include "base/types.hh"
#include "mem/contig_index.hh"
#include "mem/frame.hh"
#include "mem/migratetype.hh"

namespace ctg
{

class MemStats;

/** Shared physical memory state of one simulated server. */
class PhysMem
{
  public:
    /** Construct a machine with the given memory capacity. Capacity
     * must be a whole number of pageblocks (2 MB). */
    explicit PhysMem(std::uint64_t bytes);

    // The ContigIndex holds a reference to the frame array.
    PhysMem(const PhysMem &) = delete;
    PhysMem &operator=(const PhysMem &) = delete;

    std::uint64_t totalBytes() const { return numFrames_ * pageBytes; }
    std::uint64_t numFrames() const { return numFrames_; }
    std::uint64_t numPageblocks() const { return blockMt_.size(); }

    FrameArray &frames() { return frames_; }
    const FrameArray &frames() const { return frames_; }

    FrameArray::FrameRef frame(Pfn pfn) { return frames_.frame(pfn); }

    FrameArray::ConstFrameRef
    frame(Pfn pfn) const
    {
        return frames_.frame(pfn);
    }

    /** Pageblock index containing a PFN. */
    static std::uint64_t
    blockIndex(Pfn pfn)
    {
        return pfn >> hugeOrder;
    }

    /** Migratetype tag of the pageblock containing pfn. */
    MigrateType
    blockMt(Pfn pfn) const
    {
        return blockMt_[blockIndex(pfn)];
    }

    void
    setBlockMt(Pfn pfn, MigrateType mt)
    {
        blockMt_[blockIndex(pfn)] = mt;
    }

    /** @{ Incremental contiguity accounting. */

    /** Metric read facade (defined in mem/mem_stats.hh). */
    MemStats stats() const;

    const ContigIndex &contigIndex() const { return index_; }

    /** Publish frame-state changes in [lo, hi) to the index. */
    void noteFramesChanged(Pfn lo, Pfn hi) { index_.resync(lo, hi); }

    /** Pin or unpin every frame in [lo, hi), keeping the index
     * exact. Use instead of raw frame(pfn).setPinned(). */
    void setRangePinned(Pfn lo, Pfn hi, bool pinned);

    /** Pin or unpin an allocated block given its head frame. */
    void setBlockPinned(Pfn head, bool pinned);

    /** When true (default) MemStats answers from the ContigIndex;
     * when false it runs the legacy full scans. The index is
     * maintained either way, so the toggle only selects the read
     * path — used for bit-identity tests and benchmarks. The same
     * toggle gates the index-driven mutation hot paths (compaction,
     * region resizing, contiguous allocation), which are
     * bit-identical to the legacy walks by construction
     * (DESIGN.md §12). */
    bool contigIndexReads() const { return indexReads_; }
    void setContigIndexReads(bool on) { indexReads_ = on; }

    /** When true (default off; CTG_EXACT_PREF), AddrPref allocations
     * pick the exact lowest/highest-address free block via an index
     * descent instead of the capped free-list scan. Unlike the
     * contigIndexReads paths this deliberately changes placement —
     * it strengthens the away-from-border bias — so it has its own
     * flag and its own figure-regression check. Requires
     * contigIndexReads. */
    bool exactAddrPref() const { return exactPref_; }
    void setExactAddrPref(bool on) { exactPref_ = on; }

    /** @} */

    /** Wall-clock second used to stamp allocations (set by drivers). */
    std::uint32_t nowSeconds = 0;

    /** Serialize frames, links, pageblock tags and the clock. The
     * ContigIndex is deliberately NOT serialized: it is derived
     * state, rebuilt from the restored frames by a full resync in
     * loadFrom() (and cross-checked against a reference scan by the
     * MemAuditor before a restored server may run). */
    void saveTo(serde::Writer &out) const;

    /** Overwrite from a snapshot taken of an identically-sized
     * machine; throws serde::Error on any mismatch. */
    void loadFrom(serde::Reader &in);

  private:
    std::uint64_t numFrames_;
    FrameArray frames_;
    std::vector<MigrateType> blockMt_;
    ContigIndex index_;
    bool indexReads_ = true;
    bool exactPref_ = false;
};

} // namespace ctg

#endif // CTG_MEM_PHYSMEM_HH
