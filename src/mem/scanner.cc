#include "mem/scanner.hh"

#include "base/logging.hh"

namespace ctg
{
namespace scan
{
namespace reference
{

namespace
{

/** Align lo up and hi down to the block size; returns false if the
 * range contains no aligned block. */
bool
alignRange(Pfn &lo, Pfn &hi, unsigned order)
{
    const Pfn span = Pfn{1} << order;
    lo = (lo + span - 1) & ~(span - 1);
    hi = hi & ~(span - 1);
    return lo < hi;
}

} // namespace

std::uint64_t
freePages(const PhysMem &mem, Pfn lo, Pfn hi)
{
    std::uint64_t count = 0;
    for (Pfn pfn = lo; pfn < hi; ++pfn) {
        if (mem.frame(pfn).isFree())
            ++count;
    }
    return count;
}

std::uint64_t
freeAlignedBlocks(const PhysMem &mem, Pfn lo, Pfn hi, unsigned order)
{
    if (!alignRange(lo, hi, order))
        return 0;
    const Pfn span = Pfn{1} << order;
    std::uint64_t blocks = 0;
    for (Pfn base = lo; base < hi; base += span) {
        bool all_free = true;
        for (Pfn pfn = base; pfn < base + span; ++pfn) {
            if (!mem.frame(pfn).isFree()) {
                all_free = false;
                // Skip ahead: nothing before the next block boundary
                // can start a free block.
                break;
            }
        }
        if (all_free)
            ++blocks;
    }
    return blocks;
}

std::uint64_t
unmovableAlignedBlocks(const PhysMem &mem, Pfn lo, Pfn hi,
                       unsigned order)
{
    if (!alignRange(lo, hi, order))
        return 0;
    const Pfn span = Pfn{1} << order;
    std::uint64_t tainted = 0;
    for (Pfn base = lo; base < hi; base += span) {
        for (Pfn pfn = base; pfn < base + span; ++pfn) {
            if (mem.frame(pfn).isUnmovableAllocation()) {
                ++tainted;
                break;
            }
        }
    }
    return tainted;
}

double
freeContiguityFraction(const PhysMem &mem, Pfn lo, Pfn hi,
                       unsigned order)
{
    const std::uint64_t free_total = freePages(mem, lo, hi);
    if (free_total == 0)
        return 0.0;
    const std::uint64_t blocks = freeAlignedBlocks(mem, lo, hi, order);
    const std::uint64_t pages_in_blocks = blocks << order;
    return static_cast<double>(pages_in_blocks) /
           static_cast<double>(free_total);
}

double
unmovableBlockFraction(const PhysMem &mem, Pfn lo, Pfn hi,
                       unsigned order)
{
    if (!alignRange(lo, hi, order))
        return 0.0;
    const Pfn span = Pfn{1} << order;
    std::uint64_t total = 0;
    std::uint64_t tainted = 0;
    for (Pfn base = lo; base < hi; base += span) {
        ++total;
        for (Pfn pfn = base; pfn < base + span; ++pfn) {
            if (mem.frame(pfn).isUnmovableAllocation()) {
                ++tainted;
                break;
            }
        }
    }
    return static_cast<double>(tainted) / static_cast<double>(total);
}

double
potentialContiguityFraction(const PhysMem &mem, Pfn lo, Pfn hi,
                            unsigned order)
{
    const Pfn range_pages = hi - lo;
    if (range_pages == 0)
        return 0.0;
    Pfn alo = lo, ahi = hi;
    if (!alignRange(alo, ahi, order))
        return 0.0;
    const Pfn span = Pfn{1} << order;
    std::uint64_t clean_pages = 0;
    for (Pfn base = alo; base < ahi; base += span) {
        bool clean = true;
        for (Pfn pfn = base; pfn < base + span; ++pfn) {
            if (mem.frame(pfn).isUnmovableAllocation()) {
                clean = false;
                break;
            }
        }
        if (clean)
            clean_pages += span;
    }
    return static_cast<double>(clean_pages) /
           static_cast<double>(range_pages);
}

double
unmovablePageRatio(const PhysMem &mem, Pfn lo, Pfn hi)
{
    ctg_assert(hi > lo);
    std::uint64_t unmovable = 0;
    for (Pfn pfn = lo; pfn < hi; ++pfn) {
        if (mem.frame(pfn).isUnmovableAllocation())
            ++unmovable;
    }
    return static_cast<double>(unmovable) /
           static_cast<double>(hi - lo);
}

std::array<std::uint64_t, numAllocSources>
unmovableBySource(const PhysMem &mem, Pfn lo, Pfn hi)
{
    std::array<std::uint64_t, numAllocSources> counts{};
    for (Pfn pfn = lo; pfn < hi; ++pfn) {
        const auto f = mem.frame(pfn);
        if (f.isUnmovableAllocation())
            ++counts[static_cast<unsigned>(f.source())];
    }
    return counts;
}

double
meanFreeShareOfUnmovableBlocks(const PhysMem &mem, Pfn lo, Pfn hi)
{
    Pfn alo = lo, ahi = hi;
    if (!alignRange(alo, ahi, order2M))
        return 0.0;
    const Pfn span = Pfn{1} << order2M;
    std::uint64_t blocks = 0;
    double free_share_sum = 0.0;
    for (Pfn base = alo; base < ahi; base += span) {
        std::uint64_t free_count = 0;
        bool has_unmovable = false;
        for (Pfn pfn = base; pfn < base + span; ++pfn) {
            const auto f = mem.frame(pfn);
            if (f.isFree())
                ++free_count;
            else if (f.isUnmovableAllocation())
                has_unmovable = true;
        }
        if (has_unmovable) {
            ++blocks;
            free_share_sum += static_cast<double>(free_count) /
                              static_cast<double>(span);
        }
    }
    return blocks ? free_share_sum / static_cast<double>(blocks) : 0.0;
}

} // namespace reference

} // namespace scan
} // namespace ctg
