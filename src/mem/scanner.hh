/**
 * @file
 * Physical-memory scans reproducing the paper's measurement
 * methodology (Sections 2.4, 2.5, 5.2).
 *
 * The loop implementations now live in scan::reference: full O(n)
 * passes over the frame array that serve as the ground truth the
 * incremental ContigIndex is audited against. The top-level scan::*
 * entry points are deprecated thin wrappers over the MemStats facade
 * (PhysMem::stats()), kept so existing benches and tests compile;
 * new code should use MemStats directly.
 */

#ifndef CTG_MEM_SCANNER_HH
#define CTG_MEM_SCANNER_HH

#include <array>
#include <cstdint>

#include "base/types.hh"
#include "mem/physmem.hh"

namespace ctg
{
namespace scan
{

/** Orders of the block sizes the paper reports on. */
constexpr unsigned order2M = hugeOrder;       // 9
constexpr unsigned order4M = hugeOrder + 1;   // 10
constexpr unsigned order32M = hugeOrder + 4;  // 13
constexpr unsigned order1G = gigaOrder;       // 18

/**
 * Slow reference path: full frame-array scans, independent of the
 * ContigIndex. Used by the auditor cross-check, the bit-identity
 * tests, and as the fallback when index reads are disabled.
 */
namespace reference
{

std::uint64_t freePages(const PhysMem &mem, Pfn lo, Pfn hi);
double freeContiguityFraction(const PhysMem &mem, Pfn lo, Pfn hi,
                              unsigned order);
std::uint64_t freeAlignedBlocks(const PhysMem &mem, Pfn lo, Pfn hi,
                                unsigned order);
/** Count of aligned blocks containing >= 1 unmovable page. */
std::uint64_t unmovableAlignedBlocks(const PhysMem &mem, Pfn lo,
                                     Pfn hi, unsigned order);
double unmovableBlockFraction(const PhysMem &mem, Pfn lo, Pfn hi,
                              unsigned order);
double potentialContiguityFraction(const PhysMem &mem, Pfn lo, Pfn hi,
                                   unsigned order);
double unmovablePageRatio(const PhysMem &mem, Pfn lo, Pfn hi);
std::array<std::uint64_t, numAllocSources>
unmovableBySource(const PhysMem &mem, Pfn lo, Pfn hi);
double meanFreeShareOfUnmovableBlocks(const PhysMem &mem, Pfn lo,
                                      Pfn hi);

} // namespace reference

/** @{ Deprecated wrappers — use PhysMem::stats() (MemStats). */

/** Number of free 4 KB frames in [lo, hi). */
std::uint64_t freePages(const PhysMem &mem, Pfn lo, Pfn hi);

/**
 * Figure 4 metric: fraction of *free memory* that sits inside
 * fully-free aligned blocks of the given order. 0 when no memory is
 * free.
 */
double freeContiguityFraction(const PhysMem &mem, Pfn lo, Pfn hi,
                              unsigned order);

/** Count of fully-free aligned blocks of the given order. */
std::uint64_t freeAlignedBlocks(const PhysMem &mem, Pfn lo, Pfn hi,
                                unsigned order);

/**
 * Figure 5 / Figure 11 metric: fraction of aligned blocks of the
 * given order that contain at least one unmovable page (kernel
 * migratetype or pinned).
 */
double unmovableBlockFraction(const PhysMem &mem, Pfn lo, Pfn hi,
                              unsigned order);

/**
 * Figure 12 metric: fraction of total memory in aligned blocks
 * containing *no* unmovable page — the contiguity a perfect software
 * compaction could recover.
 */
double potentialContiguityFraction(const PhysMem &mem, Pfn lo, Pfn hi,
                                   unsigned order);

/** Ratio of unmovable 4 KB pages to all pages (Section 2.5: 7.6%). */
double unmovablePageRatio(const PhysMem &mem, Pfn lo, Pfn hi);

/** Unmovable page counts keyed by AllocSource (Figure 6). */
std::array<std::uint64_t, numAllocSources>
unmovableBySource(const PhysMem &mem, Pfn lo, Pfn hi);

/**
 * Section 5.2 internal-fragmentation metric: among 2 MB blocks that
 * contain at least one unmovable page in [lo, hi), the mean fraction
 * of *free* pages per block (paper: 22% inside the unmovable region).
 */
double meanFreeShareOfUnmovableBlocks(const PhysMem &mem, Pfn lo,
                                      Pfn hi);

/** @} */

} // namespace scan
} // namespace ctg

#endif // CTG_MEM_SCANNER_HH
