/**
 * @file
 * Physical-memory scans reproducing the paper's measurement
 * methodology (Sections 2.4, 2.5, 5.2).
 *
 * The loop implementations live in scan::reference: full O(n) passes
 * over the frame array that serve as the ground truth the incremental
 * ContigIndex is audited against. Metric consumers use the MemStats
 * facade (PhysMem::stats()) directly; the deprecated top-level scan::*
 * wrappers have been removed.
 */

#ifndef CTG_MEM_SCANNER_HH
#define CTG_MEM_SCANNER_HH

#include <array>
#include <cstdint>

#include "base/types.hh"
#include "mem/physmem.hh"

namespace ctg
{
namespace scan
{

/** Orders of the block sizes the paper reports on. */
constexpr unsigned order2M = hugeOrder;       // 9
constexpr unsigned order4M = hugeOrder + 1;   // 10
constexpr unsigned order32M = hugeOrder + 4;  // 13
constexpr unsigned order1G = gigaOrder;       // 18

/**
 * Slow reference path: full frame-array scans, independent of the
 * ContigIndex. Used by the auditor cross-check, the bit-identity
 * tests, and as the fallback when index reads are disabled.
 */
namespace reference
{

std::uint64_t freePages(const PhysMem &mem, Pfn lo, Pfn hi);
double freeContiguityFraction(const PhysMem &mem, Pfn lo, Pfn hi,
                              unsigned order);
std::uint64_t freeAlignedBlocks(const PhysMem &mem, Pfn lo, Pfn hi,
                                unsigned order);
/** Count of aligned blocks containing >= 1 unmovable page. */
std::uint64_t unmovableAlignedBlocks(const PhysMem &mem, Pfn lo,
                                     Pfn hi, unsigned order);
double unmovableBlockFraction(const PhysMem &mem, Pfn lo, Pfn hi,
                              unsigned order);
double potentialContiguityFraction(const PhysMem &mem, Pfn lo, Pfn hi,
                                   unsigned order);
double unmovablePageRatio(const PhysMem &mem, Pfn lo, Pfn hi);
std::array<std::uint64_t, numAllocSources>
unmovableBySource(const PhysMem &mem, Pfn lo, Pfn hi);
double meanFreeShareOfUnmovableBlocks(const PhysMem &mem, Pfn lo,
                                      Pfn hi);

} // namespace reference

} // namespace scan
} // namespace ctg

#endif // CTG_MEM_SCANNER_HH
