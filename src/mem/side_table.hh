/**
 * @file
 * Sparse allocation-era metadata: an open-addressing hash table
 * keyed by allocation-head PFN.
 *
 * The struct-of-arrays frame table (mem/frame.hh) keeps only the hot
 * per-frame bits inline and overlays the owner handle onto the dead
 * free-list link slots of allocated heads; the one cold field left —
 * the allocation timestamp — lives here, one 8-byte entry per
 * *allocated block head with a nonzero timestamp*. Free frames have
 * no entry (PR 5 established their allocation-era fields are dead),
 * and blocks allocated at second 0 are kept out of the table
 * entirely — a missing entry reads back as 0, exactly what the old
 * array-of-structs layout stored.
 *
 * The table is a bespoke linear-probing map rather than
 * std::unordered_map because the per-entry cost is the whole point:
 * a node-based map spends ~6x the 8 bytes an Entry needs, which
 * would hand back most of the diet on order-0-heavy workloads. It
 * runs denser than a general-purpose table (grow at 13/16 load) and
 * shrinks when erases empty it out, since the 4K-dense fleet servers
 * this exists for live near the high-water mark. Deletion uses
 * backward-shift (no tombstones), so lookup cost never degrades over
 * a server's lifetime. Iteration order is never exposed —
 * serialization sorts by key — so the table contributes no
 * nondeterminism to snapshots or stats.
 */

#ifndef CTG_MEM_SIDE_TABLE_HH
#define CTG_MEM_SIDE_TABLE_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "base/logging.hh"

namespace ctg
{

/** Open-addressing map: head PFN -> allocation second. */
class AllocSideTable
{
  public:
    struct Entry
    {
        std::uint32_t key = emptyKey;
        std::uint32_t second = 0;
    };
    static_assert(sizeof(Entry) == 8);

    /** Never a valid PFN (FrameArray caps size below this). */
    static constexpr std::uint32_t emptyKey = 0xffffffffu;

    /** Insert or overwrite. Storing second 0 is the same as erasing:
     * absent entries read as zero. */
    void
    set(std::uint32_t key, std::uint32_t second)
    {
        ctg_assert(key != emptyKey);
        if (second == 0) {
            erase(key);
            return;
        }
        if ((size_ + 1) * 16 > capacity() * std::uint64_t{13})
            rehash(std::max<std::size_t>(16, capacity() * 2));
        const std::uint32_t mask = capacity() - 1;
        std::uint32_t i = indexFor(key);
        while (slots_[i].key != emptyKey) {
            if (slots_[i].key == key) {
                slots_[i].second = second;
                return;
            }
            i = (i + 1) & mask;
        }
        slots_[i] = Entry{key, second};
        ++size_;
    }

    /** Allocation second for a head PFN; 0 when absent. */
    std::uint32_t
    secondFor(std::uint32_t key) const
    {
        if (size_ == 0)
            return 0;
        const std::uint32_t mask = capacity() - 1;
        std::uint32_t i = indexFor(key);
        while (slots_[i].key != emptyKey) {
            if (slots_[i].key == key)
                return slots_[i].second;
            i = (i + 1) & mask;
        }
        return 0;
    }

    /** Remove by backward-shifting the probe chain (no tombstones). */
    bool
    erase(std::uint32_t key)
    {
        if (size_ == 0)
            return false;
        const std::uint32_t mask = capacity() - 1;
        std::uint32_t i = indexFor(key);
        while (true) {
            if (slots_[i].key == emptyKey)
                return false;
            if (slots_[i].key == key)
                break;
            i = (i + 1) & mask;
        }
        // An entry at s can fill the hole at j iff j lies on its
        // probe path, i.e. the displacement of s from its ideal slot
        // covers the distance from j to s.
        std::uint32_t j = i;
        std::uint32_t s = i;
        while (true) {
            s = (s + 1) & mask;
            if (slots_[s].key == emptyKey)
                break;
            const std::uint32_t ideal = indexFor(slots_[s].key);
            if (((s - ideal) & mask) >= ((s - j) & mask)) {
                slots_[j] = slots_[s];
                j = s;
            }
        }
        slots_[j] = Entry{};
        --size_;
        // Fleet servers are measured by their end-of-run footprint;
        // give churn-heavy phases their memory back once the table
        // drops well below the grow threshold (wide hysteresis, so
        // alloc/free cycling cannot thrash rehashes).
        if (capacity() > 16 && size_ * 8 < capacity())
            rehash(capacity() / 2);
        return true;
    }

    std::uint64_t size() const { return size_; }

    /** Heap bytes held (the footprint the diet accounts for). */
    std::uint64_t
    bytes() const
    {
        return static_cast<std::uint64_t>(slots_.capacity()) *
               sizeof(Entry);
    }

    void
    clear()
    {
        slots_.clear();
        slots_.shrink_to_fit();
        size_ = 0;
    }

    /** Entries sorted by key — the canonical (deterministic) order
     * used by serialization. */
    std::vector<Entry>
    sortedEntries() const
    {
        std::vector<Entry> out;
        out.reserve(size_);
        for (const Entry &e : slots_) {
            if (e.key != emptyKey)
                out.push_back(e);
        }
        std::sort(out.begin(), out.end(),
                  [](const Entry &a, const Entry &b) {
                      return a.key < b.key;
                  });
        return out;
    }

  private:
    std::uint32_t
    capacity() const
    {
        return static_cast<std::uint32_t>(slots_.size());
    }

    std::uint32_t
    indexFor(std::uint32_t key) const
    {
        // Fibonacci hashing spreads the sequential PFN keys the
        // allocator produces; power-of-two capacity keeps the probe
        // arithmetic mask-only.
        return (key * 0x9e3779b1u) & (capacity() - 1);
    }

    void
    rehash(std::size_t cap)
    {
        std::vector<Entry> old = std::move(slots_);
        slots_.assign(cap, Entry{});
        size_ = 0;
        for (const Entry &e : old) {
            if (e.key != emptyKey)
                set(e.key, e.second);
        }
    }

    std::vector<Entry> slots_;
    std::uint64_t size_ = 0;
};

} // namespace ctg

#endif // CTG_MEM_SIDE_TABLE_HH
