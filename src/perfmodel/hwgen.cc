#include "perfmodel/hwgen.hh"

namespace ctg
{

std::vector<HwGeneration>
hwGenerations()
{
    // Capacity trend ~8x over five generations with essentially
    // stagnant TLB entry counts (Section 2.2).
    const std::uint64_t gen1 = std::uint64_t{64} << 30;
    return {
        {"Gen 1", 1.0, gen1, 1536},
        {"Gen 2", 1.9,
         static_cast<std::uint64_t>(1.9 * static_cast<double>(gen1)),
         1536},
        {"Gen 3", 3.3,
         static_cast<std::uint64_t>(3.3 * static_cast<double>(gen1)),
         2048},
        {"Gen 4", 5.6,
         static_cast<std::uint64_t>(5.6 * static_cast<double>(gen1)),
         2048},
        {"Gen 5", 7.9,
         static_cast<std::uint64_t>(7.9 * static_cast<double>(gen1)),
         2048},
    };
}

double
tlbCoverage(const HwGeneration &gen, std::uint64_t page_bytes)
{
    const double mapped = static_cast<double>(gen.tlbEntries) *
                          static_cast<double>(page_bytes);
    return mapped / static_cast<double>(gen.capacityBytes);
}

} // namespace ctg
