/**
 * @file
 * Hardware-generation trends (Figure 2): memory capacity grows ~8x
 * across five server generations while TLB entry counts stay in the
 * low thousands, so TLB coverage — the fraction of memory the TLB
 * can map — collapses unless page sizes grow.
 */

#ifndef CTG_PERFMODEL_HWGEN_HH
#define CTG_PERFMODEL_HWGEN_HH

#include <array>
#include <cstdint>
#include <vector>

#include "base/types.hh"

namespace ctg
{

/** One server generation. */
struct HwGeneration
{
    const char *name;
    /** Memory capacity relative to Gen 1. */
    double relativeCapacity;
    /** Absolute capacity (Gen 1 = 64 GB). */
    std::uint64_t capacityBytes;
    /** Total data-TLB entries. */
    unsigned tlbEntries;
};

/** The five generations of the paper's Figure 2. */
std::vector<HwGeneration> hwGenerations();

/** TLB coverage (mapped bytes / capacity) for a page size. */
double tlbCoverage(const HwGeneration &gen, std::uint64_t page_bytes);

} // namespace ctg

#endif // CTG_PERFMODEL_HWGEN_HH
