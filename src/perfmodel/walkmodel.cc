#include "perfmodel/walkmodel.hh"

#include "hw/core.hh"
#include "kernel/addrspace.hh"

namespace ctg
{

namespace
{

/** Fault a region in with the requested page-size mix. */
void
backRegionMixed(AddressSpace &space, Addr base, std::uint64_t bytes,
                const BackingMix &mix, Rng &rng)
{
    Addr pos = base;
    std::uint64_t remaining = bytes;

    for (unsigned g = 0; g < mix.gigaPages && remaining >= gigaBytes;
         ++g) {
        if (space.backWithGigantic(pos)) {
            pos += gigaBytes;
            remaining -= gigaBytes;
        } else {
            break;
        }
    }

    while (remaining >= hugeBytes) {
        if (mix.hugeFraction > 0.0 && rng.chance(mix.hugeFraction)) {
            space.touchRange(pos, hugeBytes);
        } else {
            // Page-wise touches force 4 KB backing.
            for (Addr off = 0; off < hugeBytes; off += pageBytes)
                space.touchRange(pos + off, pageBytes);
        }
        pos += hugeBytes;
        remaining -= hugeBytes;
    }
    for (Addr off = 0; off < remaining; off += pageBytes)
        space.touchRange(pos + off, pageBytes);
}

} // namespace

WalkMeasurement
measureWalkCycles(const AccessProfile &profile,
                  const BackingMix &data_mix,
                  const BackingMix &code_mix, std::uint64_t ops,
                  std::uint64_t seed)
{
    // A machine big enough to back both footprints with slack.
    KernelConfig kc;
    const std::uint64_t need =
        profile.dataBytes + profile.codeBytes;
    kc.memBytes = ((need + (need / 4) + gigaBytes) + hugeBytes - 1) &
                  ~(hugeBytes - 1);
    kc.kernelTextBytes = std::uint64_t{8} << 20;
    kc.thpEnabled = true;
    kc.seed = seed;
    Kernel kernel(kc);
    AddressSpace space(kernel, 1);
    Rng rng(seed ^ 0xacce55);

    const Addr data_base = space.mmap(profile.dataBytes);
    const Addr code_base = space.mmap(profile.codeBytes);
    backRegionMixed(space, data_base, profile.dataBytes, data_mix,
                    rng);
    backRegionMixed(space, code_base, profile.codeBytes, code_mix,
                    rng);

    HwSystem hw;
    AccessStream stream(profile, data_base, code_base, seed ^ 0x57);
    Core core(hw, 0, space.pageTables(), profile.computePerOp);
    std::uint64_t token = 0;
    const Core::TraceFn trace = [&stream, &token]() {
        Core::Op op;
        op.codeAddr = stream.nextCode();
        op.dataAddr = stream.nextData(&op.isWrite);
        op.writeValue = token++;
        return op;
    };

    core.warmup(trace, ops / 8 + 1);
    core.run(trace, ops);

    WalkMeasurement m;
    const Core::Stats &stats = core.stats();
    m.totalCycles = stats.totalCycles;
    m.instrWalkCycles = stats.instrWalkCycles;
    m.dataWalkCycles = stats.dataWalkCycles;
    m.ops = stats.ops;
    m.dataWalkFrac = stats.dataWalkFrac();
    m.instrWalkFrac = stats.instrWalkFrac();
    return m;
}

} // namespace ctg
