/**
 * @file
 * Page-walk cycle measurement (Figure 3) and the end-to-end
 * performance model (Figure 10).
 *
 * A service's instruction and data streams run through the simulated
 * TLB hierarchy against address spaces backed with a configurable
 * page-size mix; walk cycles fall out of the simulation. For
 * Figure 10 the mix is whatever the memory-layout simulation says
 * each kernel managed to allocate (huge-page coverage), closing the
 * loop between fragmentation and end-to-end performance.
 */

#ifndef CTG_PERFMODEL_WALKMODEL_HH
#define CTG_PERFMODEL_WALKMODEL_HH

#include "hw/system.hh"
#include "workloads/access_gen.hh"

namespace ctg
{

/** How a region is backed for a measurement. */
struct BackingMix
{
    /** 1 GB pages backing the start of the data region. */
    unsigned gigaPages = 0;
    /** Probability that a remaining 2 MB chunk gets a huge page. */
    double hugeFraction = 0.0;
};

/** Result of one walk-cycle measurement. */
struct WalkMeasurement
{
    double dataWalkFrac = 0.0;  //!< data walk cycles / total cycles
    double instrWalkFrac = 0.0; //!< instr walk cycles / total
    Cycles totalCycles = 0;
    Cycles dataWalkCycles = 0;
    Cycles instrWalkCycles = 0;
    std::uint64_t ops = 0;

    double
    totalWalkFrac() const
    {
        return dataWalkFrac + instrWalkFrac;
    }

    /** Cycles per operation (for relative-performance ratios). */
    double
    cpo() const
    {
        return ops == 0 ? 0.0
                        : static_cast<double>(totalCycles) /
                              static_cast<double>(ops);
    }
};

/**
 * Run an instruction+data reference stream against the TLB
 * hierarchy with the given backing mixes.
 *
 * @param profile reference-behaviour parameters
 * @param data_mix page-size mix for the data region
 * @param code_mix page-size mix for the code region
 * @param ops measured operations (after warmup)
 */
WalkMeasurement measureWalkCycles(const AccessProfile &profile,
                                  const BackingMix &data_mix,
                                  const BackingMix &code_mix,
                                  std::uint64_t ops,
                                  std::uint64_t seed);

} // namespace ctg

#endif // CTG_PERFMODEL_WALKMODEL_HH
