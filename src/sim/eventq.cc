#include "sim/eventq.hh"

namespace ctg
{

bool
EventQueue::step()
{
    if (heap_.empty())
        return false;
    // priority_queue::top() is const; move out via const_cast, which is
    // safe because we pop immediately afterwards.
    Entry entry = std::move(const_cast<Entry &>(heap_.top()));
    heap_.pop();
    ctg_assert(entry.when >= now_);
    now_ = entry.when;
    entry.callback();
    return true;
}

void
EventQueue::run(Tick limit)
{
    while (!heap_.empty() && heap_.top().when <= limit) {
        if (!step())
            break;
    }
}

} // namespace ctg
