/**
 * @file
 * Discrete-event simulation core.
 *
 * A single EventQueue orders callbacks by (tick, priority, sequence).
 * Sequence numbers make scheduling deterministic: two events scheduled
 * for the same tick and priority fire in the order they were scheduled,
 * so a given seed always reproduces the same simulation.
 */

#ifndef CTG_SIM_EVENTQ_HH
#define CTG_SIM_EVENTQ_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "base/logging.hh"
#include "base/types.hh"

namespace ctg
{

/** Priority classes; lower values fire first within a tick. */
enum class EventPriority : int
{
    HardwareResponse = 0,
    Default = 10,
    Maintenance = 20,
};

/**
 * Tick-ordered event queue with deterministic tie-breaking.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedule a callback at an absolute tick (>= now). */
    void
    scheduleAt(Tick when, Callback cb,
               EventPriority prio = EventPriority::Default)
    {
        ctg_assert(when >= now_);
        heap_.push(Entry{when, static_cast<int>(prio), seq_++,
                         std::move(cb)});
    }

    /** Schedule a callback a relative number of ticks in the future. */
    void
    schedule(Tick delay, Callback cb,
             EventPriority prio = EventPriority::Default)
    {
        scheduleAt(now_ + delay, std::move(cb), prio);
    }

    bool empty() const { return heap_.empty(); }
    std::size_t pending() const { return heap_.size(); }

    /** Execute the single next event; returns false if none remain. */
    bool step();

    /** Run until the queue drains or the tick limit is exceeded. */
    void run(Tick limit = ~Tick{0});

    /** Advance time without executing events (for idle phases). */
    void
    advanceTo(Tick when)
    {
        ctg_assert(when >= now_);
        ctg_assert(heap_.empty() || heap_.top().when >= when);
        now_ = when;
    }

  private:
    struct Entry
    {
        Tick when;
        int priority;
        std::uint64_t seq;
        Callback callback;

        bool
        operator>(const Entry &other) const
        {
            if (when != other.when)
                return when > other.when;
            if (priority != other.priority)
                return priority > other.priority;
            return seq > other.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
    Tick now_ = 0;
    std::uint64_t seq_ = 0;
};

} // namespace ctg

#endif // CTG_SIM_EVENTQ_HH
