#include "sim/executor.hh"

#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "base/env_config.hh"
#include "base/logging.hh"

namespace ctg
{

unsigned
Executor::defaultThreads()
{
    const unsigned env_threads = sim::EnvConfig::fromEnv().threads;
    if (env_threads >= 1)
        return env_threads;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? hw : 1;
}

Executor::Executor(unsigned threads)
    : threads_(threads != 0 ? threads : defaultThreads())
{}

namespace
{

/** One worker's share of the task indices, stealable by siblings. */
struct WorkerQueue
{
    std::mutex mutex;
    std::deque<std::size_t> tasks;

    bool
    popFront(std::size_t *out)
    {
        const std::lock_guard<std::mutex> lock(mutex);
        if (tasks.empty())
            return false;
        *out = tasks.front();
        tasks.pop_front();
        return true;
    }

    bool
    stealBack(std::size_t *out)
    {
        const std::lock_guard<std::mutex> lock(mutex);
        if (tasks.empty())
            return false;
        *out = tasks.back();
        tasks.pop_back();
        return true;
    }
};

} // namespace

void
Executor::run(std::size_t count,
              const std::function<void(std::size_t)> &task)
{
    if (count == 0)
        return;

    // Failures are recorded per task and the lowest-indexed one is
    // rethrown after the join, regardless of which worker hit it
    // first — sequential and parallel runs fail identically.
    std::vector<std::exception_ptr> errors(count);

    const auto guarded = [&](std::size_t i) {
        try {
            task(i);
        } catch (...) {
            errors[i] = std::current_exception();
        }
    };

    const unsigned workers = static_cast<unsigned>(
        std::min<std::size_t>(threads_, count));
    if (workers <= 1) {
        // Legacy path: inline, in index order, no threads.
        for (std::size_t i = 0; i < count; ++i)
            guarded(i);
    } else {
        std::vector<WorkerQueue> queues(workers);
        for (std::size_t i = 0; i < count; ++i)
            queues[i % workers].tasks.push_back(i);

        const auto workerLoop = [&](unsigned self) {
            std::size_t i;
            for (;;) {
                if (queues[self].popFront(&i)) {
                    guarded(i);
                    continue;
                }
                bool stole = false;
                for (unsigned v = 1; v < workers && !stole; ++v) {
                    stole = queues[(self + v) % workers]
                                .stealBack(&i);
                }
                if (!stole)
                    return; // every queue drained; claimed tasks
                            // finish on their claimants
                guarded(i);
            }
        };

        std::vector<std::thread> pool;
        pool.reserve(workers - 1);
        for (unsigned w = 1; w < workers; ++w)
            pool.emplace_back(workerLoop, w);
        workerLoop(0);
        for (std::thread &t : pool)
            t.join();
    }

    for (std::size_t i = 0; i < count; ++i) {
        if (errors[i])
            std::rethrow_exception(errors[i]);
    }
}

} // namespace ctg
