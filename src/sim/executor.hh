/**
 * @file
 * Work-stealing thread pool for embarrassingly parallel simulation
 * tasks (one task per fleet server, one task per bench cell).
 *
 * Tasks are identified by their index in [0, count). Each worker
 * seeds its own deque with the round-robin slice {i : i % workers ==
 * w} and, once that drains, steals single tasks from the back of a
 * sibling's deque — so one straggler (a server with a long uptime
 * draw) never serialises the tail of a run.
 *
 * Determinism contract: the executor promises nothing about
 * *execution* order, only that every task runs exactly once and that
 * run() does not return before all of them finished. Callers that
 * need schedule-independent output must (a) keep tasks independent —
 * no shared mutable state except commutative/atomic counters — and
 * (b) write results into per-task slots and merge them by task index
 * after run() returns. Fleet::run() is the canonical client; see
 * DESIGN.md §10 for the full set of rules.
 *
 * threads == 1 never spawns: tasks run inline, in index order, on
 * the calling thread. This is the legacy sequential path and the
 * baseline that parallel runs must reproduce bit-identically.
 */

#ifndef CTG_SIM_EXECUTOR_HH
#define CTG_SIM_EXECUTOR_HH

#include <cstddef>
#include <functional>

namespace ctg
{

class Executor
{
  public:
    /**
     * Worker count used when a config leaves it at 0: the CTG_THREADS
     * environment variable when it parses to >= 1, else
     * std::thread::hardware_concurrency(), and never less than 1.
     * Read on every call so tests can flip the variable.
     */
    static unsigned defaultThreads();

    /** @param threads worker count; 0 = defaultThreads(). */
    explicit Executor(unsigned threads = 0);

    unsigned threads() const { return threads_; }

    /**
     * Run task(0) .. task(count - 1) to completion across the
     * workers, the calling thread included. If tasks throw, the
     * remaining tasks still run and the exception thrown by the
     * lowest-indexed failing task is rethrown — the surviving
     * exception is schedule-independent, so failures replay exactly
     * at any thread count.
     */
    void run(std::size_t count,
             const std::function<void(std::size_t)> &task);

  private:
    unsigned threads_;
};

} // namespace ctg

#endif // CTG_SIM_EXECUTOR_HH
