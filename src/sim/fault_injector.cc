#include "sim/fault_injector.hh"

#include <cstdlib>
#include <iterator>

#include "base/arena.hh"
#include "base/env_config.hh"
#include "base/logging.hh"
#include "base/serde.hh"
#include "base/span_trace.hh"

namespace ctg
{

namespace
{

const char *const siteNames[] = {
    "buddy.alloc_fail",      // BuddyAllocFail
    "buddy.gigantic_fail",   // BuddyGiganticFail
    "migrate.dst_fail",      // MigrateDstFail
    "migrate.relocate_fail", // MigrateRelocateFail
    "chw.install_fail",      // ChwInstallFail
    "chw.midcopy_abort",     // ChwMidcopyAbort
    "region.evac_fail",      // RegionEvacFail
    "kernel.reclaim_fail",   // KernelReclaimFail
    "snap.torn_write",       // SnapTornWrite
    "snap.bit_flip",         // SnapBitFlip
    "snap.version_skew",     // SnapVersionSkew
    "snap.manifest_skew",    // SnapManifestSkew
    "snap.read_fail",        // SnapReadFail
};

static_assert(std::size(siteNames) == numFaultSites,
              "every FaultSite needs a canonical name (and vice "
              "versa) — update both the enum and this table");

/** Parse one trigger spec ("p0.01", "n3", "o5", "once"). */
bool
parseSpec(const std::string &text, FaultSpec *out)
{
    if (text.empty())
        return false;
    if (text == "once") {
        *out = FaultSpec::oneShot(1);
        return true;
    }
    const char kind = text[0];
    const std::string arg = text.substr(1);
    if (arg.empty())
        return false;
    char *end = nullptr;
    if (kind == 'p') {
        const double p = std::strtod(arg.c_str(), &end);
        if (*end != '\0' || p < 0.0 || p > 1.0)
            return false;
        *out = FaultSpec::chance(p);
        return true;
    }
    const std::uint64_t n = std::strtoull(arg.c_str(), &end, 10);
    if (*end != '\0' || n == 0)
        return false;
    if (kind == 'n') {
        *out = FaultSpec::everyNth(n);
        return true;
    }
    if (kind == 'o') {
        *out = FaultSpec::oneShot(n);
        return true;
    }
    return false;
}

} // namespace

FaultInjector::FaultInjector(std::uint64_t seed)
    : seed_(seed)
{
    for (unsigned i = 0; i < numFaultSites; ++i)
        reseedSite(i);
}

void
FaultInjector::reseedSite(unsigned i)
{
    // Independent stream per site: interleaving changes in one
    // subsystem never shift another site's firing pattern.
    std::uint64_t sm = seed_ ^ ((i + 1) * 0x9e3779b97f4a7c15ULL);
    sites_[i].rng = Rng(splitMix64(sm));
}

bool
FaultInjector::evaluateArmed(FaultSite site, SiteState &state)
{
    ++state.sinceArmed;
    bool fired = false;
    switch (state.spec.trigger) {
      case FaultSpec::Trigger::Probability:
        fired = state.rng.chance(state.spec.p);
        break;
      case FaultSpec::Trigger::EveryNth:
        fired = state.sinceArmed % state.spec.n == 0;
        break;
      case FaultSpec::Trigger::OneShot:
        fired = state.sinceArmed == state.spec.n;
        if (fired) {
            state.spec.trigger = FaultSpec::Trigger::Off;
            ctg_assert(armedCount_ > 0);
            --armedCount_;
        }
        break;
      case FaultSpec::Trigger::Off:
        break;
    }
    if (fired) {
        ++state.stats.fires;
        if (spans::enabled(TraceFlag::Faults)) {
            // Drops the fault into the causal span tree: the instant
            // inherits the innermost open span (the migration,
            // evacuation, or alloc the site is about to fail).
            spans::instant(
                TraceFlag::Faults, siteName(site),
                {{"evaluation",
                  static_cast<std::int64_t>(state.sinceArmed)},
                 {"fire",
                  static_cast<std::int64_t>(state.stats.fires)}});
        }
    }
    return fired;
}

void
FaultInjector::arm(FaultSite site, FaultSpec spec)
{
    SiteState &state = sites_[index(site)];
    const bool was_armed =
        state.spec.trigger != FaultSpec::Trigger::Off;
    const bool now_armed = spec.trigger != FaultSpec::Trigger::Off;
    state.spec = spec;
    state.sinceArmed = 0;
    if (!was_armed && now_armed)
        ++armedCount_;
    else if (was_armed && !now_armed)
        --armedCount_;
}

void
FaultInjector::disarm(FaultSite site)
{
    arm(site, FaultSpec{});
}

void
FaultInjector::disarmAll()
{
    for (unsigned i = 0; i < numFaultSites; ++i)
        disarm(static_cast<FaultSite>(i));
}

void
FaultInjector::reset(std::uint64_t seed)
{
    disarmAll();
    seed_ = seed;
    for (unsigned i = 0; i < numFaultSites; ++i) {
        sites_[i].stats = SiteStats{};
        sites_[i].sinceArmed = 0;
        reseedSite(i);
    }
}

void
FaultInjector::setSeed(std::uint64_t seed)
{
    seed_ = seed;
    for (unsigned i = 0; i < numFaultSites; ++i)
        reseedSite(i);
}

bool
FaultInjector::configure(const std::string &spec_list)
{
    bool all_ok = true;
    std::size_t pos = 0;
    while (pos < spec_list.size()) {
        std::size_t end = spec_list.find(',', pos);
        if (end == std::string::npos)
            end = spec_list.size();
        const std::string token = spec_list.substr(pos, end - pos);
        pos = end + 1;
        if (token.empty())
            continue;

        const std::size_t colon = token.find(':');
        FaultSite site;
        FaultSpec spec;
        if (colon == std::string::npos ||
            !siteFromName(token.substr(0, colon), &site) ||
            !parseSpec(token.substr(colon + 1), &spec)) {
            warn("ignoring malformed fault spec '%s'", token.c_str());
            all_ok = false;
            continue;
        }
        arm(site, spec);
    }
    return all_ok;
}

FaultInjector
FaultInjector::forkForTask(std::uint64_t streamId) const
{
    // Mix the stream id into the parent seed rather than consuming
    // parent RNG state: fork(i) is a pure function of (seed_, i), so
    // the order tasks are forked in cannot shift their streams.
    std::uint64_t sm =
        seed_ ^ ((streamId + 1) * 0x9e3779b97f4a7c15ULL);
    FaultInjector forked(splitMix64(sm));
    for (unsigned i = 0; i < numFaultSites; ++i) {
        if (sites_[i].spec.trigger != FaultSpec::Trigger::Off)
            forked.arm(static_cast<FaultSite>(i), sites_[i].spec);
    }
    return forked;
}

void
FaultInjector::absorbStats(const FaultInjector &other)
{
    for (unsigned i = 0; i < numFaultSites; ++i) {
        sites_[i].stats.evaluations +=
            other.sites_[i].stats.evaluations;
        sites_[i].stats.fires += other.sites_[i].stats.fires;
    }
}

void
FaultInjector::saveTo(serde::Writer &out) const
{
    out.putU32(numFaultSites);
    out.putU64(seed_);
    out.putU32(armedCount_);
    for (const SiteState &state : sites_) {
        out.putU8(static_cast<std::uint8_t>(state.spec.trigger));
        out.putDouble(state.spec.p);
        out.putU64(state.spec.n);
        out.putU64(state.sinceArmed);
        out.putRngState(state.rng.rawState());
        out.putU64(state.stats.evaluations);
        out.putU64(state.stats.fires);
    }
}

void
FaultInjector::loadFrom(serde::Reader &in)
{
    if (in.getU32() != numFaultSites)
        throw serde::Error("fault injector: site count mismatch");
    seed_ = in.getU64();
    const std::uint32_t armed = in.getU32();
    std::uint32_t armed_check = 0;
    for (SiteState &state : sites_) {
        const std::uint8_t trigger = in.getU8();
        if (trigger >
            static_cast<std::uint8_t>(FaultSpec::Trigger::OneShot))
            throw serde::Error("fault injector: bad trigger");
        state.spec.trigger =
            static_cast<FaultSpec::Trigger>(trigger);
        state.spec.p = in.getDouble();
        state.spec.n = in.getU64();
        state.sinceArmed = in.getU64();
        state.rng.setRawState(in.getRngState());
        state.stats.evaluations = in.getU64();
        state.stats.fires = in.getU64();
        if (state.spec.trigger != FaultSpec::Trigger::Off)
            ++armed_check;
    }
    if (armed != armed_check)
        throw serde::Error("fault injector: armed count mismatch");
    armedCount_ = armed;
}

std::uint64_t
FaultInjector::totalFires() const
{
    std::uint64_t total = 0;
    for (const SiteState &state : sites_)
        total += state.stats.fires;
    return total;
}

const char *
FaultInjector::siteName(FaultSite site)
{
    return siteNames[index(site)];
}

bool
FaultInjector::siteFromName(const std::string &name, FaultSite *out)
{
    for (unsigned i = 0; i < numFaultSites; ++i) {
        if (name == siteNames[i]) {
            *out = static_cast<FaultSite>(i);
            return true;
        }
    }
    return false;
}

void
FaultInjector::regStats(StatGroup group) const
{
    for (unsigned i = 0; i < numFaultSites; ++i) {
        const SiteStats &stats = sites_[i].stats;
        const StatGroup site = group.group(siteNames[i]);
        site.gauge(
            "evaluations",
            [&stats] { return double(stats.evaluations); },
            "times the site was probed");
        site.gauge(
            "fires", [&stats] { return double(stats.fires); },
            "times the site injected a failure");
    }
}

namespace
{

/** Per-thread override installed by FaultInjectorScope. */
thread_local FaultInjector *tlsInjector = nullptr;

} // namespace

FaultInjectorScope::FaultInjectorScope(FaultInjector &injector)
    : prev_(tlsInjector)
{
    tlsInjector = &injector;
}

FaultInjectorScope::~FaultInjectorScope()
{
    tlsInjector = prev_;
}

FaultInjector &
faultInjector()
{
    if (tlsInjector != nullptr)
        return *tlsInjector;
    // The ambient injector outlives every fleet task; if its lazy
    // construction happens on a pooled worker, the allocation must
    // bypass that thread's task arena.
    const ArenaSuspend off;
    static FaultInjector *injector = [] {
        const sim::EnvConfig env = sim::EnvConfig::fromEnv();
        auto *inj = new FaultInjector(env.hasFaultSeed
                                          ? env.faultSeed
                                          : FaultInjector::defaultSeed);
        if (!env.faultSpec.empty())
            inj->configure(env.faultSpec.c_str());
        return inj;
    }();
    return *injector;
}

} // namespace ctg
