/**
 * @file
 * Deterministic, seeded fault injection for chaos testing.
 *
 * The simulator's fidelity argument rests on its failure paths:
 * allocations that fail under pressure, migrations that abort
 * mid-copy, region resizes that cannot evacuate. Those paths are
 * rare under benign workloads, so each of them carries a *named
 * injection site* — a probe the subsystem consults before the
 * operation proceeds. Arming a site makes the probe fire according
 * to a trigger spec:
 *
 *  - `p<float>`  fire with the given probability per evaluation,
 *                drawn from a per-site seeded RNG;
 *  - `n<uint>`   fire on every Nth evaluation since arming;
 *  - `o<uint>`   fire once, on the given (1-based) evaluation since
 *                arming; `once` is shorthand for `o1`.
 *
 * Runs replay exactly: every site owns an independent RNG stream
 * derived from the injector seed, so firing patterns do not shift
 * when unrelated subsystems change their call interleaving.
 *
 * Runtime control: the process-wide injector reads the environment
 * on first use — `CTG_FAULTS=site:spec,...` (for example
 * `CTG_FAULTS=buddy.alloc_fail:p0.01,chw.midcopy_abort:n3`) and
 * `CTG_FAULTS_SEED=<uint64>`. Tests arm sites programmatically and
 * reset the injector between cases. With no site armed every probe
 * is a counter increment and one branch.
 */

#ifndef CTG_SIM_FAULT_INJECTOR_HH
#define CTG_SIM_FAULT_INJECTOR_HH

#include <array>
#include <cstdint>
#include <string>

#include "base/rng.hh"
#include "base/stat_registry.hh"

namespace ctg
{

namespace serde
{
class Writer;
class Reader;
} // namespace serde

/** Named injection sites threaded through the simulator. */
enum class FaultSite : unsigned
{
    /** BuddyAllocator::allocPages fails outright. */
    BuddyAllocFail = 0,
    /** BuddyAllocator::allocGigantic finds no range. */
    BuddyGiganticFail,
    /** migrateBlock's destination allocation fails. */
    MigrateDstFail,
    /** The owner refuses to repoint after the destination was
     * allocated (exercises the rollback path). */
    MigrateRelocateFail,
    /** ChwEngine::submitMigrate: descriptor install rejected. */
    ChwInstallFail,
    /** ChwEngine::copyNextLine: the OS clears the mapping mid-copy. */
    ChwMidcopyAbort,
    /** RegionManager::evacuateBlock cannot move the block. */
    RegionEvacFail,
    /** Kernel::reclaim: every shrinker comes back empty. */
    KernelReclaimFail,
    /** Snapshot write dies mid-file: the temp file is truncated
     * before the rename (torn write / crashed checkpointer). */
    SnapTornWrite,
    /** One payload byte of a written snapshot flips (silent media
     * corruption — must surface as a section CRC mismatch). */
    SnapBitFlip,
    /** Snapshot is stamped with an alien format version. */
    SnapVersionSkew,
    /** Manifest entry disagrees with the snapshot file it points at
     * (mixed-up checkpoint directories). */
    SnapManifestSkew,
    /** Snapshot file read fails outright (I/O error / missing). */
    SnapReadFail,
};

constexpr unsigned numFaultSites = 13;

/** Trigger specification for one armed site. */
struct FaultSpec
{
    enum class Trigger : std::uint8_t
    {
        Off = 0,
        Probability,
        EveryNth,
        OneShot,
    };

    Trigger trigger = Trigger::Off;
    /** Fire probability per evaluation (Probability trigger). */
    double p = 0.0;
    /** Period (EveryNth) or 1-based target evaluation (OneShot). */
    std::uint64_t n = 0;

    static FaultSpec
    chance(double probability)
    {
        FaultSpec spec;
        spec.trigger = Trigger::Probability;
        spec.p = probability;
        return spec;
    }

    static FaultSpec
    everyNth(std::uint64_t period)
    {
        ctg_assert(period >= 1);
        FaultSpec spec;
        spec.trigger = Trigger::EveryNth;
        spec.n = period;
        return spec;
    }

    static FaultSpec
    oneShot(std::uint64_t at = 1)
    {
        ctg_assert(at >= 1);
        FaultSpec spec;
        spec.trigger = Trigger::OneShot;
        spec.n = at;
        return spec;
    }
};

/**
 * Deterministic fault injector with named sites.
 */
class FaultInjector
{
  public:
    static constexpr std::uint64_t defaultSeed = 0xfa01770123456789ULL;

    explicit FaultInjector(std::uint64_t seed = defaultSeed);

    /**
     * Probe a site. Counts the evaluation and, when the site is
     * armed, applies its trigger.
     * @return true if the caller must simulate the failure.
     */
    bool
    shouldFail(FaultSite site)
    {
        SiteState &state = sites_[index(site)];
        ++state.stats.evaluations;
        if (state.spec.trigger == FaultSpec::Trigger::Off)
            return false;
        return evaluateArmed(site, state);
    }

    /** Arm a site with a trigger spec (replaces any previous spec;
     * restarts the site's since-arming evaluation count). */
    void arm(FaultSite site, FaultSpec spec);

    /** Disarm one site (its cumulative stats are retained). */
    void disarm(FaultSite site);

    /** Disarm every site. */
    void disarmAll();

    /** Disarm every site, zero all stats, and reseed — the clean
     * slate chaos tests start from. */
    void reset(std::uint64_t seed = defaultSeed);

    /** Reseed every per-site RNG stream (does not touch specs). */
    void setSeed(std::uint64_t seed);

    /**
     * Parse and arm a `site:spec,...` list (the CTG_FAULTS syntax).
     * Malformed tokens and unknown site names warn and are skipped.
     * @return true if every token parsed.
     */
    bool configure(const std::string &spec_list);

    bool anyArmed() const { return armedCount_ != 0; }
    bool
    armed(FaultSite site) const
    {
        return sites_[index(site)].spec.trigger !=
               FaultSpec::Trigger::Off;
    }

    /** The spec a site is currently armed with (Trigger::Off when
     * disarmed). */
    const FaultSpec &
    spec(FaultSite site) const
    {
        return sites_[index(site)].spec;
    }

    /**
     * Fork a task-local injector: the same armed specs, fresh
     * since-arming counts, zero stats, and per-site RNG streams
     * derived deterministically from this injector's seed and the
     * stream id. A forked injector's firing pattern depends only on
     * (seed, streamId, its own probe sequence) — never on sibling
     * tasks or the thread schedule — which is what makes parallel
     * fleet runs replay the sequential path bit-identically.
     *
     * Stateful triggers are per task: a OneShot armed on the parent
     * fires once in *every* forked task, not once per fleet.
     */
    FaultInjector forkForTask(std::uint64_t streamId) const;

    /** Fold another injector's per-site evaluation/fire counts into
     * this one (the deterministic merge step after a fleet run). */
    void absorbStats(const FaultInjector &other);

    /** Per-site probe accounting. */
    struct SiteStats
    {
        std::uint64_t evaluations = 0;
        std::uint64_t fires = 0;
    };

    /** Fold one site's counter deltas into this injector. The shard
     * merge path: a shard child ships (after − before) counts and
     * the parent absorbs them here, leaving its own specs and RNG
     * streams untouched (loadFrom would clobber them). */
    void
    absorbSiteStats(FaultSite site, const SiteStats &delta)
    {
        SiteStats &stats = sites_[index(site)].stats;
        stats.evaluations += delta.evaluations;
        stats.fires += delta.fires;
    }

    const SiteStats &
    siteStats(FaultSite site) const
    {
        return sites_[index(site)].stats;
    }

    std::uint64_t totalFires() const;

    /** Serialize the complete injector state: seed, per-site spec,
     * since-arming count, RNG stream position and stats. A restored
     * injector continues the exact firing pattern of the saved one,
     * which the bit-identical checkpoint-resume contract requires. */
    void saveTo(serde::Writer &out) const;

    /** Restore state written by saveTo onto this injector. Throws
     * serde::Error on malformed input (including a site-count
     * mismatch from a different build). */
    void loadFrom(serde::Reader &in);

    /** Canonical site name, e.g. "buddy.alloc_fail". */
    static const char *siteName(FaultSite site);

    /** Reverse lookup; returns false for unknown names. */
    static bool siteFromName(const std::string &name, FaultSite *out);

    /** Register `<site>.evaluations` / `<site>.fires` gauges for
     * every site under the given group (conventionally `faults`). */
    void regStats(StatGroup group) const;

  private:
    struct SiteState
    {
        FaultSpec spec;
        /** Evaluations since the site was last armed; EveryNth and
         * OneShot triggers count against this, so specs mean "the
         * Nth evaluation after arming" regardless of prior runs. */
        std::uint64_t sinceArmed = 0;
        Rng rng{0};
        SiteStats stats;
    };

    static unsigned
    index(FaultSite site)
    {
        const auto i = static_cast<unsigned>(site);
        ctg_assert(i < numFaultSites);
        return i;
    }

    /** Slow path of shouldFail for armed sites. Fires show up as
     * span instants (Faults flag) annotated with the site name, so
     * chaos runs place each fault inside the causal span tree. */
    bool evaluateArmed(FaultSite site, SiteState &state);

    void reseedSite(unsigned i);

    std::array<SiteState, numFaultSites> sites_;
    unsigned armedCount_ = 0;
    std::uint64_t seed_;
};

/**
 * The injector every subsystem probes. Normally the process-wide
 * singleton, configured from CTG_FAULTS / CTG_FAULTS_SEED on first
 * access; tests reconfigure it programmatically (and must reset() it
 * between cases). While a FaultInjectorScope is active on the
 * calling thread, its injector is returned instead — parallel fleet
 * workers scope a forked injector around each server task so probes
 * never race on (or nondeterministically drain) the shared streams.
 */
FaultInjector &faultInjector();

/**
 * RAII thread-local override of faultInjector(). Scopes nest; the
 * previous injector (or the global singleton) is restored on
 * destruction. The caller keeps ownership of the injector, which
 * must outlive the scope.
 */
class FaultInjectorScope
{
  public:
    explicit FaultInjectorScope(FaultInjector &injector);
    ~FaultInjectorScope();

    FaultInjectorScope(const FaultInjectorScope &) = delete;
    FaultInjectorScope &operator=(const FaultInjectorScope &) = delete;

  private:
    FaultInjector *prev_;
};

} // namespace ctg

#endif // CTG_SIM_FAULT_INJECTOR_HH
