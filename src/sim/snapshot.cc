#include "sim/snapshot.hh"

#include <cstdio>
#include <cstring>

#include "base/logging.hh"
#include "sim/fault_injector.hh"

namespace ctg
{
namespace snap
{

namespace
{

std::uint64_t
splitMix64Round(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Write `bytes` to `path`, fsync-free (the simulator's durability
 * story is rename atomicity, not power-failure safety). */
bool
writeWhole(const std::string &path,
           const std::uint8_t *data, std::size_t len)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr)
        return false;
    const bool ok =
        len == 0 || std::fwrite(data, 1, len, f) == len;
    return std::fclose(f) == 0 && ok;
}

} // namespace

void
Fingerprint::mixU64(std::uint64_t v)
{
    hash_ = splitMix64Round(hash_ ^ v);
}

void
Fingerprint::mixDouble(double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    mixU64(bits);
}

void
beginImage(serde::Writer &out)
{
    out.putU32(fileMagic);
    out.putU32(formatVersion);
}

void
openImage(serde::Reader &in)
{
    if (in.getU32() != fileMagic)
        throw serde::Error("snapshot: bad magic");
    const std::uint32_t version = in.getU32();
    if (version != formatVersion) {
        throw serde::Error(
            "snapshot: format version " + std::to_string(version) +
            " (this build speaks " + std::to_string(formatVersion) +
            ")");
    }
}

bool
writeImageFile(const std::string &path,
               const std::vector<std::uint8_t> &bytes)
{
    // Chaos hooks corrupt a private copy: the caller's bytes (and
    // the CRC it records in the manifest) always describe the
    // intended image, so every injected corruption is detectable.
    std::vector<std::uint8_t> image = bytes;
    FaultInjector &faults = faultInjector();
    if (faults.shouldFail(FaultSite::SnapVersionSkew) &&
        image.size() >= 8) {
        // Stamp an alien format version into the header.
        const std::uint32_t alien = formatVersion + 1;
        for (int i = 0; i < 4; ++i)
            image[4 + i] =
                static_cast<std::uint8_t>(alien >> (8 * i));
    }
    if (faults.shouldFail(FaultSite::SnapBitFlip) &&
        image.size() > 8) {
        // Silent media corruption: one bit, past the header. Inside
        // a payload it trips that section's CRC; in section framing
        // it breaks framing — every landing spot is a detected
        // error.
        image[8 + (image.size() - 8) / 2] ^= 0x10;
    }
    if (faults.shouldFail(FaultSite::SnapTornWrite)) {
        // The checkpointer died mid-write: only a prefix of the temp
        // file made it to disk before the (simulated) rename.
        image.resize(image.size() / 2);
    }

    const std::string tmp = path + ".tmp";
    if (!writeWhole(tmp, image.data(), image.size())) {
        warn("snapshot: writing '%s' failed", tmp.c_str());
        std::remove(tmp.c_str());
        return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        warn("snapshot: renaming '%s' into place failed",
             tmp.c_str());
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

std::vector<std::uint8_t>
readImageFile(const std::string &path)
{
    if (faultInjector().shouldFail(FaultSite::SnapReadFail))
        throw serde::Error("snapshot: injected read failure on '" +
                           path + "'");
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        throw serde::Error("snapshot: cannot open '" + path + "'");
    std::vector<std::uint8_t> bytes;
    std::uint8_t chunk[1 << 16];
    std::size_t got;
    while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0)
        bytes.insert(bytes.end(), chunk, chunk + got);
    const bool failed = std::ferror(f) != 0;
    std::fclose(f);
    if (failed)
        throw serde::Error("snapshot: reading '" + path +
                           "' failed");
    return bytes;
}

const ManifestEntry *
Manifest::find(unsigned server) const
{
    for (const ManifestEntry &entry : entries)
        if (entry.server == server)
            return &entry;
    return nullptr;
}

std::string
snapshotFileName(unsigned server)
{
    return "server_" + std::to_string(server) + ".ctgsnap";
}

std::string
manifestFileName()
{
    return "MANIFEST";
}

bool
writeManifest(const std::string &dir, const Manifest &manifest)
{
    FaultInjector &faults = faultInjector();
    std::string text = "ctgsnap-manifest " +
                       std::to_string(formatVersion) + "\n";
    {
        char line[64];
        std::snprintf(line, sizeof(line), "fleet %016llx\n",
                      static_cast<unsigned long long>(
                          manifest.fleetFingerprint));
        text += line;
    }
    for (const ManifestEntry &entry : manifest.entries) {
        std::uint32_t crc = entry.crc;
        if (faults.shouldFail(FaultSite::SnapManifestSkew)) {
            // Mixed-up checkpoint directories: the manifest claims a
            // CRC the file does not have.
            crc ^= 0xdeadbeef;
        }
        char line[512];
        std::snprintf(line, sizeof(line),
                      "entry %u %s %llu %08lx\n", entry.server,
                      entry.file.c_str(),
                      static_cast<unsigned long long>(entry.bytes),
                      static_cast<unsigned long>(crc));
        text += line;
    }
    text += "end\n";

    const std::string path = dir + "/" + manifestFileName();
    const std::string tmp = path + ".tmp";
    if (!writeWhole(tmp,
                    reinterpret_cast<const std::uint8_t *>(
                        text.data()),
                    text.size()) ||
        std::rename(tmp.c_str(), path.c_str()) != 0) {
        warn("snapshot: writing manifest '%s' failed", path.c_str());
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

Manifest
loadManifest(const std::string &dir,
             std::uint64_t expectFleetFingerprint)
{
    const std::string path = dir + "/" + manifestFileName();
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        throw serde::Error("snapshot: cannot open manifest '" +
                           path + "'");
    std::string text;
    char chunk[1 << 12];
    std::size_t got;
    while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0)
        text.append(chunk, got);
    const bool failed = std::ferror(f) != 0;
    std::fclose(f);
    if (failed)
        throw serde::Error("snapshot: reading manifest '" + path +
                           "' failed");

    Manifest manifest;
    bool sawHeader = false;
    bool sawFleet = false;
    bool sawEnd = false;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            eol = text.size();
        const std::string line = text.substr(pos, eol - pos);
        pos = eol + 1;
        if (line.empty())
            continue;
        if (sawEnd)
            throw serde::Error(
                "snapshot: manifest has trailing lines");
        if (!sawHeader) {
            unsigned version = 0;
            if (std::sscanf(line.c_str(),
                            "ctgsnap-manifest %u", &version) != 1)
                throw serde::Error(
                    "snapshot: manifest missing header");
            if (version != formatVersion)
                throw serde::Error(
                    "snapshot: manifest format version " +
                    std::to_string(version));
            sawHeader = true;
        } else if (!sawFleet) {
            unsigned long long fp = 0;
            if (std::sscanf(line.c_str(), "fleet %llx", &fp) != 1)
                throw serde::Error(
                    "snapshot: manifest missing fleet fingerprint");
            manifest.fleetFingerprint = fp;
            if (manifest.fleetFingerprint !=
                expectFleetFingerprint)
                throw serde::Error(
                    "snapshot: manifest fleet-config fingerprint "
                    "mismatch (checkpoint from a different fleet "
                    "configuration)");
            sawFleet = true;
        } else if (line == "end") {
            sawEnd = true;
        } else {
            ManifestEntry entry;
            char file[256];
            unsigned long long bytes = 0;
            unsigned long crc = 0;
            if (std::sscanf(line.c_str(), "entry %u %255s %llu %lx",
                            &entry.server, file, &bytes,
                            &crc) != 4)
                throw serde::Error(
                    "snapshot: malformed manifest line '" + line +
                    "'");
            entry.file = file;
            entry.bytes = bytes;
            entry.crc = static_cast<std::uint32_t>(crc);
            if (manifest.find(entry.server) != nullptr)
                throw serde::Error(
                    "snapshot: duplicate manifest entry for "
                    "server " +
                    std::to_string(entry.server));
            manifest.entries.push_back(std::move(entry));
        }
    }
    if (!sawEnd)
        throw serde::Error(
            "snapshot: manifest truncated (no end line)");
    return manifest;
}

void
validateAgainstManifest(const ManifestEntry &entry,
                        const std::vector<std::uint8_t> &bytes)
{
    if (bytes.size() != entry.bytes)
        throw serde::Error(
            "snapshot: '" + entry.file + "' is " +
            std::to_string(bytes.size()) +
            " bytes, manifest expects " +
            std::to_string(entry.bytes));
    const std::uint32_t crc =
        serde::crc32(bytes.data(), bytes.size());
    if (crc != entry.crc)
        throw serde::Error(
            "snapshot: '" + entry.file +
            "' CRC disagrees with its manifest entry");
}

} // namespace snap
} // namespace ctg
