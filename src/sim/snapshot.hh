/**
 * @file
 * Versioned, integrity-checked snapshot container format.
 *
 * A snapshot image is a small header (magic + format version)
 * followed by length-framed, CRC-trailed serde sections and a
 * terminating End section:
 *
 *   u32 magic 'CTGS' | u32 formatVersion
 *   section Meta     — config fingerprint + identifying fields
 *   section Server   — complete server state (kernel, fragmenter,
 *                      workload), one payload so the whole machine
 *                      state sits under a single CRC
 *   section Faults   — fault-injector streams, specs and counters
 *   section End      — empty terminator
 *
 * This layer owns the container, the files and the manifest — what
 * goes *inside* the Server section is the Server's business
 * (fleet/server.cc), which keeps the sim library independent of the
 * fleet layer.
 *
 * Durability contract: images are written atomically (temp file in
 * the same directory + rename), so a crashed checkpointer leaves
 * either the previous snapshot or none — never a half-written one
 * under the final name. Every read-side failure (truncation, CRC
 * mismatch, version skew, manifest disagreement) surfaces as
 * serde::Error, which restore paths catch to fall back to a cold
 * start. Nothing here panics on bad input.
 *
 * Chaos hooks: writeImageFile probes the snap.torn_write,
 * snap.bit_flip and snap.version_skew fault sites and corrupts the
 * written bytes accordingly (the returned manifest CRC always
 * describes the *intended* bytes, so every corruption is detectable);
 * readImageFile probes snap.read_fail; writeManifest probes
 * snap.manifest_skew per entry. See DESIGN.md §14.
 */

#ifndef CTG_SIM_SNAPSHOT_HH
#define CTG_SIM_SNAPSHOT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/serde.hh"

namespace ctg
{
namespace snap
{

/** 'CTGS' little-endian. */
constexpr std::uint32_t fileMagic = 0x53475443;

/** Bump whenever the container layout or any serialized struct
 * changes. There is no cross-version compatibility shim: a version
 * mismatch is a detected error and the restore cold-starts.
 * Version 2: struct-of-arrays frame table (packed meta column,
 * owner handles overlaid on allocated heads' link slots, sorted
 * allocation-second side table).
 * Version 3: the Server section leads with the placement policy's
 * registry name, and the config fingerprint covers the full
 * PolicyConfig instead of a contiguitas on/off bit. */
constexpr std::uint32_t formatVersion = 3;

/** Section ids inside a snapshot image. */
enum SectionId : std::uint32_t
{
    SecMeta = 1,
    SecServer = 2,
    SecFaults = 3,
    SecEnd = 0xE7D,
};

/**
 * Order-insensitive config fingerprint accumulator (splitmix-style
 * mixing, fixed little-endian semantics). Checkpoint and restore
 * sides hash their configs the same way; a mismatch means the
 * snapshot describes a different machine and must not be loaded.
 */
class Fingerprint
{
  public:
    void mixU64(std::uint64_t v);
    void mixU32(std::uint32_t v) { mixU64(v); }
    void mixBool(bool v) { mixU64(v ? 1 : 0); }
    void mixDouble(double v);

    std::uint64_t value() const { return hash_; }

  private:
    std::uint64_t hash_ = 0x5eedc0de00000001ULL;
};

/** Append the image header (magic + formatVersion). */
void beginImage(serde::Writer &out);

/** Validate the image header; throws serde::Error on bad magic or a
 * version this build does not speak. Leaves `in` at the first
 * section. */
void openImage(serde::Reader &in);

/**
 * Write a snapshot image atomically: the bytes go to a temp file in
 * the target directory, then rename over `path`. Probes the
 * snap.torn_write (truncate the temp before renaming), snap.bit_flip
 * (flip one payload bit) and snap.version_skew (stamp an alien
 * format version) fault sites on the ambient injector; a fired site
 * corrupts the written file but the function still succeeds — the
 * corruption must be *detected at restore*, which is what the chaos
 * suite asserts.
 * @return false on a real I/O failure (after warning).
 */
bool writeImageFile(const std::string &path,
                    const std::vector<std::uint8_t> &bytes);

/** Read a whole snapshot image. Probes snap.read_fail; throws
 * serde::Error on a fired site or any I/O failure. */
std::vector<std::uint8_t> readImageFile(const std::string &path);

/** One manifest line: which file holds a server's snapshot and what
 * the intended bytes look like. */
struct ManifestEntry
{
    unsigned server = 0;
    std::string file;
    std::uint64_t bytes = 0;
    std::uint32_t crc = 0;
};

/** Checkpoint-directory manifest: the set of per-server snapshot
 * files one fleet run wrote, keyed by a fleet-config fingerprint. */
struct Manifest
{
    std::uint64_t fleetFingerprint = 0;
    std::vector<ManifestEntry> entries;

    /** Entry for a server index, or nullptr. */
    const ManifestEntry *find(unsigned server) const;
};

/** Canonical file names inside a checkpoint directory. */
std::string snapshotFileName(unsigned server);
std::string manifestFileName();

/**
 * Write `dir`/MANIFEST atomically (text format, one line per entry —
 * see tools/validate_snapshot.py). Probes snap.manifest_skew once
 * per entry; a fired site records a wrong CRC for that entry, which
 * restore must detect via validateAgainstManifest.
 * @return false on a real I/O failure (after warning).
 */
bool writeManifest(const std::string &dir, const Manifest &manifest);

/** Parse `dir`/MANIFEST and check its fleet fingerprint. Throws
 * serde::Error on I/O failure, malformed text, duplicate server
 * entries or a fingerprint mismatch. */
Manifest loadManifest(const std::string &dir,
                      std::uint64_t expectFleetFingerprint);

/** Cross-check loaded image bytes against their manifest entry
 * (size + CRC). Throws serde::Error on disagreement — the
 * manifest-skew / mixed-up-directory detection point. */
void validateAgainstManifest(const ManifestEntry &entry,
                             const std::vector<std::uint8_t> &bytes);

} // namespace snap
} // namespace ctg

#endif // CTG_SIM_SNAPSHOT_HH
