#include "sim/stat_sampler.hh"

#include <cinttypes>
#include <cstdio>

namespace ctg
{

namespace
{

std::string
formatSample(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

void
StatSampler::sample(Tick now)
{
    ctg_assert(ticks_.empty() || now >= ticks_.back());
    if (registry_->size() == 0) {
        warn_once("StatSampler::sample on an empty registry; "
                  "snapshots will carry no values");
    }

    const std::size_t prior = ticks_.size();
    ticks_.push_back(now);
    for (std::size_t i = 0; i < registry_->size(); ++i) {
        const Stat &stat = registry_->at(i);
        auto it = columnByName_.find(stat.name());
        if (it == columnByName_.end()) {
            // Late registration: back-fill earlier snapshots.
            columnByName_.emplace(stat.name(), columns_.size());
            names_.push_back(stat.name());
            columns_.emplace_back(prior, 0.0);
            it = columnByName_.find(stat.name());
        }
        columns_[it->second].push_back(stat.value());
    }
    // Stats removed from the registry cannot happen (registration is
    // permanent), so every column is now ticks_.size() long.
}

void
StatSampler::attach(EventQueue &eventq, Tick period)
{
    ctg_assert(period > 0);
    eventq_ = &eventq;
    period_ = period;
    armed_ = true;
    scheduleNext();
}

void
StatSampler::scheduleNext()
{
    eventq_->schedule(period_, [this] {
        if (!armed_)
            return;
        sample(eventq_->now());
        scheduleNext();
    }, EventPriority::Maintenance);
}

const std::vector<double> *
StatSampler::series(const std::string &name) const
{
    const auto it = columnByName_.find(name);
    return it == columnByName_.end() ? nullptr
                                     : &columns_[it->second];
}

std::string
StatSampler::csv() const
{
    std::string out = "tick";
    for (const std::string &name : names_)
        out += "," + name;
    out += "\n";
    for (std::size_t row = 0; row < ticks_.size(); ++row) {
        char head[32];
        std::snprintf(head, sizeof(head), "%" PRIu64, ticks_[row]);
        out += head;
        for (const auto &column : columns_)
            out += "," + formatSample(column[row]);
        out += "\n";
    }
    return out;
}

std::string
StatSampler::jsonLines() const
{
    std::string out;
    for (std::size_t row = 0; row < ticks_.size(); ++row) {
        char head[48];
        std::snprintf(head, sizeof(head), "{\"tick\":%" PRIu64
                      ",\"values\":{", ticks_[row]);
        out += head;
        for (std::size_t col = 0; col < columns_.size(); ++col) {
            if (col != 0)
                out += ",";
            out += "\"" + names_[col] +
                   "\":" + formatSample(columns_[col][row]);
        }
        out += "}}\n";
    }
    return out;
}

void
StatSampler::clear()
{
    ticks_.clear();
    for (auto &column : columns_)
        column.clear();
}

} // namespace ctg
