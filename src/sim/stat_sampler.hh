/**
 * @file
 * Periodic stat snapshotting: turns the scalar views of a
 * StatRegistry into per-stat time series so trajectories (how
 * fragmentation evolves over a run, how the unmovable share grows)
 * are first-class outputs rather than end-of-run scalars.
 *
 * Two driving modes:
 *  - attach(eventq, period): a self-rescheduling Maintenance event
 *    samples every `period` ticks until detach(). While armed the
 *    event queue never drains, so run with an explicit tick limit.
 *  - sample(tick): manual snapshots from code that advances
 *    wall-clock seconds instead of ticks (the fleet/server loop
 *    samples once per workload step).
 *
 * Stats registered after the first snapshot get their earlier
 * samples back-filled with zero, keeping every series equal length.
 */

#ifndef CTG_SIM_STAT_SAMPLER_HH
#define CTG_SIM_STAT_SAMPLER_HH

#include <string>
#include <unordered_map>
#include <vector>

#include "base/stat_registry.hh"
#include "sim/eventq.hh"

namespace ctg
{

/**
 * Snapshot series over one StatRegistry.
 */
class StatSampler
{
  public:
    explicit StatSampler(StatRegistry &registry)
        : registry_(&registry)
    {}

    /** Snapshot every registered stat at the given timestamp.
     * Timestamps must be non-decreasing. */
    void sample(Tick now);

    /** Arm periodic sampling on an event queue (first snapshot one
     * period from now). */
    void attach(EventQueue &eventq, Tick period);

    /** Stop periodic sampling; a pending event fizzles harmlessly. */
    void detach() { armed_ = false; }

    bool armed() const { return armed_; }

    std::size_t sampleCount() const { return ticks_.size(); }
    const std::vector<Tick> &ticks() const { return ticks_; }

    /** Column order (registry registration order at last sample). */
    const std::vector<std::string> &statNames() const { return names_; }

    /** Sample series of one stat; nullptr when never sampled. */
    const std::vector<double> *series(const std::string &name) const;

    /** tick,<stat...> matrix, one row per snapshot. */
    std::string csv() const;

    /** One JSON object per snapshot:
     * {"tick":N,"values":{"name":v,...}}. */
    std::string jsonLines() const;

    /** Drop all collected samples (series columns persist). */
    void clear();

  private:
    void scheduleNext();

    StatRegistry *registry_;
    std::vector<Tick> ticks_;
    std::vector<std::string> names_;
    std::unordered_map<std::string, std::size_t> columnByName_;
    /** Column-major: one vector of samples per stat. */
    std::vector<std::vector<double>> columns_;

    EventQueue *eventq_ = nullptr;
    Tick period_ = 0;
    bool armed_ = false;
};

} // namespace ctg

#endif // CTG_SIM_STAT_SAMPLER_HH
