#include "workloads/access_gen.hh"

namespace ctg
{

AccessProfile
makeAccessProfile(WorkloadKind kind)
{
    AccessProfile p;
    switch (kind) {
      case WorkloadKind::Web:
        // Huge bytecode/code footprint (instruction walks matter)
        // and a very large heap: the paper's flagship for 1 GB
        // pages.
        p.dataBytes = std::uint64_t{10} << 30;
        p.codeBytes = std::uint64_t{768} << 20;
        p.dataZipfTheta = 0.55;
        p.codeZipfTheta = 0.5;
        p.writeFrac = 0.3;
        break;
      case WorkloadKind::CacheA:
        p.dataBytes = std::uint64_t{12} << 30;
        p.codeBytes = std::uint64_t{64} << 20;
        p.dataZipfTheta = 0.6;
        p.codeZipfTheta = 0.75;
        p.writeFrac = 0.35;
        break;
      case WorkloadKind::CacheB:
        p.dataBytes = std::uint64_t{11} << 30;
        p.codeBytes = std::uint64_t{48} << 20;
        p.dataZipfTheta = 0.62;
        p.codeZipfTheta = 0.8;
        p.writeFrac = 0.4;
        break;
      case WorkloadKind::Memcached:
        p.dataBytes = std::uint64_t{6} << 30;
        p.codeBytes = std::uint64_t{16} << 20;
        p.dataZipfTheta = 0.6;
        p.codeZipfTheta = 0.85;
        p.writeFrac = 0.4;
        break;
      case WorkloadKind::Nginx:
        p.dataBytes = std::uint64_t{1} << 30;
        p.codeBytes = std::uint64_t{24} << 20;
        p.dataZipfTheta = 0.7;
        p.codeZipfTheta = 0.85;
        p.writeFrac = 0.3;
        break;
      case WorkloadKind::CI:
        p.dataBytes = std::uint64_t{4} << 30;
        p.codeBytes = std::uint64_t{512} << 20;
        p.dataZipfTheta = 0.6;
        p.codeZipfTheta = 0.6;
        p.writeFrac = 0.35;
        break;
    }
    return p;
}

AccessProfile
makeAdsAccessProfile()
{
    AccessProfile p;
    p.dataBytes = std::uint64_t{14} << 30;
    p.codeBytes = std::uint64_t{384} << 20;
    p.dataZipfTheta = 0.5;
    p.codeZipfTheta = 0.55;
    p.writeFrac = 0.3;
    return p;
}

AccessStream::AccessStream(const AccessProfile &profile,
                           Addr data_base, Addr code_base,
                           std::uint64_t seed)
    : profile_(profile), dataBase_(data_base), codeBase_(code_base),
      rng_(seed)
{
    const std::uint64_t data_pages = profile_.dataBytes / pageBytes;
    const std::uint64_t code_pages = profile_.codeBytes / pageBytes;
    ctg_assert(data_pages > 0 && code_pages > 0);
    dataZipf_ =
        std::make_unique<Zipf>(data_pages, profile_.dataZipfTheta);
    codeZipf_ =
        std::make_unique<Zipf>(code_pages, profile_.codeZipfTheta);
}

Addr
AccessStream::nextData(bool *is_write)
{
    // Scramble the zipf rank so hot pages are spread over the
    // region rather than clustered at its start.
    std::uint64_t rank = dataZipf_->sample(rng_);
    std::uint64_t scrambled = rank * 0x9e3779b97f4a7c15ULL;
    const std::uint64_t page = scrambled % dataZipf_->items();
    if (is_write != nullptr)
        *is_write = rng_.chance(profile_.writeFrac);
    return dataBase_ + page * pageBytes +
           (rng_.below(pageBytes / lineBytes) * lineBytes);
}

Addr
AccessStream::nextCode()
{
    std::uint64_t rank = codeZipf_->sample(rng_);
    std::uint64_t scrambled = rank * 0x9e3779b97f4a7c15ULL;
    const std::uint64_t page = scrambled % codeZipf_->items();
    return codeBase_ + page * pageBytes +
           (rng_.below(pageBytes / lineBytes) * lineBytes);
}

} // namespace ctg
